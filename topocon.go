// Package topocon is a computational framework for the point-set topology
// of consensus under general message adversaries, reproducing
//
//	Thomas Nowak, Ulrich Schmid, Kyrill Winkler:
//	"Topological Characterization of Consensus under General Message
//	Adversaries", PODC 2019 (arXiv:1905.09590).
//
// The library makes the paper's objects executable:
//
//   - communication graphs and message adversaries (oblivious,
//     eventually-stabilizing, deadline-compactified, committed-suffix,
//     finite lasso sets, exclusion adversaries);
//   - process-time graphs and hash-consed local views, the carriers of the
//     process-view pseudo-metrics d_P and the minimum distance d_min;
//   - finite-resolution prefix spaces, their connected components (the
//     ε-approximations of Definition 6.2), broadcastability, and
//     cross-valence distances;
//   - the solvability checker (Theorems 6.6 and 6.7) with exact witnesses
//     for compact adversaries and certified impossibility via automated
//     bivalence proofs (bounded chains and alternating pumps);
//   - the universal consensus algorithm of Theorem 5.5 compiled to a
//     decision map, runnable by a genuine message-passing full-information
//     protocol in the lock-step simulator;
//   - exact infinite-run analysis on ultimately-periodic runs (Corollary
//     5.6 for finite adversaries, fair/unfair limits of Definition 5.16).
//
// Quick start:
//
//	adv := topocon.LossyLink2()
//	res, err := topocon.CheckConsensus(adv, topocon.CheckOptions{})
//	// res.Verdict == topocon.VerdictSolvable, res.SeparationHorizon == 1
//
// For long-running analyses, use an Analyzer session: it refines the
// prefix space one horizon at a time — reusing the previous horizon's
// items instead of re-enumerating the exponential space — and supports
// cancellation, progress reporting and manual stepping:
//
//	an, err := topocon.NewAnalyzer(adv,
//	    topocon.WithMaxHorizon(9),
//	    topocon.WithParallelism(8),
//	    topocon.WithProgress(func(r topocon.HorizonReport) {
//	        log.Printf("horizon %d: %d runs, %d components", r.Horizon, r.Runs, r.Components)
//	    }))
//	res, err := an.Check(ctx)
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record of every reproduced figure and claim.
package topocon

import (
	"topocon/internal/baseline"
	"topocon/internal/check"
	"topocon/internal/ckpt"
	"topocon/internal/coord"
	"topocon/internal/graph"
	"topocon/internal/lasso"
	"topocon/internal/ma"
	"topocon/internal/pager"
	"topocon/internal/ptg"
	"topocon/internal/scenario"
	"topocon/internal/sim"
	"topocon/internal/store"
	"topocon/internal/sweep"
	"topocon/internal/topo"
)

// Graphs and parsing.
type (
	// Graph is a directed communication graph with mandatory self-loops.
	Graph = graph.Graph
	// Edge is a directed edge of a Graph.
	Edge = graph.Edge
)

// Graph constructors.
var (
	// NewGraph returns the self-loop-only graph on n nodes.
	NewGraph = graph.New
	// ParseGraph parses "1->2, 2<->3" edge lists (1-based ids).
	ParseGraph = graph.Parse
	// MustParseGraph is ParseGraph for statically-known inputs.
	MustParseGraph = graph.MustParse
	// GraphFromEdges builds a graph from an edge list.
	GraphFromEdges = graph.FromEdges
	// CompleteGraph, StarGraph, CycleGraph, ChainGraph are generators.
	CompleteGraph = graph.Complete
	StarGraph     = graph.Star
	CycleGraph    = graph.Cycle
	ChainGraph    = graph.Chain
	// EnumerateGraphs iterates all graphs on n nodes.
	EnumerateGraphs = graph.EnumerateAll
)

// The lossy-link graphs for n = 2 in the paper's arrow notation.
var (
	LeftGraph    = graph.Left
	RightGraph   = graph.Right
	BothGraph    = graph.Both
	NeitherGraph = graph.Neither
)

// Message adversaries.
type (
	// Adversary is a message adversary presented as a deterministic graph
	// automaton; see the ma package documentation for the contract.
	Adversary = ma.Adversary
	// GraphWord is an ultimately-periodic graph sequence u·v^ω.
	GraphWord = ma.GraphWord
)

// GraphPred is a named per-round graph predicate for Filter adversaries
// and scenario specs.
type GraphPred = ma.GraphPred

// AdmissiblePrefix is an admissible finite prefix paired with its
// automaton state and liveness-discharge round — the metadata the
// exhaustive sim driver hands to its yield callback.
type AdmissiblePrefix = ma.Prefix

// Adversary constructors.
var (
	// NewOblivious builds an oblivious adversary over a graph set.
	NewOblivious = ma.NewOblivious
	// LossyLink3 is the impossible {<-,<->,->} adversary of [21].
	LossyLink3 = ma.LossyLink3
	// LossyLink2 is the solvable {<-,->} adversary of [8].
	LossyLink2 = ma.LossyLink2
	// Unrestricted allows every graph each round.
	Unrestricted = ma.Unrestricted
	// NewEventuallyStable is the non-compact VSSC-style adversary.
	NewEventuallyStable = ma.NewEventuallyStable
	// NewDeadlineStable compactifies an eventually-stable adversary.
	NewDeadlineStable = ma.NewDeadlineStable
	// NewCommittedSuffix is the Fevat-Godard-style committed family.
	NewCommittedSuffix = ma.NewCommittedSuffix
	// NewLassoSet is the explicit finite adversary.
	NewLassoSet = ma.NewLassoSet
	// NewUnion is the set union of adversaries.
	NewUnion = ma.NewUnion
	// LossBounded loses at most f messages per round ([21, 22]).
	LossBounded = ma.LossBounded
	// NewExclusion removes ultimately-periodic words from a base.
	NewExclusion = ma.NewExclusion
	// NewGraphWord builds u·v^ω; RepeatWord builds v^ω.
	NewGraphWord = ma.NewGraphWord
	RepeatWord   = ma.Repeat
	// ValidateAdversary sanity-checks an adversary implementation.
	ValidateAdversary = ma.Validate
	// CountAdmissiblePrefixes counts the admissible prefixes of the given
	// round count (the prefix-space size per input assignment).
	CountAdmissiblePrefixes = ma.CountPrefixes
)

// The adversary combinator algebra: a closed set of operators over
// arbitrary adversaries. Together with the constructors above they form
// the full definition surface; scenario specs compile to exactly these.
var (
	// NewIntersect is the product automaton a ∩ b (conjunction of
	// admissibility, graph-set intersection per round, dead branches
	// pruned).
	NewIntersect = ma.NewIntersect
	// NewConcat plays the first adversary for exactly k rounds, then the
	// second forever.
	NewConcat = ma.NewConcat
	// NewFilter restricts an adversary to rounds satisfying a graph
	// predicate.
	NewFilter = ma.NewFilter
	// NewWindowStable adds the obligation that some graph repeats k
	// consecutive rounds.
	NewWindowStable = ma.NewWindowStable
	// NewGraphPred wraps an arbitrary predicate; the Pred* constructors
	// cover the structural predicates of the literature.
	NewGraphPred          = ma.NewGraphPred
	PredStronglyConnected = ma.PredStronglyConnected
	PredMinOutDegree      = ma.PredMinOutDegree
	PredRooted            = ma.PredRooted
	PredStar              = ma.PredStar
	PredNonsplit          = ma.PredNonsplit
	// Fingerprint returns the canonical behavioural hash of an adversary's
	// reachable automaton: the identity under which sessions and caching
	// layers key analysis results.
	Fingerprint = ma.Fingerprint
	// Normalize rewrites an adversary expression into the canonical form
	// Fingerprint hashes and the checker routes on (combinator identities
	// such as a ∩ unrestricted → a, concat(a, 0, b) → b).
	Normalize = ma.Normalize
	// Automorphisms computes the process-relabeling symmetry group of an
	// adversary — the group the checker quotients prefix spaces by
	// (DESIGN.md §13). Falls back to the trivial group when detection is
	// out of budget.
	Automorphisms = ma.Automorphisms
	// TrivialGroup is the identity-only symmetry group on n processes.
	TrivialGroup = ma.TrivialGroup
)

// Group is a process-permutation group under which an adversary is
// invariant; the symmetry quotient's algebraic core.
type Group = ma.Group

// Scenario is a parsed declarative scenario: a named adversary expression
// plus checker options; see internal/scenario for the JSON format.
type Scenario = scenario.Scenario

// Scenario loading.
var (
	// LoadScenario reads and builds a scenario file.
	LoadScenario = scenario.Load
	// ParseScenario builds a scenario from JSON bytes.
	ParseScenario = scenario.Parse
	// ScenarioRegistry lists the built-in seed-family scenarios.
	ScenarioRegistry = scenario.Registry
	// LookupScenario finds a built-in scenario by name.
	LookupScenario = scenario.Lookup
)

// Parameterized scenario templates and batch sweeps.
type (
	// Template is a parameterized scenario: a params block of integer
	// ranges/lists plus a scenario body with ${param} placeholders; it
	// expands into a concrete scenario grid. See internal/scenario.
	Template = scenario.Template
	// TemplateParam is one declared template parameter with its values.
	TemplateParam = scenario.Param
	// TemplateCell is one concrete scenario of an expanded grid.
	TemplateCell = scenario.Cell
	// TemplateBinding is one parameter's value in a grid cell.
	TemplateBinding = scenario.Binding
	// SweepConfig tunes a sweep run (worker pool, per-cell timeout,
	// progress callback, shared verdict cache).
	SweepConfig = sweep.Config
	// SweepReport is the structured outcome of a sweep: per-cell verdicts
	// with cache attribution plus grid-level summary statistics.
	SweepReport = sweep.Report
	// SweepCellResult is one grid cell's outcome in a sweep report.
	SweepCellResult = sweep.CellResult
	// SweepCache is the concurrency-safe fingerprint-keyed verdict cache;
	// share one across sweeps to reuse verdicts between templates.
	SweepCache = sweep.Cache
	// SweepKey identifies one unit of solvability work up to behavioural
	// isomorphism: (adversary fingerprint, resolved options, certificate
	// eligibility). Its String method renders the versioned canonical
	// encoding (parse it back with ParseSweepKey).
	SweepKey = sweep.Key
	// SweepOutcome is one cached/stored verdict: the solved fields of a
	// cell, independent of which scenario asked.
	SweepOutcome = sweep.Outcome
	// SweepTier is a persistent cache tier under a SweepCache (the verdict
	// store implements it).
	SweepTier = sweep.Tier
	// SweepHitTier attributes a cache answer to its origin tier.
	SweepHitTier = sweep.HitTier
	// SweepCacheStats counts a cache's hits by tier, computes and tier
	// write failures.
	SweepCacheStats = sweep.CacheStats
	// SweepPagingSummary aggregates a sweep's out-of-core paging and
	// checkpoint gauges (all-zero without a CheckpointDir).
	SweepPagingSummary = sweep.PagingSummary
	// VerdictStore is the disk-backed content-addressed verdict store:
	// one checksummed record per SweepKey, written atomically, quarantined
	// when corrupt. It implements SweepTier.
	VerdictStore = store.Store
	// VerdictStoreStats sizes a store (records, bytes, quarantined).
	VerdictStoreStats = store.Stats
)

var (
	// LoadTemplate reads and parses a template file.
	LoadTemplate = scenario.LoadTemplate
	// ParseTemplate parses a template from JSON bytes.
	ParseTemplate = scenario.ParseTemplate
	// IsTemplateDoc reports whether a document declares a params block
	// (parse it with ParseTemplate) or is a concrete scenario (Parse).
	IsTemplateDoc = scenario.IsTemplate
	// Sweep expands a template and analyses its grid over a bounded worker
	// pool, deduping behaviourally isomorphic cells through the verdict
	// cache. Cancellation yields a well-formed partial report.
	Sweep = sweep.Run
	// SweepScenario analyses one concrete scenario through the sweep
	// engine as a single-cell grid, sharing the same cache, session-pool
	// and progress machinery as template sweeps.
	SweepScenario = sweep.RunScenario
	// NewSweepCache returns an empty shared verdict cache.
	NewSweepCache = sweep.NewCache
	// NewTieredSweepCache returns a cache layered over a persistent tier:
	// memory → tier → compute, with write-behind of computed verdicts.
	NewTieredSweepCache = sweep.NewTieredCache
	// SweepKeyFor computes the verdict-cache key of one workload.
	SweepKeyFor = sweep.KeyFor
	// ParseSweepKey parses a canonical key encoding (SweepKey.String),
	// strictly: accepted inputs re-encode byte-identically.
	ParseSweepKey = sweep.ParseKey
	// OpenVerdictStore opens (creating if needed) a verdict store
	// directory and loads its record index; corrupt records are
	// quarantined, never fatal.
	OpenVerdictStore = store.Open
)

// Sweep cell statuses (SweepCellResult.Status).
const (
	SweepStatusDone      = sweep.StatusDone
	SweepStatusError     = sweep.StatusError
	SweepStatusCancelled = sweep.StatusCancelled
)

// Cache-hit origin tiers (SweepCellResult.CacheTier renders these).
const (
	SweepTierNone   = sweep.TierNone
	SweepTierMemory = sweep.TierMemory
	SweepTierDisk   = sweep.TierDisk
)

// SweepKeyEncodingVersion is the canonical key encoding's version tag.
const SweepKeyEncodingVersion = sweep.KeyEncodingVersion

// Coordinated multi-worker sweeps: durable cell leases, checkpoint
// adoption, and the fleet coordinator (see internal/coord and
// cmd/topoconcoord).
type (
	// CoordConfig tunes a coordinated sweep run: fleet URLs, lease TTL,
	// per-cell circuit-breaker budget, dispatch concurrency and backoff.
	CoordConfig = coord.Config
	// CoordStats counts a coordinated run's dispatch traffic — retries,
	// steals, breaker trips, dead workers.
	CoordStats = coord.Stats
	// CellLease is one durable per-cell lease record in a fleet's shared
	// checkpoint directory.
	CellLease = store.Lease
	// CellLeases manages a content-addressed lease directory (one
	// checksummed record per SweepKey; see OpenLeases).
	CellLeases = store.Leases
	// CellLeaseStats counts a lease directory's acquire/renew/release and
	// quarantine traffic.
	CellLeaseStats = store.LeaseStats
)

var (
	// CoordinateSweep expands a template grid once and dispatches its
	// cells across a fleet of topoconsvc workers; dead workers' cells are
	// stolen through expired leases and adopted checkpoints, and the
	// merged report comes back in grid order, as if one process had run
	// the sweep.
	CoordinateSweep = coord.Run
	// OpenLeases opens (creating if needed) a shared cell-lease directory.
	OpenLeases = store.OpenLeases
	// AdoptCheckpoint moves a dead worker's per-cell checkpoint into a
	// successor's namespace — validate first, rename with the manifest
	// last — so the successor resumes with zero horizon re-extension.
	AdoptCheckpoint = ckpt.Adopt
	// SummarizeSweepCells aggregates externally-produced cell results,
	// e.g. a coordinator's merged multi-worker report.
	SummarizeSweepCells = sweep.Summarize
	// SweepCellDir is the content-addressed checkpoint subdirectory name
	// of one cell key.
	SweepCellDir = sweep.CellDir
)

// Lease states (CellLease.State) and fencing errors.
const (
	LeaseHeld     = store.LeaseHeld
	LeaseReleased = store.LeaseReleased
)

var (
	// ErrLeaseHeld: another holder's lease is still live (retry after its
	// expiry). ErrLeaseLost: a peer took the cell over; stand down.
	ErrLeaseHeld = store.ErrLeaseHeld
	ErrLeaseLost = store.ErrLeaseLost
)

// Runs, process-time graphs and views.
type (
	// Run is a finite run prefix: inputs plus graph sequence.
	Run = ptg.Run
	// Views carries the hash-consed views of a run.
	Views = ptg.Views
	// Interner hash-conses causal cones.
	Interner = ptg.Interner
	// Cone is an explicit causal cone (for rendering and verification).
	Cone = ptg.Cone
)

var (
	// NewRun builds a run with the given inputs and no rounds.
	NewRun = ptg.NewRun
	// NewInterner returns an empty view interner.
	NewInterner = ptg.NewInterner
	// ComputeViews computes all views of a run.
	ComputeViews = ptg.ComputeViews
	// ConeOf extracts the explicit causal cone of (p, t).
	ConeOf = ptg.ConeOf
	// RenderPTGraph draws a process-time graph like Figure 2.
	RenderPTGraph = ptg.Render
	// RenderPTGraphDOT emits Graphviz DOT for a process-time graph.
	RenderPTGraphDOT = ptg.RenderDOT
	// AgreeLevel, MinAgreeLevel and MaxAgreeLevel expose the distance
	// exponents of d_{p}, d_min and d_max on finite prefixes.
	AgreeLevel    = ptg.AgreeLevel
	MinAgreeLevel = ptg.MinAgreeLevel
	MaxAgreeLevel = ptg.MaxAgreeLevel
)

// Topological analysis.
type (
	// Space is a horizon-t prefix space of an adversary.
	Space = topo.Space
	// Decomposition is its connected-component structure.
	Decomposition = topo.Decomposition
	// Component is one ε-approximation class.
	Component = topo.Component
)

// SpaceConfig collects the optional knobs of BuildSpaceCtx.
type SpaceConfig = topo.Config

var (
	// BuildSpace enumerates the prefix space of an adversary.
	BuildSpace = topo.Build
	// BuildSpaceWithInterner shares views across spaces and maps.
	BuildSpaceWithInterner = topo.BuildWithInterner
	// BuildSpaceCtx enumerates a prefix space under a context; grow the
	// result one round at a time with Space.Extend instead of rebuilding.
	BuildSpaceCtx = topo.BuildCtx
	// Decompose computes the ε-approximation components.
	Decompose = topo.Decompose
	// DecomposeCtx is Decompose with cancellation and worker-pool support;
	// refine its result into the next horizon with Decomposition.Refine
	// instead of re-decomposing from scratch (components only ever split
	// under the refinement invariant).
	DecomposeCtx = topo.DecomposeCtx
	// CrossDecisionLevel measures a fixed algorithm's decision-set
	// separation over a space (Corollary 6.1).
	CrossDecisionLevel = check.CrossDecisionLevel
)

// Solvability checking and the universal algorithm.
type (
	// Analyzer is a stateful solvability-analysis session: it refines the
	// adversary's prefix space one horizon at a time (incrementally, via
	// Space.Extend) and supports cancellation, progress reporting and
	// manual stepping. Construct with NewAnalyzer and the With* options.
	Analyzer = check.Analyzer
	// AnalyzerOption configures an Analyzer at construction.
	AnalyzerOption = check.AnalyzerOption
	// HorizonReport describes one analysed horizon; see WithProgress.
	HorizonReport = check.HorizonReport
	// CheckOptions configure CheckConsensus.
	CheckOptions = check.Options
	// CheckResult is the analysis outcome.
	CheckResult = check.Result
	// Verdict is the overall classification.
	Verdict = check.Verdict
	// DecisionMap is the compiled universal algorithm of Theorem 5.5.
	DecisionMap = check.DecisionMap
	// DecisionRule is a causally-local decision rule.
	DecisionRule = check.Rule
	// LocalView is the causally-local knowledge a rule inspects.
	LocalView = check.View
)

// Analysis sessions.
var (
	// NewAnalyzer creates an analysis session for an adversary.
	NewAnalyzer = check.NewAnalyzer
	// WithInputDomain sets the number of input values (default 2).
	WithInputDomain = check.WithInputDomain
	// WithMaxHorizon bounds the prefix horizons analysed (default 7).
	WithMaxHorizon = check.WithMaxHorizon
	// WithMaxRuns bounds the prefix-space size.
	WithMaxRuns = check.WithMaxRuns
	// WithDefaultValue sets the fallback component decision value.
	WithDefaultValue = check.WithDefaultValue
	// WithCertChainLen bounds the bivalence-certificate search.
	WithCertChainLen = check.WithCertChainLen
	// WithLatencySlack sets the non-compact decision-latency budget.
	WithLatencySlack = check.WithLatencySlack
	// WithNoSymmetry disables the automorphism quotient (DESIGN.md §13):
	// the session interns the full prefix space instead of one
	// representative per orbit. Verdicts and reports are identical either
	// way; use it for differential testing and symmetry-bug triage.
	WithNoSymmetry = check.WithNoSymmetry
	// WithParallelism spreads frontier expansion and decomposition over a
	// worker pool.
	WithParallelism = check.WithParallelism
	// WithRetainSpaces bounds session memory: keep the k deepest prefix
	// spaces plus, always, the separation-horizon space; evicted horizons
	// return nil from SpaceAt. Default 1 (deepest + separation); 0 retains
	// every horizon.
	WithRetainSpaces = check.WithRetainSpaces
	// WithProgress registers a per-horizon progress callback.
	WithProgress = check.WithProgress
	// WithCheckOptions bulk-applies a CheckOptions struct.
	WithCheckOptions = check.WithOptions
)

// ErrHorizonExhausted is returned by Analyzer.Step past MaxHorizon.
var ErrHorizonExhausted = check.ErrHorizonExhausted

// Out-of-core paging and session checkpoint/resume.
type (
	// Pager is the frontier paging layer: it spills cold frontier rounds'
	// column arrays to checksummed page files under a hot-set byte budget
	// and faults them back in transparently. Attach one to an Analyzer
	// with WithPager.
	Pager = pager.Pager
	// PagerConfig configures NewPager (directory, hot-set budget).
	PagerConfig = pager.Config
	// PagerStats are a pager's cumulative spill/fault/residency gauges.
	PagerStats = pager.Stats
	// SessionSnapshot is an Analyzer session's serializable state; see
	// Analyzer.Snapshot and RestoreAnalyzer.
	SessionSnapshot = check.SessionSnapshot
	// CheckpointConfig tunes RunCheckpointed (directory, hot-set budget,
	// checkpoint cadence).
	CheckpointConfig = ckpt.Config
	// CheckpointInfo reports what RunCheckpointed did (resume point,
	// checkpoints written, pager traffic).
	CheckpointInfo = ckpt.Info
)

var (
	// NewPager opens (or creates) a page directory.
	NewPager = pager.New
	// WithPager attaches a paging layer to an Analyzer session.
	WithPager = check.WithPager
	// RestoreAnalyzer rebuilds an Analyzer from a SessionSnapshot.
	RestoreAnalyzer = check.RestoreAnalyzer
	// SaveCheckpoint / LoadCheckpoint / RemoveCheckpoint manage a whole
	// session checkpoint directory; CheckpointExists probes one.
	SaveCheckpoint   = ckpt.Save
	LoadCheckpoint   = ckpt.Load
	RemoveCheckpoint = ckpt.Remove
	CheckpointExists = ckpt.Exists
	// RunCheckpointed runs a full analysis resume-or-fresh: it continues
	// from a checkpoint when one matches, checkpoints periodically as it
	// refines, saves on interruption, and cleans up on success.
	RunCheckpointed = ckpt.RunCheck
)

// Checkpoint error taxonomy: a missing or corrupt (quarantined) checkpoint
// is ErrNoCheckpoint — recompute fresh; an intact checkpoint for the wrong
// adversary or options is a hard mismatch error — never silently recompute.
var (
	ErrNoCheckpoint                  = ckpt.ErrNoCheckpoint
	ErrCheckpointFingerprintMismatch = ckpt.ErrFingerprintMismatch
	ErrCheckpointConfigMismatch      = ckpt.ErrConfigMismatch
)

// Verdicts.
const (
	VerdictSolvable   = check.VerdictSolvable
	VerdictImpossible = check.VerdictImpossible
	VerdictUnknown    = check.VerdictUnknown
)

var (
	// CheckConsensus analyses solvability under an adversary.
	CheckConsensus = check.Consensus
	// BuildDecisionMap compiles the universal algorithm from a
	// decomposition.
	BuildDecisionMap = check.BuildDecisionMap
)

// Simulation.
type (
	// Process is a deterministic message-passing consensus process.
	Process = sim.Process
	// Trace is an execution record.
	Trace = sim.Trace
	// Violation is a consensus property breach.
	Violation = sim.Violation
)

var (
	// Execute runs processes over a run's graph sequence.
	Execute = sim.Execute
	// NewFullInfo builds full-information processes driven by a rule.
	NewFullInfo = sim.NewFullInfo
	// NewFloodMin builds the classic flooding baseline.
	NewFloodMin = sim.NewFloodMin
	// ExhaustiveSim executes all admissible runs of an adversary.
	ExhaustiveSim = sim.Exhaustive
	// RandomRun and RandomDoneRun sample admissible runs.
	RandomRun     = sim.RandomRun
	RandomDoneRun = sim.RandomDoneRun
	// CheckProperties verifies (T),(A),(V) on a trace.
	CheckProperties = sim.CheckConsensus
)

// Exact lasso analysis.
type (
	// LassoRun is an ultimately-periodic infinite run.
	LassoRun = lasso.Run
	// LassoAnalysis is the exact structure of a finite adversary.
	LassoAnalysis = lasso.Analysis
)

var (
	// NewLassoRun builds an ultimately-periodic run.
	NewLassoRun = lasso.NewRun
	// AgreementForever decides d_{p} = 0 exactly on lasso pairs.
	AgreementForever = lasso.AgreementForever
	// LassoDistanceZero decides d_min = 0 exactly.
	LassoDistanceZero = lasso.DistanceZero
	// LassoAgreeLevels returns exact per-process difference times.
	LassoAgreeLevels = lasso.AgreeLevels
	// LassoMinAgreeLevel returns the exact d_min exponent.
	LassoMinAgreeLevel = lasso.MinAgreeLevel
	// AnalyzeFinite applies Corollary 5.6 exactly to a finite adversary.
	AnalyzeFinite = lasso.Analyze
)

// Combinatorial baselines.
type (
	// HeardSetAnalysis is the broadcast automaton result.
	HeardSetAnalysis = baseline.HeardSetAnalysis
	// BivalenceCertificate is a bounded-chain impossibility proof.
	BivalenceCertificate = baseline.BivalenceCertificate
	// PumpCertificate is a self-similar impossibility proof.
	PumpCertificate = baseline.PumpCertificate
)

var (
	// AnalyzeHeardSet runs the broadcast automaton for one source.
	AnalyzeHeardSet = baseline.AnalyzeHeardSet
	// GuaranteedBroadcasters lists processes broadcasting in every run.
	GuaranteedBroadcasters = baseline.GuaranteedBroadcasters
	// ProveBivalent searches bounded bivalent chain certificates.
	ProveBivalent = baseline.ProveBivalent
	// FindPumpCertificate searches alternating-pump certificates.
	FindPumpCertificate = baseline.FindPumpCertificate
)
