package svc

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"topocon/internal/check"
	"topocon/internal/ckpt"
	"topocon/internal/faultfs"
	"topocon/internal/scenario"
	"topocon/internal/store"
	"topocon/internal/sweep"
)

// cellKey parses a concrete scenario document and returns its sweep key.
func cellKey(t *testing.T, doc string) (sweep.Key, *scenario.Scenario) {
	t.Helper()
	sc, err := scenario.Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	key, err := sweep.KeyFor(sc.Adversary, sc.Options)
	if err != nil {
		t.Fatal(err)
	}
	return key, sc
}

// claim POSTs a claim for the document's cell and decodes the result.
func (h *harness) claim(doc string, attempt int, adoptFrom string) (int, sweep.CellResult, string) {
	h.t.Helper()
	key, _ := cellKey(h.t, doc)
	body := fmt.Sprintf(`{"scenario": %s, "attempt": %d, "adoptFrom": %q}`, doc, attempt, adoptFrom)
	resp, err := http.Post(h.ts.URL+"/v1/cells/"+key.String()+"/claim", "application/json", strings.NewReader(body))
	if err != nil {
		h.t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var raw json.RawMessage
		json.NewDecoder(resp.Body).Decode(&raw)
		return resp.StatusCode, sweep.CellResult{}, string(raw)
	}
	var res sweep.CellResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		h.t.Fatalf("decoding claim result: %v", err)
	}
	return resp.StatusCode, res, ""
}

// workerHarness boots a coordinated worker sharing the given store and
// checkpoint directories.
func workerHarness(t *testing.T, storeDir, ckptDir, id string, faults *faultfs.Schedule) *harness {
	t.Helper()
	return newHarness(t, Config{
		StoreDir:      storeDir,
		CheckpointDir: ckptDir,
		WorkerID:      id,
		Workers:       2,
		Faults:        faults,
	})
}

func TestClaimSolvesCell(t *testing.T) {
	h := workerHarness(t, t.TempDir(), t.TempDir(), "w1", nil)
	doc := lossyScenario("cell-1")
	code, res, errBody := h.claim(doc, 1, "")
	if code != http.StatusOK {
		t.Fatalf("claim = %d: %s", code, errBody)
	}
	if res.Status != sweep.StatusDone || res.Verdict != "impossible" || res.Match == nil || !*res.Match {
		t.Fatalf("claim result = %+v", res)
	}
	if res.Worker != "w1" || res.Attempt != 1 || res.StolenFrom != "" {
		t.Fatalf("provenance = worker %q attempt %d stolenFrom %q", res.Worker, res.Attempt, res.StolenFrom)
	}
	// The lease ends released, not abandoned: a successor would not wait.
	key, _ := cellKey(t, doc)
	lease, ok := h.svc.leases.Get(key)
	if !ok || lease.State != store.LeaseReleased || lease.Holder != "w1" {
		t.Fatalf("post-claim lease = %+v, %v", lease, ok)
	}
	m := h.metrics()
	if m.Leases == nil || m.Leases.Held != 0 || m.Leases.Traffic.Acquired != 1 || m.Leases.Traffic.Released != 1 {
		t.Fatalf("lease metrics = %+v", m.Leases)
	}
	// The verdict is in the shared store: a second claim is a cache hit.
	code, res2, _ := h.claim(doc, 1, "")
	if code != http.StatusOK || !res2.CacheHit {
		t.Fatalf("second claim = %d cacheHit=%v", code, res2.CacheHit)
	}
}

func TestClaimRejectsKeyMismatch(t *testing.T) {
	h := workerHarness(t, t.TempDir(), t.TempDir(), "w1", nil)
	key, _ := cellKey(t, lossyScenario("real"))
	// Claim the real key but ship a behaviourally different scenario.
	other := strings.Replace(lossyScenario("fake"), `"maxHorizon": 4`, `"maxHorizon": 3`, 1)
	body := fmt.Sprintf(`{"scenario": %s}`, other)
	resp, err := http.Post(h.ts.URL+"/v1/cells/"+key.String()+"/claim", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("mismatched claim = %d, want 400", resp.StatusCode)
	}
}

func TestClaimRequiresWorkerMode(t *testing.T) {
	h := newHarness(t, Config{StoreDir: t.TempDir(), Workers: 1})
	doc := lossyScenario("cell-1")
	code, _, _ := h.claim(doc, 1, "")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("claim on uncoordinated daemon = %d, want 503", code)
	}
}

func TestClaimConflictWhileLeaseLive(t *testing.T) {
	storeDir, ckptDir := t.TempDir(), t.TempDir()
	h := workerHarness(t, storeDir, ckptDir, "w1", nil)
	doc := lossyScenario("cell-1")
	key, _ := cellKey(t, doc)
	// A live peer (simulated via direct lease access) holds the cell.
	peer, err := store.OpenLeases(filepath.Join(ckptDir, "leases"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := peer.Acquire(key, "w9", time.Hour, 1); err != nil {
		t.Fatal(err)
	}
	code, _, errBody := h.claim(doc, 1, "")
	if code != http.StatusConflict || !strings.Contains(errBody, "w9") {
		t.Fatalf("claim against live lease = %d: %s", code, errBody)
	}
}

// TestClaimStealsAndAdopts is the cross-worker resume contract over HTTP:
// a dead worker left an expired lease and a mid-horizon checkpoint; the
// claiming worker steals the lease, adopts the checkpoint into its own
// namespace, and resumes to the same verdict with zero re-extension.
func TestClaimStealsAndAdopts(t *testing.T) {
	storeDir, ckptDir := t.TempDir(), t.TempDir()
	doc := lossyScenario("cell-1")
	key, sc := cellKey(t, doc)

	// The dead worker's legacy: a checkpoint killed after two horizons...
	deadDir := filepath.Join(ckptDir, "cells", "w-dead", sweep.CellDir(key))
	ctx, cancelRun := context.WithCancel(context.Background())
	cfg := ckpt.Config{Dir: deadDir, OnHorizon: func(r check.HorizonReport) {
		if r.Horizon >= 2 {
			cancelRun()
		}
	}}
	if _, info, err := ckpt.RunCheck(ctx, sc.Adversary, cfg, sc.Options, 1); err == nil || info.Written == 0 {
		t.Fatalf("setup kill did not leave a checkpoint (err=%v written=%d)", err, info.Written)
	}
	cancelRun()
	// ...and an expired, still-held lease.
	leases, err := store.OpenLeases(filepath.Join(ckptDir, "leases"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := leases.Acquire(key, "w-dead", -time.Second, 1); err != nil {
		t.Fatal(err)
	}

	h := workerHarness(t, storeDir, ckptDir, "w2", nil)
	code, res, errBody := h.claim(doc, 2, "w-dead")
	if code != http.StatusOK {
		t.Fatalf("stealing claim = %d: %s", code, errBody)
	}
	if res.StolenFrom != "w-dead" || res.Attempt != 2 || res.Worker != "w2" {
		t.Fatalf("steal provenance = %+v", res)
	}
	if !res.Resumed {
		t.Fatal("stolen cell did not resume from the adopted checkpoint")
	}
	if res.Verdict != "impossible" || res.Status != sweep.StatusDone {
		t.Fatalf("stolen cell result = %+v", res)
	}
	m := h.metrics()
	if m.Leases == nil || m.Leases.Stolen != 1 || m.Leases.CellRetries != 1 {
		t.Fatalf("steal metrics = %+v", m.Leases)
	}
}

func TestClaimLeaseWriteFaultIsRetryable(t *testing.T) {
	faults, err := faultfs.Parse("fail:lease:1")
	if err != nil {
		t.Fatal(err)
	}
	h := workerHarness(t, t.TempDir(), t.TempDir(), "w1", faults)
	doc := lossyScenario("cell-1")
	code, _, errBody := h.claim(doc, 1, "")
	if code != http.StatusInternalServerError || !strings.Contains(errBody, "lease") {
		t.Fatalf("claim under lease fault = %d: %s", code, errBody)
	}
	// The failed acquire never took effect; the retry dispatch succeeds.
	code, res, errBody := h.claim(doc, 2, "")
	if code != http.StatusOK || res.Status != sweep.StatusDone {
		t.Fatalf("retry claim = %d: %s", code, errBody)
	}
}

// TestDrainReleasesHeldLeases pins the SIGTERM satellite: a worker
// frozen mid-cell (injected stall) holds a live lease; Shutdown aborts
// the solve and the lease ends *released* on disk — successors claim
// immediately instead of waiting out the TTL.
func TestDrainReleasesHeldLeases(t *testing.T) {
	faults, err := faultfs.Parse("stall:horizon:1")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(faults.ReleaseStalls)
	h := workerHarness(t, t.TempDir(), t.TempDir(), "w1", faults)
	doc := lossyScenario("cell-1")
	key, _ := cellKey(t, doc)

	claimDone := make(chan int, 1)
	go func() {
		code, _, _ := h.claim(doc, 1, "")
		claimDone <- code
	}()

	// Wait until the stalled claim holds a live lease.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if lease, ok := h.svc.leases.Get(key); ok && lease.Live(time.Now()) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("claim never acquired its lease")
		}
		time.Sleep(2 * time.Millisecond)
	}

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		shutdownDone <- h.svc.Shutdown(ctx)
	}()
	// The solve is wedged inside the stall hook; unblock it so the abort
	// can propagate (the SIGKILL variant of this scenario is the CI chaos
	// E2E's job — here we only care that drain releases, not abandons).
	time.Sleep(20 * time.Millisecond)
	faults.ReleaseStalls()

	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	select {
	case code := <-claimDone:
		if code != http.StatusServiceUnavailable && code != http.StatusOK {
			t.Fatalf("drained claim = %d, want 503 (or a photo-finish 200)", code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("claim handler never returned after drain")
	}
	lease, ok := h.svc.leases.Get(key)
	if !ok || lease.State != store.LeaseReleased {
		t.Fatalf("post-drain lease = %+v, %v; want released", lease, ok)
	}
}

func TestReleaseEndpoint(t *testing.T) {
	h := workerHarness(t, t.TempDir(), t.TempDir(), "w1", nil)
	doc := lossyScenario("cell-1")
	key, _ := cellKey(t, doc)

	// Nothing held: 404.
	resp, err := http.Post(h.ts.URL+"/v1/cells/"+key.String()+"/release", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("release with nothing held = %d, want 404", resp.StatusCode)
	}

	// A held (but not actively claimed) lease is released on request.
	if _, _, err := h.svc.leases.Acquire(key, "w1", time.Hour, 1); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(h.ts.URL+"/v1/cells/"+key.String()+"/release", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("release of held lease = %d, want 200", resp.StatusCode)
	}
	if lease, ok := h.svc.leases.Get(key); !ok || lease.State != store.LeaseReleased {
		t.Fatalf("lease after release = %+v, %v", lease, ok)
	}
}
