package svc

// The cell-claim surface: the worker-side half of the multi-worker sweep
// protocol (the coordinator half lives in internal/coord). A claim is a
// synchronous POST — the coordinator sends one cell's scenario document,
// the worker takes a time-bounded lease on the cell, solves it (resuming
// an adopted predecessor checkpoint when the coordinator names one), and
// answers with the decorated CellResult. Worker death is visible to the
// coordinator twice over: the TCP connection dies, and the lease stops
// being renewed — after which any peer may steal the cell.

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"log"
	"net/http"
	"path/filepath"
	"time"

	"topocon/internal/check"
	"topocon/internal/ckpt"
	"topocon/internal/scenario"
	"topocon/internal/store"
	"topocon/internal/sweep"
)

// claimRequest is the coordinator's dispatch body.
type claimRequest struct {
	// Scenario is the cell's concrete scenario document (not a template —
	// the coordinator expands the grid).
	Scenario json.RawMessage `json:"scenario"`
	// TTLMillis overrides the worker's configured lease TTL (≤ 0: keep).
	TTLMillis int64 `json:"ttlMillis,omitempty"`
	// Attempt is the coordinator's 1-based dispatch attempt for this cell.
	Attempt int `json:"attempt,omitempty"`
	// AdoptFrom names the previous lease holder whose per-cell checkpoint
	// this worker should adopt before solving ("" for first dispatch).
	AdoptFrom string `json:"adoptFrom,omitempty"`
}

// claimConflict is the 409 body: who holds the cell and until when, so
// the coordinator knows how long to wait before a steal attempt.
type claimConflict struct {
	Error   string    `json:"error"`
	Holder  string    `json:"holder,omitempty"`
	Expires time.Time `json:"expires,omitempty"`
}

// handleClaim is POST /v1/cells/{key}/claim. Status codes are the
// protocol: 200 solved (result in the body, possibly Status "error"),
// 400 malformed or key mismatch, 409 the cell is claimed here or leased
// to a live peer, 429 no session slot free, 500 lease machinery failure
// (retryable), 503 not a coordinated worker or draining.
func (s *Service) handleClaim(w http.ResponseWriter, r *http.Request) {
	if s.leases == nil {
		writeError(w, http.StatusServiceUnavailable, "not a coordinated worker (needs -worker-id and -checkpoint-dir)")
		return
	}
	key, err := sweep.ParseKey(r.PathValue("key"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	var req claimRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, "claim body: %v", err)
		return
	}
	sc, err := scenario.Parse(req.Scenario)
	if err != nil {
		writeError(w, http.StatusBadRequest, "claim scenario: %v", err)
		return
	}
	// The path key must be the scenario's own key: a mismatch means the
	// coordinator and worker would file the verdict under different cells.
	scKey, err := sweep.KeyFor(sc.Adversary, sc.Options)
	if err != nil {
		writeError(w, http.StatusBadRequest, "keying scenario: %v", err)
		return
	}
	if scKey != key {
		writeError(w, http.StatusBadRequest, "scenario key %s does not match claimed cell %s", scKey.String(), key.String())
		return
	}
	attempt := req.Attempt
	if attempt <= 0 {
		attempt = 1
	}
	if attempt > 1 {
		s.cellRetries.Add(1)
	}
	ttl := s.cfg.LeaseTTL
	if req.TTLMillis > 0 {
		ttl = time.Duration(req.TTLMillis) * time.Millisecond
	}

	s.mu.Lock()
	closing := s.closing
	s.mu.Unlock()
	if closing || s.rootCtx.Err() != nil {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}

	// The claim context dies with the request (coordinator gone), the
	// service root (drain), or a failed lease renewal (self-fencing).
	claimCtx, cancel := context.WithCancel(r.Context())
	defer cancel()
	stop := context.AfterFunc(s.rootCtx, cancel)
	defer stop()

	keyStr := key.String()
	s.claimsMu.Lock()
	if _, busy := s.claims[keyStr]; busy {
		s.claimsMu.Unlock()
		writeJSON(w, http.StatusConflict, claimConflict{Error: "cell already claimed on this worker", Holder: s.cfg.WorkerID})
		return
	}
	s.claims[keyStr] = cancel
	s.claimsMu.Unlock()
	s.wg.Add(1) // Shutdown drains in-flight claims like queued jobs
	defer func() {
		s.claimsMu.Lock()
		delete(s.claims, keyStr)
		s.claimsMu.Unlock()
		s.wg.Done()
	}()

	// One session slot, non-blocking: a coordinator saturating the fleet
	// gets an immediate 429 and redistributes instead of queueing blind.
	select {
	case s.slots <- struct{}{}:
	default:
		writeError(w, http.StatusTooManyRequests, "no session slot free")
		return
	}
	defer func() { <-s.slots }()

	prev, hadPrev, err := s.leases.Acquire(key, s.cfg.WorkerID, ttl, attempt)
	if errors.Is(err, store.ErrLeaseHeld) {
		writeJSON(w, http.StatusConflict, claimConflict{Error: err.Error(), Holder: prev.Holder, Expires: prev.Expires})
		return
	}
	if err != nil {
		// A lease write failure (disk trouble or an injected fault): the
		// claim never took effect, so the coordinator may safely retry.
		writeError(w, http.StatusInternalServerError, "acquiring lease: %v", err)
		return
	}
	stolenFrom := ""
	if hadPrev && prev.Holder != s.cfg.WorkerID && prev.State == store.LeaseHeld {
		// Acquire only lets an expired held lease through: this is a steal.
		stolenFrom = prev.Holder
		s.leasesStolen.Add(1)
		log.Printf("svc: worker %s stole cell %s from %s (lease expired %s, attempt %d)",
			s.cfg.WorkerID, sc.Name, prev.Holder, prev.Expires.Format(time.RFC3339), attempt)
	}
	defer func() {
		// Held leases are released, never abandoned — on success, failure
		// and drain alike — so successors claim instantly instead of
		// waiting out the TTL. ErrLeaseLost means a peer already stole the
		// cell; the record is theirs now.
		if err := s.leases.Release(key, s.cfg.WorkerID); err != nil && !errors.Is(err, store.ErrLeaseLost) {
			log.Printf("svc: worker %s releasing lease for %s: %v", s.cfg.WorkerID, sc.Name, err)
		}
	}()

	// Adopt the named predecessor's checkpoint into our namespace so the
	// solve resumes at its deepest horizon with zero re-extension. No
	// checkpoint (the predecessor died before its first save) or a corrupt
	// one (quarantined by Adopt) both mean a fresh start — correct either
	// way, so adoption failures never fail the claim.
	adopted := false
	if req.AdoptFrom != "" && req.AdoptFrom != s.cfg.WorkerID {
		src := filepath.Join(s.cfg.CheckpointDir, "cells", req.AdoptFrom, sweep.CellDir(key))
		dst := filepath.Join(s.cellsDir(), sweep.CellDir(key))
		switch horizon, err := ckpt.Adopt(src, dst); {
		case err == nil:
			adopted = true
			log.Printf("svc: worker %s adopted %s's checkpoint for cell %s at horizon %d",
				s.cfg.WorkerID, req.AdoptFrom, sc.Name, horizon)
		case !errors.Is(err, ckpt.ErrNoCheckpoint):
			log.Printf("svc: worker %s adopting %s's checkpoint for cell %s: %v (starting fresh)",
				s.cfg.WorkerID, req.AdoptFrom, sc.Name, err)
		}
	}

	// Heartbeat: renew at a third of the TTL; a failed renewal means we
	// can no longer prove liveness — self-fence by cancelling the solve
	// before a successor's steal turns into two workers on one cell.
	renewDone := make(chan struct{})
	go func() {
		defer close(renewDone)
		t := time.NewTicker(ttl / 3)
		defer t.Stop()
		for {
			select {
			case <-claimCtx.Done():
				return
			case <-t.C:
				if err := s.leases.Renew(key, s.cfg.WorkerID, ttl); err != nil {
					log.Printf("svc: worker %s: renewing lease for %s: %v (abandoning cell)",
						s.cfg.WorkerID, sc.Name, err)
					cancel()
					return
				}
			}
		}
	}()
	defer func() { cancel(); <-renewDone }()

	cfg := sweep.Config{
		CellParallelism: s.cfg.CellParallelism,
		CellTimeout:     s.cfg.CellTimeout,
		Cache:           s.cache,
		OnAnalyzerBuilt: func(string) { s.analyzersBuilt.Add(1) },
		CheckpointDir:   s.cellsDir(),
		CheckpointEvery: s.cfg.CheckpointEvery,
		PagerHotBytes:   s.cfg.PagerHotBytes,
		// The horizon fault seam, scoped by cell name: a stall rule freezes
		// this worker mid-cell with its lease still on disk — the chaos
		// tests' stand-in for a wedged process.
		CellProgress: func(cell string, _ check.HorizonReport) {
			_ = s.cfg.Faults.Hit("horizon", cell)
		},
	}
	report, runErr := sweep.RunScenario(claimCtx, sc, cfg)
	if report != nil {
		s.addPaging(report.Summary.Paging)
	}
	if runErr != nil || report == nil || len(report.Cells) != 1 {
		switch {
		case s.rootCtx.Err() != nil:
			writeError(w, http.StatusServiceUnavailable, "draining")
		case claimCtx.Err() != nil && r.Context().Err() == nil:
			writeError(w, http.StatusInternalServerError, "lease renewal failed mid-solve; cell abandoned")
		default:
			writeError(w, http.StatusInternalServerError, "solving cell: %v", runErr)
		}
		return
	}
	res := report.Cells[0]
	res.Worker = s.cfg.WorkerID
	res.Attempt = attempt
	res.StolenFrom = stolenFrom
	if adopted && !res.Resumed && !res.CacheHit {
		// Resumed is normally stamped by the checkpoint layer; an adopted
		// checkpoint invalid on arrival would leave it false. Belt and
		// braces for report consumers asserting zero re-extension.
		log.Printf("svc: worker %s: adopted checkpoint for %s was not resumed", s.cfg.WorkerID, sc.Name)
	}
	writeJSON(w, http.StatusOK, res)
}

// handleRelease is POST /v1/cells/{key}/release: cancel an in-flight
// claim for the cell (202 — the claim response carries the abort), or
// mark this worker's on-disk lease released (200) so a successor need
// not wait out the TTL. 404 when this worker holds nothing for the key.
func (s *Service) handleRelease(w http.ResponseWriter, r *http.Request) {
	if s.leases == nil {
		writeError(w, http.StatusServiceUnavailable, "not a coordinated worker (needs -worker-id and -checkpoint-dir)")
		return
	}
	key, err := sweep.ParseKey(r.PathValue("key"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.claimsMu.Lock()
	cancel, active := s.claims[key.String()]
	s.claimsMu.Unlock()
	if active {
		cancel()
		writeJSON(w, http.StatusAccepted, map[string]string{"status": "cancelling"})
		return
	}
	lease, ok := s.leases.Get(key)
	if !ok || lease.Holder != s.cfg.WorkerID || lease.State != store.LeaseHeld {
		writeError(w, http.StatusNotFound, "no lease held here for this cell")
		return
	}
	if err := s.leases.Release(key, s.cfg.WorkerID); err != nil {
		writeError(w, http.StatusInternalServerError, "releasing lease: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "released"})
}

// cancelClaims aborts every in-flight claim. Shutdown calls it right
// after cancelling the root context: each claim's solve winds down and
// its deferred lease release runs before the claim handler returns, so a
// drained worker leaves released leases, never abandoned ones.
func (s *Service) cancelClaims() {
	s.claimsMu.Lock()
	for _, cancel := range s.claims {
		cancel()
	}
	s.claimsMu.Unlock()
}
