package svc

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"topocon/internal/sweep"
)

var (
	errShutdown  = errors.New("svc: shutting down")
	errQueueFull = errors.New("svc: job queue full")
)

// Handler returns the service's HTTP API:
//
//	POST /v1/jobs            submit a scenario or template document
//	GET  /v1/jobs            list jobs (newest last)
//	GET  /v1/jobs/{id}       job status, with the report once finished
//	GET  /v1/jobs/{id}/events  progress stream (SSE; ?format=ndjson for lines)
//	GET  /v1/verdicts/{key}  look up one verdict by canonical sweep key
//	POST /v1/cells/{key}/claim    claim + solve one cell under a lease
//	                              (coordinated worker mode only)
//	POST /v1/cells/{key}/release  cancel a claim / release a held lease
//	GET  /healthz            liveness (503 while shutting down)
//	GET  /metrics            jobs / sessions / cache / store counters, JSON
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/verdicts/{key}", s.handleVerdict)
	mux.HandleFunc("POST /v1/cells/{key}/claim", s.handleClaim)
	mux.HandleFunc("POST /v1/cells/{key}/release", s.handleRelease)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// apiError is the uniform error body.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

// submitResponse acknowledges an accepted job.
type submitResponse struct {
	ID     string `json:"id"`
	Kind   string `json:"kind"`
	Name   string `json:"name"`
	Cells  int    `json:"cells"`
	Status string `json:"status"`
}

// handleSubmit accepts a scenario or template JSON document as the request
// body, validates it fully (bad documents are a 400 at the door, never a
// failed job), and enqueues it.
func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", tooLarge.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	j, err := buildJob(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	switch err := s.submit(j); {
	case errors.Is(err, errShutdown):
		writeError(w, http.StatusServiceUnavailable, "shutting down")
	case errors.Is(err, errQueueFull):
		writeError(w, http.StatusTooManyRequests, "job queue full (%d queued)", s.cfg.MaxQueue)
	case err != nil:
		writeError(w, http.StatusInternalServerError, "%v", err)
	default:
		w.Header().Set("Location", "/v1/jobs/"+j.id)
		writeJSON(w, http.StatusAccepted, submitResponse{
			ID: j.id, Kind: j.kind, Name: j.name, Cells: j.cells, Status: StatusQueued,
		})
	}
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	views := make([]JobView, 0, len(s.order))
	for _, id := range s.order {
		views = append(views, s.jobs[id].view())
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"jobs": views})
}

func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, j.view())
}

// handleEvents streams a job's progress events: the full log so far, then
// live follow until the job finishes or the client goes away. Server-sent
// events by default; `?format=ndjson` switches to one JSON object per line.
func (s *Service) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	ndjson := r.URL.Query().Get("format") == "ndjson"
	if ndjson {
		w.Header().Set("Content-Type", "application/x-ndjson")
	} else {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	}
	flusher, _ := w.(http.Flusher)
	seq := 0
	for {
		evts, changed, done := j.snapshot(seq)
		for _, e := range evts {
			data, err := json.Marshal(e)
			if err != nil {
				return
			}
			if ndjson {
				fmt.Fprintf(w, "%s\n", data)
			} else {
				fmt.Fprintf(w, "event: %s\ndata: %s\n\n", e.Type, data)
			}
			seq = e.Seq
		}
		if flusher != nil {
			flusher.Flush()
		}
		if done && len(evts) == 0 {
			return
		}
		if done {
			// Terminal event emitted; loop once more to confirm nothing
			// trailed it, then return above.
			continue
		}
		// Every accepted job gets a terminal event — even on shutdown the
		// runners drain the queue and cancel-stamp each job — so waiting
		// on the change channel always terminates.
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}

// verdictResponse is one stored verdict.
type verdictResponse struct {
	Key     string        `json:"key"`
	Tier    string        `json:"tier"` // memory | disk
	Outcome sweep.Outcome `json:"outcome"`
}

// handleVerdict serves one verdict by its canonical key encoding, probing
// memory then the persistent store — never computing.
func (s *Service) handleVerdict(w http.ResponseWriter, r *http.Request) {
	key, err := sweep.ParseKey(r.PathValue("key"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	out, tier, ok := s.cache.Lookup(key)
	if !ok {
		writeError(w, http.StatusNotFound, "no verdict for key")
		return
	}
	writeJSON(w, http.StatusOK, verdictResponse{
		Key:     key.String(),
		Tier:    tier.String(),
		Outcome: out,
	})
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	closing := s.closing
	s.mu.Unlock()
	if closing {
		writeError(w, http.StatusServiceUnavailable, "shutting down")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Metrics())
}
