// Package svc is the topoconsvc service core: an HTTP/JSON checker daemon
// over the sweep engine and the persistent verdict store. It accepts
// concrete-scenario and template submissions as jobs, runs them on a
// bounded global session pool, streams per-cell and per-horizon progress,
// and serves verdicts through the tiered cache (memory → disk → compute),
// so answers survive restarts and accumulate across jobs and clients.
//
// The package is the testable half of cmd/topoconsvc: New builds a
// Service from a Config, Handler returns its http.Handler, Shutdown
// drains it. Tests drive the full HTTP surface through httptest without a
// listener; the command adds flags, a listener and signal handling.
package svc

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"topocon/internal/check"
	"topocon/internal/faultfs"
	"topocon/internal/fsx"
	"topocon/internal/scenario"
	"topocon/internal/store"
	"topocon/internal/sweep"
)

// Config tunes a Service. Zero values get defaults from New.
type Config struct {
	// StoreDir is the persistent verdict store directory. Empty runs the
	// service memory-only (no disk tier) — useful in tests, pointless in
	// production.
	StoreDir string
	// Workers is the global session-pool size: at most this many Analyzer
	// sessions run at once across all jobs (≤ 0: 2).
	Workers int
	// MaxQueue bounds jobs accepted but not yet running; submissions
	// beyond it are rejected with 429 (≤ 0: 64).
	MaxQueue int
	// MaxBodyBytes bounds a submission body (≤ 0: 1 MiB).
	MaxBodyBytes int64
	// CellParallelism is each session's Analyzer worker-pool size (≤ 0: 1).
	CellParallelism int
	// CellTimeout bounds one cell's analysis (0: unbounded).
	CellTimeout time.Duration
	// JobTimeout bounds one job's whole run (0: unbounded). A timed-out
	// job keeps its finished cells as a partial report.
	JobTimeout time.Duration
	// MaxJobsRetained bounds the finished jobs kept for GET (≤ 0: 512);
	// the oldest terminal jobs are evicted first. Verdicts themselves
	// live in the cache and store, not in jobs.
	MaxJobsRetained int
	// CheckpointDir, when set, makes the daemon's work durable across
	// restarts: every solving cell checkpoints into
	// CheckpointDir/cells/<content address> (resuming mid-session after a
	// crash, see internal/ckpt), and every accepted job document is
	// persisted under CheckpointDir/jobs/ until the job reaches a verdict —
	// at startup leftover documents are re-submitted automatically and
	// counted in the metrics' resumed-jobs gauge.
	CheckpointDir string
	// CheckpointEvery is the per-cell checkpoint cadence in horizons
	// (≤ 0: 1). Only meaningful with CheckpointDir.
	CheckpointEvery int
	// PagerHotBytes is each checkpointed cell's pager hot-set budget
	// (≤ 0: unlimited). Only meaningful with CheckpointDir.
	PagerHotBytes int64
	// WorkerID identifies this daemon in a coordinated multi-worker fleet
	// sharing one StoreDir + CheckpointDir. When set (with CheckpointDir),
	// cell checkpoints move to CheckpointDir/cells/<WorkerID> and job
	// documents to CheckpointDir/jobs/<WorkerID> so workers never collide,
	// cell leases are kept under CheckpointDir/leases, and the
	// /v1/cells/{key}/claim + release endpoints come alive. Empty keeps the
	// legacy single-worker layout.
	WorkerID string
	// LeaseTTL is the worker's cell-lease duration (≤ 0: 30s); claims renew
	// their lease every LeaseTTL/3 and self-fence — cancel the solve — if a
	// renewal fails, so a worker that cannot prove liveness stops burning
	// a cell someone else may already own.
	LeaseTTL time.Duration
	// Faults is the deterministic fault-injection schedule (nil: none).
	// It is threaded through lease writes (op "lease") and per-horizon
	// progress (op "horizon", scoped by cell name), so chaos tests can
	// fail the Nth lease write or freeze a worker at the Nth horizon.
	Faults *faultfs.Schedule
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 64
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.MaxJobsRetained <= 0 {
		c.MaxJobsRetained = 512
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 30 * time.Second
	}
	return c
}

// Job statuses.
const (
	StatusQueued    = "queued"
	StatusRunning   = "running"
	StatusDone      = "done"      // ran to completion (cells may still carry errors)
	StatusFailed    = "failed"    // job-level failure (timeout, expansion error)
	StatusCancelled = "cancelled" // shutdown or client cancellation
)

// Event is one entry in a job's progress stream, delivered over SSE or
// ndjson. Seq is 1-based and dense per job, so clients can resume.
type Event struct {
	Seq  int    `json:"seq"`
	Type string `json:"type"` // queued|started|horizon|cell|done|failed|cancelled
	Job  string `json:"job"`
	Cell string `json:"cell,omitempty"`
	// Horizon is set on "horizon" events (one per analysed horizon of a
	// solving cell); Result on "cell" events (one per finished cell);
	// Summary on terminal events; Error on "failed".
	Horizon *HorizonProgress  `json:"horizon,omitempty"`
	Result  *sweep.CellResult `json:"result,omitempty"`
	Summary *sweep.Summary    `json:"summary,omitempty"`
	Error   string            `json:"error,omitempty"`
}

// HorizonProgress is the wire form of one horizon's progress report.
type HorizonProgress struct {
	Horizon         int  `json:"horizon"`
	Runs            int  `json:"runs"`
	Components      int  `json:"components"`
	MixedComponents int  `json:"mixedComponents"`
	Broadcastable   bool `json:"broadcastable"`
}

// job is one submission's lifecycle: parsed document, status, event log.
type job struct {
	id        string
	kind      string // "scenario" | "template"
	name      string
	cells     int
	submitted time.Time
	tpl       *scenario.Template
	sc        *scenario.Scenario
	doc       []byte // raw submission body, persisted under CheckpointDir/jobs
	resumed   bool   // re-submitted from a previous daemon's leftover document

	mu       sync.Mutex
	status   string
	started  time.Time
	finished time.Time
	report   *sweep.Report
	errMsg   string
	events   []Event
	changed  chan struct{} // closed and replaced on every append/status edge
}

// append adds events (assigning sequence numbers) and wakes streamers.
func (j *job) append(evts ...Event) {
	j.mu.Lock()
	for _, e := range evts {
		e.Seq = len(j.events) + 1
		e.Job = j.id
		j.events = append(j.events, e)
	}
	close(j.changed)
	j.changed = make(chan struct{})
	j.mu.Unlock()
}

// terminal reports whether a status is final.
func terminal(status string) bool {
	return status == StatusDone || status == StatusFailed || status == StatusCancelled
}

// snapshot returns the events after sequence number `after`, the channel
// that closes on the next change, and whether the job is finished.
func (j *job) snapshot(after int) ([]Event, chan struct{}, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	var evts []Event
	if after < len(j.events) {
		evts = append(evts, j.events[after:]...)
	}
	return evts, j.changed, terminal(j.status)
}

// buildJob parses a raw submission document into an unqueued job,
// validating it fully (including template expansion, so a malformed grid
// is rejected up front, never as a failed job). Both the HTTP submit path
// and startup job resume go through here.
func buildJob(body []byte) (*job, error) {
	j := &job{doc: append([]byte(nil), body...)}
	if scenario.IsTemplate(body) {
		tpl, err := scenario.ParseTemplate(body)
		if err != nil {
			return nil, err
		}
		if _, err := tpl.Expand(); err != nil {
			return nil, err
		}
		j.kind, j.name, j.cells, j.tpl = "template", tpl.Name, tpl.CellCount(), tpl
	} else {
		sc, err := scenario.Parse(body)
		if err != nil {
			return nil, err
		}
		j.kind, j.name, j.cells, j.sc = "scenario", sc.Name, 1, sc
	}
	return j, nil
}

// JobView is a job's wire representation.
type JobView struct {
	ID        string        `json:"id"`
	Kind      string        `json:"kind"`
	Name      string        `json:"name"`
	Cells     int           `json:"cells"`
	Status    string        `json:"status"`
	Resumed   bool          `json:"resumed,omitempty"`
	Submitted time.Time     `json:"submitted"`
	Started   *time.Time    `json:"started,omitempty"`
	Finished  *time.Time    `json:"finished,omitempty"`
	Error     string        `json:"error,omitempty"`
	Report    *sweep.Report `json:"report,omitempty"`
}

func (j *job) view() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:        j.id,
		Kind:      j.kind,
		Name:      j.name,
		Cells:     j.cells,
		Status:    j.status,
		Resumed:   j.resumed,
		Submitted: j.submitted,
		Error:     j.errMsg,
		Report:    j.report,
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	return v
}

// Service is the daemon: store, tiered cache, session pool, job queue,
// and — in coordinated worker mode — the cell-claim surface.
type Service struct {
	cfg    Config
	store  *store.Store  // nil when StoreDir is empty
	leases *store.Leases // nil outside coordinated worker mode
	cache  *sweep.Cache
	slots  chan struct{}
	queue  chan *job

	rootCtx context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup

	mu      sync.Mutex
	closing bool
	jobs    map[string]*job
	order   []string // submission order, for eviction and listing
	nextID  int

	// claims tracks in-flight cell claims by canonical key, so duplicate
	// claims are refused and drain/release can cancel the solves.
	claimsMu sync.Mutex
	claims   map[string]context.CancelFunc

	analyzersBuilt atomic.Int64
	jobsSubmitted  atomic.Int64
	jobsRejected   atomic.Int64
	jobsResumed    atomic.Int64
	persistErrors  atomic.Int64
	leasesStolen   atomic.Int64
	cellRetries    atomic.Int64

	pagingMu sync.Mutex
	paging   sweep.PagingSummary // cumulative across finished jobs
}

// New opens the store (when configured), builds the tiered cache and the
// session pool, and starts the runner goroutines.
//
//topocon:allow ctxflow -- the daemon's construction is the process's context root; there is no caller context to inherit
func New(cfg Config) (*Service, error) {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:    cfg,
		slots:  make(chan struct{}, cfg.Workers),
		queue:  make(chan *job, cfg.MaxQueue),
		jobs:   make(map[string]*job),
		claims: make(map[string]context.CancelFunc),
	}
	if cfg.StoreDir != "" {
		st, err := store.Open(cfg.StoreDir)
		if err != nil {
			return nil, err
		}
		s.store = st
		s.cache = sweep.NewTieredCache(st)
	} else {
		s.cache = sweep.NewCache()
	}
	if cfg.WorkerID != "" && cfg.CheckpointDir != "" {
		// Lease writes go through the fault seam so chaos tests can fail
		// the Nth one; a nil schedule wraps to the plain atomic write.
		ls, err := store.OpenLeases(filepath.Join(cfg.CheckpointDir, "leases"),
			cfg.Faults.WrapWrite("lease", fsx.AtomicWrite))
		if err != nil {
			return nil, err
		}
		s.leases = ls
	}
	s.rootCtx, s.cancel = context.WithCancel(context.Background())
	for w := 0; w < cfg.Workers; w++ {
		s.wg.Add(1)
		go s.runner()
	}
	if cfg.CheckpointDir != "" {
		s.resumeJobs()
	}
	return s, nil
}

// Store returns the persistent store, or nil when running memory-only.
func (s *Service) Store() *store.Store { return s.store }

// Cache returns the service's verdict cache.
func (s *Service) Cache() *sweep.Cache { return s.cache }

// AnalyzersConstructed returns the number of Analyzer sessions this
// process has built — the observable cost the cache tiers avoid.
func (s *Service) AnalyzersConstructed() int64 { return s.analyzersBuilt.Load() }

// submit validates ordering invariants and enqueues a parsed job.
// The caller has already parsed and validated the document.
func (s *Service) submit(j *job) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closing {
		return errShutdown
	}
	// The job must be fully initialized — id, status, event log — before it
	// is visible to a runner; a runner may dequeue it the instant the send
	// below succeeds.
	s.nextID++
	j.id = fmt.Sprintf("j-%06d", s.nextID)
	j.status = StatusQueued
	j.changed = make(chan struct{})
	j.submitted = time.Now()
	j.append(Event{Type: "queued"})
	select {
	case s.queue <- j:
	default:
		s.jobsRejected.Add(1)
		return errQueueFull
	}
	s.jobsSubmitted.Add(1)
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.persistJob(j)
	s.evictLocked()
	return nil
}

// jobDocExt names persisted job documents: <id>.job under jobsDir.
const jobDocExt = ".job"

// jobsDir and cellsDir are per-worker in coordinated mode: a fleet
// shares one CheckpointDir, so each worker's in-flight state gets its own
// namespace — which is exactly what makes a dead worker's cell
// checkpoints addressable for adoption (cells/<deadWorker>/<cell sha>).
func (s *Service) jobsDir() string {
	if s.cfg.WorkerID != "" {
		return filepath.Join(s.cfg.CheckpointDir, "jobs", s.cfg.WorkerID)
	}
	return filepath.Join(s.cfg.CheckpointDir, "jobs")
}

func (s *Service) cellsDir() string {
	if s.cfg.WorkerID != "" {
		return filepath.Join(s.cfg.CheckpointDir, "cells", s.cfg.WorkerID)
	}
	return filepath.Join(s.cfg.CheckpointDir, "cells")
}

// persistJob writes the job's raw submission document under the checkpoint
// dir (atomically, via fsx.AtomicWrite) so a restarted daemon can
// re-submit it. Best-effort: a write failure costs restart durability for
// this job, not the job itself — but it is logged and counted (the
// /metrics paging section's jobPersistErrors), never silently dropped.
func (s *Service) persistJob(j *job) {
	if s.cfg.CheckpointDir == "" || len(j.doc) == 0 {
		return
	}
	dir := s.jobsDir()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		s.persistErrors.Add(1)
		log.Printf("svc: persisting job %s: %v", j.id, err)
		return
	}
	if err := fsx.AtomicWrite(filepath.Join(dir, j.id+jobDocExt), j.doc, 0o644); err != nil {
		s.persistErrors.Add(1)
		log.Printf("svc: persisting job %s: %v", j.id, err)
	}
}

// retireJobDoc removes a job's persisted document once it has reached a
// verdict (done or failed) — the one sanctioned deletion in this package:
// the verdict now lives in the store, so the document has served its
// purpose and holds no information worth preserving. Cancelled jobs keep
// theirs: shutdown is exactly the case restart resume exists for.
func (s *Service) retireJobDoc(j *job) {
	if s.cfg.CheckpointDir == "" {
		return
	}
	_ = os.Remove(filepath.Join(s.jobsDir(), j.id+jobDocExt))
}

// resumeJobs re-submits job documents left behind by an earlier daemon —
// jobs that had not reached a verdict when the process died or shut down.
// Their cells then continue from the per-cell sweep checkpoints. Documents
// that no longer parse are renamed aside (.bad), never deleted.
func (s *Service) resumeJobs() {
	entries, err := os.ReadDir(s.jobsDir())
	if err != nil {
		return
	}
	// Advance nextID past every leftover id first, so re-submitted jobs get
	// fresh ids and persistJob can never collide with (and then delete) a
	// leftover document of the same name.
	for _, e := range entries {
		var n int
		if _, err := fmt.Sscanf(e.Name(), "j-%06d"+jobDocExt, &n); err == nil {
			s.mu.Lock()
			if n > s.nextID {
				s.nextID = n
			}
			s.mu.Unlock()
		}
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), jobDocExt) {
			continue
		}
		path := filepath.Join(s.jobsDir(), e.Name())
		body, err := os.ReadFile(path)
		if err != nil {
			continue
		}
		j, err := buildJob(body)
		if err != nil {
			_ = os.Rename(path, path+".bad")
			continue
		}
		j.resumed = true
		if err := s.submit(j); err != nil {
			continue // keep the document; the next restart retries
		}
		s.jobsResumed.Add(1)
		//topocon:allow quarantine -- submit just re-persisted the same bytes under the job's new id; the old path is a duplicate, not a record
		_ = os.Remove(path)
	}
}

// evictLocked drops the oldest terminal jobs beyond the retention bound.
func (s *Service) evictLocked() {
	excess := len(s.order) - s.cfg.MaxJobsRetained
	if excess <= 0 {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		j := s.jobs[id]
		j.mu.Lock()
		evictable := terminal(j.status)
		j.mu.Unlock()
		if excess > 0 && evictable {
			delete(s.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// lookup returns a job by id.
func (s *Service) lookup(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// runner executes queued jobs until the queue closes at shutdown.
func (s *Service) runner() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob drives one job through the sweep engine, recording progress
// events and classifying the terminal status.
func (s *Service) runJob(j *job) {
	ctx := s.rootCtx
	if s.cfg.JobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.JobTimeout)
		defer cancel()
	}
	j.mu.Lock()
	j.status = StatusRunning
	j.started = time.Now()
	j.mu.Unlock()
	j.append(Event{Type: "started"})

	cfg := sweep.Config{
		// Workers feeds cells to the shared pool; Slots bounds how many
		// actually hold sessions at once, across every concurrent job.
		Workers:         s.cfg.Workers,
		CellParallelism: s.cfg.CellParallelism,
		CellTimeout:     s.cfg.CellTimeout,
		Cache:           s.cache,
		Slots:           s.slots,
		OnAnalyzerBuilt: func(string) { s.analyzersBuilt.Add(1) },
		Progress: func(c sweep.CellResult) {
			j.append(Event{Type: "cell", Cell: c.Name, Result: &c})
		},
		CellProgress: func(cell string, r check.HorizonReport) {
			j.append(Event{Type: "horizon", Cell: cell, Horizon: &HorizonProgress{
				Horizon:         r.Horizon,
				Runs:            r.Runs,
				Components:      r.Components,
				MixedComponents: r.MixedComponents,
				Broadcastable:   r.Broadcastable,
			}})
		},
	}
	if s.cfg.CheckpointDir != "" {
		// Cell checkpoints are content-addressed by sweep key, so one cells/
		// dir is safely shared by every job, past and concurrent.
		cfg.CheckpointDir = s.cellsDir()
		cfg.CheckpointEvery = s.cfg.CheckpointEvery
		cfg.PagerHotBytes = s.cfg.PagerHotBytes
	}

	var report *sweep.Report
	var err error
	if j.tpl != nil {
		report, err = sweep.Run(ctx, j.tpl, cfg)
	} else {
		report, err = sweep.RunScenario(ctx, j.sc, cfg)
	}

	status := StatusDone
	errMsg := ""
	switch {
	case err == nil:
	case ctx.Err() != nil && s.rootCtx.Err() != nil:
		status = StatusCancelled
		errMsg = "service shutting down"
	case ctx.Err() != nil:
		status = StatusFailed
		errMsg = fmt.Sprintf("job timeout after %v", s.cfg.JobTimeout)
	default:
		status = StatusFailed
		errMsg = err.Error()
	}

	if report != nil {
		s.addPaging(report.Summary.Paging)
	}
	if status != StatusCancelled {
		// Done and failed jobs have their verdict; cancelled ones keep their
		// document so the next daemon re-submits them. Cleanup precedes the
		// status flip so an observed terminal status implies it happened.
		s.retireJobDoc(j)
	}
	j.mu.Lock()
	j.status = status
	j.finished = time.Now()
	j.report = report // may be a well-formed partial report on cancel/timeout
	j.errMsg = errMsg
	j.mu.Unlock()
	evt := Event{Type: status, Error: errMsg}
	if report != nil {
		sum := report.Summary
		evt.Summary = &sum
	}
	j.append(evt)
}

// Shutdown stops accepting submissions, cancels in-flight jobs (the
// engine winds each down to a well-formed partial report), and waits for
// the runners to drain, up to the context's deadline.
func (s *Service) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	already := s.closing
	s.closing = true
	if !already {
		close(s.queue) // submit holds s.mu, so no send can race this close
	}
	s.mu.Unlock()
	s.cancel()
	// Claims abort with the root context; cancelClaims additionally covers
	// claims whose AfterFunc registration raced the cancel. Each aborted
	// claim releases its lease on the way out (the drain contract: a
	// SIGTERMed worker leaves released leases, never abandoned ones).
	s.cancelClaims()
	if already {
		return nil
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("svc: shutdown: %w", ctx.Err())
	}
}

// addPaging folds one finished job's paging gauges into the service-wide
// totals (sums, except HotBytes which tracks the largest single-cell peak).
func (s *Service) addPaging(p sweep.PagingSummary) {
	if p == (sweep.PagingSummary{}) {
		return
	}
	s.pagingMu.Lock()
	s.paging.PagesSpilled += p.PagesSpilled
	s.paging.PagesFaulted += p.PagesFaulted
	if p.HotBytes > s.paging.HotBytes {
		s.paging.HotBytes = p.HotBytes
	}
	s.paging.CheckpointsWritten += p.CheckpointsWritten
	s.paging.CellsResumed += p.CellsResumed
	s.pagingMu.Unlock()
}

// Metrics is the /metrics document.
type Metrics struct {
	Jobs     JobMetrics     `json:"jobs"`
	Sessions SessionMetrics `json:"sessions"`
	Cache    CacheMetrics   `json:"cache"`
	Store    *store.Stats   `json:"store,omitempty"`
	// Paging is present whenever the daemon runs with a CheckpointDir.
	Paging *PagingMetrics `json:"paging,omitempty"`
	// Leases is present in coordinated worker mode (WorkerID set).
	Leases *LeaseMetrics `json:"leases,omitempty"`
}

// LeaseMetrics is the coordinated-worker gauge set: leasesHeld is the
// number of cells this worker is solving under a live lease right now;
// leasesStolen counts expired leases this worker took over from dead
// peers; cellRetries counts claims that arrived as re-dispatches
// (attempt > 1). Traffic carries the lease store's cumulative counters.
type LeaseMetrics struct {
	Held        int              `json:"leasesHeld"`
	Stolen      int64            `json:"leasesStolen"`
	CellRetries int64            `json:"cellRetries"`
	Traffic     store.LeaseStats `json:"traffic"`
}

// JobMetrics counts jobs by lifecycle state.
type JobMetrics struct {
	Submitted int64 `json:"submitted"`
	Rejected  int64 `json:"rejected"`
	Queued    int   `json:"queued"`
	Running   int   `json:"running"`
	Done      int   `json:"done"`
	Failed    int   `json:"failed"`
	Cancelled int   `json:"cancelled"`
}

// SessionMetrics describes the global session pool.
type SessionMetrics struct {
	PoolSize             int   `json:"poolSize"`
	Busy                 int   `json:"busy"`
	AnalyzersConstructed int64 `json:"analyzersConstructed"`
}

// CacheMetrics describes the tiered verdict cache.
type CacheMetrics struct {
	Keys          int   `json:"keys"`
	MemoryHits    int64 `json:"memoryHits"`
	DiskHits      int64 `json:"diskHits"`
	Computes      int64 `json:"computes"`
	TierPutErrors int64 `json:"tierPutErrors"`
}

// PagingMetrics aggregates out-of-core traffic across finished jobs, plus
// the jobs this daemon re-submitted from a predecessor's leftover
// documents at startup and the job-document persist failures (each one a
// job that would not survive a restart).
type PagingMetrics struct {
	sweep.PagingSummary
	JobsResumed      int64 `json:"jobsResumed"`
	JobPersistErrors int64 `json:"jobPersistErrors,omitempty"`
}

// Metrics gathers the current metrics document.
func (s *Service) Metrics() Metrics {
	s.mu.Lock()
	jm := JobMetrics{
		Submitted: s.jobsSubmitted.Load(),
		Rejected:  s.jobsRejected.Load(),
	}
	for _, j := range s.jobs {
		j.mu.Lock()
		switch j.status {
		case StatusQueued:
			jm.Queued++
		case StatusRunning:
			jm.Running++
		case StatusDone:
			jm.Done++
		case StatusFailed:
			jm.Failed++
		case StatusCancelled:
			jm.Cancelled++
		}
		j.mu.Unlock()
	}
	s.mu.Unlock()
	cs := s.cache.Stats()
	m := Metrics{
		Jobs: jm,
		Sessions: SessionMetrics{
			PoolSize:             cap(s.slots),
			Busy:                 len(s.slots),
			AnalyzersConstructed: s.analyzersBuilt.Load(),
		},
		Cache: CacheMetrics{
			Keys:          s.cache.Len(),
			MemoryHits:    cs.MemoryHits,
			DiskHits:      cs.DiskHits,
			Computes:      cs.Computes,
			TierPutErrors: cs.TierPutErrors,
		},
	}
	if s.store != nil {
		st := s.store.Stats()
		m.Store = &st
	}
	if s.cfg.CheckpointDir != "" {
		s.pagingMu.Lock()
		pm := PagingMetrics{
			PagingSummary:    s.paging,
			JobsResumed:      s.jobsResumed.Load(),
			JobPersistErrors: s.persistErrors.Load(),
		}
		s.pagingMu.Unlock()
		m.Paging = &pm
	}
	if s.leases != nil {
		s.claimsMu.Lock()
		held := len(s.claims)
		s.claimsMu.Unlock()
		m.Leases = &LeaseMetrics{
			Held:        held,
			Stolen:      s.leasesStolen.Load(),
			CellRetries: s.cellRetries.Load(),
			Traffic:     s.leases.Stats(),
		}
	}
	return m
}
