package svc

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// lossyScenario is a concrete 2-process lossy-link scenario; name does not
// enter the cache key, so different names stay behaviourally isomorphic.
func lossyScenario(name string) string {
	return fmt.Sprintf(`{
	  "name": %q,
	  "n": 2,
	  "graphs": {"L": "2->1", "R": "1->2", "B": "1<->2"},
	  "adversary": {"op": "oblivious", "graphs": ["L", "R", "B"]},
	  "check": {"maxHorizon": 4},
	  "expect": "impossible"
	}`, name)
}

const lossboundTemplate = `{
  "name": "lossbound-grid",
  "params": {"f": "0..3", "horizon": [3, 4]},
  "n": 2,
  "adversary": {"op": "loss-bounded", "f": "${f}"},
  "check": {"maxHorizon": "${horizon}"}
}`

// harness boots a Service plus an httptest server over its Handler.
type harness struct {
	t   *testing.T
	svc *Service
	ts  *httptest.Server
}

func newHarness(t *testing.T, cfg Config) *harness {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	h := &harness{t: t, svc: s, ts: ts}
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return h
}

// getJSON decodes a GET response body into out and returns the status.
func (h *harness) getJSON(path string, out any) int {
	h.t.Helper()
	resp, err := http.Get(h.ts.URL + path)
	if err != nil {
		h.t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil && err != io.EOF {
			h.t.Fatalf("GET %s: %v", path, err)
		}
	}
	return resp.StatusCode
}

// submit POSTs a document and returns the response status and parsed ack.
func (h *harness) submit(doc string) (int, submitResponse) {
	h.t.Helper()
	resp, err := http.Post(h.ts.URL+"/v1/jobs", "application/json", strings.NewReader(doc))
	if err != nil {
		h.t.Fatal(err)
	}
	defer resp.Body.Close()
	var ack submitResponse
	json.NewDecoder(resp.Body).Decode(&ack)
	return resp.StatusCode, ack
}

// await polls a job until it reaches a terminal status.
func (h *harness) await(id string) JobView {
	h.t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var v JobView
		if code := h.getJSON("/v1/jobs/"+id, &v); code != http.StatusOK {
			h.t.Fatalf("GET job %s: status %d", id, code)
		}
		if terminal(v.Status) {
			return v
		}
		time.Sleep(5 * time.Millisecond)
	}
	h.t.Fatalf("job %s never finished", id)
	return JobView{}
}

// metrics fetches /metrics.
func (h *harness) metrics() Metrics {
	h.t.Helper()
	var m Metrics
	if code := h.getJSON("/metrics", &m); code != http.StatusOK {
		h.t.Fatalf("GET /metrics: status %d", code)
	}
	return m
}

// TestConcurrentIsomorphicSubmissions is the satellite-4 dedup proof over
// the HTTP boundary: two behaviourally isomorphic scenarios submitted
// concurrently construct exactly one Analyzer — the cache's singleflight
// spans jobs, not just cells. Run under -race.
func TestConcurrentIsomorphicSubmissions(t *testing.T) {
	h := newHarness(t, Config{StoreDir: t.TempDir(), Workers: 2})

	var wg sync.WaitGroup
	ids := make([]string, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, ack := h.submit(lossyScenario(fmt.Sprintf("iso-%d", i)))
			if code != http.StatusAccepted {
				t.Errorf("submit %d: status %d", i, code)
				return
			}
			ids[i] = ack.ID
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	verdicts := map[string]int{}
	for _, id := range ids {
		v := h.await(id)
		if v.Status != StatusDone || v.Report == nil || len(v.Report.Cells) != 1 {
			t.Fatalf("job %s = %+v", id, v)
		}
		verdicts[v.Report.Cells[0].Verdict]++
	}
	if verdicts["impossible"] != 2 {
		t.Fatalf("verdicts = %v, want 2× impossible", verdicts)
	}
	m := h.metrics()
	if m.Sessions.AnalyzersConstructed != 1 {
		t.Fatalf("isomorphic submissions constructed %d analyzers, want 1", m.Sessions.AnalyzersConstructed)
	}
	if m.Jobs.Done != 2 || m.Cache.Keys != 1 {
		t.Fatalf("metrics = %+v", m)
	}
}

// TestRestartResubmitServesFromDisk is the satellite-4 persistence proof:
// after a restart over the same store directory, resubmitting the same
// template constructs zero Analyzer sessions — every cell is served from
// the disk tier, and /v1/verdicts answers from the persistent corpus.
func TestRestartResubmitServesFromDisk(t *testing.T) {
	dir := t.TempDir()

	h1 := newHarness(t, Config{StoreDir: dir, Workers: 2})
	code, ack := h1.submit(lossboundTemplate)
	if code != http.StatusAccepted || ack.Cells != 8 {
		t.Fatalf("submit: %d, %+v", code, ack)
	}
	v := h1.await(ack.ID)
	if v.Status != StatusDone || v.Report.Summary.Done != 8 {
		t.Fatalf("first run = %+v", v)
	}
	built := h1.metrics().Sessions.AnalyzersConstructed
	if built == 0 || built > 8 {
		t.Fatalf("first run constructed %d analyzers", built)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := h1.svc.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	h1.ts.Close()

	// Restart: fresh service over the same store directory.
	h2 := newHarness(t, Config{StoreDir: dir, Workers: 2})
	if got := h2.svc.Store().Len(); got != int(built) {
		t.Fatalf("store reopened with %d records, want %d", got, built)
	}
	code, ack = h2.submit(lossboundTemplate)
	if code != http.StatusAccepted {
		t.Fatalf("resubmit: status %d", code)
	}
	v = h2.await(ack.ID)
	if v.Status != StatusDone || v.Report.Summary.Done != 8 {
		t.Fatalf("second run = %+v", v)
	}
	for _, c := range v.Report.Cells {
		if c.CacheTier != "disk" {
			t.Fatalf("cell %s served from %q, want disk: %+v", c.Name, c.CacheTier, c)
		}
	}
	m := h2.metrics()
	if m.Sessions.AnalyzersConstructed != 0 {
		t.Fatalf("restart constructed %d analyzers, want 0", m.Sessions.AnalyzersConstructed)
	}
	if m.Cache.DiskHits != 8 || m.Cache.Computes != 0 {
		t.Fatalf("cache metrics = %+v", m.Cache)
	}

	// The verdict endpoint serves every stored key from the disk tier.
	for _, key := range h2.svc.Store().Keys() {
		var vr verdictResponse
		path := "/v1/verdicts/" + url.PathEscape(key.String())
		if code := h2.getJSON(path, &vr); code != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, code)
		}
		if vr.Tier != "disk" || vr.Key != key.String() {
			t.Fatalf("verdict = %+v", vr)
		}
	}
}

// jobDocs lists the persisted job documents under a checkpoint dir.
func jobDocs(t *testing.T, checkpointDir string) []string {
	t.Helper()
	entries, err := os.ReadDir(filepath.Join(checkpointDir, "jobs"))
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), jobDocExt) {
			names = append(names, e.Name())
		}
	}
	return names
}

// TestJobResumeAcrossRestart pins job durability: an accepted job's
// document lives under CheckpointDir/jobs until the job reaches a verdict;
// a daemon that starts over leftover documents (a predecessor died mid-job)
// re-submits them, marks them resumed, and reports the count in /metrics.
func TestJobResumeAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Workers: 1, CheckpointDir: dir, PagerHotBytes: 1}

	// A job that completes leaves no document behind.
	h1 := newHarness(t, cfg)
	code, ack := h1.submit(lossyScenario("before-restart"))
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	if v := h1.await(ack.ID); v.Status != StatusDone {
		t.Fatalf("first job = %+v", v)
	}
	if docs := jobDocs(t, dir); len(docs) != 0 {
		t.Fatalf("documents left after a done job: %v", docs)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := h1.svc.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	h1.ts.Close()

	// Simulate a daemon killed mid-job: an accepted document still on disk.
	// (A SIGKILL can't be staged deterministically in-process, so the
	// leftover is planted directly — it is just the raw submission body.)
	jobsDir := filepath.Join(dir, "jobs")
	if err := os.MkdirAll(jobsDir, 0o755); err != nil {
		t.Fatal(err)
	}
	writeDoc := func(name, body string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(jobsDir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeDoc("j-000007.job", lossyScenario("killed-mid-run"))
	writeDoc("j-000002.job", "{not a document") // corrupt leftover

	h2 := newHarness(t, cfg)
	var list struct {
		Jobs []JobView `json:"jobs"`
	}
	if code := h2.getJSON("/v1/jobs", &list); code != http.StatusOK {
		t.Fatalf("GET /v1/jobs: status %d", code)
	}
	var resumed *JobView
	for i := range list.Jobs {
		if list.Jobs[i].Resumed {
			resumed = &list.Jobs[i]
		}
	}
	if resumed == nil {
		t.Fatalf("no resumed job in %+v", list.Jobs)
	}
	// Re-submitted jobs get ids past every leftover's, so their documents
	// can never collide with files the resume scan is still consuming.
	if resumed.ID <= "j-000007" {
		t.Fatalf("resumed job id %s not past the leftover's", resumed.ID)
	}
	v := h2.await(resumed.ID)
	if v.Status != StatusDone || !v.Resumed {
		t.Fatalf("resumed job = %+v", v)
	}
	if v.Report == nil || len(v.Report.Cells) != 1 || v.Report.Cells[0].Verdict != "impossible" {
		t.Fatalf("resumed job report = %+v", v.Report)
	}

	m := h2.metrics()
	if m.Paging == nil {
		t.Fatal("no paging section in /metrics despite CheckpointDir")
	}
	if m.Paging.JobsResumed != 1 {
		t.Fatalf("jobsResumed = %d, want 1", m.Paging.JobsResumed)
	}
	if m.Paging.CheckpointsWritten == 0 || m.Paging.PagesSpilled == 0 {
		t.Fatalf("paging gauges never moved: %+v", m.Paging)
	}
	// The corrupt leftover was renamed aside, not deleted or resubmitted.
	if _, err := os.Stat(filepath.Join(jobsDir, "j-000002.job.bad")); err != nil {
		t.Fatalf("corrupt document not quarantined: %v", err)
	}
	// The resumed job's fresh document was removed once it finished.
	if docs := jobDocs(t, dir); len(docs) != 0 {
		t.Fatalf("documents left after resume: %v", docs)
	}
}

// TestEventStream replays and follows a job's progress as ndjson: the
// queued/started framing, at least one horizon event per solving cell, one
// cell event, and the terminal done event with a summary.
func TestEventStream(t *testing.T) {
	h := newHarness(t, Config{StoreDir: t.TempDir(), Workers: 1})
	code, ack := h.submit(lossyScenario("streamed"))
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	resp, err := http.Get(h.ts.URL + "/v1/jobs/" + ack.ID + "/events?format=ndjson")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	var events []Event
	scanner := bufio.NewScanner(resp.Body)
	for scanner.Scan() {
		var e Event
		if err := json.Unmarshal(scanner.Bytes(), &e); err != nil {
			t.Fatalf("bad event line %q: %v", scanner.Text(), err)
		}
		events = append(events, e)
	}
	if err := scanner.Err(); err != nil {
		t.Fatal(err)
	}

	types := map[string]int{}
	for i, e := range events {
		if e.Seq != i+1 || e.Job != ack.ID {
			t.Fatalf("event %d framing = %+v", i, e)
		}
		types[e.Type]++
	}
	if types["queued"] != 1 || types["started"] != 1 || types["cell"] != 1 || types["done"] != 1 {
		t.Fatalf("event types = %v", types)
	}
	if types["horizon"] < 1 {
		t.Fatalf("no horizon progress events: %v", types)
	}
	last := events[len(events)-1]
	if last.Type != "done" || last.Summary == nil || last.Summary.Done != 1 {
		t.Fatalf("terminal event = %+v", last)
	}

	// SSE default framing on a finished job: full replay, event: lines.
	resp2, err := http.Get(h.ts.URL + "/v1/jobs/" + ack.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	body, _ := io.ReadAll(resp2.Body)
	if ct := resp2.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	if !strings.Contains(string(body), "event: done\ndata: ") {
		t.Fatalf("SSE replay lacks the terminal event: %q", body)
	}
}

// TestBackpressureAndLimits drives the admission-control surface: queue
// overflow is 429, oversized bodies are 413, malformed documents are 400,
// the busy gauge reflects held slots — all while /healthz stays 200.
func TestBackpressureAndLimits(t *testing.T) {
	h := newHarness(t, Config{
		StoreDir:     t.TempDir(),
		Workers:      1,
		MaxQueue:     1,
		MaxBodyBytes: 2048,
	})
	// Occupy the only session slot, so the first job blocks mid-run and
	// the second fills the queue.
	h.svc.slots <- struct{}{}

	code, ackA := h.submit(lossyScenario("blocked-a"))
	if code != http.StatusAccepted {
		t.Fatalf("submit A: status %d", code)
	}
	// Wait until the runner has dequeued A (status running, blocked on the
	// slot) so B deterministically lands in the queue.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var v JobView
		h.getJSON("/v1/jobs/"+ackA.ID, &v)
		if v.Status == StatusRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job A never started")
		}
		time.Sleep(2 * time.Millisecond)
	}

	codeB, ackB := h.submit(lossyScenario("queued-b"))
	if codeB != http.StatusAccepted {
		t.Fatalf("submit B: status %d", codeB)
	}
	codeC, _ := h.submit(lossyScenario("rejected-c"))
	if codeC != http.StatusTooManyRequests {
		t.Fatalf("submit C: status %d, want 429", codeC)
	}

	m := h.metrics()
	if m.Sessions.Busy != 1 || m.Sessions.PoolSize != 1 {
		t.Fatalf("session metrics = %+v", m.Sessions)
	}
	if m.Jobs.Rejected != 1 {
		t.Fatalf("job metrics = %+v", m.Jobs)
	}
	if code := h.getJSON("/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz under load: %d", code)
	}

	// Malformed and oversized submissions are rejected at the door.
	if code, _ := h.submit(`{"name": "broken"`); code != http.StatusBadRequest {
		t.Fatalf("malformed doc: status %d, want 400", code)
	}
	if code, _ := h.submit(`{"pad": "` + strings.Repeat("x", 4096) + `"}`); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized doc: status %d, want 413", code)
	}
	if code, _ := h.submit(`{"name":"t","params":{"f":"0..1"},"n":2,"adversary":{"op":"loss-bounded","f":"${f}","bogus":1},"check":{"maxHorizon":3}}`); code != http.StatusBadRequest {
		t.Fatalf("invalid template: status %d, want 400", code)
	}

	// Release the slot: A and B drain to completion.
	<-h.svc.slots
	if v := h.await(ackA.ID); v.Status != StatusDone {
		t.Fatalf("job A = %+v", v)
	}
	if v := h.await(ackB.ID); v.Status != StatusDone {
		t.Fatalf("job B = %+v", v)
	}
}

// TestGracefulShutdownPartialReport: shutting down mid-job cancel-stamps
// it with a well-formed partial report, rejects new submissions with 503,
// and flips /healthz to 503.
func TestGracefulShutdownPartialReport(t *testing.T) {
	h := newHarness(t, Config{StoreDir: t.TempDir(), Workers: 1})
	// Hold the slot so the job is running but cannot finish any cell.
	h.svc.slots <- struct{}{}
	code, ack := h.submit(lossboundTemplate)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		var v JobView
		h.getJSON("/v1/jobs/"+ack.ID, &v)
		if v.Status == StatusRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(2 * time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := h.svc.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	<-h.svc.slots // release after cancellation; the worker already gave up

	v := h.await(ack.ID)
	if v.Status != StatusCancelled || v.Report == nil {
		t.Fatalf("job after shutdown = %+v", v)
	}
	sum := v.Report.Summary
	if sum.Cells != 8 || sum.Cancelled == 0 || sum.Cells != sum.Done+sum.Errors+sum.Cancelled {
		t.Fatalf("partial report summary = %+v", sum)
	}
	if code, _ := h.submit(lossyScenario("late")); code != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown submit: status %d, want 503", code)
	}
	if code := h.getJSON("/healthz", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown healthz: %d, want 503", code)
	}
}

// TestJobListAndLookup: the list endpoint returns jobs in submission
// order; unknown ids and unparseable verdict keys are clean 4xx.
func TestJobListAndLookup(t *testing.T) {
	h := newHarness(t, Config{StoreDir: t.TempDir(), Workers: 2})
	_, a := h.submit(lossyScenario("list-a"))
	_, b := h.submit(lossyScenario("list-b"))
	h.await(a.ID)
	h.await(b.ID)

	var list struct {
		Jobs []JobView `json:"jobs"`
	}
	if code := h.getJSON("/v1/jobs", &list); code != http.StatusOK {
		t.Fatalf("list: status %d", code)
	}
	if len(list.Jobs) != 2 || list.Jobs[0].ID != a.ID || list.Jobs[1].ID != b.ID {
		t.Fatalf("list = %+v", list.Jobs)
	}
	if code := h.getJSON("/v1/jobs/j-999999", nil); code != http.StatusNotFound {
		t.Fatalf("unknown job: status %d", code)
	}
	if code := h.getJSON("/v1/jobs/"+a.ID+"/events", nil); code != http.StatusOK {
		t.Fatalf("events of finished job: status %d", code)
	}
	if code := h.getJSON("/v1/verdicts/not-a-key", nil); code != http.StatusBadRequest {
		t.Fatalf("bad verdict key: status %d", code)
	}
	if len(h.svc.Store().Keys()) == 0 {
		t.Fatal("no stored keys after two jobs")
	}
}
