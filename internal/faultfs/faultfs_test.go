package faultfs

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"
)

func TestParseRejectsMalformed(t *testing.T) {
	for _, spec := range []string{
		"fail:lease",          // missing n
		"boom:lease:1",        // unknown kind
		"fail::2",             // empty op
		"fail:lease:0",        // n must be ≥ 1
		"fail:lease:x",        // non-numeric n
		"fail:lease:s5",       // seeded form missing range
		"fail:lease:s5r9-2",   // inverted range
		"stall:h:1,,fail:l:1", // empty entry
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted a malformed spec", spec)
		}
	}
}

func TestParseEmptyIsInert(t *testing.T) {
	s, err := Parse("  ")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := s.Hit("lease", ""); err != nil {
			t.Fatalf("inert schedule fired: %v", err)
		}
	}
}

func TestNilScheduleIsInert(t *testing.T) {
	var s *Schedule
	if err := s.Hit("lease", "x"); err != nil {
		t.Fatalf("nil Hit = %v", err)
	}
	s.ReleaseStalls()
	w := s.WrapWrite("lease", func(string, []byte, os.FileMode) error { return nil })
	if err := w("p", nil, 0o644); err != nil {
		t.Fatalf("nil WrapWrite = %v", err)
	}
	if rt := s.Transport("claim", nil); rt != http.DefaultTransport {
		t.Fatal("nil Transport should return the base transport")
	}
}

func TestFailNthOccurrenceOncePerScope(t *testing.T) {
	s, err := Parse("fail:lease:2")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Hit("lease", "a"); err != nil {
		t.Fatalf("occurrence 1 fired: %v", err)
	}
	if err := s.Hit("other", "a"); err != nil {
		t.Fatalf("different op fired: %v", err)
	}
	if err := s.Hit("lease", "a"); !errors.Is(err, ErrInjected) {
		t.Fatalf("occurrence 2 = %v, want ErrInjected", err)
	}
	// Rule fires at most once, even though scope "b" also reaches count 2.
	s.Hit("lease", "b")
	if err := s.Hit("lease", "b"); err != nil {
		t.Fatalf("already-fired rule fired again: %v", err)
	}
	if err := s.Hit("lease", "a"); err != nil {
		t.Fatalf("occurrence 3 fired: %v", err)
	}
}

func TestScopesCountIndependently(t *testing.T) {
	s, err := Parse("fail:horizon:3")
	if err != nil {
		t.Fatal(err)
	}
	// Interleave two scopes; the rule must fire when ONE scope reaches 3,
	// not when the global count does.
	s.Hit("horizon", "cellA")
	s.Hit("horizon", "cellB")
	s.Hit("horizon", "cellA")
	if err := s.Hit("horizon", "cellB"); err != nil {
		t.Fatalf("cellB at occurrence 2 fired: %v", err)
	}
	if err := s.Hit("horizon", "cellA"); !errors.Is(err, ErrInjected) {
		t.Fatalf("cellA at occurrence 3 = %v, want ErrInjected", err)
	}
}

func TestStallBlocksUntilReleased(t *testing.T) {
	s, err := Parse("stall:horizon:1")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		s.Hit("horizon", "c")
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("stall did not block")
	case <-time.After(20 * time.Millisecond):
	}
	s.ReleaseStalls()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("ReleaseStalls did not unblock the stall")
	}
	// Idempotent.
	s.ReleaseStalls()
}

func TestSeededNIsDeterministic(t *testing.T) {
	a, err := parseN("s42r2-9")
	if err != nil {
		t.Fatal(err)
	}
	b, err := parseN("s42r2-9")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed produced %d then %d", a, b)
	}
	if a < 2 || a > 9 {
		t.Fatalf("seeded n %d outside range [2,9]", a)
	}
}

func TestWrapWrite(t *testing.T) {
	s, err := Parse("fail:lease:2")
	if err != nil {
		t.Fatal(err)
	}
	var writes int
	w := s.WrapWrite("lease", func(string, []byte, os.FileMode) error {
		writes++
		return nil
	})
	if err := w("p", []byte("x"), 0o644); err != nil {
		t.Fatalf("write 1 = %v", err)
	}
	if err := w("p", []byte("x"), 0o644); !errors.Is(err, ErrInjected) {
		t.Fatalf("write 2 = %v, want ErrInjected", err)
	}
	if err := w("p", []byte("x"), 0o644); err != nil {
		t.Fatalf("write 3 = %v", err)
	}
	if writes != 2 {
		t.Fatalf("underlying write ran %d times, want 2 (the injected failure must precede the write)", writes)
	}
}

func TestTransportDropsNthResponse(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer srv.Close()

	s, err := Parse("drop:claim:2")
	if err != nil {
		t.Fatal(err)
	}
	client := &http.Client{Transport: s.Transport("claim", nil)}
	for i, wantErr := range []bool{false, true, false} {
		resp, err := client.Get(srv.URL)
		if wantErr {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("request %d = %v, want ErrInjected", i+1, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("request %d = %v", i+1, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if string(body) != "ok" {
			t.Fatalf("request %d body %q", i+1, body)
		}
	}
}
