// Package faultfs is the deterministic fault-injection seam behind the
// multi-worker chaos tests: a replayable Schedule of rules that fail the
// Nth durable write, stall the Nth progress point, or drop the Nth HTTP
// response — so every coordinator/worker failure mode (lease write lost,
// worker frozen mid-cell, response lost after the work was done) is
// reproducible in-process and in CI without real crashes or timing luck.
//
// A schedule is a comma-separated list of rules:
//
//	fail:<op>:<n>    the n-th Hit of <op> returns ErrInjected
//	stall:<op>:<n>   the n-th Hit of <op> blocks until ReleaseStalls
//	                 (or, in the chaos E2E, until the process is killed)
//	drop:<op>:<n>    the n-th response through Transport(<op>, …) is
//	                 discarded and replaced by ErrInjected
//
// n is either a decimal (the exact occurrence) or `s<seed>r<lo>-<hi>`,
// which derives the occurrence deterministically from the seed — the same
// seed always yields the same schedule, so a seeded chaos run replays
// bit-identically.
//
// Counting is per (op, scope): callers pass a scope (a cell name, a path,
// "") so rules like "the 3rd analysed horizon of whichever cell first
// gets that far" are expressible without the schedule knowing cell names
// up front. Each rule fires at most once. A nil *Schedule is inert, so
// production code calls the seam unconditionally.
package faultfs

import (
	"errors"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
)

// ErrInjected is the error every injected fault surfaces as.
var ErrInjected = errors.New("faultfs: injected fault")

// Rule kinds.
const (
	KindFail  = "fail"
	KindStall = "stall"
	KindDrop  = "drop"
)

type rule struct {
	kind  string
	op    string
	n     int
	fired bool
}

// Schedule is a parsed, concurrency-safe fault schedule.
type Schedule struct {
	mu       sync.Mutex
	rules    []*rule
	counts   map[string]int // op "\x00" scope → occurrences seen
	released chan struct{}  // closed by ReleaseStalls
}

// Parse builds a Schedule from its textual form (see the package
// comment). An empty spec yields an inert (but non-nil) schedule.
func Parse(spec string) (*Schedule, error) {
	s := &Schedule{counts: make(map[string]int), released: make(chan struct{})}
	if strings.TrimSpace(spec) == "" {
		return s, nil
	}
	for _, entry := range strings.Split(spec, ",") {
		parts := strings.Split(strings.TrimSpace(entry), ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("faultfs: rule %q: want kind:op:n", entry)
		}
		kind, op, nspec := parts[0], parts[1], parts[2]
		switch kind {
		case KindFail, KindStall, KindDrop:
		default:
			return nil, fmt.Errorf("faultfs: rule %q: unknown kind %q (want fail, stall or drop)", entry, kind)
		}
		if op == "" {
			return nil, fmt.Errorf("faultfs: rule %q: empty op", entry)
		}
		n, err := parseN(nspec)
		if err != nil {
			return nil, fmt.Errorf("faultfs: rule %q: %w", entry, err)
		}
		s.rules = append(s.rules, &rule{kind: kind, op: op, n: n})
	}
	return s, nil
}

// parseN resolves an occurrence spec: a plain decimal, or the seeded form
// `s<seed>r<lo>-<hi>` drawing n uniformly (and deterministically) from
// [lo, hi].
func parseN(spec string) (int, error) {
	if strings.HasPrefix(spec, "s") {
		rest := spec[1:]
		seedStr, rng, ok := strings.Cut(rest, "r")
		if !ok {
			return 0, fmt.Errorf("occurrence %q: seeded form is s<seed>r<lo>-<hi>", spec)
		}
		seed, err := strconv.ParseInt(seedStr, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("occurrence %q: bad seed: %v", spec, err)
		}
		loStr, hiStr, ok := strings.Cut(rng, "-")
		if !ok {
			return 0, fmt.Errorf("occurrence %q: seeded form is s<seed>r<lo>-<hi>", spec)
		}
		lo, err1 := strconv.Atoi(loStr)
		hi, err2 := strconv.Atoi(hiStr)
		if err1 != nil || err2 != nil || lo < 1 || hi < lo {
			return 0, fmt.Errorf("occurrence %q: bad range", spec)
		}
		return lo + rand.New(rand.NewSource(seed)).Intn(hi-lo+1), nil
	}
	n, err := strconv.Atoi(spec)
	if err != nil || n < 1 {
		return 0, fmt.Errorf("occurrence %q: want a positive decimal or s<seed>r<lo>-<hi>", spec)
	}
	return n, nil
}

// Hit records one occurrence of op under the given scope and applies the
// first matching unfired fail/stall rule: a fail rule returns ErrInjected;
// a stall rule logs and blocks until ReleaseStalls (or process death). A
// nil schedule never fires.
func (s *Schedule) Hit(op, scope string) error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	s.counts[op+"\x00"+scope]++
	n := s.counts[op+"\x00"+scope]
	var match *rule
	for _, r := range s.rules {
		if !r.fired && r.op == op && r.n == n && (r.kind == KindFail || r.kind == KindStall) {
			r.fired = true
			match = r
			break
		}
	}
	s.mu.Unlock()
	if match == nil {
		return nil
	}
	log.Printf("faultfs: %s at %s #%d (scope %q)", match.kind, op, n, scope)
	if match.kind == KindFail {
		return fmt.Errorf("%w: %s at %s #%d", ErrInjected, match.kind, op, n)
	}
	<-s.released
	return nil
}

// ReleaseStalls unblocks every current and future stall. Tests use it to
// reclaim stalled goroutines; the chaos E2E instead kills the process.
func (s *Schedule) ReleaseStalls() {
	if s == nil {
		return
	}
	s.mu.Lock()
	select {
	case <-s.released:
	default:
		close(s.released)
	}
	s.mu.Unlock()
}

// WrapWrite wraps an atomic-write function (the fsx.AtomicWrite shape) so
// each call first passes through Hit(op, "") — the scheduled occurrence
// fails before any byte is written, exactly like a full disk or a crash
// before the temp file exists. A nil schedule returns w unchanged.
func (s *Schedule) WrapWrite(op string, w func(path string, data []byte, perm os.FileMode) error) func(path string, data []byte, perm os.FileMode) error {
	if s == nil {
		return w
	}
	return func(path string, data []byte, perm os.FileMode) error {
		if err := s.Hit(op, ""); err != nil {
			return err
		}
		return w(path, data, perm)
	}
}

// Transport wraps an http.RoundTripper so the scheduled drop-rule
// occurrence discards the (already received) response and surfaces
// ErrInjected — the "work done, answer lost" failure mode retried
// requests must be idempotent against. A nil schedule and a nil base
// compose sanely (base nil falls back to http.DefaultTransport).
func (s *Schedule) Transport(op string, base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	if s == nil {
		return base
	}
	return &dropTransport{sched: s, op: op, base: base}
}

type dropTransport struct {
	sched *Schedule
	op    string
	base  http.RoundTripper
}

func (t *dropTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	resp, err := t.base.RoundTrip(req)
	if err != nil {
		return resp, err
	}
	t.sched.mu.Lock()
	t.sched.counts[t.op+"\x00"]++
	n := t.sched.counts[t.op+"\x00"]
	var match *rule
	for _, r := range t.sched.rules {
		if !r.fired && r.op == t.op && r.n == n && r.kind == KindDrop {
			r.fired = true
			match = r
			break
		}
	}
	t.sched.mu.Unlock()
	if match == nil {
		return resp, nil
	}
	log.Printf("faultfs: drop at %s #%d", t.op, n)
	resp.Body.Close()
	return nil, fmt.Errorf("%w: drop at %s #%d", ErrInjected, t.op, n)
}
