package ma

import (
	"fmt"
	"sync"

	"topocon/internal/graph"
)

// maxPrunedStates bounds the reachable-state exploration of the restriction
// combinators (Intersect, Filter): their liveness analysis requires a
// finite reachable state space. Every adversary family in this package is
// finite-state; exceeding the bound is a construction error (typically an
// operand with an unbounded state encoding).
const maxPrunedStates = 1 << 20

// pruner removes dead branches from a restricted graph automaton.
//
// Restriction combinators intersect or filter the raw choice sets of their
// operands, which can strand states without any infinite continuation —
// violating the Adversary contract that Choices is non-empty on every
// reachable state. At construction, analyze explores the full raw-reachable
// state space iteratively (no recursion, bounded by maxPrunedStates) and
// classifies every state as live (some infinite walk exists under the raw
// transition relation) or dead; the combinators then offer only graphs
// leading to live states. Because the analysis covers every raw-reachable
// state — a superset of the pruned-reachable ones — runtime lookups never
// encounter an unknown state.
//
// Liveness over a finite automaton: a state is live iff some infinite walk
// leaves it, i.e. iff it is not in the least set closed under "all
// successors dead" starting from the choice-less states. analyze computes
// that fixpoint Kahn-style in O(edges).
//
// The exploration table doubles as the reachable-state dedup and as the
// pruned-choices memo. All methods are safe for concurrent use after
// analyze; the parallel frontier expansion in internal/topo calls Choices
// from a worker pool.
type pruner struct {
	choices func(State) []graph.Graph
	step    func(State, graph.Graph) State

	live map[State]bool

	// prunedMemo caches pruned choice slices per state; guarded by mu (the
	// live table is read-only after analyze and needs no lock).
	mu         sync.RWMutex
	prunedMemo map[State][]graph.Graph
}

func newPruner(choices func(State) []graph.Graph, step func(State, graph.Graph) State) *pruner {
	return &pruner{
		choices:    choices,
		step:       step,
		live:       make(map[State]bool, 64),
		prunedMemo: make(map[State][]graph.Graph, 64),
	}
}

// analyze explores every state raw-reachable from start and computes the
// liveness classification. It must be called once, before any other
// method; it errors if the reachable state space exceeds maxPrunedStates.
func (p *pruner) analyze(start State) error {
	states := []State{start}
	index := map[State]int{start: 0}
	var succs [][]int
	for i := 0; i < len(states); i++ {
		if len(states) > maxPrunedStates {
			return fmt.Errorf("ma: restriction pruning exceeded %d reachable states; operand state space looks unbounded", maxPrunedStates)
		}
		s := states[i]
		choices := p.choices(s)
		row := make([]int, 0, len(choices))
		for _, g := range choices {
			next := p.step(s, g)
			j, ok := index[next]
			if !ok {
				j = len(states)
				index[next] = j
				states = append(states, next)
			}
			row = append(row, j)
		}
		succs = append(succs, row)
	}

	// Dead = least fixpoint of "no successors, or all successors dead".
	// Kahn-style: track the number of not-yet-dead successors; a state
	// whose count reaches zero dies and decrements its predecessors.
	preds := make([][]int, len(states))
	liveSucc := make([]int, len(states))
	for i, row := range succs {
		liveSucc[i] = len(row)
		for _, j := range row {
			preds[j] = append(preds[j], i)
		}
	}
	queue := make([]int, 0, 16)
	dead := make([]bool, len(states))
	for i, c := range liveSucc {
		if c == 0 {
			dead[i] = true
			queue = append(queue, i)
		}
	}
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		for _, pre := range preds[i] {
			liveSucc[pre]--
			if liveSucc[pre] == 0 && !dead[pre] {
				dead[pre] = true
				queue = append(queue, pre)
			}
		}
	}
	for i, s := range states {
		p.live[s] = !dead[i]
	}
	return nil
}

// isLive reports the liveness classification of a state computed by
// analyze. Every state a caller can legitimately hold was covered by the
// analysis, so an unknown state is a caller bug.
func (p *pruner) isLive(s State) bool {
	v, ok := p.live[s]
	if !ok {
		panic(fmt.Sprintf("ma: state %v was not covered by the pruning analysis", s))
	}
	return v
}

// pruned returns the raw choices of s restricted to graphs whose successor
// is live, preserving the raw order. Results are memoized per state.
func (p *pruner) pruned(s State) []graph.Graph {
	p.mu.RLock()
	cached, ok := p.prunedMemo[s]
	p.mu.RUnlock()
	if ok {
		return cached
	}
	raw := p.choices(s)
	out := make([]graph.Graph, 0, len(raw))
	for _, g := range raw {
		if p.isLive(p.step(s, g)) {
			out = append(out, g)
		}
	}
	p.mu.Lock()
	p.prunedMemo[s] = out
	p.mu.Unlock()
	return out
}

// doneReachable reports whether some state with discharged obligations is
// reachable from the adversary's start state through its (already pruned)
// transitions — i.e. whether the adversary denotes a non-empty language,
// given that every reachable state keeps a non-empty choice set. The
// search is bounded by maxPrunedStates; combinator constructors run it
// after their pruning analysis, whose coverage guarantees the bound is
// never the limiting factor there.
func doneReachable(a Adversary) (bool, error) {
	start := a.Start()
	seen := map[State]bool{start: true}
	// Depth-first: obligations typically discharge along one deep walk
	// (e.g. playing the same graph k times), which DFS finds after a
	// handful of steps where BFS would expand whole frontiers first.
	stack := []State{start}
	for len(stack) > 0 {
		if len(seen) > maxPrunedStates {
			return false, fmt.Errorf("ma: obligation-reachability search exceeded %d states for %q", maxPrunedStates, a.Name())
		}
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if a.Done(s) {
			return true, nil
		}
		for _, g := range a.Choices(s) {
			next := a.Step(s, g)
			if !seen[next] {
				seen[next] = true
				stack = append(stack, next)
			}
		}
	}
	return false, nil
}
