package ma

import (
	"fmt"

	"topocon/internal/graph"
)

// CommittedSuffix is the Fevat-Godard-style compact adversary family of
// Section 6.3: rounds before the deadline are free over the full graph
// set; from the deadline on, the sequence is constantly one graph from the
// commitment set. The family excludes, for each deadline R, all sequences
// that keep alternating after R — in particular every fair sequence. As
// R → ∞ the family sweeps out the non-compact "eventually committed"
// adversary whose excluded limits are the fair sequences of
// Definition 5.16; the growing decision times along the family are the
// observable signature (Fig. 5).
type CommittedSuffix struct {
	n        int
	name     string
	free     []graph.Graph
	commit   []graph.Graph
	deadline int
	// all is free ∪ commit, deduplicated (pre-deadline choices).
	all []graph.Graph
}

var _ Adversary = (*CommittedSuffix)(nil)

// commitState tracks the round while free, then the committed graph.
type commitState struct {
	round     int // rounds played so far; meaningful while committed < 0
	committed int // index into commit, or -1 while before the deadline
}

// NewCommittedSuffix builds the adversary. The deadline is the 1-based
// round from which the sequence must be constant (deadline 1 = constant
// from the start).
func NewCommittedSuffix(name string, free, commit []graph.Graph, deadline int) (*CommittedSuffix, error) {
	if len(commit) == 0 {
		return nil, fmt.Errorf("ma: committed-suffix adversary needs commitment graphs")
	}
	if deadline < 1 {
		return nil, fmt.Errorf("ma: deadline %d < 1", deadline)
	}
	n := commit[0].N()
	for _, g := range commit {
		if g.N() != n {
			return nil, fmt.Errorf("ma: mixed node counts in commitment set")
		}
	}
	for _, g := range free {
		if g.N() != n {
			return nil, fmt.Errorf("ma: mixed node counts in free set")
		}
	}
	c := &CommittedSuffix{
		n:    n,
		name: name,
		free: append([]graph.Graph(nil), free...),
		// The commitment set is served verbatim as the choice set at the
		// deadline, so it must be duplicate-free like every choice set.
		commit:   dedupGraphs(commit),
		deadline: deadline,
	}
	if c.name == "" {
		c.name = fmt.Sprintf("committed-suffix(deadline=%d)", deadline)
	}
	c.all = dedupGraphs(append(append([]graph.Graph(nil), free...), commit...))
	return c, nil
}

// MustCommittedSuffix is NewCommittedSuffix for statically-known inputs.
func MustCommittedSuffix(name string, free, commit []graph.Graph, deadline int) *CommittedSuffix {
	a, err := NewCommittedSuffix(name, free, commit, deadline)
	if err != nil {
		panic(err)
	}
	return a
}

// Deadline returns the commitment deadline.
func (c *CommittedSuffix) Deadline() int { return c.deadline }

// N implements Adversary.
func (c *CommittedSuffix) N() int { return c.n }

// Name implements Adversary.
func (c *CommittedSuffix) Name() string { return c.name }

// Compact implements Adversary: the constraint is a safety property.
func (c *CommittedSuffix) Compact() bool { return true }

// Start implements Adversary.
func (c *CommittedSuffix) Start() State {
	return commitState{committed: -1}
}

// Choices implements Adversary.
func (c *CommittedSuffix) Choices(s State) []graph.Graph {
	st := s.(commitState)
	if st.committed >= 0 {
		return c.commit[st.committed : st.committed+1]
	}
	if st.round+1 >= c.deadline {
		// This round is at or past the deadline: it must start (and
		// continue) a commitment.
		return c.commit
	}
	return c.all
}

// Step implements Adversary.
func (c *CommittedSuffix) Step(s State, g graph.Graph) State {
	st := s.(commitState)
	if st.committed >= 0 {
		return st
	}
	if st.round+1 >= c.deadline {
		for i, cg := range c.commit {
			if cg.Equal(g) {
				return commitState{committed: i}
			}
		}
		// Unreachable for well-behaved callers: Choices offered only
		// commitment graphs.
		panic(fmt.Sprintf("ma: non-commitment graph %v played at the deadline", g))
	}
	return commitState{round: st.round + 1, committed: -1}
}

// Done implements Adversary.
func (c *CommittedSuffix) Done(State) bool { return true }
