package ma

import (
	"fmt"
	"strings"

	"topocon/internal/graph"
)

// GraphWord is an ultimately-periodic infinite graph sequence u·v^ω, the
// finite representation of the limit sequences that non-compact adversaries
// exclude (fair/unfair sequences, Definition 5.16) and the building block
// of explicit finite message adversaries.
type GraphWord struct {
	// Prefix is the finite transient u (may be empty).
	Prefix []graph.Graph
	// Cycle is the repeated part v (must be non-empty).
	Cycle []graph.Graph
}

// NewGraphWord validates and returns the word u·v^ω.
func NewGraphWord(prefix, cycle []graph.Graph) (GraphWord, error) {
	if len(cycle) == 0 {
		return GraphWord{}, fmt.Errorf("ma: graph word needs a non-empty cycle")
	}
	n := cycle[0].N()
	for _, g := range cycle {
		if g.N() != n {
			return GraphWord{}, fmt.Errorf("ma: mixed node counts in cycle")
		}
	}
	for _, g := range prefix {
		if g.N() != n {
			return GraphWord{}, fmt.Errorf("ma: mixed node counts in prefix")
		}
	}
	return GraphWord{
		Prefix: append([]graph.Graph(nil), prefix...),
		Cycle:  append([]graph.Graph(nil), cycle...),
	}, nil
}

// MustGraphWord is NewGraphWord for statically-known words.
func MustGraphWord(prefix, cycle []graph.Graph) GraphWord {
	w, err := NewGraphWord(prefix, cycle)
	if err != nil {
		panic(err)
	}
	return w
}

// Repeat returns the word v^ω with empty transient.
func Repeat(cycle ...graph.Graph) GraphWord {
	return MustGraphWord(nil, cycle)
}

// N returns the node count.
func (w GraphWord) N() int { return w.Cycle[0].N() }

// At returns the round-(t+1) graph, i.e. the graph at 0-based position t.
func (w GraphWord) At(t int) graph.Graph {
	if t < len(w.Prefix) {
		return w.Prefix[t]
	}
	return w.Cycle[(t-len(w.Prefix))%len(w.Cycle)]
}

// PhaseCount returns the number of distinct positions (prefix length plus
// cycle length); positions ≥ PhaseCount wrap into the cycle.
func (w GraphWord) PhaseCount() int { return len(w.Prefix) + len(w.Cycle) }

// Phase normalizes a 0-based position to a phase in [0, PhaseCount).
func (w GraphWord) Phase(t int) int {
	if t < len(w.Prefix) {
		return t
	}
	return len(w.Prefix) + (t-len(w.Prefix))%len(w.Cycle)
}

// Take returns the first `rounds` graphs of the word.
func (w GraphWord) Take(rounds int) []graph.Graph {
	out := make([]graph.Graph, rounds)
	for t := 0; t < rounds; t++ {
		out[t] = w.At(t)
	}
	return out
}

// String renders the word, e.g. "[1->2];([2->1] [1->2])^w".
func (w GraphWord) String() string {
	parts := make([]string, 0, len(w.Prefix))
	for _, g := range w.Prefix {
		parts = append(parts, g.String())
	}
	cyc := make([]string, 0, len(w.Cycle))
	for _, g := range w.Cycle {
		cyc = append(cyc, g.String())
	}
	head := strings.Join(parts, " ")
	if head != "" {
		head += ";"
	}
	return head + "(" + strings.Join(cyc, " ") + ")^w"
}
