package ma

import (
	"fmt"

	"topocon/internal/graph"
)

// WindowStable adds a graph-repetition liveness obligation to a base
// adversary: a sequence is admissible iff it is admissible under the base
// and some graph occurs in k consecutive rounds. It is the graph-identity
// analogue of EventuallyStable's vertex-stable root windows, applicable to
// any base (EventuallyStable is tied to single-root stable sets).
//
// The combinator is non-compact for k > 0 in general: the base sequences
// that never hold any graph for k rounds are excluded limits. Choices is
// the base's — the obligation restricts only limits, not finite behaviour
// — so a base prefix that cannot extend to a repetition (possible when the
// base's own structure forbids one, e.g. a strictly alternating lasso set)
// remains enumerable but never discharges; NewWindowStable rejects bases
// whose structure makes the obligation wholly unsatisfiable.
type WindowStable struct {
	name string
	base Adversary
	k    int
}

var _ Adversary = (*WindowStable)(nil)

// windowState tracks the current repetition streak on top of the base
// state: lastKey is the canonical key of the previous round's graph and
// streak its consecutive occurrence count; done is absorbing.
type windowState struct {
	base    State
	lastKey string
	streak  int
	done    bool
}

// NewWindowStable wraps base with a k-round repetition obligation; k must
// be at least 1, and some admissible base sequence must contain a k-round
// repetition that also discharges the base's own obligations (otherwise
// the wrapped language is empty).
func NewWindowStable(base Adversary, k int) (*WindowStable, error) {
	if k < 1 {
		return nil, fmt.Errorf("ma: window %d < 1", k)
	}
	w := &WindowStable{
		name: fmt.Sprintf("%s ~ repeat^%d", base.Name(), k),
		base: base,
		k:    k,
	}
	ok, err := doneReachable(w)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("ma: window-stable %q is empty (the base admits no %d-round repetition discharging its obligations)", w.name, k)
	}
	return w, nil
}

// MustWindowStable is NewWindowStable for statically-known inputs.
func MustWindowStable(base Adversary, k int) *WindowStable {
	w, err := NewWindowStable(base, k)
	if err != nil {
		panic(err)
	}
	return w
}

// Base returns the wrapped adversary.
func (w *WindowStable) Base() Adversary { return w.base }

// Window returns the required repetition length.
func (w *WindowStable) Window() int { return w.k }

// N implements Adversary.
func (w *WindowStable) N() int { return w.base.N() }

// Name implements Adversary.
func (w *WindowStable) Name() string { return w.name }

// Compact implements Adversary: the repetition obligation excludes limit
// sequences, so the wrapped adversary is reported non-compact (the
// conservative direction when the base language happens to make the
// obligation vacuous).
func (w *WindowStable) Compact() bool { return false }

// Start implements Adversary.
func (w *WindowStable) Start() State {
	return windowState{base: w.base.Start()}
}

// Choices implements Adversary: finite behaviour is the base's.
func (w *WindowStable) Choices(s State) []graph.Graph {
	return w.base.Choices(s.(windowState).base)
}

// Step implements Adversary: equal consecutive graphs extend the streak, a
// different graph starts a fresh one.
func (w *WindowStable) Step(s State, g graph.Graph) State {
	st := s.(windowState)
	next := w.base.Step(st.base, g)
	if st.done {
		return windowState{base: next, done: true}
	}
	key := g.Key()
	streak := 1
	if key == st.lastKey {
		streak = st.streak + 1
	}
	if streak >= w.k {
		return windowState{base: next, done: true}
	}
	return windowState{base: next, lastKey: key, streak: streak}
}

// Done implements Adversary: the repetition must have occurred and the
// base's own obligations must hold. Both conjuncts are absorbing, so the
// conjunction is.
func (w *WindowStable) Done(s State) bool {
	st := s.(windowState)
	return st.done && w.base.Done(st.base)
}
