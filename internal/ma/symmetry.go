package ma

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"topocon/internal/graph"
)

// Symmetry detection: the automorphism group of an adversary's graph
// language. A process permutation σ is an automorphism when relabeling
// every communication graph of every admissible sequence by σ yields
// exactly the same adversary — behaviourally, not syntactically. The
// prefix space of such an adversary is invariant under σ, so the
// topological analysis only needs one representative per orbit
// (DESIGN.md §13); internal/topo quotients its frontier by the group
// returned here.

const (
	// maxAutoN bounds the permutation enumeration: Automorphisms inspects
	// all n! candidate permutations, which is fine through n=7 (5040) and
	// pointless beyond — frontier sizes cap practical n well below that.
	maxAutoN = 7
	// MaxGroupOrder bounds the accepted group order. The quotient layer
	// keeps one stabilizer bitmask per interned item, so the group must
	// fit a uint64; larger groups (S₅ already has order 120) fall back to
	// the trivial group, which is always sound.
	MaxGroupOrder = 64
	// autoPairCap bounds the bisimulation state-pair exploration per
	// candidate permutation. Automata that blow past it are treated as
	// asymmetric (trivial group) rather than risking an unsound accept.
	autoPairCap = 4096
)

// Group is a permutation group on the process set [0,n) — the
// automorphism group of an adversary's graph language as computed by
// Automorphisms. Element 0 is always the identity. Groups are immutable.
type Group struct {
	n     int
	elems [][]int // elems[k][p] = image of process p under element k
	inv   [][]int // inv[k] is the inverse permutation of elems[k]
	fp    string
}

// TrivialGroup returns the group containing only the identity on n
// processes.
func TrivialGroup(n int) *Group {
	id := make([]int, n)
	for p := range id {
		id[p] = p
	}
	return newGroup(n, [][]int{id})
}

func newGroup(n int, elems [][]int) *Group {
	g := &Group{n: n, elems: elems, inv: make([][]int, len(elems))}
	for k, perm := range elems {
		inv := make([]int, n)
		for p, q := range perm {
			inv[q] = p
		}
		g.inv[k] = inv
	}
	h := sha256.New()
	fmt.Fprintf(h, "n=%d;m=%d;", n, len(elems))
	for _, perm := range elems {
		for _, q := range perm {
			fmt.Fprintf(h, "%d,", q)
		}
		h.Write([]byte(";"))
	}
	g.fp = hex.EncodeToString(h.Sum(nil))
	return g
}

// N returns the number of processes the group acts on.
func (g *Group) N() int { return g.n }

// Order returns the number of group elements.
func (g *Group) Order() int { return len(g.elems) }

// Trivial reports whether the group is just the identity.
func (g *Group) Trivial() bool { return len(g.elems) <= 1 }

// Elem returns group element k as a process permutation (image-indexed:
// Elem(k)[p] is where p goes). Element 0 is the identity. The returned
// slice must not be mutated.
func (g *Group) Elem(k int) []int { return g.elems[k] }

// Inv returns the inverse of group element k. The returned slice must
// not be mutated.
func (g *Group) Inv(k int) []int { return g.inv[k] }

// Fingerprint returns a canonical hex hash of the group (node count plus
// the sorted element list). Two adversaries with behaviourally equal
// graph languages get equal group fingerprints; sweep cache keys include
// it so orbit-quotiented verdicts never collide with differently-grouped
// ones.
func (g *Group) Fingerprint() string { return g.fp }

// Automorphisms computes the automorphism group of the adversary's graph
// language: all process permutations σ such that relabeling every graph
// of every admissible sequence by σ yields the same adversary. The check
// is exact (a σ-twisted bisimulation over the reachable automaton), so
// the result is independent of the adversary's syntactic construction.
//
// Fallbacks to the trivial group — always sound, the quotient just
// degenerates to the identity — happen when n > 7 (enumeration cost),
// when the group order would exceed MaxGroupOrder, or when an automaton
// is too large to verify within the exploration cap.
//
//topocon:export
func Automorphisms(a Adversary) *Group {
	a = Normalize(a)
	n := a.N()
	if n > maxAutoN {
		return TrivialGroup(n)
	}
	var accepted [][]int
	overflow := false
	perm := make([]int, n)
	for p := range perm {
		perm[p] = p
	}
	permute(perm, 0, func(candidate []int) {
		if overflow || len(accepted) > MaxGroupOrder {
			return
		}
		ok, fits := isAutomorphism(a, candidate)
		if !fits {
			overflow = true
			return
		}
		if ok {
			accepted = append(accepted, append([]int(nil), candidate...))
		}
	})
	if overflow || len(accepted) > MaxGroupOrder {
		return TrivialGroup(n)
	}
	// The exact check makes the accepted set a group automatically; keep a
	// closure sanity check anyway so a checker bug can only ever degrade
	// to the (sound) trivial group instead of corrupting orbit accounting.
	if !closedUnderComposition(n, accepted) {
		return TrivialGroup(n)
	}
	canonicalizeGroup(accepted)
	return newGroup(n, accepted)
}

// permute enumerates all permutations of perm[at:] in place (Heap-style
// recursion), invoking visit with the full permutation each time.
func permute(perm []int, at int, visit func([]int)) {
	if at == len(perm) {
		visit(perm)
		return
	}
	for i := at; i < len(perm); i++ {
		perm[at], perm[i] = perm[i], perm[at]
		permute(perm, at+1, visit)
		perm[at], perm[i] = perm[i], perm[at]
	}
}

// isAutomorphism checks whether σ is an automorphism of a's graph
// language by a σ-twisted bisimulation: state pairs (s,t) must agree on
// Done, and for every choice g of s, σ(g) must be a choice of t with the
// successors again related. fits=false reports that the exploration
// exceeded autoPairCap before completing.
func isAutomorphism(a Adversary, sigma []int) (ok, fits bool) {
	// Oblivious fast path: the language is the ω-power of the graph set,
	// so σ is an automorphism iff the set is closed under relabeling.
	if o, isOb := a.(*Oblivious); isOb {
		keys := make(map[string]bool, len(o.graphs))
		for _, g := range o.graphs {
			keys[g.Key()] = true
		}
		for _, g := range o.graphs {
			if !keys[g.Relabel(sigma).Key()] {
				return false, true
			}
		}
		return true, true
	}
	type pair struct{ s, t State }
	start := a.Start()
	seen := map[pair]bool{{start, start}: true}
	queue := []pair{{start, start}}
	for len(queue) > 0 {
		pr := queue[0]
		queue = queue[1:]
		if a.Done(pr.s) != a.Done(pr.t) {
			return false, true
		}
		cs, ct := a.Choices(pr.s), a.Choices(pr.t)
		if len(cs) != len(ct) {
			return false, true
		}
		byKey := make(map[string]graph.Graph, len(ct))
		for _, g := range ct {
			byKey[g.Key()] = g
		}
		for _, g := range cs {
			img, okT := byKey[g.Relabel(sigma).Key()]
			if !okT {
				return false, true
			}
			next := pair{a.Step(pr.s, g), a.Step(pr.t, img)}
			if !seen[next] {
				if len(seen) >= autoPairCap {
					return false, false
				}
				seen[next] = true
				queue = append(queue, next)
			}
		}
	}
	return true, true
}

// closedUnderComposition verifies that the permutation set is a group
// (contains the identity, as enumeration always visits it, and is closed
// under composition — finiteness then gives inverses for free).
func closedUnderComposition(n int, perms [][]int) bool {
	keys := make(map[string]bool, len(perms))
	enc := func(p []int) string {
		b := make([]byte, n)
		for i, q := range p {
			b[i] = byte(q)
		}
		return string(b)
	}
	for _, p := range perms {
		keys[enc(p)] = true
	}
	comp := make([]int, n)
	for _, p := range perms {
		for _, q := range perms {
			for i := 0; i < n; i++ {
				comp[i] = q[p[i]]
			}
			if !keys[enc(comp)] {
				return false
			}
		}
	}
	return true
}

// canonicalizeGroup orders elements lexicographically with the identity
// first, making Group fingerprints and element indices deterministic.
func canonicalizeGroup(perms [][]int) {
	less := func(a, b []int) bool {
		for i := range a {
			if a[i] != b[i] {
				return a[i] < b[i]
			}
		}
		return false
	}
	// Insertion sort: group orders are ≤ MaxGroupOrder.
	for i := 1; i < len(perms); i++ {
		for j := i; j > 0 && less(perms[j], perms[j-1]); j-- {
			perms[j], perms[j-1] = perms[j-1], perms[j]
		}
	}
}
