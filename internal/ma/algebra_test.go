package ma

import (
	"fmt"
	"strings"
	"testing"

	"topocon/internal/graph"
)

// seedFamilies returns one representative of every n=2 seed adversary
// family, the ground set over which the algebra properties are checked.
func seedFamilies() []Adversary {
	evs := MustEventuallyStable("",
		[]graph.Graph{graph.Left, graph.Both}, []graph.Graph{graph.Right}, 2)
	return []Adversary{
		LossyLink2(),
		LossyLink3(),
		Unrestricted(2),
		evs,
		MustDeadlineStable(evs, 3),
		MustCommittedSuffix("",
			[]graph.Graph{graph.Left, graph.Right, graph.Both},
			[]graph.Graph{graph.Left, graph.Right}, 2),
		MustLassoSet("", Repeat(graph.Left), Repeat(graph.Right),
			MustGraphWord([]graph.Graph{graph.Both}, []graph.Graph{graph.Right})),
		MustUnion("", LossyLink2(), MustLassoSet("", Repeat(graph.Both))),
		MustExclusion(LossyLink3(), Repeat(graph.Both)),
		LossBounded(2, 1),
	}
}

// enumerate renders every admissible prefix (graphs plus Done flag) of
// exactly the given length, in enumeration order.
func enumerate(a Adversary, rounds int) []string {
	var out []string
	EnumeratePrefixes(a, rounds, func(p Prefix) bool {
		keys := make([]string, len(p.Graphs))
		for i, g := range p.Graphs {
			keys[i] = g.Key()
		}
		out = append(out, fmt.Sprintf("%s done=%v@%d", strings.Join(keys, " "), p.Done, p.DoneAt))
		return true
	})
	return out
}

func sameEnumeration(t *testing.T, a, b Adversary, horizon int) {
	t.Helper()
	for rounds := 1; rounds <= horizon; rounds++ {
		ea, eb := enumerate(a, rounds), enumerate(b, rounds)
		if len(ea) != len(eb) {
			t.Fatalf("rounds %d: %q has %d prefixes, %q has %d",
				rounds, a.Name(), len(ea), b.Name(), len(eb))
		}
		for i := range ea {
			if ea[i] != eb[i] {
				t.Fatalf("rounds %d, prefix %d: %q enumerates %s, %q enumerates %s",
					rounds, i, a.Name(), ea[i], b.Name(), eb[i])
			}
		}
	}
}

// TestAlgebraCombinatorsValidate: every combinator applied to the seed
// families yields a contract-conforming adversary (ma.Validate to depth 6).
func TestAlgebraCombinatorsValidate(t *testing.T) {
	families := seedFamilies()
	u := Unrestricted(2)
	for _, f := range families {
		f := f
		t.Run(f.Name(), func(t *testing.T) {
			inter, err := NewIntersect("", f, u)
			if err != nil {
				t.Fatalf("Intersect(%q, unrestricted): %v", f.Name(), err)
			}
			if err := Validate(inter, 6); err != nil {
				t.Errorf("Intersect: %v", err)
			}
			cc, err := NewConcat("", u, 2, f)
			if err != nil {
				t.Fatalf("Concat(unrestricted, 2, %q): %v", f.Name(), err)
			}
			if err := Validate(cc, 6); err != nil {
				t.Errorf("Concat: %v", err)
			}
			ws, err := NewWindowStable(f, 2)
			if err != nil {
				t.Fatalf("WindowStable(%q, 2): %v", f.Name(), err)
			}
			if err := Validate(ws, 6); err != nil {
				t.Errorf("WindowStable: %v", err)
			}
			// Rooted holds on <-, -> and <-> but not on the silent graph, so
			// it never empties an n=2 seed family's language.
			fl, err := NewFilter(f, "", PredRooted())
			if err != nil {
				t.Fatalf("Filter(%q, rooted): %v", f.Name(), err)
			}
			if err := Validate(fl, 6); err != nil {
				t.Errorf("Filter: %v", err)
			}
		})
	}
}

// TestIntersectUnrestrictedIdentity: Intersect(a, Unrestricted) ≡ a on
// prefix enumeration up to horizon 5 — identical prefixes, identical
// order, identical Done times.
func TestIntersectUnrestrictedIdentity(t *testing.T) {
	for _, f := range seedFamilies() {
		f := f
		t.Run(f.Name(), func(t *testing.T) {
			inter := MustIntersect("", f, Unrestricted(2))
			sameEnumeration(t, inter, f, 5)
			if inter.Compact() != f.Compact() {
				t.Errorf("Compact=%v, want %v", inter.Compact(), f.Compact())
			}
		})
	}
}

// TestConcatZeroIdentity: Concat(a, 0, b) ≡ b on prefix enumeration up to
// horizon 5, for every seed pair (a fixed, b ranging).
func TestConcatZeroIdentity(t *testing.T) {
	a := LossyLink3()
	for _, b := range seedFamilies() {
		b := b
		t.Run(b.Name(), func(t *testing.T) {
			cc := MustConcat("", a, 0, b)
			sameEnumeration(t, cc, b, 5)
			if cc.Compact() != b.Compact() {
				t.Errorf("Compact=%v, want %v", cc.Compact(), b.Compact())
			}
		})
	}
}

func TestIntersectConstructionErrors(t *testing.T) {
	if _, err := NewIntersect("", LossyLink2(), Unrestricted(3)); err == nil {
		t.Error("N mismatch: want error")
	}
	// {<-^ω} ∩ {->^ω} is empty.
	left := MustLassoSet("", Repeat(graph.Left))
	right := MustLassoSet("", Repeat(graph.Right))
	if _, err := NewIntersect("", left, right); err == nil {
		t.Error("empty intersection: want error")
	}
}

// TestIntersectRejectsUnsatisfiableObligations: an intersection whose
// operands admit common infinite walks but whose liveness obligations can
// never be discharged jointly denotes the empty language and must be
// rejected at construction (review finding: the walk-existence check alone
// let it through).
func TestIntersectRejectsUnsatisfiableObligations(t *testing.T) {
	// The alternating lasso (<- ->)^ω never repeats a graph, so the
	// repetition obligation of WindowStable(lossy2, 2) is unsatisfiable
	// inside it, even though infinite common walks exist.
	alternating := MustLassoSet("", MustGraphWord(nil, []graph.Graph{graph.Left, graph.Right}))
	ws := MustWindowStable(LossyLink2(), 2)
	if _, err := NewIntersect("", ws, alternating); err == nil {
		t.Error("jointly unsatisfiable obligations: want error")
	}
}

// TestWindowStableRejectsUnsatisfiableRepetition: a base whose structure
// forbids any k-repetition yields the empty language.
func TestWindowStableRejectsUnsatisfiableRepetition(t *testing.T) {
	alternating := MustLassoSet("", MustGraphWord(nil, []graph.Graph{graph.Left, graph.Right}))
	if _, err := NewWindowStable(alternating, 2); err == nil {
		t.Error("repetition-free base: want error")
	}
	// k=1 is dischargeable on any base.
	if _, err := NewWindowStable(alternating, 1); err != nil {
		t.Errorf("window 1 must be satisfiable: %v", err)
	}
}

// TestFilterRejectsUnsatisfiableObligations: a filter that keeps infinite
// walks alive but cuts off every obligation-discharging one is empty.
func TestFilterRejectsUnsatisfiableObligations(t *testing.T) {
	// Eventually-stable with chaos {<-} and stable {->}: filtering to
	// graphs with an edge into process 1 keeps <- playable forever but
	// removes ->, so stabilization can never occur.
	ev := MustEventuallyStable("", []graph.Graph{graph.Left}, []graph.Graph{graph.Right}, 1)
	intoOne := NewGraphPred("into-1", func(g graph.Graph) bool { return g.HasEdge(1, 0) })
	if _, err := NewFilter(ev, "", intoOne); err == nil {
		t.Error("filter cutting off all discharging walks: want error")
	}
}

// TestPrunerStateCap: restriction combinators reject operands whose
// reachable state space exceeds the pruning bound, with an error instead
// of unbounded exploration (review finding: the old recursive DFS never
// tripped its cap on deep chains).
func TestPrunerStateCap(t *testing.T) {
	deep := MustConcat("", LossyLink2(), 2_000_000, LossyLink2())
	if _, err := NewFilter(deep, "", PredRooted()); err == nil {
		t.Error("state-space blowup: want error")
	}
}

func TestConcatConstructionErrors(t *testing.T) {
	if _, err := NewConcat("", LossyLink2(), 2, Unrestricted(3)); err == nil {
		t.Error("N mismatch: want error")
	}
	if _, err := NewConcat("", LossyLink2(), -1, LossyLink2()); err == nil {
		t.Error("negative round count: want error")
	}
}

func TestFilterConstructionErrors(t *testing.T) {
	if _, err := NewFilter(LossyLink2(), "", GraphPred{Name: "nil"}); err == nil {
		t.Error("nil predicate: want error")
	}
	// LossyLink2 has no strongly connected graph: empty restriction.
	if _, err := NewFilter(LossyLink2(), "", PredStronglyConnected()); err == nil {
		t.Error("empty filter: want error")
	}
}

func TestWindowStableConstructionErrors(t *testing.T) {
	if _, err := NewWindowStable(LossyLink2(), 0); err == nil {
		t.Error("window 0: want error")
	}
}

// TestIntersectPrunesDeadBranches: the product of the lasso sets
// {<-^ω, <-->^ω} and {<-^ω, ->->^ω} shares only <-^ω; the first-round
// choice -> of both operands must be pruned (playing it would strand the
// run: the operands then disagree on round 2).
func TestIntersectPrunesDeadBranches(t *testing.T) {
	a := MustLassoSet("", Repeat(graph.Left), MustGraphWord([]graph.Graph{graph.Right}, []graph.Graph{graph.Both}))
	b := MustLassoSet("", Repeat(graph.Left), MustGraphWord([]graph.Graph{graph.Right}, []graph.Graph{graph.Right}))
	inter := MustIntersect("", a, b)
	if err := Validate(inter, 5); err != nil {
		t.Fatal(err)
	}
	choices := inter.Choices(inter.Start())
	if len(choices) != 1 || !choices[0].Equal(graph.Left) {
		t.Fatalf("start choices = %v, want only <-", choices)
	}
	if got := CountPrefixes(inter, 4); got != 1 {
		t.Errorf("CountPrefixes(4) = %d, want 1", got)
	}
}

// TestFilterPrunesDeadBranches: filtering the lasso set {<-<->^ω, ->^ω} to
// rooted graphs must drop the whole <- branch — <- itself is rooted but
// every continuation of it is <->, which is rooted too... use nonsplit on
// a set where the continuation fails the predicate.
func TestFilterPrunesDeadBranches(t *testing.T) {
	// Words: <- then --^ω, and ->^ω. The silent graph -- is not rooted, so
	// the <- branch has no admissible continuation and must be pruned even
	// though <- itself satisfies the predicate.
	w1 := MustGraphWord([]graph.Graph{graph.Left}, []graph.Graph{graph.Neither})
	w2 := Repeat(graph.Right)
	base := MustLassoSet("", w1, w2)
	fl := MustFilter(base, "", PredRooted())
	if err := Validate(fl, 5); err != nil {
		t.Fatal(err)
	}
	choices := fl.Choices(fl.Start())
	if len(choices) != 1 || !choices[0].Equal(graph.Right) {
		t.Fatalf("start choices = %v, want only ->", choices)
	}
}

func TestWindowStableSemantics(t *testing.T) {
	ws := MustWindowStable(LossyLink3(), 2)
	if ws.Compact() {
		t.Error("window-stable adversary must be non-compact")
	}
	if err := Validate(ws, 5); err != nil {
		t.Fatal(err)
	}
	// Finite behaviour is the base's.
	if got, want := CountPrefixes(ws, 4), CountPrefixes(LossyLink3(), 4); got != want {
		t.Errorf("CountPrefixes = %d, want %d", got, want)
	}
	// Done exactly on prefixes containing an immediate repetition.
	EnumeratePrefixes(ws, 4, func(p Prefix) bool {
		want := false
		for i := 1; i < len(p.Graphs); i++ {
			if p.Graphs[i].Equal(p.Graphs[i-1]) {
				want = true
			}
		}
		if p.Done != want {
			t.Errorf("prefix %v: Done=%v, want %v", p.Graphs, p.Done, want)
		}
		return true
	})
}

func TestGraphPredLibrary(t *testing.T) {
	cases := []struct {
		pred GraphPred
		g    graph.Graph
		want bool
	}{
		{PredStronglyConnected(), graph.Both, true},
		{PredStronglyConnected(), graph.Left, false},
		{PredMinOutDegree(1), graph.Both, true},
		{PredMinOutDegree(1), graph.Right, false},
		{PredMinOutDegree(0), graph.Neither, true},
		{PredRooted(), graph.Left, true},
		{PredRooted(), graph.Neither, false},
		{PredStar(), graph.Star(3, 1), true},
		{PredStar(), graph.Chain(3), false},
		{PredNonsplit(), graph.Both, true},
		{PredNonsplit(), graph.Left, true},
		{PredNonsplit(), graph.Neither, false},
		{PredNonsplit(), graph.MustParse(3, "1->2, 1->3"), true},
		{PredNonsplit(), graph.Chain(3), false},
	}
	for _, c := range cases {
		if got := c.pred.Holds(c.g); got != c.want {
			t.Errorf("%s(%v) = %v, want %v", c.pred.Name, c.g, got, c.want)
		}
	}
}

// TestValidateRejectsDuplicateChoices: the strengthened Validate flags
// adversaries whose Choices contain the same graph twice.
func TestValidateRejectsDuplicateChoices(t *testing.T) {
	dup := duplicateChoicesAdversary{}
	err := Validate(dup, 2)
	if err == nil || !strings.Contains(err.Error(), "duplicate graph") {
		t.Errorf("Validate = %v, want duplicate-graph error", err)
	}
}

// duplicateChoicesAdversary deliberately offers the same graph twice.
type duplicateChoicesAdversary struct{}

func (duplicateChoicesAdversary) N() int        { return 2 }
func (duplicateChoicesAdversary) Name() string  { return "dup" }
func (duplicateChoicesAdversary) Compact() bool { return true }
func (duplicateChoicesAdversary) Start() State  { return 0 }
func (duplicateChoicesAdversary) Choices(State) []graph.Graph {
	return []graph.Graph{graph.Left, graph.Left}
}
func (duplicateChoicesAdversary) Step(s State, _ graph.Graph) State { return s }
func (duplicateChoicesAdversary) Done(State) bool                   { return true }

func TestFingerprintStableAndBehavioural(t *testing.T) {
	// Stable across invocations.
	a := MustWindowStable(LossyLink3(), 2)
	b := MustWindowStable(LossyLink3(), 2)
	if Fingerprint(a, 6) != Fingerprint(b, 6) {
		t.Error("fingerprint differs between identical constructions")
	}
	// Independent of Name and construction path: the graph-set intersection
	// of lossy3 with the unrestricted adversary is behaviourally lossy3.
	inter := MustIntersect("renamed", LossyLink3(), Unrestricted(2))
	if Fingerprint(inter, 6) != Fingerprint(LossyLink3(), 6) {
		t.Error("behaviourally identical automata must fingerprint identically")
	}
	// LossBounded(2,1) IS the lossy link, just constructed differently:
	// behavioural identity is what the hash keys.
	if Fingerprint(LossBounded(2, 1), 6) != Fingerprint(LossyLink3(), 6) {
		t.Error("LossBounded(2,1) and LossyLink3 must fingerprint identically")
	}
	// Distinguishes genuinely different behaviours.
	distinct := map[string]string{}
	for _, f := range seedFamilies() {
		if f.Name() == LossBounded(2, 1).Name() {
			continue // same language as LossyLink3, asserted equal above
		}
		fp := Fingerprint(f, 6)
		if prev, clash := distinct[fp]; clash {
			t.Errorf("fingerprint collision between %q and %q", prev, f.Name())
		}
		distinct[fp] = f.Name()
	}
	// Depth matters only beyond the explored region.
	if Fingerprint(LossyLink3(), 3) == Fingerprint(LossyLink3(), 4) {
		t.Log("note: depth-3 and depth-4 fingerprints coincide (stateless adversary)")
	}
	if FingerprintShort(a, 4) != Fingerprint(a, 4)[:16] {
		t.Error("FingerprintShort must prefix Fingerprint")
	}
}

// BenchmarkIntersectOverhead pins the cost of the product automaton against
// a hand-written equivalent: LossyLink3 ∩ LossBounded(2,1) has exactly the
// language of LossyLink3 itself.
func BenchmarkIntersectOverhead(b *testing.B) {
	const depth = 9
	b.Run("product", func(b *testing.B) {
		inter := MustIntersect("", LossyLink3(), LossBounded(2, 1))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			count := 0
			EnumeratePrefixes(inter, depth, func(Prefix) bool { count++; return true })
			if count != 19683 { // 3^9
				b.Fatalf("enumerated %d prefixes", count)
			}
		}
	})
	b.Run("handwritten", func(b *testing.B) {
		adv := LossyLink3()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			count := 0
			EnumeratePrefixes(adv, depth, func(Prefix) bool { count++; return true })
			if count != 19683 {
				b.Fatalf("enumerated %d prefixes", count)
			}
		}
	})
}
