package ma

import (
	"testing"
)

// TestNormalizeRewritesIdentitySpellings: the algebraic identity rewrites
// fire structurally — the normal form of an identity spelling IS the
// underlying operand, not merely something behaviourally equal to it.
func TestNormalizeRewritesIdentitySpellings(t *testing.T) {
	u := Unrestricted(2)
	for _, f := range seedFamilies() {
		f := f
		// isOperand checks the rewrite reached f itself. When f is the
		// unrestricted adversary both Intersect operands are units and
		// either may be returned, so membership in the unrestricted family
		// is the right notion of identity there.
		isOperand := func(got Adversary) bool {
			if IsUnrestricted(f) {
				return IsUnrestricted(got)
			}
			return got == Normalize(f)
		}
		t.Run(f.Name(), func(t *testing.T) {
			if got := Normalize(MustIntersect("", f, u)); !isOperand(got) {
				t.Errorf("Normalize(Intersect(a, U)) = %q, want the operand", got.Name())
			}
			if got := Normalize(MustIntersect("", u, f)); !isOperand(got) {
				t.Errorf("Normalize(Intersect(U, a)) = %q, want the operand", got.Name())
			}
			if got := Normalize(MustConcat("", LossyLink3(), 0, f)); !isOperand(got) {
				t.Errorf("Normalize(Concat(a, 0, b)) = %q, want the suffix operand", got.Name())
			}
			// Rewrites recurse: nesting identity spellings still reaches the
			// underlying operand.
			nested := MustIntersect("", MustConcat("", u, 0, MustIntersect("", f, u)), u)
			if got := Normalize(nested); !isOperand(got) {
				t.Errorf("Normalize(nested spelling) = %q, want the operand", got.Name())
			}
		})
	}
}

// TestNormalizePassThrough: adversaries with nothing to rewrite come back
// unchanged (same value, not a rebuilt copy), and genuine combinators
// survive normalization with their language intact.
func TestNormalizePassThrough(t *testing.T) {
	for _, f := range seedFamilies() {
		if got := Normalize(f); got != f {
			t.Errorf("Normalize(%q) rebuilt an already-normal adversary", f.Name())
		}
	}
	// A non-identity Intersect must survive (LossyLink2 is a strict subset
	// of LossyLink3, not the unit).
	inter := MustIntersect("", LossyLink3(), LossyLink2())
	if got := Normalize(inter); got != inter {
		t.Errorf("Normalize rewrote a non-identity Intersect to %q", got.Name())
	}
	// A positive-round Concat must survive, but with its operands
	// normalized: the zero-round spelling inside the suffix is rewritten.
	ll2 := LossyLink2()
	cc := MustConcat("keep", LossyLink3(), 2, MustConcat("", LossyLink3(), 0, ll2))
	got, ok := Normalize(cc).(*Concat)
	if !ok {
		t.Fatalf("Normalize(Concat(a, 2, b)) = %T, want *Concat", Normalize(cc))
	}
	if got.Rounds() != 2 {
		t.Errorf("normalized Concat plays %d prefix rounds, want 2", got.Rounds())
	}
	if _, suffix := got.Operands(); suffix != ll2 {
		t.Errorf("normalized Concat suffix = %q, want the rewritten operand", suffix.Name())
	}
}

// TestFingerprintIdentitySpellingsCollide is the fingerprint-equality
// regression test over the seed corpus: the identity spellings
// Intersect(a, Unrestricted) and Concat(x, 0, a) must hash exactly like a
// itself — same cache key, same verdict store entry — for every seed
// family and on both sides of the Intersect. Before fingerprinting
// normalized the expression tree, spellings whose automaton states never
// merge (Concat wraps every successor in a fresh phase-tracking state)
// hashed differently from their normal forms and split the cache.
func TestFingerprintIdentitySpellingsCollide(t *testing.T) {
	const depth = 6
	u := Unrestricted(2)
	for _, f := range seedFamilies() {
		f := f
		t.Run(f.Name(), func(t *testing.T) {
			want := Fingerprint(f, depth)
			spellings := map[string]Adversary{
				"Intersect(a, U)":       MustIntersect("", f, u),
				"Intersect(U, a)":       MustIntersect("", u, f),
				"Concat(lossy3, 0, a)":  MustConcat("", LossyLink3(), 0, f),
				"Concat(U, 0, a)":       MustConcat("", u, 0, f),
				"nested identity tower": MustIntersect("", MustConcat("", u, 0, MustIntersect("", f, u)), u),
			}
			for label, spelled := range spellings {
				if got := Fingerprint(spelled, depth); got != want {
					t.Errorf("%s fingerprints %s, want %s (the operand's)", label, got[:16], want[:16])
				}
			}
		})
	}
}
