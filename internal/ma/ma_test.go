package ma

import (
	"strings"
	"testing"

	"topocon/internal/graph"
)

func TestObliviousBasics(t *testing.T) {
	a := LossyLink3()
	if a.N() != 2 || !a.Compact() {
		t.Fatalf("LossyLink3: N=%d Compact=%v", a.N(), a.Compact())
	}
	if err := Validate(a, 3); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := CountPrefixes(a, 3); got != 27 {
		t.Errorf("CountPrefixes(3) = %d, want 27", got)
	}
	count := 0
	EnumeratePrefixes(a, 2, func(p Prefix) bool {
		if len(p.Graphs) != 2 || !p.Done {
			t.Errorf("bad prefix %v", p)
		}
		count++
		return true
	})
	if count != 9 {
		t.Errorf("enumerated %d prefixes, want 9", count)
	}
}

func TestObliviousErrors(t *testing.T) {
	if _, err := NewOblivious("", nil); err == nil {
		t.Error("empty graph set: want error")
	}
	if _, err := NewOblivious("", []graph.Graph{graph.New(2), graph.New(3)}); err == nil {
		t.Error("mixed node counts: want error")
	}
}

func TestObliviousDeduplicatesGraphs(t *testing.T) {
	a := MustOblivious("", graph.Left, graph.Left, graph.Right)
	if len(a.Graphs()) != 2 {
		t.Fatalf("got %d graphs, want duplicates dropped to 2", len(a.Graphs()))
	}
	if err := Validate(a, 3); err != nil {
		t.Error(err)
	}
}

func TestCommittedSuffixDeduplicatesCommit(t *testing.T) {
	a := MustCommittedSuffix("", nil,
		[]graph.Graph{graph.Left, graph.Left, graph.Right}, 1)
	if err := Validate(a, 4); err != nil {
		t.Error(err)
	}
	if got := len(a.Choices(a.Start())); got != 2 {
		t.Errorf("deadline choices = %d, want 2", got)
	}
}

func TestObliviousFromMask(t *testing.T) {
	// Mask with bits for Left and Right in the EnumerateAll order.
	li, ri := graph.IndexOf(graph.Left), graph.IndexOf(graph.Right)
	a := ObliviousFromMask(2, 1<<li|1<<ri)
	if len(a.Graphs()) != 2 {
		t.Fatalf("got %d graphs, want 2", len(a.Graphs()))
	}
	if got := CountPrefixes(a, 4); got != 16 {
		t.Errorf("CountPrefixes(4) = %d, want 16", got)
	}
}

func TestUnrestricted(t *testing.T) {
	a := Unrestricted(2)
	if len(a.Graphs()) != 4 {
		t.Errorf("Unrestricted(2) has %d graphs, want 4", len(a.Graphs()))
	}
	if err := Validate(a, 2); err != nil {
		t.Error(err)
	}
}

func TestEnumeratePrefixesEarlyStop(t *testing.T) {
	a := LossyLink3()
	count := 0
	EnumeratePrefixes(a, 3, func(Prefix) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Errorf("early stop after %d prefixes, want 5", count)
	}
}

func TestAdmits(t *testing.T) {
	a := LossyLink2()
	if _, ok := Admits(a, []graph.Graph{graph.Left, graph.Right}); !ok {
		t.Error("LossyLink2 must admit <-,->")
	}
	if _, ok := Admits(a, []graph.Graph{graph.Both}); ok {
		t.Error("LossyLink2 must not admit <->")
	}
}

func TestEventuallyStable(t *testing.T) {
	chaos := []graph.Graph{graph.Left, graph.Right}
	stable := []graph.Graph{graph.Right}
	a := MustEventuallyStable("", chaos, stable, 2)
	if a.Compact() {
		t.Error("eventually-stable adversary must be non-compact")
	}
	if err := Validate(a, 4); err != nil {
		t.Fatal(err)
	}
	// All 2^t words over {<-,->} are admissible prefixes.
	if got := CountPrefixes(a, 4); got != 16 {
		t.Errorf("CountPrefixes(4) = %d, want 16", got)
	}
	// Done exactly on the prefixes containing two consecutive ->.
	EnumeratePrefixes(a, 4, func(p Prefix) bool {
		wantDone := false
		streak := 0
		for _, g := range p.Graphs {
			if g.Equal(graph.Right) {
				streak++
			} else {
				streak = 0
			}
			if streak >= 2 {
				wantDone = true
			}
		}
		if p.Done != wantDone {
			t.Errorf("prefix %v: Done=%v, want %v", p.Graphs, p.Done, wantDone)
		}
		return true
	})
}

func TestEventuallyStableErrors(t *testing.T) {
	if _, err := NewEventuallyStable("", nil, nil, 1); err == nil {
		t.Error("no stable graphs: want error")
	}
	if _, err := NewEventuallyStable("", nil, []graph.Graph{graph.Right}, 0); err == nil {
		t.Error("window 0: want error")
	}
	// A graph with two islands has two root components: rejected.
	twoIslands := graph.MustParse(4, "1<->2, 3<->4")
	if _, err := NewEventuallyStable("", nil, []graph.Graph{twoIslands}, 1); err == nil {
		t.Error("stable graph without single root: want error")
	}
}

func TestDeadlineStableForcesWindow(t *testing.T) {
	inner := MustEventuallyStable("", []graph.Graph{graph.Left}, []graph.Graph{graph.Right}, 2)
	a := MustDeadlineStable(inner, 3)
	if !a.Compact() {
		t.Error("deadline-stable adversary must be compact")
	}
	if err := Validate(a, 5); err != nil {
		t.Fatal(err)
	}
	// Every admissible 3-prefix must contain ->,-> as a consecutive pair.
	EnumeratePrefixes(a, 3, func(p Prefix) bool {
		streak, best := 0, 0
		for _, g := range p.Graphs {
			if g.Equal(graph.Right) {
				streak++
			} else {
				streak = 0
			}
			if streak > best {
				best = streak
			}
		}
		if best < 2 {
			t.Errorf("deadline violated by admissible prefix %v", p.Graphs)
		}
		return true
	})
	// After the window, behaviour is free again: some 4-prefix ends with <-.
	foundFree := false
	EnumeratePrefixes(a, 4, func(p Prefix) bool {
		if p.Graphs[3].Equal(graph.Left) {
			foundFree = true
			return false
		}
		return true
	})
	if !foundFree {
		t.Error("no admissible 4-prefix ends with <- after window completion")
	}
}

func TestDeadlineStableErrors(t *testing.T) {
	inner := MustEventuallyStable("", nil, []graph.Graph{graph.Right}, 3)
	if _, err := NewDeadlineStable(inner, 2); err == nil {
		t.Error("deadline shorter than window: want error")
	}
}

func TestGraphWord(t *testing.T) {
	w := MustGraphWord([]graph.Graph{graph.Both}, []graph.Graph{graph.Left, graph.Right})
	wantSeq := []graph.Graph{graph.Both, graph.Left, graph.Right, graph.Left, graph.Right}
	for i, want := range wantSeq {
		if !w.At(i).Equal(want) {
			t.Errorf("At(%d) = %v, want %v", i, w.At(i), want)
		}
	}
	if w.PhaseCount() != 3 {
		t.Errorf("PhaseCount = %d, want 3", w.PhaseCount())
	}
	if w.Phase(0) != 0 || w.Phase(1) != 1 || w.Phase(3) != 1 || w.Phase(4) != 2 {
		t.Errorf("Phase normalization wrong: %d %d %d %d",
			w.Phase(0), w.Phase(1), w.Phase(3), w.Phase(4))
	}
	if got := len(w.Take(7)); got != 7 {
		t.Errorf("Take(7) has %d graphs", got)
	}
	if s := w.String(); !strings.Contains(s, ")^w") {
		t.Errorf("String() = %q", s)
	}
	if _, err := NewGraphWord(nil, nil); err == nil {
		t.Error("empty cycle: want error")
	}
}

func TestExclusion(t *testing.T) {
	base := LossyLink3()
	fair := Repeat(graph.Both) // <->^ω as a stand-in fair word
	a := MustExclusion(base, fair)
	if a.Compact() {
		t.Error("exclusion adversary must be non-compact")
	}
	if err := Validate(a, 4); err != nil {
		t.Fatal(err)
	}
	// Finite behaviour is unchanged.
	if got, want := CountPrefixes(a, 3), CountPrefixes(base, 3); got != want {
		t.Errorf("CountPrefixes = %d, want %d", got, want)
	}
	// Done exactly when the prefix deviates from <->^ω.
	EnumeratePrefixes(a, 3, func(p Prefix) bool {
		deviated := false
		for _, g := range p.Graphs {
			if !g.Equal(graph.Both) {
				deviated = true
			}
		}
		if p.Done != deviated {
			t.Errorf("prefix %v: Done=%v, want %v", p.Graphs, p.Done, deviated)
		}
		return true
	})
}

func TestExclusionErrors(t *testing.T) {
	if _, err := NewExclusion(LossyLink3(), nil); err == nil {
		t.Error("no words: want error")
	}
	w3 := Repeat(graph.New(3))
	if _, err := NewExclusion(LossyLink3(), []GraphWord{w3}); err == nil {
		t.Error("node count mismatch: want error")
	}
}

func TestLassoSet(t *testing.T) {
	w1 := Repeat(graph.Left)
	w2 := Repeat(graph.Right)
	w3 := MustGraphWord([]graph.Graph{graph.Left}, []graph.Graph{graph.Right})
	a := MustLassoSet("", w1, w2, w3)
	if !a.Compact() {
		t.Error("lasso set must be compact")
	}
	if err := Validate(a, 5); err != nil {
		t.Fatal(err)
	}
	// Admissible 3-prefixes: <-<-<-, ->->->, <-->->: exactly 3.
	var prefixes []string
	EnumeratePrefixes(a, 3, func(p Prefix) bool {
		arrows := make([]string, len(p.Graphs))
		for i, g := range p.Graphs {
			arrows[i] = graph.Arrow(g)
		}
		prefixes = append(prefixes, strings.Join(arrows, ""))
		return true
	})
	if len(prefixes) != 3 {
		t.Fatalf("admissible prefixes %v, want 3", prefixes)
	}
	want := map[string]bool{"<-<-<-": true, "->->->": true, "<-->->": true}
	for _, p := range prefixes {
		if !want[p] {
			t.Errorf("unexpected admissible prefix %q", p)
		}
	}
	if _, ok := Admits(a, []graph.Graph{graph.Right, graph.Left}); ok {
		t.Error("-><- must not be admissible")
	}
}

func TestLassoSetErrors(t *testing.T) {
	if _, err := NewLassoSet("", nil); err == nil {
		t.Error("empty lasso set: want error")
	}
}

func TestValidateCatchesBrokenAdversary(t *testing.T) {
	if err := Validate(brokenAdversary{}, 2); err == nil {
		t.Error("Validate must reject an adversary with empty choices")
	}
}

// brokenAdversary deliberately violates the non-empty-choices contract.
type brokenAdversary struct{}

func (brokenAdversary) N() int                            { return 2 }
func (brokenAdversary) Name() string                      { return "broken" }
func (brokenAdversary) Compact() bool                     { return true }
func (brokenAdversary) Start() State                      { return 0 }
func (brokenAdversary) Choices(State) []graph.Graph       { return nil }
func (brokenAdversary) Step(s State, _ graph.Graph) State { return s }
func (brokenAdversary) Done(State) bool                   { return true }

func TestCommittedSuffix(t *testing.T) {
	free := []graph.Graph{graph.Left, graph.Right, graph.Both}
	commit := []graph.Graph{graph.Left, graph.Right}
	a := MustCommittedSuffix("", free, commit, 2)
	if !a.Compact() {
		t.Error("committed-suffix adversary must be compact")
	}
	if err := Validate(a, 5); err != nil {
		t.Fatal(err)
	}
	// 3 free choices in round 1, 2 commitments in round 2, constant after:
	// 6 admissible 4-prefixes.
	if got := CountPrefixes(a, 4); got != 6 {
		t.Errorf("CountPrefixes(4) = %d, want 6", got)
	}
	// Every admissible 4-prefix is constant from round 2 on.
	EnumeratePrefixes(a, 4, func(p Prefix) bool {
		for i := 2; i < 4; i++ {
			if !p.Graphs[i].Equal(p.Graphs[1]) {
				t.Errorf("prefix %v not constant from the deadline", p.Graphs)
			}
		}
		return true
	})
	if _, ok := Admits(a, []graph.Graph{graph.Both, graph.Left, graph.Right}); ok {
		t.Error("post-deadline alternation must be inadmissible")
	}
}

func TestCommittedSuffixErrors(t *testing.T) {
	if _, err := NewCommittedSuffix("", nil, nil, 1); err == nil {
		t.Error("no commitment graphs: want error")
	}
	if _, err := NewCommittedSuffix("", nil, []graph.Graph{graph.Left}, 0); err == nil {
		t.Error("deadline 0: want error")
	}
}

func TestUnionOfLassoSets(t *testing.T) {
	left := MustLassoSet("", Repeat(graph.Left))
	right := MustLassoSet("", Repeat(graph.Right))
	u := MustUnion("", left, right)
	if !u.Compact() {
		t.Error("union of compact members must be compact")
	}
	if err := Validate(u, 5); err != nil {
		t.Fatal(err)
	}
	// The union is {<-^ω, ->^ω}: exactly 2 admissible prefixes per length.
	if got := CountPrefixes(u, 4); got != 2 {
		t.Errorf("CountPrefixes(4) = %d, want 2", got)
	}
	if _, ok := Admits(u, []graph.Graph{graph.Left, graph.Right}); ok {
		t.Error("<-,-> must be inadmissible in the union of constants")
	}
	if _, ok := Admits(u, []graph.Graph{graph.Right, graph.Right}); !ok {
		t.Error("->,-> must be admissible")
	}
}

func TestUnionMatchesCommittedDeadline1(t *testing.T) {
	// Union of the two one-word adversaries equals committed-suffix with
	// deadline 1 over the same commitment set.
	u := MustUnion("",
		MustLassoSet("", Repeat(graph.Left)),
		MustLassoSet("", Repeat(graph.Right)))
	c := MustCommittedSuffix("", nil, []graph.Graph{graph.Left, graph.Right}, 1)
	for rounds := 1; rounds <= 4; rounds++ {
		if gu, gc := CountPrefixes(u, rounds), CountPrefixes(c, rounds); gu != gc {
			t.Errorf("rounds %d: union has %d prefixes, committed has %d", rounds, gu, gc)
		}
	}
}

func TestUnionMixedNodeCounts(t *testing.T) {
	if _, err := NewUnion("", MustLassoSet("", Repeat(graph.Left)),
		MustLassoSet("", Repeat(graph.New(3)))); err == nil {
		t.Error("mixed node counts: want error")
	}
	if _, err := NewUnion(""); err == nil {
		t.Error("empty union: want error")
	}
}

func TestUnionWithOverlap(t *testing.T) {
	// lossy2 ∪ lossy3 = lossy3.
	u := MustUnion("", LossyLink2(), LossyLink3())
	if got, want := CountPrefixes(u, 3), CountPrefixes(LossyLink3(), 3); got != want {
		t.Errorf("CountPrefixes = %d, want %d", got, want)
	}
	if err := Validate(u, 3); err != nil {
		t.Fatal(err)
	}
}

func TestLossBounded(t *testing.T) {
	// n=2, f=1: {<->, <-, ->} — the classic lossy link.
	a := LossBounded(2, 1)
	if len(a.Graphs()) != 3 {
		t.Fatalf("LossBounded(2,1) has %d graphs, want 3", len(a.Graphs()))
	}
	// n=3 counts: C(6,0)+C(6,1)=7 for f=1; +C(6,2)=22 for f=2.
	if got := len(LossBounded(3, 1).Graphs()); got != 7 {
		t.Errorf("LossBounded(3,1) has %d graphs, want 7", got)
	}
	if got := len(LossBounded(3, 2).Graphs()); got != 22 {
		t.Errorf("LossBounded(3,2) has %d graphs, want 22", got)
	}
	// f=0 is the complete graph only.
	if got := len(LossBounded(3, 0).Graphs()); got != 1 {
		t.Errorf("LossBounded(3,0) has %d graphs, want 1", got)
	}
	// Every graph misses at most f edges.
	for _, g := range LossBounded(3, 2).Graphs() {
		if missing := 6 - g.EdgeCount(); missing > 2 {
			t.Errorf("graph %v misses %d edges", g, missing)
		}
	}
}

// TestEventuallyStableRootSemantics: stability is about the root-component
// vertex set, not graph identity — different stable graphs sharing a root
// extend one streak; a root change resets it ([23]'s vertex-stability).
func TestEventuallyStableRootSemantics(t *testing.T) {
	star1a := graph.Star(3, 0)               // root {1}
	star1b := graph.Star(3, 0).AddEdge(1, 2) // root {1}, extra edge
	star2 := graph.Star(3, 1)                // root {2}
	adv := MustEventuallyStable("", nil, []graph.Graph{star1a, star1b, star2}, 2)

	// Alternating same-root graphs discharges the window.
	s, ok := Admits(adv, []graph.Graph{star1a, star1b})
	if !ok {
		t.Fatal("word must be admissible")
	}
	if !adv.Done(s) {
		t.Error("same-root alternation must complete the window")
	}
	// A root change resets the streak.
	s2, _ := Admits(adv, []graph.Graph{star1a, star2})
	if adv.Done(s2) {
		t.Error("root change must reset the streak")
	}
	// ... and the new root then completes its own window.
	s3, _ := Admits(adv, []graph.Graph{star1a, star2, star2})
	if !adv.Done(s3) {
		t.Error("second window must complete after the reset")
	}
}
