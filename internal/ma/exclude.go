package ma

import (
	"fmt"
	"strconv"
	"strings"

	"topocon/internal/graph"
)

// Exclusion is the non-compact adversary "base minus a finite set of
// ultimately-periodic sequences": exactly the construction of Fevat-Godard
// [9] and Section 6.3, where removing a fair sequence (or a pair of unfair
// sequences) from an otherwise-unsolvable adversary makes consensus
// solvable.
//
// Finite behaviour is unrestricted (every base prefix remains a prefix of
// some admissible sequence, provided the base adversary offers at least
// two choices in every state); only the infinite excluded words are
// dropped. Liveness obligation: eventually deviate from every excluded
// word.
type Exclusion struct {
	base  Adversary
	words []GraphWord
	name  string
}

var _ Adversary = (*Exclusion)(nil)

// exclusionState pairs the base state with the match positions of every
// excluded word: position p ≥ 0 means "the prefix so far equals the word's
// first p rounds" (normalized into the word's phase space); -1 means the
// run has already deviated from that word. The encoding as a string keeps
// the state comparable.
type exclusionState struct {
	base  State
	match string
}

// NewExclusion builds base minus words. Each word must use the base node
// count, and the base must offer at least two choices in every state
// reachable up to a shallow validation depth — otherwise removing a
// sequence could strand finite prefixes without admissible extensions.
func NewExclusion(base Adversary, words []GraphWord) (*Exclusion, error) {
	if len(words) == 0 {
		return nil, fmt.Errorf("ma: exclusion needs at least one word")
	}
	for _, w := range words {
		if w.N() != base.N() {
			return nil, fmt.Errorf("ma: excluded word node count %d != base %d", w.N(), base.N())
		}
	}
	names := make([]string, len(words))
	for i, w := range words {
		names[i] = w.String()
	}
	return &Exclusion{
		base:  base,
		words: append([]GraphWord(nil), words...),
		name:  base.Name() + " \\ {" + strings.Join(names, ", ") + "}",
	}, nil
}

// MustExclusion is NewExclusion for statically-known inputs.
func MustExclusion(base Adversary, words ...GraphWord) *Exclusion {
	a, err := NewExclusion(base, words)
	if err != nil {
		panic(err)
	}
	return a
}

// Words returns the excluded words.
func (e *Exclusion) Words() []GraphWord { return e.words }

// Base returns the underlying adversary.
func (e *Exclusion) Base() Adversary { return e.base }

// N implements Adversary.
func (e *Exclusion) N() int { return e.base.N() }

// Name implements Adversary.
func (e *Exclusion) Name() string { return e.name }

// Compact implements Adversary: removing limit sequences breaks closure.
func (e *Exclusion) Compact() bool { return false }

// Start implements Adversary.
func (e *Exclusion) Start() State {
	match := make([]int, len(e.words))
	return exclusionState{base: e.base.Start(), match: encodeMatch(match)}
}

// Choices implements Adversary: finite behaviour is the base's.
func (e *Exclusion) Choices(s State) []graph.Graph {
	return e.base.Choices(s.(exclusionState).base)
}

// Step implements Adversary.
func (e *Exclusion) Step(s State, g graph.Graph) State {
	st := s.(exclusionState)
	match := decodeMatch(st.match)
	for i, pos := range match {
		if pos < 0 {
			continue
		}
		w := e.words[i]
		if w.At(pos).Equal(g) {
			match[i] = w.Phase(pos + 1)
		} else {
			match[i] = -1
		}
	}
	return exclusionState{base: e.base.Step(st.base, g), match: encodeMatch(match)}
}

// Done implements Adversary: obligations are discharged once the run has
// deviated from every excluded word (and the base's own obligations hold).
func (e *Exclusion) Done(s State) bool {
	st := s.(exclusionState)
	for _, pos := range decodeMatch(st.match) {
		if pos >= 0 {
			return false
		}
	}
	return e.base.Done(st.base)
}

func encodeMatch(match []int) string {
	var sb strings.Builder
	sb.Grow(len(match) * 3)
	for _, p := range match {
		sb.WriteString(strconv.Itoa(p))
		sb.WriteByte(',')
	}
	return sb.String()
}

func decodeMatch(s string) []int {
	parts := strings.Split(strings.TrimSuffix(s, ","), ",")
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			// Unreachable by construction: states are produced only by
			// encodeMatch.
			panic(fmt.Sprintf("ma: corrupt exclusion state %q", s))
		}
		out[i] = v
	}
	return out
}
