package ma

import (
	"fmt"
	"strings"
	"sync"

	"topocon/internal/graph"
)

// Union is the set union of message adversaries: a sequence is admissible
// iff it is admissible under at least one member. Unions are how richer
// adversaries are assembled from simple ones (e.g. "committed to <- or to
// ->" is the union of two one-word adversaries), and how the non-compact
// limits of deadline families are described (the union over all deadlines).
//
// Caveat for non-compact members: Done reports "some live member's
// obligations discharged". If a walk later leaves that member's language,
// Done may recede — violating the absorbing-Done contract. Unions of
// compact members never exhibit this (Done is true on all reachable
// states); for unions involving non-compact members, run Validate before
// relying on prefix Done times.
type Union struct {
	name    string
	n       int
	members []Adversary
	compact bool
	// cache interns member-state vectors: union states are the comparable
	// string keys, resolved back through this table. Guarded by mu — the
	// parallel frontier expansion in internal/topo steps adversaries from
	// several goroutines (see the Adversary contract).
	mu    sync.RWMutex
	cache map[string][]State
}

var _ Adversary = (*Union)(nil)

// unionState is the comparable union-automaton state: a rendered key of
// the per-member states (with dead branches marked).
type unionState struct {
	key string
}

// NewUnion builds the union adversary. All members must agree on the node
// count.
func NewUnion(name string, members ...Adversary) (*Union, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("ma: union needs at least one member")
	}
	n := members[0].N()
	compact := true
	for _, m := range members {
		if m.N() != n {
			return nil, fmt.Errorf("ma: union members have different node counts")
		}
		if !m.Compact() {
			compact = false
		}
	}
	if name == "" {
		names := make([]string, len(members))
		for i, m := range members {
			names[i] = m.Name()
		}
		name = strings.Join(names, " ∪ ")
	}
	return &Union{
		name:    name,
		n:       n,
		members: append([]Adversary(nil), members...),
		compact: compact,
		cache:   make(map[string][]State, 64),
	}, nil
}

// MustUnion is NewUnion for statically-known members.
func MustUnion(name string, members ...Adversary) *Union {
	u, err := NewUnion(name, members...)
	if err != nil {
		panic(err)
	}
	return u
}

// N implements Adversary.
func (u *Union) N() int { return u.n }

// Name implements Adversary.
func (u *Union) Name() string { return u.name }

// Compact implements Adversary: a finite union of closed sets is closed,
// so the union is compact iff every member is. (With a non-compact member
// the union may still happen to be closed, but reporting non-compact is
// the safe direction: it only makes the checker more conservative.)
func (u *Union) Compact() bool { return u.compact }

// Start implements Adversary.
func (u *Union) Start() State {
	values := make([]State, len(u.members))
	for i, m := range u.members {
		values[i] = m.Start()
	}
	return u.intern(values)
}

// Choices implements Adversary: the deduplicated union of live members'
// choices.
func (u *Union) Choices(s State) []graph.Graph {
	values := u.resolve(s)
	var out []graph.Graph
	seen := make(map[string]bool, 4)
	for i, m := range u.members {
		ms := values[i]
		if ms == nil {
			continue
		}
		for _, g := range m.Choices(ms) {
			if k := g.Key(); !seen[k] {
				seen[k] = true
				out = append(out, g)
			}
		}
	}
	return out
}

// Step implements Adversary: members that do not offer g die.
func (u *Union) Step(s State, g graph.Graph) State {
	values := u.resolve(s)
	next := make([]State, len(u.members))
	for i, m := range u.members {
		ms := values[i]
		if ms == nil {
			continue
		}
		for _, c := range m.Choices(ms) {
			if c.Equal(g) {
				next[i] = m.Step(ms, g)
				break
			}
		}
	}
	return u.intern(next)
}

// Done implements Adversary: obligations are discharged once some live
// member's are.
func (u *Union) Done(s State) bool {
	values := u.resolve(s)
	for i, m := range u.members {
		if ms := values[i]; ms != nil && m.Done(ms) {
			return true
		}
	}
	return false
}

func (u *Union) intern(values []State) State {
	var sb strings.Builder
	for i, v := range values {
		if v == nil {
			fmt.Fprintf(&sb, "%d=dead;", i)
		} else {
			fmt.Fprintf(&sb, "%d=%v;", i, v)
		}
	}
	key := sb.String()
	u.mu.Lock()
	if _, ok := u.cache[key]; !ok {
		u.cache[key] = values
	}
	u.mu.Unlock()
	return unionState{key: key}
}

func (u *Union) resolve(s State) []State {
	st, ok := s.(unionState)
	if !ok {
		panic(fmt.Sprintf("ma: foreign state %v passed to union adversary", s))
	}
	u.mu.RLock()
	values, ok := u.cache[st.key]
	u.mu.RUnlock()
	if !ok {
		panic(fmt.Sprintf("ma: unknown union state %q", st.key))
	}
	return values
}
