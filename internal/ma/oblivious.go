package ma

import (
	"fmt"
	"strings"

	"topocon/internal/graph"
)

// Oblivious is an oblivious message adversary (Section 6.2, [8, 21]): in
// every round it may pick any graph from a fixed set, independent of the
// past. Oblivious adversaries are compact.
type Oblivious struct {
	n      int
	name   string
	graphs []graph.Graph
}

var _ Adversary = (*Oblivious)(nil)

// NewOblivious returns the oblivious adversary over the given non-empty
// graph set. All graphs must have the same node count; duplicates are
// dropped (Choices must be duplicate-free).
//
//topocon:export
func NewOblivious(name string, graphs []graph.Graph) (*Oblivious, error) {
	if len(graphs) == 0 {
		return nil, fmt.Errorf("ma: oblivious adversary needs at least one graph")
	}
	n := graphs[0].N()
	for _, g := range graphs {
		if g.N() != n {
			return nil, fmt.Errorf("ma: mixed node counts %d and %d", n, g.N())
		}
	}
	cp := dedupGraphs(graphs)
	if name == "" {
		parts := make([]string, len(cp))
		for i, g := range cp {
			parts[i] = g.String()
		}
		name = "oblivious" + strings.Join(parts, "")
	}
	return &Oblivious{n: n, name: name, graphs: cp}, nil
}

// MustOblivious is NewOblivious for statically-known sets; it panics on
// error.
func MustOblivious(name string, graphs ...graph.Graph) *Oblivious {
	a, err := NewOblivious(name, graphs)
	if err != nil {
		panic(err)
	}
	return a
}

// Graphs returns the adversary's graph set (not to be mutated).
func (o *Oblivious) Graphs() []graph.Graph { return o.graphs }

// N implements Adversary.
func (o *Oblivious) N() int { return o.n }

// Name implements Adversary.
func (o *Oblivious) Name() string { return o.name }

// Compact implements Adversary; oblivious adversaries are limit-closed.
func (o *Oblivious) Compact() bool { return true }

// Start implements Adversary; oblivious adversaries are stateless.
func (o *Oblivious) Start() State { return struct{}{} }

// Choices implements Adversary.
func (o *Oblivious) Choices(State) []graph.Graph { return o.graphs }

// Step implements Adversary.
func (o *Oblivious) Step(s State, _ graph.Graph) State { return s }

// Done implements Adversary; there are no liveness obligations.
func (o *Oblivious) Done(State) bool { return true }

// LossyLink3 returns the classic n=2 lossy-link adversary over {←, ↔, →}
// from Santoro-Widmayer [21]; consensus is impossible under it.
func LossyLink3() *Oblivious {
	return MustOblivious("lossy-link{<-,<->,->}", graph.Left, graph.Both, graph.Right)
}

// LossyLink2 returns the reduced n=2 adversary over {←, →} from
// Coulouma-Godard-Peters [8]; consensus is solvable under it.
func LossyLink2() *Oblivious {
	return MustOblivious("lossy-link{<-,->}", graph.Left, graph.Right)
}

// Unrestricted returns the oblivious adversary that may play any graph on n
// nodes each round (2^(n(n-1)) graphs); use only for tiny n.
func Unrestricted(n int) *Oblivious {
	graphs := make([]graph.Graph, 0, graph.CountAll(n))
	graph.EnumerateAll(n, func(g graph.Graph) bool {
		graphs = append(graphs, g)
		return true
	})
	return MustOblivious(fmt.Sprintf("unrestricted(n=%d)", n), graphs...)
}

// ObliviousFromMask returns the oblivious adversary whose graph set is the
// subset of the EnumerateAll order selected by mask bits. It is the
// workhorse of exhaustive oblivious sweeps.
func ObliviousFromMask(n int, mask uint64) *Oblivious {
	graphs := make([]graph.Graph, 0, 4)
	for i := uint64(0); i < graph.CountAll(n); i++ {
		if mask&(1<<i) != 0 {
			graphs = append(graphs, graph.ByIndex(n, i))
		}
	}
	return MustOblivious(fmt.Sprintf("oblivious(n=%d,mask=%#x)", n, mask), graphs...)
}

// LossBounded returns the oblivious adversary of Santoro-Widmayer [21] and
// Schmid-Weiss-Keidar [22]: every round, at most f of the n(n-1) messages
// may be lost — i.e. the graph set contains every graph missing at most f
// off-diagonal edges. [21] proves consensus impossible for f ≥ n-1 (the
// adversary can mute one process forever); for f < n-1 no process can be
// silenced and consensus is solvable.
func LossBounded(n, f int) *Oblivious {
	graphs := make([]graph.Graph, 0, 64)
	complete := graph.Complete(n)
	offDiag := n * (n - 1)
	var build func(missing, from int, g graph.Graph)
	build = func(missing, from int, g graph.Graph) {
		graphs = append(graphs, g)
		if missing == f {
			return
		}
		for idx := from; idx < offDiag; idx++ {
			p := idx / (n - 1)
			q := idx % (n - 1)
			if q >= p {
				q++
			}
			build(missing+1, idx+1, g.RemoveEdge(p, q))
		}
	}
	build(0, 0, complete)
	return MustOblivious(fmt.Sprintf("loss-bounded(n=%d,f=%d)", n, f), graphs...)
}
