package ma

import (
	"fmt"

	"topocon/internal/graph"
)

// Intersect is the set intersection of two message adversaries: a sequence
// is admissible iff it is admissible under both operands. It is the product
// automaton over the graph-set intersection of the operands' choices, with
// dead branches pruned so that every reachable state keeps a non-empty
// choice set (the Adversary contract).
//
// Intersection is the conjunction combinator the constructor zoo lacked:
// it imposes two independent obligation structures at once ("lossy link AND
// eventually a stable window"), which no single seed family and no union
// (disjunction) or exclusion (finitely many words) can express.
type Intersect struct {
	name    string
	n       int
	a, b    Adversary
	compact bool
	prune   *pruner
}

var _ Adversary = (*Intersect)(nil)

// productState pairs the operand states. Operand states are comparable by
// the Adversary contract, so the pair is itself a valid map key — product
// states reached along different walks but with equal operand states
// deduplicate structurally.
type productState struct {
	a, b State
}

// NewIntersect builds the intersection a ∩ b. The operands must agree on
// the node count, and the intersection must denote a non-empty language:
// the product start state must admit an infinite walk that discharges both
// operands' obligations. Violations — including jointly unsatisfiable
// liveness obligations — are construction errors.
//
//topocon:export
func NewIntersect(name string, a, b Adversary) (*Intersect, error) {
	if a.N() != b.N() {
		return nil, fmt.Errorf("ma: intersect operands have node counts %d and %d", a.N(), b.N())
	}
	if name == "" {
		name = a.Name() + " ∩ " + b.Name()
	}
	i := &Intersect{
		name: name,
		n:    a.N(),
		a:    a,
		b:    b,
		// The intersection of two closed sequence sets is closed.
		compact: a.Compact() && b.Compact(),
	}
	i.prune = newPruner(i.rawChoices, i.rawStep)
	if err := i.prune.analyze(i.Start()); err != nil {
		return nil, err
	}
	if !i.prune.isLive(i.Start()) {
		return nil, fmt.Errorf("ma: intersection %q is empty (no common infinite sequence)", name)
	}
	ok, err := doneReachable(i)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("ma: intersection %q is empty (the operands' obligations are jointly unsatisfiable)", name)
	}
	return i, nil
}

// MustIntersect is NewIntersect for statically-known operands.
func MustIntersect(name string, a, b Adversary) *Intersect {
	i, err := NewIntersect(name, a, b)
	if err != nil {
		panic(err)
	}
	return i
}

// Operands returns the two intersected adversaries.
func (i *Intersect) Operands() (Adversary, Adversary) { return i.a, i.b }

// N implements Adversary.
func (i *Intersect) N() int { return i.n }

// Name implements Adversary.
func (i *Intersect) Name() string { return i.name }

// Compact implements Adversary: the intersection of closed sets is closed,
// so the product is compact when both operands are. (With a non-compact
// operand the intersection may still happen to be closed; reporting
// non-compact is the conservative direction, as for Union.)
func (i *Intersect) Compact() bool { return i.compact }

// Start implements Adversary.
func (i *Intersect) Start() State {
	return productState{a: i.a.Start(), b: i.b.Start()}
}

// rawChoices is the unpruned graph-set intersection, in a's choice order.
func (i *Intersect) rawChoices(s State) []graph.Graph {
	st := s.(productState)
	bKeys := make(map[string]bool, 4)
	for _, g := range i.b.Choices(st.b) {
		bKeys[g.Key()] = true
	}
	var out []graph.Graph
	for _, g := range i.a.Choices(st.a) {
		if bKeys[g.Key()] {
			out = append(out, g)
		}
	}
	return out
}

func (i *Intersect) rawStep(s State, g graph.Graph) State {
	st := s.(productState)
	return productState{a: i.a.Step(st.a, g), b: i.b.Step(st.b, g)}
}

// Choices implements Adversary: the graph-set intersection of the operands'
// choices, restricted to graphs whose successor product state still admits
// an infinite walk. Never empty on reachable states by construction; the
// pruner memoizes per product state, concurrency-safe like Union's cache.
func (i *Intersect) Choices(s State) []graph.Graph { return i.prune.pruned(s) }

// Step implements Adversary.
func (i *Intersect) Step(s State, g graph.Graph) State { return i.rawStep(s, g) }

// Done implements Adversary: both operands' obligations must be discharged.
// Each operand's Done is absorbing, so the conjunction is absorbing too.
func (i *Intersect) Done(s State) bool {
	st := s.(productState)
	return i.a.Done(st.a) && i.b.Done(st.b)
}
