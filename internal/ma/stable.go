package ma

import (
	"fmt"

	"topocon/internal/graph"
)

// EventuallyStable is the vertex-stable source component (VSSC) adversary
// of Section 6.2/6.3 and [23]: it may play arbitrary "chaos" graphs, but
// must eventually play graphs from its stable set whose (single) root
// component stays the *same vertex set* for `window` consecutive rounds —
// a vertex-stable root component; the graphs within the window may vary as
// long as the root does not. It is non-compact: the limit sequences in
// which stability never occurs are not admissible.
type EventuallyStable struct {
	n       int
	name    string
	choices []graph.Graph // chaos ∪ stable, deduplicated
	stable  []graph.Graph
	window  int
	// rootOf maps a stable graph's key to its root-member bitmask; graphs
	// absent from the map do not count toward stability windows.
	rootOf map[string]uint64
}

var _ Adversary = (*EventuallyStable)(nil)

// stableState tracks the current streak of stable graphs sharing one root
// component. streakRoot is the common root bitmask (0 = no streak),
// streakLen counts consecutive occurrences. done is absorbing.
type stableState struct {
	streakRoot uint64
	streakLen  int
	done       bool
}

// NewEventuallyStable builds the adversary. Every stable graph must have a
// single root component (otherwise its streak could never enable
// broadcast, making the stability promise useless); window must be ≥ 1.
func NewEventuallyStable(name string, chaos, stable []graph.Graph, window int) (*EventuallyStable, error) {
	if len(stable) == 0 {
		return nil, fmt.Errorf("ma: eventually-stable adversary needs stable graphs")
	}
	if window < 1 {
		return nil, fmt.Errorf("ma: window %d < 1", window)
	}
	n := stable[0].N()
	for _, g := range stable {
		if g.N() != n {
			return nil, fmt.Errorf("ma: mixed node counts in stable set")
		}
		if _, ok := g.SingleRoot(); !ok {
			return nil, fmt.Errorf("ma: stable graph %v has no single root component", g)
		}
	}
	for _, g := range chaos {
		if g.N() != n {
			return nil, fmt.Errorf("ma: mixed node counts in chaos set")
		}
	}
	e := &EventuallyStable{
		n:      n,
		name:   name,
		window: window,
		stable: append([]graph.Graph(nil), stable...),
		rootOf: make(map[string]uint64, len(stable)),
	}
	if e.name == "" {
		e.name = fmt.Sprintf("eventually-stable(window=%d)", window)
	}
	seen := make(map[string]bool, len(chaos)+len(stable))
	add := func(g graph.Graph) {
		if k := g.Key(); !seen[k] {
			seen[k] = true
			e.choices = append(e.choices, g)
		}
	}
	for _, g := range chaos {
		add(g)
	}
	for _, g := range stable {
		add(g)
		root, _ := g.SingleRoot() // validated above
		e.rootOf[g.Key()] = root.Members
	}
	return e, nil
}

// MustEventuallyStable is NewEventuallyStable for statically-known inputs.
func MustEventuallyStable(name string, chaos, stable []graph.Graph, window int) *EventuallyStable {
	a, err := NewEventuallyStable(name, chaos, stable, window)
	if err != nil {
		panic(err)
	}
	return a
}

// Window returns the required stability window length.
func (e *EventuallyStable) Window() int { return e.window }

// N implements Adversary.
func (e *EventuallyStable) N() int { return e.n }

// Name implements Adversary.
func (e *EventuallyStable) Name() string { return e.name }

// Compact implements Adversary; the adversary is not limit-closed.
func (e *EventuallyStable) Compact() bool { return false }

// Start implements Adversary.
func (e *EventuallyStable) Start() State {
	return stableState{}
}

// Choices implements Adversary: any graph, any time.
func (e *EventuallyStable) Choices(State) []graph.Graph { return e.choices }

// Step implements Adversary: a streak continues while consecutive graphs
// are stable and share the same root-component vertex set.
func (e *EventuallyStable) Step(s State, g graph.Graph) State {
	st := s.(stableState)
	if st.done {
		return st
	}
	root, isStable := e.rootOf[g.Key()]
	if !isStable {
		return stableState{}
	}
	if root == st.streakRoot {
		st.streakLen++
	} else {
		st = stableState{streakRoot: root, streakLen: 1}
	}
	if st.streakLen >= e.window {
		return stableState{done: true}
	}
	return st
}

// Done implements Adversary.
func (e *EventuallyStable) Done(s State) bool { return s.(stableState).done }

// DeadlineStable is the compactification of EventuallyStable: the stability
// window must be completed no later than round `deadline`. Every member of
// the deadline-R family is a compact adversary; the union over all R is the
// non-compact EventuallyStable adversary. The family exhibits the paper's
// non-compactness phenomenon: decision times grow without bound as R grows
// (Section 6.3).
type DeadlineStable struct {
	inner    *EventuallyStable
	deadline int
	name     string
}

var _ Adversary = (*DeadlineStable)(nil)

// deadlineState wraps the inner state with the current round number (only
// tracked until the obligation is discharged, to keep the state space
// small).
type deadlineState struct {
	inner stableState
	round int
}

// NewDeadlineStable wraps an EventuallyStable adversary with a deadline.
// The deadline must leave room for at least one full window.
func NewDeadlineStable(inner *EventuallyStable, deadline int) (*DeadlineStable, error) {
	if deadline < inner.window {
		return nil, fmt.Errorf("ma: deadline %d shorter than window %d", deadline, inner.window)
	}
	return &DeadlineStable{
		inner:    inner,
		deadline: deadline,
		name:     fmt.Sprintf("%s[deadline=%d]", inner.name, deadline),
	}, nil
}

// MustDeadlineStable is NewDeadlineStable for statically-known inputs.
func MustDeadlineStable(inner *EventuallyStable, deadline int) *DeadlineStable {
	a, err := NewDeadlineStable(inner, deadline)
	if err != nil {
		panic(err)
	}
	return a
}

// Deadline returns the latest round by which the window must complete.
func (d *DeadlineStable) Deadline() int { return d.deadline }

// N implements Adversary.
func (d *DeadlineStable) N() int { return d.inner.n }

// Name implements Adversary.
func (d *DeadlineStable) Name() string { return d.name }

// Compact implements Adversary: with the window completion forced by the
// deadline, admissibility is a safety property.
func (d *DeadlineStable) Compact() bool { return true }

// Start implements Adversary.
func (d *DeadlineStable) Start() State {
	return deadlineState{inner: stableState{}}
}

// Choices implements Adversary: all graphs whose play keeps the deadline
// satisfiable.
func (d *DeadlineStable) Choices(s State) []graph.Graph {
	st := s.(deadlineState)
	if st.inner.done {
		return d.inner.choices
	}
	remaining := d.deadline - st.round // rounds left including this one
	allowed := make([]graph.Graph, 0, len(d.inner.choices))
	for _, g := range d.inner.choices {
		next := d.inner.Step(st.inner, g).(stableState)
		needed := d.inner.window - next.streakLen
		if next.done {
			needed = 0
		}
		if needed <= remaining-1 {
			allowed = append(allowed, g)
		}
	}
	return allowed
}

// Step implements Adversary.
func (d *DeadlineStable) Step(s State, g graph.Graph) State {
	st := s.(deadlineState)
	if st.inner.done {
		return st
	}
	next := d.inner.Step(st.inner, g).(stableState)
	if next.done {
		return deadlineState{inner: next}
	}
	return deadlineState{inner: next, round: st.round + 1}
}

// Done implements Adversary. Compact adversaries report Done everywhere:
// the deadline makes the obligation a safety constraint enforced by
// Choices, so every admissible infinite walk discharges it.
func (d *DeadlineStable) Done(State) bool { return true }
