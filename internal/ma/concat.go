package ma

import (
	"fmt"

	"topocon/internal/graph"
)

// Concat is the round-sequencing combinator: play the first adversary for
// exactly k rounds, then switch to the second forever. Its admissible
// sequences are u·w where u is any admissible k-round prefix of the first
// operand and w is admissible under the second.
//
// Concat generalizes the committed-suffix family: where CommittedSuffix
// forces a *constant* suffix, Concat splices in the full language of an
// arbitrary adversary — "k rounds of chaos, then the reduced lossy link"
// is a Concat but no pre-algebra constructor.
type Concat struct {
	name string
	n    int
	a    Adversary
	k    int
	b    Adversary
}

var _ Adversary = (*Concat)(nil)

// concatState is the sequencing automaton state: during the first k rounds
// it carries the first operand's state and the number of rounds played;
// afterwards it carries the second operand's state.
type concatState struct {
	inA   bool
	round int // rounds played so far; meaningful only while inA
	s     State
}

// NewConcat builds the sequencing a·(k rounds)·b. The operands must agree
// on the node count and k must be non-negative; Concat(a, 0, b) is
// prefix-equivalent to b.
func NewConcat(name string, a Adversary, k int, b Adversary) (*Concat, error) {
	if k < 0 {
		return nil, fmt.Errorf("ma: concat round count %d < 0", k)
	}
	if a.N() != b.N() {
		return nil, fmt.Errorf("ma: concat operands have node counts %d and %d", a.N(), b.N())
	}
	if name == "" {
		name = fmt.Sprintf("%s ·%d· %s", a.Name(), k, b.Name())
	}
	return &Concat{name: name, n: a.N(), a: a, k: k, b: b}, nil
}

// MustConcat is NewConcat for statically-known operands.
func MustConcat(name string, a Adversary, k int, b Adversary) *Concat {
	c, err := NewConcat(name, a, k, b)
	if err != nil {
		panic(err)
	}
	return c
}

// Rounds returns the number of rounds played by the first operand.
func (c *Concat) Rounds() int { return c.k }

// Operands returns the two sequenced adversaries.
func (c *Concat) Operands() (Adversary, Adversary) { return c.a, c.b }

// N implements Adversary.
func (c *Concat) N() int { return c.n }

// Name implements Adversary.
func (c *Concat) Name() string { return c.name }

// Compact implements Adversary: the language is a finite union of
// u-cylinders over the second operand's language, which is closed iff that
// language is. The first operand contributes only finite prefixes, so its
// compactness is irrelevant.
func (c *Concat) Compact() bool { return c.b.Compact() }

// Start implements Adversary.
func (c *Concat) Start() State {
	if c.k == 0 {
		return concatState{inA: false, s: c.b.Start()}
	}
	return concatState{inA: true, round: 0, s: c.a.Start()}
}

// Choices implements Adversary.
func (c *Concat) Choices(s State) []graph.Graph {
	st := s.(concatState)
	if st.inA {
		return c.a.Choices(st.s)
	}
	return c.b.Choices(st.s)
}

// Step implements Adversary: the k-th step of the first phase hands over to
// the second operand's start state.
func (c *Concat) Step(s State, g graph.Graph) State {
	st := s.(concatState)
	if !st.inA {
		return concatState{inA: false, s: c.b.Step(st.s, g)}
	}
	if st.round+1 >= c.k {
		return concatState{inA: false, s: c.b.Start()}
	}
	return concatState{inA: true, round: st.round + 1, s: c.a.Step(st.s, g)}
}

// Done implements Adversary. The first operand plays only finitely many
// rounds, so its liveness obligations never bind; the concatenation's
// obligations are the second operand's. During the first phase they are
// discharged exactly when the second operand is compact (its admissibility
// is then pure safety); afterwards Done follows the second operand, whose
// Done is absorbing.
func (c *Concat) Done(s State) bool {
	st := s.(concatState)
	if st.inA {
		return c.b.Compact()
	}
	return c.b.Done(st.s)
}
