package ma

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
)

// Fingerprint returns a canonical hash of the adversary's reachable
// automaton explored to the given depth: a hex-encoded SHA-256 over the
// node count and, per reachable state in canonical discovery order, its
// Done flag and its outgoing transitions in canonical graph order
// (graph.Key) with successor states numbered by first discovery.
//
// The hash depends only on the behavioural structure — canonical graph
// forms plus transition shape — not on state representations, Name, or
// construction path: behaviourally isomorphic automata fingerprint
// identically, and the same adversary fingerprints identically across
// processes and runs. Sessions and batch/caching layers can therefore key
// results by (Fingerprint, depth) instead of by unstable display names.
//
// States at exactly the exploration depth contribute their Done flag but
// not their transitions, so Fingerprint(a, d) distinguishes behaviours
// that differ within d rounds and may merge ones that differ only later.
//
// The expression tree is normalized first (see Normalize): algebraic
// identity spellings like Intersect(a, Unrestricted) hash exactly like a,
// so they share one sweep-cache entry instead of re-solving.
//
//topocon:export
func Fingerprint(a Adversary, depth int) string {
	a = Normalize(a)
	h := sha256.New()
	fmt.Fprintf(h, "n=%d;compact=%v;\n", a.N(), a.Compact())

	ids := map[State]int{a.Start(): 0}
	type item struct {
		s State
		d int
	}
	queue := []item{{s: a.Start(), d: 0}}
	for qi := 0; qi < len(queue); qi++ {
		it := queue[qi]
		fmt.Fprintf(h, "%d done=%v", qi, a.Done(it.s))
		if it.d < depth {
			choices := a.Choices(it.s)
			// Canonical transition order: sort by graph key so fingerprints
			// do not depend on an implementation's Choices ordering.
			type edge struct {
				key  string
				next State
			}
			edges := make([]edge, len(choices))
			for i, g := range choices {
				edges[i] = edge{key: g.Key(), next: a.Step(it.s, g)}
			}
			sort.Slice(edges, func(i, j int) bool { return edges[i].key < edges[j].key })
			for _, e := range edges {
				id, seen := ids[e.next]
				if !seen {
					id = len(ids)
					ids[e.next] = id
					queue = append(queue, item{s: e.next, d: it.d + 1})
				}
				fmt.Fprintf(h, " %s->%d", e.key, id)
			}
		} else {
			h.Write([]byte(" ..."))
		}
		h.Write([]byte("\n"))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// FingerprintShort returns the first 16 hex digits of Fingerprint, for
// display contexts.
func FingerprintShort(a Adversary, depth int) string {
	return Fingerprint(a, depth)[:16]
}
