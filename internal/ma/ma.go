// Package ma models message adversaries (Section 2 of the paper): sets of
// infinite communication-graph sequences.
//
// An adversary is described operationally as a deterministic automaton over
// round graphs. A state captures everything about the past that constrains
// the future; Choices lists the graphs playable next, and Done flags states
// in which all liveness obligations are discharged.
//
// Admissible infinite sequences are exactly the automaton walks that reach
// a Done state (Done is required to be absorbing). Two regimes arise:
//
//   - Compact (limit-closed) adversaries have Done ≡ true: admissibility is
//     a pure safety property, so the set of sequences is closed — this is
//     the Alpern-Schneider safety/closed-set correspondence the paper
//     builds on.
//   - Non-compact adversaries have reachable not-Done states from which
//     every finite prefix is extendable; the limits that stay not-Done
//     forever are precisely the excluded "fair/unfair" sequences of
//     Definition 5.16.
package ma

import (
	"fmt"

	"topocon/internal/graph"
)

// State is an opaque adversary-automaton state. Implementations must use
// comparable values (states are used as map keys by enumeration and by the
// checkers).
type State any

// Adversary is a message adversary presented as a deterministic graph
// automaton.
//
// Choices, Step and Done must be safe for concurrent calls: the parallel
// frontier expansion in internal/topo invokes them from a worker pool.
// Pure-value state machines satisfy this for free; implementations that
// memoize (e.g. Union) must synchronize their caches.
type Adversary interface {
	// N returns the number of processes.
	N() int
	// Name returns a short human-readable description.
	Name() string
	// Compact reports whether the adversary is limit-closed. For compact
	// adversaries Done must be true on every reachable state.
	Compact() bool
	// Start returns the initial state.
	Start() State
	// Choices returns the graphs playable from s, never empty for any
	// reachable state. The returned slice must not be mutated.
	Choices(s State) []graph.Graph
	// Step returns the successor state after playing g in state s. The
	// caller must pass a graph (equal to one) returned by Choices(s).
	Step(s State, g graph.Graph) State
	// Done reports whether all liveness obligations are discharged in s.
	// Done must be absorbing: once true it stays true along every walk.
	Done(s State) bool
}

// Prefix is an admissible finite prefix paired with its automaton state.
type Prefix struct {
	Graphs []graph.Graph
	State  State
	// Done records whether liveness obligations were discharged.
	Done bool
	// DoneAt is the earliest round (0 = initially) at which the
	// obligations were discharged, or -1 if they are still pending.
	DoneAt int
}

// EnumeratePrefixes calls yield with every admissible prefix of exactly the
// given number of rounds, in deterministic order, until yield returns
// false. The Graphs slice passed to yield is reused between calls; yield
// must copy it if it retains it.
func EnumeratePrefixes(a Adversary, rounds int, yield func(Prefix) bool) {
	graphs := make([]graph.Graph, 0, rounds)
	var walk func(s State, doneAt int) bool
	walk = func(s State, doneAt int) bool {
		if doneAt < 0 && a.Done(s) {
			doneAt = len(graphs)
		}
		if len(graphs) == rounds {
			return yield(Prefix{Graphs: graphs, State: s, Done: doneAt >= 0, DoneAt: doneAt})
		}
		for _, g := range a.Choices(s) {
			graphs = append(graphs, g)
			ok := walk(a.Step(s, g), doneAt)
			graphs = graphs[:len(graphs)-1]
			if !ok {
				return false
			}
		}
		return true
	}
	walk(a.Start(), -1)
}

// CountPrefixes returns the number of admissible prefixes with the given
// number of rounds, memoized over automaton states.
func CountPrefixes(a Adversary, rounds int) int {
	type key struct {
		s     State
		depth int
	}
	memo := make(map[key]int)
	var count func(s State, depth int) int
	count = func(s State, depth int) int {
		if depth == 0 {
			return 1
		}
		k := key{s: s, depth: depth}
		if c, ok := memo[k]; ok {
			return c
		}
		total := 0
		for _, g := range a.Choices(s) {
			total += count(a.Step(s, g), depth-1)
		}
		memo[k] = total
		return total
	}
	return count(a.Start(), rounds)
}

// Admits reports whether the given graph word is playable from the start
// state, returning the final state. It returns false as soon as a graph is
// not among the adversary's choices.
func Admits(a Adversary, word []graph.Graph) (State, bool) {
	s := a.Start()
	for _, g := range word {
		allowed := false
		for _, c := range a.Choices(s) {
			if c.Equal(g) {
				allowed = true
				break
			}
		}
		if !allowed {
			return nil, false
		}
		s = a.Step(s, g)
	}
	return s, true
}

// dedupGraphs returns the graphs with duplicates (by canonical key)
// dropped, preserving first-occurrence order. Constructors use it to keep
// Choices duplicate-free, as Validate requires.
func dedupGraphs(graphs []graph.Graph) []graph.Graph {
	out := make([]graph.Graph, 0, len(graphs))
	seen := make(map[string]bool, len(graphs))
	for _, g := range graphs {
		if k := g.Key(); !seen[k] {
			seen[k] = true
			out = append(out, g)
		}
	}
	return out
}

// Validate performs structural sanity checks on an adversary up to the
// given exploration depth: choices must be non-empty and duplicate-free,
// graphs must have the right node count, Done must be absorbing, and
// compact adversaries must be Done everywhere. It returns an error
// describing the first violation.
//
//topocon:export
func Validate(a Adversary, depth int) error {
	type item struct {
		s    State
		d    int
		done bool
	}
	seen := make(map[State]bool)
	queue := []item{{s: a.Start(), d: 0, done: a.Done(a.Start())}}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		if seen[it.s] {
			continue
		}
		seen[it.s] = true
		choices := a.Choices(it.s)
		if len(choices) == 0 {
			return fmt.Errorf("ma: adversary %q has no choices in state %v", a.Name(), it.s)
		}
		offered := make(map[string]bool, len(choices))
		for _, g := range choices {
			if g.N() != a.N() {
				return fmt.Errorf("ma: adversary %q offers %d-node graph but N=%d", a.Name(), g.N(), a.N())
			}
			k := g.Key()
			if offered[k] {
				return fmt.Errorf("ma: adversary %q offers duplicate graph %v in state %v", a.Name(), g, it.s)
			}
			offered[k] = true
		}
		if a.Compact() && !a.Done(it.s) {
			return fmt.Errorf("ma: compact adversary %q has non-Done state %v", a.Name(), it.s)
		}
		if it.d >= depth {
			continue
		}
		for _, g := range choices {
			next := a.Step(it.s, g)
			if it.done && !a.Done(next) {
				return fmt.Errorf("ma: adversary %q: Done is not absorbing at state %v --%v--> %v",
					a.Name(), it.s, g, next)
			}
			queue = append(queue, item{s: next, d: it.d + 1, done: a.Done(next)})
		}
	}
	return nil
}
