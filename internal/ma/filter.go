package ma

import (
	"fmt"
	"math/bits"

	"topocon/internal/graph"
)

// GraphPred is a named per-round graph predicate, usable with Filter and
// addressable from declarative scenario specs. The library below covers the
// structural predicates of the dynamic-network literature; arbitrary Go
// predicates can be wrapped with NewGraphPred.
type GraphPred struct {
	// Name is the canonical predicate name (used by scenario specs and in
	// derived adversary names).
	Name string
	// Holds reports whether the graph satisfies the predicate.
	Holds func(graph.Graph) bool
}

// NewGraphPred wraps an arbitrary predicate function under a name.
func NewGraphPred(name string, holds func(graph.Graph) bool) GraphPred {
	return GraphPred{Name: name, Holds: holds}
}

// PredStronglyConnected holds on graphs with a single strongly connected
// component.
func PredStronglyConnected() GraphPred {
	return GraphPred{Name: "strongly-connected", Holds: graph.Graph.IsStronglyConnected}
}

// PredMinOutDegree holds on graphs in which every process reaches at least
// d other processes in one round (out-degree excluding the self-loop).
func PredMinOutDegree(d int) GraphPred {
	return GraphPred{
		Name: fmt.Sprintf("min-out-degree>=%d", d),
		Holds: func(g graph.Graph) bool {
			for p := 0; p < g.N(); p++ {
				if bits.OnesCount64(g.Out(p)&^(1<<uint(p))) < d {
					return false
				}
			}
			return true
		},
	}
}

// PredRooted holds on graphs whose condensation has a single source
// component — equivalently, some process reaches every process by a
// directed path (the "rooted" graphs enabling broadcast).
func PredRooted() GraphPred {
	return GraphPred{
		Name: "rooted",
		Holds: func(g graph.Graph) bool {
			_, ok := g.SingleRoot()
			return ok
		},
	}
}

// PredStar holds on graphs in which some process is heard by every process
// directly (a one-round broadcast star).
func PredStar() GraphPred {
	return GraphPred{
		Name: "star",
		Holds: func(g graph.Graph) bool {
			full := graph.AllNodes(g.N())
			for p := 0; p < g.N(); p++ {
				if g.Out(p) == full {
					return true
				}
			}
			return false
		},
	}
}

// PredNonsplit holds on nonsplit graphs: every pair of processes has a
// common in-neighbour (Coulouma-Godard-Peters).
func PredNonsplit() GraphPred {
	return GraphPred{
		Name: "nonsplit",
		Holds: func(g graph.Graph) bool {
			for p := 0; p < g.N(); p++ {
				for q := p + 1; q < g.N(); q++ {
					if g.In(p)&g.In(q) == 0 {
						return false
					}
				}
			}
			return true
		},
	}
}

// Filter restricts a base adversary to the round graphs satisfying a
// predicate: a sequence is admissible iff it is admissible under the base
// and every graph satisfies the predicate. Dead branches (prefixes the base
// cannot continue inside the predicate) are pruned so that every reachable
// state keeps a non-empty choice set.
type Filter struct {
	name  string
	base  Adversary
	pred  GraphPred
	prune *pruner
}

var _ Adversary = (*Filter)(nil)

// NewFilter builds the restriction of base to pred. It errors when the
// restricted language is empty: no infinite walk through satisfying graphs
// exists from the start state, or none of those walks discharges the
// base's liveness obligations.
func NewFilter(base Adversary, name string, pred GraphPred) (*Filter, error) {
	if pred.Holds == nil {
		return nil, fmt.Errorf("ma: filter predicate %q has no function", pred.Name)
	}
	if name == "" {
		name = fmt.Sprintf("%s | %s", base.Name(), pred.Name)
	}
	f := &Filter{
		name: name,
		base: base,
		pred: pred,
	}
	f.prune = newPruner(f.rawChoices, base.Step)
	if err := f.prune.analyze(base.Start()); err != nil {
		return nil, err
	}
	if !f.prune.isLive(base.Start()) {
		return nil, fmt.Errorf("ma: filter %q is empty (no infinite sequence satisfies the predicate)", name)
	}
	ok, err := doneReachable(f)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("ma: filter %q is empty (the restriction makes the base's obligations unsatisfiable)", name)
	}
	return f, nil
}

// MustFilter is NewFilter for statically-known inputs.
func MustFilter(base Adversary, name string, pred GraphPred) *Filter {
	f, err := NewFilter(base, name, pred)
	if err != nil {
		panic(err)
	}
	return f
}

// Base returns the filtered adversary.
func (f *Filter) Base() Adversary { return f.base }

// Pred returns the filtering predicate.
func (f *Filter) Pred() GraphPred { return f.pred }

// N implements Adversary.
func (f *Filter) N() int { return f.base.N() }

// Name implements Adversary.
func (f *Filter) Name() string { return f.name }

// Compact implements Adversary: a per-round predicate is a safety
// restriction, so filtering preserves limit-closure.
func (f *Filter) Compact() bool { return f.base.Compact() }

// Start implements Adversary; filter states are the base's states.
func (f *Filter) Start() State { return f.base.Start() }

// rawChoices is the base's choice set restricted to satisfying graphs, in
// the base's order.
func (f *Filter) rawChoices(s State) []graph.Graph {
	raw := f.base.Choices(s)
	out := make([]graph.Graph, 0, len(raw))
	for _, g := range raw {
		if f.pred.Holds(g) {
			out = append(out, g)
		}
	}
	return out
}

// Choices implements Adversary: satisfying graphs whose successor still
// admits an infinite walk inside the predicate. The pruner memoizes per
// state, concurrency-safe like Union's cache.
func (f *Filter) Choices(s State) []graph.Graph { return f.prune.pruned(s) }

// Step implements Adversary.
func (f *Filter) Step(s State, g graph.Graph) State { return f.base.Step(s, g) }

// Done implements Adversary: the restriction adds no liveness obligations.
func (f *Filter) Done(s State) bool { return f.base.Done(s) }
