package ma

import "topocon/internal/graph"

// Normalize applies cheap algebraic identity rewrites to an adversary
// expression tree, so behaviourally-equal spellings hash — and therefore
// cache — identically (Fingerprint normalizes before hashing):
//
//   - Intersect(a, Unrestricted) → a (either operand side)
//   - Concat(a, 0, b) → b (a zero-round prefix constrains nothing)
//
// Rewrites apply recursively; combinators whose operands rewrite are
// rebuilt. Adversaries the rewriter does not recognize pass through
// unchanged, so Normalize is total and never alters behaviour.
//
//topocon:export
func Normalize(a Adversary) Adversary {
	switch x := a.(type) {
	case *Intersect:
		na, nb := Normalize(x.a), Normalize(x.b)
		if IsUnrestricted(nb) {
			return na
		}
		if IsUnrestricted(na) {
			return nb
		}
		if na == x.a && nb == x.b {
			return x
		}
		if r, err := NewIntersect(x.name, na, nb); err == nil {
			return r
		}
		return x
	case *Concat:
		if x.k == 0 {
			return Normalize(x.b)
		}
		na, nb := Normalize(x.a), Normalize(x.b)
		if na == x.a && nb == x.b {
			return x
		}
		if r, err := NewConcat(x.name, na, x.k, nb); err == nil {
			return r
		}
		return x
	}
	return a
}

// IsUnrestricted reports whether a is an oblivious adversary over every
// graph on its node set — the unit of Intersect.
func IsUnrestricted(a Adversary) bool {
	o, ok := a.(*Oblivious)
	return ok && uint64(len(o.graphs)) == graph.CountAll(o.n)
}
