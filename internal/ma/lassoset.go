package ma

import (
	"fmt"
	"strings"

	"topocon/internal/graph"
)

// LassoSet is the explicit finite message adversary {w_1, ..., w_k}: its
// admissible sequences are exactly the given ultimately-periodic words.
// Finite sets of sequences are closed, hence compact. They are the setting
// in which Corollary 5.6 is *exactly* decidable (package lasso), and the
// natural encoding of the paper's n=2 examples.
type LassoSet struct {
	n     int
	name  string
	words []GraphWord
}

var _ Adversary = (*LassoSet)(nil)

// lassoSetState holds the normalized match positions of every word (-1 =
// deviated), encoded as a comparable string; at least one position is
// always ≥ 0.
type lassoSetState struct {
	match string
}

// NewLassoSet builds the adversary from a non-empty word set.
func NewLassoSet(name string, words []GraphWord) (*LassoSet, error) {
	if len(words) == 0 {
		return nil, fmt.Errorf("ma: lasso set needs at least one word")
	}
	n := words[0].N()
	for _, w := range words {
		if w.N() != n {
			return nil, fmt.Errorf("ma: mixed node counts in lasso set")
		}
	}
	if name == "" {
		names := make([]string, len(words))
		for i, w := range words {
			names[i] = w.String()
		}
		name = "{" + strings.Join(names, ", ") + "}"
	}
	return &LassoSet{n: n, name: name, words: append([]GraphWord(nil), words...)}, nil
}

// MustLassoSet is NewLassoSet for statically-known inputs.
func MustLassoSet(name string, words ...GraphWord) *LassoSet {
	a, err := NewLassoSet(name, words)
	if err != nil {
		panic(err)
	}
	return a
}

// Words returns the member words.
func (l *LassoSet) Words() []GraphWord { return l.words }

// N implements Adversary.
func (l *LassoSet) N() int { return l.n }

// Name implements Adversary.
func (l *LassoSet) Name() string { return l.name }

// Compact implements Adversary: finite sequence sets are closed.
func (l *LassoSet) Compact() bool { return true }

// Start implements Adversary.
func (l *LassoSet) Start() State {
	match := make([]int, len(l.words))
	return lassoSetState{match: encodeMatch(match)}
}

// Choices implements Adversary: the distinct next graphs of the words that
// still match the prefix.
func (l *LassoSet) Choices(s State) []graph.Graph {
	match := decodeMatch(s.(lassoSetState).match)
	var out []graph.Graph
	seen := make(map[string]bool, 2)
	for i, pos := range match {
		if pos < 0 {
			continue
		}
		g := l.words[i].At(pos)
		if k := g.Key(); !seen[k] {
			seen[k] = true
			out = append(out, g)
		}
	}
	return out
}

// Step implements Adversary.
func (l *LassoSet) Step(s State, g graph.Graph) State {
	match := decodeMatch(s.(lassoSetState).match)
	for i, pos := range match {
		if pos < 0 {
			continue
		}
		w := l.words[i]
		if w.At(pos).Equal(g) {
			match[i] = w.Phase(pos + 1)
		} else {
			match[i] = -1
		}
	}
	return lassoSetState{match: encodeMatch(match)}
}

// Done implements Adversary: staying inside the choice structure forever
// always yields a member word, so there are no liveness obligations.
func (l *LassoSet) Done(State) bool { return true }
