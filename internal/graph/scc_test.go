package graph

import (
	"math/bits"
	"testing"
	"testing/quick"
)

func TestSCCsChain(t *testing.T) {
	g := Chain(3)
	comps := g.SCCs()
	if len(comps) != 3 {
		t.Fatalf("Chain(3) has %d SCCs, want 3", len(comps))
	}
	roots := g.RootComponents()
	if len(roots) != 1 || roots[0].Members != 1 {
		t.Errorf("Chain(3) roots = %v, want single {1}", roots)
	}
}

func TestSCCsCycle(t *testing.T) {
	g := Cycle(4)
	comps := g.SCCs()
	if len(comps) != 1 || comps[0].Members != AllNodes(4) {
		t.Fatalf("Cycle(4) SCCs = %v, want one full component", comps)
	}
	if !comps[0].IsRoot {
		t.Error("the unique SCC of a cycle must be a root")
	}
}

func TestSCCsTwoIslands(t *testing.T) {
	// 1↔2 and 3↔4, islands with no cross edges: both are roots.
	g := MustParse(4, "1<->2, 3<->4")
	roots := g.RootComponents()
	if len(roots) != 2 {
		t.Fatalf("got %d roots, want 2", len(roots))
	}
	var union uint64
	for _, r := range roots {
		union |= r.Members
	}
	if union != AllNodes(4) {
		t.Errorf("roots cover %s, want all", FormatNodeSet(union))
	}
	if _, ok := g.SingleRoot(); ok {
		t.Error("SingleRoot must fail with two islands")
	}
}

func TestSingleRootStar(t *testing.T) {
	g := Star(5, 2)
	root, ok := g.SingleRoot()
	if !ok {
		t.Fatal("star must have a single root")
	}
	if root.Members != 1<<2 {
		t.Errorf("root = %s, want {3}", FormatNodeSet(root.Members))
	}
}

func TestSCCsMixed(t *testing.T) {
	// 1↔2 feed 3; 3 feeds 4↔5. Root is {1,2}.
	g := MustParse(5, "1<->2, 2->3, 3->4, 4<->5")
	comps := g.SCCs()
	if len(comps) != 3 {
		t.Fatalf("got %d SCCs, want 3: %v", len(comps), comps)
	}
	roots := g.RootComponents()
	if len(roots) != 1 || roots[0].Members != 0b00011 {
		t.Errorf("roots = %v, want [{1,2}]", roots)
	}
}

// TestSCCPartitionQuick checks the partition property and the reverse
// topological emission order on all graphs for n=3 and random ones for n=5.
func TestSCCPartitionQuick(t *testing.T) {
	check := func(g Graph) bool {
		comps := g.SCCs()
		var union uint64
		for i, c := range comps {
			if c.Members == 0 {
				return false
			}
			if union&c.Members != 0 {
				return false // overlap
			}
			union |= c.Members
			// Reverse topological order: no edge from a later component
			// into an earlier one would violate Tarjan's emission order;
			// equivalently each emitted component cannot reach any
			// component emitted after it.
			reach := g.ReachableFrom(c.Members)
			for j := i + 1; j < len(comps); j++ {
				if reach&comps[j].Members != 0 {
					return false
				}
			}
		}
		return union == AllNodes(g.N())
	}
	EnumerateAll(3, func(g Graph) bool {
		if !check(g) {
			t.Fatalf("SCC partition property fails for %v", g)
		}
		return true
	})
	const n = 5
	total := CountAll(n)
	f := func(gi uint64) bool { return check(ByIndex(n, gi%total)) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestRootReachabilityQuick: members of a single root reach every node, and
// every graph has at least one root component.
func TestRootReachabilityQuick(t *testing.T) {
	const n = 4
	total := CountAll(n)
	f := func(gi uint64) bool {
		g := ByIndex(n, gi%total)
		roots := g.RootComponents()
		if len(roots) == 0 {
			return false
		}
		if root, ok := g.SingleRoot(); ok {
			p := bits.TrailingZeros64(root.Members)
			if g.ReachableFrom(1<<uint(p)) != AllNodes(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestBroadcastersMatchSingleRoot: p is a broadcaster of g iff p lies in a
// root component that is the unique root. (On every n=3 graph.)
func TestBroadcastersMatchSingleRoot(t *testing.T) {
	EnumerateAll(3, func(g Graph) bool {
		bc := g.Broadcasters()
		root, ok := g.SingleRoot()
		var want uint64
		if ok {
			want = root.Members
		}
		if bc != want {
			t.Errorf("graph %v: Broadcasters()=%s but single-root=%s",
				g, FormatNodeSet(bc), FormatNodeSet(want))
		}
		return true
	})
}
