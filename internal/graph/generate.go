package graph

import "math/bits"

// Complete returns the complete graph on n nodes.
func Complete(n int) Graph {
	g := New(n)
	full := AllNodes(n)
	in := make([]uint64, n)
	for q := 0; q < n; q++ {
		in[q] = full
	}
	return Graph{n: g.n, in: in}
}

// Star returns the graph in which center has edges to every other node (a
// broadcast star).
func Star(n, center int) Graph {
	g := New(n)
	in := append([]uint64(nil), g.in...)
	for q := 0; q < n; q++ {
		in[q] |= 1 << uint(center)
	}
	return Graph{n: n, in: in}
}

// Cycle returns the directed cycle 0 → 1 → ... → n-1 → 0.
func Cycle(n int) Graph {
	g := New(n)
	in := append([]uint64(nil), g.in...)
	for q := 0; q < n; q++ {
		p := (q + n - 1) % n
		in[q] |= 1 << uint(p)
	}
	return Graph{n: n, in: in}
}

// Chain returns the directed path 0 → 1 → ... → n-1.
func Chain(n int) Graph {
	g := New(n)
	in := append([]uint64(nil), g.in...)
	for q := 1; q < n; q++ {
		in[q] |= 1 << uint(q-1)
	}
	return Graph{n: n, in: in}
}

// EnumerateAll calls yield for every directed graph on n nodes (self-loops
// always included), in a fixed deterministic order, until yield returns
// false. There are 2^(n·(n-1)) such graphs; callers must keep n small.
func EnumerateAll(n int, yield func(Graph) bool) {
	offDiag := n * (n - 1)
	total := uint64(1) << uint(offDiag)
	slots := offDiagSlots(n)
	for code := uint64(0); code < total; code++ {
		if !yield(decode(n, slots, code)) {
			return
		}
	}
}

// CountAll returns the number of directed graphs on n nodes with mandatory
// self-loops.
func CountAll(n int) uint64 {
	return 1 << uint(n*(n-1))
}

// IndexOf returns the position of g in the EnumerateAll order.
func IndexOf(g Graph) uint64 {
	slots := offDiagSlots(g.n)
	var code uint64
	for i, s := range slots {
		if g.HasEdge(s.From, s.To) {
			code |= 1 << uint(i)
		}
	}
	return code
}

// ByIndex returns the i-th graph of the EnumerateAll order on n nodes.
func ByIndex(n int, i uint64) Graph {
	return decode(n, offDiagSlots(n), i)
}

func offDiagSlots(n int) []Edge {
	slots := make([]Edge, 0, n*(n-1))
	for p := 0; p < n; p++ {
		for q := 0; q < n; q++ {
			if p != q {
				slots = append(slots, Edge{From: p, To: q})
			}
		}
	}
	return slots
}

func decode(n int, slots []Edge, code uint64) Graph {
	g := New(n)
	in := append([]uint64(nil), g.in...)
	for code != 0 {
		i := bits.TrailingZeros64(code)
		code &^= 1 << uint(i)
		s := slots[i]
		in[s.To] |= 1 << uint(s.From)
	}
	return Graph{n: n, in: in}
}
