package graph

import (
	"math/bits"
	"testing"
	"testing/quick"
)

func TestNewHasSelfLoopsOnly(t *testing.T) {
	for n := 1; n <= 5; n++ {
		g := New(n)
		for p := 0; p < n; p++ {
			for q := 0; q < n; q++ {
				want := p == q
				if got := g.HasEdge(p, q); got != want {
					t.Errorf("n=%d: HasEdge(%d,%d) = %v, want %v", n, p, q, got, want)
				}
			}
		}
		if g.EdgeCount() != 0 {
			t.Errorf("n=%d: EdgeCount() = %d, want 0", n, g.EdgeCount())
		}
	}
}

func TestNewPanicsOnBadN(t *testing.T) {
	for _, n := range []int{0, -1, MaxNodes + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", n)
				}
			}()
			New(n)
		}()
	}
}

func TestFromEdges(t *testing.T) {
	g, err := FromEdges(3, []Edge{{0, 1}, {1, 2}, {2, 0}})
	if err != nil {
		t.Fatalf("FromEdges: %v", err)
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 2) || !g.HasEdge(2, 0) {
		t.Errorf("missing expected edges in %v", g)
	}
	if g.HasEdge(1, 0) {
		t.Errorf("unexpected edge 1->0 in %v", g)
	}
	if _, err := FromEdges(2, []Edge{{0, 5}}); err == nil {
		t.Error("FromEdges with out-of-range endpoint: want error, got nil")
	}
}

func TestFromInMasks(t *testing.T) {
	g, err := FromInMasks(3, []uint64{0b010, 0b000, 0b011})
	if err != nil {
		t.Fatalf("FromInMasks: %v", err)
	}
	// Self-loops must have been added.
	for q := 0; q < 3; q++ {
		if !g.HasEdge(q, q) {
			t.Errorf("self-loop missing at %d", q)
		}
	}
	if !g.HasEdge(1, 0) || !g.HasEdge(0, 2) || !g.HasEdge(1, 2) {
		t.Errorf("missing expected edges in %v", g)
	}
	if _, err := FromInMasks(2, []uint64{0b100, 0}); err == nil {
		t.Error("FromInMasks with out-of-range bit: want error, got nil")
	}
	if _, err := FromInMasks(2, []uint64{0}); err == nil {
		t.Error("FromInMasks with wrong mask count: want error, got nil")
	}
}

func TestOutMatchesIn(t *testing.T) {
	g := MustParse(4, "1->2, 1->3, 3->4, 4->1")
	for p := 0; p < 4; p++ {
		out := g.Out(p)
		for q := 0; q < 4; q++ {
			inHas := g.HasEdge(p, q)
			outHas := out&(1<<uint(q)) != 0
			if inHas != outHas {
				t.Errorf("Out(%d) bit %d = %v, HasEdge = %v", p, q, outHas, inHas)
			}
		}
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	want := []Edge{{0, 1}, {1, 2}, {2, 0}, {2, 1}}
	g := MustFromEdges(3, want)
	got := g.Edges()
	if len(got) != len(want) {
		t.Fatalf("Edges() = %v, want %v", got, want)
	}
	h := MustFromEdges(3, got)
	if !g.Equal(h) {
		t.Errorf("round trip mismatch: %v vs %v", g, h)
	}
}

func TestUnionCompose(t *testing.T) {
	a := MustParse(3, "1->2")
	b := MustParse(3, "2->3")
	u := a.Union(b)
	if !u.HasEdge(0, 1) || !u.HasEdge(1, 2) {
		t.Errorf("union missing edges: %v", u)
	}
	c := a.Compose(b)
	if !c.HasEdge(0, 2) {
		t.Errorf("compose 1->2;2->3 must contain 1->3: %v", c)
	}
	// Self-loops make composition contain both factors.
	if !c.HasEdge(0, 1) || !c.HasEdge(1, 2) {
		t.Errorf("compose must contain both factors: %v", c)
	}
}

func TestComposeAssociativeQuick(t *testing.T) {
	const n = 4
	total := CountAll(n)
	f := func(ai, bi, ci uint64) bool {
		a := ByIndex(n, ai%total)
		b := ByIndex(n, bi%total)
		c := ByIndex(n, ci%total)
		return a.Compose(b).Compose(c).Equal(a.Compose(b.Compose(c)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSpreadReachable(t *testing.T) {
	g := MustParse(4, "1->2, 2->3, 3->4")
	if got := g.Spread(1); got != 0b0011 {
		t.Errorf("Spread({1}) = %s, want {1,2}", FormatNodeSet(got))
	}
	if got := g.ReachableFrom(1); got != 0b1111 {
		t.Errorf("ReachableFrom({1}) = %s, want all", FormatNodeSet(got))
	}
	if got := g.ReachableFrom(1 << 3); got != 0b1000 {
		t.Errorf("ReachableFrom({4}) = %s, want {4}", FormatNodeSet(got))
	}
}

func TestBroadcasters(t *testing.T) {
	tests := []struct {
		name string
		g    Graph
		want uint64
	}{
		{"chain", Chain(4), 1},
		{"cycle", Cycle(4), 0b1111},
		{"star", Star(4, 2), 1 << 2},
		{"empty", New(3), 0},
		{"complete", Complete(3), 0b111},
	}
	for _, tt := range tests {
		if got := tt.g.Broadcasters(); got != tt.want {
			t.Errorf("%s: Broadcasters() = %s, want %s",
				tt.name, FormatNodeSet(got), FormatNodeSet(tt.want))
		}
	}
}

func TestSpreadMonotoneQuick(t *testing.T) {
	const n = 5
	total := CountAll(n)
	f := func(gi, srci uint64) bool {
		g := ByIndex(n, gi%total)
		src := srci & AllNodes(n)
		sp := g.Spread(src)
		// Self-loops guarantee src ⊆ Spread(src).
		return sp&src == src && g.ReachableFrom(src)&sp == sp
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKeyDistinguishesGraphs(t *testing.T) {
	seen := make(map[string]Graph, CountAll(3))
	EnumerateAll(3, func(g Graph) bool {
		k := g.Key()
		if prev, dup := seen[k]; dup {
			t.Fatalf("duplicate key %q for %v and %v", k, prev, g)
		}
		seen[k] = g
		return true
	})
	if len(seen) != int(CountAll(3)) {
		t.Errorf("enumerated %d distinct keys, want %d", len(seen), CountAll(3))
	}
}

func TestStringFormat(t *testing.T) {
	if got := New(2).String(); got != "[]" {
		t.Errorf("empty graph String() = %q, want []", got)
	}
	if got := MustParse(2, "1->2").String(); got != "[1->2]" {
		t.Errorf("String() = %q, want [1->2]", got)
	}
}

func TestAddRemoveEdgeImmutability(t *testing.T) {
	g := New(2)
	h := g.AddEdge(0, 1)
	if g.HasEdge(0, 1) {
		t.Error("AddEdge mutated the receiver")
	}
	if !h.HasEdge(0, 1) {
		t.Error("AddEdge result lacks the edge")
	}
	back := h.RemoveEdge(0, 1)
	if !g.Equal(back) {
		t.Error("RemoveEdge did not restore the original graph")
	}
	if !h.RemoveEdge(1, 1).HasEdge(1, 1) {
		t.Error("RemoveEdge removed a mandatory self-loop")
	}
}

func TestNodesAndFormatNodeSet(t *testing.T) {
	if got := FormatNodeSet(0b1011); got != "{1,2,4}" {
		t.Errorf("FormatNodeSet = %q, want {1,2,4}", got)
	}
	nodes := Nodes(0b1010)
	if len(nodes) != 2 || nodes[0] != 1 || nodes[1] != 3 {
		t.Errorf("Nodes(0b1010) = %v, want [1 3]", nodes)
	}
}

func TestEnumerateAllCountAndIndex(t *testing.T) {
	for n := 1; n <= 3; n++ {
		count := 0
		EnumerateAll(n, func(g Graph) bool {
			if got := IndexOf(g); got != uint64(count) {
				t.Fatalf("n=%d: IndexOf(graph #%d) = %d", n, count, got)
			}
			if !ByIndex(n, uint64(count)).Equal(g) {
				t.Fatalf("n=%d: ByIndex(%d) does not round-trip", n, count)
			}
			count++
			return true
		})
		if uint64(count) != CountAll(n) {
			t.Errorf("n=%d: enumerated %d graphs, want %d", n, count, CountAll(n))
		}
	}
}

func TestEnumerateAllEarlyStop(t *testing.T) {
	count := 0
	EnumerateAll(3, func(Graph) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Errorf("early stop after %d graphs, want 5", count)
	}
}

func TestInDegree(t *testing.T) {
	g := MustParse(3, "1->3, 2->3")
	if got := g.InDegree(2); got != 3 {
		t.Errorf("InDegree(3) = %d, want 3 (two senders + self)", got)
	}
	if got := g.InDegree(0); got != 1 {
		t.Errorf("InDegree(1) = %d, want 1", got)
	}
}

func TestGeneratorShapes(t *testing.T) {
	n := 5
	if c := Complete(n); c.EdgeCount() != n*(n-1) {
		t.Errorf("Complete(%d).EdgeCount() = %d", n, c.EdgeCount())
	}
	if c := Cycle(n); c.EdgeCount() != n {
		t.Errorf("Cycle(%d).EdgeCount() = %d", n, c.EdgeCount())
	}
	if c := Chain(n); c.EdgeCount() != n-1 {
		t.Errorf("Chain(%d).EdgeCount() = %d", n, c.EdgeCount())
	}
	if s := Star(n, 0); s.EdgeCount() != n-1 {
		t.Errorf("Star(%d,0).EdgeCount() = %d", n, s.EdgeCount())
	}
	if !Cycle(n).IsStronglyConnected() {
		t.Error("Cycle must be strongly connected")
	}
	if Chain(n).IsStronglyConnected() {
		t.Error("Chain must not be strongly connected")
	}
}

func TestEdgeCountMatchesOnes(t *testing.T) {
	EnumerateAll(3, func(g Graph) bool {
		total := 0
		for q := 0; q < g.N(); q++ {
			total += bits.OnesCount64(g.In(q))
		}
		if total-g.N() != g.EdgeCount() {
			t.Errorf("EdgeCount mismatch for %v", g)
		}
		return true
	})
}

func TestSortEdges(t *testing.T) {
	edges := []Edge{{2, 1}, {0, 3}, {2, 0}, {0, 1}}
	SortEdges(edges)
	want := []Edge{{0, 1}, {0, 3}, {2, 0}, {2, 1}}
	for i := range want {
		if edges[i] != want[i] {
			t.Fatalf("SortEdges = %v, want %v", edges, want)
		}
	}
}
