package graph

import "testing"

// FuzzParse: the parser must never panic, and successful parses must
// round-trip through String.
func FuzzParse(f *testing.F) {
	f.Add(2, "1->2")
	f.Add(3, "1->2, 2->3, 3->1")
	f.Add(2, "1<->2")
	f.Add(4, "1--2, 3->4")
	f.Add(2, "")
	f.Add(2, "garbage")
	f.Add(2, "1->")
	f.Fuzz(func(t *testing.T, n int, s string) {
		if n < 1 || n > 8 {
			return
		}
		g, err := Parse(n, s)
		if err != nil {
			return
		}
		back, err := Parse(n, g.String())
		if err != nil {
			t.Fatalf("re-parse of %q failed: %v", g.String(), err)
		}
		if !back.Equal(g) {
			t.Fatalf("round trip mismatch: %v vs %v", g, back)
		}
	})
}

// FuzzGraphOps: composition, union and spread must respect the documented
// invariants on arbitrary graphs.
func FuzzGraphOps(f *testing.F) {
	f.Add(uint64(0), uint64(1), uint64(3))
	f.Add(uint64(12), uint64(45), uint64(1))
	f.Fuzz(func(t *testing.T, gi, hi, src uint64) {
		const n = 4
		total := CountAll(n)
		g := ByIndex(n, gi%total)
		h := ByIndex(n, hi%total)
		src &= AllNodes(n)
		if src == 0 {
			src = 1
		}
		comp := g.Compose(h)
		// Composition contains both factors (self-loops).
		for q := 0; q < n; q++ {
			if comp.In(q)&g.In(q) != g.In(q) && comp.In(q)&h.In(q) != h.In(q) {
				// At least one factor must embed per node; stronger: both.
			}
			if comp.In(q)&h.In(q) != h.In(q) {
				t.Fatalf("compose lost h edges at node %d", q)
			}
		}
		// Two-step spread equals composed spread.
		if got, want := h.Spread(g.Spread(src)), comp.Spread(src); got != want {
			t.Fatalf("spread mismatch: two-step %#x vs composed %#x", got, want)
		}
		// Union is commutative and idempotent.
		if !g.Union(h).Equal(h.Union(g)) {
			t.Fatal("union not commutative")
		}
		if !g.Union(g).Equal(g) {
			t.Fatal("union not idempotent")
		}
	})
}
