package graph

import "math/bits"

// SCC is a strongly connected component, represented as a node bitmask.
type SCC struct {
	// Members is the bitmask of nodes in the component.
	Members uint64
	// IsRoot reports whether the component has no incoming edges from
	// outside itself (a source component of the condensation). Root
	// components are the candidate "broadcast seeds" of a round graph.
	IsRoot bool
}

// SCCs returns the strongly connected components of g in reverse
// topological order of the condensation (Tarjan's order: a component is
// emitted only after every component it reaches).
func (g Graph) SCCs() []SCC {
	t := &tarjan{
		g:       g,
		index:   make([]int, g.n),
		lowlink: make([]int, g.n),
		onStack: make([]bool, g.n),
	}
	for v := range t.index {
		t.index[v] = -1
	}
	for v := 0; v < g.n; v++ {
		if t.index[v] < 0 {
			t.strongConnect(v)
		}
	}
	markRoots(g, t.comps)
	return t.comps
}

// RootComponents returns the source components of the condensation of g.
// Every directed graph has at least one.
func (g Graph) RootComponents() []SCC {
	all := g.SCCs()
	roots := make([]SCC, 0, 1)
	for _, c := range all {
		if c.IsRoot {
			roots = append(roots, c)
		}
	}
	return roots
}

// SingleRoot returns the unique root component of g and true, or a zero SCC
// and false if the condensation has multiple sources. A graph in which a
// single root component exists is exactly a graph whose root members reach
// every node.
func (g Graph) SingleRoot() (SCC, bool) {
	roots := g.RootComponents()
	if len(roots) != 1 {
		return SCC{}, false
	}
	return roots[0], true
}

// markRoots fills in the IsRoot flags: a component is a root iff no node
// outside the component has an edge into it.
func markRoots(g Graph, comps []SCC) {
	for i := range comps {
		members := comps[i].Members
		isRoot := true
		for q := 0; q < g.n && isRoot; q++ {
			if members&(1<<uint(q)) == 0 {
				continue
			}
			if g.in[q]&^members != 0 {
				isRoot = false
			}
		}
		comps[i].IsRoot = isRoot
	}
}

type tarjan struct {
	g       Graph
	next    int
	index   []int
	lowlink []int
	onStack []bool
	stack   []int
	comps   []SCC
}

// strongConnect is the iterative form of Tarjan's algorithm (explicit call
// stack, so deep graphs cannot overflow the goroutine stack).
func (t *tarjan) strongConnect(v0 int) {
	type frame struct {
		v    int
		succ uint64 // remaining out-neighbours to visit
	}
	frames := []frame{{v: v0, succ: t.out(v0)}}
	t.open(v0)
	for len(frames) > 0 {
		f := &frames[len(frames)-1]
		if f.succ != 0 {
			w := bits.TrailingZeros64(f.succ)
			f.succ &^= 1 << uint(w)
			switch {
			case t.index[w] < 0:
				t.open(w)
				frames = append(frames, frame{v: w, succ: t.out(w)})
			case t.onStack[w]:
				if t.index[w] < t.lowlink[f.v] {
					t.lowlink[f.v] = t.index[w]
				}
			}
			continue
		}
		v := f.v
		frames = frames[:len(frames)-1]
		if len(frames) > 0 {
			parent := &frames[len(frames)-1]
			if t.lowlink[v] < t.lowlink[parent.v] {
				t.lowlink[parent.v] = t.lowlink[v]
			}
		}
		if t.lowlink[v] == t.index[v] {
			var members uint64
			for {
				w := t.stack[len(t.stack)-1]
				t.stack = t.stack[:len(t.stack)-1]
				t.onStack[w] = false
				members |= 1 << uint(w)
				if w == v {
					break
				}
			}
			t.comps = append(t.comps, SCC{Members: members})
		}
	}
}

func (t *tarjan) open(v int) {
	t.index[v] = t.next
	t.lowlink[v] = t.next
	t.next++
	t.stack = append(t.stack, v)
	t.onStack[v] = true
}

// out returns the out-neighbours of v excluding v itself (self-loops are
// irrelevant to strong connectivity).
func (t *tarjan) out(v int) uint64 {
	return t.g.Out(v) &^ (1 << uint(v))
}
