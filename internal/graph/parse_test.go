package graph

import "testing"

func TestParseBasic(t *testing.T) {
	tests := []struct {
		in      string
		n       int
		want    string
		wantErr bool
	}{
		{"1->2", 2, "[1->2]", false},
		{"1->2, 2->1", 2, "[1->2 2->1]", false},
		{"1<->2", 2, "[1->2 2->1]", false},
		{"1--2", 2, "[1->2 2->1]", false},
		{"", 2, "[]", false},
		{"[]", 2, "[]", false},
		{"[1->2 2->3]", 3, "[1->2 2->3]", false},
		{"1=>2", 2, "", true},
		{"0->1", 2, "", true},
		{"1->3", 2, "", true},
		{"x->2", 2, "", true},
	}
	for _, tt := range tests {
		g, err := Parse(tt.n, tt.in)
		if tt.wantErr {
			if err == nil {
				t.Errorf("Parse(%d, %q): want error, got %v", tt.n, tt.in, g)
			}
			continue
		}
		if err != nil {
			t.Errorf("Parse(%d, %q): %v", tt.n, tt.in, err)
			continue
		}
		if got := g.String(); got != tt.want {
			t.Errorf("Parse(%d, %q) = %s, want %s", tt.n, tt.in, got, tt.want)
		}
	}
}

func TestParseStringRoundTrip(t *testing.T) {
	EnumerateAll(3, func(g Graph) bool {
		back, err := Parse(3, g.String())
		if err != nil {
			t.Fatalf("Parse(String(%v)): %v", g, err)
		}
		if !back.Equal(g) {
			t.Fatalf("round trip mismatch: %v became %v", g, back)
		}
		return true
	})
}

func TestLossyLinkConstants(t *testing.T) {
	if !Left.HasEdge(1, 0) || Left.HasEdge(0, 1) {
		t.Errorf("Left = %v, want only 2->1", Left)
	}
	if !Right.HasEdge(0, 1) || Right.HasEdge(1, 0) {
		t.Errorf("Right = %v, want only 1->2", Right)
	}
	if !Both.HasEdge(0, 1) || !Both.HasEdge(1, 0) {
		t.Errorf("Both = %v, want both directions", Both)
	}
	if Neither.EdgeCount() != 0 {
		t.Errorf("Neither = %v, want no edges", Neither)
	}
}

func TestArrow(t *testing.T) {
	tests := []struct {
		g    Graph
		want string
	}{
		{Left, "<-"},
		{Right, "->"},
		{Both, "<->"},
		{Neither, "--"},
	}
	for _, tt := range tests {
		if got := Arrow(tt.g); got != tt.want {
			t.Errorf("Arrow(%v) = %q, want %q", tt.g, got, tt.want)
		}
	}
	if got := Arrow(New(3)); got != "[]" {
		t.Errorf("Arrow on n=3 graph = %q, want fallback to String", got)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse on invalid input did not panic")
		}
	}()
	MustParse(2, "bogus")
}
