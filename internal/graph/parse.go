package graph

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse builds a graph on n nodes from a textual edge list with 1-based
// process ids, e.g. "1->2, 2->3, 3->1". The tokens "p<->q" and "p--q" add
// both directions; an empty string (or "[]") yields the self-loop-only
// graph.
//
//topocon:export
func Parse(n int, s string) (Graph, error) {
	s = strings.TrimSpace(s)
	s = strings.TrimPrefix(s, "[")
	s = strings.TrimSuffix(s, "]")
	g := New(n)
	if strings.TrimSpace(s) == "" {
		return g, nil
	}
	fields := strings.FieldsFunc(s, func(r rune) bool { return r == ',' || r == ' ' })
	edges := make([]Edge, 0, len(fields))
	for _, tok := range fields {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		both := false
		var sep string
		switch {
		case strings.Contains(tok, "<->"):
			sep, both = "<->", true
		case strings.Contains(tok, "--"):
			sep, both = "--", true
		case strings.Contains(tok, "->"):
			sep = "->"
		default:
			return Graph{}, fmt.Errorf("graph: cannot parse edge token %q", tok)
		}
		parts := strings.SplitN(tok, sep, 2)
		from, err := parseID(parts[0], n)
		if err != nil {
			return Graph{}, fmt.Errorf("graph: token %q: %w", tok, err)
		}
		to, err := parseID(parts[1], n)
		if err != nil {
			return Graph{}, fmt.Errorf("graph: token %q: %w", tok, err)
		}
		edges = append(edges, Edge{From: from, To: to})
		if both {
			edges = append(edges, Edge{From: to, To: from})
		}
	}
	return FromEdges(n, edges)
}

// MustParse is Parse for statically-known inputs; it panics on error.
func MustParse(n int, s string) Graph {
	g, err := Parse(n, s)
	if err != nil {
		panic(err)
	}
	return g
}

func parseID(s string, n int) (int, error) {
	id, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil {
		return 0, fmt.Errorf("invalid process id %q", s)
	}
	if id < 1 || id > n {
		return 0, fmt.Errorf("process id %d out of range [1,%d]", id, n)
	}
	return id - 1, nil
}

// The lossy-link graphs for n = 2, in the paper's arrow notation: process 1
// is the left process, process 2 the right one.
var (
	// Left is "←": only 2 → 1 succeeds.
	Left = MustParse(2, "2->1")
	// Right is "→": only 1 → 2 succeeds.
	Right = MustParse(2, "1->2")
	// Both is "↔": both messages arrive.
	Both = MustParse(2, "1<->2")
	// Neither delivers no message at all (not part of the classic lossy
	// link set, but needed for sweeps).
	Neither = New(2)
)

// Arrow renders a 2-node graph in the paper's arrow notation.
func Arrow(g Graph) string {
	if g.N() != 2 {
		return g.String()
	}
	r := g.HasEdge(0, 1)
	l := g.HasEdge(1, 0)
	switch {
	case l && r:
		return "<->"
	case l:
		return "<-"
	case r:
		return "->"
	default:
		return "--"
	}
}
