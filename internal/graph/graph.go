// Package graph implements directed communication graphs on a fixed node set
// [n] = {0, ..., n-1}, the round-by-round objects a message adversary picks.
//
// Following the dynamic-network convention (and as required for the view
// refinement property used throughout the topology packages, see DESIGN.md),
// every graph contains all self-loops: a process always receives its own
// state. All constructors normalize accordingly.
//
// Graphs are immutable after construction; all mutating helpers return new
// graphs. Nodes are indexed 0..n-1 internally; the paper's process ids
// 1..n map to index+1 in rendered output.
package graph

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// MaxNodes is the largest supported node count; adjacency rows are uint64
// bitmasks.
const MaxNodes = 64

// Graph is a directed graph on n nodes with mandatory self-loops.
//
// The zero value is an empty graph on zero nodes; use New or FromEdges to
// construct usable instances.
type Graph struct {
	n  int
	in []uint64 // in[q] = bitmask of p such that (p,q) is an edge
}

// Edge is a directed edge From → To.
type Edge struct {
	From, To int
}

// New returns the graph on n nodes containing only the self-loops.
// It panics if n is out of range; graph construction with invalid n is a
// programming error, not a runtime condition.
//
//topocon:export
func New(n int) Graph {
	if n <= 0 || n > MaxNodes {
		panic(fmt.Sprintf("graph: node count %d out of range [1,%d]", n, MaxNodes))
	}
	in := make([]uint64, n)
	for q := 0; q < n; q++ {
		in[q] = 1 << uint(q)
	}
	return Graph{n: n, in: in}
}

// FromEdges returns the graph on n nodes with the given edges (plus all
// self-loops). It returns an error if any endpoint is out of range.
func FromEdges(n int, edges []Edge) (Graph, error) {
	g := New(n)
	in := append([]uint64(nil), g.in...)
	for _, e := range edges {
		if e.From < 0 || e.From >= n || e.To < 0 || e.To >= n {
			return Graph{}, fmt.Errorf("graph: edge %d->%d out of range for n=%d", e.From, e.To, n)
		}
		in[e.To] |= 1 << uint(e.From)
	}
	return Graph{n: n, in: in}, nil
}

// MustFromEdges is FromEdges for statically-known edge lists; it panics on
// invalid input.
func MustFromEdges(n int, edges []Edge) Graph {
	g, err := FromEdges(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// FromInMasks builds a graph directly from per-node in-neighbour masks.
// Self-loops are added; bits at position ≥ n must be zero.
func FromInMasks(n int, in []uint64) (Graph, error) {
	if n <= 0 || n > MaxNodes {
		return Graph{}, fmt.Errorf("graph: node count %d out of range [1,%d]", n, MaxNodes)
	}
	if len(in) != n {
		return Graph{}, fmt.Errorf("graph: got %d masks for n=%d", len(in), n)
	}
	full := AllNodes(n)
	masks := make([]uint64, n)
	for q, m := range in {
		if m&^full != 0 {
			return Graph{}, fmt.Errorf("graph: mask %#x of node %d has bits beyond n=%d", m, q, n)
		}
		masks[q] = m | 1<<uint(q)
	}
	return Graph{n: n, in: masks}, nil
}

// AllNodes returns the bitmask {0, ..., n-1}.
func AllNodes(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return (1 << uint(n)) - 1
}

// N returns the number of nodes.
func (g Graph) N() int { return g.n }

// HasEdge reports whether (p,q) is an edge. Self-loops always exist.
func (g Graph) HasEdge(p, q int) bool { return g.in[q]&(1<<uint(p)) != 0 }

// In returns the bitmask of in-neighbours of q (senders q hears), always
// including q itself.
func (g Graph) In(q int) uint64 { return g.in[q] }

// Out returns the bitmask of out-neighbours of p (receivers of p), always
// including p itself.
func (g Graph) Out(p int) uint64 {
	var out uint64
	bit := uint64(1) << uint(p)
	for q := 0; q < g.n; q++ {
		if g.in[q]&bit != 0 {
			out |= 1 << uint(q)
		}
	}
	return out
}

// InDegree returns the number of in-neighbours of q, counting q itself.
func (g Graph) InDegree(q int) int { return bits.OnesCount64(g.in[q]) }

// EdgeCount returns the number of edges excluding self-loops.
func (g Graph) EdgeCount() int {
	total := 0
	for q := 0; q < g.n; q++ {
		total += bits.OnesCount64(g.in[q] &^ (1 << uint(q)))
	}
	return total
}

// Edges returns all edges excluding self-loops, sorted by (From, To).
func (g Graph) Edges() []Edge {
	edges := make([]Edge, 0, g.EdgeCount())
	for p := 0; p < g.n; p++ {
		for q := 0; q < g.n; q++ {
			if p != q && g.HasEdge(p, q) {
				edges = append(edges, Edge{From: p, To: q})
			}
		}
	}
	return edges
}

// Equal reports whether g and h are the same graph.
func (g Graph) Equal(h Graph) bool {
	if g.n != h.n {
		return false
	}
	for q := 0; q < g.n; q++ {
		if g.in[q] != h.in[q] {
			return false
		}
	}
	return true
}

// Key returns a compact canonical representation usable as a map key.
func (g Graph) Key() string {
	var sb strings.Builder
	sb.Grow(2 + g.n*3)
	fmt.Fprintf(&sb, "%d:", g.n)
	for q := 0; q < g.n; q++ {
		fmt.Fprintf(&sb, "%x.", g.in[q])
	}
	return sb.String()
}

// String renders the edge list (excluding self-loops) with 1-based process
// ids, e.g. "[1->2 3->1]"; the empty relation renders as "[]".
func (g Graph) String() string {
	edges := g.Edges()
	parts := make([]string, 0, len(edges))
	for _, e := range edges {
		parts = append(parts, fmt.Sprintf("%d->%d", e.From+1, e.To+1))
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// AddEdge returns a copy of g with edge (p,q) added.
func (g Graph) AddEdge(p, q int) Graph {
	in := append([]uint64(nil), g.in...)
	in[q] |= 1 << uint(p)
	return Graph{n: g.n, in: in}
}

// RemoveEdge returns a copy of g with edge (p,q) removed. Removing a
// self-loop is a no-op: self-loops are mandatory.
func (g Graph) RemoveEdge(p, q int) Graph {
	if p == q {
		return g
	}
	in := append([]uint64(nil), g.in...)
	in[q] &^= 1 << uint(p)
	return Graph{n: g.n, in: in}
}

// Relabel returns the graph with every node p renamed to perm[p]: (p,q)
// is an edge of g iff (perm[p],perm[q]) is an edge of the result. perm
// must be a permutation of [0,n). Self-loops map to self-loops, so the
// result is again a valid graph.
func (g Graph) Relabel(perm []int) Graph {
	if len(perm) != g.n {
		panic(fmt.Sprintf("graph: relabeling %d-node graph with %d-element permutation", g.n, len(perm)))
	}
	in := make([]uint64, g.n)
	for q := 0; q < g.n; q++ {
		in[perm[q]] = PermuteMask(g.in[q], perm)
	}
	return Graph{n: g.n, in: in}
}

// PermuteMask relabels a node bitmask: bit p of mask becomes bit perm[p]
// of the result. Bits at positions ≥ len(perm) must be zero.
func PermuteMask(mask uint64, perm []int) uint64 {
	var out uint64
	for mask != 0 {
		p := bits.TrailingZeros64(mask)
		mask &^= 1 << uint(p)
		out |= 1 << uint(perm[p])
	}
	return out
}

// Union returns the graph with the union of both edge sets.
// It panics if the node counts differ (programming error).
func (g Graph) Union(h Graph) Graph {
	if g.n != h.n {
		panic(fmt.Sprintf("graph: union of graphs with n=%d and n=%d", g.n, h.n))
	}
	in := make([]uint64, g.n)
	for q := 0; q < g.n; q++ {
		in[q] = g.in[q] | h.in[q]
	}
	return Graph{n: g.n, in: in}
}

// Compose returns the relational composition g;h: (p,q) is an edge iff
// there is r with (p,r) in g and (r,q) in h. Because both factors contain
// all self-loops, the composition contains both edge sets. It panics if the
// node counts differ.
func (g Graph) Compose(h Graph) Graph {
	if g.n != h.n {
		panic(fmt.Sprintf("graph: compose of graphs with n=%d and n=%d", g.n, h.n))
	}
	in := make([]uint64, g.n)
	for q := 0; q < g.n; q++ {
		mid := h.in[q] // r such that (r,q) in h
		var acc uint64
		for mid != 0 {
			r := bits.TrailingZeros64(mid)
			mid &^= 1 << uint(r)
			acc |= g.in[r]
		}
		in[q] = acc
	}
	return Graph{n: g.n, in: in}
}

// Spread returns the one-round propagation of the node set src: the set of
// nodes that hear some member of src under g (always a superset of src,
// thanks to self-loops).
func (g Graph) Spread(src uint64) uint64 {
	var dst uint64
	for q := 0; q < g.n; q++ {
		if g.in[q]&src != 0 {
			dst |= 1 << uint(q)
		}
	}
	return dst
}

// ReachableFrom returns the set of nodes reachable from src by directed
// paths of any length (including src itself).
func (g Graph) ReachableFrom(src uint64) uint64 {
	cur := src
	for {
		next := g.Spread(cur)
		if next == cur {
			return cur
		}
		cur = next
	}
}

// Broadcasters returns the bitmask of nodes that reach every node by a
// directed path.
func (g Graph) Broadcasters() uint64 {
	full := AllNodes(g.n)
	var out uint64
	for p := 0; p < g.n; p++ {
		if g.ReachableFrom(1<<uint(p)) == full {
			out |= 1 << uint(p)
		}
	}
	return out
}

// IsStronglyConnected reports whether g has a single strongly connected
// component.
func (g Graph) IsStronglyConnected() bool {
	return len(g.SCCs()) == 1
}

// Nodes returns the 0-based node indices present in mask, ascending.
func Nodes(mask uint64) []int {
	out := make([]int, 0, bits.OnesCount64(mask))
	for mask != 0 {
		p := bits.TrailingZeros64(mask)
		mask &^= 1 << uint(p)
		out = append(out, p)
	}
	return out
}

// FormatNodeSet renders a node bitmask as 1-based ids, e.g. "{1,3}".
func FormatNodeSet(mask uint64) string {
	ids := Nodes(mask)
	parts := make([]string, len(ids))
	for i, p := range ids {
		parts[i] = fmt.Sprint(p + 1)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// SortEdges orders edges by (From, To); it is a convenience for tests and
// deterministic output.
func SortEdges(edges []Edge) {
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		return edges[i].To < edges[j].To
	})
}
