package combi

import (
	"testing"
	"testing/quick"
)

func TestWordsCountAndOrder(t *testing.T) {
	var got [][]int
	Words(3, 2, func(w []int) bool {
		cp := append([]int(nil), w...)
		got = append(got, cp)
		return true
	})
	if len(got) != 9 {
		t.Fatalf("enumerated %d words, want 9", len(got))
	}
	if got[0][0] != 0 || got[0][1] != 0 {
		t.Errorf("first word = %v, want [0 0]", got[0])
	}
	if got[8][0] != 2 || got[8][1] != 2 {
		t.Errorf("last word = %v, want [2 2]", got[8])
	}
	// Lexicographic order.
	for i := 1; i < len(got); i++ {
		if !lexLess(got[i-1], got[i]) {
			t.Errorf("words out of order at %d: %v then %v", i, got[i-1], got[i])
		}
	}
}

func lexLess(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

func TestWordsEdgeCases(t *testing.T) {
	count := 0
	Words(4, 0, func(w []int) bool {
		if len(w) != 0 {
			t.Errorf("zero-length word has len %d", len(w))
		}
		count++
		return true
	})
	if count != 1 {
		t.Errorf("k=0 yielded %d words, want 1 (the empty word)", count)
	}
	Words(0, 3, func([]int) bool {
		t.Error("base=0 must yield nothing")
		return false
	})
	count = 0
	Words(2, 3, func([]int) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Errorf("early stop after %d words, want 3", count)
	}
}

func TestWordIndexRoundTrip(t *testing.T) {
	f := func(baseRaw, kRaw uint8) bool {
		base := 1 + int(baseRaw)%4
		k := int(kRaw) % 5
		i := 0
		ok := true
		buf := make([]int, k)
		Words(base, k, func(w []int) bool {
			if WordIndex(base, w) != i {
				ok = false
				return false
			}
			WordAt(base, i, buf)
			for j := range buf {
				if buf[j] != w[j] {
					ok = false
					return false
				}
			}
			i++
			return true
		})
		return ok && i == CountWords(base, k)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSubsets(t *testing.T) {
	var masks []uint64
	Subsets(3, func(m uint64) bool {
		masks = append(masks, m)
		return true
	})
	if len(masks) != 7 {
		t.Fatalf("Subsets(3) yielded %d masks, want 7", len(masks))
	}
	for i, m := range masks {
		if m != uint64(i+1) {
			t.Errorf("mask #%d = %d, want %d", i, m, i+1)
		}
	}
	count := 0
	Subsets(4, func(uint64) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Errorf("early stop after %d masks, want 2", count)
	}
}

func TestPick(t *testing.T) {
	got := Pick(0b1011, nil)
	want := []int{0, 1, 3}
	if len(got) != len(want) {
		t.Fatalf("Pick = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Pick = %v, want %v", got, want)
		}
	}
}
