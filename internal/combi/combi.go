// Package combi provides small deterministic enumeration helpers used by
// the prefix-space construction: cartesian powers (input assignments, graph
// words) and subset iteration (choosing oblivious adversary graph sets).
package combi

// Words calls yield with every length-k word over the alphabet {0,...,base-1}
// in lexicographic order, reusing a single buffer. Enumeration stops early
// when yield returns false. The buffer must not be retained by yield.
func Words(base, k int, yield func([]int) bool) {
	if base <= 0 || k < 0 {
		return
	}
	word := make([]int, k)
	for {
		if !yield(word) {
			return
		}
		i := k - 1
		for ; i >= 0; i-- {
			word[i]++
			if word[i] < base {
				break
			}
			word[i] = 0
		}
		if i < 0 {
			return
		}
	}
}

// CountWords returns base^k, the number of length-k words.
func CountWords(base, k int) int {
	total := 1
	for i := 0; i < k; i++ {
		total *= base
	}
	return total
}

// WordIndex returns the position of word in the Words enumeration order.
func WordIndex(base int, word []int) int {
	idx := 0
	for _, w := range word {
		idx = idx*base + w
	}
	return idx
}

// WordAt fills dst with the word at position idx in the Words order and
// returns dst.
func WordAt(base, idx int, dst []int) []int {
	for i := len(dst) - 1; i >= 0; i-- {
		dst[i] = idx % base
		idx /= base
	}
	return dst
}

// Subsets calls yield with every non-empty subset of {0,...,n-1}, encoded
// as a bitmask, in increasing mask order. Enumeration stops early when
// yield returns false.
func Subsets(n int, yield func(uint64) bool) {
	total := uint64(1) << uint(n)
	for mask := uint64(1); mask < total; mask++ {
		if !yield(mask) {
			return
		}
	}
}

// Pick returns the elements of mask as indices, appended to dst.
func Pick(mask uint64, dst []int) []int {
	for i := 0; mask != 0; i++ {
		if mask&1 != 0 {
			dst = append(dst, i)
		}
		mask >>= 1
	}
	return dst
}
