package ckpt

import (
	"context"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"topocon/internal/check"
	"topocon/internal/graph"
	"topocon/internal/ma"
)

func seedAdversaries() []ma.Adversary {
	stable := ma.MustEventuallyStable("",
		[]graph.Graph{graph.Left, graph.Both}, []graph.Graph{graph.Right}, 1)
	return []ma.Adversary{
		ma.LossyLink2(),
		ma.LossyLink3(),
		ma.LossBounded(2, 1),
		ma.MustDeadlineStable(stable, 2),
		stable,
	}
}

// interruptedRun drives RunCheck with a context that cancels once killAt
// horizons have been analysed, simulating a mid-session kill right after a
// horizon commits. It returns whether the run was actually interrupted
// (fast-separating adversaries finish before the cancellation bites).
func interruptedRun(t *testing.T, adv ma.Adversary, dir string, opts check.Options, killAt int) bool {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := Config{Dir: dir, HotBytes: 4 << 10, OnHorizon: func(r check.HorizonReport) {
		if r.Horizon >= killAt {
			cancel()
		}
	}}
	_, info, err := RunCheck(ctx, adv, cfg, opts, 1)
	if err == nil {
		return false
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("%s: interrupted run: %v", adv.Name(), err)
	}
	if info.Written == 0 {
		t.Fatalf("%s: interrupted run wrote no checkpoint", adv.Name())
	}
	if !Exists(dir) {
		t.Fatalf("%s: no manifest after interruption", adv.Name())
	}
	return true
}

// TestKillAndResumeEquivalence is the end-to-end resume contract at the
// checkpoint layer: kill a session after two horizons, resume it via
// RunCheck in the same directory, and require the verdict to be identical
// to an uninterrupted run's — with the resumed session starting exactly one
// horizon past the checkpoint (zero re-extension) and cleaning up its
// checkpoint directory on success.
func TestKillAndResumeEquivalence(t *testing.T) {
	opts := check.Options{MaxHorizon: 4}
	for _, adv := range seedAdversaries() {
		want, err := check.Consensus(adv, opts)
		if err != nil {
			t.Fatal(err)
		}
		dir := filepath.Join(t.TempDir(), "ckpt")
		interrupted := interruptedRun(t, adv, dir, opts, 2)

		firstResumed := -1
		cfg := Config{Dir: dir, HotBytes: 4 << 10, OnHorizon: func(r check.HorizonReport) {
			if firstResumed < 0 {
				firstResumed = r.Horizon
			}
		}}
		got, info, err := RunCheck(context.Background(), adv, cfg, opts, 1)
		if err != nil {
			t.Fatalf("%s: resumed run: %v", adv.Name(), err)
		}
		if interrupted {
			if !info.Resumed || info.ResumedAt < 2 {
				t.Errorf("%s: run did not resume from the checkpoint (resumed=%v at %d)",
					adv.Name(), info.Resumed, info.ResumedAt)
			}
			if firstResumed >= 0 && firstResumed != info.ResumedAt+1 {
				t.Errorf("%s: resumed session re-extended: first analysed horizon %d after resuming at %d",
					adv.Name(), firstResumed, info.ResumedAt)
			}
		}
		if got.Verdict != want.Verdict || got.SeparationHorizon != want.SeparationHorizon ||
			got.BroadcastHorizon != want.BroadcastHorizon || got.Broadcaster != want.Broadcaster ||
			got.Exact != want.Exact {
			t.Errorf("%s: resumed %v sep=%d bcast=%d p*=%d vs uninterrupted %v sep=%d bcast=%d p*=%d",
				adv.Name(), got.Verdict, got.SeparationHorizon, got.BroadcastHorizon, got.Broadcaster,
				want.Verdict, want.SeparationHorizon, want.BroadcastHorizon, want.Broadcaster)
		}
		if (want.Map == nil) != (got.Map == nil) ||
			(want.Map != nil && (want.Map.Size() != got.Map.Size() || want.Map.Reference() != got.Map.Reference())) {
			t.Errorf("%s: decision maps differ after resume", adv.Name())
		}
		if !info.Removed || Exists(dir) {
			t.Errorf("%s: checkpoint not cleaned up after the verdict", adv.Name())
		}
	}
}

// TestResumeSurvivesRepeatedKills chains several kill/resume cycles on one
// directory — each resume continues strictly deeper and the final verdict
// still matches the uninterrupted run.
func TestResumeSurvivesRepeatedKills(t *testing.T) {
	adv := ma.LossyLink3()
	opts := check.Options{MaxHorizon: 5}
	want, err := check.Consensus(adv, opts)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "ckpt")
	deepest := 0
	for killAt := 1; killAt <= 3; killAt++ {
		if !interruptedRun(t, adv, dir, opts, killAt) {
			t.Fatalf("kill at horizon %d did not interrupt", killAt)
		}
		a, err := Load(dir, adv, 0)
		if err != nil {
			t.Fatalf("Load after kill %d: %v", killAt, err)
		}
		if a.Horizon() <= deepest-1 {
			t.Fatalf("kill %d: checkpoint regressed to horizon %d (was %d)", killAt, a.Horizon(), deepest)
		}
		deepest = a.Horizon()
	}
	got, info, err := RunCheck(context.Background(), adv, Config{Dir: dir}, opts, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Resumed || got.Verdict != want.Verdict {
		t.Fatalf("final run: resumed=%v verdict=%v, want resumed with %v", info.Resumed, got.Verdict, want.Verdict)
	}
}

// corruptibleCheckpoint lays down a checkpoint for LossyLink3 killed after
// horizon 2 and returns its directory.
func corruptibleCheckpoint(t *testing.T) (string, check.Options) {
	t.Helper()
	opts := check.Options{MaxHorizon: 4}
	dir := filepath.Join(t.TempDir(), "ckpt")
	if !interruptedRun(t, ma.LossyLink3(), dir, opts, 2) {
		t.Fatal("setup run was not interrupted")
	}
	return dir, opts
}

// TestCorruptCheckpointQuarantinedAndRecomputed pins the never-a-wrong-
// resume contract for every artifact: truncating or bit-flipping the
// manifest, the interner blob or a page file makes Load fail with
// ErrNoCheckpoint (artifacts quarantined, bytes preserved), and RunCheck
// falls back to a clean fresh recompute that still reaches the right
// verdict.
func TestCorruptCheckpointQuarantinedAndRecomputed(t *testing.T) {
	mutate := func(t *testing.T, path string, truncate bool) {
		t.Helper()
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if truncate {
			data = data[:len(data)/2]
		} else {
			data[len(data)/2] ^= 0x40
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	pageFile := func(t *testing.T, dir string) string {
		t.Helper()
		matches, err := filepath.Glob(filepath.Join(PagesDir(dir), "*.page"))
		if err != nil || len(matches) == 0 {
			t.Fatalf("no page files in %s (%v)", PagesDir(dir), err)
		}
		return matches[0]
	}
	cases := map[string]func(t *testing.T, dir string){
		"manifest-truncated": func(t *testing.T, dir string) { mutate(t, manifestPath(dir), true) },
		"manifest-bitflip":   func(t *testing.T, dir string) { mutate(t, manifestPath(dir), false) },
		"interner-truncated": func(t *testing.T, dir string) { mutate(t, internerPath(dir), true) },
		"interner-bitflip":   func(t *testing.T, dir string) { mutate(t, internerPath(dir), false) },
		"page-truncated":     func(t *testing.T, dir string) { mutate(t, pageFile(t, dir), true) },
		"page-bitflip":       func(t *testing.T, dir string) { mutate(t, pageFile(t, dir), false) },
		"interner-missing":   func(t *testing.T, dir string) { os.Remove(internerPath(dir)) },
		// A version-1 checkpoint is intact but predates the symmetry
		// quotient: its pages hold the full frontier, which the quotiented
		// checker must not resume into. Rewrite the manifest as a
		// well-formed v1 (valid CRC) and require quarantine + recompute.
		"stale-version": func(t *testing.T, dir string) {
			data, err := os.ReadFile(manifestPath(dir))
			if err != nil {
				t.Fatal(err)
			}
			lines := strings.Split(string(data), "\n")
			lines[0] = "topocon-ckpt 1"
			body := strings.Join(lines[:4], "\n") + "\n"
			manifest := body + fmt.Sprintf("crc32 %08x\n", crc32.ChecksumIEEE([]byte(body)))
			if err := os.WriteFile(manifestPath(dir), []byte(manifest), 0o644); err != nil {
				t.Fatal(err)
			}
		},
	}
	for name, corrupt := range cases {
		t.Run(name, func(t *testing.T) {
			dir, opts := corruptibleCheckpoint(t)
			corrupt(t, dir)
			if _, err := Load(dir, ma.LossyLink3(), 0); !errors.Is(err, ErrNoCheckpoint) {
				t.Fatalf("Load on corrupt checkpoint: %v, want ErrNoCheckpoint", err)
			}
			if entries, err := os.ReadDir(filepath.Join(dir, quarantineName)); err != nil || len(entries) == 0 {
				t.Errorf("nothing quarantined (%v)", err)
			}
			res, info, err := RunCheck(context.Background(), ma.LossyLink3(), Config{Dir: dir}, opts, 1)
			if err != nil {
				t.Fatalf("fresh recompute: %v", err)
			}
			if info.Resumed {
				t.Error("RunCheck claims to have resumed a corrupt checkpoint")
			}
			if res.Verdict != check.VerdictImpossible {
				t.Errorf("recomputed verdict %v, want impossible", res.Verdict)
			}
		})
	}
}

// TestMismatchesAreHardErrors pins that an intact checkpoint for a
// different adversary or different options refuses to resume loudly — no
// silent recompute that would mask the misconfiguration.
func TestMismatchesAreHardErrors(t *testing.T) {
	dir, opts := corruptibleCheckpoint(t)
	if _, err := Load(dir, ma.LossyLink2(), 0); !errors.Is(err, ErrFingerprintMismatch) {
		t.Errorf("Load with wrong adversary: %v, want ErrFingerprintMismatch", err)
	}
	if _, _, err := RunCheck(context.Background(), ma.LossyLink2(), Config{Dir: dir}, opts, 1); !errors.Is(err, ErrFingerprintMismatch) {
		t.Errorf("RunCheck with wrong adversary: %v, want ErrFingerprintMismatch", err)
	}
	changed := opts
	changed.MaxRuns = 123456
	if _, _, err := RunCheck(context.Background(), ma.LossyLink3(), Config{Dir: dir}, changed, 1); !errors.Is(err, ErrConfigMismatch) {
		t.Errorf("RunCheck with changed options: %v, want ErrConfigMismatch", err)
	}
	// The checkpoint survives all three refusals intact.
	if a, err := Load(dir, ma.LossyLink3(), 0); err != nil || a.Horizon() < 2 {
		t.Errorf("checkpoint damaged by mismatch refusals: %v", err)
	}
}

// TestFreshArchivesStaleState pins that a fresh session never sees a stale
// session's pages: Fresh moves them into quarantine (preserved, not
// deleted) because page ids are deterministic round numbers.
func TestFreshArchivesStaleState(t *testing.T) {
	dir, _ := corruptibleCheckpoint(t)
	stalePages, err := filepath.Glob(filepath.Join(PagesDir(dir), "*.page"))
	if err != nil || len(stalePages) == 0 {
		t.Fatal("setup left no pages")
	}
	if _, err := Fresh(dir, 0); err != nil {
		t.Fatalf("Fresh over stale checkpoint: %v", err)
	}
	if Exists(dir) {
		t.Error("manifest survived Fresh")
	}
	if left, _ := filepath.Glob(filepath.Join(PagesDir(dir), "*.page")); len(left) != 0 {
		t.Errorf("%d stale pages still visible after Fresh", len(left))
	}
	var archived int
	filepath.Walk(filepath.Join(dir, quarantineName), func(path string, info os.FileInfo, err error) error {
		if err == nil && info != nil && !info.IsDir() && strings.HasSuffix(path, ".page") {
			archived++
		}
		return nil
	})
	if archived != len(stalePages) {
		t.Errorf("archived %d pages, want %d", archived, len(stalePages))
	}
}

// TestRunCheckEveryBatchesCheckpoints pins the Every knob: with Every = 3
// over 4 analysed horizons, only one periodic checkpoint is written
// mid-run, and a cancellation right after an unsaved horizon still makes it
// durable via the final best-effort save.
func TestRunCheckEveryBatchesCheckpoints(t *testing.T) {
	adv := ma.LossyLink3()
	opts := check.Options{MaxHorizon: 6}
	dir := filepath.Join(t.TempDir(), "ckpt")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, info, err := RunCheck(ctx, adv, Config{Dir: dir, Every: 3, OnHorizon: func(r check.HorizonReport) {
		if r.Horizon == 4 {
			cancel()
		}
	}}, opts, 1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("run: %v, want context.Canceled", err)
	}
	// Horizon 3 was the periodic checkpoint; horizon 4 the interruption save.
	if info.Written != 2 {
		t.Errorf("wrote %d checkpoints, want 2", info.Written)
	}
	a, err := Load(dir, adv, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Horizon() != 4 {
		t.Errorf("checkpoint at horizon %d, want 4 (interruption made durable)", a.Horizon())
	}
}
