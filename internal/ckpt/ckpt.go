// Package ckpt persists and resumes whole check.Analyzer sessions. A
// checkpoint directory holds three things:
//
//	pages/         the session pager's spilled frontier pages (package pager,
//	               each page individually checksummed)
//	interner.bin   the exported view-interner arena (package ptg)
//	ckpt.manifest  the versioned, checksummed manifest tying them together
//
// Manifest format (version 2, line-framed like internal/store records):
//
//	topocon-ckpt 2
//	fingerprint <ma.Fingerprint of the adversary at the resolved MaxHorizon>
//	interner <byte length> <crc32, 8 lowercase hex digits, IEEE>
//	meta <compact JSON of check.SessionSnapshot>
//	crc32 <8 lowercase hex digits, IEEE, over the four lines above>
//
// Version 2 marks checkpoints written by the symmetry-quotient checker;
// version-1 checkpoints (full, unquotiented frontiers) are quarantined and
// recomputed rather than resumed (see manifestVersion).
//
// Save writes pages first (via Analyzer.Snapshot), then the interner blob,
// then the manifest — each through a `.tmp` sibling renamed into place — so
// a crash at any point leaves either the previous checkpoint or the new
// one, never a torn mix: the manifest is the commit point.
//
// Load validates strictly and never resumes wrong: a missing manifest is
// ErrNoCheckpoint; a corrupt manifest, interner blob or page set is moved to
// the quarantine/ subdirectory (bytes preserved, never deleted) and
// reported as an error wrapping ErrNoCheckpoint so callers fall back to a
// clean recompute; an adversary-fingerprint or options mismatch is a hard
// error (ErrFingerprintMismatch / ErrConfigMismatch) — the checkpoint is
// intact but belongs to a different analysis, and silently recomputing
// would mask the misconfiguration.
package ckpt

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"time"

	"topocon/internal/check"
	"topocon/internal/fsx"
	"topocon/internal/ma"
	"topocon/internal/pager"
	"topocon/internal/ptg"
)

const (
	// manifestVersion 2 marks checkpoints written by the symmetry-quotient
	// checker (DESIGN.md §13): a v1 checkpoint's pages hold the full,
	// unquotiented frontier, which a quotiented session must not resume
	// into (the round item counts would mis-shape every page). Version-1
	// manifests therefore fail decoding, quarantine, and recompute.
	manifestVersion = 2
	manifestName    = "ckpt.manifest"
	internerName    = "interner.bin"
	pagesDirName    = "pages"
	quarantineName  = "quarantine"
)

// ErrNoCheckpoint reports that the directory holds no usable checkpoint —
// either none was ever written, or what was there failed validation and has
// been quarantined. Callers start a fresh session.
var ErrNoCheckpoint = errors.New("ckpt: no usable checkpoint")

// ErrFingerprintMismatch reports an intact checkpoint written for a
// behaviourally different adversary.
var ErrFingerprintMismatch = errors.New("ckpt: adversary fingerprint mismatch")

// ErrConfigMismatch reports an intact checkpoint written under different
// analysis options than the caller's.
var ErrConfigMismatch = errors.New("ckpt: analysis options mismatch")

// PagesDir returns the pager directory inside a checkpoint directory; a
// session that wants to be checkpointable under dir must run its pager
// there.
func PagesDir(dir string) string { return filepath.Join(dir, pagesDirName) }

func manifestPath(dir string) string { return filepath.Join(dir, manifestName) }
func internerPath(dir string) string { return filepath.Join(dir, internerName) }

// Exists reports whether dir holds a (syntactically present, not yet
// validated) checkpoint manifest.
func Exists(dir string) bool {
	_, err := os.Stat(manifestPath(dir))
	return err == nil
}

// Fresh prepares dir for a brand-new checkpointable session and returns its
// pager. Any previous checkpoint state — manifest, interner blob, page
// files — is moved into quarantine/ first: page ids are deterministic
// (round numbers), so stale pages from an abandoned session must never be
// visible to a new one.
func Fresh(dir string, hotBytes int64) (*pager.Pager, error) {
	if dir == "" {
		return nil, errors.New("ckpt: empty checkpoint directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	if stale := staleState(dir); len(stale) > 0 {
		if err := quarantineState(dir, stale); err != nil {
			return nil, err
		}
	}
	pg, err := pager.New(pager.Config{Dir: PagesDir(dir), HotBytes: hotBytes})
	if err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	return pg, nil
}

// staleState lists the checkpoint artifacts present in dir.
func staleState(dir string) []string {
	var out []string
	for _, name := range []string{manifestName, internerName, pagesDirName} {
		p := filepath.Join(dir, name)
		st, err := os.Stat(p)
		if err != nil {
			continue
		}
		if st.IsDir() {
			if entries, err := os.ReadDir(p); err != nil || len(entries) == 0 {
				continue
			}
		}
		out = append(out, name)
	}
	return out
}

// quarantineState moves the named artifacts into a fresh stamped
// subdirectory of quarantine/, preserving the bytes for inspection.
func quarantineState(dir string, names []string) error {
	qdir := filepath.Join(dir, quarantineName, fmt.Sprintf("ckpt.%d", time.Now().UnixNano()))
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		return fmt.Errorf("ckpt: quarantine: %w", err)
	}
	for _, name := range names {
		if err := os.Rename(filepath.Join(dir, name), filepath.Join(qdir, name)); err != nil {
			return fmt.Errorf("ckpt: quarantine %s: %w", name, err)
		}
	}
	return nil
}

// Save checkpoints the session into dir. The analyzer must run its pager
// under PagesDir(dir) (Fresh or Load set this up). Page files are persisted
// by the snapshot itself; Save then writes the interner blob and finally
// the manifest, each atomically. Saving is only meaningful mid-run:
// Analyzer.Snapshot rejects unstarted and finished sessions.
//
//topocon:export
func Save(dir string, a *check.Analyzer) error {
	pg := a.Pager()
	if pg == nil {
		return errors.New("ckpt: analyzer has no pager")
	}
	if pg.Dir() != PagesDir(dir) {
		return fmt.Errorf("ckpt: analyzer's pager runs under %s, not %s", pg.Dir(), PagesDir(dir))
	}
	snap, err := a.Snapshot()
	if err != nil {
		return err
	}
	meta, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("ckpt: encoding snapshot: %w", err)
	}
	space := a.SpaceAt(a.Horizon())
	if space == nil {
		return errors.New("ckpt: deepest space unavailable")
	}
	blob := space.Interner.Export()
	if err := writeAtomic(internerPath(dir), blob); err != nil {
		return err
	}
	fp := ma.Fingerprint(a.Adversary(), a.Options().MaxHorizon)
	manifest := encodeManifest(fp, len(blob), crc32.ChecksumIEEE(blob), meta)
	return writeAtomic(manifestPath(dir), manifest)
}

// Load resumes the session checkpointed in dir for the given adversary,
// with a fresh pager under the given hot-set budget. Extra options are for
// the new process's observers (WithProgress, WithParallelism); the analysis
// configuration always comes from the checkpoint. See the package comment
// for the validation and error contract.
//
//topocon:export
func Load(dir string, adv ma.Adversary, hotBytes int64, extra ...check.AnalyzerOption) (*check.Analyzer, error) {
	data, err := os.ReadFile(manifestPath(dir))
	if errors.Is(err, os.ErrNotExist) {
		return nil, ErrNoCheckpoint
	}
	if err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	corrupt := func(detail error) error {
		if qerr := quarantineState(dir, staleState(dir)); qerr != nil {
			return fmt.Errorf("ckpt: %v (and quarantining failed: %v): %w", detail, qerr, ErrNoCheckpoint)
		}
		return fmt.Errorf("ckpt: %v (checkpoint quarantined): %w", detail, ErrNoCheckpoint)
	}
	fp, blobLen, blobCRC, snap, err := decodeManifest(data)
	if err != nil {
		return nil, corrupt(err)
	}
	if want := ma.Fingerprint(adv, snap.Options.MaxHorizon); fp != want {
		return nil, fmt.Errorf("%w: checkpoint %s vs adversary %q %s",
			ErrFingerprintMismatch, shortHex(fp), adv.Name(), shortHex(want))
	}
	blob, err := os.ReadFile(internerPath(dir))
	if err != nil {
		return nil, corrupt(fmt.Errorf("reading interner blob: %v", err))
	}
	if len(blob) != blobLen || crc32.ChecksumIEEE(blob) != blobCRC {
		return nil, corrupt(fmt.Errorf("interner blob does not match manifest (%d bytes, crc %08x; manifest says %d, %08x)",
			len(blob), crc32.ChecksumIEEE(blob), blobLen, blobCRC))
	}
	interner, err := ptg.ImportInterner(blob)
	if err != nil {
		return nil, corrupt(err)
	}
	pg, err := pager.New(pager.Config{Dir: PagesDir(dir), HotBytes: hotBytes})
	if err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	a, err := check.RestoreAnalyzer(adv, snap, interner, pg, extra...)
	if err != nil {
		// Structural failure or a corrupt/missing page: the checkpoint
		// cannot be trusted, so it is retired and the caller recomputes.
		return nil, corrupt(err)
	}
	return a, nil
}

// Remove deletes the whole checkpoint directory. Call it once the session
// has reached its verdict and the verdict is persisted elsewhere.
//
//topocon:allow quarantine -- documented retire path: the caller asserts the verdict is already persisted, so the checkpoint holds no unique data
func Remove(dir string) error { return os.RemoveAll(dir) }

// Config drives RunCheck.
type Config struct {
	// Dir is the checkpoint directory.
	Dir string
	// HotBytes is the pager's hot-set budget (≤ 0: unlimited).
	HotBytes int64
	// Every checkpoints after every Every-th analysed horizon (default 1).
	Every int
	// Keep leaves the checkpoint directory in place after a successful
	// verdict instead of removing it.
	Keep bool
	// OnHorizon, if set, observes every analysed horizon (resumed sessions
	// only report horizons they actually analyse — checkpointed ones are
	// never re-extended).
	OnHorizon func(check.HorizonReport)
}

// Info reports what RunCheck did besides the verdict.
type Info struct {
	Resumed   bool  `json:"resumed"`
	ResumedAt int   `json:"resumedAt"` // horizon the resumed session continued from; -1 if fresh
	Written   int   `json:"checkpointsWritten"`
	Removed   bool  `json:"removed"`
	Runs      int   `json:"runs"` // deepest horizon's prefix-space size (successful runs)
	SaveErr   error `json:"-"`    // first mid-run checkpoint failure, if any (non-fatal)

	// PagerStats is the session pager's final traffic.
	PagerStats pager.Stats `json:"pagerStats"`
}

// RunCheck runs one adversary to a verdict with periodic checkpointing:
// resume from cfg.Dir when a valid checkpoint for this adversary and these
// options exists, start fresh otherwise, checkpoint every cfg.Every
// horizons from the progress hook, and — unless cfg.Keep — remove the
// checkpoint directory once the verdict is in. On a context cancellation
// the last completed horizon is checkpointed before returning, so a killed
// run loses at most the horizon in flight.
//
//topocon:export
func RunCheck(ctx context.Context, adv ma.Adversary, cfg Config, opts check.Options, parallelism int) (*check.Result, *Info, error) {
	every := cfg.Every
	if every <= 0 {
		every = 1
	}
	info := &Info{ResumedAt: -1}
	var a *check.Analyzer
	sinceCkpt := 0
	progress := check.WithProgress(func(r check.HorizonReport) {
		if cfg.OnHorizon != nil {
			cfg.OnHorizon(r)
		}
		if sinceCkpt++; sinceCkpt >= every {
			if err := Save(cfg.Dir, a); err != nil {
				if info.SaveErr == nil {
					info.SaveErr = err
				}
			} else {
				info.Written++
				sinceCkpt = 0
			}
		}
	})

	a, err := Load(cfg.Dir, adv, cfg.HotBytes, check.WithParallelism(parallelism), progress)
	switch {
	case err == nil:
		info.Resumed = true
		info.ResumedAt = a.Horizon()
	case errors.Is(err, ErrNoCheckpoint):
		pg, ferr := Fresh(cfg.Dir, cfg.HotBytes)
		if ferr != nil {
			return nil, info, ferr
		}
		a, ferr = check.NewAnalyzer(adv,
			check.WithOptions(opts), check.WithParallelism(parallelism), check.WithPager(pg), progress)
		if ferr != nil {
			return nil, info, ferr
		}
	default:
		return nil, info, err
	}
	resolved, err := opts.Resolved()
	if err != nil {
		return nil, info, err
	}
	if a.Options() != resolved {
		return nil, info, fmt.Errorf("%w: checkpoint %+v vs requested %+v", ErrConfigMismatch, a.Options(), resolved)
	}

	res, err := a.Check(ctx)
	info.PagerStats = a.Pager().Stats()
	if err != nil {
		// Make the interruption durable: the last fully-analysed horizon may
		// postdate the last periodic checkpoint when Every > 1.
		if sinceCkpt > 0 && a.Horizon() > 0 && !a.Finished() {
			if serr := Save(cfg.Dir, a); serr == nil {
				info.Written++
			} else if info.SaveErr == nil {
				info.SaveErr = serr
			}
		}
		return nil, info, err
	}
	if s := a.SpaceAt(a.Horizon()); s != nil {
		info.Runs = s.Len()
	}
	if !cfg.Keep {
		if rerr := Remove(cfg.Dir); rerr == nil {
			info.Removed = true
		}
	}
	return res, info, nil
}

// writeAtomic writes data through fsx.AtomicWrite (temp sibling, sync,
// rename — the shared durable-write idiom) with this package's error prefix.
func writeAtomic(path string, data []byte) error {
	if err := fsx.AtomicWrite(path, data, 0o644); err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	return nil
}

// encodeManifest renders the versioned, checksummed manifest bytes.
func encodeManifest(fp string, blobLen int, blobCRC uint32, meta []byte) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "topocon-ckpt %d\n", manifestVersion)
	fmt.Fprintf(&b, "fingerprint %s\n", fp)
	fmt.Fprintf(&b, "interner %d %08x\n", blobLen, blobCRC)
	fmt.Fprintf(&b, "meta %s\n", meta)
	fmt.Fprintf(&b, "crc32 %08x\n", crc32.ChecksumIEEE(b.Bytes()))
	return b.Bytes()
}

// decodeManifest parses and fully validates manifest bytes.
func decodeManifest(data []byte) (fp string, blobLen int, blobCRC uint32, snap *check.SessionSnapshot, err error) {
	lines := strings.Split(string(data), "\n")
	if len(lines) != 6 || lines[5] != "" {
		return "", 0, 0, nil, errors.New("manifest must be exactly 5 newline-terminated lines")
	}
	var version int
	if _, serr := fmt.Sscanf(lines[0], "topocon-ckpt %d", &version); serr != nil ||
		lines[0] != fmt.Sprintf("topocon-ckpt %d", version) {
		return "", 0, 0, nil, fmt.Errorf("bad header %q", lines[0])
	}
	if version != manifestVersion {
		return "", 0, 0, nil, fmt.Errorf("unsupported manifest version %d", version)
	}
	sumLine, ok := strings.CutPrefix(lines[4], "crc32 ")
	if !ok || len(sumLine) != 8 {
		return "", 0, 0, nil, fmt.Errorf("bad checksum line %q", lines[4])
	}
	body := strings.Join(lines[:4], "\n") + "\n"
	if want := fmt.Sprintf("%08x", crc32.ChecksumIEEE([]byte(body))); sumLine != want {
		return "", 0, 0, nil, fmt.Errorf("checksum mismatch (%s != %s)", sumLine, want)
	}
	fp, ok = strings.CutPrefix(lines[1], "fingerprint ")
	if !ok || fp == "" || strings.ContainsAny(fp, " \t") {
		return "", 0, 0, nil, fmt.Errorf("bad fingerprint line %q", lines[1])
	}
	if n, serr := fmt.Sscanf(lines[2], "interner %d %08x", &blobLen, &blobCRC); serr != nil || n != 2 || blobLen < 0 ||
		lines[2] != fmt.Sprintf("interner %d %08x", blobLen, blobCRC) {
		return "", 0, 0, nil, fmt.Errorf("bad interner line %q", lines[2])
	}
	meta, ok := strings.CutPrefix(lines[3], "meta ")
	if !ok {
		return "", 0, 0, nil, fmt.Errorf("bad meta line %q", lines[3])
	}
	dec := json.NewDecoder(strings.NewReader(meta))
	dec.DisallowUnknownFields()
	snap = new(check.SessionSnapshot)
	if derr := dec.Decode(snap); derr != nil {
		return "", 0, 0, nil, fmt.Errorf("decoding session meta: %v", derr)
	}
	return fp, blobLen, blobCRC, snap, nil
}

func shortHex(s string) string {
	if len(s) > 16 {
		return s[:16]
	}
	return s
}
