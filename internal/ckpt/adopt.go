package ckpt

import (
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// Adopt moves a dead worker's cell checkpoint at srcDir into the
// successor's namespace at dstDir, validate-then-rename: the source
// manifest and interner blob are fully checked first, any stale state in
// the destination is quarantined, and only then is the whole directory
// renamed into place — same-filesystem, so the move is atomic and the
// pager's relative page paths keep working unchanged. A subsequent Load
// on dstDir revalidates fingerprint and options as usual, so the
// successor resumes from the dead worker's deepest analysed horizon with
// zero re-extension.
//
// A missing source checkpoint is ErrNoCheckpoint (the dead worker never
// got far enough to save — the successor starts fresh, which is correct,
// not an error). A corrupt source is quarantined in place and reported
// wrapping ErrNoCheckpoint. Adopt never deletes anything.
//
// The returned horizon is the checkpoint's deepest analysed horizon, for
// provenance logging.
//
//topocon:export
func Adopt(srcDir, dstDir string) (int, error) {
	if srcDir == "" || dstDir == "" {
		return 0, errors.New("ckpt: adopt needs both source and destination directories")
	}
	if srcDir == dstDir {
		return 0, fmt.Errorf("ckpt: adopt source and destination are the same directory %s", srcDir)
	}
	data, err := os.ReadFile(manifestPath(srcDir))
	if errors.Is(err, os.ErrNotExist) {
		return 0, fmt.Errorf("%w: nothing to adopt at %s", ErrNoCheckpoint, srcDir)
	}
	if err != nil {
		return 0, fmt.Errorf("ckpt: %w", err)
	}
	corrupt := func(detail error) error {
		if qerr := quarantineState(srcDir, staleState(srcDir)); qerr != nil {
			return fmt.Errorf("ckpt: adopting %s: %v (and quarantining failed: %v): %w", srcDir, detail, qerr, ErrNoCheckpoint)
		}
		return fmt.Errorf("ckpt: adopting %s: %v (checkpoint quarantined): %w", srcDir, detail, ErrNoCheckpoint)
	}
	_, blobLen, blobCRC, snap, err := decodeManifest(data)
	if err != nil {
		return 0, corrupt(err)
	}
	blob, err := os.ReadFile(internerPath(srcDir))
	if err != nil {
		return 0, corrupt(fmt.Errorf("reading interner blob: %v", err))
	}
	if len(blob) != blobLen || crc32.ChecksumIEEE(blob) != blobCRC {
		return 0, corrupt(fmt.Errorf("interner blob does not match manifest (%d bytes, crc %08x; manifest says %d, %08x)",
			len(blob), crc32.ChecksumIEEE(blob), blobLen, blobCRC))
	}

	// The destination may hold the successor's own abandoned state from an
	// earlier attempt; move it aside so the rename target is clear.
	if stale := staleState(dstDir); len(stale) > 0 {
		if err := quarantineState(dstDir, stale); err != nil {
			return 0, err
		}
	}
	if err := os.MkdirAll(filepath.Dir(dstDir), 0o755); err != nil {
		return 0, fmt.Errorf("ckpt: %w", err)
	}
	// If dstDir itself exists (only quarantine/ and empty remnants can be
	// left after the sweep above), move the artifacts individually into it
	// instead of renaming over a non-empty directory.
	if _, err := os.Stat(dstDir); err == nil {
		// Manifest moves last: it is the commit point, so a crash mid-move
		// leaves a manifest-less destination that Load treats as no
		// checkpoint — a fresh start, never a torn resume.
		for _, name := range []string{pagesDirName, internerName, manifestName} {
			src := filepath.Join(srcDir, name)
			if _, serr := os.Stat(src); serr != nil {
				continue
			}
			if rerr := os.Rename(src, filepath.Join(dstDir, name)); rerr != nil {
				return 0, fmt.Errorf("ckpt: adopting %s: %w", name, rerr)
			}
		}
		return snap.Horizon, nil
	}
	if err := os.Rename(srcDir, dstDir); err != nil {
		return 0, fmt.Errorf("ckpt: adopting %s: %w", srcDir, err)
	}
	return snap.Horizon, nil
}
