package ckpt

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"topocon/internal/check"
	"topocon/internal/ma"
)

// TestAdoptCrossWorkerResume is the cross-worker half of the kill-and-
// resume contract: worker w1 dies mid-horizon, a successor w2 adopts the
// checkpoint into its own namespace and resumes there — the verdict is
// identical to an uninterrupted run and the resumed session starts
// exactly one horizon past the adopted checkpoint (zero re-extension).
func TestAdoptCrossWorkerResume(t *testing.T) {
	opts := check.Options{MaxHorizon: 4}
	for _, adv := range seedAdversaries() {
		want, err := check.Consensus(adv, opts)
		if err != nil {
			t.Fatal(err)
		}
		base := t.TempDir()
		w1 := filepath.Join(base, "cells", "w1", "cell")
		w2 := filepath.Join(base, "cells", "w2", "cell")
		if !interruptedRun(t, adv, w1, opts, 2) {
			continue // separated before the kill; nothing to adopt
		}

		horizon, err := Adopt(w1, w2)
		if err != nil {
			t.Fatalf("%s: Adopt: %v", adv.Name(), err)
		}
		if horizon < 2 {
			t.Errorf("%s: adopted checkpoint at horizon %d, want ≥ 2", adv.Name(), horizon)
		}
		if Exists(w1) {
			t.Errorf("%s: source manifest still present after adoption", adv.Name())
		}

		firstResumed := -1
		cfg := Config{Dir: w2, HotBytes: 4 << 10, OnHorizon: func(r check.HorizonReport) {
			if firstResumed < 0 {
				firstResumed = r.Horizon
			}
		}}
		got, info, err := RunCheck(context.Background(), adv, cfg, opts, 1)
		if err != nil {
			t.Fatalf("%s: resumed run in successor namespace: %v", adv.Name(), err)
		}
		if !info.Resumed || info.ResumedAt != horizon {
			t.Errorf("%s: successor resumed=%v at %d, want resume at adopted horizon %d",
				adv.Name(), info.Resumed, info.ResumedAt, horizon)
		}
		if firstResumed >= 0 && firstResumed != horizon+1 {
			t.Errorf("%s: successor re-extended: first analysed horizon %d after adopting at %d",
				adv.Name(), firstResumed, horizon)
		}
		if got.Verdict != want.Verdict || got.SeparationHorizon != want.SeparationHorizon ||
			got.BroadcastHorizon != want.BroadcastHorizon || got.Broadcaster != want.Broadcaster ||
			got.Exact != want.Exact {
			t.Errorf("%s: adopted %v sep=%d bcast=%d p*=%d vs uninterrupted %v sep=%d bcast=%d p*=%d",
				adv.Name(), got.Verdict, got.SeparationHorizon, got.BroadcastHorizon, got.Broadcaster,
				want.Verdict, want.SeparationHorizon, want.BroadcastHorizon, want.Broadcaster)
		}
		if (want.Map == nil) != (got.Map == nil) ||
			(want.Map != nil && (want.Map.Size() != got.Map.Size() || want.Map.Reference() != got.Map.Reference())) {
			t.Errorf("%s: decision maps differ after cross-worker resume", adv.Name())
		}
	}
}

// TestAdoptMissingSourceIsNoCheckpoint: a dead worker that never saved
// yields ErrNoCheckpoint, which callers treat as "start fresh".
func TestAdoptMissingSourceIsNoCheckpoint(t *testing.T) {
	base := t.TempDir()
	_, err := Adopt(filepath.Join(base, "nope"), filepath.Join(base, "dst"))
	if !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("Adopt of missing source = %v, want ErrNoCheckpoint", err)
	}
	if _, serr := os.Stat(filepath.Join(base, "dst")); !os.IsNotExist(serr) {
		t.Fatal("failed adoption created the destination")
	}
}

// TestAdoptCorruptSourceQuarantined: a corrupt source checkpoint is moved
// aside (bytes preserved) and reported as ErrNoCheckpoint; the successor
// recomputes fresh rather than resuming wrong.
func TestAdoptCorruptSourceQuarantined(t *testing.T) {
	src, _ := corruptibleCheckpoint(t)
	data, err := os.ReadFile(manifestPath(src))
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(manifestPath(src), data, 0o644); err != nil {
		t.Fatal(err)
	}
	dst := filepath.Join(filepath.Dir(src), "successor")
	if _, err := Adopt(src, dst); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("Adopt of corrupt source = %v, want ErrNoCheckpoint", err)
	}
	if Exists(src) {
		t.Fatal("corrupt manifest still in place after quarantine")
	}
	entries, err := os.ReadDir(filepath.Join(src, quarantineName))
	if err != nil || len(entries) == 0 {
		t.Fatalf("corrupt checkpoint not quarantined: %v", err)
	}
}

// TestAdoptIntoDirtyDestination: the successor's own abandoned state in
// the destination is quarantined, not merged with the adopted artifacts.
func TestAdoptIntoDirtyDestination(t *testing.T) {
	src, opts := corruptibleCheckpoint(t)
	dst := filepath.Join(filepath.Dir(src), "successor")
	// Give the successor namespace an abandoned checkpoint of its own.
	if !interruptedRun(t, ma.LossyLink3(), dst, opts, 1) {
		t.Fatal("setup run for the dirty destination was not interrupted")
	}
	horizon, err := Adopt(src, dst)
	if err != nil {
		t.Fatalf("Adopt into dirty destination: %v", err)
	}
	if horizon < 2 {
		t.Fatalf("adopted horizon %d, want the deeper source checkpoint (≥ 2)", horizon)
	}
	a, err := Load(dst, ma.LossyLink3(), 0)
	if err != nil {
		t.Fatalf("Load after adoption: %v", err)
	}
	if a.Horizon() != horizon {
		t.Fatalf("loaded horizon %d, want adopted %d", a.Horizon(), horizon)
	}
	entries, err := os.ReadDir(filepath.Join(dst, quarantineName))
	if err != nil || len(entries) == 0 {
		t.Fatalf("destination's stale state not quarantined: %v", err)
	}
}
