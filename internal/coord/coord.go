// Package coord is the coordinator half of the multi-worker sweep
// protocol: it expands a template grid once, dispatches each cell to a
// fleet of topoconsvc workers over HTTP/JSON (POST /v1/cells/{key}/claim),
// and merges the decorated per-cell results into one sweep report in grid
// order — as if a single process had run the sweep.
//
// Fault tolerance is built from three mechanisms, all observable in the
// merged report's provenance fields (Worker, Attempt, StolenFrom):
//
//   - Leases. Workers record a time-bounded lease per cell in the shared
//     checkpoint directory and renew it while solving. The coordinator
//     never reads those files — the 409 conflict body (holder + expiry)
//     tells it exactly who owns a cell and how long to wait before the
//     next claim can steal it.
//
//   - Steals with checkpoint adoption. When a worker dies, its TCP
//     connection drops but its lease (and per-cell checkpoint) survive on
//     disk. The coordinator marks the worker dead, re-dispatches the cell
//     to a peer naming the dead holder as adoptFrom, and the peer resumes
//     from the adopted checkpoint with zero horizon re-extension.
//
//   - Revival probes. A dead mark is a hypothesis, not a verdict: the
//     coordinator re-probes a dead worker's GET /healthz on the run's
//     backoff policy and returns it to the dispatch rotation on the first
//     200 — so a worker that was restarted (or suffered a transient
//     network partition) rejoins the sweep instead of staying benched for
//     the rest of the run. Probes are capped (reviveProbes attempts per
//     death), so a permanently gone worker costs a bounded number of
//     requests and an all-dead fleet still terminates the run.
//
//   - A per-cell circuit breaker. Transient refusals (409 lease conflicts,
//     429 slot exhaustion) wait-and-retry without limit; genuine failures
//     (HTTP 500, cell Status "error") count against Config.MaxAttempts,
//     after which the cell is recorded as a terminal error instead of
//     retrying forever. Backoff between failure retries comes from
//     internal/retry's capped-exponential-with-full-jitter policy.
package coord

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"sync"
	"time"

	"topocon/internal/retry"
	"topocon/internal/scenario"
	"topocon/internal/sweep"
)

// Config parameterizes a coordinated sweep run.
type Config struct {
	// Workers are the fleet's base URLs, e.g. "http://127.0.0.1:8081".
	// Workers that stop answering TCP are marked dead and their leased
	// cells stolen by the survivors; a capped background probe of each
	// dead worker's /healthz returns it to the rotation if it recovers.
	Workers []string
	// LeaseTTL is the per-cell lease duration sent with every claim; a
	// worker that misses renewals for this long loses the cell (≤ 0: 30s).
	LeaseTTL time.Duration
	// MaxAttempts is the per-cell circuit breaker: the number of failed
	// dispatches (HTTP 500 or cell Status "error") a cell may accumulate
	// before it is recorded as a terminal error (≤ 0: 4).
	MaxAttempts int
	// Dispatchers bounds the cells in flight at once (≤ 0: 2 per worker).
	Dispatchers int
	// Retry shapes the backoff between failure re-dispatches and busy
	// (429) retries. The zero value is the package default policy.
	Retry retry.Policy
	// Client is the HTTP client for claims. Nil uses a client without a
	// timeout — a claim blocks for the whole solve, so per-request
	// deadlines belong in the context given to Run, not the client.
	Client *http.Client
	// OnCell, when set, observes each cell result as it is accepted (in
	// completion order, not grid order; called serially).
	OnCell func(sweep.CellResult)
	// Logf, when set, receives progress lines (nil: the standard logger).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 30 * time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.Dispatchers <= 0 {
		c.Dispatchers = 2 * len(c.Workers)
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	return c
}

// Stats counts the run's dispatch traffic — the coordinator-side view of
// the fleet's health.
type Stats struct {
	// Cells is the grid size; Dispatched the claim POSTs that reached a
	// worker attempt (including ones answered 409/429).
	Cells      int `json:"cells"`
	Dispatched int `json:"dispatched"`
	// Retries counts dispatches past each cell's first.
	Retries int `json:"retries"`
	// Steals counts results whose worker took over a dead peer's lease.
	Steals int `json:"steals"`
	// BreakerTrips counts cells abandoned as terminal errors after
	// MaxAttempts failed dispatches.
	BreakerTrips int `json:"breakerTrips"`
	// DeadWorkers counts workers marked dead (transport failure or drain).
	DeadWorkers int `json:"deadWorkers"`
	// Revived counts dead workers returned to rotation by a successful
	// health probe. A worker that dies and revives repeatedly counts once
	// per death, so Revived can exceed the fleet size.
	Revived int `json:"revived"`
}

// ErrNoWorkers is returned by Run when the fleet is empty.
var ErrNoWorkers = errors.New("coord: no workers configured")

// errAllDead terminates a cell when every worker has been marked dead.
var errAllDead = errors.New("coord: all workers dead")

// cellWork is one grid cell prepared for dispatch: its key, the marshalled
// claim body scenario, and the metadata echoed into terminal results the
// fleet never produced (breaker trips, all-dead).
type cellWork struct {
	index    int
	name     string
	bindings []scenario.Binding
	key      sweep.Key
	keyErr   error
	spec     []byte
}

// Run expands the template grid, dispatches every cell across the fleet,
// and returns the merged report (cells in grid order) plus dispatch stats.
// The error is non-nil only for whole-run failures — an empty fleet, a
// template that cannot expand, a cancelled context; per-cell failures are
// recorded in the report, never returned.
//
//topocon:export
func Run(ctx context.Context, tpl *scenario.Template, cfg Config) (*sweep.Report, *Stats, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Workers) == 0 {
		return nil, nil, ErrNoWorkers
	}
	cells, err := tpl.Expand()
	if err != nil {
		return nil, nil, fmt.Errorf("coord: expanding %s: %w", tpl.Name, err)
	}

	work := make([]cellWork, len(cells))
	for i, cell := range cells {
		w := cellWork{index: i, name: cell.Scenario.Name, bindings: cell.Bindings}
		w.key, w.keyErr = sweep.KeyFor(cell.Scenario.Adversary, cell.Scenario.Options)
		if w.keyErr == nil {
			w.spec, w.keyErr = json.Marshal(cell.Scenario.Spec)
		}
		work[i] = w
	}

	// Revival probes outlive the cell dispatch that spawned them but not
	// the run: cancelling probeCtx (and waiting on the probe group) at exit
	// keeps Run's return prompt even when a dead worker never answers.
	probeCtx, stopProbes := context.WithCancel(ctx)
	defer stopProbes()
	co := &coordinator{
		cfg:      cfg,
		pool:     newWorkerPool(cfg.Workers),
		stats:    Stats{Cells: len(cells)},
		probeCtx: probeCtx,
	}
	start := time.Now()
	results := make([]sweep.CellResult, len(cells))
	queue := make(chan int)
	var wg sync.WaitGroup
	for d := 0; d < cfg.Dispatchers; d++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range queue {
				res := co.runCell(ctx, work[i])
				results[i] = res
				co.observe(res)
			}
		}()
	}
	for i := range work {
		queue <- i
	}
	close(queue)
	wg.Wait()
	stopProbes()
	co.probes.Wait()

	rep := &sweep.Report{
		Template:   tpl.Name,
		Params:     tpl.Params,
		Workers:    len(cfg.Workers),
		WallMillis: float64(time.Since(start)) / float64(time.Millisecond),
		Cells:      results,
		Summary:    sweep.Summarize(results),
	}
	stats := co.snapshot()
	if ctx.Err() != nil {
		return rep, &stats, fmt.Errorf("coord: %w", ctx.Err())
	}
	return rep, &stats, nil
}

// coordinator is the shared state of one Run.
type coordinator struct {
	cfg  Config
	pool *workerPool

	// probeCtx scopes revival probes to the run; probes tracks them so Run
	// can wait for the goroutines after cancelling.
	probeCtx context.Context
	probes   sync.WaitGroup

	mu    sync.Mutex
	stats Stats
}

func (co *coordinator) observe(res sweep.CellResult) {
	co.mu.Lock()
	defer co.mu.Unlock()
	if res.StolenFrom != "" {
		co.stats.Steals++
	}
	if co.cfg.OnCell != nil {
		co.cfg.OnCell(res)
	}
}

func (co *coordinator) snapshot() Stats {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.stats
}

func (co *coordinator) count(f func(*Stats)) {
	co.mu.Lock()
	f(&co.stats)
	co.mu.Unlock()
}

// runCell owns one cell from first dispatch to accepted result. Transient
// refusals (lease conflicts, busy workers, worker deaths) loop without a
// failure budget — they resolve by waiting or by the fleet shrinking —
// while genuine failures count toward the circuit breaker.
func (co *coordinator) runCell(ctx context.Context, w cellWork) sweep.CellResult {
	if w.keyErr != nil {
		return w.terminal(0, fmt.Sprintf("keying cell: %v", w.keyErr))
	}
	var (
		attempt   int    // dispatches sent (1-based in the claim body)
		failures  int    // breaker budget consumed
		busy      int    // consecutive 429s, for backoff growth
		adoptFrom string // previous lease holder, once known
		lastErr   string
	)
	for {
		if ctx.Err() != nil {
			return w.cancelled(attempt)
		}
		worker, ok := co.pool.pick()
		if !ok {
			co.cfg.Logf("coord: cell %s: %v after %d dispatches", w.name, errAllDead, attempt)
			return w.terminal(attempt, errAllDead.Error())
		}
		attempt++
		co.count(func(s *Stats) {
			s.Dispatched++
			if attempt > 1 {
				s.Retries++
			}
		})
		out := co.claim(ctx, worker, w, attempt, adoptFrom)
		switch out.kind {
		case claimOK:
			if out.res.Status == sweep.StatusError {
				failures++
				lastErr = out.res.Err
				if failures >= co.cfg.MaxAttempts {
					return co.trip(w, out.res)
				}
				co.cfg.Logf("coord: cell %s: attempt %d failed on %s: %s (retrying)", w.name, attempt, worker, out.res.Err)
				if retry.Sleep(ctx, co.cfg.Retry.Delay(failures)) != nil {
					return w.cancelled(attempt)
				}
				continue
			}
			return out.res

		case claimConflicted:
			// A live peer holds the lease. Remember the holder — if it is
			// dead, the next claim that outlives the lease steals the cell
			// and adopts its checkpoint. Poll again at a fraction of the
			// TTL so a graceful release is picked up early.
			if out.holder != "" {
				adoptFrom = out.holder
			}
			if retry.Sleep(ctx, co.conflictWait(out.expires)) != nil {
				return w.cancelled(attempt)
			}

		case claimBusy:
			busy++
			if retry.Sleep(ctx, co.cfg.Retry.Delay(busy)) != nil {
				return w.cancelled(attempt)
			}

		case claimWorkerGone:
			// The worker is unreachable or draining: mark it dead and move
			// on. Not a cell failure — if the dead worker held this cell's
			// lease, the next claim will 409 against it and the conflict
			// body identifies whom to steal from. A background probe gives
			// the worker a bounded chance to rejoin the rotation.
			if co.pool.markDead(worker) {
				co.count(func(s *Stats) { s.DeadWorkers++ })
				co.cfg.Logf("coord: worker %s marked dead (%s)", worker, out.err)
				co.probes.Add(1)
				go co.probeRevival(co.probeCtx, worker)
			}

		case claimFailed:
			failures++
			lastErr = out.err
			if failures >= co.cfg.MaxAttempts {
				return co.trip(w, w.terminal(attempt, lastErr))
			}
			co.cfg.Logf("coord: cell %s: attempt %d on %s: %s (retrying)", w.name, attempt, worker, out.err)
			if retry.Sleep(ctx, co.cfg.Retry.Delay(failures)) != nil {
				return w.cancelled(attempt)
			}

		case claimRejected:
			// 400: deterministic — the same body would be rejected again.
			return w.terminal(attempt, out.err)
		}
	}
}

// trip records a circuit-breaker trip and returns the cell's terminal
// result (the last failed attempt's, so its error is preserved).
func (co *coordinator) trip(w cellWork, res sweep.CellResult) sweep.CellResult {
	co.count(func(s *Stats) { s.BreakerTrips++ })
	res.Err = fmt.Sprintf("circuit breaker open after %d failed dispatches: %s", co.cfg.MaxAttempts, res.Err)
	co.cfg.Logf("coord: cell %s: %s", w.name, res.Err)
	return res
}

// conflictWait converts a 409 body's lease expiry into a sleep: long
// enough to matter, short enough to notice an early release, never past
// the expiry by more than the poll floor.
func (co *coordinator) conflictWait(expires time.Time) time.Duration {
	const floor = 20 * time.Millisecond
	wait := co.cfg.LeaseTTL / 4
	if !expires.IsZero() {
		if until := time.Until(expires) + floor; until < wait {
			wait = until
		}
	}
	if wait < floor {
		wait = floor
	}
	return wait
}

// claimOutcome classifies one claim POST.
type claimOutcome struct {
	kind    claimKind
	res     sweep.CellResult // claimOK
	holder  string           // claimConflicted
	expires time.Time        // claimConflicted
	err     string           // everything else
}

type claimKind int

const (
	claimOK         claimKind = iota // 200: result accepted (possibly Status error)
	claimConflicted                  // 409: leased to a live holder
	claimBusy                        // 429: no session slot free
	claimWorkerGone                  // transport error or 503: worker dead/draining
	claimFailed                      // 500: retryable worker-side failure
	claimRejected                    // 400: permanent rejection
)

// conflictBody mirrors the worker's 409 response.
type conflictBody struct {
	Error   string    `json:"error"`
	Holder  string    `json:"holder"`
	Expires time.Time `json:"expires"`
}

// claim POSTs one dispatch to worker and classifies the answer.
func (co *coordinator) claim(ctx context.Context, worker string, w cellWork, attempt int, adoptFrom string) claimOutcome {
	body, err := json.Marshal(map[string]any{
		"scenario":  json.RawMessage(w.spec),
		"ttlMillis": co.cfg.LeaseTTL.Milliseconds(),
		"attempt":   attempt,
		"adoptFrom": adoptFrom,
	})
	if err != nil {
		return claimOutcome{kind: claimRejected, err: fmt.Sprintf("encoding claim: %v", err)}
	}
	u := worker + "/v1/cells/" + url.PathEscape(w.key.String()) + "/claim"
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, bytes.NewReader(body))
	if err != nil {
		return claimOutcome{kind: claimRejected, err: fmt.Sprintf("building claim request: %v", err)}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := co.cfg.Client.Do(req)
	if err != nil {
		return claimOutcome{kind: claimWorkerGone, err: err.Error()}
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		// The worker died mid-response; the claim's fate is unknown, but
		// its lease is on disk either way — same recovery as a dead TCP dial.
		return claimOutcome{kind: claimWorkerGone, err: fmt.Sprintf("reading claim response: %v", err)}
	}
	switch resp.StatusCode {
	case http.StatusOK:
		var res sweep.CellResult
		if err := json.Unmarshal(data, &res); err != nil {
			return claimOutcome{kind: claimFailed, err: fmt.Sprintf("decoding result: %v", err)}
		}
		return claimOutcome{kind: claimOK, res: res}
	case http.StatusConflict:
		var c conflictBody
		_ = json.Unmarshal(data, &c)
		return claimOutcome{kind: claimConflicted, holder: c.Holder, expires: c.Expires, err: c.Error}
	case http.StatusTooManyRequests:
		return claimOutcome{kind: claimBusy, err: apiErrorText(data)}
	case http.StatusServiceUnavailable:
		return claimOutcome{kind: claimWorkerGone, err: apiErrorText(data)}
	case http.StatusBadRequest:
		return claimOutcome{kind: claimRejected, err: apiErrorText(data)}
	default:
		return claimOutcome{kind: claimFailed, err: fmt.Sprintf("HTTP %d: %s", resp.StatusCode, apiErrorText(data))}
	}
}

// apiErrorText extracts the {"error": ...} body, falling back to the raw bytes.
func apiErrorText(data []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(data, &e) == nil && e.Error != "" {
		return e.Error
	}
	return string(bytes.TrimSpace(data))
}

// terminal builds a cell result the fleet never produced: keying errors,
// breaker trips without a worker-side result, all-dead runs.
func (w cellWork) terminal(attempt int, msg string) sweep.CellResult {
	return sweep.CellResult{
		Name:              w.name,
		Bindings:          w.bindings,
		Fingerprint:       w.key.Fingerprint,
		Status:            sweep.StatusError,
		SeparationHorizon: -1,
		Attempt:           attempt,
		Err:               msg,
	}
}

func (w cellWork) cancelled(attempt int) sweep.CellResult {
	return sweep.CellResult{
		Name:              w.name,
		Bindings:          w.bindings,
		Fingerprint:       w.key.Fingerprint,
		Status:            sweep.StatusCancelled,
		SeparationHorizon: -1,
		Attempt:           attempt,
	}
}

// workerPool is the fleet roster: round-robin assignment skipping workers
// marked dead. Death is a reversible mark, not a verdict: a revival probe
// that sees the worker's /healthz answer 200 calls markAlive and the
// worker rejoins the rotation — any half-finished solve it still holds is
// resolved by the lease protocol (survivors steal expired leases; the
// revived worker's stale session loses its lease and abandons the cell).
type workerPool struct {
	mu   sync.Mutex
	urls []string
	dead map[string]bool
	next int
}

func newWorkerPool(urls []string) *workerPool {
	return &workerPool{urls: urls, dead: make(map[string]bool, len(urls))}
}

// pick returns the next live worker, or ok=false when none remain.
func (p *workerPool) pick() (string, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := 0; i < len(p.urls); i++ {
		u := p.urls[p.next%len(p.urls)]
		p.next++
		if !p.dead[u] {
			return u, true
		}
	}
	return "", false
}

// markDead records a worker as dead; false if it already was.
func (p *workerPool) markDead(url string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.dead[url] {
		return false
	}
	p.dead[url] = true
	return true
}

// markAlive returns a dead worker to the rotation; false if it was not dead.
func (p *workerPool) markAlive(url string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.dead[url] {
		return false
	}
	delete(p.dead, url)
	return true
}

// reviveProbes caps the /healthz re-probe attempts spent on each death, so
// a permanently gone worker costs a bounded number of requests and the
// all-dead terminal path is never postponed indefinitely.
const reviveProbes = 8

// probeHealthTimeout bounds each individual /healthz request. Health
// checks are cheap; a worker that cannot answer within this window is not
// ready to rejoin the rotation yet.
const probeHealthTimeout = 2 * time.Second

// probeRevival re-probes a dead worker's /healthz on the run's backoff
// policy and returns it to the rotation on the first 200. One probe
// goroutine runs per death (markDead's true return gates the spawn), so a
// worker that flaps gets a fresh probe budget each time it dies.
func (co *coordinator) probeRevival(ctx context.Context, worker string) {
	defer co.probes.Done()
	for attempt := 1; attempt <= reviveProbes; attempt++ {
		if retry.Sleep(ctx, co.cfg.Retry.Delay(attempt)) != nil {
			return
		}
		if !co.probeHealth(ctx, worker) {
			continue
		}
		if co.pool.markAlive(worker) {
			co.count(func(s *Stats) { s.Revived++ })
			co.cfg.Logf("coord: worker %s revived after %d health probes", worker, attempt)
		}
		return
	}
	co.cfg.Logf("coord: worker %s stayed dead after %d health probes", worker, reviveProbes)
}

// probeHealth reports whether the worker's /healthz answers 200 within the
// probe timeout. 503 (draining) and transport errors both read as not yet.
func (co *coordinator) probeHealth(ctx context.Context, worker string) bool {
	pctx, cancel := context.WithTimeout(ctx, probeHealthTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, worker+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := co.cfg.Client.Do(req)
	if err != nil {
		return false
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}
