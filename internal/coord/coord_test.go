package coord

// The coordinator's tests run real topoconsvc services (in-process, over
// httptest) sharing one store + checkpoint directory — the same fleet
// shape as the CI chaos E2E, minus the separate processes. Worker death
// is simulated the way it actually manifests: a faultfs stall wedges the
// solve mid-cell with the lease on disk, and closing the server's client
// connections kills the coordinator's claim in flight.

import (
	"context"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"topocon/internal/faultfs"
	"topocon/internal/retry"
	"topocon/internal/scenario"
	"topocon/internal/store"
	"topocon/internal/svc"
	"topocon/internal/sweep"
)

// gridTemplate is a 6-cell loss-budget grid: f=0 keeps the complete graph
// (solvable), f=1,2 are lossy (impossible), each at horizons 3 and 4.
const gridTemplate = `{
  "name": "lossbound-coord",
  "params": {"f": "0..2", "horizon": [3, 4]},
  "n": 2,
  "adversary": {"op": "loss-bounded", "f": "${f}"},
  "check": {"maxHorizon": "${horizon}"}
}`

// oneCellTemplate is a single-cell grid for dispatch-machinery tests.
const oneCellTemplate = `{
  "name": "one-cell",
  "params": {"f": [1]},
  "n": 2,
  "adversary": {"op": "loss-bounded", "f": "${f}"},
  "check": {"maxHorizon": 3}
}`

// fastRetry keeps test backoffs in the low milliseconds. No seeded Rand:
// Policy.Delay is called from concurrent dispatchers and the process
// global source is the goroutine-safe one.
func fastRetry() retry.Policy {
	return retry.Policy{Base: 2 * time.Millisecond, Max: 30 * time.Millisecond}
}

func parseTemplate(t *testing.T, doc string) *scenario.Template {
	t.Helper()
	tpl, err := scenario.ParseTemplate([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	return tpl
}

// testWorker is one in-process topoconsvc fleet member.
type testWorker struct {
	id  string
	svc *svc.Service
	ts  *httptest.Server
}

// newWorker boots a coordinated worker on the shared directories. Cleanup
// closes the HTTP server before shutting the service down, so any wedged
// claim must be un-wedged (faults.ReleaseStalls) by an earlier cleanup.
func newWorker(t *testing.T, storeDir, ckptDir, id string, faults *faultfs.Schedule) *testWorker {
	t.Helper()
	return newWorkerSlots(t, storeDir, ckptDir, id, faults, 1)
}

// newWorkerSlots is newWorker with an explicit session-slot count, for
// tests where a wedged solve must not exhaust the worker's capacity.
func newWorkerSlots(t *testing.T, storeDir, ckptDir, id string, faults *faultfs.Schedule, slots int) *testWorker {
	t.Helper()
	s, err := svc.New(svc.Config{
		StoreDir:      storeDir,
		CheckpointDir: ckptDir,
		WorkerID:      id,
		Workers:       slots,
		Faults:        faults,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutting down %s: %v", id, err)
		}
	})
	return &testWorker{id: id, svc: s, ts: ts}
}

func TestRunMergesFleetSweep(t *testing.T) {
	storeDir, ckptDir := t.TempDir(), t.TempDir()
	w1 := newWorker(t, storeDir, ckptDir, "w1", nil)
	w2 := newWorker(t, storeDir, ckptDir, "w2", nil)

	tpl := parseTemplate(t, gridTemplate)
	rep, stats, err := Run(context.Background(), tpl, Config{
		Workers:  []string{w1.ts.URL, w2.ts.URL},
		LeaseTTL: time.Second,
		Retry:    fastRetry(),
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := rep.Summary
	if s.Cells != 6 || s.Done != 6 || s.Errors != 0 || s.Cancelled != 0 {
		t.Fatalf("summary = %+v", s)
	}
	// Merged cells come back in grid order, exactly the expansion's.
	cells, err := tpl.Expand()
	if err != nil {
		t.Fatal(err)
	}
	for i := range cells {
		got := rep.Cells[i]
		if got.Name != cells[i].Scenario.Name {
			t.Fatalf("cell %d = %q, want %q (grid order)", i, got.Name, cells[i].Scenario.Name)
		}
		if got.Worker != "w1" && got.Worker != "w2" {
			t.Fatalf("cell %q solved by %q", got.Name, got.Worker)
		}
		want := "impossible"
		if strings.Contains(got.Name, "f=0") {
			want = "solvable"
		}
		if got.Verdict != want {
			t.Fatalf("cell %q verdict = %q, want %q", got.Name, got.Verdict, want)
		}
	}
	if stats.Cells != 6 || stats.Dispatched < 6 || stats.Steals != 0 || stats.DeadWorkers != 0 || stats.BreakerTrips != 0 {
		t.Fatalf("stats = %+v", stats)
	}
}

// TestRunStealsFromDeadWorker is the in-process chaos drill: one worker
// wedges mid-solve with its lease on disk (a faultfs horizon stall), the
// coordinator's claim connection is severed, and the sweep must still
// finish — the dead worker's cell stolen by the survivor, the merged
// report byte-profile-identical to a single-process run of the same grid.
func TestRunStealsFromDeadWorker(t *testing.T) {
	storeDir, ckptDir := t.TempDir(), t.TempDir()
	faults, err := faultfs.Parse("stall:horizon:1")
	if err != nil {
		t.Fatal(err)
	}
	w1 := newWorker(t, storeDir, ckptDir, "w1", faults)
	w2 := newWorker(t, storeDir, ckptDir, "w2", nil)
	// Cleanups run LIFO: un-wedge w1's stalled solve before the servers
	// close, or ts.Close would wait on the wedged handler forever.
	t.Cleanup(faults.ReleaseStalls)

	// A read-only view of the fleet's shared lease directory, opened while
	// it is still empty so the open-time hygiene sweep races nobody.
	leases, err := store.OpenLeases(filepath.Join(ckptDir, "leases"), nil)
	if err != nil {
		t.Fatal(err)
	}

	tpl := parseTemplate(t, gridTemplate)
	cells, err := tpl.Expand()
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]sweep.Key, len(cells))
	for i, c := range cells {
		if keys[i], err = sweep.KeyFor(c.Scenario.Adversary, c.Scenario.Options); err != nil {
			t.Fatal(err)
		}
	}

	type outcome struct {
		rep   *sweep.Report
		stats *Stats
		err   error
	}
	done := make(chan outcome, 1)
	go func() {
		rep, stats, err := Run(context.Background(), tpl, Config{
			Workers:  []string{w1.ts.URL, w2.ts.URL},
			LeaseTTL: 300 * time.Millisecond,
			Retry:    fastRetry(),
			Logf:     t.Logf,
		})
		done <- outcome{rep, stats, err}
	}()

	// Wait for w1 to wedge: its first solve stalls at the first horizon
	// with its lease held on disk. Then kill the coordinator's connections
	// to it — the TCP half of a SIGKILL. The server-side request context
	// dies with the connection, which stops the lease renewals; the lease
	// expires and the survivor steals the cell.
	deadline := time.Now().Add(15 * time.Second)
	wedged := false
	for !wedged && time.Now().Before(deadline) {
		for _, k := range keys {
			if l, ok := leases.Get(k); ok && l.Holder == "w1" && l.State == store.LeaseHeld {
				wedged = true
				break
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !wedged {
		t.Fatal("w1 never held a lease; the stall fault did not engage")
	}
	time.Sleep(50 * time.Millisecond) // let the solve reach the stall point
	w1.ts.CloseClientConnections()

	var out outcome
	select {
	case out = <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("coordinated sweep did not finish after the worker died")
	}
	if out.err != nil {
		t.Fatal(out.err)
	}
	s := out.rep.Summary
	if s.Cells != 6 || s.Done != 6 || s.Errors != 0 || s.Cancelled != 0 {
		t.Fatalf("summary = %+v: a dead worker must cost no cells", s)
	}
	if out.stats.Steals < 1 {
		t.Fatalf("stats = %+v: want at least one steal", out.stats)
	}
	if out.stats.DeadWorkers != 1 {
		t.Fatalf("stats = %+v: want exactly one dead worker", out.stats)
	}
	stolen := 0
	seen := make(map[string]bool, len(cells))
	for _, c := range out.rep.Cells {
		if seen[c.Name] {
			t.Fatalf("cell %q appears twice in the merged report", c.Name)
		}
		seen[c.Name] = true
		if c.StolenFrom != "" {
			stolen++
			if c.StolenFrom != "w1" || c.Worker != "w2" {
				t.Fatalf("cell %q stolen from %q by %q, want w1 by w2", c.Name, c.StolenFrom, c.Worker)
			}
		}
	}
	if stolen < 1 {
		t.Fatal("no merged cell carries StolenFrom provenance")
	}

	// The merged verdict profile must equal a single-process golden run.
	golden, err := sweep.Run(context.Background(), parseTemplate(t, gridTemplate), sweep.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range golden.Cells {
		g, m := golden.Cells[i], out.rep.Cells[i]
		if g.Name != m.Name || g.Status != m.Status || g.Verdict != m.Verdict || g.SeparationHorizon != m.SeparationHorizon {
			t.Fatalf("cell %d diverges from the single-process golden run:\n  golden %+v\n  merged %+v", i, g, m)
		}
	}
}

// TestRunRevivesRestartedWorker is the revival drill: a worker wedges
// mid-solve, its claim connection is severed (it is marked dead and its
// cell stolen, same as TestRunStealsFromDeadWorker), but the server itself
// keeps running — the restarted-worker case. The coordinator's health
// probe must return it to the rotation, and the revived worker must solve
// cells for the rest of the sweep instead of staying benched.
func TestRunRevivesRestartedWorker(t *testing.T) {
	storeDir, ckptDir := t.TempDir(), t.TempDir()
	faults, err := faultfs.Parse("stall:horizon:1")
	if err != nil {
		t.Fatal(err)
	}
	// Two slots on w1: the wedged solve pins one for the whole test, and
	// post-revival claims need the other free.
	w1 := newWorkerSlots(t, storeDir, ckptDir, "w1", faults, 2)
	w2 := newWorker(t, storeDir, ckptDir, "w2", nil)
	t.Cleanup(faults.ReleaseStalls)

	leases, err := store.OpenLeases(filepath.Join(ckptDir, "leases"), nil)
	if err != nil {
		t.Fatal(err)
	}

	tpl := parseTemplate(t, gridTemplate)
	cells, err := tpl.Expand()
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]sweep.Key, len(cells))
	for i, c := range cells {
		if keys[i], err = sweep.KeyFor(c.Scenario.Adversary, c.Scenario.Options); err != nil {
			t.Fatal(err)
		}
	}

	type outcome struct {
		rep   *sweep.Report
		stats *Stats
		err   error
	}
	done := make(chan outcome, 1)
	go func() {
		// One dispatcher makes the sequencing deterministic: w1 gets the
		// first cell (and wedges on it), so every cell w1 completes in the
		// merged report was claimed after its death and revival.
		rep, stats, err := Run(context.Background(), tpl, Config{
			Workers:     []string{w1.ts.URL, w2.ts.URL},
			LeaseTTL:    300 * time.Millisecond,
			Dispatchers: 1,
			Retry:       fastRetry(),
			Logf:        t.Logf,
		})
		done <- outcome{rep, stats, err}
	}()

	// Wait for w1's first solve to wedge with its lease on disk, then cut
	// the coordinator's connections to it. Unlike the steal test, the
	// server stays up: the next health probe answers 200 and w1 rejoins.
	deadline := time.Now().Add(15 * time.Second)
	wedged := false
	for !wedged && time.Now().Before(deadline) {
		for _, k := range keys {
			if l, ok := leases.Get(k); ok && l.Holder == "w1" && l.State == store.LeaseHeld {
				wedged = true
				break
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !wedged {
		t.Fatal("w1 never held a lease; the stall fault did not engage")
	}
	time.Sleep(50 * time.Millisecond) // let the solve reach the stall point
	w1.ts.CloseClientConnections()

	var out outcome
	select {
	case out = <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("coordinated sweep did not finish after the worker restart")
	}
	if out.err != nil {
		t.Fatal(out.err)
	}
	s := out.rep.Summary
	if s.Cells != 6 || s.Done != 6 || s.Errors != 0 || s.Cancelled != 0 {
		t.Fatalf("summary = %+v: a revived worker must cost no cells", s)
	}
	if out.stats.DeadWorkers != 1 || out.stats.Revived != 1 {
		t.Fatalf("stats = %+v: want exactly one death and one revival", out.stats)
	}
	if out.stats.Steals < 1 {
		t.Fatalf("stats = %+v: the wedged cell must still be stolen", out.stats)
	}
	// The revived worker must have claimed and solved cells after rejoining
	// the rotation — that is the difference from permanent death. (Its first
	// claim wedged and was stolen, so every w1-completed cell is
	// post-revival; the rotation may even hand it its own stolen cell back.)
	revivedCells := 0
	for _, c := range out.rep.Cells {
		if c.Worker == "w1" {
			revivedCells++
		}
	}
	if revivedCells == 0 {
		t.Fatal("no merged cell was solved by the revived worker")
	}
}

func TestRunTripsBreakerOnRepeatedFailure(t *testing.T) {
	// Two one-shot lease-write faults: the worker's first two lease
	// acquisitions fail with HTTP 500, which is exactly MaxAttempts.
	faults, err := faultfs.Parse("fail:lease:1,fail:lease:2")
	if err != nil {
		t.Fatal(err)
	}
	w1 := newWorker(t, t.TempDir(), t.TempDir(), "w1", faults)

	rep, stats, err := Run(context.Background(), parseTemplate(t, oneCellTemplate), Config{
		Workers:     []string{w1.ts.URL},
		LeaseTTL:    time.Second,
		MaxAttempts: 2,
		Retry:       fastRetry(),
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Summary.Errors != 1 || rep.Summary.Done != 0 {
		t.Fatalf("summary = %+v", rep.Summary)
	}
	cell := rep.Cells[0]
	if cell.Status != sweep.StatusError || !strings.Contains(cell.Err, "circuit breaker open after 2 failed dispatches") {
		t.Fatalf("cell = %+v", cell)
	}
	if stats.BreakerTrips != 1 || stats.Retries != 1 || stats.Dispatched != 2 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestRunSurvivesTransientLeaseFault(t *testing.T) {
	// One one-shot lease fault with the breaker budget above it: the cell
	// must retry through the 500 and still solve.
	faults, err := faultfs.Parse("fail:lease:1")
	if err != nil {
		t.Fatal(err)
	}
	w1 := newWorker(t, t.TempDir(), t.TempDir(), "w1", faults)

	rep, stats, err := Run(context.Background(), parseTemplate(t, oneCellTemplate), Config{
		Workers:  []string{w1.ts.URL},
		LeaseTTL: time.Second,
		Retry:    fastRetry(),
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Summary.Done != 1 || rep.Summary.Errors != 0 {
		t.Fatalf("summary = %+v", rep.Summary)
	}
	if rep.Cells[0].Attempt != 2 || stats.Retries != 1 {
		t.Fatalf("cell attempt = %d, stats = %+v: want the second dispatch to win", rep.Cells[0].Attempt, stats)
	}
}

func TestRunAllWorkersDead(t *testing.T) {
	dead := httptest.NewServer(nil)
	url := dead.URL
	dead.Close()

	rep, stats, err := Run(context.Background(), parseTemplate(t, oneCellTemplate), Config{
		Workers:  []string{url},
		LeaseTTL: time.Second,
		Retry:    fastRetry(),
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Summary.Errors != 1 {
		t.Fatalf("summary = %+v", rep.Summary)
	}
	if !strings.Contains(rep.Cells[0].Err, "all workers dead") {
		t.Fatalf("cell error = %q", rep.Cells[0].Err)
	}
	if stats.DeadWorkers != 1 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestRunRejectsEmptyFleet(t *testing.T) {
	_, _, err := Run(context.Background(), parseTemplate(t, oneCellTemplate), Config{})
	if err == nil || !strings.Contains(err.Error(), "no workers") {
		t.Fatalf("err = %v", err)
	}
}

func TestWorkerPoolSkipsDead(t *testing.T) {
	p := newWorkerPool([]string{"a", "b", "c"})
	got := []string{}
	for i := 0; i < 3; i++ {
		u, ok := p.pick()
		if !ok {
			t.Fatal("pool empty too early")
		}
		got = append(got, u)
	}
	if fmt.Sprint(got) != "[a b c]" {
		t.Fatalf("round robin = %v", got)
	}
	if !p.markDead("b") || p.markDead("b") {
		t.Fatal("markDead should report only the first death")
	}
	for i := 0; i < 4; i++ {
		if u, ok := p.pick(); !ok || u == "b" {
			t.Fatalf("pick = %q, %v after b died", u, ok)
		}
	}
	p.markDead("a")
	p.markDead("c")
	if u, ok := p.pick(); ok {
		t.Fatalf("pick = %q on an all-dead pool", u)
	}
}
