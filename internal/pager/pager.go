// Package pager implements the slot-store paging layer under the
// out-of-core frontier: immutable column pages are persisted eagerly to
// checksummed page files (atomic temp+rename writes, like internal/store)
// and their in-memory copies are dropped LRU-first whenever the resident
// set exceeds a configurable hot-set budget. Owners register an eviction
// callback when a page is put or faulted; the callback drops the decoded
// in-memory representation, and the next access faults the page back in
// from disk.
//
// Pages are write-once: a frontier round never changes after it is built,
// so eviction needs no write-back and a fault needs no dirty tracking.
// Corrupt page files are quarantined (moved aside, never deleted) and the
// fault reports an error, mirroring internal/store's recovery contract.
package pager

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"log"
	"os"
	"path/filepath"
	"sync"

	"topocon/internal/fsx"
)

// pageMagic is the first line of every page file; the trailing version digit
// is bumped on incompatible format changes.
const pageMagic = "topocon-page1\n"

// Config collects the pager knobs.
type Config struct {
	// Dir is the directory page files are written to; created if absent.
	Dir string
	// HotBytes is the soft budget on resident page payload bytes; when the
	// hot set exceeds it, least-recently-used pages are evicted until it
	// fits. The most recently touched page is never evicted, so the hot set
	// may exceed the budget by one page. ≤ 0 means unlimited (pages are
	// still persisted, enabling checkpoints, but nothing is evicted).
	HotBytes int64
}

// Stats is a snapshot of the pager counters.
type Stats struct {
	// PagesWritten counts Put calls that persisted a new page file.
	PagesWritten int64 `json:"pagesWritten"`
	// PagesSpilled counts evictions of resident pages from the hot set.
	PagesSpilled int64 `json:"pagesSpilled"`
	// PagesFaulted counts cold pages re-read from disk.
	PagesFaulted int64 `json:"pagesFaulted"`
	// HotBytes is the current resident payload byte count.
	HotBytes int64 `json:"hotBytes"`
	// PeakHotBytes is the high-water mark of HotBytes.
	PeakHotBytes int64 `json:"peakHotBytes"`
	// DiskBytes is the total payload bytes persisted on disk.
	DiskBytes int64 `json:"diskBytes"`
	// HotPages and TotalPages count resident and registered pages.
	HotPages   int64 `json:"hotPages"`
	TotalPages int64 `json:"totalPages"`
	// QuarantineErrors counts corrupt pages whose move into quarantine/
	// itself failed (the damaged file stayed in place).
	QuarantineErrors int64 `json:"quarantineErrors,omitempty"`
}

// entry is one registered page; entries form a doubly-linked LRU list of
// the resident set (head = most recently used).
type entry struct {
	id         string
	size       int64
	resident   bool
	onEvict    func()
	prev, next *entry
}

// Pager is the slot store. All methods are safe for concurrent use; evict
// callbacks run outside the pager lock.
type Pager struct {
	dir    string
	budget int64

	mu      sync.Mutex
	entries map[string]*entry
	head    *entry // most recently used resident page
	tail    *entry // least recently used resident page

	hotBytes       int64
	peakHotBytes   int64
	diskBytes      int64
	written        int64
	spilled        int64
	faulted        int64
	quarantineErrs int64
}

// New opens a pager over cfg.Dir, creating the directory if needed.
//
//topocon:export
func New(cfg Config) (*Pager, error) {
	if cfg.Dir == "" {
		return nil, errors.New("pager: empty directory")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("pager: create dir: %w", err)
	}
	return &Pager{
		dir:     cfg.Dir,
		budget:  cfg.HotBytes,
		entries: make(map[string]*entry),
	}, nil
}

// Dir returns the page directory.
func (pg *Pager) Dir() string { return pg.dir }

// HotBudget returns the configured hot-set budget (≤ 0 = unlimited).
func (pg *Pager) HotBudget() int64 { return pg.budget }

// validID rejects ids that could escape the page directory or collide with
// the quarantine subdirectory.
func validID(id string) error {
	if id == "" {
		return errors.New("pager: empty page id")
	}
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
		default:
			return fmt.Errorf("pager: invalid page id %q", id)
		}
	}
	return nil
}

func (pg *Pager) pagePath(id string) string {
	return filepath.Join(pg.dir, id+".page")
}

// encodePage frames a payload: magic, uvarint id length + id, uvarint
// payload length + payload, CRC32 (IEEE, little-endian) over all preceding
// bytes.
func encodePage(id string, payload []byte) []byte {
	buf := make([]byte, 0, len(pageMagic)+2*binary.MaxVarintLen64+len(id)+len(payload)+4)
	buf = append(buf, pageMagic...)
	buf = binary.AppendUvarint(buf, uint64(len(id)))
	buf = append(buf, id...)
	buf = binary.AppendUvarint(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	sum := crc32.ChecksumIEEE(buf)
	return binary.LittleEndian.AppendUint32(buf, sum)
}

// decodePage validates a page file read for the given id and returns the
// payload. Every framing violation is an error; nothing is guessed.
func decodePage(id string, data []byte) ([]byte, error) {
	if len(data) < len(pageMagic)+4 {
		return nil, errors.New("short page file")
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if got, want := binary.LittleEndian.Uint32(tail), crc32.ChecksumIEEE(body); got != want {
		return nil, fmt.Errorf("crc mismatch: got %08x want %08x", got, want)
	}
	if string(body[:len(pageMagic)]) != pageMagic {
		return nil, errors.New("bad magic")
	}
	rest := body[len(pageMagic):]
	idLen, k := binary.Uvarint(rest)
	if k <= 0 || idLen > uint64(len(rest)-k) {
		return nil, errors.New("bad id length")
	}
	rest = rest[k:]
	if string(rest[:idLen]) != id {
		return nil, fmt.Errorf("page id mismatch: file carries %q", rest[:idLen])
	}
	rest = rest[idLen:]
	payLen, k := binary.Uvarint(rest)
	if k <= 0 || payLen != uint64(len(rest)-k) {
		return nil, errors.New("bad payload length")
	}
	return rest[k:], nil
}

// Put persists a new page and registers it resident. onEvict is invoked
// (outside the pager lock) if the page is later evicted from the hot set;
// it must drop the owner's decoded copy so the next access faults. Put on
// an already-registered id is a programming error.
func (pg *Pager) Put(id string, payload []byte, onEvict func()) error {
	if err := pg.persist(id, payload); err != nil {
		return err
	}
	pg.mu.Lock()
	if _, ok := pg.entries[id]; ok {
		pg.mu.Unlock()
		return fmt.Errorf("pager: page %q already registered", id)
	}
	e := &entry{id: id, size: int64(len(payload)), resident: true, onEvict: onEvict}
	pg.entries[id] = e
	pg.pushFront(e)
	pg.hotBytes += e.size
	if pg.hotBytes > pg.peakHotBytes {
		pg.peakHotBytes = pg.hotBytes
	}
	pg.diskBytes += e.size
	pg.written++
	evicted := pg.evictOverBudget(e)
	pg.mu.Unlock()
	runEvicts(evicted)
	return nil
}

// persist writes the framed page file atomically (fsx.AtomicWrite: temp
// sibling, sync, rename). An existing file for the id is left untouched:
// pages are content-stable, so re-persisting after a resume is a no-op.
func (pg *Pager) persist(id string, payload []byte) error {
	if err := validID(id); err != nil {
		return err
	}
	path := pg.pagePath(id)
	if _, err := os.Stat(path); err == nil {
		return nil
	}
	if err := fsx.AtomicWrite(path, encodePage(id, payload), 0o644); err != nil {
		return fmt.Errorf("pager: write page %q: %w", id, err)
	}
	return nil
}

// Persist writes a page file without registering it in the hot set. It is
// the checkpoint path for pages whose owner keeps them unconditionally
// resident (the head frontier round): the file makes the page restorable,
// and a later Put of the same id registers it without rewriting.
func (pg *Pager) Persist(id string, payload []byte) error {
	if err := pg.persist(id, payload); err != nil {
		return err
	}
	pg.mu.Lock()
	pg.written++
	pg.mu.Unlock()
	return nil
}

// ReadPage reads and validates a page file without touching registration —
// the restore path, which decodes pages before any frontier exists to own
// them. Corrupt files are quarantined, like Fault.
func (pg *Pager) ReadPage(id string) ([]byte, error) {
	if err := validID(id); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(pg.pagePath(id))
	if err != nil {
		return nil, fmt.Errorf("pager: read page %q: %w", id, err)
	}
	payload, err := decodePage(id, data)
	if err != nil {
		pg.quarantine(id)
		return nil, fmt.Errorf("pager: page %q corrupt (quarantined): %w", id, err)
	}
	return payload, nil
}

// SizeOf returns the payload size of a registered page.
func (pg *Pager) SizeOf(id string) (int64, bool) {
	pg.mu.Lock()
	defer pg.mu.Unlock()
	e, ok := pg.entries[id]
	if !ok {
		return 0, false
	}
	return e.size, true
}

// Adopt registers an already-persisted page (from a checkpoint being
// resumed) as cold. size is the payload byte count recorded alongside the
// page reference; the file itself is validated on first Fault.
func (pg *Pager) Adopt(id string, size int64, onEvict func()) error {
	if err := validID(id); err != nil {
		return err
	}
	pg.mu.Lock()
	defer pg.mu.Unlock()
	if _, ok := pg.entries[id]; ok {
		return fmt.Errorf("pager: page %q already registered", id)
	}
	pg.entries[id] = &entry{id: id, size: size, onEvict: onEvict}
	pg.diskBytes += size
	return nil
}

// Fault reads a registered page back from disk, verifies its framing and
// checksum, marks it resident (most recently used) and returns the payload.
// A corrupt file is quarantined and reported as an error. onEvict replaces
// the entry's eviction callback for the new residency.
func (pg *Pager) Fault(id string, onEvict func()) ([]byte, error) {
	pg.mu.Lock()
	e, ok := pg.entries[id]
	pg.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("pager: fault of unregistered page %q", id)
	}
	data, err := os.ReadFile(pg.pagePath(id))
	if err != nil {
		return nil, fmt.Errorf("pager: fault page %q: %w", id, err)
	}
	payload, err := decodePage(id, data)
	if err != nil {
		pg.quarantine(id)
		return nil, fmt.Errorf("pager: page %q corrupt (quarantined): %w", id, err)
	}
	pg.mu.Lock()
	e.onEvict = onEvict
	if !e.resident {
		e.resident = true
		e.size = int64(len(payload))
		pg.pushFront(e)
		pg.hotBytes += e.size
		if pg.hotBytes > pg.peakHotBytes {
			pg.peakHotBytes = pg.hotBytes
		}
		pg.faulted++
	} else {
		pg.touch(e)
	}
	evicted := pg.evictOverBudget(e)
	pg.mu.Unlock()
	runEvicts(evicted)
	return payload, nil
}

// Release drops a page from the hot set without invoking its eviction
// callback (the owner already dropped its copy).
func (pg *Pager) Release(id string) {
	pg.mu.Lock()
	defer pg.mu.Unlock()
	if e, ok := pg.entries[id]; ok && e.resident {
		pg.unlink(e)
		e.resident = false
		e.onEvict = nil
		pg.hotBytes -= e.size
		pg.spilled++
	}
}

// quarantine moves a damaged page file into the quarantine/ subdirectory,
// best-effort: recovery must never be blocked by cleanup failures — but a
// failed move is logged and counted, never swallowed, because a page that
// cannot be moved aside will be re-read (and re-fail) on every fault.
func (pg *Pager) quarantine(id string) {
	qdir := filepath.Join(pg.dir, "quarantine")
	err := os.MkdirAll(qdir, 0o755)
	if err == nil {
		err = os.Rename(pg.pagePath(id), filepath.Join(qdir, id+".page"))
	}
	if err != nil {
		pg.mu.Lock()
		pg.quarantineErrs++
		pg.mu.Unlock()
		log.Printf("pager: quarantine of page %q: %v", id, err)
	}
}

// Stats returns a snapshot of the counters.
func (pg *Pager) Stats() Stats {
	pg.mu.Lock()
	defer pg.mu.Unlock()
	var hot int64
	for e := pg.head; e != nil; e = e.next {
		hot++
	}
	return Stats{
		PagesWritten:     pg.written,
		PagesSpilled:     pg.spilled,
		PagesFaulted:     pg.faulted,
		HotBytes:         pg.hotBytes,
		PeakHotBytes:     pg.peakHotBytes,
		DiskBytes:        pg.diskBytes,
		HotPages:         hot,
		TotalPages:       int64(len(pg.entries)),
		QuarantineErrors: pg.quarantineErrs,
	}
}

// evictOverBudget (called with pg.mu held) pops least-recently-used pages
// until the hot set fits the budget, never evicting the protected entry
// (the page the caller is about to use). It returns the callbacks to run
// once the lock is released.
func (pg *Pager) evictOverBudget(protected *entry) []func() {
	if pg.budget <= 0 {
		return nil
	}
	var evicts []func()
	for pg.hotBytes > pg.budget {
		victim := pg.tail
		for victim == protected {
			victim = victim.prev
		}
		if victim == nil {
			break
		}
		pg.unlink(victim)
		victim.resident = false
		pg.hotBytes -= victim.size
		pg.spilled++
		if victim.onEvict != nil {
			evicts = append(evicts, victim.onEvict)
			victim.onEvict = nil
		}
	}
	return evicts
}

func runEvicts(fns []func()) {
	for _, fn := range fns {
		fn()
	}
}

// LRU list helpers; all called with pg.mu held.

func (pg *Pager) pushFront(e *entry) {
	e.prev, e.next = nil, pg.head
	if pg.head != nil {
		pg.head.prev = e
	}
	pg.head = e
	if pg.tail == nil {
		pg.tail = e
	}
}

func (pg *Pager) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		pg.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		pg.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (pg *Pager) touch(e *entry) {
	if pg.head == e {
		return
	}
	pg.unlink(e)
	pg.pushFront(e)
}
