package pager

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func newTestPager(t *testing.T, budget int64) *Pager {
	t.Helper()
	pg, err := New(Config{Dir: t.TempDir(), HotBytes: budget})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return pg
}

func TestPutFaultRoundTrip(t *testing.T) {
	pg := newTestPager(t, 0)
	payload := []byte("hello columnar world")
	if err := pg.Put("round-001", payload, nil); err != nil {
		t.Fatalf("Put: %v", err)
	}
	pg.Release("round-001")
	got, err := pg.Fault("round-001", nil)
	if err != nil {
		t.Fatalf("Fault: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("Fault returned %q, want %q", got, payload)
	}
	st := pg.Stats()
	if st.PagesWritten != 1 || st.PagesFaulted != 1 || st.PagesSpilled != 1 {
		t.Fatalf("stats = %+v, want 1 written / 1 faulted / 1 spilled", st)
	}
}

func TestBudgetEvictsLRU(t *testing.T) {
	pg := newTestPager(t, 25)
	evicted := map[string]bool{}
	page := func(id string) {
		if err := pg.Put(id, bytes.Repeat([]byte{0xAB}, 10), func() { evicted[id] = true }); err != nil {
			t.Fatalf("Put(%s): %v", id, err)
		}
	}
	page("a")
	page("b")
	if len(evicted) != 0 {
		t.Fatalf("evictions before budget exceeded: %v", evicted)
	}
	page("c") // 30 bytes hot > 25: the LRU page "a" must go
	if !evicted["a"] || evicted["b"] || evicted["c"] {
		t.Fatalf("evicted = %v, want only a", evicted)
	}
	st := pg.Stats()
	if st.HotBytes != 20 || st.HotPages != 2 || st.TotalPages != 3 {
		t.Fatalf("stats = %+v, want hot 20 bytes / 2 pages of 3", st)
	}
	if st.PeakHotBytes < 20 || st.PeakHotBytes > 30 {
		t.Fatalf("peak hot bytes %d out of range", st.PeakHotBytes)
	}
	// Faulting "a" back in must evict the now-LRU "b", not the faulted page.
	if _, err := pg.Fault("a", func() { evicted["a2"] = true }); err != nil {
		t.Fatalf("Fault(a): %v", err)
	}
	if !evicted["b"] {
		t.Fatalf("faulting a did not evict b: %v", evicted)
	}
}

func TestProtectedPageSurvivesTinyBudget(t *testing.T) {
	pg := newTestPager(t, 5) // smaller than any single page
	if err := pg.Put("only", bytes.Repeat([]byte{1}, 10), nil); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if st := pg.Stats(); st.HotPages != 1 {
		t.Fatalf("protected page was evicted: %+v", st)
	}
}

func TestFaultCorruptPageQuarantines(t *testing.T) {
	for name, corrupt := range map[string]func([]byte) []byte{
		"truncated": func(b []byte) []byte { return b[:len(b)/2] },
		"bitflip": func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)/2] ^= 0x40
			return c
		},
	} {
		t.Run(name, func(t *testing.T) {
			pg := newTestPager(t, 0)
			if err := pg.Put("victim", []byte("some page payload bytes"), nil); err != nil {
				t.Fatalf("Put: %v", err)
			}
			pg.Release("victim")
			path := filepath.Join(pg.Dir(), "victim.page")
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("read page: %v", err)
			}
			if err := os.WriteFile(path, corrupt(data), 0o644); err != nil {
				t.Fatalf("corrupt page: %v", err)
			}
			if _, err := pg.Fault("victim", nil); err == nil {
				t.Fatal("Fault of corrupt page succeeded")
			} else if !strings.Contains(err.Error(), "quarantined") {
				t.Fatalf("Fault error %q does not mention quarantine", err)
			}
			if _, err := os.Stat(filepath.Join(pg.Dir(), "quarantine", "victim.page")); err != nil {
				t.Fatalf("corrupt page not quarantined: %v", err)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatalf("corrupt page still in place: %v", err)
			}
		})
	}
}

func TestAdoptThenFault(t *testing.T) {
	dir := t.TempDir()
	pg1, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	payload := []byte("persisted across processes")
	if err := pg1.Put("r1", payload, nil); err != nil {
		t.Fatalf("Put: %v", err)
	}
	// A fresh pager over the same dir (the resume path) adopts by reference.
	pg2, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := pg2.Adopt("r1", int64(len(payload)), nil); err != nil {
		t.Fatalf("Adopt: %v", err)
	}
	got, err := pg2.Fault("r1", nil)
	if err != nil {
		t.Fatalf("Fault after Adopt: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("Fault returned %q, want %q", got, payload)
	}
	if err := pg2.Adopt("r1", 1, nil); err == nil {
		t.Fatal("double Adopt succeeded")
	}
}

func TestInvalidIDs(t *testing.T) {
	pg := newTestPager(t, 0)
	for _, id := range []string{"", "../escape", "a/b", "sp ace"} {
		if err := pg.Put(id, []byte("x"), nil); err == nil {
			t.Fatalf("Put(%q) succeeded", id)
		}
	}
	if _, err := pg.Fault("never-registered", nil); err == nil {
		t.Fatal("Fault of unregistered page succeeded")
	}
}
