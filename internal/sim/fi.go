package sim

import (
	"topocon/internal/check"
	"topocon/internal/ptg"
)

// FullInfo is the full-information protocol: every round a process
// broadcasts everything it causally knows and merges what it receives. Its
// knowledge after round t is exactly its view V_{p}(t) of the process-time
// graph, so any check.Rule — in particular the universal algorithms of
// Theorems 5.5 and 6.7 — can be evaluated locally.
//
// This is the runnable counterpart of the paper's universal construction:
// no global information is consulted; the process reconstructs its own
// hash-consed ViewID from received knowledge alone (and the tests verify
// it coincides with the globally-computed one).
type FullInfo struct {
	rule check.Rule

	self, n int
	round   int
	// inputs[q] is x_q for heard processes; heard gates validity.
	inputs []int
	heard  uint64
	// inEdges[node] is the known in-neighbourhood of process-time node
	// (q,s), s ≥ 1, for every node in the causal past.
	inEdges map[ptg.TimeNode]uint64
	// receivedFrom accumulates this round's senders.
	receivedFrom uint64

	decided  bool
	decision int
}

var _ Process = (*FullInfo)(nil)

// knowledgeSnapshot is the immutable message payload: a copy of the
// sender's causal knowledge.
type knowledgeSnapshot struct {
	inputs  []int
	heard   uint64
	inEdges map[ptg.TimeNode]uint64
}

// NewFullInfo returns a factory of full-information processes driven by
// the rule.
func NewFullInfo(rule check.Rule) func() Process {
	return func() Process { return &FullInfo{rule: rule} }
}

// Init implements Process.
func (f *FullInfo) Init(self, n, input int) {
	f.self, f.n = self, n
	f.round = 0
	f.inputs = make([]int, n)
	for q := range f.inputs {
		f.inputs[q] = -1
	}
	f.inputs[self] = input
	f.heard = 1 << uint(self)
	f.inEdges = make(map[ptg.TimeNode]uint64, 16)
	f.receivedFrom = 0
	f.decided = false
	f.tryDecide()
}

// Message implements Process: broadcast a snapshot of all knowledge.
func (f *FullInfo) Message() Message {
	edges := make(map[ptg.TimeNode]uint64, len(f.inEdges))
	for k, v := range f.inEdges {
		edges[k] = v
	}
	return knowledgeSnapshot{
		inputs:  append([]int(nil), f.inputs...),
		heard:   f.heard,
		inEdges: edges,
	}
}

// Deliver implements Process: merge the sender's knowledge.
func (f *FullInfo) Deliver(from int, msg Message) {
	f.receivedFrom |= 1 << uint(from)
	if from == f.self {
		return // own state is already known
	}
	snap, ok := msg.(knowledgeSnapshot)
	if !ok {
		// Foreign message type: a full-information process can only be
		// composed with its own kind; ignoring would silently corrupt
		// every experiment, so fail loudly.
		panic("sim: FullInfo received a non-knowledge message")
	}
	f.heard |= snap.heard
	for q, x := range snap.inputs {
		if x >= 0 {
			f.inputs[q] = x
		}
	}
	for node, in := range snap.inEdges {
		f.inEdges[node] = in
	}
}

// EndRound implements Process: close the round, record the own in-edge
// set, and evaluate the decision rule.
func (f *FullInfo) EndRound() {
	f.round++
	f.inEdges[ptg.TimeNode{Proc: f.self, Time: f.round}] = f.receivedFrom
	f.receivedFrom = 0
	f.tryDecide()
}

// Decision implements Process.
func (f *FullInfo) Decision() (int, bool) { return f.decision, f.decided }

func (f *FullInfo) tryDecide() {
	if f.decided {
		return
	}
	id := check.NoViewID
	if in := f.rule.Interner(); in != nil {
		id = f.viewID(in)
	}
	v := check.NewView(f.round, f.self, id, f.heard, f.inputs)
	if value, ok := f.rule.Decide(v); ok {
		f.decided = true
		f.decision = value
	}
}

// viewID reconstructs the hash-consed identity of the own view from local
// knowledge, bottom-up over the causal cone.
func (f *FullInfo) viewID(in *ptg.Interner) ptg.ViewID {
	memo := make(map[ptg.TimeNode]ptg.ViewID, len(f.inEdges)+f.n)
	var id func(node ptg.TimeNode) ptg.ViewID
	id = func(node ptg.TimeNode) ptg.ViewID {
		if v, ok := memo[node]; ok {
			return v
		}
		var out ptg.ViewID
		if node.Time == 0 {
			out = in.Leaf(node.Proc, f.inputs[node.Proc])
		} else {
			mask := f.inEdges[node]
			qs := make([]int, 0, f.n)
			children := make([]ptg.ViewID, 0, f.n)
			for q := 0; q < f.n; q++ {
				if mask&(1<<uint(q)) != 0 {
					qs = append(qs, q)
					children = append(children, id(ptg.TimeNode{Proc: q, Time: node.Time - 1}))
				}
			}
			out = in.Node(node.Proc, qs, children)
		}
		memo[node] = out
		return out
	}
	return id(ptg.TimeNode{Proc: f.self, Time: f.round})
}
