package sim

import (
	"math/rand"

	"topocon/internal/combi"
	"topocon/internal/graph"
	"topocon/internal/ma"
	"topocon/internal/ptg"
)

// Exhaustive executes the factory's processes on every admissible run of
// the adversary with the given input domain and round count, calling yield
// with each trace and the prefix metadata until yield returns false.
func Exhaustive(adv ma.Adversary, factory func() Process, inputDomain, rounds int,
	yield func(tr *Trace, pfx ma.Prefix) bool) {
	n := adv.N()
	combi.Words(inputDomain, n, func(inputs []int) bool {
		base := ptg.NewRun(inputs)
		ok := true
		ma.EnumeratePrefixes(adv, rounds, func(pfx ma.Prefix) bool {
			run := base
			for _, g := range pfx.Graphs {
				run = run.Extend(g)
			}
			if !yield(Execute(factory, run), pfx) {
				ok = false
				return false
			}
			return true
		})
		return ok
	})
}

// RandomRun samples one admissible run: uniform inputs and a uniformly
// random adversary choice each round.
func RandomRun(adv ma.Adversary, rng *rand.Rand, inputDomain, rounds int) ptg.Run {
	n := adv.N()
	inputs := make([]int, n)
	for p := range inputs {
		inputs[p] = rng.Intn(inputDomain)
	}
	run := ptg.NewRun(inputs)
	s := adv.Start()
	for t := 0; t < rounds; t++ {
		choices := adv.Choices(s)
		g := choices[rng.Intn(len(choices))]
		run = run.Extend(g)
		s = adv.Step(s, g)
	}
	return run
}

// RandomDoneRun samples an admissible run whose liveness obligations are
// discharged: it biases the adversary walk toward obligation-discharging
// choices once `forceAfter` rounds have passed without discharge. The
// returned bool reports whether discharge was achieved within the round
// budget.
func RandomDoneRun(adv ma.Adversary, rng *rand.Rand, inputDomain, rounds, forceAfter int) (ptg.Run, bool) {
	n := adv.N()
	inputs := make([]int, n)
	for p := range inputs {
		inputs[p] = rng.Intn(inputDomain)
	}
	run := ptg.NewRun(inputs)
	s := adv.Start()
	for t := 0; t < rounds; t++ {
		choices := adv.Choices(s)
		var g graph.Graph
		if !adv.Done(s) && t >= forceAfter {
			// Greedy: prefer a choice that makes progress toward Done,
			// measured by reaching a Done state soonest in a shallow
			// lookahead.
			g = greedyDoneChoice(adv, s, choices, rounds-t)
		} else {
			g = choices[rng.Intn(len(choices))]
		}
		run = run.Extend(g)
		s = adv.Step(s, g)
	}
	return run, adv.Done(s)
}

// greedyDoneChoice picks the choice minimizing the depth to a Done state
// within the given budget (first choice wins ties).
func greedyDoneChoice(adv ma.Adversary, s ma.State, choices []graph.Graph, budget int) graph.Graph {
	best := choices[0]
	bestDepth := budget + 1
	for _, g := range choices {
		if d := doneDepth(adv, adv.Step(s, g), budget-1, bestDepth-1); d+1 < bestDepth {
			bestDepth = d + 1
			best = g
		}
	}
	return best
}

// doneDepth returns the least number of rounds to reach a Done state from
// s, up to the budget (returns budget+1 when unreachable within it, and
// prunes branches that cannot beat `cap`).
func doneDepth(adv ma.Adversary, s ma.State, budget, cap int) int {
	if adv.Done(s) {
		return 0
	}
	if budget <= 0 || cap <= 0 {
		return budget + 1
	}
	best := budget + 1
	for _, g := range adv.Choices(s) {
		d := doneDepth(adv, adv.Step(s, g), budget-1, min(best, cap)-1) + 1
		if d < best {
			best = d
		}
	}
	return best
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
