// Package sim is the synchronous lock-step execution substrate: it runs
// deterministic message-passing consensus processes round by round under a
// given communication-graph sequence (Section 2 of the paper), records
// decisions, and checks the consensus properties (T), (A), (V) of
// Definition 5.1.
//
// The package hosts the full-information process executing the universal
// decision rules extracted by package check, as well as classic baselines
// (FloodMin). Exhaustive and randomized drivers enumerate or sample
// admissible runs of a message adversary.
package sim

import (
	"fmt"

	"topocon/internal/ptg"
)

// Message is an opaque round payload. Senders must treat emitted messages
// as immutable; the runner delivers the same value to every receiver.
type Message any

// Process is a deterministic consensus process. The runner drives it
// through rounds: Message is collected from every process, messages are
// delivered according to the round's communication graph (self-loops
// included), then EndRound fires.
type Process interface {
	// Init resets the process with its identity (0-based), the process
	// count, and its input value. A process may ignore n if the algorithm
	// works without knowing it.
	Init(self, n, input int)
	// Message returns the payload to broadcast this round.
	Message() Message
	// Deliver hands a message received this round from process `from`.
	Deliver(from int, msg Message)
	// EndRound marks the end of the current round, after all deliveries.
	EndRound()
	// Decision returns the decided value, if any. Decisions must be
	// irrevocable; the runner verifies this.
	Decision() (int, bool)
}

// Trace records the outcome of executing a run.
type Trace struct {
	// Run is the executed input assignment and graph sequence.
	Run ptg.Run
	// DecisionRound[p] is the round at which p decided (0 = before any
	// communication), or -1.
	DecisionRound []int
	// Value[p] is p's decision value (valid when DecisionRound[p] ≥ 0).
	Value []int
}

// Decided reports whether every process has decided.
func (tr *Trace) Decided() bool {
	for _, r := range tr.DecisionRound {
		if r < 0 {
			return false
		}
	}
	return true
}

// LastDecisionRound returns the latest decision round, or -1 if nobody
// decided.
func (tr *Trace) LastDecisionRound() int {
	last := -1
	for _, r := range tr.DecisionRound {
		if r > last {
			last = r
		}
	}
	return last
}

// Execute runs freshly-initialized processes from the factory over the
// run's graph sequence and returns the trace. It panics if a process
// revokes or changes a decision (a broken algorithm is a programming
// error, and hiding it would invalidate every experiment built on top).
//
//topocon:export
func Execute(factory func() Process, run ptg.Run) *Trace {
	n := run.N()
	procs := make([]Process, n)
	for p := 0; p < n; p++ {
		procs[p] = factory()
		procs[p].Init(p, n, run.Inputs[p])
	}
	tr := &Trace{
		Run:           run,
		DecisionRound: make([]int, n),
		Value:         make([]int, n),
	}
	for p := 0; p < n; p++ {
		tr.DecisionRound[p] = -1
	}
	record := func(round int) {
		for p := 0; p < n; p++ {
			v, ok := procs[p].Decision()
			switch {
			case !ok && tr.DecisionRound[p] >= 0:
				panic(fmt.Sprintf("sim: process %d revoked its decision in round %d", p+1, round))
			case ok && tr.DecisionRound[p] >= 0 && tr.Value[p] != v:
				panic(fmt.Sprintf("sim: process %d changed its decision in round %d", p+1, round))
			case ok && tr.DecisionRound[p] < 0:
				tr.DecisionRound[p] = round
				tr.Value[p] = v
			}
		}
	}
	record(0)
	msgs := make([]Message, n)
	for t := 1; t <= run.Rounds(); t++ {
		g := run.Graph(t)
		for p := 0; p < n; p++ {
			msgs[p] = procs[p].Message()
		}
		for q := 0; q < n; q++ {
			in := g.In(q)
			for p := 0; p < n; p++ {
				if in&(1<<uint(p)) != 0 {
					procs[q].Deliver(p, msgs[p])
				}
			}
		}
		for p := 0; p < n; p++ {
			procs[p].EndRound()
		}
		record(t)
	}
	return tr
}

// Violation describes a consensus property breach in a trace.
type Violation struct {
	// Property is "agreement", "validity" or "termination".
	Property string
	// Detail is a human-readable explanation.
	Detail string
}

// String renders the violation.
func (v Violation) String() string { return v.Property + ": " + v.Detail }

// CheckConsensus verifies agreement and validity on the trace, plus
// termination when required (finite prefixes can only require termination
// where the adversary's obligations have been discharged — the caller
// decides).
func CheckConsensus(tr *Trace, requireTermination bool) []Violation {
	var out []Violation
	agreed := -1
	for p := range tr.DecisionRound {
		if tr.DecisionRound[p] < 0 {
			if requireTermination {
				out = append(out, Violation{
					Property: "termination",
					Detail:   fmt.Sprintf("process %d undecided after %d rounds in %v", p+1, tr.Run.Rounds(), tr.Run),
				})
			}
			continue
		}
		if agreed < 0 {
			agreed = tr.Value[p]
		} else if tr.Value[p] != agreed {
			out = append(out, Violation{
				Property: "agreement",
				Detail:   fmt.Sprintf("values %v in %v", tr.Value, tr.Run),
			})
		}
	}
	if v, ok := tr.Run.IsValent(); ok && agreed >= 0 && agreed != v {
		out = append(out, Violation{
			Property: "validity",
			Detail:   fmt.Sprintf("decided %d on %d-valent run %v", agreed, v, tr.Run),
		})
	}
	return out
}

// CheckStrongValidity verifies the strong validity condition the paper
// mentions after Definition 5.1: every decided value must be the input of
// some process in the run.
func CheckStrongValidity(tr *Trace) []Violation {
	inputs := make(map[int]bool, len(tr.Run.Inputs))
	for _, x := range tr.Run.Inputs {
		inputs[x] = true
	}
	var out []Violation
	for p := range tr.DecisionRound {
		if tr.DecisionRound[p] < 0 {
			continue
		}
		if !inputs[tr.Value[p]] {
			out = append(out, Violation{
				Property: "strong-validity",
				Detail: fmt.Sprintf("process %d decided %d, not an input of %v",
					p+1, tr.Value[p], tr.Run),
			})
		}
	}
	return out
}
