package sim

// FloodMin is the classic flooding baseline: broadcast the smallest input
// value seen so far and decide it after a fixed number of rounds. It is
// correct exactly when the adversary guarantees that by that round the
// minimum has stabilized at every process (e.g. strongly-connected rounds
// with bounded dynamic diameter); under general message adversaries it
// violates agreement — the experiments use it as the combinatorial foil to
// the topological universal algorithm.
type FloodMin struct {
	// DecideRound is the round at which the process decides.
	DecideRound int

	min      int
	round    int
	decided  bool
	decision int
}

var _ Process = (*FloodMin)(nil)

// NewFloodMin returns a factory of FloodMin processes deciding after the
// given round.
func NewFloodMin(decideRound int) func() Process {
	return func() Process { return &FloodMin{DecideRound: decideRound} }
}

// Init implements Process.
func (f *FloodMin) Init(_, _, input int) {
	f.min = input
	f.round = 0
	f.decided = f.DecideRound <= 0
	f.decision = input
}

// Message implements Process.
func (f *FloodMin) Message() Message { return f.min }

// Deliver implements Process.
func (f *FloodMin) Deliver(_ int, msg Message) {
	v, ok := msg.(int)
	if !ok {
		panic("sim: FloodMin received a non-int message")
	}
	if v < f.min {
		f.min = v
	}
}

// EndRound implements Process: decide (irrevocably) the current minimum
// when the decision round is reached.
func (f *FloodMin) EndRound() {
	f.round++
	if !f.decided && f.round >= f.DecideRound {
		f.decided = true
		f.decision = f.min
	}
}

// Decision implements Process.
func (f *FloodMin) Decision() (int, bool) { return f.decision, f.decided }
