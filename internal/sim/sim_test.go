package sim

import (
	"math/rand"
	"testing"

	"topocon/internal/check"
	"topocon/internal/graph"
	"topocon/internal/ma"
	"topocon/internal/ptg"
)

func solve(t *testing.T, adv ma.Adversary, opts check.Options) *check.Result {
	t.Helper()
	res, err := check.Consensus(adv, opts)
	if err != nil {
		t.Fatalf("Consensus(%s): %v", adv.Name(), err)
	}
	if res.Verdict != check.VerdictSolvable {
		t.Fatalf("Consensus(%s) = %v, want solvable", adv.Name(), res.Verdict)
	}
	return res
}

// captureRule wraps a rule and records the view IDs it is shown, keyed by
// (time, proc) — used to cross-validate the locally reconstructed IDs
// against globally computed ones.
type captureRule struct {
	inner check.Rule
	seen  map[[2]int]ptg.ViewID
}

func (c *captureRule) Name() string            { return "capture(" + c.inner.Name() + ")" }
func (c *captureRule) Interner() *ptg.Interner { return c.inner.Interner() }
func (c *captureRule) Decide(v check.View) (int, bool) {
	c.seen[[2]int{v.Time, v.Proc}] = v.ID
	return c.inner.Decide(v)
}

// TestFullInfoViewIDsMatchGlobal: the message-passing process must
// reconstruct exactly the globally-computed hash-consed views — the bridge
// between the executable protocol and the topological analysis.
func TestFullInfoViewIDsMatchGlobal(t *testing.T) {
	res := solve(t, ma.LossyLink2(), check.Options{})
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 25; iter++ {
		run := RandomRun(ma.LossyLink2(), rng, 2, 4)
		capture := &captureRule{inner: res.Rule, seen: make(map[[2]int]ptg.ViewID)}
		// A fresh undecided-forever variant would capture all rounds; the
		// universal rule decides early, so captures stop then. Compare
		// whatever was captured.
		Execute(NewFullInfo(capture), run)
		global := ptg.ComputeViews(res.Map.Interner(), run)
		for key, gotID := range capture.seen {
			tt, p := key[0], key[1]
			if wantID := global.ID(tt, p); gotID != wantID {
				t.Fatalf("run %v: local view ID at (t=%d,p=%d) = %d, global = %d",
					run, tt, p+1, gotID, wantID)
			}
		}
	}
}

// TestUniversalLossyLink2Exhaustive is E9 for the compact case: the
// universal algorithm satisfies (T),(A),(V) on every admissible run and
// decides in round ≤ 1.
func TestUniversalLossyLink2Exhaustive(t *testing.T) {
	res := solve(t, ma.LossyLink2(), check.Options{})
	factory := NewFullInfo(res.Rule)
	count := 0
	Exhaustive(ma.LossyLink2(), factory, 2, 3, func(tr *Trace, _ ma.Prefix) bool {
		count++
		for _, v := range CheckConsensus(tr, true) {
			t.Errorf("violation: %v", v)
		}
		if last := tr.LastDecisionRound(); last > 1 {
			t.Errorf("run %v: decision round %d, want ≤ 1", tr.Run, last)
		}
		return true
	})
	if count != 4*8 {
		t.Errorf("executed %d runs, want 32", count)
	}
}

// TestUniversalSingleGraphExhaustive: {<->} and {<-} solvable adversaries
// run clean through the message-passing simulator.
func TestUniversalSingleGraphExhaustive(t *testing.T) {
	for _, adv := range []*ma.Oblivious{
		ma.MustOblivious("", graph.Both),
		ma.MustOblivious("", graph.Left),
	} {
		res := solve(t, adv, check.Options{})
		Exhaustive(adv, NewFullInfo(res.Rule), 2, 3, func(tr *Trace, _ ma.Prefix) bool {
			for _, v := range CheckConsensus(tr, true) {
				t.Errorf("%s: violation: %v", adv.Name(), v)
			}
			return true
		})
	}
}

// TestBroadcastRuleNonCompact is E9 for the non-compact case: under the
// eventually-stable adversary, the broadcast rule satisfies (T),(A),(V) on
// every admissible prefix whose obligations are discharged, and never
// violates (A),(V) on pending prefixes.
func TestBroadcastRuleNonCompact(t *testing.T) {
	adv := ma.MustEventuallyStable("",
		[]graph.Graph{graph.Left, graph.Both},
		[]graph.Graph{graph.Right}, 2)
	res := solve(t, adv, check.Options{MaxHorizon: 6})
	if res.Broadcaster != 0 {
		t.Fatalf("broadcaster = %d, want process 1", res.Broadcaster+1)
	}
	factory := NewFullInfo(res.Rule)
	Exhaustive(adv, factory, 2, 5, func(tr *Trace, pfx ma.Prefix) bool {
		requireTermination := pfx.Done && pfx.DoneAt <= 3
		for _, v := range CheckConsensus(tr, requireTermination) {
			t.Errorf("violation (doneAt=%d): %v", pfx.DoneAt, v)
		}
		return true
	})
}

// TestBroadcastRuleLongRandomRuns drives long randomized admissible runs
// through the non-compact universal algorithm.
func TestBroadcastRuleLongRandomRuns(t *testing.T) {
	adv := ma.MustEventuallyStable("",
		[]graph.Graph{graph.Left, graph.Both},
		[]graph.Graph{graph.Right}, 2)
	res := solve(t, adv, check.Options{MaxHorizon: 6})
	factory := NewFullInfo(res.Rule)
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 200; iter++ {
		run, done := RandomDoneRun(adv, rng, 2, 12, 6)
		if !done {
			t.Fatalf("RandomDoneRun failed to discharge obligations: %v", run)
		}
		tr := Execute(factory, run)
		for _, v := range CheckConsensus(tr, true) {
			t.Errorf("violation: %v", v)
		}
	}
}

// TestFloodMinCorrectWhenStronglyConnected: under {<->} FloodMin deciding
// after round 1 is a correct consensus algorithm.
func TestFloodMinCorrectWhenStronglyConnected(t *testing.T) {
	adv := ma.MustOblivious("", graph.Both)
	Exhaustive(adv, NewFloodMin(1), 2, 3, func(tr *Trace, _ ma.Prefix) bool {
		for _, v := range CheckConsensus(tr, true) {
			t.Errorf("violation: %v", v)
		}
		return true
	})
}

// TestFloodMinViolatesAgreementUnderLossyLink: the combinatorial baseline
// breaks under the lossy link for every decision round within the horizon —
// the contrast experiment to the universal algorithm.
func TestFloodMinViolatesAgreementUnderLossyLink(t *testing.T) {
	for _, decideRound := range []int{1, 2, 3} {
		violated := false
		Exhaustive(ma.LossyLink3(), NewFloodMin(decideRound), 2, decideRound+1,
			func(tr *Trace, _ ma.Prefix) bool {
				if len(CheckConsensus(tr, false)) > 0 {
					violated = true
					return false
				}
				return true
			})
		if !violated {
			t.Errorf("FloodMin(decide@%d) survived the lossy link", decideRound)
		}
	}
}

// TestRandomRunAdmissible: sampled runs are admissible.
func TestRandomRunAdmissible(t *testing.T) {
	adv := ma.MustEventuallyStable("",
		[]graph.Graph{graph.Left}, []graph.Graph{graph.Right}, 2)
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 50; iter++ {
		run := RandomRun(adv, rng, 2, 6)
		if _, ok := ma.Admits(adv, run.Graphs); !ok {
			t.Fatalf("inadmissible sampled run %v", run)
		}
	}
}

// TestExecutePanicsOnDecisionChange: the runner must catch broken
// algorithms.
func TestExecutePanicsOnDecisionChange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Execute did not panic on a decision change")
		}
	}()
	run := ptg.NewRun([]int{0, 1}).Extend(graph.Both).Extend(graph.Both)
	Execute(func() Process { return &fickle{} }, run)
}

// fickle decides its round number — an intentionally broken process.
type fickle struct{ round int }

func (f *fickle) Init(_, _, _ int)      { f.round = 0 }
func (f *fickle) Message() Message      { return nil }
func (f *fickle) Deliver(int, Message)  {}
func (f *fickle) EndRound()             { f.round++ }
func (f *fickle) Decision() (int, bool) { return f.round, true }

func TestTraceHelpers(t *testing.T) {
	tr := &Trace{DecisionRound: []int{2, -1}, Value: []int{1, 0}}
	if tr.Decided() {
		t.Error("Decided must be false with an undecided process")
	}
	if tr.LastDecisionRound() != 2 {
		t.Errorf("LastDecisionRound = %d, want 2", tr.LastDecisionRound())
	}
	v := Violation{Property: "agreement", Detail: "boom"}
	if v.String() != "agreement: boom" {
		t.Errorf("Violation.String = %q", v.String())
	}
}

// TestStrongValidityOnSolvableSweep: the universal algorithm satisfies
// strong validity (decide only actual inputs) on every solvable n=2
// oblivious adversary — the assignment rule picks broadcaster inputs, so
// no out-of-run value can be decided.
func TestStrongValidityOnSolvableSweep(t *testing.T) {
	for mask := uint64(1); mask < 16; mask++ {
		adv := ma.ObliviousFromMask(2, mask)
		res, err := check.Consensus(adv, check.Options{MaxHorizon: 5})
		if err != nil {
			t.Fatal(err)
		}
		if res.Verdict != check.VerdictSolvable {
			continue
		}
		Exhaustive(adv, NewFullInfo(res.Rule), 2, 3, func(tr *Trace, _ ma.Prefix) bool {
			for _, v := range CheckStrongValidity(tr) {
				t.Errorf("%s: %v", adv.Name(), v)
			}
			return true
		})
	}
}

func TestCheckStrongValidityCatchesViolations(t *testing.T) {
	tr := &Trace{
		Run:           ptg.NewRun([]int{0, 1}),
		DecisionRound: []int{1, -1},
		Value:         []int{7, 0},
	}
	if v := CheckStrongValidity(tr); len(v) != 1 {
		t.Errorf("got %d violations, want 1", len(v))
	}
	tr.Value[0] = 1
	if v := CheckStrongValidity(tr); len(v) != 0 {
		t.Errorf("got %v, want none", v)
	}
}
