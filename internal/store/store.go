// Package store is the disk-backed, content-addressed verdict store: one
// record per sweep.Key (behavioural fingerprint + resolved check options +
// certificate eligibility), addressed by the SHA-256 of the key's
// canonical encoding, checksummed, and written atomically via
// rename. It implements sweep.Tier, so layering it under a sweep.Cache
// (memory → disk → compute) makes verdicts survive process restarts and
// accumulate across CLI runs, daemon jobs and users.
//
// Record format (one file per key, `<sha256(key)>.rec`, version 1):
//
//	topocon-verdict 1
//	key <canonical key encoding, sweep.Key.String>
//	outcome <compact JSON of sweep.Outcome>
//	crc32 <8 lowercase hex digits, IEEE, over the three lines above>
//
// Writes go to `.tmp` siblings first and are renamed into place, so a
// crash can leave stale temp files but never a half-visible record. At
// startup the whole directory is scanned into an in-memory index; records
// that fail any validation — unparseable framing, checksum mismatch, a key
// that does not round-trip, a filename that is not the key's content
// address, undecodable outcome JSON — are moved to the `quarantine/`
// subdirectory (bytes preserved for inspection) and their keys simply
// recompute later. A corrupt record never poisons an answer and never
// fails Open.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"log"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"topocon/internal/fsx"
	"topocon/internal/sweep"
)

const (
	// recordVersion is the on-disk record format version; bump it when the
	// framing or the sweep.Outcome JSON schema changes incompatibly.
	recordVersion = 1
	// recordExt is the record file name suffix; tmpExt marks in-flight
	// writes (fsx.AtomicWrite temp siblings left behind by a crash).
	recordExt = ".rec"
	tmpExt    = fsx.TmpExt
	// quarantineDir collects records that failed validation at startup.
	quarantineDir = "quarantine"
)

// Stats describes a store's state and traffic.
type Stats struct {
	// Records and Bytes size the live index; Quarantined counts records
	// moved aside (at Open or on read) since the store was opened;
	// QuarantineErrors counts quarantine moves that themselves failed
	// (the bad file stayed in place — excluded from the index either way).
	Records          int   `json:"records"`
	Bytes            int64 `json:"bytes"`
	Quarantined      int   `json:"quarantined"`
	QuarantineErrors int   `json:"quarantineErrors,omitempty"`
	// Dir is the store directory.
	Dir string `json:"dir"`
}

// Store is a disk-backed content-addressed verdict store. It is safe for
// concurrent use. Get is served from the in-memory index (loaded once at
// Open); Put writes the record atomically and updates the index.
type Store struct {
	dir string

	mu             sync.RWMutex
	index          map[sweep.Key]sweep.Outcome
	bytes          int64
	quarantined    int
	quarantineErrs int
}

// Open creates the directory if needed and loads every record into the
// in-memory index. Leftover temp files and invalid records are quarantined
// (never deleted, never fatal); only I/O failures on the directory itself
// error.
//
//topocon:export
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, index: make(map[sweep.Key]sweep.Outcome)}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		switch {
		case strings.HasSuffix(name, tmpExt):
			// A crash mid-write: the record was never visible, so there is
			// nothing to recover — preserve the partial bytes for
			// inspection and move on.
			s.quarantine(name)
		case strings.HasSuffix(name, recordExt):
			key, out, size, err := s.loadRecord(name)
			if err != nil {
				s.quarantine(name)
				continue
			}
			s.index[key] = out
			s.bytes += size
		}
		// Anything else (editor droppings, the quarantine dir) is ignored.
	}
	return s, nil
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// Get returns the stored outcome for the key. It never errors: a missing
// or previously-quarantined record is a miss. Implements sweep.Tier.
func (s *Store) Get(key sweep.Key) (sweep.Outcome, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out, ok := s.index[key]
	return out, ok
}

// Put stores the outcome under the key: the record is encoded, checksummed,
// written atomically (fsx.AtomicWrite: temp sibling, sync, rename), then
// indexed. Implements sweep.Tier.
func (s *Store) Put(key sweep.Key, out sweep.Outcome) error {
	data, err := encodeRecord(key, out)
	if err != nil {
		return err
	}
	name := recordName(key)

	s.mu.Lock()
	defer s.mu.Unlock()
	if err := fsx.AtomicWrite(filepath.Join(s.dir, name), data, 0o644); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, existed := s.index[key]; !existed {
		s.bytes += int64(len(data))
	}
	s.index[key] = out
	return nil
}

// Len returns the number of indexed records.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.index)
}

// Stats returns the store's current statistics.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return Stats{
		Records:          len(s.index),
		Bytes:            s.bytes,
		Quarantined:      s.quarantined,
		QuarantineErrors: s.quarantineErrs,
		Dir:              s.dir,
	}
}

// Keys returns every indexed key, in unspecified order.
func (s *Store) Keys() []sweep.Key {
	s.mu.RLock()
	defer s.mu.RUnlock()
	keys := make([]sweep.Key, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	return keys
}

// recordName is the content address of a key: the SHA-256 of its canonical
// encoding, hex, plus the record extension.
func recordName(key sweep.Key) string {
	sum := sha256.Sum256([]byte(key.String()))
	return hex.EncodeToString(sum[:]) + recordExt
}

// encodeRecord renders the versioned, checksummed record bytes.
func encodeRecord(key sweep.Key, out sweep.Outcome) ([]byte, error) {
	payload, err := json.Marshal(out)
	if err != nil {
		return nil, fmt.Errorf("store: encoding outcome: %w", err)
	}
	var b bytes.Buffer
	fmt.Fprintf(&b, "topocon-verdict %d\n", recordVersion)
	fmt.Fprintf(&b, "key %s\n", key.String())
	fmt.Fprintf(&b, "outcome %s\n", payload)
	fmt.Fprintf(&b, "crc32 %08x\n", crc32.ChecksumIEEE(b.Bytes()))
	return b.Bytes(), nil
}

// decodeRecord parses and fully validates record bytes: framing, version,
// checksum, canonical key round-trip, outcome JSON strictness.
func decodeRecord(data []byte) (sweep.Key, sweep.Outcome, error) {
	var zero sweep.Key
	var zeroOut sweep.Outcome
	lines := strings.Split(string(data), "\n")
	if len(lines) != 5 || lines[4] != "" {
		return zero, zeroOut, fmt.Errorf("store: record must be exactly 4 newline-terminated lines")
	}
	var version int
	if _, err := fmt.Sscanf(lines[0], "topocon-verdict %d", &version); err != nil || lines[0] != fmt.Sprintf("topocon-verdict %d", version) {
		return zero, zeroOut, fmt.Errorf("store: bad header %q", lines[0])
	}
	if version != recordVersion {
		return zero, zeroOut, fmt.Errorf("store: unsupported record version %d", version)
	}
	sumLine, ok := strings.CutPrefix(lines[3], "crc32 ")
	if !ok || len(sumLine) != 8 {
		return zero, zeroOut, fmt.Errorf("store: bad checksum line %q", lines[3])
	}
	body := []byte(lines[0] + "\n" + lines[1] + "\n" + lines[2] + "\n")
	if want := fmt.Sprintf("%08x", crc32.ChecksumIEEE(body)); sumLine != want {
		return zero, zeroOut, fmt.Errorf("store: checksum mismatch (%s != %s)", sumLine, want)
	}
	keyEnc, ok := strings.CutPrefix(lines[1], "key ")
	if !ok {
		return zero, zeroOut, fmt.Errorf("store: bad key line %q", lines[1])
	}
	key, err := sweep.ParseKey(keyEnc)
	if err != nil {
		return zero, zeroOut, err
	}
	payload, ok := strings.CutPrefix(lines[2], "outcome ")
	if !ok {
		return zero, zeroOut, fmt.Errorf("store: bad outcome line %q", lines[2])
	}
	dec := json.NewDecoder(strings.NewReader(payload))
	dec.DisallowUnknownFields()
	var out sweep.Outcome
	if err := dec.Decode(&out); err != nil {
		return zero, zeroOut, fmt.Errorf("store: decoding outcome: %w", err)
	}
	return key, out, nil
}

// loadRecord reads and validates one record file at startup, additionally
// checking that the filename is the key's content address (a record copied
// under a wrong name would otherwise shadow a different key's slot).
func (s *Store) loadRecord(name string) (sweep.Key, sweep.Outcome, int64, error) {
	data, err := os.ReadFile(filepath.Join(s.dir, name))
	if err != nil {
		return sweep.Key{}, sweep.Outcome{}, 0, err
	}
	key, out, err := decodeRecord(data)
	if err != nil {
		return sweep.Key{}, sweep.Outcome{}, 0, err
	}
	if want := recordName(key); name != want {
		return sweep.Key{}, sweep.Outcome{}, 0, fmt.Errorf("store: record %s is not the content address of its key (%s)", name, want)
	}
	return key, out, int64(len(data)), nil
}

// quarantine moves a bad file into the quarantine subdirectory, creating it
// lazily. Failures degrade to leaving the file in place — quarantining is
// best-effort hygiene, never a correctness dependency (the file is already
// excluded from the index) — but they are logged and counted, never
// swallowed: a store that cannot move records aside has a misbehaving
// directory, and the operator should hear about it.
func (s *Store) quarantine(name string) {
	s.quarantined++
	qdir := filepath.Join(s.dir, quarantineDir)
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		s.quarantineErrs++
		log.Printf("store: quarantine of %s: %v", name, err)
		return
	}
	if err := os.Rename(filepath.Join(s.dir, name), filepath.Join(qdir, name)); err != nil {
		s.quarantineErrs++
		log.Printf("store: quarantine of %s: %v", name, err)
	}
}
