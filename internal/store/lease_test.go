package store

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// openTestLeases returns a Leases on a temp dir with a settable fake
// clock, so expiry is tested without sleeping.
func openTestLeases(t *testing.T) (*Leases, *time.Time) {
	t.Helper()
	l, err := OpenLeases(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1_700_000_000, 0)
	l.now = func() time.Time { return now }
	return l, &now
}

func TestLeaseAcquireRenewRelease(t *testing.T) {
	l, now := openTestLeases(t)
	key := testKey(t, 4)

	if _, ok := l.Get(key); ok {
		t.Fatal("empty lease dir reports a lease")
	}
	prev, hadPrev, err := l.Acquire(key, "w1", time.Minute, 1)
	if err != nil || hadPrev {
		t.Fatalf("first Acquire = %+v, %v, %v", prev, hadPrev, err)
	}
	got, ok := l.Get(key)
	if !ok || got.Holder != "w1" || got.State != LeaseHeld || got.Attempt != 1 || !got.Live(*now) {
		t.Fatalf("Get after Acquire = %+v, %v", got, ok)
	}

	// Another worker is fenced out while the lease is live.
	if _, _, err := l.Acquire(key, "w2", time.Minute, 2); !errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("Acquire by w2 = %v, want ErrLeaseHeld", err)
	}

	// Renewal pushes the expiry forward.
	*now = now.Add(50 * time.Second)
	if err := l.Renew(key, "w1", time.Minute); err != nil {
		t.Fatal(err)
	}
	got, _ = l.Get(key)
	if !got.Live(now.Add(50 * time.Second)) {
		t.Fatalf("renewed lease expires at %v, want ≥ now+50s", got.Expires)
	}

	// Release flips the state; a successor may claim instantly.
	if err := l.Release(key, "w1"); err != nil {
		t.Fatal(err)
	}
	prev, hadPrev, err = l.Acquire(key, "w2", time.Minute, 2)
	if err != nil || !hadPrev || prev.State != LeaseReleased || prev.Holder != "w1" {
		t.Fatalf("Acquire after release = %+v, %v, %v", prev, hadPrev, err)
	}

	st := l.Stats()
	if st.Acquired != 2 || st.Renewed != 1 || st.Released != 1 {
		t.Fatalf("Stats = %+v", st)
	}
}

func TestLeaseStealAfterExpiry(t *testing.T) {
	l, now := openTestLeases(t)
	key := testKey(t, 4)
	if _, _, err := l.Acquire(key, "w1", time.Minute, 1); err != nil {
		t.Fatal(err)
	}

	// Not yet expired: the steal is refused.
	if _, _, err := l.Acquire(key, "w2", time.Minute, 2); !errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("early steal = %v, want ErrLeaseHeld", err)
	}

	*now = now.Add(2 * time.Minute)
	prev, hadPrev, err := l.Acquire(key, "w2", time.Minute, 2)
	if err != nil {
		t.Fatalf("steal after expiry = %v", err)
	}
	// The previous record distinguishes a steal (held, expired) from a
	// graceful handover (released).
	if !hadPrev || prev.State != LeaseHeld || prev.Holder != "w1" || prev.Live(*now) {
		t.Fatalf("steal prev = %+v, %v", prev, hadPrev)
	}

	// The original holder is now fenced: renew and release both refuse.
	if err := l.Renew(key, "w1", time.Minute); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("stale Renew = %v, want ErrLeaseLost", err)
	}
	if err := l.Release(key, "w1"); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("stale Release = %v, want ErrLeaseLost", err)
	}
	// The successor's lease is untouched by the fenced calls.
	got, ok := l.Get(key)
	if !ok || got.Holder != "w2" || got.State != LeaseHeld {
		t.Fatalf("successor lease = %+v, %v", got, ok)
	}
}

func TestLeaseExpiredUnstolenRenews(t *testing.T) {
	l, now := openTestLeases(t)
	key := testKey(t, 4)
	if _, _, err := l.Acquire(key, "w1", time.Minute, 1); err != nil {
		t.Fatal(err)
	}
	// The worker was slow, but nobody stole the cell: renewal revives it.
	*now = now.Add(5 * time.Minute)
	if err := l.Renew(key, "w1", time.Minute); err != nil {
		t.Fatalf("Renew of expired-but-unstolen lease = %v", err)
	}
	if got, _ := l.Get(key); !got.Live(*now) {
		t.Fatalf("revived lease not live: %+v", got)
	}
}

func TestLeaseReleaseMissingIsNoop(t *testing.T) {
	l, _ := openTestLeases(t)
	key := testKey(t, 4)
	if err := l.Release(key, "w1"); err != nil {
		t.Fatalf("Release of missing lease = %v", err)
	}
	// Double release by the same holder is also a no-op.
	if _, _, err := l.Acquire(key, "w1", time.Minute, 1); err != nil {
		t.Fatal(err)
	}
	if err := l.Release(key, "w1"); err != nil {
		t.Fatal(err)
	}
	if err := l.Release(key, "w1"); err != nil {
		t.Fatalf("double Release = %v", err)
	}
}

func TestLeaseRoundTripAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	l1, err := OpenLeases(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(t, 4)
	if _, _, err := l1.Acquire(key, "w1", time.Hour, 3); err != nil {
		t.Fatal(err)
	}
	// A different process (fresh Leases on the same dir) sees the lease.
	l2, err := OpenLeases(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := l2.Get(key)
	if !ok || got.Holder != "w1" || got.Attempt != 3 || got.Key != key {
		t.Fatalf("reopened Get = %+v, %v", got, ok)
	}
}

func TestLeaseCorruptQuarantined(t *testing.T) {
	l, _ := openTestLeases(t)
	key := testKey(t, 4)
	if _, _, err := l.Acquire(key, "w1", time.Minute, 1); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(l.Dir(), leaseName(key))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip the holder without re-checksumming.
	if err := os.WriteFile(path, []byte(strings.Replace(string(data), "holder w1", "holder w9", 1)), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := l.Get(key); ok {
		t.Fatal("corrupt lease served as valid")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("corrupt lease still in place: %v", err)
	}
	if _, err := os.Stat(filepath.Join(l.Dir(), quarantineDir, leaseName(key))); err != nil {
		t.Fatalf("corrupt lease not quarantined: %v", err)
	}
	if st := l.Stats(); st.Quarantined != 1 {
		t.Fatalf("Stats.Quarantined = %d, want 1", st.Quarantined)
	}
	// Post-quarantine the key is free to claim again.
	if _, _, err := l.Acquire(key, "w2", time.Minute, 2); err != nil {
		t.Fatalf("Acquire after quarantine = %v", err)
	}
}

func TestLeaseWriteFuncSeam(t *testing.T) {
	dir := t.TempDir()
	boom := errors.New("injected")
	var calls int
	l, err := OpenLeases(dir, func(path string, data []byte, perm os.FileMode) error {
		calls++
		return boom
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.Acquire(testKey(t, 4), "w1", time.Minute, 1); !errors.Is(err, boom) {
		t.Fatalf("Acquire through failing seam = %v", err)
	}
	if calls != 1 {
		t.Fatalf("write seam called %d times", calls)
	}
}

func TestLeaseDecodeRejectsTampering(t *testing.T) {
	key := testKey(t, 4)
	good := encodeLease(Lease{Key: key, Holder: "w1", State: LeaseHeld, Attempt: 1, Expires: time.Unix(1, 0)})
	if _, err := decodeLease(good); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	for name, mut := range map[string]func(string) string{
		"truncated":    func(s string) string { return s[:len(s)-20] },
		"bad version":  func(s string) string { return strings.Replace(s, "topocon-lease 1", "topocon-lease 9", 1) },
		"bad state":    func(s string) string { return strings.Replace(s, "state held", "state zombie", 1) },
		"bad attempt":  func(s string) string { return strings.Replace(s, "attempt 1", "attempt x", 1) },
		"bad expiry":   func(s string) string { return strings.Replace(s, "expires 1000000000", "expires soon", 1) },
		"flipped byte": func(s string) string { return strings.Replace(s, "w1", "w2", 1) },
	} {
		if _, err := decodeLease([]byte(mut(string(good)))); err == nil {
			t.Errorf("%s: decodeLease accepted tampered bytes", name)
		}
	}
}
