package store

// Lease records: the coordination half of the store. Where verdict
// records say "this cell's answer is X", lease records say "worker W is
// computing this cell until T". They live in their own directory (by
// convention `leases/` next to the per-cell checkpoints), one file per
// sweep key at the key's content address, so a coordinator and any number
// of workers sharing the directory agree on ownership without a network
// consensus layer: the filesystem rename is the commit point.
//
// Lease format (one file per key, `<sha256(key)>.lease`, version 1):
//
//	topocon-lease 1
//	key <canonical key encoding, sweep.Key.String>
//	holder <worker id>
//	state <held|released>
//	attempt <dispatch attempt, 1-based>
//	expires <unix nanoseconds>
//	crc32 <8 lowercase hex digits, IEEE, over the six lines above>
//
// Fencing is by holder string: Renew and Release re-read the file and
// refuse (ErrLeaseLost) if another holder has taken over, so a worker
// that stalls past its TTL and wakes up after a steal cannot clobber the
// successor's lease. Acquire refuses (ErrLeaseHeld) while a live `held`
// lease names another holder; an expired or `released` lease is free to
// take, and the previous record is returned so the caller can tell a
// steal (expired, still held) from a graceful handover (released).
//
// Corrupt lease files are quarantined exactly like corrupt verdict
// records — moved aside, counted, never deleted — and then treated as
// absent: losing a lease record costs at most one redundant computation,
// never a wrong answer, because verdicts are idempotent in the shared
// store.

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"topocon/internal/fsx"
	"topocon/internal/sweep"
)

const (
	leaseVersion = 1
	leaseExt     = ".lease"
)

// Lease states.
const (
	// LeaseHeld marks a live claim: the holder is (or was, until its TTL
	// ran out) computing the cell.
	LeaseHeld = "held"
	// LeaseReleased marks a graceful handover: the holder gave the cell
	// up (drain, abort) and a successor may take it immediately.
	LeaseReleased = "released"
)

var (
	// ErrLeaseHeld is returned by Acquire while another holder's lease is
	// live. Callers wait out the remaining TTL (or for a release) and
	// retry.
	ErrLeaseHeld = errors.New("store: lease held by another worker")
	// ErrLeaseLost is returned by Renew and Release when the caller no
	// longer owns the lease — it expired and a successor took over. The
	// only safe reaction is to stop working on the cell.
	ErrLeaseLost = errors.New("store: lease lost")
)

// WriteFunc is the durable-write seam: fsx.AtomicWrite in production,
// a faultfs-wrapped variant under fault injection.
type WriteFunc func(path string, data []byte, perm os.FileMode) error

// Lease is one decoded lease record.
type Lease struct {
	Key     sweep.Key
	Holder  string
	State   string
	Attempt int
	Expires time.Time
}

// Live reports whether the lease still excludes other holders at time
// now: it is held and its TTL has not run out.
func (l Lease) Live(now time.Time) bool {
	return l.State == LeaseHeld && now.Before(l.Expires)
}

// LeaseStats counts lease traffic since OpenLeases.
type LeaseStats struct {
	Acquired         int    `json:"acquired"`
	Renewed          int    `json:"renewed"`
	Released         int    `json:"released"`
	Quarantined      int    `json:"quarantined"`
	QuarantineErrors int    `json:"quarantineErrors,omitempty"`
	Dir              string `json:"dir"`
}

// Leases manages the lease records in one directory. Unlike Store it
// keeps no in-memory index: the directory is shared across processes, so
// every operation re-reads the file — the file IS the truth. It is safe
// for concurrent use within a process; cross-process mutual exclusion on
// the same key is the coordinator's job (one dispatcher per cell).
type Leases struct {
	dir   string
	write WriteFunc
	// now is the clock, swappable in tests.
	now func() time.Time

	mu             sync.Mutex
	acquired       int
	renewed        int
	released       int
	quarantined    int
	quarantineErrs int
}

// OpenLeases creates the lease directory if needed. write nil means
// fsx.AtomicWrite. Leftover temp files from crashed writers are
// quarantined at open, like Store's.
//
//topocon:export
func OpenLeases(dir string, write WriteFunc) (*Leases, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty lease directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if write == nil {
		write = fsx.AtomicWrite
	}
	l := &Leases{dir: dir, write: write, now: time.Now}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	l.mu.Lock()
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), tmpExt) {
			l.quarantine(e.Name())
		}
	}
	l.mu.Unlock()
	return l, nil
}

// Dir returns the lease directory.
func (l *Leases) Dir() string { return l.dir }

// leaseName is the content address of a key's lease file.
func leaseName(key sweep.Key) string {
	sum := sha256.Sum256([]byte(key.String()))
	return hex.EncodeToString(sum[:]) + leaseExt
}

// Get reads the current lease for the key. A missing or corrupt file is
// a miss (corrupt ones are quarantined first).
func (l *Leases) Get(key sweep.Key) (Lease, bool) {
	name := leaseName(key)
	data, err := os.ReadFile(filepath.Join(l.dir, name))
	if err != nil {
		return Lease{}, false
	}
	lease, err := decodeLease(data)
	if err != nil || lease.Key != key {
		l.mu.Lock()
		l.quarantine(name)
		l.mu.Unlock()
		return Lease{}, false
	}
	return lease, true
}

// Acquire claims the key for holder with the given TTL. If a live lease
// names another holder it returns that lease and ErrLeaseHeld. Otherwise
// it writes a fresh held lease and returns the previous record (zero
// Lease, false if there was none) so the caller can classify the
// takeover: prev.State == LeaseHeld (and expired) is a steal,
// LeaseReleased a graceful handover.
func (l *Leases) Acquire(key sweep.Key, holder string, ttl time.Duration, attempt int) (prev Lease, hadPrev bool, err error) {
	if holder == "" {
		return Lease{}, false, fmt.Errorf("store: empty lease holder")
	}
	prev, hadPrev = l.Get(key)
	if hadPrev && prev.Holder != holder && prev.Live(l.now()) {
		return prev, true, fmt.Errorf("%w: %s until %s", ErrLeaseHeld, prev.Holder, prev.Expires.Format(time.RFC3339))
	}
	lease := Lease{Key: key, Holder: holder, State: LeaseHeld, Attempt: attempt, Expires: l.now().Add(ttl)}
	if err := l.put(lease); err != nil {
		return prev, hadPrev, err
	}
	l.mu.Lock()
	l.acquired++
	l.mu.Unlock()
	return prev, hadPrev, nil
}

// Renew extends holder's lease by ttl. ErrLeaseLost means another worker
// owns the record (or it vanished): the caller must abandon the cell.
// Renewal is allowed on an expired-but-unstolen lease — the worker was
// slow, nobody took the cell, the work is still valid.
func (l *Leases) Renew(key sweep.Key, holder string, ttl time.Duration) error {
	cur, ok := l.Get(key)
	if !ok || cur.Holder != holder || cur.State != LeaseHeld {
		return fmt.Errorf("%w: renewing %s", ErrLeaseLost, leaseName(key))
	}
	cur.Expires = l.now().Add(ttl)
	if err := l.put(cur); err != nil {
		return err
	}
	l.mu.Lock()
	l.renewed++
	l.mu.Unlock()
	return nil
}

// Release marks holder's lease released so a successor can claim the
// cell immediately instead of waiting out the TTL. ErrLeaseLost means a
// successor already took over — the record is theirs now, leave it be.
// Releasing an already-released or missing lease is a no-op.
func (l *Leases) Release(key sweep.Key, holder string) error {
	cur, ok := l.Get(key)
	if !ok || cur.State == LeaseReleased && cur.Holder == holder {
		return nil
	}
	if cur.Holder != holder {
		return fmt.Errorf("%w: releasing %s", ErrLeaseLost, leaseName(key))
	}
	cur.State = LeaseReleased
	if err := l.put(cur); err != nil {
		return err
	}
	l.mu.Lock()
	l.released++
	l.mu.Unlock()
	return nil
}

// Stats returns the lease traffic counters.
func (l *Leases) Stats() LeaseStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return LeaseStats{
		Acquired:         l.acquired,
		Renewed:          l.renewed,
		Released:         l.released,
		Quarantined:      l.quarantined,
		QuarantineErrors: l.quarantineErrs,
		Dir:              l.dir,
	}
}

// put writes the lease record through the durable-write seam.
func (l *Leases) put(lease Lease) error {
	data := encodeLease(lease)
	if err := l.write(filepath.Join(l.dir, leaseName(lease.Key)), data, 0o644); err != nil {
		return fmt.Errorf("store: lease write: %w", err)
	}
	return nil
}

// encodeLease renders the versioned, checksummed lease bytes.
func encodeLease(lease Lease) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "topocon-lease %d\n", leaseVersion)
	fmt.Fprintf(&b, "key %s\n", lease.Key.String())
	fmt.Fprintf(&b, "holder %s\n", lease.Holder)
	fmt.Fprintf(&b, "state %s\n", lease.State)
	fmt.Fprintf(&b, "attempt %d\n", lease.Attempt)
	fmt.Fprintf(&b, "expires %d\n", lease.Expires.UnixNano())
	fmt.Fprintf(&b, "crc32 %08x\n", crc32.ChecksumIEEE(b.Bytes()))
	return b.Bytes()
}

// decodeLease parses and fully validates lease bytes: framing, version,
// checksum, canonical key round-trip, state and numeric fields.
func decodeLease(data []byte) (Lease, error) {
	var zero Lease
	lines := strings.Split(string(data), "\n")
	if len(lines) != 8 || lines[7] != "" {
		return zero, fmt.Errorf("store: lease must be exactly 7 newline-terminated lines")
	}
	var version int
	if _, err := fmt.Sscanf(lines[0], "topocon-lease %d", &version); err != nil || lines[0] != fmt.Sprintf("topocon-lease %d", version) {
		return zero, fmt.Errorf("store: bad lease header %q", lines[0])
	}
	if version != leaseVersion {
		return zero, fmt.Errorf("store: unsupported lease version %d", version)
	}
	sumLine, ok := strings.CutPrefix(lines[6], "crc32 ")
	if !ok || len(sumLine) != 8 {
		return zero, fmt.Errorf("store: bad lease checksum line %q", lines[6])
	}
	body := []byte(strings.Join(lines[:6], "\n") + "\n")
	if want := fmt.Sprintf("%08x", crc32.ChecksumIEEE(body)); sumLine != want {
		return zero, fmt.Errorf("store: lease checksum mismatch (%s != %s)", sumLine, want)
	}
	keyEnc, ok := strings.CutPrefix(lines[1], "key ")
	if !ok {
		return zero, fmt.Errorf("store: bad lease key line %q", lines[1])
	}
	key, err := sweep.ParseKey(keyEnc)
	if err != nil {
		return zero, err
	}
	holder, ok := strings.CutPrefix(lines[2], "holder ")
	if !ok || holder == "" {
		return zero, fmt.Errorf("store: bad lease holder line %q", lines[2])
	}
	state, ok := strings.CutPrefix(lines[3], "state ")
	if !ok || (state != LeaseHeld && state != LeaseReleased) {
		return zero, fmt.Errorf("store: bad lease state line %q", lines[3])
	}
	attemptStr, ok := strings.CutPrefix(lines[4], "attempt ")
	if !ok {
		return zero, fmt.Errorf("store: bad lease attempt line %q", lines[4])
	}
	attempt, err := strconv.Atoi(attemptStr)
	if err != nil || attempt < 0 {
		return zero, fmt.Errorf("store: bad lease attempt %q", attemptStr)
	}
	expStr, ok := strings.CutPrefix(lines[5], "expires ")
	if !ok {
		return zero, fmt.Errorf("store: bad lease expires line %q", lines[5])
	}
	expNano, err := strconv.ParseInt(expStr, 10, 64)
	if err != nil {
		return zero, fmt.Errorf("store: bad lease expiry %q", expStr)
	}
	return Lease{
		Key:     key,
		Holder:  holder,
		State:   state,
		Attempt: attempt,
		Expires: time.Unix(0, expNano),
	}, nil
}

// quarantine moves a bad lease file into the quarantine subdirectory.
// Same contract as Store.quarantine: best-effort, logged, counted, never
// a correctness dependency. Callers hold l.mu.
func (l *Leases) quarantine(name string) {
	l.quarantined++
	qdir := filepath.Join(l.dir, quarantineDir)
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		l.quarantineErrs++
		log.Printf("store: lease quarantine of %s: %v", name, err)
		return
	}
	if err := os.Rename(filepath.Join(l.dir, name), filepath.Join(qdir, name)); err != nil {
		l.quarantineErrs++
		log.Printf("store: lease quarantine of %s: %v", name, err)
	}
}
