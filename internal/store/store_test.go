package store

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"topocon/internal/check"
	"topocon/internal/ma"
	"topocon/internal/sweep"
)

func testKey(t *testing.T, maxHorizon int) sweep.Key {
	t.Helper()
	key, err := sweep.KeyFor(ma.LossyLink3(), check.Options{MaxHorizon: maxHorizon})
	if err != nil {
		t.Fatal(err)
	}
	return key
}

func testOutcome() sweep.Outcome {
	return sweep.Outcome{
		Verdict:           check.VerdictImpossible,
		Exact:             true,
		SeparationHorizon: -1,
		Horizon:           4,
		Runs:              123,
		Notes:             []string{"note with\nnewline and \"quotes\""},
	}
}

// TestStoreRoundTrip: Put → Get in-process, and Put → reopen → Get across
// processes; the reopened index serves identical outcomes.
func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key, out := testKey(t, 4), testOutcome()
	if _, ok := s.Get(key); ok {
		t.Fatal("empty store reports a hit")
	}
	if err := s.Put(key, out); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key)
	if !ok || got.Verdict != out.Verdict || got.Runs != out.Runs || len(got.Notes) != 1 || got.Notes[0] != out.Notes[0] {
		t.Fatalf("Get = %+v, %v", got, ok)
	}

	// Overwrite is idempotent and keeps one record.
	if err := s.Put(key, out); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d after re-put", s.Len())
	}

	reopened, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok = reopened.Get(key)
	if !ok || got.Verdict != out.Verdict || got.Exact != out.Exact || got.Horizon != out.Horizon {
		t.Fatalf("reopened Get = %+v, %v", got, ok)
	}
	st := reopened.Stats()
	if st.Records != 1 || st.Quarantined != 0 || st.Bytes <= 0 {
		t.Fatalf("stats = %+v", st)
	}
	if len(reopened.Keys()) != 1 || reopened.Keys()[0] != key {
		t.Fatalf("keys = %v", reopened.Keys())
	}
}

// recordPath returns the single .rec file in dir.
func recordPath(t *testing.T, dir string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "*.rec"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("glob: %v, %v", matches, err)
	}
	return matches[0]
}

// corruptionCase writes one store record and mangles it; reopening must
// quarantine the record (miss, no crash, moved into quarantine/) and leave
// the store fully usable, including recomputing and re-persisting the key.
func corruptionCase(t *testing.T, mangle func(t *testing.T, path string)) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key, out := testKey(t, 4), testOutcome()
	if err := s.Put(key, out); err != nil {
		t.Fatal(err)
	}
	mangle(t, recordPath(t, dir))

	reopened, err := Open(dir)
	if err != nil {
		t.Fatalf("corrupt record failed Open: %v", err)
	}
	if _, ok := reopened.Get(key); ok {
		t.Fatal("corrupt record served an outcome")
	}
	if st := reopened.Stats(); st.Quarantined != 1 || st.Records != 0 {
		t.Fatalf("stats = %+v, want 1 quarantined / 0 records", st)
	}
	qfiles, err := os.ReadDir(filepath.Join(dir, "quarantine"))
	if err != nil || len(qfiles) != 1 {
		t.Fatalf("quarantine dir: %v, %v", qfiles, err)
	}
	// The key recomputes and persists again.
	if err := reopened.Put(key, out); err != nil {
		t.Fatal(err)
	}
	if got, ok := reopened.Get(key); !ok || got.Verdict != out.Verdict {
		t.Fatalf("re-put Get = %+v, %v", got, ok)
	}
	final, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := final.Get(key); !ok {
		t.Fatal("re-persisted record lost on reopen")
	}
}

func TestStoreTruncatedRecord(t *testing.T) {
	corruptionCase(t, func(t *testing.T, path string) {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
			t.Fatal(err)
		}
	})
}

func TestStoreChecksumMismatch(t *testing.T) {
	corruptionCase(t, func(t *testing.T, path string) {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		// Flip one byte inside the outcome payload; framing stays intact,
		// so only the checksum catches it.
		i := bytes.Index(data, []byte(`"runs":123`))
		if i < 0 {
			t.Fatalf("payload marker missing in %q", data)
		}
		data[i+7] = '9'
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	})
}

func TestStoreWrongContentAddress(t *testing.T) {
	corruptionCase(t, func(t *testing.T, path string) {
		// A valid record copied under a wrong name must not be indexed.
		renamed := filepath.Join(filepath.Dir(path), strings.Repeat("ab", 32)+".rec")
		if err := os.Rename(path, renamed); err != nil {
			t.Fatal(err)
		}
	})
}

// TestStorePartialTempFile: a leftover temp file from a crashed write is
// quarantined at startup and never shadows or poisons records.
func TestStorePartialTempFile(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key, out := testKey(t, 4), testOutcome()
	if err := s.Put(key, out); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-write of another record.
	partial := filepath.Join(dir, strings.Repeat("cd", 32)+".rec.tmp")
	if err := os.WriteFile(partial, []byte("topocon-verdict 1\nkey v1;fp="), 0o644); err != nil {
		t.Fatal(err)
	}

	reopened, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := reopened.Get(key); !ok {
		t.Fatal("intact record lost next to a temp file")
	}
	st := reopened.Stats()
	if st.Records != 1 || st.Quarantined != 1 {
		t.Fatalf("stats = %+v, want 1 record / 1 quarantined", st)
	}
	if _, err := os.Stat(partial); !os.IsNotExist(err) {
		t.Fatalf("temp file still in the store dir: %v", err)
	}
}

// TestStoreAsSweepTier: the store under a sweep cache — computed once,
// then served from the disk tier by a fresh cache (the restart path), with
// the sweep report attributing the disk tier.
func TestStoreAsSweepTier(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var tier sweep.Tier = s // compile-time interface check, used below

	key := testKey(t, 4)
	cache := sweep.NewTieredCache(tier)
	want := testOutcome()
	out, hit, err := cache.Do(context.Background(), key, func() (sweep.Outcome, error) { return want, nil })
	if err != nil || hit != sweep.TierNone || out.Verdict != want.Verdict {
		t.Fatalf("compute pass = %+v, %v, %v", out, hit, err)
	}

	// Restart: fresh store over the same dir, fresh cache.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cache2 := sweep.NewTieredCache(s2)
	out, hit, err = cache2.Do(context.Background(), key, func() (sweep.Outcome, error) {
		t.Fatal("restart recomputed a persisted key")
		return sweep.Outcome{}, nil
	})
	if err != nil || hit != sweep.TierDisk || out.Verdict != want.Verdict {
		t.Fatalf("restart pass = %+v, %v, %v", out, hit, err)
	}
}

// TestStoreConcurrentPuts: concurrent writers over distinct and identical
// keys leave a consistent index and readable records (run under -race).
func TestStoreConcurrentPuts(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]sweep.Key, 8)
	for i := range keys {
		keys[i] = testKey(t, i+2)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, k := range keys {
				if err := s.Put(k, testOutcome()); err != nil {
					t.Error(err)
				}
				s.Get(k)
				s.Stats()
			}
		}()
	}
	wg.Wait()
	if s.Len() != len(keys) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(keys))
	}
	reopened, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if reopened.Len() != len(keys) || reopened.Stats().Quarantined != 0 {
		t.Fatalf("reopened stats = %+v", reopened.Stats())
	}
}
