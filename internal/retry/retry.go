// Package retry is the repo's one implementation of capped exponential
// backoff with full jitter. Every place that re-attempts a fallible
// operation against a possibly-overloaded or crashed peer — topoconload's
// 429-retrying submissions, the sweep coordinator's cell re-dispatch —
// derives its delays from a Policy here, so the retry behaviour is
// uniform, context-aware, and testable with a seeded jitter source.
//
// Full jitter (delay drawn uniformly from [0, cappedExponential]) is the
// AWS-architecture-blog variant: under contention it spreads retries over
// the whole window instead of synchronizing clients into waves, which is
// exactly the failure mode a fleet of workers hammering one coordinator
// (or one recovering worker) would otherwise produce.
package retry

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// Policy describes a capped exponential backoff schedule. The zero value
// is usable: 100ms base, 5s cap, factor 2, unlimited attempts.
type Policy struct {
	// Base is the pre-jitter delay after the first failure (≤ 0: 100ms).
	Base time.Duration
	// Max caps the pre-jitter delay (≤ 0: 5s).
	Max time.Duration
	// Factor is the per-attempt growth multiplier (< 1: 2).
	Factor float64
	// Attempts bounds the total number of calls Do makes, including the
	// first (≤ 0: unlimited).
	Attempts int
	// Rand, when set, is the jitter source — inject a seeded source for
	// deterministic tests. Nil uses the process-global source.
	Rand *rand.Rand
}

func (p Policy) withDefaults() Policy {
	if p.Base <= 0 {
		p.Base = 100 * time.Millisecond
	}
	if p.Max <= 0 {
		p.Max = 5 * time.Second
	}
	if p.Factor < 1 {
		p.Factor = 2
	}
	return p
}

// Delay returns the jittered delay to sleep after the attempt-th failure
// (1-based): a duration drawn uniformly from [0, min(Max, Base·Factor^(attempt-1))].
func (p Policy) Delay(attempt int) time.Duration {
	p = p.withDefaults()
	if attempt < 1 {
		attempt = 1
	}
	d := float64(p.Base)
	for i := 1; i < attempt; i++ {
		d *= p.Factor
		if d >= float64(p.Max) {
			break
		}
	}
	if d > float64(p.Max) {
		d = float64(p.Max)
	}
	n := int64(d)
	if n <= 0 {
		return 0
	}
	if p.Rand != nil {
		return time.Duration(p.Rand.Int63n(n + 1))
	}
	return time.Duration(rand.Int63n(n + 1))
}

// permanentError marks an error Do must not retry.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps an error to tell Do that retrying cannot help — a 4xx
// response, a validation failure, a closed service. Do returns the
// original (unwrapped) error immediately.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// Do calls fn until it succeeds, returns a Permanent error, the context
// is cancelled, or the policy's attempt budget is spent — sleeping the
// policy's jittered delay between attempts. The returned error is fn's
// last error (unwrapped for Permanent ones); on cancellation mid-sleep it
// is joined with the context's error so callers can classify either way.
func Do(ctx context.Context, p Policy, fn func(context.Context) error) error {
	p = p.withDefaults()
	for attempt := 1; ; attempt++ {
		err := fn(ctx)
		if err == nil {
			return nil
		}
		var perm *permanentError
		if errors.As(err, &perm) {
			return perm.err
		}
		if p.Attempts > 0 && attempt >= p.Attempts {
			return fmt.Errorf("retry: %d attempts: %w", attempt, err)
		}
		if serr := Sleep(ctx, p.Delay(attempt)); serr != nil {
			return errors.Join(serr, err)
		}
	}
}

// Sleep blocks for d or until the context is cancelled, whichever comes
// first, returning the context's error in the latter case. It is the
// context-aware sleep every retry loop in the repo should use instead of
// time.Sleep.
func Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
