package retry

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"
)

func TestDelayCappedExponential(t *testing.T) {
	p := Policy{Base: 100 * time.Millisecond, Max: 1 * time.Second, Factor: 2,
		Rand: rand.New(rand.NewSource(1))}
	// Pre-jitter ceilings: 100ms, 200ms, 400ms, 800ms, 1s, 1s, ...
	ceil := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		800 * time.Millisecond, time.Second, time.Second, time.Second,
	}
	for attempt := 1; attempt <= len(ceil); attempt++ {
		for trial := 0; trial < 50; trial++ {
			d := p.Delay(attempt)
			if d < 0 || d > ceil[attempt-1] {
				t.Fatalf("Delay(%d) = %v, want within [0, %v]", attempt, d, ceil[attempt-1])
			}
		}
	}
}

func TestDelayFullJitterSpreads(t *testing.T) {
	p := Policy{Base: time.Second, Max: time.Second, Rand: rand.New(rand.NewSource(7))}
	lo, hi := false, false
	for i := 0; i < 200; i++ {
		d := p.Delay(1)
		if d < 250*time.Millisecond {
			lo = true
		}
		if d > 750*time.Millisecond {
			hi = true
		}
	}
	if !lo || !hi {
		t.Fatalf("200 jittered delays never reached both quartiles (lo=%v hi=%v): not full jitter", lo, hi)
	}
}

func TestDelayZeroValuePolicy(t *testing.T) {
	var p Policy
	if d := p.Delay(3); d < 0 || d > 5*time.Second {
		t.Fatalf("zero-value policy Delay(3) = %v, want within [0, 5s]", d)
	}
}

func TestDoRetriesThenSucceeds(t *testing.T) {
	calls := 0
	err := Do(context.Background(), Policy{Base: time.Microsecond, Max: time.Microsecond}, func(context.Context) error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("Do = %v after %d calls, want success on the 3rd", err, calls)
	}
}

func TestDoPermanentStopsImmediately(t *testing.T) {
	sentinel := errors.New("bad request")
	calls := 0
	err := Do(context.Background(), Policy{Base: time.Microsecond}, func(context.Context) error {
		calls++
		return Permanent(sentinel)
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("Do = %v, want the permanent error unwrapped", err)
	}
	if calls != 1 {
		t.Fatalf("permanent error retried: %d calls", calls)
	}
}

func TestDoAttemptsExhausted(t *testing.T) {
	sentinel := errors.New("still down")
	calls := 0
	err := Do(context.Background(), Policy{Base: time.Microsecond, Max: time.Microsecond, Attempts: 4},
		func(context.Context) error { calls++; return sentinel })
	if calls != 4 {
		t.Fatalf("Attempts=4 made %d calls", calls)
	}
	if !errors.Is(err, sentinel) {
		t.Fatalf("exhausted Do = %v, want it to wrap the last error", err)
	}
}

func TestDoCancelledMidSleep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	done := make(chan error, 1)
	go func() {
		done <- Do(ctx, Policy{Base: time.Hour, Max: time.Hour}, func(context.Context) error {
			calls++
			return errors.New("transient")
		})
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled Do = %v, want context.Canceled in the chain", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Do did not return after cancellation")
	}
	if calls != 1 {
		t.Fatalf("expected exactly one call before the hour-long sleep, got %d", calls)
	}
}

func TestSleepCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := Sleep(ctx, time.Hour); !errors.Is(err, context.Canceled) {
		t.Fatalf("Sleep on dead context = %v", err)
	}
	if err := Sleep(context.Background(), 0); err != nil {
		t.Fatalf("Sleep(0) = %v", err)
	}
}
