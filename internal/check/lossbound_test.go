package check

import (
	"testing"

	"topocon/internal/ma"
)

// TestLossBoundedThresholds is E11: the Santoro-Widmayer message-loss
// thresholds [21, 22]. With at most f messages lost per round, consensus
// is impossible for f ≥ n-1 (the adversary can mute one process forever)
// and solvable for f < n-1.
func TestLossBoundedThresholds(t *testing.T) {
	tests := []struct {
		n, f, horizon int
		solvable      bool
	}{
		{2, 1, 3, false}, // f = n-1: the classic lossy link
		{3, 0, 2, true},  // complete graphs only
		{3, 1, 3, true},  // below threshold
		{3, 2, 2, false}, // f = n-1: mute a process
	}
	for _, tt := range tests {
		adv := ma.LossBounded(tt.n, tt.f)
		res := mustConsensus(t, adv, Options{MaxHorizon: tt.horizon})
		got := res.Verdict == VerdictSolvable
		if got != tt.solvable {
			t.Errorf("n=%d f=%d: verdict %v, want solvable=%v", tt.n, tt.f, res.Verdict, tt.solvable)
			continue
		}
		if !res.Exact {
			t.Errorf("n=%d f=%d: verdict not exact", tt.n, tt.f)
		}
		if !tt.solvable && res.Certificate == nil {
			t.Errorf("n=%d f=%d: impossible without certificate", tt.n, tt.f)
		}
	}
}
