package check

import (
	"fmt"

	"topocon/internal/ptg"
)

// View is the causally-local knowledge of one process at one time: exactly
// the information a full-information protocol possesses. Decision rules
// consult only this — which is what makes them implementable by real
// processes (package sim) and evaluable over prefix spaces (this package).
type View struct {
	// Time and Proc locate the view.
	Time, Proc int
	// ID is the hash-consed view identity, valid in the rule's interner;
	// NoViewID when the producer does not compute IDs.
	ID ptg.ViewID
	// Heard is the bitmask of processes whose initial value is in the
	// causal past.
	Heard uint64
	// inputs holds input values; access is gated by Heard.
	inputs []int
}

// NoViewID marks a View whose hash-consed identity was not computed.
const NoViewID ptg.ViewID = -1

// NewView assembles a View; inputs[q] is consulted only for heard q.
func NewView(time, proc int, id ptg.ViewID, heard uint64, inputs []int) View {
	return View{Time: time, Proc: proc, ID: id, Heard: heard, inputs: inputs}
}

// ViewOf extracts process p's time-t view from globally-computed run views.
func ViewOf(run ptg.Run, v *ptg.Views, t, p int) View {
	return NewView(t, p, v.ID(t, p), v.Heard(t, p), run.Inputs)
}

// Input returns the input value of process q if q has been heard.
func (v View) Input(q int) (int, bool) {
	if v.Heard&(1<<uint(q)) == 0 || q >= len(v.inputs) {
		return 0, false
	}
	return v.inputs[q], true
}

// Rule is a decision rule of a full-information consensus algorithm: an
// irrevocable decision predicate on causally-local views.
type Rule interface {
	// Name identifies the rule.
	Name() string
	// Decide returns (value, true) once the viewing process can decide.
	Decide(v View) (int, bool)
	// Interner returns the interner in which View.ID must be computed,
	// or nil if the rule ignores view identities.
	Interner() *ptg.Interner
}

// MapRule adapts a DecisionMap (the compact-adversary universal algorithm
// of Theorem 5.5) to the Rule interface.
type MapRule struct {
	Map *DecisionMap
}

var _ Rule = (*MapRule)(nil)

// Name implements Rule.
func (r *MapRule) Name() string { return "universal-map" }

// Interner implements Rule.
func (r *MapRule) Interner() *ptg.Interner { return r.Map.Interner() }

// Decide implements Rule.
func (r *MapRule) Decide(v View) (int, bool) {
	if v.Time > r.Map.Reference() || v.ID == NoViewID {
		return 0, false
	}
	return r.Map.Decide(v.ID)
}

// BroadcastRule is the non-compact universal algorithm of Theorem 6.7 for
// adversaries whose every admissible run is broadcast by one designated
// process p* (e.g. the stable root of an eventually-stabilizing adversary):
// the partition PS(v) = {runs with x_{p*} = v} is open because every
// process eventually hears p*, and deciding x_{p*} upon first hearing it
// realizes the partition.
type BroadcastRule struct {
	// Broadcaster is the designated process p*.
	Broadcaster int
}

var _ Rule = (*BroadcastRule)(nil)

// Name implements Rule.
func (r *BroadcastRule) Name() string {
	return fmt.Sprintf("broadcast(p=%d)", r.Broadcaster+1)
}

// Interner implements Rule: view identities are not consulted.
func (r *BroadcastRule) Interner() *ptg.Interner { return nil }

// Decide implements Rule: decide x_{p*} once p* has been heard.
func (r *BroadcastRule) Decide(v View) (int, bool) {
	return v.Input(r.Broadcaster)
}
