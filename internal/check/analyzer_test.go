package check

import (
	"context"
	"errors"
	"strings"
	"testing"

	"topocon/internal/graph"
	"topocon/internal/ma"
	"topocon/internal/pager"
	"topocon/internal/topo"
)

// TestAnalyzerMatchesFromScratch replays the pre-session per-horizon
// rebuild loop and asserts the incremental Analyzer reaches the same
// separation/broadcast horizons and decomposition statistics on every
// compact seed adversary.
func TestAnalyzerMatchesFromScratch(t *testing.T) {
	stable := ma.MustEventuallyStable("",
		[]graph.Graph{graph.Left, graph.Both}, []graph.Graph{graph.Right}, 1)
	advs := []ma.Adversary{
		ma.LossyLink2(),
		ma.LossyLink3(),
		ma.LossBounded(2, 1),
		ma.MustDeadlineStable(stable, 2),
	}
	const maxHorizon = 5
	for _, adv := range advs {
		// Legacy path: fresh space per horizon, loop until separation and
		// broadcastability are both witnessed.
		sepWant, bcastWant := -1, -1
		var lastComps, lastMixed int
		for horizon := 1; horizon <= maxHorizon; horizon++ {
			s, err := topo.Build(adv, 2, horizon, 0)
			if err != nil {
				t.Fatal(err)
			}
			d := topo.Decompose(s)
			lastComps = len(d.Comps)
			lastMixed = len(d.MixedComponents())
			if sepWant < 0 && lastMixed == 0 {
				sepWant = horizon
			}
			if bcastWant < 0 && d.ValentComponentsBroadcastable() {
				bcastWant = horizon
			}
			if sepWant >= 0 && bcastWant >= 0 {
				break
			}
		}
		a, err := NewAnalyzer(adv, WithMaxHorizon(maxHorizon))
		if err != nil {
			t.Fatal(err)
		}
		res, err := a.Check(context.Background())
		if err != nil {
			t.Fatalf("%s: %v", adv.Name(), err)
		}
		if res.SeparationHorizon != sepWant || res.BroadcastHorizon != bcastWant {
			t.Errorf("%s: separation/broadcast = %d/%d, from-scratch found %d/%d",
				adv.Name(), res.SeparationHorizon, res.BroadcastHorizon, sepWant, bcastWant)
		}
		if res.Components != lastComps || res.MixedComponents != lastMixed {
			t.Errorf("%s: components/mixed = %d/%d, from-scratch found %d/%d",
				adv.Name(), res.Components, res.MixedComponents, lastComps, lastMixed)
		}
	}
}

// TestAnalyzerParallelMatchesSequential asserts verdict equality between
// sequential and worker-pool sessions.
func TestAnalyzerParallelMatchesSequential(t *testing.T) {
	stable := ma.MustEventuallyStable("",
		[]graph.Graph{graph.Left, graph.Both}, []graph.Graph{graph.Right}, 2)
	for _, adv := range []ma.Adversary{ma.LossyLink2(), ma.LossyLink3(), stable} {
		seq, err := Consensus(adv, Options{MaxHorizon: 5})
		if err != nil {
			t.Fatal(err)
		}
		a, err := NewAnalyzer(adv, WithMaxHorizon(5), WithParallelism(4))
		if err != nil {
			t.Fatal(err)
		}
		par, err := a.Check(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if seq.Verdict != par.Verdict || seq.SeparationHorizon != par.SeparationHorizon ||
			seq.Broadcaster != par.Broadcaster {
			t.Errorf("%s: sequential %v/%d/%d vs parallel %v/%d/%d", adv.Name(),
				seq.Verdict, seq.SeparationHorizon, seq.Broadcaster,
				par.Verdict, par.SeparationHorizon, par.Broadcaster)
		}
	}
}

// TestAnalyzerStep drives a session one horizon at a time and checks the
// exhaustion sentinel.
func TestAnalyzerStep(t *testing.T) {
	a, err := NewAnalyzer(ma.LossyLink3(), WithMaxHorizon(3))
	if err != nil {
		t.Fatal(err)
	}
	for want := 1; want <= 3; want++ {
		rep, err := a.Step(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if rep.Horizon != want {
			t.Fatalf("step %d: horizon %d", want, rep.Horizon)
		}
		if wantRuns := 4 * pow(3, want); rep.Runs != wantRuns {
			t.Errorf("horizon %d: %d runs, want %d", want, rep.Runs, wantRuns)
		}
		if a.Horizon() != want {
			t.Errorf("Horizon() = %d, want %d", a.Horizon(), want)
		}
		if s := a.SpaceAt(want); s == nil || s.Horizon != want {
			t.Errorf("SpaceAt(%d) = %v", want, s)
		}
	}
	if _, err := a.Step(context.Background()); !errors.Is(err, ErrHorizonExhausted) {
		t.Errorf("step past MaxHorizon: err = %v, want ErrHorizonExhausted", err)
	}
	// Check still finalizes from the stepped state.
	res, err := a.Check(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != VerdictImpossible {
		t.Errorf("verdict = %v, want impossible", res.Verdict)
	}
}

// TestAnalyzerProgress asserts the WithProgress callback sees every horizon
// in order with consistent statistics.
func TestAnalyzerProgress(t *testing.T) {
	var reports []HorizonReport
	a, err := NewAnalyzer(ma.LossyLink3(),
		WithMaxHorizon(4),
		WithProgress(func(r HorizonReport) { reports = append(reports, r) }))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Check(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(reports) != 4 {
		t.Fatalf("%d reports, want 4", len(reports))
	}
	for i, r := range reports {
		if r.Horizon != i+1 {
			t.Errorf("report %d: horizon %d", i, r.Horizon)
		}
		if r.MixedComponents == 0 {
			t.Errorf("horizon %d: lossy link should stay mixed", r.Horizon)
		}
	}
}

// TestAnalyzerCancellation checks that both routes stop on a cancelled
// context and that the session resumes afterwards.
func TestAnalyzerCancellation(t *testing.T) {
	stable := ma.MustEventuallyStable("",
		[]graph.Graph{graph.Left, graph.Both}, []graph.Graph{graph.Right}, 2)
	for _, adv := range []ma.Adversary{ma.LossyLink3(), stable} {
		a, err := NewAnalyzer(adv, WithMaxHorizon(5))
		if err != nil {
			t.Fatal(err)
		}
		cancelled, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := a.Check(cancelled); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: Check on cancelled ctx: %v, want context.Canceled", adv.Name(), err)
		}
		// Cancel mid-run: stop after the second horizon completes.
		b, err := NewAnalyzer(adv, WithMaxHorizon(5))
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancelMid := context.WithCancel(context.Background())
		steps := 0
		b2, err := NewAnalyzer(adv, WithMaxHorizon(5), WithProgress(func(HorizonReport) {
			steps++
			if steps == 2 {
				cancelMid()
			}
		}))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := b2.Check(ctx); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: mid-run cancel: %v, want context.Canceled", adv.Name(), err)
		}
		if b2.Horizon() != 2 {
			t.Errorf("%s: horizon after mid-run cancel = %d, want 2", adv.Name(), b2.Horizon())
		}
		// The cancelled session resumes with a fresh context and agrees
		// with an uninterrupted one.
		resumed, err := b2.Check(context.Background())
		if err != nil {
			t.Fatalf("%s: resume: %v", adv.Name(), err)
		}
		full, err := b.Check(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if resumed.Verdict != full.Verdict || resumed.Horizon != full.Horizon {
			t.Errorf("%s: resumed %v@%d vs uninterrupted %v@%d", adv.Name(),
				resumed.Verdict, resumed.Horizon, full.Verdict, full.Horizon)
		}
	}
}

// TestAnalyzerRejectsNegativeOptions is the Options validation contract:
// explicitly negative budgets error instead of being silently analysed.
func TestAnalyzerRejectsNegativeOptions(t *testing.T) {
	cases := []struct {
		name string
		opts Options
	}{
		{"negative horizon", Options{MaxHorizon: -1}},
		{"negative domain", Options{InputDomain: -2}},
		{"negative max runs", Options{MaxRuns: -1}},
		{"negative latency slack", Options{LatencySlack: -3}},
	}
	for _, c := range cases {
		if _, err := NewAnalyzer(ma.LossyLink2(), WithOptions(c.opts)); err == nil {
			t.Errorf("NewAnalyzer with %s: want error", c.name)
		}
		if _, err := Consensus(ma.LossyLink2(), c.opts); err == nil {
			t.Errorf("Consensus with %s: want error", c.name)
		}
	}
	// CertChainLen stays sign-significant: negative means "disable".
	if _, err := NewAnalyzer(ma.LossyLink2(), WithCertChainLen(-1)); err != nil {
		t.Errorf("negative CertChainLen must stay legal: %v", err)
	}
}

// TestAnalyzerSharedInterner asserts every retained space and the compiled
// decision map share one interner, so views are comparable across horizons.
func TestAnalyzerSharedInterner(t *testing.T) {
	a, err := NewAnalyzer(ma.LossyLink2(), WithMaxHorizon(3), WithRetainSpaces(0))
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Check(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != VerdictSolvable || res.Map == nil {
		t.Fatalf("verdict %v, map %v", res.Verdict, res.Map)
	}
	in := res.Map.Interner()
	// retain = 0 keeps every horizon alive.
	for horizon := 0; horizon <= a.Horizon(); horizon++ {
		s := a.SpaceAt(horizon)
		if s == nil {
			t.Fatalf("SpaceAt(%d) = nil under retain-all", horizon)
		}
		if s.Interner != in {
			t.Errorf("horizon %d: interner differs from decision map's", horizon)
		}
	}
	if a.DecisionMap() != res.Map {
		t.Error("DecisionMap() disagrees with Result")
	}
}

// TestAnalyzerRetention pins the space-retention contract: a deep session
// under the default policy holds at most two spaces alive (the deepest and
// the separation horizon's), SpaceAt serves exactly those, WithRetainSpaces
// widens or disables the window, and negative retention is rejected.
func TestAnalyzerRetention(t *testing.T) {
	const maxHorizon = 8
	runDeep := func(t *testing.T, opts ...AnalyzerOption) *Analyzer {
		t.Helper()
		a, err := NewAnalyzer(ma.LossyLink2(), append([]AnalyzerOption{WithMaxHorizon(maxHorizon)}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		// Check stops at the separation horizon; keep stepping to depth.
		if _, err := a.Check(context.Background()); err != nil {
			t.Fatal(err)
		}
		for {
			if _, err := a.Step(context.Background()); err != nil {
				if errors.Is(err, ErrHorizonExhausted) {
					break
				}
				t.Fatal(err)
			}
		}
		if a.Horizon() != maxHorizon {
			t.Fatalf("deep session stopped at horizon %d", a.Horizon())
		}
		return a
	}

	t.Run("default", func(t *testing.T) {
		a := runDeep(t)
		retained := a.RetainedHorizons()
		if len(retained) > 2 {
			t.Fatalf("default retention holds %d spaces (%v), want at most 2", len(retained), retained)
		}
		sep := a.Result().SeparationHorizon
		if sep < 0 {
			t.Fatalf("LossyLink2 must separate")
		}
		if a.SpaceAt(sep) == nil {
			t.Errorf("separation-horizon space (t=%d) evicted", sep)
		}
		if a.SpaceAt(maxHorizon) == nil {
			t.Error("deepest space evicted")
		}
		for horizon := 0; horizon < maxHorizon; horizon++ {
			if horizon != sep && a.SpaceAt(horizon) != nil {
				t.Errorf("SpaceAt(%d) alive, want evicted", horizon)
			}
		}
		// The retained reference space still backs the decision map.
		if a.Result().Space != a.SpaceAt(sep) {
			t.Error("Result.Space disagrees with SpaceAt(separation)")
		}
	})
	t.Run("retain-all", func(t *testing.T) {
		a := runDeep(t, WithRetainSpaces(0))
		if got := len(a.RetainedHorizons()); got != maxHorizon+1 {
			t.Errorf("retain-all holds %d spaces, want %d", got, maxHorizon+1)
		}
	})
	t.Run("retain-3", func(t *testing.T) {
		a := runDeep(t, WithRetainSpaces(3))
		want := map[int]bool{maxHorizon: true, maxHorizon - 1: true, maxHorizon - 2: true,
			a.Result().SeparationHorizon: true}
		for horizon := 0; horizon <= maxHorizon; horizon++ {
			if alive := a.SpaceAt(horizon) != nil; alive != want[horizon] {
				t.Errorf("SpaceAt(%d) alive=%v, want %v", horizon, alive, want[horizon])
			}
		}
	})
	t.Run("negative", func(t *testing.T) {
		if _, err := NewAnalyzer(ma.LossyLink2(), WithRetainSpaces(-1)); err == nil {
			t.Error("negative retention: want error")
		}
	})
	// With a pager attached, SpaceAt rehydrates evicted horizons from the
	// spilled frontier pages instead of returning nil; the retained set
	// itself stays as small as before.
	t.Run("pager-rehydrates", func(t *testing.T) {
		pg, err := pager.New(pager.Config{Dir: t.TempDir(), HotBytes: 1})
		if err != nil {
			t.Fatal(err)
		}
		a := runDeep(t, WithPager(pg))
		if retained := a.RetainedHorizons(); len(retained) > 2 {
			t.Fatalf("pager session retains %d spaces (%v), want at most 2", len(retained), retained)
		}
		for horizon := 0; horizon <= maxHorizon; horizon++ {
			s := a.SpaceAt(horizon)
			if s == nil {
				t.Fatalf("SpaceAt(%d) = nil with pager attached", horizon)
			}
			if s.Horizon != horizon {
				t.Fatalf("SpaceAt(%d) rehydrated horizon %d", horizon, s.Horizon)
			}
			want, err := topo.Build(ma.LossyLink2(), 2, horizon, 0)
			if err != nil {
				t.Fatal(err)
			}
			// The session quotients by the lossy-link swap symmetry, so the
			// rehydrated space interns representatives; its orbit-weighted
			// size must match the full from-scratch build.
			if s.FullLen() != want.Len() {
				t.Errorf("SpaceAt(%d): %d full-space runs, from-scratch build has %d", horizon, s.FullLen(), want.Len())
			}
		}
		if a.SpaceAt(maxHorizon+1) != nil {
			t.Error("SpaceAt beyond the analysed horizon served a space")
		}
	})
}

// TestLatencySlackExceedsHorizon is the regression for the silent
// zero-witness outcome: with LatencySlack > MaxHorizon every discharged run
// is rejected (DoneAt > t - slack holds even for DoneAt = 0) and the
// non-compact route used to report a bare VerdictUnknown with no hint.
func TestLatencySlackExceedsHorizon(t *testing.T) {
	stable := ma.MustEventuallyStable("",
		[]graph.Graph{graph.Left, graph.Both}, []graph.Graph{graph.Right}, 1)
	const maxHorizon = 3
	// Sanity: with the default slack the adversary discharges and solves.
	base, err := Consensus(stable, Options{MaxHorizon: maxHorizon})
	if err != nil {
		t.Fatal(err)
	}
	if base.Verdict != VerdictSolvable {
		t.Fatalf("baseline verdict %v, want solvable", base.Verdict)
	}
	a, err := NewAnalyzer(stable, WithMaxHorizon(maxHorizon), WithLatencySlack(maxHorizon+1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Check(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != VerdictUnknown {
		t.Fatalf("verdict %v, want unknown", res.Verdict)
	}
	if len(res.Notes) == 0 {
		t.Fatal("zero-witness outcome recorded no note")
	}
	if !strings.Contains(res.Notes[0], "latency slack") || !strings.Contains(res.Notes[0], "exceeds") {
		t.Errorf("note %q does not name the slack misconfiguration", res.Notes[0])
	}
	if !strings.Contains(res.Summary(), res.Notes[0]) {
		t.Error("Summary does not surface the note")
	}
}

func pow(b, e int) int {
	out := 1
	for ; e > 0; e-- {
		out *= b
	}
	return out
}
