package check

import (
	"fmt"
	"reflect"
	"testing"

	"topocon/internal/graph"
	"topocon/internal/ma"
)

// TestQuotientMatchesFullSpace is the soundness pin for the automorphism
// quotient (DESIGN.md §13): for every seed adversary family, a session
// analysing the quotiented prefix space and a session analysing the full
// space (Options.NoSymmetry) must be observationally identical — same
// verdict and exactness, same separation and broadcast horizons, same
// component counts, same full-space run totals, and the same compiled
// universal algorithm (size, reference horizon, and per-run decision
// times/values over the whole unquotiented space). The corpus spans the
// quotient's regimes: order-2 groups (the lossy links), S₃ on the n=3
// loss-bounded family, the non-compact route (eventually-stable and its
// deadline compactification), and an asymmetric adversary whose trivial
// group makes the quotient a structural no-op.
func TestQuotientMatchesFullSpace(t *testing.T) {
	stable := ma.MustEventuallyStable("stable-w1",
		[]graph.Graph{graph.Left, graph.Both}, []graph.Graph{graph.Right}, 1)
	asym := ma.MustOblivious("asymmetric{<-,<->}", graph.Left, graph.Both)
	if !ma.Automorphisms(asym).Trivial() {
		t.Fatal("asymmetric corpus member has a non-trivial group; pick another")
	}
	cases := []struct {
		adv        ma.Adversary
		maxHorizon int
		groupOrder int
	}{
		{ma.LossyLink2(), 5, 2},
		{ma.LossyLink3(), 5, 2},
		{ma.LossBounded(3, 1), 3, 6}, // n=3: horizon capped like the topo suite
		{stable, 5, 1},
		{ma.MustDeadlineStable(stable, 2), 5, 1},
		{asym, 5, 1},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.adv.Name(), func(t *testing.T) {
			if got := ma.Automorphisms(tc.adv).Order(); got != tc.groupOrder {
				t.Fatalf("group order = %d, want %d: the corpus no longer exercises this regime", got, tc.groupOrder)
			}
			quot := mustConsensus(t, tc.adv, Options{MaxHorizon: tc.maxHorizon})
			full := mustConsensus(t, tc.adv, Options{MaxHorizon: tc.maxHorizon, NoSymmetry: true})

			if qp, fp := observableProfile(t, quot), observableProfile(t, full); qp != fp {
				t.Errorf("quotient and full sessions diverge:\n  quotient %+v\n  full     %+v", qp, fp)
			}
			if quot.Map != nil {
				qd, fd := decisionProfile(t, quot), decisionProfile(t, full)
				if len(qd) == 0 {
					t.Fatal("solvable quotient session produced an empty decision profile")
				}
				if !reflect.DeepEqual(qd, fd) {
					for run, want := range fd {
						if got, ok := qd[run]; !ok {
							t.Errorf("quotient decides no run %s (full: %s)", run, want)
						} else if got != want {
							t.Errorf("run %s: quotient decides %s, full decides %s", run, got, want)
						}
					}
					for run := range qd {
						if _, ok := fd[run]; !ok {
							t.Errorf("quotient decides phantom run %s absent from the full space", run)
						}
					}
				}
			}
		})
	}
}

// observableProfile flattens a Result to its comparable observables. Space
// sizes are compared as full-space run counts: the quotient session's
// FullLen weights each representative by its orbit, which must reproduce
// the unquotiented session's item count exactly.
func observableProfile(t *testing.T, res *Result) string {
	t.Helper()
	mapSize, mapRef, runs := -1, -1, -1
	if res.Map != nil {
		mapSize, mapRef = res.Map.Size(), res.Map.Reference()
	}
	if res.Space != nil {
		runs = res.Space.FullLen()
	}
	return fmt.Sprintf(
		"verdict=%v exact=%v sep=%d bcast=%d horizon=%d mixed=%d comps=%d mapSize=%d mapRef=%d runs=%d bcaster=%d latency=%d pending=%v notes=%q",
		res.Verdict, res.Exact, res.SeparationHorizon, res.BroadcastHorizon,
		res.Horizon, res.MixedComponents, res.Components,
		mapSize, mapRef, runs,
		res.Broadcaster, res.MaxDecisionLatency, res.PendingUndecided, res.Notes)
}

// decisionProfile runs the compiled universal algorithm over every run of
// the session's reference space — orbit members included — and indexes the
// per-process decision times and values by the run's canonical rendering,
// so profiles from sessions with different interners compare by content.
func decisionProfile(t *testing.T, res *Result) map[string]string {
	t.Helper()
	times, values, err := res.Map.DecisionRounds(res.Space)
	if err != nil {
		t.Fatal(err)
	}
	m := res.Space.SymOrder()
	prof := make(map[string]string, len(times))
	for pi := range times {
		run := res.Space.PseudoRun(pi/m, pi%m)
		key := run.String()
		entry := fmt.Sprintf("t=%v v=%v", times[pi], values[pi])
		if prev, dup := prof[key]; dup && prev != entry {
			t.Errorf("run %s maps to two decision profiles: %s and %s", key, prev, entry)
		}
		prof[key] = entry
	}
	return prof
}
