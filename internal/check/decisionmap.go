// Package check implements the paper's primary contribution in executable
// form: the consensus solvability characterizations (Theorems 5.5, 5.11,
// 6.6, 6.7 and Corollary 5.6) and the universal consensus algorithm
// extracted from the proof of Theorem 5.5.
//
// The checker analyses the horizon-t prefix spaces of a message adversary
// (package topo). Its soundness rests on the refinement property: if two
// runs share a process view at horizon t+1 they share one at horizon t, so
// connected components only ever split as the horizon grows. Consequently
//
//   - a component that is valence-pure at some horizon stays valence-pure
//     at all later horizons, making "decide v once every compatible run
//     lies in a pure-v component" safe at any time; and
//   - once no component mixes two valences, separation persists forever —
//     the first separating horizon is an exact solvability witness for
//     compact adversaries (Theorem 6.6's ε).
package check

import (
	"fmt"

	"topocon/internal/ma"
	"topocon/internal/ptg"
	"topocon/internal/topo"
)

// DecisionMap is the executable form of the paper's universal consensus
// algorithm (proof of Theorem 5.5): a partition {PS(v)} of the reference
// prefix space into open sets, compiled into a lookup table from local
// views to decision values. A process decides v at time t as soon as its
// view V satisfies {b ∈ PS : π_p(b^t) = V} ⊆ PS(v) — here: as soon as its
// hash-consed ViewID is decisive.
type DecisionMap struct {
	adv       ma.Adversary
	interner  *ptg.Interner
	reference int
	domain    int
	decide    map[ptg.ViewID]int
	// assignment[ci] is the value assigned to component ci of the
	// reference decomposition (-1 for mixed components).
	assignment []int
}

// BuildDecisionMap compiles the universal algorithm from the decomposition
// of the reference-horizon space, following the meta-procedure after
// Theorem 5.5:
//
//  1. every component containing a v-valent run is assigned v (components
//     mixing valences stay unassigned — consensus cannot decide them);
//  2. valence-free components are assigned the input value of their
//     smallest broadcaster (Definition 5.8); by Theorem 5.9 that input is
//     uniform across the component. This choice — rather than a fixed
//     default — keeps the assignment aligned with the value neighbouring
//     valent components carry, which is what makes the universal algorithm
//     terminate (the paper's step 3 says "arbitrary", but arbitrary is
//     only safe for agreement and validity, not for fast termination);
//     components without a broadcaster fall back to the default value;
//  3. a view at time t ≤ reference is decisive for v iff every run
//     compatible with it lies in a component assigned v.
func BuildDecisionMap(d *topo.Decomposition, defaultValue int) *DecisionMap {
	s := d.Space
	mult := d.Mult
	if mult <= 1 {
		mult = 1
	}
	m := &DecisionMap{
		adv:        s.Adversary,
		interner:   s.Interner,
		reference:  s.Horizon,
		domain:     s.InputDomain,
		decide:     make(map[ptg.ViewID]int, s.Len()),
		assignment: make([]int, len(d.Comps)),
	}
	for ci := range d.Comps {
		c := &d.Comps[ci]
		switch len(c.Valences) {
		case 0:
			m.assignment[ci] = defaultValue
			if bc := c.Broadcasters & c.UniformInputs; bc != 0 {
				p := 0
				for bc&1 == 0 {
					bc >>= 1
					p++
				}
				// Members index pseudo-items on quotiented spaces
				// (DESIGN.md §13); the broadcaster's input lives in the
				// relabeled copy, not the representative.
				m.assignment[ci] = s.PseudoInput(c.Members[0]/mult, c.Members[0]%mult, p)
			}
		case 1:
			m.assignment[ci] = c.Valences[0]
		default:
			m.assignment[ci] = -1
		}
	}
	// A view bucket is decisive iff all its runs' components share one
	// assigned value. ViewIDs encode owner and time, so one table over
	// all (t, p) is sound. On quotiented spaces the fold must cover every
	// orbit member, not just the representative: the relabeled copies
	// contribute their own view rows (ids pushed through the relabel memo),
	// and a view decisive among representatives alone could be mixed once
	// a twin reaches it.
	type bucket struct {
		value    int
		decisive bool
	}
	buckets := make(map[ptg.ViewID]bucket, s.Len()*s.N())
	for i := 0; i < s.Len(); i++ {
		for k := 0; k < mult; k++ {
			v := m.assignment[d.CompOf[i*mult+k]]
			views := s.PseudoViews(i, k)
			for t := 0; t <= s.Horizon; t++ {
				for p := 0; p < s.N(); p++ {
					id := views.ID(t, p)
					b, seen := buckets[id]
					switch {
					case !seen:
						buckets[id] = bucket{value: v, decisive: v >= 0}
					case b.decisive && b.value != v:
						buckets[id] = bucket{decisive: false}
					}
				}
			}
		}
	}
	for id, b := range buckets {
		if b.decisive {
			m.decide[id] = b.value
		}
	}
	return m
}

// Adversary returns the adversary the map was built for.
func (m *DecisionMap) Adversary() ma.Adversary { return m.adv }

// Interner returns the interner in which views must be computed for Decide
// lookups to be meaningful.
func (m *DecisionMap) Interner() *ptg.Interner { return m.interner }

// Reference returns the horizon of the space the map was compiled from.
func (m *DecisionMap) Reference() int { return m.reference }

// Size returns the number of decisive views.
func (m *DecisionMap) Size() int { return len(m.decide) }

// Decide returns the decision value for a view, if the view is decisive.
func (m *DecisionMap) Decide(id ptg.ViewID) (int, bool) {
	v, ok := m.decide[id]
	return v, ok
}

// DecisionRounds runs the universal algorithm over every run of the
// reference space and returns, for each run, the per-process decision
// times (-1 when a process has not decided by the reference horizon) and
// values. On quotiented spaces (DESIGN.md §13) the rows enumerate every
// orbit member — pseudo-item (i, k) lands at row i*SymOrder()+k — so the
// result covers the full space, not just the interned representatives.
func (m *DecisionMap) DecisionRounds(s *topo.Space) ([][]int, [][]int, error) {
	if s.Interner != m.interner {
		return nil, nil, fmt.Errorf("check: space and decision map use different interners")
	}
	n := s.N()
	mult := s.SymOrder()
	times := make([][]int, s.Len()*mult)
	values := make([][]int, s.Len()*mult)
	for i := 0; i < s.Len(); i++ {
		for k := 0; k < mult; k++ {
			pi := i*mult + k
			times[pi] = make([]int, n)
			values[pi] = make([]int, n)
			views := s.PseudoViews(i, k)
			for p := 0; p < n; p++ {
				times[pi][p] = -1
				values[pi][p] = -1
				for t := 0; t <= s.Horizon && t <= m.reference; t++ {
					if v, ok := m.decide[views.ID(t, p)]; ok {
						times[pi][p] = t
						values[pi][p] = v
						break
					}
				}
			}
		}
	}
	return times, values, nil
}

// CrossAssignmentLevel returns the largest agreement level over pairs of
// runs whose assigned decision values differ — i.e. the minimum distance
// between the decision sets PS(v) of the compiled partition is
// 2^-CrossAssignmentLevel. For compact solvable adversaries this distance
// is bounded away from 0 uniformly (Fig. 4); along deadline families it
// shrinks as 2^-R, witnessing the distance-0 limits of the non-compact
// union (Fig. 5). The second return is false when no such pair exists.
func (m *DecisionMap) CrossAssignmentLevel(d *topo.Decomposition) (int, bool) {
	s := d.Space
	if s.Interner != m.interner || len(d.Comps) != len(m.assignment) {
		return 0, false
	}
	// Materialize each assigned item's Views adapter once; the pair scan
	// then touches only shared row headers. On quotiented spaces the scan
	// covers every pseudo-item: cross-value pairs can relate two members
	// of the same orbit, so representatives alone would overstate the
	// separation level.
	mult := d.Mult
	if mult <= 1 {
		mult = 1
	}
	idx := make([]int, 0, len(d.CompOf))
	views := make([]*ptg.Views, 0, len(d.CompOf))
	for pi := 0; pi < len(d.CompOf); pi++ {
		if m.assignment[d.CompOf[pi]] >= 0 {
			idx = append(idx, pi)
			views = append(views, s.PseudoViews(pi/mult, pi%mult))
		}
	}
	best := -1
	for a := range idx {
		vi := m.assignment[d.CompOf[idx[a]]]
		for b := a + 1; b < len(idx); b++ {
			if vj := m.assignment[d.CompOf[idx[b]]]; vj == vi {
				continue
			}
			if l := ptg.MinAgreeLevel(views[a], views[b]); l > best {
				best = l
			}
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

// ComponentValue returns the decision value assigned to component ci of
// the reference decomposition (-1 for mixed components).
func (m *DecisionMap) ComponentValue(ci int) int { return m.assignment[ci] }

// CrossDecisionLevel measures the separation of a *fixed* algorithm's
// decision sets over a (possibly deeper) space: it runs the universal
// algorithm on every item of s and returns the largest agreement level
// over pairs of runs that decided different values, so the minimum
// distance between the realized decision sets Γ(v) is 2^-level. This is
// Corollary 6.1 made measurable: for a compact solvable adversary the
// level stays constant as the horizon grows (Fig. 4), while rebuilding the
// algorithm along a deadline family lets it grow without bound (Fig. 5).
// The space must share the map's interner.
func CrossDecisionLevel(m *DecisionMap, s *topo.Space) (int, bool, error) {
	_, values, err := m.DecisionRounds(s)
	if err != nil {
		return 0, false, err
	}
	// DecisionRounds rows enumerate pseudo-items on quotiented spaces;
	// mirror its indexing so every orbit member joins the pair scan.
	mult := s.SymOrder()
	idx := make([]int, 0, len(values))
	views := make([]*ptg.Views, 0, len(values))
	for pi := range values {
		if values[pi][0] >= 0 {
			idx = append(idx, pi)
			views = append(views, s.PseudoViews(pi/mult, pi%mult))
		}
	}
	best := -1
	for a := range idx {
		vi := values[idx[a]][0]
		for b := a + 1; b < len(idx); b++ {
			if values[idx[b]][0] == vi {
				continue
			}
			if l := ptg.MinAgreeLevel(views[a], views[b]); l > best {
				best = l
			}
		}
	}
	if best < 0 {
		return 0, false, nil
	}
	return best, true, nil
}
