package check

import (
	"context"
	"errors"
	"fmt"
	"time"

	"topocon/internal/baseline"
	"topocon/internal/graph"
	"topocon/internal/ma"
	"topocon/internal/pager"
	"topocon/internal/topo"
)

// ErrHorizonExhausted is returned by Analyzer.Step once every horizon up to
// MaxHorizon has been analysed.
var ErrHorizonExhausted = errors.New("check: analysis horizon exhausted")

// HorizonReport describes one completed horizon of an analysis session. It
// is delivered to the WithProgress callback after each one-horizon
// refinement and returned by Step.
type HorizonReport struct {
	// Horizon is the prefix length just analysed.
	Horizon int
	// Runs is the size of the horizon's prefix space.
	Runs int
	// Components and MixedComponents describe its decomposition.
	Components      int
	MixedComponents int
	// Broadcastable reports whether every valent component of this horizon
	// has a uniform-input broadcaster.
	Broadcastable bool
	// SeparationHorizon and BroadcastHorizon are the first horizons at
	// which separation / broadcastability held, or -1 while unseen
	// (compact adversaries only; -1 otherwise).
	SeparationHorizon int
	BroadcastHorizon  int
	// InternedRuns is the number of items actually materialized for this
	// horizon: Runs under Options.NoSymmetry, and the orbit-representative
	// count under the symmetry quotient — the observable the quotient
	// shrinks (DESIGN.md §13). Runs/InternedRuns is the live reduction
	// factor.
	InternedRuns int
	// InternedViews is the cumulative hash-consed view count, a proxy for
	// session memory.
	InternedViews int
	// Elapsed is the wall-clock cost of this horizon's extension and
	// decomposition.
	Elapsed time.Duration
}

// AnalyzerOption configures an Analyzer at construction.
type AnalyzerOption func(*Analyzer)

// WithInputDomain sets the number of input values (default 2).
func WithInputDomain(d int) AnalyzerOption {
	return func(a *Analyzer) { a.opts.InputDomain = d }
}

// WithMaxHorizon bounds the prefix horizons analysed (default 7).
func WithMaxHorizon(t int) AnalyzerOption {
	return func(a *Analyzer) { a.opts.MaxHorizon = t }
}

// WithMaxRuns bounds the prefix-space size (default topo.DefaultMaxRuns).
func WithMaxRuns(m int) AnalyzerOption {
	return func(a *Analyzer) { a.opts.MaxRuns = m }
}

// WithDefaultValue sets the value assigned to valence-free components
// without a broadcaster (default 0).
func WithDefaultValue(v int) AnalyzerOption {
	return func(a *Analyzer) { a.opts.DefaultValue = v }
}

// WithCertChainLen bounds the bivalence-certificate chain search; see
// Options.CertChainLen.
func WithCertChainLen(l int) AnalyzerOption {
	return func(a *Analyzer) { a.opts.CertChainLen = l }
}

// WithLatencySlack sets the non-compact decision-latency budget; see
// Options.LatencySlack.
func WithLatencySlack(r int) AnalyzerOption {
	return func(a *Analyzer) { a.opts.LatencySlack = r }
}

// WithParallelism spreads frontier expansion and decomposition over w
// workers (default 1, sequential).
func WithParallelism(w int) AnalyzerOption {
	return func(a *Analyzer) { a.parallelism = w }
}

// WithNoSymmetry disables the automorphism quotient; see
// Options.NoSymmetry.
func WithNoSymmetry() AnalyzerOption {
	return func(a *Analyzer) { a.opts.NoSymmetry = true }
}

// WithRetainSpaces sets the session's space-retention policy: the k deepest
// prefix spaces stay alive, plus — always — the separation-horizon space
// once it is found (the compiled decision map's reference). Evicted
// horizons are released to the garbage collector and SpaceAt returns nil
// for them. The default is k = 1 (deepest + separation), which bounds a
// session's live item memory to two horizons instead of Σ_t |PS^t|;
// k = 0 retains every analysed horizon (the pre-retention behaviour);
// negative k is a configuration error.
func WithRetainSpaces(k int) AnalyzerOption {
	return func(a *Analyzer) { a.retain = k }
}

// WithProgress registers a callback invoked after every analysed horizon,
// from the goroutine running Step or Check. The callback fires after the
// horizon's state is fully committed, so it is the safe hook for periodic
// checkpoints (Snapshot).
func WithProgress(fn func(HorizonReport)) AnalyzerOption {
	return func(a *Analyzer) { a.progress = fn }
}

// WithPager attaches an out-of-core pager to the session: frontier rounds
// that stop being the newest are spilled to the pager's page directory and
// evicted under its hot-set budget, chain walks fault them back in
// transparently, and the session becomes checkpointable (Snapshot) and
// SpaceAt can rehydrate evicted horizons. One pager serves one session.
//
//topocon:export
func WithPager(pg *pager.Pager) AnalyzerOption {
	return func(a *Analyzer) { a.pager = pg }
}

// WithOptions bulk-applies a legacy Options struct; later options override
// its fields. CheckConsensus is implemented with it.
func WithOptions(o Options) AnalyzerOption {
	return func(a *Analyzer) { a.opts = o }
}

// Analyzer is a stateful consensus-solvability analysis session over one
// message adversary. It refines the adversary's prefix space one horizon at
// a time — incrementally, via topo.Space.Extend, reusing the previous
// horizon's items, automaton states and hash-consed views — and applies the
// compact (Theorem 6.6) or non-compact (Theorem 6.7) route once the
// evidence suffices.
//
// Drive it either with Check, which advances horizons until a verdict is
// reached, or manually with Step, which advances exactly one horizon and
// reports it. Both accept a context for cancellation; a cancelled session
// keeps its completed horizons and can be resumed with a fresh context.
// An Analyzer is not safe for concurrent use.
type Analyzer struct {
	adv         ma.Adversary
	opts        Options
	parallelism int
	retain      int // spaces kept besides the separation horizon; 0 = all
	progress    func(HorizonReport)
	pager       *pager.Pager // nil = all-hot, not checkpointable

	// spaces[t] is the horizon-t prefix space, or nil once evicted by the
	// retention policy; retained spaces all share one interner.
	spaces   []*topo.Space
	cur      *topo.Space         // deepest space, never evicted
	decomp   *topo.Decomposition // decomposition at the deepest horizon
	sym      *ma.Group           // quotient group, computed at first Step
	res      *Result
	finished bool
}

// NewAnalyzer creates an analysis session for the adversary. It validates
// the configuration (negative InputDomain, MaxHorizon, MaxRuns,
// LatencySlack or retention are rejected) without building any space yet.
//
//topocon:export
func NewAnalyzer(adv ma.Adversary, options ...AnalyzerOption) (*Analyzer, error) {
	a := &Analyzer{adv: adv, parallelism: 1, retain: 1}
	for _, o := range options {
		o(a)
	}
	if a.retain < 0 {
		return nil, fmt.Errorf("check: negative space retention %d", a.retain)
	}
	opts, err := a.opts.withDefaults()
	if err != nil {
		return nil, err
	}
	a.opts = opts
	a.res = &Result{
		AdversaryName:      adv.Name(),
		Compact:            adv.Compact(),
		SeparationHorizon:  -1,
		BroadcastHorizon:   -1,
		Broadcaster:        -1,
		MaxDecisionLatency: -1,
	}
	return a, nil
}

// Adversary returns the adversary under analysis.
func (a *Analyzer) Adversary() ma.Adversary { return a.adv }

// Options returns the resolved session configuration.
func (a *Analyzer) Options() Options { return a.opts }

// Horizon returns the deepest horizon analysed so far (0 before any Step).
func (a *Analyzer) Horizon() int {
	if a.cur == nil {
		return 0
	}
	return a.cur.Horizon
}

// SpaceAt returns the retained prefix space at horizon t, or nil if that
// horizon has not been analysed or was evicted by the retention policy
// (WithRetainSpaces): by default only the deepest space and, once found,
// the separation-horizon space are served. With a pager attached
// (WithPager), an evicted horizon is rehydrated from the spilled frontier
// pages instead — automaton states replayed from the base, O(chain) page
// reads — and the rehydrated space is not cached: every call pays the
// rehydration, and dropping the result releases the memory again. Without
// a pager, evicted horizons return nil, as before. All returned spaces
// share one interner, so views are comparable across horizons and with the
// compiled decision map.
func (a *Analyzer) SpaceAt(t int) *topo.Space {
	if t < 0 || t >= len(a.spaces) {
		return nil
	}
	if s := a.spaces[t]; s != nil {
		return s
	}
	if a.pager != nil && a.cur != nil && t <= a.cur.Horizon {
		s, err := a.cur.AncestorAt(t)
		if err != nil {
			return nil
		}
		return s
	}
	return nil
}

// RetainedHorizons returns the horizons whose spaces are still alive, in
// ascending order — the exact set SpaceAt serves.
func (a *Analyzer) RetainedHorizons() []int {
	var out []int
	for t := range a.spaces {
		if a.spaces[t] != nil {
			out = append(out, t)
		}
	}
	return out
}

// Decomposition returns the decomposition at the deepest analysed horizon,
// or nil before the first Step.
func (a *Analyzer) Decomposition() *topo.Decomposition { return a.decomp }

// DecisionMap returns the compiled universal algorithm, or nil until the
// separation horizon has been found (compact adversaries only).
func (a *Analyzer) DecisionMap() *DecisionMap { return a.res.Map }

// Result returns the session's live result. Until Check completes, the
// verdict is VerdictUnknown's zero value and only the per-horizon fields
// are meaningful.
func (a *Analyzer) Result() *Result { return a.res }

// Finished reports whether Check has produced its final verdict.
func (a *Analyzer) Finished() bool { return a.finished }

// Pager returns the pager attached with WithPager, or nil.
func (a *Analyzer) Pager() *pager.Pager { return a.pager }

// symmetry returns the automorphism group the session quotients by — the
// trivial group under Options.NoSymmetry, ma.Automorphisms(adv)
// otherwise. Computed once and cached: the group identity must be stable
// across Step, Snapshot and restore within one session.
func (a *Analyzer) symmetry() *ma.Group {
	if a.sym == nil {
		if a.opts.NoSymmetry {
			a.sym = ma.TrivialGroup(a.adv.N())
		} else {
			a.sym = ma.Automorphisms(a.adv)
		}
	}
	return a.sym
}

// Symmetry returns the automorphism group the session quotients its
// prefix spaces by (trivial when NoSymmetry is set or the adversary has
// no nontrivial automorphisms).
func (a *Analyzer) Symmetry() *ma.Group { return a.symmetry() }

// Step advances the session by exactly one horizon: it extends the prefix
// space incrementally by one round, decomposes it — incrementally too,
// refining the previous horizon's partition via topo.Decomposition.Refine
// (components only ever split under the refinement invariant, so the child
// partition is seeded from the parent's and splits are detected locally);
// the first horizon, which has no parent partition, uses the from-scratch
// topo.DecomposeCtx — applies the retention policy, updates the running
// result, and reports. It returns ErrHorizonExhausted once MaxHorizon has
// been analysed, and the context error on cancellation (leaving the
// session resumable).
func (a *Analyzer) Step(ctx context.Context) (HorizonReport, error) {
	if a.Horizon() >= a.opts.MaxHorizon {
		return HorizonReport{}, ErrHorizonExhausted
	}
	if err := ctx.Err(); err != nil {
		return HorizonReport{}, err
	}
	start := time.Now()
	if a.cur == nil {
		base, err := topo.BuildCtx(ctx, a.adv, a.opts.InputDomain, 0, topo.Config{
			MaxRuns:     a.opts.MaxRuns,
			Parallelism: a.parallelism,
			Pager:       a.pager,
			Symmetry:    a.symmetry(),
		})
		if err != nil {
			return HorizonReport{}, fmt.Errorf("check: horizon 0: %w", err)
		}
		a.spaces = append(a.spaces, base)
		a.cur = base
	}
	next, err := a.cur.Extend(ctx, a.cur.Horizon+1)
	if err != nil {
		return HorizonReport{}, fmt.Errorf("check: horizon %d: %w", a.cur.Horizon+1, err)
	}
	var d *topo.Decomposition
	if a.decomp != nil {
		d, err = a.decomp.Refine(ctx, next)
	} else {
		d, err = topo.DecomposeCtx(ctx, next)
	}
	if err != nil {
		return HorizonReport{}, fmt.Errorf("check: horizon %d: %w", next.Horizon, err)
	}
	a.spaces = append(a.spaces, next)
	a.cur = next
	a.decomp = d
	a.evict()

	t := next.Horizon
	res := a.res
	res.Horizon = t
	res.MixedComponents = len(d.MixedComponents())
	res.Components = len(d.Comps)
	broadcastable := d.ValentComponentsBroadcastable()
	if a.adv.Compact() {
		if res.SeparationHorizon < 0 && res.MixedComponents == 0 {
			// Separation persists under refinement (components only ever
			// split), so the first separating horizon is where the
			// universal algorithm is compiled.
			res.SeparationHorizon = t
			res.Space = next
			res.Decomposition = d
			res.Map = BuildDecisionMap(d, a.opts.DefaultValue)
		}
		if res.BroadcastHorizon < 0 && broadcastable {
			res.BroadcastHorizon = t
		}
	}
	rep := HorizonReport{
		Horizon: t,
		// Runs reports full-space numbers: under the symmetry quotient
		// (Options.NoSymmetry unset) fewer items are interned, but the
		// space they represent — and every budget and report derived from
		// it — is unchanged.
		Runs:              next.FullLen(),
		InternedRuns:      next.Len(),
		Components:        res.Components,
		MixedComponents:   res.MixedComponents,
		Broadcastable:     broadcastable,
		SeparationHorizon: res.SeparationHorizon,
		BroadcastHorizon:  res.BroadcastHorizon,
		InternedViews:     next.Interner.Size(),
		Elapsed:           time.Since(start),
	}
	if a.progress != nil {
		a.progress(rep)
	}
	return rep, nil
}

// evict applies the retention policy after a completed horizon: every
// space shallower than the retain window is released, except the
// separation-horizon space (the decision map's reference, which SpaceAt
// keeps serving). retain = 0 keeps every horizon.
func (a *Analyzer) evict() {
	if a.retain <= 0 {
		return
	}
	keepFrom := len(a.spaces) - a.retain
	for t := 0; t < keepFrom; t++ {
		if t == a.res.SeparationHorizon {
			continue
		}
		a.spaces[t] = nil
	}
}

// Check runs the analysis to a verdict: it advances horizons with Step
// until the route-specific evidence is complete or MaxHorizon is reached,
// then finalizes the verdict (certificate search for compact adversaries
// without separation; designated-broadcaster analysis for non-compact
// ones). Check is resumable: after a cancellation it can be called again
// with a fresh context and continues from the last completed horizon.
// Once finished it returns the cached result.
func (a *Analyzer) Check(ctx context.Context) (*Result, error) {
	if a.finished {
		return a.res, nil
	}
	if a.adv.Compact() {
		for a.res.SeparationHorizon < 0 || a.res.BroadcastHorizon < 0 {
			if _, err := a.Step(ctx); err != nil {
				if errors.Is(err, ErrHorizonExhausted) {
					break
				}
				return nil, err
			}
		}
		a.finalizeCompact()
	} else {
		for {
			if _, err := a.Step(ctx); err != nil {
				if errors.Is(err, ErrHorizonExhausted) {
					break
				}
				return nil, err
			}
		}
		a.finalizeNonCompact()
	}
	a.finished = true
	return a.res, nil
}

// finalizeCompact turns the accumulated compact-route evidence into a
// verdict (Theorem 6.6), falling back to the impossibility-certificate
// searches when no separation horizon was found.
func (a *Analyzer) finalizeCompact() {
	res := a.res
	if res.SeparationHorizon >= 0 {
		// Separation persists under refinement, so it is an exact
		// solvability witness for a compact adversary.
		res.Verdict = VerdictSolvable
		res.Exact = true
		res.Rule = &MapRule{Map: res.Map}
		return
	}
	chainLen := a.opts.EffectiveCertChainLen(a.adv.N())
	// Normalize first, so algebraic identity spellings of an oblivious
	// adversary (Intersect with Unrestricted, zero-length Concat prefixes)
	// reach the certificate searches their plain spelling reaches.
	if ob, ok := ma.Normalize(a.adv).(*ma.Oblivious); ok && chainLen > 0 {
		// The pump search is polynomial in the graph-set size; try it
		// first. The bounded-chain greatest fixpoint is exponential in
		// the chain length and graph count, so it is gated on small sets.
		if cert, found := baseline.FindPumpCertificate(ob, a.opts.InputDomain); found {
			res.Verdict = VerdictImpossible
			res.Exact = true
			res.Certificate = cert
			return
		}
		if len(ob.Graphs()) <= maxGraphsForChainSearch {
			if cert, found := baseline.ProveBivalent(ob, a.opts.InputDomain, chainLen); found {
				res.Verdict = VerdictImpossible
				res.Exact = true
				res.Certificate = cert
				return
			}
		}
	}
	res.Verdict = VerdictUnknown
}

// finalizeNonCompact applies Theorem 6.7: for a non-compact adversary the
// finite-horizon components of the full prefix space stay mixed at every
// resolution (pending prefixes carry the excluded limit sequences, Fig. 5),
// so the compact ε-approximation route is unavailable. Instead the checker
// looks for a designated universal broadcaster p*: a process that is heard
// by everyone in every admissible run shortly after the adversary's
// liveness obligation discharges. Its existence makes the partition
// PS(v) = {x_{p*} = v} open — every process decides x_{p*} upon hearing it
// — which is exactly how the eventually-stabilizing adversaries of [23]
// solve consensus. Absence of such a broadcaster at the analysis horizon
// yields VerdictUnknown together with the refuting evidence.
func (a *Analyzer) finalizeNonCompact() {
	res := a.res
	s := a.cur
	if s == nil {
		res.Verdict = VerdictUnknown
		return
	}
	t := s.Horizon
	res.Space = s
	res.Decomposition = a.decomp

	// A witness item is one whose obligations discharged early enough
	// that broadcast completion is owed within the horizon. Candidate
	// broadcasters must be heard-by-all in every witness item by
	// DoneAt + LatencySlack. Under the symmetry quotient the counts are
	// orbit-weighted and every relabeled twin's (permuted) heard mask
	// joins the candidate intersection, so the evidence — including the
	// Notes counts — is byte-identical to a full-space session's.
	n := s.N()
	grp := s.SymGroup() // nil when not quotiented
	morder := s.SymOrder()
	witnesses, discharged := 0, 0
	candidates := make([]bool, n)
	for p := range candidates {
		candidates[p] = true
	}
	for i := 0; i < s.Len(); i++ {
		doneAt := s.DoneAt(i)
		if doneAt < 0 {
			continue
		}
		w := s.OrbitSize(i)
		discharged += w
		if doneAt > t-a.opts.LatencySlack {
			continue
		}
		witnesses += w
		deadline := doneAt + a.opts.LatencySlack
		if deadline > t {
			deadline = t
		}
		heard := s.HeardByAllAt(i, deadline)
		if grp == nil {
			for p := 0; p < n; p++ {
				if candidates[p] && heard&(1<<uint(p)) == 0 {
					candidates[p] = false
				}
			}
		} else {
			for k := 0; k < morder; k++ {
				hk := graph.PermuteMask(heard, grp.Elem(k))
				for p := 0; p < n; p++ {
					if candidates[p] && hk&(1<<uint(p)) == 0 {
						candidates[p] = false
					}
				}
			}
		}
	}
	if witnesses == 0 {
		// Distinguish "nothing ever discharged" from a budget
		// misconfiguration: LatencySlack > horizon rejects every discharged
		// run (then t - LatencySlack < 0, so DoneAt > t - LatencySlack
		// holds even for DoneAt = 0), which would otherwise read as silent
		// unsolvability evidence.
		switch {
		case discharged > 0 && a.opts.LatencySlack > t:
			res.Notes = append(res.Notes, fmt.Sprintf(
				"latency slack %d exceeds the analysis horizon %d: all %d discharged runs were rejected as witnesses; raise MaxHorizon or lower LatencySlack",
				a.opts.LatencySlack, t, discharged))
		case discharged > 0:
			res.Notes = append(res.Notes, fmt.Sprintf(
				"all %d discharged runs discharged after round %d (horizon %d minus latency slack %d); raise MaxHorizon to observe post-discharge rounds",
				discharged, t-a.opts.LatencySlack, t, a.opts.LatencySlack))
		default:
			res.Notes = append(res.Notes, fmt.Sprintf(
				"no admissible run discharged its liveness obligations by horizon %d", t))
		}
		res.Verdict = VerdictUnknown
		return
	}
	best := -1
	for p := 0; p < n; p++ {
		if candidates[p] {
			best = p
			break
		}
	}
	if best < 0 {
		res.PendingUndecided = true
		res.Verdict = VerdictUnknown
		return
	}
	res.Broadcaster = best
	rule := &BroadcastRule{Broadcaster: best}
	res.Rule = rule

	// Measure decision latency of the broadcast rule over Done items —
	// over every orbit member under the quotient (per-process decision
	// times permute across twins, so the rep alone would under-report the
	// fold; with m = 1 the pseudo accessors are ViewsOf/RunOf verbatim).
	for i := 0; i < s.Len(); i++ {
		doneAt := s.DoneAt(i)
		if doneAt < 0 || doneAt > t-a.opts.LatencySlack {
			continue
		}
		for k := 0; k < morder; k++ {
			run := s.PseudoRun(i, k)
			views := s.PseudoViews(i, k)
			last := 0
			for p := 0; p < n; p++ {
				decided := false
				for tt := 0; tt <= t; tt++ {
					if _, ok := rule.Decide(ViewOf(run, views, tt, p)); ok {
						if tt > last {
							last = tt
						}
						decided = true
						break
					}
				}
				if !decided {
					res.PendingUndecided = true
				}
			}
			latency := last - doneAt
			if latency < 0 {
				latency = 0 // decided before the obligation discharged
			}
			if latency > res.MaxDecisionLatency {
				res.MaxDecisionLatency = latency
			}
		}
	}
	if res.PendingUndecided {
		res.Verdict = VerdictUnknown
		res.Rule = nil
		return
	}
	res.Verdict = VerdictSolvable
	res.Exact = false
}
