package check

import (
	"testing"

	"topocon/internal/graph"
	"topocon/internal/ma"
	"topocon/internal/ptg"
)

func TestMapRuleRoundTrip(t *testing.T) {
	res := mustConsensus(t, ma.LossyLink2(), Options{})
	rule := &MapRule{Map: res.Map}
	if rule.Name() != "universal-map" {
		t.Errorf("Name = %q", rule.Name())
	}
	if rule.Interner() != res.Map.Interner() {
		t.Error("Interner mismatch")
	}
	if res.Map.Adversary().Name() != ma.LossyLink2().Name() {
		t.Errorf("Adversary = %q", res.Map.Adversary().Name())
	}
	if res.Map.Reference() != 1 {
		t.Errorf("Reference = %d, want 1", res.Map.Reference())
	}
	if res.Map.Size() == 0 {
		t.Error("empty decision map")
	}
	// Evaluate the rule on a concrete run: both processes decide 1 at
	// round 1 of ((1,1), ->).
	run := ptg.NewRun([]int{1, 1}).Extend(graph.Right)
	views := ptg.ComputeViews(res.Map.Interner(), run)
	for p := 0; p < 2; p++ {
		v, ok := rule.Decide(ViewOf(run, views, 1, p))
		if !ok || v != 1 {
			t.Errorf("process %d: Decide = (%d,%v), want (1,true)", p+1, v, ok)
		}
	}
	// Beyond the reference horizon the map is silent.
	long := run.Extend(graph.Right).Extend(graph.Right)
	lviews := ptg.ComputeViews(res.Map.Interner(), long)
	if _, ok := rule.Decide(ViewOf(long, lviews, 3, 0)); ok {
		t.Error("decision beyond the reference horizon")
	}
	// NoViewID views cannot decide.
	if _, ok := rule.Decide(NewView(1, 0, NoViewID, 1, []int{1, 1})); ok {
		t.Error("decision on NoViewID view")
	}
}

func TestBroadcastRuleDirect(t *testing.T) {
	rule := &BroadcastRule{Broadcaster: 1}
	if rule.Name() == "" || rule.Interner() != nil {
		t.Error("unexpected BroadcastRule identity")
	}
	// Heard process 2 (bit 1): decide its input.
	v := NewView(3, 0, NoViewID, 0b10, []int{7, 9})
	if got, ok := rule.Decide(v); !ok || got != 9 {
		t.Errorf("Decide = (%d,%v), want (9,true)", got, ok)
	}
	// Not heard: no decision.
	v2 := NewView(3, 0, NoViewID, 0b01, []int{7, 9})
	if _, ok := rule.Decide(v2); ok {
		t.Error("decision without having heard the broadcaster")
	}
}

func TestViewInputGating(t *testing.T) {
	v := NewView(0, 0, NoViewID, 0b01, []int{5, 6})
	if x, ok := v.Input(0); !ok || x != 5 {
		t.Errorf("Input(0) = (%d,%v)", x, ok)
	}
	if _, ok := v.Input(1); ok {
		t.Error("unheard input leaked")
	}
	if _, ok := v.Input(9); ok {
		t.Error("out-of-range input leaked")
	}
}

func TestComponentValueAccessor(t *testing.T) {
	res := mustConsensus(t, ma.LossyLink2(), Options{})
	seen := map[int]bool{}
	for ci := range res.Decomposition.Comps {
		v := res.Map.ComponentValue(ci)
		if v < 0 {
			t.Errorf("component %d unassigned in a solvable instance", ci)
		}
		seen[v] = true
	}
	if !seen[0] || !seen[1] {
		t.Errorf("assignments %v, want both values", seen)
	}
}
