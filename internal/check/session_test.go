package check

import (
	"context"
	"encoding/json"
	"testing"

	"topocon/internal/graph"
	"topocon/internal/ma"
	"topocon/internal/pager"
	"topocon/internal/ptg"
	"topocon/internal/topo"
)

func newSessionPager(t *testing.T, dir string, budget int64) *pager.Pager {
	t.Helper()
	pg, err := pager.New(pager.Config{Dir: dir, HotBytes: budget})
	if err != nil {
		t.Fatalf("pager.New: %v", err)
	}
	return pg
}

// sessionSeedAdversaries covers both finalize routes: compact families with
// early and late separation, and a non-compact eventually-stable family.
func sessionSeedAdversaries() []ma.Adversary {
	stable := ma.MustEventuallyStable("",
		[]graph.Graph{graph.Left, graph.Both}, []graph.Graph{graph.Right}, 1)
	return []ma.Adversary{
		ma.LossyLink2(),
		ma.LossyLink3(),
		ma.LossBounded(2, 1),
		ma.MustDeadlineStable(stable, 2),
		stable,
	}
}

// TestSessionSnapshotResumeEquivalence is the check-layer kill-and-resume
// contract: snapshot a session mid-run, rebuild it in a "fresh process"
// (imported interner, fresh pager over the same page directory, snapshot
// passed through JSON), finish both, and require identical verdicts and
// identical decision maps — with the resumed session never re-extending an
// already-checkpointed horizon.
func TestSessionSnapshotResumeEquivalence(t *testing.T) {
	const maxHorizon = 4
	const snapAfter = 2
	for _, adv := range sessionSeedAdversaries() {
		// Uninterrupted reference run, no pager, driven exactly like the
		// checkpointed one: snapAfter explicit steps, then Check.
		ref, err := NewAnalyzer(adv, WithMaxHorizon(maxHorizon))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < snapAfter; i++ {
			if _, err := ref.Step(context.Background()); err != nil {
				t.Fatalf("%s: reference step %d: %v", adv.Name(), i+1, err)
			}
		}
		want, err := ref.Check(context.Background())
		if err != nil {
			t.Fatalf("%s: reference Check: %v", adv.Name(), err)
		}

		// Checkpointed run: step to the snapshot point under a pager.
		dir := t.TempDir()
		a, err := NewAnalyzer(adv, WithMaxHorizon(maxHorizon),
			WithPager(newSessionPager(t, dir, 4<<10)))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < snapAfter; i++ {
			if _, err := a.Step(context.Background()); err != nil {
				t.Fatalf("%s: step %d: %v", adv.Name(), i+1, err)
			}
		}
		snap, err := a.Snapshot()
		if err != nil {
			t.Fatalf("%s: Snapshot: %v", adv.Name(), err)
		}
		blob := a.SpaceAt(a.Horizon()).Interner.Export()

		// "Fresh process": everything below uses only the page directory,
		// the interner blob and the JSON form of the snapshot.
		raw, err := json.Marshal(snap)
		if err != nil {
			t.Fatalf("%s: marshal snapshot: %v", adv.Name(), err)
		}
		var snap2 SessionSnapshot
		if err := json.Unmarshal(raw, &snap2); err != nil {
			t.Fatalf("%s: unmarshal snapshot: %v", adv.Name(), err)
		}
		in2, err := ptg.ImportInterner(blob)
		if err != nil {
			t.Fatalf("%s: ImportInterner: %v", adv.Name(), err)
		}
		firstResumed := -1
		b, err := RestoreAnalyzer(adv, &snap2, in2, newSessionPager(t, dir, 4<<10),
			WithProgress(func(r HorizonReport) {
				if firstResumed < 0 {
					firstResumed = r.Horizon
				}
			}))
		if err != nil {
			t.Fatalf("%s: RestoreAnalyzer: %v", adv.Name(), err)
		}
		if b.Horizon() != snapAfter {
			t.Fatalf("%s: restored horizon %d, want %d", adv.Name(), b.Horizon(), snapAfter)
		}
		got, err := b.Check(context.Background())
		if err != nil {
			t.Fatalf("%s: resumed Check: %v", adv.Name(), err)
		}
		// Zero re-extension: the first horizon the resumed session analyses
		// is the one right after the checkpoint.
		if firstResumed >= 0 && firstResumed != snapAfter+1 {
			t.Errorf("%s: resumed session re-extended: first analysed horizon %d, want %d",
				adv.Name(), firstResumed, snapAfter+1)
		}

		if got.Verdict != want.Verdict || got.Horizon != want.Horizon ||
			got.SeparationHorizon != want.SeparationHorizon ||
			got.BroadcastHorizon != want.BroadcastHorizon ||
			got.Components != want.Components || got.MixedComponents != want.MixedComponents ||
			got.Broadcaster != want.Broadcaster || got.Exact != want.Exact {
			t.Errorf("%s: resumed result %v@%d sep=%d bcast=%d comps=%d/%d p*=%d differs from uninterrupted %v@%d sep=%d bcast=%d comps=%d/%d p*=%d",
				adv.Name(),
				got.Verdict, got.Horizon, got.SeparationHorizon, got.BroadcastHorizon, got.Components, got.MixedComponents, got.Broadcaster,
				want.Verdict, want.Horizon, want.SeparationHorizon, want.BroadcastHorizon, want.Components, want.MixedComponents, want.Broadcaster)
		}
		assertDecisionMapsEqual(t, adv.Name(), want.Map, got.Map)
	}
}

// assertDecisionMapsEqual compares two compiled maps entry by entry. The
// sequential build order is deterministic, so the independent runs intern
// identical ViewIDs — the comparison doubles as a determinism check.
func assertDecisionMapsEqual(t *testing.T, name string, want, got *DecisionMap) {
	t.Helper()
	if (want == nil) != (got == nil) {
		t.Fatalf("%s: decision map nil-ness differs: want %v, got %v", name, want != nil, got != nil)
	}
	if want == nil {
		return
	}
	if want.Size() != got.Size() || want.Reference() != got.Reference() {
		t.Fatalf("%s: decision map shape: want size %d ref %d, got size %d ref %d",
			name, want.Size(), want.Reference(), got.Size(), got.Reference())
	}
	limit := want.Interner().Size()
	if l2 := got.Interner().Size(); l2 > limit {
		limit = l2
	}
	for id := 0; id < limit; id++ {
		wv, wok := want.Decide(ptg.ViewID(id))
		gv, gok := got.Decide(ptg.ViewID(id))
		if wv != gv || wok != gok {
			t.Fatalf("%s: decision for view %d: want (%d,%v), got (%d,%v)", name, id, wv, wok, gv, gok)
		}
	}
}

// TestSessionSnapshotMidRunPeriodic pins the documented checkpoint hook:
// Snapshot from inside the WithProgress callback at every horizon, resume
// from the deepest one.
func TestSessionSnapshotMidRunPeriodic(t *testing.T) {
	adv := ma.LossyLink3()
	dir := t.TempDir()
	var (
		last    *SessionSnapshot
		lastErr error
		taken   int
	)
	var a *Analyzer
	a, err := NewAnalyzer(adv, WithMaxHorizon(3),
		WithPager(newSessionPager(t, dir, 1)),
		WithProgress(func(HorizonReport) {
			if lastErr != nil {
				return
			}
			if last, lastErr = a.Snapshot(); lastErr == nil {
				taken++
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := a.Step(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if lastErr != nil {
		t.Fatalf("in-callback Snapshot failed: %v", lastErr)
	}
	if taken != 3 || last.Horizon != 3 {
		t.Fatalf("took %d snapshots, deepest at horizon %d; want 3 at 3", taken, last.Horizon)
	}
	in, err := ptg.ImportInterner(a.SpaceAt(3).Interner.Export())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RestoreAnalyzer(adv, last, in, newSessionPager(t, dir, 1))
	if err != nil {
		t.Fatalf("RestoreAnalyzer from periodic snapshot: %v", err)
	}
	res, err := b.Check(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != VerdictImpossible {
		t.Fatalf("resumed verdict %v, want impossible", res.Verdict)
	}
}

// TestSessionSnapshotErrors pins the guard rails around Snapshot and
// RestoreAnalyzer.
func TestSessionSnapshotErrors(t *testing.T) {
	ctx := context.Background()
	t.Run("no-pager", func(t *testing.T) {
		a, err := NewAnalyzer(ma.LossyLink2(), WithMaxHorizon(2))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := a.Step(ctx); err != nil {
			t.Fatal(err)
		}
		if _, err := a.Snapshot(); err == nil {
			t.Error("Snapshot without pager succeeded")
		}
	})
	t.Run("before-first-step", func(t *testing.T) {
		a, err := NewAnalyzer(ma.LossyLink2(), WithMaxHorizon(2),
			WithPager(newSessionPager(t, t.TempDir(), 0)))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := a.Snapshot(); err == nil {
			t.Error("Snapshot before first Step succeeded")
		}
	})
	t.Run("after-finished", func(t *testing.T) {
		a, err := NewAnalyzer(ma.LossyLink2(), WithMaxHorizon(2),
			WithPager(newSessionPager(t, t.TempDir(), 0)))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := a.Check(ctx); err != nil {
			t.Fatal(err)
		}
		if _, err := a.Snapshot(); err == nil {
			t.Error("Snapshot of finished session succeeded")
		}
	})
	t.Run("restore-validation", func(t *testing.T) {
		dir := t.TempDir()
		a, err := NewAnalyzer(ma.LossyLink2(), WithMaxHorizon(4),
			WithPager(newSessionPager(t, dir, 0)))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2; i++ {
			if _, err := a.Step(ctx); err != nil {
				t.Fatal(err)
			}
		}
		snap, err := a.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		in, err := ptg.ImportInterner(a.SpaceAt(a.Horizon()).Interner.Export())
		if err != nil {
			t.Fatal(err)
		}
		pg := newSessionPager(t, dir, 0)
		if _, err := RestoreAnalyzer(ma.LossyLink2(), nil, in, pg); err == nil {
			t.Error("nil snapshot accepted")
		}
		if _, err := RestoreAnalyzer(ma.LossyLink2(), snap, nil, pg); err == nil {
			t.Error("nil interner accepted")
		}
		if _, err := RestoreAnalyzer(ma.LossyLink2(), snap, in, nil); err == nil {
			t.Error("nil pager accepted")
		}
		mangle := func(mutate func(*SessionSnapshot)) *SessionSnapshot {
			c := *snap
			c.Rounds = append([]topo.ChainRound(nil), snap.Rounds...)
			mutate(&c)
			return &c
		}
		cases := map[string]*SessionSnapshot{
			"rounds-mismatch": mangle(func(s *SessionSnapshot) { s.Rounds = s.Rounds[:1] }),
			"no-decomp":       mangle(func(s *SessionSnapshot) { s.Decomp = nil }),
			"sep-beyond":      mangle(func(s *SessionSnapshot) { s.SeparationHorizon = s.Horizon + 1 }),
			"sep-no-decomp": mangle(func(s *SessionSnapshot) {
				s.SeparationHorizon = s.Horizon - 1
				s.SepDecomp = nil
			}),
		}
		for name, bad := range cases {
			if _, err := RestoreAnalyzer(ma.LossyLink2(), bad, in, pg); err == nil {
				t.Errorf("%s: RestoreAnalyzer accepted bad snapshot", name)
			}
		}
	})
}
