package check

import (
	"testing"

	"topocon/internal/combi"
	"topocon/internal/graph"
	"topocon/internal/ma"
	"topocon/internal/topo"
)

func mustConsensus(t *testing.T, adv ma.Adversary, opts Options) *Result {
	t.Helper()
	res, err := Consensus(adv, opts)
	if err != nil {
		t.Fatalf("Consensus(%s): %v", adv.Name(), err)
	}
	return res
}

// TestLossyLink2Solvable is E4: {<-,->} is solvable with separation (and
// broadcastability) at horizon 1, and the universal algorithm decides every
// run in round 1 (the paper's Section 6.1 remark on [8]).
func TestLossyLink2Solvable(t *testing.T) {
	res := mustConsensus(t, ma.LossyLink2(), Options{})
	if res.Verdict != VerdictSolvable || !res.Exact {
		t.Fatalf("verdict = %v (exact=%v), want exact solvable", res.Verdict, res.Exact)
	}
	if res.SeparationHorizon != 1 {
		t.Errorf("separation horizon = %d, want 1", res.SeparationHorizon)
	}
	if res.BroadcastHorizon != 1 {
		t.Errorf("broadcast horizon = %d, want 1", res.BroadcastHorizon)
	}
	times, values, err := res.Map.DecisionRounds(res.Space)
	if err != nil {
		t.Fatal(err)
	}
	// DecisionRounds rows enumerate orbit members of the quotiented space.
	m := res.Space.SymOrder()
	for pi := range times {
		run := res.Space.PseudoRun(pi/m, pi%m)
		var agreed = -1
		for p := 0; p < 2; p++ {
			if times[pi][p] < 0 || times[pi][p] > 1 {
				t.Errorf("run %v: process %d decides at %d, want ≤1", run, p+1, times[pi][p])
			}
			if agreed < 0 {
				agreed = values[pi][p]
			} else if agreed != values[pi][p] {
				t.Errorf("run %v: disagreement %v", run, values[pi])
			}
		}
		if v, ok := run.IsValent(); ok && agreed != v {
			t.Errorf("run %v: validity violated, decided %d", run, agreed)
		}
	}
}

// TestLossyLink3Impossible is E3: {<-,<->,->} is certifiably impossible.
func TestLossyLink3Impossible(t *testing.T) {
	res := mustConsensus(t, ma.LossyLink3(), Options{MaxHorizon: 4})
	if res.Verdict != VerdictImpossible || !res.Exact {
		t.Fatalf("verdict = %v (exact=%v), want exact impossible", res.Verdict, res.Exact)
	}
	if res.Certificate == nil {
		t.Fatal("missing certificate")
	}
	if res.SeparationHorizon != -1 {
		t.Errorf("separation horizon = %d, want -1", res.SeparationHorizon)
	}
}

// TestSilentGraphImpossible: any oblivious set containing the silent graph
// is impossible, via the bounded chain certificate.
func TestSilentGraphImpossible(t *testing.T) {
	res := mustConsensus(t, ma.MustOblivious("", graph.Neither, graph.Both), Options{MaxHorizon: 3})
	if res.Verdict != VerdictImpossible || !res.Exact {
		t.Fatalf("verdict = %v (exact=%v), want exact impossible", res.Verdict, res.Exact)
	}
}

// TestObliviousSweepN2Exhaustive is E5: all 15 non-empty subsets of the
// n=2 graphs match the known classification — solvable iff the set omits
// the silent graph and is not the full lossy link {<-,<->,->}.
func TestObliviousSweepN2Exhaustive(t *testing.T) {
	silentIdx := graph.IndexOf(graph.Neither)
	lossy3 := uint64(1)<<graph.IndexOf(graph.Left) |
		uint64(1)<<graph.IndexOf(graph.Right) |
		uint64(1)<<graph.IndexOf(graph.Both)
	combi.Subsets(int(graph.CountAll(2)), func(mask uint64) bool {
		adv := ma.ObliviousFromMask(2, mask)
		res := mustConsensus(t, adv, Options{MaxHorizon: 5})
		wantSolvable := mask&(1<<silentIdx) == 0 && mask != lossy3
		switch {
		case wantSolvable && res.Verdict != VerdictSolvable:
			t.Errorf("%s: verdict %v, want solvable", adv.Name(), res.Verdict)
		case !wantSolvable && res.Verdict != VerdictImpossible:
			t.Errorf("%s: verdict %v, want impossible", adv.Name(), res.Verdict)
		case res.Verdict == VerdictSolvable && res.BroadcastHorizon < 0:
			// Theorem 6.6: separation and broadcastability coincide for
			// compact adversaries.
			t.Errorf("%s: solvable but no broadcast horizon found", adv.Name())
		}
		if !res.Exact {
			t.Errorf("%s: verdict not exact", adv.Name())
		}
		return true
	})
}

// TestSingleGraphAdversaries: every singleton oblivious adversary on n=2
// except the silent one is solvable.
func TestSingleGraphAdversaries(t *testing.T) {
	tests := []struct {
		g        graph.Graph
		solvable bool
	}{
		{graph.Left, true},
		{graph.Right, true},
		{graph.Both, true},
		{graph.Neither, false},
	}
	for _, tt := range tests {
		adv := ma.MustOblivious("", tt.g)
		res := mustConsensus(t, adv, Options{MaxHorizon: 4})
		got := res.Verdict == VerdictSolvable
		if got != tt.solvable {
			t.Errorf("{%s}: verdict %v, want solvable=%v", graph.Arrow(tt.g), res.Verdict, tt.solvable)
		}
	}
}

// TestValenceFreeComponentsDecided: under {<->} every mixed-input run sits
// in a valence-free singleton component; the default assignment must still
// let every process decide (meta-procedure step 3).
func TestValenceFreeComponentsDecided(t *testing.T) {
	res := mustConsensus(t, ma.MustOblivious("", graph.Both), Options{})
	if res.Verdict != VerdictSolvable {
		t.Fatalf("verdict = %v, want solvable", res.Verdict)
	}
	times, values, err := res.Map.DecisionRounds(res.Space)
	if err != nil {
		t.Fatal(err)
	}
	m := res.Space.SymOrder()
	for pi := range times {
		run := res.Space.PseudoRun(pi/m, pi%m)
		for p := 0; p < 2; p++ {
			if times[pi][p] < 0 {
				t.Errorf("run %v: process %d undecided", run, p+1)
			}
		}
		if v, ok := run.IsValent(); ok && values[pi][0] != v {
			t.Errorf("run %v: validity violated", run)
		}
	}
}

// TestNonCompactStableRootSolvable is the heart of E8: the non-compact
// adversary "chaos over {<-,<->}, eventually ->^W" is solvable — the stable
// graph's root process 1 broadcasts in every admissible run (Theorem 6.7 /
// Theorem 5.11).
func TestNonCompactStableRootSolvable(t *testing.T) {
	for _, window := range []int{1, 2} {
		adv := ma.MustEventuallyStable("",
			[]graph.Graph{graph.Left, graph.Both},
			[]graph.Graph{graph.Right}, window)
		res := mustConsensus(t, adv, Options{MaxHorizon: 5})
		if res.Verdict != VerdictSolvable {
			t.Fatalf("window %d: verdict = %v, want solvable (pending undecided: %v)",
				window, res.Verdict, res.PendingUndecided)
		}
		if res.Exact {
			t.Errorf("window %d: non-compact verdict must not claim exactness", window)
		}
		if res.MaxDecisionLatency < 0 {
			t.Errorf("window %d: no latency recorded", window)
		}
	}
}

// TestNonCompactMixtureAtFullHorizon: for the same adversary, the full
// space keeps mixed (pending) components — the reason the compact
// ε-approximation route fails (Section 6.3, Fig. 5).
func TestNonCompactMixtureAtFullHorizon(t *testing.T) {
	adv := ma.MustEventuallyStable("",
		[]graph.Graph{graph.Left, graph.Both},
		[]graph.Graph{graph.Right}, 1)
	res := mustConsensus(t, adv, Options{MaxHorizon: 4})
	if res.MixedComponents == 0 {
		t.Error("expected mixed components in the non-compact full space")
	}
}

// TestNonCompactTooWeakWindow: an n=3 stable chain graph with window 1
// cannot broadcast (x1 reaches process 2 but never process 3 when chaos
// silences everything else): the checker must refuse solvability evidence.
func TestNonCompactTooWeakWindow(t *testing.T) {
	adv := ma.MustEventuallyStable("",
		[]graph.Graph{graph.New(3)}, // silent chaos
		[]graph.Graph{graph.Chain(3)}, 1)
	res := mustConsensus(t, adv, Options{MaxHorizon: 4, LatencySlack: 2})
	if res.Verdict == VerdictSolvable {
		t.Fatalf("verdict = solvable, want refusal (window too short to broadcast)")
	}
	if !res.PendingUndecided {
		t.Error("expected PendingUndecided evidence")
	}
}

// TestNonCompactSufficientWindow: window 2 of the chain graph broadcasts
// x1 to everyone, making consensus solvable.
func TestNonCompactSufficientWindow(t *testing.T) {
	adv := ma.MustEventuallyStable("",
		[]graph.Graph{graph.New(3)},
		[]graph.Graph{graph.Chain(3)}, 2)
	res := mustConsensus(t, adv, Options{MaxHorizon: 5})
	if res.Verdict != VerdictSolvable {
		t.Fatalf("verdict = %v, want solvable", res.Verdict)
	}
}

// TestDeadlineFamilySeparationGrows is the non-compactness phenomenon of
// Section 6.3: the deadline-R compactifications of an eventually-stable
// adversary are all solvable, but their separation horizons grow with R —
// the decision time of any algorithm is unbounded over the union.
func TestDeadlineFamilySeparationGrows(t *testing.T) {
	inner := ma.MustEventuallyStable("",
		[]graph.Graph{graph.Left, graph.Both},
		[]graph.Graph{graph.Right}, 1)
	prev := 0
	for _, deadline := range []int{1, 2, 3} {
		adv := ma.MustDeadlineStable(inner, deadline)
		res := mustConsensus(t, adv, Options{MaxHorizon: 6})
		if res.Verdict != VerdictSolvable || !res.Exact {
			t.Fatalf("deadline %d: verdict %v (exact=%v), want exact solvable",
				deadline, res.Verdict, res.Exact)
		}
		if res.SeparationHorizon < prev {
			t.Errorf("deadline %d: separation horizon %d not monotone (prev %d)",
				deadline, res.SeparationHorizon, prev)
		}
		if res.SeparationHorizon < deadline {
			t.Errorf("deadline %d: separation horizon %d below deadline", deadline, res.SeparationHorizon)
		}
		prev = res.SeparationHorizon
	}
}

// TestDecisionMapAgreementValidityProperties: on every solvable oblivious
// n=2 adversary the compiled universal algorithm satisfies agreement and
// validity on the whole reference space (termination is checked by
// construction of the witness).
func TestDecisionMapAgreementValidityProperties(t *testing.T) {
	combi.Subsets(int(graph.CountAll(2)), func(mask uint64) bool {
		adv := ma.ObliviousFromMask(2, mask)
		res := mustConsensus(t, adv, Options{MaxHorizon: 5})
		if res.Verdict != VerdictSolvable {
			return true
		}
		times, values, err := res.Map.DecisionRounds(res.Space)
		if err != nil {
			t.Fatal(err)
		}
		m := res.Space.SymOrder()
		for pi := range times {
			run := res.Space.PseudoRun(pi/m, pi%m)
			for p := 0; p < 2; p++ {
				if times[pi][p] < 0 {
					t.Errorf("%s: run %v process %d undecided", adv.Name(), run, p+1)
				}
			}
			if values[pi][0] != values[pi][1] {
				t.Errorf("%s: run %v disagreement %v", adv.Name(), run, values[pi])
			}
			if v, ok := run.IsValent(); ok && values[pi][0] != v {
				t.Errorf("%s: run %v validity violated", adv.Name(), run)
			}
		}
		return true
	})
}

// TestDecisionRoundsInternerMismatch: mixing spaces and maps from
// different interners must fail loudly.
func TestDecisionRoundsInternerMismatch(t *testing.T) {
	res := mustConsensus(t, ma.LossyLink2(), Options{})
	other, err := topo.Build(ma.LossyLink2(), 2, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := res.Map.DecisionRounds(other); err == nil {
		t.Error("expected interner mismatch error")
	}
}

func TestVerdictString(t *testing.T) {
	if VerdictSolvable.String() != "solvable" ||
		VerdictImpossible.String() != "impossible" ||
		VerdictUnknown.String() != "unknown" {
		t.Error("verdict rendering wrong")
	}
	if Verdict(42).String() == "" {
		t.Error("unknown verdict must still render")
	}
}

// TestCommittedSuffixFamily is E7's quantitative core: the Fevat-Godard
// style committed-suffix family (free over the full lossy link, eventually
// constant <- or ->) is solvable at every deadline R with separation
// horizon exactly R — decision times grow without bound along the family,
// whose non-compact union excludes precisely the fair limit sequences.
func TestCommittedSuffixFamily(t *testing.T) {
	free := []graph.Graph{graph.Left, graph.Right, graph.Both}
	commit := []graph.Graph{graph.Left, graph.Right}
	for _, deadline := range []int{1, 2, 3, 4} {
		adv := ma.MustCommittedSuffix("", free, commit, deadline)
		res := mustConsensus(t, adv, Options{MaxHorizon: 6})
		if res.Verdict != VerdictSolvable || !res.Exact {
			t.Fatalf("deadline %d: verdict %v (exact=%v), want exact solvable",
				deadline, res.Verdict, res.Exact)
		}
		if res.SeparationHorizon != deadline {
			t.Errorf("deadline %d: separation horizon %d, want %d",
				deadline, res.SeparationHorizon, deadline)
		}
	}
}

// TestCrossDecisionLevelStableForCompact is Corollary 6.1 / Fig. 4: the
// decision sets of the fixed universal algorithm for {<-,->} keep distance
// 2^-1 at every horizon, while rebuilding along the committed family
// shrinks the gap as 2^-R (Fig. 5).
func TestCrossDecisionLevelStableForCompact(t *testing.T) {
	res := mustConsensus(t, ma.LossyLink2(), Options{})
	for horizon := 1; horizon <= 4; horizon++ {
		s, err := topo.BuildWithInterner(ma.LossyLink2(), 2, horizon, 0, res.Map.Interner())
		if err != nil {
			t.Fatal(err)
		}
		level, ok, err := CrossDecisionLevel(res.Map, s)
		if err != nil || !ok {
			t.Fatalf("horizon %d: %v ok=%v", horizon, err, ok)
		}
		if level != 1 {
			t.Errorf("horizon %d: decision-set gap 2^-%d, want 2^-1", horizon, level)
		}
	}
	free := []graph.Graph{graph.Left, graph.Right, graph.Both}
	commit := []graph.Graph{graph.Left, graph.Right}
	for _, deadline := range []int{1, 2, 3} {
		adv := ma.MustCommittedSuffix("", free, commit, deadline)
		res := mustConsensus(t, adv, Options{MaxHorizon: deadline + 1})
		level, ok := res.Map.CrossAssignmentLevel(res.Decomposition)
		if !ok {
			t.Fatalf("deadline %d: no cross pairs", deadline)
		}
		if level != deadline {
			t.Errorf("deadline %d: gap 2^-%d, want 2^-%d", deadline, level, deadline)
		}
	}
}

// TestLargerInputDomain: the checker and map are domain-agnostic: {<-,->}
// with ternary inputs separates at horizon 1 and the map decides all 18
// runs correctly.
func TestLargerInputDomain(t *testing.T) {
	res := mustConsensus(t, ma.LossyLink2(), Options{InputDomain: 3})
	if res.Verdict != VerdictSolvable || res.SeparationHorizon != 1 {
		t.Fatalf("verdict %v separation %d", res.Verdict, res.SeparationHorizon)
	}
	times, values, err := res.Map.DecisionRounds(res.Space)
	if err != nil {
		t.Fatal(err)
	}
	m := res.Space.SymOrder()
	for pi := range times {
		run := res.Space.PseudoRun(pi/m, pi%m)
		if times[pi][0] < 0 || times[pi][1] < 0 {
			t.Errorf("run %v undecided", run)
			continue
		}
		if values[pi][0] != values[pi][1] {
			t.Errorf("run %v disagreement %v", run, values[pi])
		}
		if v, ok := run.IsValent(); ok && values[pi][0] != v {
			t.Errorf("run %v validity violated", run)
		}
	}
}

// TestExclusionAdversaryHonestlyUnknown: removing a single fair word from
// the lossy link leaves no universal broadcaster, so the non-compact
// checker must decline rather than fabricate a verdict (the exact
// machinery for such adversaries lives in package lasso).
func TestExclusionAdversaryHonestlyUnknown(t *testing.T) {
	adv := ma.MustExclusion(ma.LossyLink3(), ma.Repeat(graph.Both))
	res := mustConsensus(t, adv, Options{MaxHorizon: 4})
	if res.Verdict != VerdictUnknown {
		t.Fatalf("verdict %v, want unknown", res.Verdict)
	}
}

// TestUnionAdversaryThroughChecker: the union of the two constant-word
// adversaries behaves exactly like the committed-suffix deadline-1 family.
func TestUnionAdversaryThroughChecker(t *testing.T) {
	u := ma.MustUnion("",
		ma.MustLassoSet("", ma.Repeat(graph.Left)),
		ma.MustLassoSet("", ma.Repeat(graph.Right)))
	res := mustConsensus(t, u, Options{MaxHorizon: 4})
	if res.Verdict != VerdictSolvable || res.SeparationHorizon != 1 {
		t.Errorf("verdict %v separation %d, want solvable at 1", res.Verdict, res.SeparationHorizon)
	}
}

// TestVSSCRootStableVaryingGraphs: a genuinely vertex-stable (but not
// graph-stable) window still enables consensus — the [23] semantics.
func TestVSSCRootStableVaryingGraphs(t *testing.T) {
	// Two stable graphs, both rooted at {1}, different edges; chaos is
	// silent. Window 2 with either graph (or a mix) broadcasts x1.
	sA := graph.Star(3, 0)
	sB := graph.Star(3, 0).AddEdge(1, 2)
	adv := ma.MustEventuallyStable("",
		[]graph.Graph{graph.New(3)}, []graph.Graph{sA, sB}, 2)
	res := mustConsensus(t, adv, Options{MaxHorizon: 4})
	if res.Verdict != VerdictSolvable {
		t.Fatalf("verdict %v, want solvable", res.Verdict)
	}
	if res.Broadcaster != 0 {
		t.Errorf("broadcaster %d, want process 1", res.Broadcaster+1)
	}
}

// TestVSSCMixedRootsUnknown: with stable graphs of different roots, no
// single process broadcasts in every run; the single-broadcaster
// non-compact checker declines honestly.
func TestVSSCMixedRootsUnknown(t *testing.T) {
	adv := ma.MustEventuallyStable("",
		[]graph.Graph{graph.New(3)},
		[]graph.Graph{graph.Star(3, 0), graph.Star(3, 1)}, 1)
	res := mustConsensus(t, adv, Options{MaxHorizon: 4})
	if res.Verdict == VerdictSolvable {
		t.Fatalf("verdict solvable, want a declined verdict (no universal broadcaster)")
	}
}

// TestLossBoundedN4: the thresholds scale to n=4 — f=1 is far below the
// isolation threshold n-1=3 and solvable quickly.
func TestLossBoundedN4(t *testing.T) {
	adv := ma.LossBounded(4, 1)
	res := mustConsensus(t, adv, Options{MaxHorizon: 2, MaxRuns: 4_000_000})
	if res.Verdict != VerdictSolvable {
		t.Fatalf("n=4 f=1: verdict %v, want solvable", res.Verdict)
	}
}

// TestSeparationBroadcastCoincideN2: for every solvable n=2 oblivious
// adversary the separation horizon equals the broadcastability horizon —
// the empirical identity behind Theorem 6.6 observed in E5.
func TestSeparationBroadcastCoincideN2(t *testing.T) {
	for mask := uint64(1); mask < 16; mask++ {
		adv := ma.ObliviousFromMask(2, mask)
		res := mustConsensus(t, adv, Options{MaxHorizon: 5})
		if res.Verdict != VerdictSolvable {
			continue
		}
		if res.SeparationHorizon != res.BroadcastHorizon {
			t.Errorf("%s: separation %d != broadcast %d",
				adv.Name(), res.SeparationHorizon, res.BroadcastHorizon)
		}
	}
}
