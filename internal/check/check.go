package check

import (
	"context"
	"fmt"
	"strings"

	"topocon/internal/ma"
	"topocon/internal/topo"
)

// Verdict classifies the outcome of a solvability analysis.
type Verdict int

const (
	// VerdictSolvable: consensus is solvable; the Result carries the
	// universal algorithm. Exact for compact adversaries (separation
	// witness, Theorem 6.6); evidence-based for non-compact ones
	// (Theorem 6.7 checked at finite horizon).
	VerdictSolvable Verdict = iota + 1
	// VerdictImpossible: consensus is certifiably impossible (bivalence
	// certificate, Section 6.1).
	VerdictImpossible
	// VerdictUnknown: neither a solvability witness nor an impossibility
	// certificate was found within the analysis budget.
	VerdictUnknown
)

// String renders the verdict.
func (v Verdict) String() string {
	switch v {
	case VerdictSolvable:
		return "solvable"
	case VerdictImpossible:
		return "impossible"
	case VerdictUnknown:
		return "unknown"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// Options configure the checker.
type Options struct {
	// InputDomain is the number of input values (default 2).
	InputDomain int
	// MaxHorizon bounds the prefix horizons analysed (default 7).
	MaxHorizon int
	// MaxRuns bounds the prefix-space size (default topo.DefaultMaxRuns).
	MaxRuns int
	// DefaultValue is assigned to valence-free components by the
	// meta-procedure's step 3 (default 0).
	DefaultValue int
	// CertChainLen bounds the bivalence-certificate chain search for
	// oblivious adversaries; 0 selects an adaptive default (5 for n ≤ 2,
	// 3 for larger n — the word space grows as (2^n-1)^len); a negative
	// value disables the search.
	CertChainLen int
	// LatencySlack is the number of rounds a non-compact adversary's runs
	// are allowed between obligation discharge and full decision before
	// the checker refuses the solvability evidence (default 2).
	LatencySlack int
	// NoSymmetry disables the automorphism quotient (DESIGN.md §13): by
	// default the session interns one run-prefix representative per orbit
	// of ma.Automorphisms(adv) and expands orbits where full-space
	// structure is needed, which changes no observable output — verdicts,
	// horizons, decision maps and run counts are identical — only the
	// interned item count. Set NoSymmetry to analyse the full space
	// directly (differential testing, symmetry-bug triage).
	NoSymmetry bool
}

func (o Options) withDefaults() (Options, error) {
	// An explicitly negative budget is a configuration error, not a
	// request for the default: report it instead of silently analysing.
	if o.InputDomain < 0 {
		return o, fmt.Errorf("check: negative input domain %d", o.InputDomain)
	}
	if o.MaxHorizon < 0 {
		return o, fmt.Errorf("check: negative max horizon %d", o.MaxHorizon)
	}
	if o.MaxRuns < 0 {
		return o, fmt.Errorf("check: negative max runs %d", o.MaxRuns)
	}
	if o.LatencySlack < 0 {
		return o, fmt.Errorf("check: negative latency slack %d", o.LatencySlack)
	}
	if o.InputDomain == 0 {
		o.InputDomain = 2
	}
	if o.MaxHorizon == 0 {
		o.MaxHorizon = 7
	}
	if o.MaxRuns == 0 {
		// topo.Config treats ≤ 0 as DefaultMaxRuns; resolve it here so an
		// explicit DefaultMaxRuns and the zero value are the same
		// configuration (cache keys depend on this).
		o.MaxRuns = topo.DefaultMaxRuns
	}
	if o.LatencySlack == 0 {
		o.LatencySlack = 2
	}
	return o, nil
}

// EffectiveCertChainLen returns the bivalence-certificate chain budget the
// compact route actually uses for an n-process adversary: the explicit
// value, or the adaptive default (5 for n ≤ 2, 3 for larger n — the word
// space grows as (2^n-1)^len) when the field is zero. Negative disables
// the search. Cache keys must use this resolved form.
func (o Options) EffectiveCertChainLen(n int) int {
	if o.CertChainLen != 0 {
		return o.CertChainLen
	}
	if n <= 2 {
		return 5
	}
	return 3
}

// Resolved returns the options with every default applied — the exact
// configuration an Analyzer constructed from o would run with, or the
// construction error for invalid (negative) fields. Callers that key caches
// or reports on an option set must key on the resolved form, so that a zero
// field and its explicit default value collide instead of splitting
// otherwise-identical work.
func (o Options) Resolved() (Options, error) { return o.withDefaults() }

// Result is the outcome of a solvability analysis.
type Result struct {
	// AdversaryName identifies the analysed adversary.
	AdversaryName string
	// Compact records whether the adversary is limit-closed.
	Compact bool
	// Verdict is the overall outcome; Exact reports whether it is a
	// theorem about the adversary (true) or finite-horizon evidence.
	Verdict Verdict
	Exact   bool

	// SeparationHorizon is the first horizon with no mixed component
	// (the ε of Theorem 6.6 is 2^-SeparationHorizon), or -1.
	SeparationHorizon int
	// BroadcastHorizon is the first horizon at which every valent
	// component is broadcastable, or -1. Theorem 6.6 predicts both
	// horizons exist for solvable compact adversaries.
	BroadcastHorizon int
	// Horizon is the last horizon analysed.
	Horizon int
	// MixedComponents and Components describe the decomposition at the
	// last analysed horizon.
	MixedComponents int
	Components      int

	// Map is the compiled universal algorithm (nil unless solvable).
	Map *DecisionMap
	// Space and Decomposition are the reference space the map was built
	// from (nil unless solvable), at horizon Map.Reference().
	Space         *topo.Space
	Decomposition *topo.Decomposition

	// Certificate is the impossibility proof (nil unless impossible):
	// either a bounded bivalent chain (baseline.BivalenceCertificate) or a
	// self-similar alternating pump (baseline.PumpCertificate).
	Certificate fmt.Stringer

	// Non-compact route (Theorem 6.7): Broadcaster is the designated
	// process whose input every admissible run broadcasts (-1 if none was
	// found); Rule is the corresponding universal algorithm.
	// MaxDecisionLatency is the largest observed number of rounds between
	// obligation discharge and the last process decision;
	// PendingUndecided reports that some run discharged its obligations
	// at least LatencySlack rounds before the horizon yet had undecided
	// processes.
	Broadcaster        int
	Rule               Rule
	MaxDecisionLatency int
	PendingUndecided   bool

	// Notes surfaces analysis anomalies that would otherwise hide inside
	// VerdictUnknown — e.g. a LatencySlack exceeding the analysis horizon,
	// which rejects every witness run of the non-compact route.
	Notes []string
}

// Consensus analyses solvability of consensus under the adversary,
// applying the compact (Theorem 6.6) or non-compact (Theorem 6.7) route.
// It is a convenience shim over an Analyzer session run to completion with
// a background context; use NewAnalyzer directly for cancellation,
// progress reporting or one-horizon stepping.
//
//topocon:export
func Consensus(adv ma.Adversary, opts Options) (*Result, error) {
	a, err := NewAnalyzer(adv, WithOptions(opts))
	if err != nil {
		return nil, err
	}
	//topocon:allow ctxflow -- documented pre-context convenience shim; cancellable callers use NewAnalyzer + Check
	return a.Check(context.Background())
}

// maxGraphsForChainSearch bounds the bounded-chain certificate search; the
// greatest-fixpoint DFS is exponential in the graph-set size.
const maxGraphsForChainSearch = 10

// Summary renders a multi-line human-readable report of the result.
func (r *Result) Summary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "adversary:  %s\n", r.AdversaryName)
	fmt.Fprintf(&sb, "compact:    %v\n", r.Compact)
	kind := "finite-horizon evidence"
	if r.Exact {
		kind = "exact"
	}
	fmt.Fprintf(&sb, "verdict:    %v (%s)\n", r.Verdict, kind)
	switch r.Verdict {
	case VerdictSolvable:
		if r.Compact {
			fmt.Fprintf(&sb, "separation: horizon %d (ε = 2^-%d in Theorem 6.6)\n",
				r.SeparationHorizon, r.SeparationHorizon)
			fmt.Fprintf(&sb, "broadcast:  horizon %d\n", r.BroadcastHorizon)
			if r.Map != nil {
				fmt.Fprintf(&sb, "decisions:  %d decisive views compiled\n", r.Map.Size())
			}
		} else {
			fmt.Fprintf(&sb, "broadcaster: process %d (Theorem 6.7 partition PS(v) = {x_%d = v})\n",
				r.Broadcaster+1, r.Broadcaster+1)
			fmt.Fprintf(&sb, "latency:    ≤ %d rounds after stabilization\n", r.MaxDecisionLatency)
		}
	case VerdictImpossible:
		fmt.Fprintf(&sb, "certificate: %v\n", r.Certificate)
	case VerdictUnknown:
		fmt.Fprintf(&sb, "analysis:   horizon %d, %d components, %d mixed\n",
			r.Horizon, r.Components, r.MixedComponents)
		if r.PendingUndecided {
			sb.WriteString("evidence:   runs with discharged obligations stay undecided (non-broadcastable)\n")
		}
	}
	for _, note := range r.Notes {
		fmt.Fprintf(&sb, "note:       %s\n", note)
	}
	return sb.String()
}
