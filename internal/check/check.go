package check

import (
	"fmt"
	"strings"

	"topocon/internal/baseline"
	"topocon/internal/ma"
	"topocon/internal/topo"
)

// Verdict classifies the outcome of a solvability analysis.
type Verdict int

const (
	// VerdictSolvable: consensus is solvable; the Result carries the
	// universal algorithm. Exact for compact adversaries (separation
	// witness, Theorem 6.6); evidence-based for non-compact ones
	// (Theorem 6.7 checked at finite horizon).
	VerdictSolvable Verdict = iota + 1
	// VerdictImpossible: consensus is certifiably impossible (bivalence
	// certificate, Section 6.1).
	VerdictImpossible
	// VerdictUnknown: neither a solvability witness nor an impossibility
	// certificate was found within the analysis budget.
	VerdictUnknown
)

// String renders the verdict.
func (v Verdict) String() string {
	switch v {
	case VerdictSolvable:
		return "solvable"
	case VerdictImpossible:
		return "impossible"
	case VerdictUnknown:
		return "unknown"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// Options configure the checker.
type Options struct {
	// InputDomain is the number of input values (default 2).
	InputDomain int
	// MaxHorizon bounds the prefix horizons analysed (default 7).
	MaxHorizon int
	// MaxRuns bounds the prefix-space size (default topo.DefaultMaxRuns).
	MaxRuns int
	// DefaultValue is assigned to valence-free components by the
	// meta-procedure's step 3 (default 0).
	DefaultValue int
	// CertChainLen bounds the bivalence-certificate chain search for
	// oblivious adversaries; 0 selects an adaptive default (5 for n ≤ 2,
	// 3 for larger n — the word space grows as (2^n-1)^len); a negative
	// value disables the search.
	CertChainLen int
	// LatencySlack is the number of rounds a non-compact adversary's runs
	// are allowed between obligation discharge and full decision before
	// the checker refuses the solvability evidence (default 2).
	LatencySlack int
}

func (o Options) withDefaults() Options {
	if o.InputDomain == 0 {
		o.InputDomain = 2
	}
	if o.MaxHorizon == 0 {
		o.MaxHorizon = 7
	}
	if o.LatencySlack == 0 {
		o.LatencySlack = 2
	}
	return o
}

// Result is the outcome of a solvability analysis.
type Result struct {
	// AdversaryName identifies the analysed adversary.
	AdversaryName string
	// Compact records whether the adversary is limit-closed.
	Compact bool
	// Verdict is the overall outcome; Exact reports whether it is a
	// theorem about the adversary (true) or finite-horizon evidence.
	Verdict Verdict
	Exact   bool

	// SeparationHorizon is the first horizon with no mixed component
	// (the ε of Theorem 6.6 is 2^-SeparationHorizon), or -1.
	SeparationHorizon int
	// BroadcastHorizon is the first horizon at which every valent
	// component is broadcastable, or -1. Theorem 6.6 predicts both
	// horizons exist for solvable compact adversaries.
	BroadcastHorizon int
	// Horizon is the last horizon analysed.
	Horizon int
	// MixedComponents and Components describe the decomposition at the
	// last analysed horizon.
	MixedComponents int
	Components      int

	// Map is the compiled universal algorithm (nil unless solvable).
	Map *DecisionMap
	// Space and Decomposition are the reference space the map was built
	// from (nil unless solvable), at horizon Map.Reference().
	Space         *topo.Space
	Decomposition *topo.Decomposition

	// Certificate is the impossibility proof (nil unless impossible):
	// either a bounded bivalent chain (baseline.BivalenceCertificate) or a
	// self-similar alternating pump (baseline.PumpCertificate).
	Certificate fmt.Stringer

	// Non-compact route (Theorem 6.7): Broadcaster is the designated
	// process whose input every admissible run broadcasts (-1 if none was
	// found); Rule is the corresponding universal algorithm.
	// MaxDecisionLatency is the largest observed number of rounds between
	// obligation discharge and the last process decision;
	// PendingUndecided reports that some run discharged its obligations
	// at least LatencySlack rounds before the horizon yet had undecided
	// processes.
	Broadcaster        int
	Rule               Rule
	MaxDecisionLatency int
	PendingUndecided   bool
}

// Consensus analyses solvability of consensus under the adversary,
// applying the compact (Theorem 6.6) or non-compact (Theorem 6.7) route.
func Consensus(adv ma.Adversary, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if adv.Compact() {
		return consensusCompact(adv, opts)
	}
	return consensusNonCompact(adv, opts)
}

func consensusCompact(adv ma.Adversary, opts Options) (*Result, error) {
	res := &Result{
		AdversaryName:      adv.Name(),
		Compact:            true,
		SeparationHorizon:  -1,
		BroadcastHorizon:   -1,
		Broadcaster:        -1,
		MaxDecisionLatency: -1,
	}
	for t := 1; t <= opts.MaxHorizon; t++ {
		s, err := topo.Build(adv, opts.InputDomain, t, opts.MaxRuns)
		if err != nil {
			return nil, fmt.Errorf("check: horizon %d: %w", t, err)
		}
		d := topo.Decompose(s)
		res.Horizon = t
		res.MixedComponents = len(d.MixedComponents())
		res.Components = len(d.Comps)
		if res.SeparationHorizon < 0 && res.MixedComponents == 0 {
			res.SeparationHorizon = t
			res.Space = s
			res.Decomposition = d
			res.Map = BuildDecisionMap(d, opts.DefaultValue)
		}
		if res.BroadcastHorizon < 0 && d.ValentComponentsBroadcastable() {
			res.BroadcastHorizon = t
		}
		if res.SeparationHorizon >= 0 && res.BroadcastHorizon >= 0 {
			break
		}
	}
	if res.SeparationHorizon >= 0 {
		// Separation persists under refinement, so it is an exact
		// solvability witness for a compact adversary.
		res.Verdict = VerdictSolvable
		res.Exact = true
		res.Rule = &MapRule{Map: res.Map}
		return res, nil
	}
	chainLen := opts.CertChainLen
	if chainLen == 0 {
		if adv.N() <= 2 {
			chainLen = 5
		} else {
			chainLen = 3
		}
	}
	if ob, ok := adv.(*ma.Oblivious); ok && chainLen > 0 {
		// The pump search is polynomial in the graph-set size; try it
		// first. The bounded-chain greatest fixpoint is exponential in
		// the chain length and graph count, so it is gated on small sets.
		if cert, found := baseline.FindPumpCertificate(ob, opts.InputDomain); found {
			res.Verdict = VerdictImpossible
			res.Exact = true
			res.Certificate = cert
			return res, nil
		}
		if len(ob.Graphs()) <= maxGraphsForChainSearch {
			if cert, found := baseline.ProveBivalent(ob, opts.InputDomain, chainLen); found {
				res.Verdict = VerdictImpossible
				res.Exact = true
				res.Certificate = cert
				return res, nil
			}
		}
	}
	res.Verdict = VerdictUnknown
	return res, nil
}

// maxGraphsForChainSearch bounds the bounded-chain certificate search; the
// greatest-fixpoint DFS is exponential in the graph-set size.
const maxGraphsForChainSearch = 10

// consensusNonCompact applies Theorem 6.7: for a non-compact adversary the
// finite-horizon components of the full prefix space stay mixed at every
// resolution (pending prefixes carry the excluded limit sequences, Fig. 5),
// so the compact ε-approximation route is unavailable. Instead the checker
// looks for a designated universal broadcaster p*: a process that is heard
// by everyone in every admissible run shortly after the adversary's
// liveness obligation discharges. Its existence makes the partition
// PS(v) = {x_{p*} = v} open — every process decides x_{p*} upon hearing it
// — which is exactly how the eventually-stabilizing adversaries of [23]
// solve consensus. Absence of such a broadcaster at the analysis horizon
// yields VerdictUnknown together with the refuting evidence.
func consensusNonCompact(adv ma.Adversary, opts Options) (*Result, error) {
	res := &Result{
		AdversaryName:      adv.Name(),
		SeparationHorizon:  -1,
		BroadcastHorizon:   -1,
		Broadcaster:        -1,
		MaxDecisionLatency: -1,
	}
	t := opts.MaxHorizon
	s, err := topo.Build(adv, opts.InputDomain, t, opts.MaxRuns)
	if err != nil {
		return nil, fmt.Errorf("check: horizon %d: %w", t, err)
	}
	d := topo.Decompose(s)
	res.Horizon = t
	res.MixedComponents = len(d.MixedComponents())
	res.Components = len(d.Comps)
	res.Space = s
	res.Decomposition = d

	// A witness item is one whose obligations discharged early enough
	// that broadcast completion is owed within the horizon. Candidate
	// broadcasters must be heard-by-all in every witness item by
	// DoneAt + LatencySlack.
	n := s.N()
	witnesses := 0
	candidates := make([]bool, n)
	for p := range candidates {
		candidates[p] = true
	}
	for i := range s.Items {
		item := &s.Items[i]
		if item.DoneAt < 0 || item.DoneAt > t-opts.LatencySlack {
			continue
		}
		witnesses++
		deadline := item.DoneAt + opts.LatencySlack
		if deadline > t {
			deadline = t
		}
		heard := item.Views.HeardByAll(deadline)
		for p := 0; p < n; p++ {
			if candidates[p] && heard&(1<<uint(p)) == 0 {
				candidates[p] = false
			}
		}
	}
	if witnesses == 0 {
		res.Verdict = VerdictUnknown
		return res, nil
	}
	best := -1
	for p := 0; p < n; p++ {
		if candidates[p] {
			best = p
			break
		}
	}
	if best < 0 {
		res.PendingUndecided = true
		res.Verdict = VerdictUnknown
		return res, nil
	}
	res.Broadcaster = best
	rule := &BroadcastRule{Broadcaster: best}
	res.Rule = rule

	// Measure decision latency of the broadcast rule over Done items.
	for i := range s.Items {
		item := &s.Items[i]
		if item.DoneAt < 0 || item.DoneAt > t-opts.LatencySlack {
			continue
		}
		last := 0
		for p := 0; p < n; p++ {
			decided := false
			for tt := 0; tt <= t; tt++ {
				if _, ok := rule.Decide(ViewOf(item.Run, item.Views, tt, p)); ok {
					if tt > last {
						last = tt
					}
					decided = true
					break
				}
			}
			if !decided {
				res.PendingUndecided = true
			}
		}
		latency := last - item.DoneAt
		if latency < 0 {
			latency = 0 // decided before the obligation discharged
		}
		if latency > res.MaxDecisionLatency {
			res.MaxDecisionLatency = latency
		}
	}
	if res.PendingUndecided {
		res.Verdict = VerdictUnknown
		res.Rule = nil
		return res, nil
	}
	res.Verdict = VerdictSolvable
	res.Exact = false
	return res, nil
}

// Summary renders a multi-line human-readable report of the result.
func (r *Result) Summary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "adversary:  %s\n", r.AdversaryName)
	fmt.Fprintf(&sb, "compact:    %v\n", r.Compact)
	kind := "finite-horizon evidence"
	if r.Exact {
		kind = "exact"
	}
	fmt.Fprintf(&sb, "verdict:    %v (%s)\n", r.Verdict, kind)
	switch r.Verdict {
	case VerdictSolvable:
		if r.Compact {
			fmt.Fprintf(&sb, "separation: horizon %d (ε = 2^-%d in Theorem 6.6)\n",
				r.SeparationHorizon, r.SeparationHorizon)
			fmt.Fprintf(&sb, "broadcast:  horizon %d\n", r.BroadcastHorizon)
			if r.Map != nil {
				fmt.Fprintf(&sb, "decisions:  %d decisive views compiled\n", r.Map.Size())
			}
		} else {
			fmt.Fprintf(&sb, "broadcaster: process %d (Theorem 6.7 partition PS(v) = {x_%d = v})\n",
				r.Broadcaster+1, r.Broadcaster+1)
			fmt.Fprintf(&sb, "latency:    ≤ %d rounds after stabilization\n", r.MaxDecisionLatency)
		}
	case VerdictImpossible:
		fmt.Fprintf(&sb, "certificate: %v\n", r.Certificate)
	case VerdictUnknown:
		fmt.Fprintf(&sb, "analysis:   horizon %d, %d components, %d mixed\n",
			r.Horizon, r.Components, r.MixedComponents)
		if r.PendingUndecided {
			sb.WriteString("evidence:   runs with discharged obligations stay undecided (non-broadcastable)\n")
		}
	}
	return sb.String()
}
