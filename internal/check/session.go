package check

import (
	"errors"
	"fmt"

	"topocon/internal/ma"
	"topocon/internal/pager"
	"topocon/internal/ptg"
	"topocon/internal/topo"
)

// SessionSnapshot is the serializable state of a mid-run Analyzer session:
// everything needed to resume in a fresh process except the interner blob
// and the frontier pages themselves, which live in the pager's directory
// and are carried by reference (internal/ckpt frames, checksums and
// validates the whole on disk).
//
// Automaton states are deliberately absent (ma.State is opaque); restore
// recomputes them by deterministic replay over the persisted round graphs,
// and the decision map — when a separation horizon was already found — is
// recompiled from the restored separation-horizon decomposition, which
// reproduces it exactly (BuildDecisionMap is deterministic and the
// imported interner reassigns identical ViewIDs).
type SessionSnapshot struct {
	// Options are the session's resolved options; a resume must run under
	// exactly these (the checkpoint is only valid for the configuration
	// that produced it).
	Options     Options `json:"options"`
	Parallelism int     `json:"parallelism"`
	Retain      int     `json:"retain"`

	// Horizon is the deepest fully-analysed horizon; Rounds reference its
	// frontier chain's persisted pages, horizons 1..Horizon ascending.
	Horizon int               `json:"horizon"`
	Rounds  []topo.ChainRound `json:"rounds"`

	// Decomp is the decomposition at Horizon (the Refine parent of the next
	// Step). SepDecomp is the separation-horizon decomposition when
	// separation was found strictly earlier; nil if unseen or equal to
	// Decomp.
	Decomp    *topo.DecompSnapshot `json:"decomp"`
	SepDecomp *topo.DecompSnapshot `json:"sepDecomp,omitempty"`

	SeparationHorizon int `json:"separationHorizon"`
	BroadcastHorizon  int `json:"broadcastHorizon"`
}

// Snapshot captures the session for a checkpoint. It requires a pager
// (WithPager) and at least one completed Step, and must not race a running
// Step — call it from the WithProgress callback (which fires after the
// horizon commits) or between Step calls. Snapshot persists any
// not-yet-persisted round of the current chain (the head) as a side effect;
// it does not advance the session.
func (a *Analyzer) Snapshot() (*SessionSnapshot, error) {
	if a.pager == nil {
		return nil, errors.New("check: Snapshot requires a pager (WithPager)")
	}
	if a.cur == nil || a.cur.Horizon == 0 || a.decomp == nil {
		return nil, errors.New("check: Snapshot before the first completed Step")
	}
	if a.finished {
		return nil, errors.New("check: Snapshot of a finished session (persist the verdict instead)")
	}
	rounds, err := a.cur.SnapshotChain()
	if err != nil {
		return nil, err
	}
	snap := &SessionSnapshot{
		Options:           a.opts,
		Parallelism:       a.parallelism,
		Retain:            a.retain,
		Horizon:           a.cur.Horizon,
		Rounds:            rounds,
		Decomp:            topo.SnapshotDecomposition(a.decomp),
		SeparationHorizon: a.res.SeparationHorizon,
		BroadcastHorizon:  a.res.BroadcastHorizon,
	}
	if sep := a.res.SeparationHorizon; sep >= 0 && sep != a.cur.Horizon {
		if a.res.Decomposition == nil {
			return nil, fmt.Errorf("check: Snapshot: separation horizon %d found but its decomposition is gone", sep)
		}
		snap.SepDecomp = topo.SnapshotDecomposition(a.res.Decomposition)
	}
	return snap, nil
}

// RestoreAnalyzer rebuilds an Analyzer session from a snapshot, the
// imported interner of the checkpointed session, and a pager over the page
// directory the snapshot's rounds reference. The restored session continues
// with plain Step/Check calls; the next Step extends from the restored
// horizon — already-checkpointed horizons are never re-extended (the
// restored chain satisfies Refine's parent-linkage precondition by
// construction).
//
// Validation is strict and structural: chain shape, decomposition shape and
// page checksums all fail the restore cleanly. Caller-level validation —
// adversary fingerprint, options match — is internal/ckpt's job; pass extra
// options (WithProgress, …) for the new process's observers only, never to
// change the analysis configuration.
func RestoreAnalyzer(adv ma.Adversary, snap *SessionSnapshot, interner *ptg.Interner, pg *pager.Pager, extra ...AnalyzerOption) (*Analyzer, error) {
	if snap == nil || interner == nil || pg == nil {
		return nil, errors.New("check: RestoreAnalyzer: snapshot, interner and pager are required")
	}
	if snap.Horizon < 1 || len(snap.Rounds) != snap.Horizon {
		return nil, fmt.Errorf("check: RestoreAnalyzer: snapshot at horizon %d carries %d rounds", snap.Horizon, len(snap.Rounds))
	}
	if snap.Decomp == nil {
		return nil, errors.New("check: RestoreAnalyzer: snapshot carries no decomposition")
	}
	if snap.SeparationHorizon > snap.Horizon || snap.BroadcastHorizon > snap.Horizon {
		return nil, fmt.Errorf("check: RestoreAnalyzer: separation/broadcast horizons (%d, %d) beyond snapshot horizon %d",
			snap.SeparationHorizon, snap.BroadcastHorizon, snap.Horizon)
	}
	options := append([]AnalyzerOption{
		WithOptions(snap.Options),
		WithParallelism(snap.Parallelism),
		WithRetainSpaces(snap.Retain),
		WithPager(pg),
	}, extra...)
	a, err := NewAnalyzer(adv, options...)
	if err != nil {
		return nil, err
	}
	if a.opts != snap.Options {
		return nil, fmt.Errorf("check: RestoreAnalyzer: snapshot options %+v do not resolve to themselves (got %+v)", snap.Options, a.opts)
	}
	cur, err := topo.RestoreChain(topo.ChainSpec{
		Adversary:   adv,
		InputDomain: a.opts.InputDomain,
		MaxRuns:     a.opts.MaxRuns,
		Parallelism: a.parallelism,
		Interner:    interner,
		Pager:       pg,
		Rounds:      snap.Rounds,
		// The quotient is derived state (pages are symmetry-agnostic): the
		// restored chain re-derives the same group from the same adversary
		// and options, so representative selection replays identically.
		Symmetry: a.symmetry(),
	})
	if err != nil {
		return nil, err
	}
	decomp, err := topo.RestoreDecomposition(cur, snap.Decomp)
	if err != nil {
		return nil, err
	}
	a.spaces = make([]*topo.Space, snap.Horizon+1)
	a.spaces[snap.Horizon] = cur
	a.cur = cur
	a.decomp = decomp

	res := a.res
	res.Horizon = snap.Horizon
	res.Components = len(decomp.Comps)
	res.MixedComponents = len(decomp.MixedComponents())
	res.BroadcastHorizon = snap.BroadcastHorizon
	if sep := snap.SeparationHorizon; sep >= 0 {
		res.SeparationHorizon = sep
		sepSpace := cur
		sepDecomp := decomp
		if sep != snap.Horizon {
			if snap.SepDecomp == nil {
				return nil, fmt.Errorf("check: RestoreAnalyzer: separation at %d < horizon %d but no separation decomposition", sep, snap.Horizon)
			}
			if sepSpace, err = cur.AncestorAt(sep); err != nil {
				return nil, err
			}
			if sepDecomp, err = topo.RestoreDecomposition(sepSpace, snap.SepDecomp); err != nil {
				return nil, err
			}
			a.spaces[sep] = sepSpace
		}
		res.Space = sepSpace
		res.Decomposition = sepDecomp
		res.Map = BuildDecisionMap(sepDecomp, a.opts.DefaultValue)
	}
	return a, nil
}
