// Package lasso performs *exact* infinite-run analysis for ultimately-
// periodic runs u·v^ω ("lassos"): per-process view agreement over the whole
// infinite run (d_{p}(a,b) = 0, no horizon), the exact connected-component
// structure of finite message adversaries in the minimum topology
// (Corollary 5.6 verbatim), and the fair/unfair limit pairs of
// Definition 5.16.
//
// The engine is the monotone view-equality fixpoint: let E_p(t) be true iff
// V_p(a^t) = V_p(b^t). Then
//
//	E_p(0) = [x_p(a) = x_p(b)]
//	E_p(t) = [In_p(G_a^t) = In_p(G_b^t)] ∧ ∀q ∈ In_p(G^t): E_q(t-1),
//
// because a view is a node over the views of the round's in-neighbours.
// Since p ∈ In_p (self-loops), E_p is non-increasing in t; the vector
// E ∈ {0,1}^n can drop at most n times, and between drops its evolution is
// driven by the phase pair of the two lassos, which is eventually periodic
// with period lcm of the cycle lengths. Simulating past the transients and
// one full stable period therefore decides E_p(∞) exactly.
package lasso

import (
	"fmt"

	"topocon/internal/ma"
)

// Run is an ultimately-periodic infinite run.
type Run struct {
	// Inputs is the input assignment.
	Inputs []int
	// Word is the graph word u·v^ω.
	Word ma.GraphWord
}

// NewRun validates and builds a lasso run.
func NewRun(inputs []int, word ma.GraphWord) (Run, error) {
	if len(inputs) != word.N() {
		return Run{}, fmt.Errorf("lasso: %d inputs for %d-node word", len(inputs), word.N())
	}
	return Run{Inputs: append([]int(nil), inputs...), Word: word}, nil
}

// MustRun is NewRun for statically-known runs.
func MustRun(inputs []int, word ma.GraphWord) Run {
	r, err := NewRun(inputs, word)
	if err != nil {
		panic(err)
	}
	return r
}

// N returns the process count.
func (r Run) N() int { return len(r.Inputs) }

// Valence returns the common input value and true if the run is valent.
func (r Run) Valence() (int, bool) {
	v := r.Inputs[0]
	for _, x := range r.Inputs[1:] {
		if x != v {
			return 0, false
		}
	}
	return v, true
}

// String renders the run.
func (r Run) String() string {
	return fmt.Sprintf("x=%v %s", r.Inputs, r.Word)
}

// AgreementForever returns, for each process p, whether p's views in a and
// b agree at every time t ≥ 0 — i.e. whether d_{p}(a,b) = 0. The result is
// exact (no horizon).
func AgreementForever(a, b Run) []bool {
	n := a.N()
	e := make([]bool, n)
	for p := 0; p < n; p++ {
		e[p] = a.Inputs[p] == b.Inputs[p]
	}
	// Simulate until the E-vector is provably stable: the phase pair of
	// the two words cycles with period L = lcm(cycle lengths) after both
	// transients; E can drop at most n times, so simulating
	// maxPrefix + (n+1)·L rounds passes through a full stable period
	// after the last possible drop.
	la := a.Word
	lb := b.Word
	maxPrefix := len(la.Prefix)
	if len(lb.Prefix) > maxPrefix {
		maxPrefix = len(lb.Prefix)
	}
	period := lcm(len(la.Cycle), len(lb.Cycle))
	bound := maxPrefix + (n+1)*period
	next := make([]bool, n)
	for t := 0; t < bound; t++ {
		ga, gb := la.At(t), lb.At(t)
		for p := 0; p < n; p++ {
			if ga.In(p) != gb.In(p) {
				next[p] = false
				continue
			}
			ok := true
			in := ga.In(p)
			for q := 0; q < n; q++ {
				if in&(1<<uint(q)) != 0 && !e[q] {
					ok = false
					break
				}
			}
			next[p] = ok
		}
		copy(e, next)
	}
	return e
}

// DistanceZero reports whether d_min(a,b) = 0: some process never
// distinguishes the two runs.
func DistanceZero(a, b Run) bool {
	for _, ok := range AgreementForever(a, b) {
		if ok {
			return true
		}
	}
	return false
}

// AgreeLevels returns, for each process, the first time its views in a and
// b differ, or -1 if they agree forever (so d_{p} = 2^-level, with -1
// meaning distance 0). Exact.
func AgreeLevels(a, b Run) []int {
	n := a.N()
	forever := AgreementForever(a, b)
	levels := make([]int, n)
	e := make([]bool, n)
	for p := 0; p < n; p++ {
		e[p] = a.Inputs[p] == b.Inputs[p]
		levels[p] = -2 // sentinel: not yet determined
		if !e[p] {
			levels[p] = 0
		} else if forever[p] {
			levels[p] = -1
		}
	}
	la, lb := a.Word, b.Word
	maxPrefix := len(la.Prefix)
	if len(lb.Prefix) > maxPrefix {
		maxPrefix = len(lb.Prefix)
	}
	bound := maxPrefix + (n+1)*lcm(len(la.Cycle), len(lb.Cycle))
	next := make([]bool, n)
	for t := 1; t <= bound; t++ {
		ga, gb := la.At(t-1), lb.At(t-1)
		for p := 0; p < n; p++ {
			eq := ga.In(p) == gb.In(p)
			if eq {
				in := ga.In(p)
				for q := 0; q < n; q++ {
					if in&(1<<uint(q)) != 0 && !e[q] {
						eq = false
						break
					}
				}
			}
			next[p] = eq
			if !eq && levels[p] == -2 {
				levels[p] = t
			}
		}
		copy(e, next)
	}
	for p := range levels {
		if levels[p] == -2 {
			// Unreachable: AgreementForever said the views differ at some
			// time, which must occur within the simulation bound.
			panic(fmt.Sprintf("lasso: agreement level of process %d undetermined", p))
		}
	}
	return levels
}

// MinAgreeLevel returns the exponent of d_min(a,b): the largest per-process
// first-difference time, or -1 when d_min(a,b) = 0.
func MinAgreeLevel(a, b Run) int {
	best := 0
	for _, l := range AgreeLevels(a, b) {
		if l < 0 {
			return -1
		}
		if l > best {
			best = l
		}
	}
	return best
}

func lcm(a, b int) int {
	return a / gcd(a, b) * b
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
