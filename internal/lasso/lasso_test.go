package lasso

import (
	"math/rand"
	"testing"
	"testing/quick"

	"topocon/internal/graph"
	"topocon/internal/ma"
	"topocon/internal/ptg"
)

func binRun(x1, x2 int, word ma.GraphWord) Run {
	return MustRun([]int{x1, x2}, word)
}

func TestAgreementForeverIdenticalRuns(t *testing.T) {
	w := ma.Repeat(graph.Left, graph.Right)
	r := binRun(0, 1, w)
	for p, ok := range AgreementForever(r, r) {
		if !ok {
			t.Errorf("process %d disagrees with itself", p+1)
		}
	}
}

func TestAgreementForeverHiddenInput(t *testing.T) {
	// Under ->^ω process 1 never hears 2: flipping x2 is invisible to 1
	// forever, visible to 2 at time 0.
	w := ma.Repeat(graph.Right)
	a := binRun(0, 0, w)
	b := binRun(0, 1, w)
	agree := AgreementForever(a, b)
	if !agree[0] {
		t.Error("process 1 must agree forever (never hears 2)")
	}
	if agree[1] {
		t.Error("process 2 must disagree (own input differs)")
	}
	if !DistanceZero(a, b) {
		t.Error("d_min must be 0")
	}
	if lvl := MinAgreeLevel(a, b); lvl != -1 {
		t.Errorf("MinAgreeLevel = %d, want -1 (distance 0)", lvl)
	}
}

func TestAgreementForeverFairWordSeesEverything(t *testing.T) {
	// Under <->^ω both processes hear each other every round: any input
	// difference becomes visible to everyone — no distance-0 pairs.
	w := ma.Repeat(graph.Both)
	a := binRun(0, 0, w)
	b := binRun(0, 1, w)
	agree := AgreementForever(a, b)
	if agree[0] || agree[1] {
		t.Errorf("fair word must propagate differences: %v", agree)
	}
	levels := AgreeLevels(a, b)
	if levels[1] != 0 {
		t.Errorf("process 2 first difference at %d, want 0", levels[1])
	}
	if levels[0] != 1 {
		t.Errorf("process 1 first difference at %d, want 1 (hears x2 in round 1)", levels[0])
	}
}

func TestAgreementForeverWordDifference(t *testing.T) {
	// Words <-^ω vs (<- <->)^ω: the difference is the 1->2 edge in even
	// rounds; process 2's own in-edge differs there (visible at round 2),
	// process 1 sees it once it hears process 2's changed view.
	a := binRun(0, 1, ma.Repeat(graph.Left))
	b := binRun(0, 1, ma.MustGraphWord(nil, []graph.Graph{graph.Left, graph.Both}))
	levels := AgreeLevels(a, b)
	if levels[1] != 2 {
		t.Errorf("process 2 first difference at %d, want 2", levels[1])
	}
	// Process 1 hears 2 every round (both words deliver 2->1), so it sees
	// 2's changed view one round later.
	if levels[0] != 3 {
		t.Errorf("process 1 first difference at %d, want 3", levels[0])
	}
	if MinAgreeLevel(a, b) != 3 {
		t.Errorf("MinAgreeLevel = %d, want 3", MinAgreeLevel(a, b))
	}
}

// TestAgreeLevelsMatchFiniteViews cross-validates the exact lasso engine
// against the finite-horizon hash-consed views on random lasso pairs.
func TestAgreeLevelsMatchFiniteViews(t *testing.T) {
	all := make([]graph.Graph, 0, 4)
	graph.EnumerateAll(2, func(g graph.Graph) bool {
		all = append(all, g)
		return true
	})
	randWord := func(rng *rand.Rand) ma.GraphWord {
		plen := rng.Intn(3)
		clen := 1 + rng.Intn(3)
		prefix := make([]graph.Graph, plen)
		cycle := make([]graph.Graph, clen)
		for i := range prefix {
			prefix[i] = all[rng.Intn(len(all))]
		}
		for i := range cycle {
			cycle[i] = all[rng.Intn(len(all))]
		}
		return ma.MustGraphWord(prefix, cycle)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := binRun(rng.Intn(2), rng.Intn(2), randWord(rng))
		b := binRun(rng.Intn(2), rng.Intn(2), randWord(rng))
		exact := AgreeLevels(a, b)
		const horizon = 24
		in := ptg.NewInterner()
		ra := ptg.NewRun(a.Inputs)
		rb := ptg.NewRun(b.Inputs)
		for t := 0; t < horizon; t++ {
			ra = ra.Extend(a.Word.At(t))
			rb = rb.Extend(b.Word.At(t))
		}
		va := ptg.ComputeViews(in, ra)
		vb := ptg.ComputeViews(in, rb)
		for p := 0; p < 2; p++ {
			finite := ptg.AgreeLevel(va, vb, p)
			switch {
			case exact[p] < 0:
				// Agreement forever: the finite level must exceed the
				// horizon.
				if finite != horizon+1 {
					return false
				}
			case exact[p] != finite:
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestDistanceZeroSymmetric(t *testing.T) {
	a := binRun(0, 0, ma.Repeat(graph.Right))
	b := binRun(0, 1, ma.Repeat(graph.Right))
	if DistanceZero(a, b) != DistanceZero(b, a) {
		t.Error("DistanceZero is not symmetric")
	}
}

// TestAnalyzeSilentWord: the one-word adversary {silent^ω} is the textbook
// impossible case — all runs collapse into one mixed component via hidden
// input flips.
func TestAnalyzeSilentWord(t *testing.T) {
	a, err := Analyze([]ma.GraphWord{ma.Repeat(graph.Neither)}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Solvable {
		t.Error("silent word must be unsolvable")
	}
	if len(a.Components) != 1 {
		t.Errorf("got %d components, want 1", len(a.Components))
	}
	if len(a.BridgePairs) == 0 {
		t.Error("expected bridge pairs witnessing the hidden flips")
	}
}

// TestAnalyzeOneDirectionalWords: {<-^ω} and {->^ω} are solvable: the
// receiver knows the sender's input, the hidden flips stay on one side.
func TestAnalyzeOneDirectionalWords(t *testing.T) {
	for _, w := range []ma.GraphWord{ma.Repeat(graph.Left), ma.Repeat(graph.Right)} {
		a, err := Analyze([]ma.GraphWord{w}, 2)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Solvable {
			t.Errorf("%v: must be solvable", w)
		}
		if len(a.Components) != 2 {
			t.Errorf("%v: got %d components, want 2", w, len(a.Components))
		}
	}
}

// TestAnalyzeTwoWords: {<-^ω, ->^ω} is solvable (the finite shadow of the
// reduced lossy link); adding the silent word makes it impossible.
func TestAnalyzeTwoWords(t *testing.T) {
	two := []ma.GraphWord{ma.Repeat(graph.Left), ma.Repeat(graph.Right)}
	a, err := Analyze(two, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Solvable {
		t.Error("{<-^ω, ->^ω} must be solvable")
	}
	if len(a.Components) != 4 {
		t.Errorf("got %d components, want 4", len(a.Components))
	}

	three := append(two, ma.Repeat(graph.Neither))
	a3, err := Analyze(three, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a3.Solvable {
		t.Error("adding the silent word must break solvability")
	}
}

// TestAnalyzeHiddenFlipChainN3: an n=3 finite adversary where process 3 is
// never heard by anyone — its input flips freely, but since it HEARS the
// others it cannot be fooled about them; flipping inputs of 1 or 2 is
// visible to everyone. Only one hidden coordinate: solvable.
func TestAnalyzeHiddenFlipChainN3(t *testing.T) {
	// 1<->2 every round, 1->3 and 2->3: process 3 is a pure sink.
	g := graph.MustParse(3, "1<->2, 1->3, 2->3")
	a, err := Analyze([]ma.GraphWord{ma.Repeat(g)}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Solvable {
		t.Error("sink-process adversary must be solvable")
	}
	// Flipping x3 links runs pairwise (invisible to 1 and 2): components
	// of size 2 for each (x1,x2) and each x3 pair: 4 components.
	if len(a.Components) != 4 {
		t.Errorf("got %d components, want 4", len(a.Components))
	}
}

// TestAnalyzeIsolationImpossibleN3: if the adversary can isolate each
// process from everyone (the silent graph), consensus is impossible for
// n=3 too.
func TestAnalyzeIsolationImpossibleN3(t *testing.T) {
	a, err := Analyze([]ma.GraphWord{ma.Repeat(graph.New(3))}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Solvable {
		t.Error("silent n=3 word must be unsolvable")
	}
}

func TestAnalyzeErrors(t *testing.T) {
	if _, err := Analyze(nil, 2); err == nil {
		t.Error("no words: want error")
	}
	if _, err := Analyze([]ma.GraphWord{ma.Repeat(graph.Neither)}, 0); err == nil {
		t.Error("bad domain: want error")
	}
	mixed := []ma.GraphWord{ma.Repeat(graph.Neither), ma.Repeat(graph.New(3))}
	if _, err := Analyze(mixed, 2); err == nil {
		t.Error("mixed node counts: want error")
	}
}

func TestRunHelpers(t *testing.T) {
	r := binRun(1, 1, ma.Repeat(graph.Both))
	if v, ok := r.Valence(); !ok || v != 1 {
		t.Errorf("Valence = (%d,%v), want (1,true)", v, ok)
	}
	if _, ok := binRun(0, 1, ma.Repeat(graph.Both)).Valence(); ok {
		t.Error("mixed inputs reported valent")
	}
	if r.String() == "" {
		t.Error("empty rendering")
	}
	if _, err := NewRun([]int{0}, ma.Repeat(graph.Both)); err == nil {
		t.Error("input/word size mismatch: want error")
	}
}

// TestFairLimitConvergence is the quantitative Fig. 5 demonstration (E7):
// the runs a_k = (0,1, <->^k ->^ω) and b_k = (0,1, <->^k <-^ω) are
// separated for every k (positive distance), but their mutual distance and
// their distance to the fair limit r = (0,1, <->^ω) both vanish as k → ∞ —
// r is exactly the excluded fair sequence of Definition 5.16.
func TestFairLimitConvergence(t *testing.T) {
	fair := binRun(0, 1, ma.Repeat(graph.Both))
	prevAB := -1
	for k := 1; k <= 5; k++ {
		prefix := make([]graph.Graph, k)
		for i := range prefix {
			prefix[i] = graph.Both
		}
		ak := binRun(0, 1, ma.MustGraphWord(prefix, []graph.Graph{graph.Right}))
		bk := binRun(0, 1, ma.MustGraphWord(prefix, []graph.Graph{graph.Left}))
		dAB := MinAgreeLevel(ak, bk)
		dAr := MinAgreeLevel(ak, fair)
		dBr := MinAgreeLevel(bk, fair)
		if dAB < 0 || dAr < 0 || dBr < 0 {
			t.Fatalf("k=%d: distances must be positive (levels %d %d %d)", k, dAB, dAr, dBr)
		}
		if dAB <= prevAB {
			t.Errorf("k=%d: level %d not increasing (prev %d) — distance must shrink", k, dAB, prevAB)
		}
		if dAr <= k || dBr <= k {
			t.Errorf("k=%d: convergence to the fair limit too slow: %d, %d", k, dAr, dBr)
		}
		prevAB = dAB
	}
}

// TestAgreeLevelsMatchFiniteViewsN3 extends the exactness cross-check to
// n=3 lassos with longer cycles.
func TestAgreeLevelsMatchFiniteViewsN3(t *testing.T) {
	pool := []graph.Graph{
		graph.Complete(3), graph.Cycle(3), graph.Chain(3),
		graph.Star(3, 0), graph.Star(3, 2), graph.New(3),
		graph.MustParse(3, "1<->2"), graph.MustParse(3, "2->3, 3->1"),
	}
	rng := rand.New(rand.NewSource(33))
	randWord := func() ma.GraphWord {
		plen := rng.Intn(3)
		clen := 1 + rng.Intn(4)
		prefix := make([]graph.Graph, plen)
		cycle := make([]graph.Graph, clen)
		for i := range prefix {
			prefix[i] = pool[rng.Intn(len(pool))]
		}
		for i := range cycle {
			cycle[i] = pool[rng.Intn(len(pool))]
		}
		return ma.MustGraphWord(prefix, cycle)
	}
	for iter := 0; iter < 120; iter++ {
		xa := []int{rng.Intn(2), rng.Intn(2), rng.Intn(2)}
		xb := []int{rng.Intn(2), rng.Intn(2), rng.Intn(2)}
		a := MustRun(xa, randWord())
		b := MustRun(xb, randWord())
		exact := AgreeLevels(a, b)
		const horizon = 40
		in := ptg.NewInterner()
		ra, rb := ptg.NewRun(xa), ptg.NewRun(xb)
		for tt := 0; tt < horizon; tt++ {
			ra = ra.Extend(a.Word.At(tt))
			rb = rb.Extend(b.Word.At(tt))
		}
		va := ptg.ComputeViews(in, ra)
		vb := ptg.ComputeViews(in, rb)
		for p := 0; p < 3; p++ {
			finite := ptg.AgreeLevel(va, vb, p)
			if exact[p] < 0 {
				if finite != horizon+1 {
					t.Fatalf("iter %d p=%d: exact says forever, finite level %d\n a=%v\n b=%v",
						iter, p+1, finite, a, b)
				}
			} else if exact[p] != finite {
				t.Fatalf("iter %d p=%d: exact %d vs finite %d\n a=%v\n b=%v",
					iter, p+1, exact[p], finite, a, b)
			}
		}
	}
}
