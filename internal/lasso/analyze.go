package lasso

import (
	"fmt"

	"topocon/internal/combi"
	"topocon/internal/ma"
	"topocon/internal/uf"
)

// Analysis is the exact topological structure of a finite message
// adversary {w_1, ..., w_k}: its runs (words × input assignments), the
// connected components of the space PS in the minimum topology, and the
// verdict of Corollary 5.6.
//
// Finite sets of sequences are compact, and in them two runs lie in one
// component iff they are linked by a chain of distance-0 pairs (isolated
// points are their own components), so the decomposition is exact — no
// horizon, no approximation.
type Analysis struct {
	// Runs are all runs of the space, ordered words-major.
	Runs []Run
	// Components lists run indices per component, each ascending.
	Components [][]int
	// CompOf maps run index to component index.
	CompOf []int
	// Mixed lists components containing differently-valent runs.
	Mixed []int
	// Solvable is the Corollary 5.6 verdict: true iff no mixed component.
	Solvable bool
	// BridgePairs are the non-trivial indistinguishability edges: pairs
	// (i,j) of runs with different input assignments at distance 0. The
	// chains that make a component mixed are composed of such bridges;
	// they are the finite-set shadow of the fair/unfair limit pairs of
	// Definition 5.16.
	BridgePairs [][2]int
}

// Analyze builds the exact analysis of the finite adversary given by the
// words over the input domain {0..inputDomain-1}.
//
//topocon:export
func Analyze(words []ma.GraphWord, inputDomain int) (*Analysis, error) {
	if len(words) == 0 {
		return nil, fmt.Errorf("lasso: no words to analyze")
	}
	n := words[0].N()
	for _, w := range words {
		if w.N() != n {
			return nil, fmt.Errorf("lasso: mixed node counts")
		}
	}
	if inputDomain < 1 {
		return nil, fmt.Errorf("lasso: input domain %d < 1", inputDomain)
	}
	a := &Analysis{}
	combi.Words(inputDomain, n, func(inputs []int) bool {
		for _, w := range words {
			a.Runs = append(a.Runs, MustRun(inputs, w))
		}
		return true
	})
	u := uf.New(len(a.Runs))
	for i := range a.Runs {
		for j := i + 1; j < len(a.Runs); j++ {
			if !DistanceZero(a.Runs[i], a.Runs[j]) {
				continue
			}
			u.Union(i, j)
			if !sameInputs(a.Runs[i].Inputs, a.Runs[j].Inputs) {
				a.BridgePairs = append(a.BridgePairs, [2]int{i, j})
			}
		}
	}
	a.Components = u.Groups()
	a.CompOf = make([]int, len(a.Runs))
	for ci, members := range a.Components {
		for _, i := range members {
			a.CompOf[i] = ci
		}
	}
	for ci, members := range a.Components {
		seen := -1
		mixed := false
		for _, i := range members {
			if v, ok := a.Runs[i].Valence(); ok {
				if seen >= 0 && v != seen {
					mixed = true
				}
				seen = v
			}
		}
		if mixed {
			a.Mixed = append(a.Mixed, ci)
		}
	}
	a.Solvable = len(a.Mixed) == 0
	return a, nil
}

func sameInputs(x, y []int) bool {
	for i := range x {
		if x[i] != y[i] {
			return false
		}
	}
	return true
}
