package baseline

import (
	"fmt"

	"topocon/internal/graph"
	"topocon/internal/ma"
)

// PumpCertificate is the second, self-similar form of bivalence proof: it
// captures impossibility arguments whose indistinguishability chains grow
// with the horizon (Santoro-Widmayer's lossy-link proof being the
// archetype), which no bounded-length chain can witness.
//
// The schema consists of two sustained agreement sets and two junction
// gadgets:
//
//   - an A-edge is an adjacent run pair with agreement set A whose both
//     endpoints play graph a forever: upd(a,a,A) = A keeps it alive;
//   - a B-edge similarly lives on graph b: upd(b,b,B) = B;
//   - a junction element, caught between an A-edge (demanding a) and a
//     B-edge (demanding b), splits into three copies playing a, c1, b. The
//     pre-existing agreement between copies is the full set, so the two
//     inserted edges get values upd(a,c1,full) = B and upd(c1,b,full) = A —
//     the alternation regenerates itself one level deeper. The symmetric
//     B|A junction uses c2.
//
// By induction every horizon admits a chain alternating A- and B-edges
// between the anchored valent runs: a mixed component at every resolution,
// hence (compact adversary, König) consensus is impossible.
type PumpCertificate struct {
	// A and B are the two sustained agreement sets.
	A, B uint64
	// GraphA sustains A-edges; GraphB sustains B-edges; Bridge1 resolves
	// A|B junctions and Bridge2 resolves B|A junctions.
	GraphA, GraphB, Bridge1, Bridge2 graph.Graph
	// AnchorInputs is the chain of input assignments whose consecutive
	// equal-coordinate sets alternate within {A, B} and whose endpoints
	// are differently-valent.
	AnchorInputs [][]int
	// AnchorWord is the agreement-set word of the anchor chain.
	AnchorWord []uint64
}

// String renders the certificate.
func (c *PumpCertificate) String() string {
	return fmt.Sprintf("alternating pump: A=%s via %v, B=%s via %v, bridges %v/%v, anchor of %d inputs",
		graph.FormatNodeSet(c.A), c.GraphA,
		graph.FormatNodeSet(c.B), c.GraphB,
		c.Bridge1, c.Bridge2, len(c.AnchorInputs))
}

// FindPumpCertificate searches the oblivious adversary for an
// alternating-pump impossibility schema over the given input domain.
func FindPumpCertificate(adv *ma.Oblivious, inputDomain int) (*PumpCertificate, bool) {
	n := adv.N()
	if n > 8 {
		return nil, false
	}
	full := graph.AllNodes(n)
	graphs := adv.Graphs()
	for a := uint64(1); a <= full; a++ {
		for b := uint64(1); b <= full; b++ {
			if a == b {
				continue
			}
			for _, ga := range graphs {
				if updateSet(ga, ga, a) != a {
					continue
				}
				for _, gb := range graphs {
					if updateSet(gb, gb, b) != b {
						continue
					}
					for _, c1 := range graphs {
						if updateSet(ga, c1, full) != b || updateSet(c1, gb, full) != a {
							continue
						}
						for _, c2 := range graphs {
							if updateSet(gb, c2, full) != a || updateSet(c2, ga, full) != b {
								continue
							}
							inputs, word, ok := findPumpAnchor(n, inputDomain, a, b)
							if !ok {
								continue
							}
							return &PumpCertificate{
								A: a, B: b,
								GraphA: ga, GraphB: gb,
								Bridge1: c1, Bridge2: c2,
								AnchorInputs: inputs,
								AnchorWord:   word,
							}, true
						}
					}
				}
			}
		}
	}
	return nil, false
}

// findPumpAnchor looks for a chain of input assignments whose consecutive
// equal-coordinate sets all equal A or B, connecting two differently-valent
// assignments. Chain length is bounded by the number of distinct vectors
// (revisiting a vector never helps).
func findPumpAnchor(n, inputDomain int, a, b uint64) ([][]int, []uint64, bool) {
	vectors := allVectors(n, inputDomain)
	var inputs [][]int
	var word []uint64
	used := make(map[int]bool, len(vectors))
	var dfs func(curIdx int) bool
	dfs = func(curIdx int) bool {
		cur := vectors[curIdx]
		if v, valent := valentValue(cur); valent && len(inputs) > 1 {
			if v0, _ := valentValue(inputs[0]); v0 != v {
				return true
			}
		}
		for nextIdx, next := range vectors {
			if used[nextIdx] {
				continue
			}
			eq := equalCoords(cur, next)
			if eq != a && eq != b {
				continue
			}
			used[nextIdx] = true
			inputs = append(inputs, next)
			word = append(word, eq)
			if dfs(nextIdx) {
				return true
			}
			used[nextIdx] = false
			inputs = inputs[:len(inputs)-1]
			word = word[:len(word)-1]
		}
		return false
	}
	for startIdx, start := range vectors {
		if _, valent := valentValue(start); !valent {
			continue
		}
		inputs = append(inputs[:0], start)
		word = word[:0]
		for k := range used {
			delete(used, k)
		}
		used[startIdx] = true
		if dfs(startIdx) {
			out := make([][]int, len(inputs))
			for i := range inputs {
				out[i] = append([]int(nil), inputs[i]...)
			}
			return out, append([]uint64(nil), word...), true
		}
	}
	return nil, nil, false
}
