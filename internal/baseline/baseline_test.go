package baseline

import (
	"testing"

	"topocon/internal/graph"
	"topocon/internal/ma"
)

// TestPumpCertificateLossyLink3 certifies the Santoro-Widmayer
// impossibility: the {<-,<->,->} lossy link admits the alternating-pump
// schema (its indistinguishability chains grow with the horizon, so no
// bounded chain certificate exists — see TestProveBivalentLossyLink3).
func TestPumpCertificateLossyLink3(t *testing.T) {
	cert, ok := FindPumpCertificate(ma.LossyLink3(), 2)
	if !ok {
		t.Fatal("no pump certificate found for lossy link {<-,<->,->}")
	}
	if cert.A == cert.B {
		t.Errorf("degenerate pump sets: %v", cert)
	}
	first, last := cert.AnchorInputs[0], cert.AnchorInputs[len(cert.AnchorInputs)-1]
	if first[0] != first[1] || last[0] != last[1] || first[0] == last[0] {
		t.Errorf("pump anchors not differently-valent: %v .. %v", first, last)
	}
	if cert.String() == "" {
		t.Error("empty certificate rendering")
	}
}

// TestProveBivalentLossyLink3 documents that the lossy link has no
// *bounded* bivalent chain — its chains must grow, which is exactly what
// the pump certificate captures.
func TestProveBivalentLossyLink3(t *testing.T) {
	if cert, ok := ProveBivalent(ma.LossyLink3(), 2, 4); ok {
		t.Fatalf("unexpected bounded chain certificate for {<-,<->,->}: %v", cert)
	}
}

// TestProveBivalentSilentGraph: any adversary containing the silent graph
// admits a bounded chain certificate (everyone plays the silent graph
// forever).
func TestProveBivalentSilentGraph(t *testing.T) {
	adversaries := []*ma.Oblivious{
		ma.MustOblivious("", graph.Neither),
		ma.MustOblivious("", graph.Neither, graph.Both),
		ma.MustOblivious("", graph.Neither, graph.Right),
		ma.Unrestricted(2),
	}
	for _, adv := range adversaries {
		cert, ok := ProveBivalent(adv, 2, 4)
		if !ok {
			t.Errorf("%s: no bounded chain certificate", adv.Name())
			continue
		}
		first, last := cert.InitialInputs[0], cert.InitialInputs[len(cert.InitialInputs)-1]
		if first[0] != first[1] || last[0] != last[1] || first[0] == last[0] {
			t.Errorf("%s: anchors not differently-valent: %v .. %v", adv.Name(), first, last)
		}
	}
}

// TestPumpCertificateSoundOnSolvable: no solvable n=2 oblivious adversary
// may receive a pump certificate.
func TestPumpCertificateSoundOnSolvable(t *testing.T) {
	solvable := []*ma.Oblivious{
		ma.MustOblivious("", graph.Both),
		ma.MustOblivious("", graph.Right),
		ma.MustOblivious("", graph.Left),
		ma.MustOblivious("", graph.Right, graph.Both),
		ma.MustOblivious("", graph.Left, graph.Both),
		ma.LossyLink2(),
	}
	for _, adv := range solvable {
		if cert, ok := FindPumpCertificate(adv, 2); ok {
			t.Errorf("%s: unexpected pump certificate %v", adv.Name(), cert)
		}
	}
}

// TestProveBivalentLossyLink2 must find no certificate: {<-,->} is
// solvable.
func TestProveBivalentLossyLink2(t *testing.T) {
	if cert, ok := ProveBivalent(ma.LossyLink2(), 2, 5); ok {
		t.Fatalf("unexpected certificate for solvable {<-,->}: %v", cert)
	}
}

// TestProveBivalentSoundnessOnSolvableSets: no oblivious n=2 adversary that
// separates at small horizon may receive a certificate.
func TestProveBivalentSoundnessOnSolvableSets(t *testing.T) {
	solvable := []*ma.Oblivious{
		ma.MustOblivious("", graph.Both),
		ma.MustOblivious("", graph.Right),
		ma.MustOblivious("", graph.Right, graph.Both),
		ma.LossyLink2(),
	}
	for _, adv := range solvable {
		if cert, ok := ProveBivalent(adv, 2, 4); ok {
			t.Errorf("%s: unexpected certificate %v", adv.Name(), cert)
		}
	}
}

// TestProveBivalentUnrestricted: the unrestricted n=2 adversary (which
// includes the silent graph) is impossible as well.
func TestProveBivalentUnrestricted(t *testing.T) {
	if _, ok := ProveBivalent(ma.Unrestricted(2), 2, 5); !ok {
		t.Error("no certificate for the unrestricted n=2 adversary")
	}
}

func TestUpdateSet(t *testing.T) {
	// In the lossy link: updating {1} with (→,→) keeps {1} (process 1
	// hears only itself under both), while (→,<->) yields {2}.
	if got := updateSet(graph.Right, graph.Right, 0b01); got != 0b01 {
		t.Errorf("updateSet({1},->,->) = %s, want {1}", graph.FormatNodeSet(got))
	}
	if got := updateSet(graph.Right, graph.Both, 0b11); got != 0b10 {
		t.Errorf("updateSet({1,2},->,<->) = %s, want {2}", graph.FormatNodeSet(got))
	}
	if got := updateSet(graph.Right, graph.Left, 0b11); got != 0 {
		t.Errorf("updateSet({1,2},->,<-) = %s, want empty", graph.FormatNodeSet(got))
	}
}

func TestAnalyzeHeardSet(t *testing.T) {
	// Lossy link {<-,->}: each process can be trapped (play the graph
	// that never delivers its message).
	for p := 0; p < 2; p++ {
		a := AnalyzeHeardSet(ma.LossyLink2(), p)
		if !a.CanTrap {
			t.Errorf("process %d must be trappable under {<-,->}", p+1)
		}
	}
	// Single graph <->: nobody can be trapped, broadcast in 1 round.
	adv := ma.MustOblivious("", graph.Both)
	for p := 0; p < 2; p++ {
		a := AnalyzeHeardSet(adv, p)
		if a.CanTrap {
			t.Errorf("process %d must not be trappable under {<->}", p+1)
		}
		if a.WorstBroadcastRounds != 1 {
			t.Errorf("process %d worst broadcast = %d, want 1", p+1, a.WorstBroadcastRounds)
		}
	}
}

func TestAnalyzeHeardSetDelays(t *testing.T) {
	// n=3 oblivious over {cycle}: worst-case broadcast is 2 rounds.
	adv := ma.MustOblivious("", graph.Cycle(3))
	for p := 0; p < 3; p++ {
		a := AnalyzeHeardSet(adv, p)
		if a.CanTrap || a.WorstBroadcastRounds != 2 {
			t.Errorf("cycle: process %d analysis %+v, want no trap, 2 rounds", p+1, a)
		}
	}
	// Two stars: adversary alternating can still not prevent broadcast of
	// the shared center, but leaves can be trapped.
	adv2 := ma.MustOblivious("", graph.Star(3, 0), graph.Star(3, 0).AddEdge(1, 2))
	a := AnalyzeHeardSet(adv2, 0)
	if a.CanTrap || a.WorstBroadcastRounds != 1 {
		t.Errorf("center analysis %+v, want no trap, 1 round", a)
	}
	if leaf := AnalyzeHeardSet(adv2, 2); !leaf.CanTrap {
		t.Errorf("leaf must be trappable: %+v", leaf)
	}
}

func TestGuaranteedBroadcasters(t *testing.T) {
	mask, worst := GuaranteedBroadcasters(ma.MustOblivious("", graph.Star(3, 1)))
	if mask != 1<<1 {
		t.Errorf("mask = %s, want {2}", graph.FormatNodeSet(mask))
	}
	if worst != 1 {
		t.Errorf("worst = %d, want 1", worst)
	}
	mask, _ = GuaranteedBroadcasters(ma.LossyLink2())
	if mask != 0 {
		t.Errorf("lossy link mask = %s, want empty", graph.FormatNodeSet(mask))
	}
}

func TestKernelSize(t *testing.T) {
	if got := KernelSize(ma.MustOblivious("", graph.Star(3, 0), graph.Cycle(3))); got != 1 {
		t.Errorf("KernelSize = %d, want 1 (star root)", got)
	}
	if got := KernelSize(ma.MustOblivious("", graph.New(3))); got != 3 {
		t.Errorf("KernelSize of empty graph = %d, want 3 (all singleton roots)", got)
	}
}

func TestBivalenceCertificateString(t *testing.T) {
	cert, ok := ProveBivalent(ma.MustOblivious("", graph.Neither), 2, 3)
	if !ok {
		t.Fatal("no certificate for the silent singleton")
	}
	s := cert.String()
	if s == "" || cert.Surviving == 0 {
		t.Errorf("degenerate rendering %q (surviving %d)", s, cert.Surviving)
	}
}
