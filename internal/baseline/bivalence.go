// Package baseline implements the classic combinatorial counterparts the
// paper compares against: automated bivalence proofs in the style of
// Santoro-Widmayer [21] / FLP [10] (Section 6.1), the heard-set broadcast
// automaton underlying oblivious broadcastability analysis, and flooding
// consensus baselines (package sim hosts the runnable algorithms).
package baseline

import (
	"fmt"
	"strings"

	"topocon/internal/graph"
	"topocon/internal/ma"
)

// BivalenceCertificate proves consensus impossibility for an oblivious
// adversary: a self-sustaining chain schema in the agreement-set
// abstraction.
//
// A chain at horizon t is a sequence of admissible runs r_0 .. r_k, all with
// t rounds, where consecutive runs are indistinguishable to some process,
// r_0 is v-valent and r_k is w-valent (v ≠ w). The only information about a
// pair of runs that matters for extending it by one round is its agreement
// set A = {q : V_q equal}: appending graphs g to the left run and h to the
// right run yields the new agreement set
//
//	A' = {p : In_p(g) = In_p(h) and In_p(g) ⊆ A}.
//
// A chain survives one round if its elements can pick graphs making every
// consecutive agreement set non-empty; elements may first be duplicated
// (subdivision), which inserts a full-set edge — this is how the classic
// proofs grow their chains. The certificate is an initial chain (over input
// assignments, whose agreement sets are the equal-coordinate sets) that
// lies in the greatest fixpoint of "has a surviving successor chain".
//
// Soundness: by induction on t, a certificate yields, for every horizon, a
// chain of admissible runs connecting differently-valent runs with
// consecutive indistinguishability — i.e. a mixed component at every
// resolution, the forever-bivalent run family of Section 6.1. For a compact
// adversary, König's lemma turns "no horizon separates" into "no algorithm
// decides all runs by any bounded round", so consensus is impossible
// (Corollary 5.6 / Theorem 5.4).
type BivalenceCertificate struct {
	// InitialInputs is the chain of input assignments anchoring the schema.
	InitialInputs [][]int
	// InitialWord is the corresponding agreement-set word.
	InitialWord []uint64
	// Surviving is the number of chain words in the greatest fixpoint.
	Surviving int
}

// String renders the certificate compactly.
func (c *BivalenceCertificate) String() string {
	parts := make([]string, len(c.InitialWord))
	for i, a := range c.InitialWord {
		parts[i] = graph.FormatNodeSet(a)
	}
	return fmt.Sprintf("bivalent chain of %d inputs, agreement word %s (surviving words: %d)",
		len(c.InitialInputs), strings.Join(parts, ","), c.Surviving)
}

// ProveBivalent searches for a bivalence certificate for the oblivious
// adversary over the given input domain, considering chain words of up to
// maxChainLen agreement sets. It returns (certificate, true) when consensus
// is certifiably impossible; (nil, false) means no certificate of that size
// exists (which does not by itself imply solvability).
//
//topocon:export
func ProveBivalent(adv *ma.Oblivious, inputDomain, maxChainLen int) (*BivalenceCertificate, bool) {
	if maxChainLen < 1 || adv.N() > 8 {
		// Agreement sets are encoded as single bytes in word keys.
		return nil, false
	}
	e := newChainEngine(adv, maxChainLen)
	e.computeSurvivors()
	if len(e.surviving) == 0 {
		return nil, false
	}
	inputs, word, ok := e.findAnchoredChain(inputDomain)
	if !ok {
		return nil, false
	}
	return &BivalenceCertificate{
		InitialInputs: inputs,
		InitialWord:   word,
		Surviving:     len(e.surviving),
	}, true
}

// chainEngine computes the greatest fixpoint of surviving chain words.
type chainEngine struct {
	n      int
	full   uint64
	maxLen int
	graphs []graph.Graph
	// update[g][h] maps an agreement set A to the successor agreement set;
	// precomputed as masks: upd(A) = {p : In_p(g)=In_p(h) ⊆ A}.
	surviving map[string]bool
}

func newChainEngine(adv *ma.Oblivious, maxLen int) *chainEngine {
	return &chainEngine{
		n:         adv.N(),
		full:      graph.AllNodes(adv.N()),
		maxLen:    maxLen,
		graphs:    adv.Graphs(),
		surviving: make(map[string]bool),
	}
}

// updateSet computes A' = {p : In_p(g) = In_p(h), In_p(g) ⊆ A}.
func updateSet(g, h graph.Graph, a uint64) uint64 {
	var out uint64
	for p := 0; p < g.N(); p++ {
		in := g.In(p)
		if in == h.In(p) && in&^a == 0 {
			out |= 1 << uint(p)
		}
	}
	return out
}

// computeSurvivors iterates S ← {w ∈ S : some successor of w is in S}
// starting from all non-empty-agreement words of length ≤ maxLen, until a
// fixpoint is reached.
func (e *chainEngine) computeSurvivors() {
	var words [][]uint64
	var gen func(prefix []uint64)
	gen = func(prefix []uint64) {
		if len(prefix) > 0 {
			words = append(words, append([]uint64(nil), prefix...))
		}
		if len(prefix) == e.maxLen {
			return
		}
		for a := uint64(1); a <= e.full; a++ {
			gen(append(prefix, a))
		}
	}
	gen(nil)
	for _, w := range words {
		e.surviving[wordKey(w)] = true
	}
	for {
		removed := 0
		for _, w := range words {
			k := wordKey(w)
			if !e.surviving[k] {
				continue
			}
			if !e.hasSurvivingSuccessor(w) {
				delete(e.surviving, k)
				removed++
			}
		}
		if removed == 0 {
			return
		}
	}
}

// hasSurvivingSuccessor reports whether some padded-and-extended version of
// w is currently surviving. Padding inserts full-set symbols (element
// duplication); extension assigns one adversary graph per element and
// updates every edge, requiring all results non-empty and the resulting
// word to be in the surviving set. The search is a DFS over (position in
// padded word, last element graph), with padding decided on the fly.
func (e *chainEngine) hasSurvivingSuccessor(w []uint64) bool {
	type state struct {
		edge   int // next edge of w to consume
		pads   int // padding symbols inserted so far
		lastG  int // index into e.graphs of the previous element's graph
		result []uint64
	}
	var dfs func(st state) bool
	dfs = func(st state) bool {
		if st.edge == len(w) {
			if len(st.result) >= 1 && e.surviving[wordKey(st.result)] {
				return true
			}
			// May still pad at the end.
		}
		if len(st.result) >= e.maxLen {
			return false
		}
		// Option 1: consume the next real edge of w.
		if st.edge < len(w) {
			a := w[st.edge]
			for gi := range e.graphs {
				a2 := updateSet(e.graphs[st.lastG], e.graphs[gi], a)
				if a2 == 0 {
					continue
				}
				if dfs(state{
					edge:   st.edge + 1,
					pads:   st.pads,
					lastG:  gi,
					result: append(st.result, a2),
				}) {
					return true
				}
			}
		}
		// Option 2: insert a padding edge (duplicate the current element).
		if st.pads < e.maxLen { // padding budget bounded by word capacity
			for gi := range e.graphs {
				a2 := updateSet(e.graphs[st.lastG], e.graphs[gi], e.full)
				if a2 == 0 {
					continue
				}
				if dfs(state{
					edge:   st.edge,
					pads:   st.pads + 1,
					lastG:  gi,
					result: append(st.result, a2),
				}) {
					return true
				}
			}
		}
		return false
	}
	// The first element's graph is free.
	for gi := range e.graphs {
		if dfs(state{edge: 0, lastG: gi}) {
			return true
		}
	}
	return false
}

// findAnchoredChain looks for a surviving initial word realized by a chain
// of input assignments from an all-v to an all-w vector (v ≠ w), where the
// edge between consecutive assignments is their equal-coordinate set.
func (e *chainEngine) findAnchoredChain(inputDomain int) ([][]int, []uint64, bool) {
	vectors := allVectors(e.n, inputDomain)
	var inputs [][]int
	var word []uint64
	var dfs func(cur []int) bool
	dfs = func(cur []int) bool {
		if v, valent := valentValue(cur); valent && len(inputs) > 1 {
			if v0, _ := valentValue(inputs[0]); v0 != v && e.surviving[wordKey(word)] {
				return true
			}
		}
		if len(word) == e.maxLen {
			return false
		}
		for _, next := range vectors {
			a := equalCoords(cur, next)
			if a == 0 {
				continue
			}
			inputs = append(inputs, next)
			word = append(word, a)
			if dfs(next) {
				return true
			}
			inputs = inputs[:len(inputs)-1]
			word = word[:len(word)-1]
		}
		return false
	}
	for _, start := range vectors {
		if _, valent := valentValue(start); !valent {
			continue
		}
		inputs = append(inputs[:0], start)
		word = word[:0]
		if dfs(start) {
			out := make([][]int, len(inputs))
			for i := range inputs {
				out[i] = append([]int(nil), inputs[i]...)
			}
			return out, append([]uint64(nil), word...), true
		}
	}
	return nil, nil, false
}

func wordKey(w []uint64) string {
	var sb strings.Builder
	sb.Grow(len(w))
	for _, a := range w {
		sb.WriteByte(byte(a))
	}
	return sb.String()
}

func allVectors(n, domain int) [][]int {
	total := 1
	for i := 0; i < n; i++ {
		total *= domain
	}
	out := make([][]int, 0, total)
	cur := make([]int, n)
	for i := 0; i < total; i++ {
		out = append(out, append([]int(nil), cur...))
		for j := n - 1; j >= 0; j-- {
			cur[j]++
			if cur[j] < domain {
				break
			}
			cur[j] = 0
		}
	}
	return out
}

func valentValue(x []int) (int, bool) {
	for _, v := range x[1:] {
		if v != x[0] {
			return 0, false
		}
	}
	return x[0], true
}

func equalCoords(x, y []int) uint64 {
	var a uint64
	for i := range x {
		if x[i] == y[i] {
			a |= 1 << uint(i)
		}
	}
	return a
}
