package baseline

import (
	"math/bits"

	"topocon/internal/graph"
	"topocon/internal/ma"
)

// HeardSetAnalysis is the exact broadcast automaton of an oblivious
// adversary for one source process p: states are the sets H of processes
// that have heard p; playing graph g moves H to Spread_g(H). H only grows,
// so the automaton is a finite monotone lattice walk.
type HeardSetAnalysis struct {
	// Source is the analysed process p.
	Source int
	// CanTrap reports whether the adversary can prevent p from ever
	// broadcasting: some reachable H ≠ [n] admits a graph with
	// Spread_g(H) = H.
	CanTrap bool
	// TrapSet is a witness trap (0 when CanTrap is false).
	TrapSet uint64
	// WorstBroadcastRounds is the largest number of rounds the adversary
	// can delay "everyone heard p" when it cannot prevent it (-1 when
	// CanTrap is true).
	WorstBroadcastRounds int
}

// AnalyzeHeardSet runs the broadcast automaton of the oblivious adversary
// for source p.
func AnalyzeHeardSet(adv *ma.Oblivious, p int) HeardSetAnalysis {
	n := adv.N()
	full := graph.AllNodes(n)
	out := HeardSetAnalysis{Source: p, WorstBroadcastRounds: -1}
	start := uint64(1) << uint(p)

	// BFS over reachable heard-sets, looking for a stationary H ≠ full.
	reachable := map[uint64]bool{start: true}
	queue := []uint64{start}
	for len(queue) > 0 {
		h := queue[0]
		queue = queue[1:]
		if h == full {
			continue
		}
		for _, g := range adv.Graphs() {
			next := g.Spread(h)
			if next == h {
				out.CanTrap = true
				out.TrapSet = h
			}
			if !reachable[next] {
				reachable[next] = true
				queue = append(queue, next)
			}
		}
	}
	if out.CanTrap {
		return out
	}
	// No trap: every walk strictly grows H until full; the worst-case
	// delay is the longest path in the DAG of reachable heard-sets, which
	// we compute by memoized depth search (delay(H) = 1 + max over g of
	// delay(Spread_g(H)), delay(full) = 0).
	memo := make(map[uint64]int, len(reachable))
	var delay func(h uint64) int
	delay = func(h uint64) int {
		if h == full {
			return 0
		}
		if d, ok := memo[h]; ok {
			return d
		}
		worst := 0
		for _, g := range adv.Graphs() {
			if d := delay(g.Spread(h)); d > worst {
				worst = d
			}
		}
		memo[h] = worst + 1
		return worst + 1
	}
	out.WorstBroadcastRounds = delay(start)
	return out
}

// GuaranteedBroadcasters returns the processes that broadcast in every
// infinite sequence of the oblivious adversary, together with the largest
// worst-case broadcast delay among them (0 if there are none).
func GuaranteedBroadcasters(adv *ma.Oblivious) (uint64, int) {
	var mask uint64
	worst := 0
	for p := 0; p < adv.N(); p++ {
		a := AnalyzeHeardSet(adv, p)
		if !a.CanTrap {
			mask |= 1 << uint(p)
			if a.WorstBroadcastRounds > worst {
				worst = a.WorstBroadcastRounds
			}
		}
	}
	return mask, worst
}

// KernelSize returns the minimum, over the adversary's graphs, of the
// number of processes in root components — a quick structural statistic
// used in sweep reports.
func KernelSize(adv *ma.Oblivious) int {
	best := adv.N() + 1
	for _, g := range adv.Graphs() {
		total := 0
		for _, c := range g.RootComponents() {
			total += bits.OnesCount64(c.Members)
		}
		if total < best {
			best = total
		}
	}
	return best
}
