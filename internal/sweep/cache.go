package sweep

import (
	"context"
	"errors"

	"sync"

	"topocon/internal/check"
	"topocon/internal/ma"
)

// Key identifies one unit of solvability work up to behavioural
// isomorphism: two cells with equal keys receive the same verdict, so the
// cache solves each key once.
//
// The contract (DESIGN.md §8.2):
//
//   - Fingerprint is ma.Fingerprint(adversary, depth) at depth =
//     resolved MaxHorizon. The analysis explores prefixes of at most
//     MaxHorizon rounds, and the fingerprint distinguishes exactly the
//     behaviours that differ within its depth, so behaviours merged by the
//     hash are indistinguishable to every analysis route at these options.
//   - Options is the *resolved* option set (check.Options.Resolved, with
//     the adaptive CertChainLen default additionally resolved against the
//     adversary's process count): a zero field and its effective default
//     must collide.
//   - CertEligible records whether the adversary is an *ma.Oblivious: the
//     impossibility-certificate searches of the compact route only run for
//     that concrete type, so a behaviourally isomorphic adversary of a
//     different construction can legitimately end in VerdictUnknown where
//     the oblivious original proves VerdictImpossible. (For oblivious
//     adversaries themselves the searches depend only on the graph set,
//     which any positive-depth fingerprint captures — the automaton has one
//     state.)
type Key struct {
	Fingerprint  string
	Options      check.Options
	CertEligible bool
}

// KeyFor computes the cache key of a scenario's work unit.
func KeyFor(adv ma.Adversary, opts check.Options) (Key, error) {
	resolved, err := opts.Resolved()
	if err != nil {
		return Key{}, err
	}
	// The chain-length default is adaptive in the process count; resolve it
	// too, so a zero field and its effective value share a key.
	resolved.CertChainLen = resolved.EffectiveCertChainLen(adv.N())
	_, oblivious := adv.(*ma.Oblivious)
	return Key{
		Fingerprint:  ma.Fingerprint(adv, resolved.MaxHorizon),
		Options:      resolved,
		CertEligible: oblivious,
	}, nil
}

// Outcome is the cached result of one solved key: the verdict plus the
// exploration statistics of the session that computed it.
type Outcome struct {
	Verdict           check.Verdict
	Exact             bool
	SeparationHorizon int
	Horizon           int
	// Runs is the size of the deepest analysed prefix space.
	Runs int
	// Notes carries analysis anomalies surfaced by the checker.
	Notes []string
}

// cacheEntry is one in-flight or completed key. done is closed when the
// leader finishes; removed marks an entry retracted because the leader was
// cancelled (waiters retry under their own contexts).
type cacheEntry struct {
	done    chan struct{}
	removed bool
	outcome Outcome
	err     error
}

// Cache is a concurrency-safe verdict cache with in-flight deduplication:
// the first requester of a key solves it while concurrent requesters of the
// same key wait for the result. Deterministic solver errors are cached like
// outcomes; context errors (cancellation, per-cell timeout) retract the
// entry so a later request retries under its own context.
type Cache struct {
	mu sync.Mutex
	m  map[Key]*cacheEntry
}

// NewCache returns an empty verdict cache.
func NewCache() *Cache { return &Cache{m: make(map[Key]*cacheEntry)} }

// Len returns the number of solved (or deterministically failed) keys.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Do returns the outcome for the key, invoking solve at most once per key
// across all concurrent callers. hit reports whether the result came from
// the cache (including waiting on another caller's in-flight computation)
// rather than from this call's own solve.
func (c *Cache) Do(ctx context.Context, key Key, solve func() (Outcome, error)) (out Outcome, hit bool, err error) {
	for {
		c.mu.Lock()
		if e, ok := c.m[key]; ok {
			c.mu.Unlock()
			select {
			case <-e.done:
			case <-ctx.Done():
				return Outcome{}, false, ctx.Err()
			}
			if e.removed {
				continue // leader was cancelled; retry under our context
			}
			return e.outcome, true, e.err
		}
		e := &cacheEntry{done: make(chan struct{})}
		c.m[key] = e
		c.mu.Unlock()

		e.outcome, e.err = solve()
		if e.err != nil && (errors.Is(e.err, context.Canceled) || errors.Is(e.err, context.DeadlineExceeded)) {
			// A context error is a property of this caller's budget, not of
			// the key: retract the entry so the key stays solvable.
			c.mu.Lock()
			e.removed = true
			delete(c.m, key)
			c.mu.Unlock()
		}
		close(e.done)
		return e.outcome, false, e.err
	}
}
