package sweep

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"topocon/internal/check"
	"topocon/internal/ma"
)

// Key identifies one unit of solvability work up to behavioural
// isomorphism: two cells with equal keys receive the same verdict, so the
// cache solves each key once.
//
// The contract (DESIGN.md §7.2):
//
//   - Fingerprint is ma.Fingerprint(adversary, depth) at depth =
//     resolved MaxHorizon. The analysis explores prefixes of at most
//     MaxHorizon rounds, and the fingerprint distinguishes exactly the
//     behaviours that differ within its depth, so behaviours merged by the
//     hash are indistinguishable to every analysis route at these options.
//   - Options is the *resolved* option set (check.Options.Resolved, with
//     the adaptive CertChainLen default additionally resolved against the
//     adversary's process count): a zero field and its effective default
//     must collide.
//   - GroupFingerprint identifies the automorphism group the session
//     quotients by (DESIGN.md §13): ma.Automorphisms(adv).Fingerprint(),
//     or the trivial group's under Options.NoSymmetry. Verdicts are
//     quotient-invariant, but the group detection itself is budgeted
//     (Automorphisms falls back to trivial), so two builds of this binary
//     could in principle detect different groups for one behaviour; keying
//     on the group keeps a cached outcome attributable to the exact
//     configuration that produced it.
//   - CertEligible records whether the adversary normalizes to an
//     *ma.Oblivious (ma.Normalize): the impossibility-certificate searches
//     of the compact route run exactly for adversaries the checker
//     recognises as oblivious after normalization, so spellings such as
//     Intersect(a, Unrestricted) share the key — and the verdict — of
//     their normal form a. (For oblivious adversaries themselves the
//     searches depend only on the graph set, which any positive-depth
//     fingerprint captures — the automaton has one state.)
//
// Keys have an exported, versioned canonical byte encoding (String /
// ParseKey): the identity persistent stores address records by.
type Key struct {
	Fingerprint      string
	GroupFingerprint string
	Options          check.Options
	CertEligible     bool
}

// KeyFor computes the cache key of a scenario's work unit.
func KeyFor(adv ma.Adversary, opts check.Options) (Key, error) {
	resolved, err := opts.Resolved()
	if err != nil {
		return Key{}, err
	}
	// The chain-length default is adaptive in the process count; resolve it
	// too, so a zero field and its effective value share a key.
	resolved.CertChainLen = resolved.EffectiveCertChainLen(adv.N())
	group := ma.TrivialGroup(adv.N())
	if !resolved.NoSymmetry {
		group = ma.Automorphisms(adv)
	}
	_, oblivious := ma.Normalize(adv).(*ma.Oblivious)
	return Key{
		Fingerprint:      ma.Fingerprint(adv, resolved.MaxHorizon),
		GroupFingerprint: group.Fingerprint(),
		Options:          resolved,
		CertEligible:     oblivious,
	}, nil
}

// Outcome is the cached result of one solved key: the verdict plus the
// exploration statistics of the session that computed it. Outcomes are
// persisted by verdict stores; the JSON field names are part of the store
// record format (bump store record versions when changing them).
type Outcome struct {
	Verdict           check.Verdict `json:"verdict"`
	Exact             bool          `json:"exact"`
	SeparationHorizon int           `json:"separationHorizon"`
	Horizon           int           `json:"horizon"`
	// Runs is the size of the deepest analysed prefix space.
	Runs int `json:"runs"`
	// Notes carries analysis anomalies surfaced by the checker.
	Notes []string `json:"notes,omitempty"`
}

// HitTier attributes where a cache answer came from.
type HitTier int

const (
	// TierNone: not a hit — this caller solved the key itself.
	TierNone HitTier = iota
	// TierMemory: the key was solved earlier in this process (including
	// waiting on a concurrent in-flight solve).
	TierMemory
	// TierDisk: the key was served by the persistent backing tier — either
	// directly or from a memory entry the tier originally populated, so
	// disk attribution reflects "this verdict came from the persistent
	// corpus, not from any session of this process".
	TierDisk
)

// String renders the tier ("" for TierNone, matching report omission).
func (t HitTier) String() string {
	switch t {
	case TierMemory:
		return "memory"
	case TierDisk:
		return "disk"
	default:
		return ""
	}
}

// Tier is a backing verdict tier under the in-memory cache — typically a
// disk store (internal/store). Implementations must be safe for concurrent
// use. Get misses must be cheap; Put failures are surfaced in CacheStats
// but never fail the solve (the memory tier still holds the outcome).
type Tier interface {
	Get(Key) (Outcome, bool)
	Put(Key, Outcome) error
}

// CacheStats counts a cache's traffic by tier.
type CacheStats struct {
	// MemoryHits are answers served from keys solved in this process;
	// DiskHits are answers whose outcome originated in the backing tier;
	// Computes are leader solves (cache misses that ran an Analyzer
	// session or failed deterministically).
	MemoryHits int64 `json:"memoryHits"`
	DiskHits   int64 `json:"diskHits"`
	Computes   int64 `json:"computes"`
	// TierPutErrors counts write-behind failures of the backing tier.
	TierPutErrors int64 `json:"tierPutErrors"`
}

// cacheEntry is one in-flight or completed key. done is closed when the
// leader finishes; removed marks an entry retracted because the leader was
// cancelled (waiters retry under their own contexts). origin records which
// tier produced the outcome (TierMemory: computed here; TierDisk: loaded
// from the backing tier) and attributes later hits of the entry.
type cacheEntry struct {
	done    chan struct{}
	removed bool
	origin  HitTier
	outcome Outcome
	err     error
}

// Cache is a concurrency-safe verdict cache with in-flight deduplication
// and an optional persistent backing tier, read in the order
// memory → disk → compute. The first requester of a key resolves it
// (tier probe, then solve) while concurrent requesters of the same key
// wait for the result. Computed outcomes are written behind to the tier;
// deterministic solver errors are cached in memory only; context errors
// (cancellation, per-cell timeout) retract the entry so a later request
// retries under its own context.
type Cache struct {
	mu   sync.Mutex
	m    map[Key]*cacheEntry
	tier Tier

	memHits     atomic.Int64
	diskHits    atomic.Int64
	computes    atomic.Int64
	tierPutErrs atomic.Int64
}

// NewCache returns an empty memory-only verdict cache.
func NewCache() *Cache { return &Cache{m: make(map[Key]*cacheEntry)} }

// NewTieredCache returns an empty verdict cache backed by the tier (nil
// behaves like NewCache).
//
//topocon:export
func NewTieredCache(tier Tier) *Cache {
	c := NewCache()
	c.tier = tier
	return c
}

// Len returns the number of memory-resident solved (or deterministically
// failed) keys.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Stats returns the cache's tier-attributed traffic counters.
func (c *Cache) Stats() CacheStats {
	return CacheStats{
		MemoryHits:    c.memHits.Load(),
		DiskHits:      c.diskHits.Load(),
		Computes:      c.computes.Load(),
		TierPutErrors: c.tierPutErrs.Load(),
	}
}

// Lookup reports the key's outcome if it is already available in memory or
// in the backing tier, without solving and without waiting on an in-flight
// solve. A tier answer is promoted into memory. The returned tier is the
// outcome's origin (TierMemory / TierDisk); deterministically failed keys
// report no outcome.
func (c *Cache) Lookup(key Key) (Outcome, HitTier, bool) {
	c.mu.Lock()
	if e, ok := c.m[key]; ok {
		select {
		case <-e.done:
			c.mu.Unlock()
			if e.err != nil {
				return Outcome{}, TierNone, false
			}
			return e.outcome, e.origin, true
		default:
			c.mu.Unlock()
			return Outcome{}, TierNone, false
		}
	}
	c.mu.Unlock()
	if c.tier == nil {
		return Outcome{}, TierNone, false
	}
	out, ok := c.tier.Get(key)
	if !ok {
		return Outcome{}, TierNone, false
	}
	c.promote(key, out)
	return out, TierDisk, true
}

// promote installs a tier-served outcome as a completed memory entry,
// leaving any concurrently-installed entry alone.
func (c *Cache) promote(key Key, out Outcome) {
	e := &cacheEntry{done: make(chan struct{}), origin: TierDisk, outcome: out}
	close(e.done)
	c.mu.Lock()
	if _, ok := c.m[key]; !ok {
		c.m[key] = e
	}
	c.mu.Unlock()
}

// Do returns the outcome for the key, resolving it at most once per key
// across all concurrent callers: a memory hit is served immediately, a
// backing-tier hit is promoted into memory, and only then does the caller
// solve. The returned tier attributes the answer's origin — TierMemory or
// TierDisk for hits, TierNone when this call's own solve produced it.
func (c *Cache) Do(ctx context.Context, key Key, solve func() (Outcome, error)) (out Outcome, tier HitTier, err error) {
	for {
		c.mu.Lock()
		if e, ok := c.m[key]; ok {
			c.mu.Unlock()
			select {
			case <-e.done:
			case <-ctx.Done():
				return Outcome{}, TierNone, ctx.Err()
			}
			if e.removed {
				continue // leader was cancelled; retry under our context
			}
			c.countHit(e.origin)
			return e.outcome, e.origin, e.err
		}
		e := &cacheEntry{done: make(chan struct{}), origin: TierMemory}
		c.m[key] = e
		c.mu.Unlock()

		// Leader path: probe the backing tier before computing.
		if c.tier != nil {
			if cached, ok := c.tier.Get(key); ok {
				e.origin = TierDisk
				e.outcome = cached
				c.diskHits.Add(1)
				close(e.done)
				return e.outcome, TierDisk, nil
			}
		}

		e.outcome, e.err = solve()
		if e.err != nil && (errors.Is(e.err, context.Canceled) || errors.Is(e.err, context.DeadlineExceeded)) {
			// A context error is a property of this caller's budget, not of
			// the key: retract the entry so the key stays solvable.
			c.mu.Lock()
			e.removed = true
			delete(c.m, key)
			c.mu.Unlock()
			close(e.done)
			return e.outcome, TierNone, e.err
		}
		c.computes.Add(1)
		close(e.done)
		// Write-behind: persist successful outcomes after publishing the
		// memory entry, so waiters are never blocked on the disk. Failures
		// are counted, not fatal — the memory tier still serves the key.
		if e.err == nil && c.tier != nil {
			if perr := c.tier.Put(key, e.outcome); perr != nil {
				c.tierPutErrs.Add(1)
			}
		}
		return e.outcome, TierNone, e.err
	}
}

func (c *Cache) countHit(origin HitTier) {
	if origin == TierDisk {
		c.diskHits.Add(1)
	} else {
		c.memHits.Add(1)
	}
}
