// Package sweep is the batch evaluation engine: it expands a parameterized
// scenario template (internal/scenario) into its concrete grid, runs the
// cells as Analyzer sessions over a bounded worker pool, and dedupes
// behaviourally isomorphic cells through a fingerprint-keyed verdict cache
// — parameterized families produce such cells constantly (saturating loss
// budgets, windows past the horizon, symmetric graph relabelings), and the
// cache turns each class into one solve plus cheap hits.
//
// The cache reads through an optional persistent tier (memory → disk →
// compute; see Cache and internal/store), so verdicts survive processes
// and accumulate across runs — the substrate of both `topocheck -sweep
// -cache-dir` and the topoconsvc daemon.
//
// Results land in a structured Report: per-cell verdict, separation
// horizon, runs explored, wall time and cache-tier attribution, plus
// grid-level summary statistics; the report marshals to JSON and renders
// as a human table.
package sweep

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"topocon/internal/check"
	"topocon/internal/ckpt"
	"topocon/internal/scenario"
)

// Cell statuses in a report.
const (
	// StatusDone: the cell was analysed to a verdict.
	StatusDone = "done"
	// StatusError: the cell failed (configuration error, per-cell timeout).
	StatusError = "error"
	// StatusCancelled: the sweep was cancelled before the cell ran.
	StatusCancelled = "cancelled"
)

// Config tunes a sweep run. The zero value runs sequentially with no
// per-cell timeout.
type Config struct {
	// Workers bounds the number of concurrently running cells (≤ 0: 1).
	Workers int
	// CellParallelism is each cell's Analyzer worker-pool size (≤ 0: 1).
	// It does not enter the cache key: parallelism never changes results.
	CellParallelism int
	// CellTimeout bounds one cell's analysis wall time (0: unbounded). A
	// timed-out cell reports StatusError; its key is not cached, so the
	// timeout of one cell does not poison later isomorphic cells.
	CellTimeout time.Duration
	// Progress, when set, is invoked with each finished cell's result, in
	// completion order, serialized by the engine.
	Progress func(CellResult)
	// CellProgress, when set, receives per-horizon progress of every cell
	// this run actually solves (cache misses), keyed by the cell's name.
	// Calls are serialized by the engine together with Progress. Cache hits
	// produce no horizon progress — their sessions never run.
	CellProgress func(cell string, rep check.HorizonReport)
	// OnAnalyzerBuilt, when set, observes every Analyzer construction this
	// run performs (i.e. every cache miss actually solved), keyed by
	// fingerprint. The service's metrics and the race-checked dedup tests
	// count constructions through this seam.
	OnAnalyzerBuilt func(fingerprint string)
	// Cache, when set, is shared with (and reused across) other sweeps;
	// nil runs with a fresh per-sweep cache. Build it with NewTieredCache
	// to back it with a persistent verdict store.
	Cache *Cache
	// Slots, when non-nil, is a shared session-pool semaphore: every cell
	// acquires a slot before running and releases it afterwards, so one
	// bounded pool can span many concurrent sweeps (the daemon's global
	// session pool). Its capacity, not Workers, then bounds concurrency.
	Slots chan struct{}
	// CheckpointDir, when set, makes every solved cell checkpointable: the
	// cell runs out-of-core under a pager (hot-set budget PagerHotBytes)
	// rooted in its own content-addressed subdirectory
	// (sha256 of the cache key), checkpoints every CheckpointEvery horizons
	// (default 1), resumes from a valid checkpoint left by a killed run,
	// and removes its directory once the verdict is in. Cache hits never
	// touch checkpoints — their sessions never run.
	CheckpointDir string
	// CheckpointEvery is the per-cell checkpoint cadence in horizons
	// (≤ 0: 1). Only meaningful with CheckpointDir.
	CheckpointEvery int
	// PagerHotBytes is each checkpointed cell's pager hot-set budget in
	// bytes (≤ 0: unlimited). Only meaningful with CheckpointDir.
	PagerHotBytes int64
	// NoSymmetry forces check.Options.NoSymmetry on every cell: sessions
	// analyse the full prefix space instead of the automorphism quotient
	// (DESIGN.md §13). The option enters each cell's cache key, so
	// quotiented and full runs of the same grid never share records —
	// verdicts are identical either way, but run-time statistics differ.
	// A differential-testing override (CI compares the two sweeps).
	NoSymmetry bool
}

// Run expands the template and analyses its grid under the config. On
// cancellation it returns the partial report together with the context
// error: finished cells keep their results and unstarted cells report
// StatusCancelled, so a cancelled sweep still yields a well-formed report.
//
//topocon:export
func Run(ctx context.Context, tpl *scenario.Template, cfg Config) (*Report, error) {
	cells, err := tpl.Expand()
	if err != nil {
		return nil, err
	}
	report := &Report{
		Template: tpl.Name,
		Params:   tpl.Params,
		Workers:  workers(cfg),
		Cells:    make([]CellResult, len(cells)),
	}
	runGrid(ctx, cells, cfg, report)
	return report, ctx.Err()
}

// RunScenario analyses one concrete (non-template) scenario through the
// same engine as a single-cell grid: the cell goes through the config's
// cache, session-pool slot, timeout and progress machinery exactly like a
// template cell, so daemons and CLIs can serve both document kinds with
// one code path and one shared verdict corpus.
//
//topocon:export
func RunScenario(ctx context.Context, sc *scenario.Scenario, cfg Config) (*Report, error) {
	report := &Report{
		Template: sc.Name,
		Workers:  workers(cfg),
		Cells:    make([]CellResult, 1),
	}
	runGrid(ctx, []scenario.Cell{{Scenario: sc}}, cfg, report)
	return report, ctx.Err()
}

// runGrid drives the cells and fills the report's timing and summary.
func runGrid(ctx context.Context, cells []scenario.Cell, cfg Config, report *Report) {
	cache := cfg.Cache
	if cache == nil {
		cache = NewCache()
	}
	start := time.Now()
	paging := runCells(ctx, cells, cfg, cache, report.Cells)
	report.WallMillis = millis(time.Since(start))
	report.Summary = summarize(report.Cells, cache)
	report.Summary.Paging = paging
}

func workers(cfg Config) int {
	if cfg.Workers <= 0 {
		return 1
	}
	return cfg.Workers
}

// sweepState carries the per-run shared pieces.
type sweepState struct {
	cfg        Config
	cache      *Cache
	progressMu sync.Mutex

	// pagingMu guards the run's aggregated paging/checkpoint gauges.
	pagingMu sync.Mutex
	paging   PagingSummary
}

// recordCkptInfo folds one solved cell's checkpoint/paging traffic into the
// run totals.
func (st *sweepState) recordCkptInfo(info *ckpt.Info) {
	if info == nil {
		return
	}
	st.pagingMu.Lock()
	st.paging.PagesSpilled += info.PagerStats.PagesSpilled
	st.paging.PagesFaulted += info.PagerStats.PagesFaulted
	if info.PagerStats.PeakHotBytes > st.paging.HotBytes {
		st.paging.HotBytes = info.PagerStats.PeakHotBytes
	}
	st.paging.CheckpointsWritten += int64(info.Written)
	if info.Resumed {
		st.paging.CellsResumed++
	}
	st.pagingMu.Unlock()
}

// horizonProgress relays one solving cell's per-horizon report, serialized
// with the cell-completion callback.
func (st *sweepState) horizonProgress(cell string, rep check.HorizonReport) {
	if st.cfg.CellProgress == nil {
		return
	}
	st.progressMu.Lock()
	st.cfg.CellProgress(cell, rep)
	st.progressMu.Unlock()
}

// runCells drives the worker pool over the grid, writing each cell's result
// into its own slot of results (grid order), and returns the run's
// aggregated paging/checkpoint gauges.
func runCells(ctx context.Context, cells []scenario.Cell, cfg Config, cache *Cache, results []CellResult) PagingSummary {
	st := &sweepState{cfg: cfg, cache: cache}
	// Pre-mark every cell cancelled; workers overwrite the slots they run.
	for i, cell := range cells {
		results[i] = CellResult{
			Name:              cell.Scenario.Name,
			Bindings:          cell.Bindings,
			Status:            StatusCancelled,
			SeparationHorizon: -1,
		}
	}
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers(cfg); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				if cfg.Slots != nil {
					// The shared session pool bounds concurrency across
					// sweeps; a cancellation while queued leaves the cell's
					// pre-marked cancelled result in place.
					select {
					case cfg.Slots <- struct{}{}:
					case <-ctx.Done():
						continue
					}
				}
				res := st.runCell(ctx, cells[i])
				if cfg.Slots != nil {
					<-cfg.Slots
				}
				results[i] = res
				if cfg.Progress != nil {
					st.progressMu.Lock()
					cfg.Progress(results[i])
					st.progressMu.Unlock()
				}
			}
		}()
	}
feed:
	for i := range cells {
		select {
		case work <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(work)
	wg.Wait()
	return st.paging
}

// runCell analyses one grid cell through the verdict cache.
func (st *sweepState) runCell(ctx context.Context, cell scenario.Cell) CellResult {
	sc := cell.Scenario
	res := CellResult{
		Name:              sc.Name,
		Bindings:          cell.Bindings,
		Status:            StatusDone,
		SeparationHorizon: -1,
	}
	if sc.Expect != 0 {
		res.Expect = sc.Expect.String()
	}
	if err := ctx.Err(); err != nil {
		res.Status = StatusCancelled
		return res
	}
	start := time.Now()
	if st.cfg.NoSymmetry {
		// Copy-on-override: cells share the expanded template's Scenario
		// values; never mutate them in place.
		override := *sc
		override.Options.NoSymmetry = true
		sc = &override
	}
	key, err := KeyFor(sc.Adversary, sc.Options)
	if err != nil {
		res.Status = StatusError
		res.Err = err.Error()
		return res
	}
	res.Fingerprint = key.Fingerprint
	cellCtx := ctx
	if st.cfg.CellTimeout > 0 {
		var cancel context.CancelFunc
		cellCtx, cancel = context.WithTimeout(ctx, st.cfg.CellTimeout)
		defer cancel()
	}
	var ck *ckpt.Info
	out, tier, err := st.cache.Do(cellCtx, key, func() (Outcome, error) {
		o, info, serr := st.solveCell(cellCtx, sc, key)
		ck = info
		return o, serr
	})
	res.WallMillis = millis(time.Since(start))
	res.CacheHit = tier != TierNone
	res.CacheTier = tier.String()
	if ck != nil {
		res.Resumed = ck.Resumed
		st.recordCkptInfo(ck)
	}
	switch {
	case err == nil:
		res.Verdict = out.Verdict.String()
		res.Exact = out.Exact
		res.SeparationHorizon = out.SeparationHorizon
		res.Horizon = out.Horizon
		res.Runs = out.Runs
		res.Notes = out.Notes
		if res.Expect != "" {
			match := res.Verdict == res.Expect
			res.Match = &match
		}
	case errors.Is(err, context.Canceled) && ctx.Err() != nil:
		// The sweep itself was cancelled (not just this cell's budget).
		res.Status = StatusCancelled
	case errors.Is(err, context.DeadlineExceeded):
		res.Status = StatusError
		res.Err = fmt.Sprintf("cell timeout after %v", st.cfg.CellTimeout)
	default:
		// A deterministic solver error: classify by the error itself, not
		// by cellCtx state — a deadline that happens to elapse during a
		// failing solve must not masquerade as a timeout (the error is
		// cached, and later isomorphic cells would tell a different story).
		res.Status = StatusError
		res.Err = err.Error()
	}
	return res
}

// solveCell is the cache-miss path: one full Analyzer session — plain and
// in-memory by default, out-of-core with checkpoint/resume when the config
// names a CheckpointDir (then the returned ckpt.Info carries the cell's
// paging and resume traffic).
func (st *sweepState) solveCell(ctx context.Context, sc *scenario.Scenario, key Key) (Outcome, *ckpt.Info, error) {
	parallelism := st.cfg.CellParallelism
	if parallelism <= 0 {
		parallelism = 1
	}
	runs := 0
	onHorizon := func(r check.HorizonReport) {
		runs = r.Runs
		st.horizonProgress(sc.Name, r)
	}
	if st.cfg.OnAnalyzerBuilt != nil {
		st.cfg.OnAnalyzerBuilt(key.Fingerprint)
	}
	if st.cfg.CheckpointDir != "" {
		res, info, err := ckpt.RunCheck(ctx, sc.Adversary, ckpt.Config{
			Dir:       filepath.Join(st.cfg.CheckpointDir, cellDirName(key)),
			HotBytes:  st.cfg.PagerHotBytes,
			Every:     st.cfg.CheckpointEvery,
			OnHorizon: onHorizon,
		}, sc.Options, parallelism)
		if err != nil {
			return Outcome{}, info, err
		}
		if runs == 0 {
			// A session resumed at its deepest horizon analyses no further
			// ones, so the progress hook never fires; the restored chain
			// still knows its size.
			runs = info.Runs
		}
		return outcomeOf(res, runs), info, nil
	}
	an, err := check.NewAnalyzer(sc.Adversary,
		check.WithOptions(sc.Options),
		check.WithParallelism(parallelism),
		check.WithProgress(onHorizon))
	if err != nil {
		return Outcome{}, nil, err
	}
	res, err := an.Check(ctx)
	if err != nil {
		return Outcome{}, nil, err
	}
	return outcomeOf(res, runs), nil, nil
}

func outcomeOf(res *check.Result, runs int) Outcome {
	return Outcome{
		Verdict:           res.Verdict,
		Exact:             res.Exact,
		SeparationHorizon: res.SeparationHorizon,
		Horizon:           res.Horizon,
		Runs:              runs,
		Notes:             res.Notes,
	}
}

// cellDirName is a cell's checkpoint subdirectory: the content address of
// its cache key, so retries and resumed daemons land in the same place and
// distinct cells never collide.
func cellDirName(key Key) string {
	sum := sha256.Sum256([]byte(key.String()))
	return hex.EncodeToString(sum[:])
}

// CellDir is the exported content address of a cell's key — the
// checkpoint subdirectory name and the basename lease/verdict records
// derive from. Coordinators use it to locate a dead worker's checkpoint
// for adoption.
//
//topocon:export
func CellDir(key Key) string { return cellDirName(key) }

func millis(d time.Duration) float64 {
	return float64(d.Microseconds()) / 1000
}
