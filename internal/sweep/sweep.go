// Package sweep is the batch evaluation engine: it expands a parameterized
// scenario template (internal/scenario) into its concrete grid, runs the
// cells as Analyzer sessions over a bounded worker pool, and dedupes
// behaviourally isomorphic cells through a fingerprint-keyed verdict cache
// — parameterized families produce such cells constantly (saturating loss
// budgets, windows past the horizon, symmetric graph relabelings), and the
// cache turns each class into one solve plus cheap hits.
//
// Results land in a structured Report: per-cell verdict, separation
// horizon, runs explored, wall time and cache attribution, plus grid-level
// summary statistics; the report marshals to JSON and renders as a human
// table.
package sweep

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"topocon/internal/check"
	"topocon/internal/scenario"
)

// Cell statuses in a report.
const (
	// StatusDone: the cell was analysed to a verdict.
	StatusDone = "done"
	// StatusError: the cell failed (configuration error, per-cell timeout).
	StatusError = "error"
	// StatusCancelled: the sweep was cancelled before the cell ran.
	StatusCancelled = "cancelled"
)

// Config tunes a sweep run. The zero value runs sequentially with no
// per-cell timeout.
type Config struct {
	// Workers bounds the number of concurrently running cells (≤ 0: 1).
	Workers int
	// CellParallelism is each cell's Analyzer worker-pool size (≤ 0: 1).
	// It does not enter the cache key: parallelism never changes results.
	CellParallelism int
	// CellTimeout bounds one cell's analysis wall time (0: unbounded). A
	// timed-out cell reports StatusError; its key is not cached, so the
	// timeout of one cell does not poison later isomorphic cells.
	CellTimeout time.Duration
	// Progress, when set, is invoked with each finished cell's result, in
	// completion order, serialized by the engine.
	Progress func(CellResult)
	// Cache, when set, is shared with (and reused across) other sweeps;
	// nil runs with a fresh per-sweep cache.
	Cache *Cache
}

// analyzerBuilt is a test seam: when non-nil it observes every Analyzer
// construction the engine performs (i.e. every cache miss actually solved),
// keyed by fingerprint. The concurrency tests count constructions per key.
var analyzerBuilt func(fingerprint string)

// Run expands the template and analyses its grid under the config. On
// cancellation it returns the partial report together with the context
// error: finished cells keep their results and unstarted cells report
// StatusCancelled, so a cancelled sweep still yields a well-formed report.
func Run(ctx context.Context, tpl *scenario.Template, cfg Config) (*Report, error) {
	cells, err := tpl.Expand()
	if err != nil {
		return nil, err
	}
	report := &Report{
		Template: tpl.Name,
		Params:   tpl.Params,
		Workers:  workers(cfg),
		Cells:    make([]CellResult, len(cells)),
	}
	cache := cfg.Cache
	if cache == nil {
		cache = NewCache()
	}
	start := time.Now()
	runCells(ctx, cells, cfg, cache, report.Cells)
	report.WallMillis = millis(time.Since(start))
	report.Summary = summarize(report.Cells, cache)
	return report, ctx.Err()
}

func workers(cfg Config) int {
	if cfg.Workers <= 0 {
		return 1
	}
	return cfg.Workers
}

// sweepState carries the per-run shared pieces.
type sweepState struct {
	cfg        Config
	cache      *Cache
	progressMu sync.Mutex
}

// runCells drives the worker pool over the grid, writing each cell's result
// into its own slot of results (grid order).
func runCells(ctx context.Context, cells []scenario.Cell, cfg Config, cache *Cache, results []CellResult) {
	st := &sweepState{cfg: cfg, cache: cache}
	// Pre-mark every cell cancelled; workers overwrite the slots they run.
	for i, cell := range cells {
		results[i] = CellResult{
			Name:              cell.Scenario.Name,
			Bindings:          cell.Bindings,
			Status:            StatusCancelled,
			SeparationHorizon: -1,
		}
	}
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers(cfg); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				results[i] = st.runCell(ctx, cells[i])
				if cfg.Progress != nil {
					st.progressMu.Lock()
					cfg.Progress(results[i])
					st.progressMu.Unlock()
				}
			}
		}()
	}
feed:
	for i := range cells {
		select {
		case work <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(work)
	wg.Wait()
}

// runCell analyses one grid cell through the verdict cache.
func (st *sweepState) runCell(ctx context.Context, cell scenario.Cell) CellResult {
	sc := cell.Scenario
	res := CellResult{
		Name:              sc.Name,
		Bindings:          cell.Bindings,
		Status:            StatusDone,
		SeparationHorizon: -1,
	}
	if sc.Expect != 0 {
		res.Expect = sc.Expect.String()
	}
	if err := ctx.Err(); err != nil {
		res.Status = StatusCancelled
		return res
	}
	start := time.Now()
	key, err := KeyFor(sc.Adversary, sc.Options)
	if err != nil {
		res.Status = StatusError
		res.Err = err.Error()
		return res
	}
	res.Fingerprint = key.Fingerprint
	cellCtx := ctx
	if st.cfg.CellTimeout > 0 {
		var cancel context.CancelFunc
		cellCtx, cancel = context.WithTimeout(ctx, st.cfg.CellTimeout)
		defer cancel()
	}
	out, hit, err := st.cache.Do(cellCtx, key, func() (Outcome, error) {
		return solveCell(cellCtx, sc, st.cfg.CellParallelism, key.Fingerprint)
	})
	res.WallMillis = millis(time.Since(start))
	res.CacheHit = hit
	switch {
	case err == nil:
		res.Verdict = out.Verdict.String()
		res.Exact = out.Exact
		res.SeparationHorizon = out.SeparationHorizon
		res.Horizon = out.Horizon
		res.Runs = out.Runs
		res.Notes = out.Notes
		if res.Expect != "" {
			match := res.Verdict == res.Expect
			res.Match = &match
		}
	case errors.Is(err, context.Canceled) && ctx.Err() != nil:
		// The sweep itself was cancelled (not just this cell's budget).
		res.Status = StatusCancelled
	case errors.Is(err, context.DeadlineExceeded):
		res.Status = StatusError
		res.Err = fmt.Sprintf("cell timeout after %v", st.cfg.CellTimeout)
	default:
		// A deterministic solver error: classify by the error itself, not
		// by cellCtx state — a deadline that happens to elapse during a
		// failing solve must not masquerade as a timeout (the error is
		// cached, and later isomorphic cells would tell a different story).
		res.Status = StatusError
		res.Err = err.Error()
	}
	return res
}

// solveCell is the cache-miss path: one full Analyzer session.
func solveCell(ctx context.Context, sc *scenario.Scenario, parallelism int, fingerprint string) (Outcome, error) {
	if parallelism <= 0 {
		parallelism = 1
	}
	runs := 0
	an, err := check.NewAnalyzer(sc.Adversary,
		check.WithOptions(sc.Options),
		check.WithParallelism(parallelism),
		check.WithProgress(func(r check.HorizonReport) { runs = r.Runs }))
	if err != nil {
		return Outcome{}, err
	}
	if analyzerBuilt != nil {
		analyzerBuilt(fingerprint)
	}
	res, err := an.Check(ctx)
	if err != nil {
		return Outcome{}, err
	}
	return Outcome{
		Verdict:           res.Verdict,
		Exact:             res.Exact,
		SeparationHorizon: res.SeparationHorizon,
		Horizon:           res.Horizon,
		Runs:              runs,
		Notes:             res.Notes,
	}, nil
}

func millis(d time.Duration) float64 {
	return float64(d.Microseconds()) / 1000
}
