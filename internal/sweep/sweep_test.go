package sweep

import (
	"context"
	"errors"
	"os"
	"strings"
	"sync"
	"testing"

	"topocon/internal/check"
	"topocon/internal/ma"
	"topocon/internal/scenario"
	"topocon/internal/sim"
)

// saturationDoc is the engine's canonical test grid: on n=2 the loss budget
// saturates at f=2 (both non-self messages lost), so f ∈ {2,3,4} are
// behaviourally isomorphic and the 10-cell grid holds only 6 distinct keys.
const saturationDoc = `{
  "name": "lossbound-n2",
  "params": {"f": "0..4", "horizon": [3, 4]},
  "n": 2,
  "adversary": {"op": "loss-bounded", "f": "${f}"},
  "check": {"maxHorizon": "${horizon}"}
}`

// TestKeyForResolvesDefaults: the cache-key contract demands that a zero
// option field and its effective default collide — including MaxRuns and
// the process-count-adaptive CertChainLen, whose defaults are applied
// deeper in the stack than Options.Resolved's scalars.
func TestKeyForResolvesDefaults(t *testing.T) {
	adv := ma.LossyLink3()
	zero, err := KeyFor(adv, check.Options{MaxHorizon: 4})
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := KeyFor(adv, check.Options{
		MaxHorizon:   4,
		InputDomain:  2,
		MaxRuns:      4_000_000, // topo.DefaultMaxRuns
		CertChainLen: 5,         // the adaptive default for n = 2
		LatencySlack: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if zero != explicit {
		t.Errorf("zero-valued and explicitly-defaulted options split the key:\n%+v\n%+v", zero, explicit)
	}
	if !zero.CertEligible {
		t.Error("oblivious adversary must be certificate-eligible")
	}
	deeper, err := KeyFor(adv, check.Options{MaxHorizon: 5})
	if err != nil {
		t.Fatal(err)
	}
	if zero == deeper {
		t.Error("different horizons must not share a key")
	}
}

// TestKeyForNormalizesIdentitySpellings: identity spellings of the same
// adversary — Intersect(a, Unrestricted) and Concat(x, 0, a) — must
// produce byte-identical cache keys, including the CertEligible bit, which
// is decided on the normal form rather than the spelled expression's
// concrete type. A split here silently re-solves cached cells and lets the
// same behaviour carry different certificate policies.
func TestKeyForNormalizesIdentitySpellings(t *testing.T) {
	adv := ma.LossyLink3()
	opts := check.Options{MaxHorizon: 4}
	want, err := KeyFor(adv, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !want.CertEligible {
		t.Fatal("oblivious adversary must be certificate-eligible")
	}
	spellings := map[string]ma.Adversary{
		"Intersect(a, U)":   ma.MustIntersect("", adv, ma.Unrestricted(2)),
		"Intersect(U, a)":   ma.MustIntersect("", ma.Unrestricted(2), adv),
		"Concat(U, 0, a)":   ma.MustConcat("", ma.Unrestricted(2), 0, adv),
		"Concat(a', 0, a)":  ma.MustConcat("", ma.LossyLink2(), 0, adv),
		"nested identities": ma.MustIntersect("", ma.MustConcat("", ma.Unrestricted(2), 0, adv), ma.Unrestricted(2)),
	}
	for label, spelled := range spellings {
		got, err := KeyFor(spelled, opts)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if got != want {
			t.Errorf("%s splits the cache key:\n  spelled %+v\n  normal  %+v", label, got, want)
		}
	}
}

func mustTemplate(t *testing.T, doc string) *scenario.Template {
	t.Helper()
	tpl, err := scenario.ParseTemplate([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	return tpl
}

func TestSweepSaturationGrid(t *testing.T) {
	tpl := mustTemplate(t, saturationDoc)
	report, err := Run(context.Background(), tpl, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Cells) != 10 {
		t.Fatalf("report has %d cells, want 10", len(report.Cells))
	}
	// f=0 leaves only the complete graph: solvable. f=1 is the classic
	// lossy link {<-,<->,->}: impossible. f ≥ 2 is the unrestricted n=2
	// adversary: impossible.
	wantVerdict := map[int]string{0: "solvable", 1: "impossible", 2: "impossible", 3: "impossible", 4: "impossible"}
	for _, c := range report.Cells {
		if c.Status != StatusDone {
			t.Fatalf("cell %s: status %s (%s)", c.Name, c.Status, c.Err)
		}
		f := bindingValue(t, c, "f")
		if c.Verdict != wantVerdict[f] {
			t.Errorf("cell %s: verdict %s, want %s", c.Name, c.Verdict, wantVerdict[f])
		}
		if c.Fingerprint == "" {
			t.Errorf("cell %s: missing fingerprint", c.Name)
		}
		if c.Runs <= 0 || c.Horizon <= 0 {
			t.Errorf("cell %s: runs %d, horizon %d", c.Name, c.Runs, c.Horizon)
		}
	}
	// Sequential execution in grid order makes cache attribution exact:
	// f ∈ {3,4} replay the f=2 keys at both horizons.
	s := report.Summary
	if s.CacheHits != 4 || s.CacheMisses != 6 || s.DistinctKeys != 6 {
		t.Errorf("cache stats = %d hits / %d misses / %d keys, want 4/6/6", s.CacheHits, s.CacheMisses, s.DistinctKeys)
	}
	if s.Done != 10 || s.Errors != 0 || s.Cancelled != 0 || s.Mismatches != 0 {
		t.Errorf("summary = %+v", s)
	}
	if s.Solvable != 2 || s.Impossible != 8 {
		t.Errorf("verdict counts = %+v", s)
	}
	// Isomorphic cells report identical outcomes.
	byKey := map[string]CellResult{}
	for _, c := range report.Cells {
		key := c.Fingerprint + "|" + itoa(bindingValue(t, c, "horizon"))
		if prev, ok := byKey[key]; ok {
			if prev.Verdict != c.Verdict || prev.Runs != c.Runs || prev.SeparationHorizon != c.SeparationHorizon {
				t.Errorf("isomorphic cells %s and %s disagree", prev.Name, c.Name)
			}
		} else {
			byKey[key] = c
		}
	}
	table := report.Table()
	for _, want := range []string{"lossbound-n2[f=0,horizon=3]", "hit", "miss", "4 hits / 6 misses"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
}

func bindingValue(t *testing.T, c CellResult, param string) int {
	t.Helper()
	for _, b := range c.Bindings {
		if b.Param == param {
			return b.Value
		}
	}
	t.Fatalf("cell %s has no binding %q", c.Name, param)
	return 0
}

func itoa(v int) string {
	return string(rune('0' + v))
}

// TestSweepCacheSolvesKeyOnce: under a parallel worker pool, every distinct
// cache key constructs exactly one Analyzer — concurrent isomorphic cells
// wait for the in-flight solve instead of duplicating it. Run under -race
// in CI.
func TestSweepCacheSolvesKeyOnce(t *testing.T) {
	// One horizon, so fingerprints and keys are 1:1; f ∈ {2..5} are all
	// isomorphic to the unrestricted adversary — one key for four cells.
	doc := `{
	  "name": "once",
	  "params": {"f": "2..5"},
	  "n": 2,
	  "adversary": {"op": "loss-bounded", "f": "${f}"},
	  "check": {"maxHorizon": 3}
	}`
	tpl := mustTemplate(t, doc)
	for round := 0; round < 5; round++ {
		var mu sync.Mutex
		built := map[string]int{}
		report, err := Run(context.Background(), tpl, Config{
			Workers: 8,
			OnAnalyzerBuilt: func(fp string) {
				mu.Lock()
				built[fp]++
				mu.Unlock()
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		for fp, n := range built {
			if n != 1 {
				t.Fatalf("round %d: fingerprint %.12s solved %d times, want once", round, fp, n)
			}
		}
		if len(built) != report.Summary.DistinctKeys || report.Summary.DistinctKeys != 1 {
			t.Fatalf("round %d: %d constructions, %d distinct keys, want 1/1", round, len(built), report.Summary.DistinctKeys)
		}
		if report.Summary.CacheHits != 3 || report.Summary.CacheMisses != 1 {
			t.Fatalf("round %d: cache stats %+v", round, report.Summary)
		}
	}
}

// TestSweepCancellationMidSweep: cancelling a running sweep yields the
// context error plus a well-formed partial report — finished cells keep
// their verdicts, unstarted cells report cancelled, and the summary adds up.
func TestSweepCancellationMidSweep(t *testing.T) {
	tpl := mustTemplate(t, saturationDoc)
	ctx, cancel := context.WithCancel(context.Background())
	finished := 0
	report, err := Run(ctx, tpl, Config{
		Workers: 2,
		Progress: func(c CellResult) {
			finished++
			if finished == 3 {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(report.Cells) != 10 {
		t.Fatalf("partial report has %d cells, want all 10 slots", len(report.Cells))
	}
	s := report.Summary
	if s.Done+s.Errors+s.Cancelled != s.Cells || s.Cells != 10 {
		t.Errorf("summary does not partition the grid: %+v", s)
	}
	if s.Done < 3 {
		t.Errorf("only %d cells done before cancellation took effect", s.Done)
	}
	if s.Cancelled == 0 {
		t.Error("no cell reports cancellation")
	}
	for _, c := range report.Cells {
		switch c.Status {
		case StatusDone:
			if c.Verdict == "" {
				t.Errorf("done cell %s has no verdict", c.Name)
			}
		case StatusCancelled:
			if c.Verdict != "" || c.Err != "" {
				t.Errorf("cancelled cell %s carries results: %+v", c.Name, c)
			}
		case StatusError:
			t.Errorf("unexpected error cell %s: %s", c.Name, c.Err)
		}
	}
	if _, err := report.JSON(); err != nil {
		t.Fatalf("partial report does not marshal: %v", err)
	}
}

// TestSweepPerCellTimeout: an expired per-cell budget fails that cell with
// a timeout error and does not poison the cache for later cells.
func TestSweepPerCellTimeout(t *testing.T) {
	tpl := mustTemplate(t, `{
	  "name": "tiny",
	  "params": {"f": "1..2"},
	  "n": 2,
	  "adversary": {"op": "loss-bounded", "f": "${f}"},
	  "check": {"maxHorizon": 3}
	}`)
	report, err := Run(context.Background(), tpl, Config{Workers: 1, CellTimeout: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := report.Summary
	if s.Errors != 2 || s.Done != 0 {
		t.Fatalf("summary = %+v, want both cells timing out", s)
	}
	for _, c := range report.Cells {
		if c.Status != StatusError || !strings.Contains(c.Err, "cell timeout") {
			t.Errorf("cell %s: status %s err %q", c.Name, c.Status, c.Err)
		}
	}
	if s.DistinctKeys != 0 {
		t.Errorf("timed-out keys were cached: %d", s.DistinctKeys)
	}
}

// TestSweepSharedCache: a cache shared across sweep runs turns the second
// run into pure hits.
func TestSweepSharedCache(t *testing.T) {
	tpl := mustTemplate(t, saturationDoc)
	cache := NewCache()
	first, err := Run(context.Background(), tpl, Config{Workers: 4, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if first.Summary.CacheMisses != 6 {
		t.Fatalf("first run misses = %d, want 6", first.Summary.CacheMisses)
	}
	second, err := Run(context.Background(), tpl, Config{Workers: 4, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if second.Summary.CacheHits != 10 || second.Summary.CacheMisses != 0 {
		t.Fatalf("second run cache stats = %+v, want all hits", second.Summary)
	}
}

// TestSweepExpectMatch: cells inherit the template's pinned verdict and the
// report records matches and mismatches.
func TestSweepExpectMatch(t *testing.T) {
	tpl := mustTemplate(t, `{
	  "name": "pinned",
	  "params": {"w": "2..3"},
	  "n": 2,
	  "graphs": {"L": "2->1", "R": "1->2"},
	  "adversary": {"op": "window-stable", "arg": {"op": "oblivious", "graphs": ["L", "R"]}, "window": "${w}"},
	  "check": {"maxHorizon": 4},
	  "expect": "unknown"
	}`)
	report, err := Run(context.Background(), tpl, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range report.Cells {
		if c.Expect != "unknown" || c.Match == nil || !*c.Match {
			t.Errorf("cell %s: expect %q match %v", c.Name, c.Expect, c.Match)
		}
	}
	if report.Summary.Mismatches != 0 {
		t.Errorf("mismatches = %d", report.Summary.Mismatches)
	}
}

// TestSweepCheckpointResume is the grid-cell kill-and-resume contract: a
// sweep killed mid-cell leaves a checkpoint in the cell's content-addressed
// subdirectory; rerunning the sweep over the same CheckpointDir resumes
// that session (never re-extending checkpointed horizons), reaches the
// verdict an uncheckpointed sweep reaches, reports the resume in the cell
// and the paging gauges in the summary, and cleans the checkpoint up.
func TestSweepCheckpointResume(t *testing.T) {
	doc := `{
	  "name": "ckpt-cell",
	  "params": {"f": "1..1"},
	  "n": 2,
	  "adversary": {"op": "loss-bounded", "f": "${f}"},
	  "check": {"maxHorizon": 5}
	}`
	tpl := mustTemplate(t, doc)
	want, err := Run(context.Background(), tpl, Config{})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err = Run(ctx, tpl, Config{
		CheckpointDir: dir,
		PagerHotBytes: 1,
		CellProgress: func(cell string, rep check.HorizonReport) {
			if rep.Horizon == 2 {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("killed sweep: err = %v, want context.Canceled", err)
	}

	firstResumed := -1
	report, err := Run(context.Background(), tpl, Config{
		CheckpointDir: dir,
		PagerHotBytes: 1,
		CellProgress: func(cell string, rep check.HorizonReport) {
			if firstResumed < 0 {
				firstResumed = rep.Horizon
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	c := report.Cells[0]
	if c.Status != StatusDone || !c.Resumed {
		t.Fatalf("resumed cell: status %s resumed %v (%s)", c.Status, c.Resumed, c.Err)
	}
	if firstResumed >= 0 && firstResumed <= 2 {
		t.Errorf("resumed cell re-extended horizon %d (checkpoint was at 2)", firstResumed)
	}
	w := want.Cells[0]
	if c.Verdict != w.Verdict || c.SeparationHorizon != w.SeparationHorizon ||
		c.Horizon != w.Horizon || c.Runs != w.Runs {
		t.Errorf("resumed cell %s/%d/%d/%d differs from uncheckpointed %s/%d/%d/%d",
			c.Verdict, c.SeparationHorizon, c.Horizon, c.Runs,
			w.Verdict, w.SeparationHorizon, w.Horizon, w.Runs)
	}
	p := report.Summary.Paging
	if p.CellsResumed != 1 || p.CheckpointsWritten == 0 {
		t.Errorf("paging summary %+v: want 1 resumed cell and some checkpoints", p)
	}
	// Faults need not occur here: extension only reads the head round and
	// the certificate search never walks the chain. Spills must.
	if p.PagesSpilled == 0 || p.HotBytes == 0 {
		t.Errorf("paging summary %+v: 1-byte budget must spill", p)
	}
	if !strings.Contains(report.Table(), "cells resumed") {
		t.Error("table does not render the paging gauges")
	}
	// The verdict is in: the cell's checkpoint directory is gone.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("checkpoint dir not cleaned up: %d entries left", len(entries))
	}
	// An uncheckpointed sweep reports no paging block at all.
	if want.Summary.Paging != (PagingSummary{}) {
		t.Errorf("plain sweep reports paging traffic: %+v", want.Summary.Paging)
	}
}

// TestSweepDifferentialGridCells: every solvable grid cell's verdict is
// checked against executable behaviour — the extracted rule, run by the
// message-passing full-information protocol over every admissible run of
// the cell's adversary, must satisfy (T), (A), (V). (The deep differential
// harness over the whole corpus lives in the root package; this guards the
// engine's grid directly.)
func TestSweepDifferentialGridCells(t *testing.T) {
	tpl := mustTemplate(t, saturationDoc)
	cells, err := tpl.Expand()
	if err != nil {
		t.Fatal(err)
	}
	report, err := Run(context.Background(), tpl, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	solvable := 0
	for i, c := range report.Cells {
		if c.Status != StatusDone || c.Verdict != "solvable" {
			continue
		}
		solvable++
		sc := cells[i].Scenario
		res, err := check.Consensus(sc.Adversary, sc.Options)
		if err != nil {
			t.Fatal(err)
		}
		if res.Rule == nil {
			t.Fatalf("cell %s: solvable without a rule", c.Name)
		}
		horizon := res.SeparationHorizon + 1
		sim.Exhaustive(sc.Adversary, sim.NewFullInfo(res.Rule), 2, horizon,
			func(tr *sim.Trace, _ ma.Prefix) bool {
				for _, v := range sim.CheckConsensus(tr, true) {
					t.Errorf("cell %s: %v", c.Name, v)
				}
				return true
			})
	}
	if solvable == 0 {
		t.Fatal("grid produced no solvable cell to check")
	}
}
