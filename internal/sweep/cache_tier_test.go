package sweep

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"topocon/internal/check"
	"topocon/internal/ma"
	"topocon/internal/scenario"
)

// fakeTier is an in-memory Tier with fault injection and call accounting.
type fakeTier struct {
	mu      sync.Mutex
	m       map[Key]Outcome
	gets    int
	puts    int
	failPut bool
}

func newFakeTier() *fakeTier { return &fakeTier{m: map[Key]Outcome{}} }

func (f *fakeTier) Get(k Key) (Outcome, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.gets++
	out, ok := f.m[k]
	return out, ok
}

func (f *fakeTier) Put(k Key, out Outcome) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.puts++
	if f.failPut {
		return errors.New("tier full")
	}
	f.m[k] = out
	return nil
}

func testKey(t *testing.T, maxHorizon int) Key {
	t.Helper()
	key, err := KeyFor(ma.LossyLink2(), check.Options{MaxHorizon: maxHorizon})
	if err != nil {
		t.Fatal(err)
	}
	return key
}

// TestTieredCacheReadThrough: memory → disk → compute, with origin-based
// attribution — a key served by the persistent tier stays attributed to
// disk on later memory-resident hits, so "served from the persistent
// corpus" is observable per answer.
func TestTieredCacheReadThrough(t *testing.T) {
	tier := newFakeTier()
	key := testKey(t, 3)
	want := Outcome{Verdict: check.VerdictSolvable, Horizon: 3, Runs: 7}
	tier.m[key] = want

	c := NewTieredCache(tier)
	solve := func() (Outcome, error) {
		t.Fatal("solve ran despite a tier hit")
		return Outcome{}, nil
	}
	for i, wantTier := range []HitTier{TierDisk, TierDisk} {
		out, tierGot, err := c.Do(context.Background(), key, solve)
		if err != nil || out.Verdict != want.Verdict || out.Horizon != want.Horizon || out.Runs != want.Runs {
			t.Fatalf("Do #%d = %+v, %v", i, out, err)
		}
		if tierGot != wantTier {
			t.Fatalf("Do #%d attributed %v, want %v", i, tierGot, wantTier)
		}
	}
	if tier.gets != 1 {
		t.Errorf("tier probed %d times, want once (promotion into memory)", tier.gets)
	}
	st := c.Stats()
	if st.DiskHits != 2 || st.MemoryHits != 0 || st.Computes != 0 {
		t.Errorf("stats = %+v, want 2 disk hits only", st)
	}
}

// TestTieredCacheWriteBehind: a computed outcome lands in the tier; a
// second cache over the same tier serves it from disk without solving —
// the restart scenario in miniature.
func TestTieredCacheWriteBehind(t *testing.T) {
	tier := newFakeTier()
	key := testKey(t, 3)
	want := Outcome{Verdict: check.VerdictImpossible, Horizon: 2}

	c1 := NewTieredCache(tier)
	out, hitTier, err := c1.Do(context.Background(), key, func() (Outcome, error) { return want, nil })
	if err != nil || out.Verdict != want.Verdict || hitTier != TierNone {
		t.Fatalf("compute pass = %+v, %v, %v", out, hitTier, err)
	}
	if got, ok := tier.m[key]; !ok || got.Verdict != want.Verdict {
		t.Fatalf("tier not written behind: %+v, %v", got, ok)
	}

	c2 := NewTieredCache(tier)
	out, hitTier, err = c2.Do(context.Background(), key, func() (Outcome, error) {
		t.Fatal("restarted cache recomputed a persisted key")
		return Outcome{}, nil
	})
	if err != nil || out.Verdict != want.Verdict || hitTier != TierDisk {
		t.Fatalf("restart pass = %+v, %v, %v", out, hitTier, err)
	}
}

// TestTieredCacheErrorHandling: context errors are retracted and never
// persisted; deterministic errors are memory-cached but never persisted;
// tier Put failures are counted, not fatal.
func TestTieredCacheErrorHandling(t *testing.T) {
	tier := newFakeTier()
	key := testKey(t, 3)
	c := NewTieredCache(tier)

	_, _, err := c.Do(context.Background(), key, func() (Outcome, error) {
		return Outcome{}, context.DeadlineExceeded
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
	if c.Len() != 0 || tier.puts != 0 {
		t.Fatalf("context error was cached or persisted: len %d, puts %d", c.Len(), tier.puts)
	}

	detErr := errors.New("bad configuration")
	_, _, err = c.Do(context.Background(), key, func() (Outcome, error) { return Outcome{}, detErr })
	if !errors.Is(err, detErr) {
		t.Fatalf("err = %v", err)
	}
	if c.Len() != 1 {
		t.Fatal("deterministic error not memory-cached")
	}
	if tier.puts != 0 {
		t.Fatal("deterministic error persisted to the tier")
	}

	key2 := testKey(t, 4)
	tier.failPut = true
	if _, _, err := c.Do(context.Background(), key2, func() (Outcome, error) {
		return Outcome{Verdict: check.VerdictUnknown}, nil
	}); err != nil {
		t.Fatalf("tier put failure leaked into the solve: %v", err)
	}
	if st := c.Stats(); st.TierPutErrors != 1 {
		t.Fatalf("stats = %+v, want 1 tier put error", st)
	}
}

// TestCacheLookup: Lookup answers from memory or the tier without solving
// and without blocking on an in-flight leader.
func TestCacheLookup(t *testing.T) {
	tier := newFakeTier()
	keyDisk, keyMem, keyMissing := testKey(t, 3), testKey(t, 4), testKey(t, 5)
	tier.m[keyDisk] = Outcome{Verdict: check.VerdictSolvable}
	c := NewTieredCache(tier)

	if _, tierGot, ok := c.Lookup(keyDisk); !ok || tierGot != TierDisk {
		t.Fatalf("disk lookup = %v, %v", tierGot, ok)
	}
	if _, _, err := c.Do(context.Background(), keyMem, func() (Outcome, error) {
		return Outcome{Verdict: check.VerdictUnknown}, nil
	}); err != nil {
		t.Fatal(err)
	}
	if _, tierGot, ok := c.Lookup(keyMem); !ok || tierGot != TierMemory {
		t.Fatalf("memory lookup = %v, %v", tierGot, ok)
	}
	if _, _, ok := c.Lookup(keyMissing); ok {
		t.Fatal("missing key reported found")
	}

	// An in-flight leader must not block Lookup: start a solve that waits,
	// Lookup concurrently, then release the leader.
	keyInflight := testKey(t, 6)
	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.Do(context.Background(), keyInflight, func() (Outcome, error) {
			close(started)
			<-release
			return Outcome{}, nil
		})
	}()
	<-started
	if _, _, ok := c.Lookup(keyInflight); ok {
		t.Error("Lookup returned an unfinished in-flight solve")
	}
	close(release)
	<-done
}

// TestSweepSharedSlots: a shared session-pool semaphore of capacity 1
// serializes cell sessions across an 8-worker sweep — per-horizon progress
// of different cells never interleaves, because each cell holds its slot
// for its whole session.
func TestSweepSharedSlots(t *testing.T) {
	// Distinct horizons → distinct keys → every cell solves (no hits).
	tpl := mustTemplate(t, `{
	  "name": "slots",
	  "params": {"horizon": "3..6"},
	  "n": 2,
	  "adversary": {"op": "loss-bounded", "f": 1},
	  "check": {"maxHorizon": "${horizon}"}
	}`)
	var order []string
	report, err := Run(context.Background(), tpl, Config{
		Workers: 8,
		Slots:   make(chan struct{}, 1),
		CellProgress: func(cell string, _ check.HorizonReport) {
			order = append(order, cell)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Summary.Done != 4 || report.Summary.CacheMisses != 4 {
		t.Fatalf("summary = %+v", report.Summary)
	}
	// Grouped sequence: once a new cell name appears, earlier names are done.
	seen := map[string]bool{}
	last := ""
	for _, cell := range order {
		if cell != last {
			if seen[cell] {
				t.Fatalf("cell sessions interleaved under a 1-slot pool: %v", order)
			}
			seen[cell] = true
			last = cell
		}
	}
	if len(seen) != 4 {
		t.Fatalf("progress covered %d cells, want 4: %v", len(seen), order)
	}
}

// TestRunScenarioSingleCell: a concrete scenario runs as a one-cell grid
// through the same cache, so CLIs and the daemon share one corpus across
// document kinds.
func TestRunScenarioSingleCell(t *testing.T) {
	doc := fmt.Sprintf(`{
	  "name": "lossy3-direct",
	  "n": 2,
	  "graphs": {"L": "2->1", "R": "1->2", "B": "1<->2"},
	  "adversary": {"op": "oblivious", "graphs": ["L", "R", "B"]},
	  "check": {"maxHorizon": %d},
	  "expect": "impossible"
	}`, 4)
	sc, err := scenario.Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	cache := NewCache()
	first, err := RunScenario(context.Background(), sc, Config{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Cells) != 1 || first.Cells[0].Verdict != "impossible" || first.Cells[0].CacheHit {
		t.Fatalf("first run = %+v", first.Cells)
	}
	if first.Summary.Mismatches != 0 || first.Summary.Done != 1 {
		t.Fatalf("first summary = %+v", first.Summary)
	}
	second, err := RunScenario(context.Background(), sc, Config{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if c := second.Cells[0]; !c.CacheHit || c.CacheTier != "memory" || c.Verdict != "impossible" {
		t.Fatalf("second run not served from memory: %+v", c)
	}
	if !strings.Contains(second.Table(), "lossy3-direct") {
		t.Error("table lacks the scenario name")
	}
}
