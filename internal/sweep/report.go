package sweep

import (
	"encoding/json"
	"fmt"
	"strings"

	"topocon/internal/scenario"
)

// CellResult is one grid cell's outcome in a sweep report.
type CellResult struct {
	// Name is the cell's scenario name (template name plus bindings).
	Name string `json:"name"`
	// Bindings are the cell's parameter values, in canonical order.
	Bindings []scenario.Binding `json:"bindings"`
	// Fingerprint is the cache key's behavioural hash ("" if keying failed).
	Fingerprint string `json:"fingerprint,omitempty"`
	// Status is done, error or cancelled.
	Status string `json:"status"`
	// Verdict, Exact and SeparationHorizon carry the analysis outcome
	// (Status done only; SeparationHorizon is -1 when unseen).
	Verdict           string `json:"verdict,omitempty"`
	Exact             bool   `json:"exact,omitempty"`
	SeparationHorizon int    `json:"separationHorizon"`
	// Horizon is the deepest analysed horizon; Runs the size of its prefix
	// space — for cache hits, of the session that originally solved the key.
	Horizon int `json:"horizon"`
	Runs    int `json:"runs"`
	// Expect is the spec's pinned verdict ("" if unpinned); Match compares
	// it with the computed one (absent if unpinned or not done).
	Expect string `json:"expect,omitempty"`
	Match  *bool  `json:"match,omitempty"`
	// CacheHit reports that the verdict came from the cache, including
	// waiting on a concurrent solve of the same key; CacheTier attributes
	// its origin ("memory": solved earlier in this process, "disk": served
	// by the persistent verdict store; empty for misses).
	CacheHit  bool   `json:"cacheHit"`
	CacheTier string `json:"cacheTier,omitempty"`
	// Resumed reports that this cell's session was resumed from a
	// checkpoint left by an earlier killed run (Config.CheckpointDir).
	Resumed bool `json:"resumed,omitempty"`
	// Worker, Attempt and StolenFrom attribute the cell in coordinated
	// multi-worker sweeps: Worker identifies the topoconsvc instance that
	// produced the result, Attempt is the coordinator's 1-based dispatch
	// attempt, and StolenFrom names the dead worker whose lease (and
	// checkpoint) this attempt took over. All empty/zero in single-process
	// sweeps.
	Worker     string `json:"worker,omitempty"`
	Attempt    int    `json:"attempt,omitempty"`
	StolenFrom string `json:"stolenFrom,omitempty"`
	// WallMillis is this cell's wall-clock cost (≈ 0 for cache hits).
	WallMillis float64 `json:"wallMillis"`
	// Notes carries checker anomalies; Err the failure for Status error.
	Notes []string `json:"notes,omitempty"`
	Err   string   `json:"error,omitempty"`
}

// Summary aggregates a sweep's cells.
type Summary struct {
	Cells     int `json:"cells"`
	Done      int `json:"done"`
	Errors    int `json:"errors"`
	Cancelled int `json:"cancelled"`

	Solvable   int `json:"solvable"`
	Impossible int `json:"impossible"`
	Unknown    int `json:"unknown"`
	Mismatches int `json:"mismatches"`

	// CacheHits + CacheMisses = Done; MemoryHits + DiskHits = CacheHits
	// (disk hits are verdicts that originated in the persistent store);
	// DistinctKeys is the number of keys the cache ended up holding
	// (grid-wide when the cache is per-sweep, global when shared across
	// sweeps).
	CacheHits    int `json:"cacheHits"`
	MemoryHits   int `json:"memoryHits"`
	DiskHits     int `json:"diskHits"`
	CacheMisses  int `json:"cacheMisses"`
	DistinctKeys int `json:"distinctKeys"`

	// Paging aggregates the solved cells' out-of-core traffic; all-zero
	// (and omitted from JSON) for sweeps without a CheckpointDir.
	Paging PagingSummary `json:"paging,omitzero"`
}

// PagingSummary aggregates paging/checkpoint gauges across a run's solved
// cells (cache hits contribute nothing — their sessions never run).
type PagingSummary struct {
	// PagesSpilled and PagesFaulted total the pager eviction/fault traffic.
	PagesSpilled int64 `json:"pagesSpilled"`
	PagesFaulted int64 `json:"pagesFaulted"`
	// HotBytes is the largest peak resident page-payload size any single
	// cell reached.
	HotBytes int64 `json:"hotBytes"`
	// CheckpointsWritten totals checkpoint saves; CellsResumed counts cells
	// whose sessions continued from a checkpoint instead of starting fresh.
	CheckpointsWritten int64 `json:"checkpointsWritten"`
	CellsResumed       int   `json:"cellsResumed"`
}

// Report is the structured outcome of one sweep run.
type Report struct {
	// Template names the swept template; Params its expanded parameters.
	Template string           `json:"template"`
	Params   []scenario.Param `json:"params"`
	// Workers is the worker-pool size the sweep ran with.
	Workers int `json:"workers"`
	// WallMillis is the whole sweep's wall-clock time.
	WallMillis float64 `json:"wallMillis"`
	// Cells are the per-cell results, in grid (odometer) order.
	Cells []CellResult `json:"cells"`
	// Summary aggregates the cells.
	Summary Summary `json:"summary"`
}

// Summarize aggregates externally-produced cell results — the
// coordinator's merged multi-worker reports. With no cache to consult,
// DistinctKeys is the number of distinct cell fingerprints.
//
//topocon:export
func Summarize(cells []CellResult) Summary {
	s := summarize(cells, nil)
	fps := make(map[string]struct{}, len(cells))
	for i := range cells {
		if fp := cells[i].Fingerprint; fp != "" {
			fps[fp] = struct{}{}
		}
	}
	s.DistinctKeys = len(fps)
	return s
}

func summarize(cells []CellResult, cache *Cache) Summary {
	s := Summary{Cells: len(cells)}
	if cache != nil {
		s.DistinctKeys = cache.Len()
	}
	for i := range cells {
		c := &cells[i]
		switch c.Status {
		case StatusDone:
			s.Done++
			switch c.CacheTier {
			case TierMemory.String():
				s.CacheHits++
				s.MemoryHits++
			case TierDisk.String():
				s.CacheHits++
				s.DiskHits++
			default:
				s.CacheMisses++
			}
			switch c.Verdict {
			case "solvable":
				s.Solvable++
			case "impossible":
				s.Impossible++
			case "unknown":
				s.Unknown++
			}
			if c.Match != nil && !*c.Match {
				s.Mismatches++
			}
		case StatusError:
			s.Errors++
		case StatusCancelled:
			s.Cancelled++
		}
	}
	return s
}

// Normalize zeroes every timing field, making reports comparable across
// runs — the golden-file tests pin normalized reports.
func (r *Report) Normalize() {
	r.WallMillis = 0
	for i := range r.Cells {
		r.Cells[i].WallMillis = 0
	}
}

// JSON marshals the report, indented.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Table renders the report as a human-readable table plus a summary line.
func (r *Report) Table() string {
	var sb strings.Builder
	nameW := len("cell")
	for i := range r.Cells {
		if w := len(r.Cells[i].Name); w > nameW {
			nameW = w
		}
	}
	fmt.Fprintf(&sb, "%-*s  %-10s  %3s  %7s  %8s  %-5s  %9s\n",
		nameW, "cell", "verdict", "sep", "horizon", "runs", "cache", "time")
	for i := range r.Cells {
		c := &r.Cells[i]
		verdict := c.Verdict
		switch c.Status {
		case StatusError:
			verdict = "ERROR"
		case StatusCancelled:
			verdict = "-"
		}
		mark := ""
		if c.Match != nil && !*c.Match {
			mark = " MISMATCH(expect " + c.Expect + ")"
		}
		cache := "miss"
		switch c.CacheTier {
		case "memory":
			cache = "hit"
		case "disk":
			cache = "disk"
		}
		if c.Status != StatusDone {
			cache = "-"
		}
		fmt.Fprintf(&sb, "%-*s  %-10s  %3s  %7s  %8s  %-5s  %8.1fms%s\n",
			nameW, c.Name, verdict,
			dash(c.SeparationHorizon, c.Status), dash(c.Horizon, c.Status), dash(c.Runs, c.Status),
			cache, c.WallMillis, mark)
		if c.Err != "" {
			fmt.Fprintf(&sb, "%-*s    %s\n", nameW, "", c.Err)
		}
	}
	s := r.Summary
	fmt.Fprintf(&sb, "\ncells %d  done %d  errors %d  cancelled %d  |  solvable %d  impossible %d  unknown %d  mismatches %d\n",
		s.Cells, s.Done, s.Errors, s.Cancelled, s.Solvable, s.Impossible, s.Unknown, s.Mismatches)
	hitRate := 0.0
	if s.Done > 0 {
		hitRate = 100 * float64(s.CacheHits) / float64(s.Done)
	}
	fmt.Fprintf(&sb, "cache %d hits / %d misses (%.0f%% hit rate, %d memory + %d disk, %d distinct keys)  |  wall %.1fms with %d workers\n",
		s.CacheHits, s.CacheMisses, hitRate, s.MemoryHits, s.DiskHits, s.DistinctKeys, r.WallMillis, r.Workers)
	if p := s.Paging; p != (PagingSummary{}) {
		fmt.Fprintf(&sb, "paging %d spilled / %d faulted (peak hot %d B)  |  %d checkpoints written, %d cells resumed\n",
			p.PagesSpilled, p.PagesFaulted, p.HotBytes, p.CheckpointsWritten, p.CellsResumed)
	}
	return sb.String()
}

// dash renders a cell statistic, or "-" for cells that never ran.
func dash(v int, status string) string {
	if status != StatusDone {
		return "-"
	}
	if v < 0 {
		return "-"
	}
	return fmt.Sprintf("%d", v)
}
