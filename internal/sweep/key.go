package sweep

import (
	"fmt"
	"strconv"
	"strings"
)

// KeyEncodingVersion is the current canonical key-encoding version. The
// version is the first token of every encoded key, so stores that address
// records by encoded keys can evolve the format without silently mixing
// incompatible generations: a version bump makes every old encoding
// unparseable rather than wrongly equal.
//
// v2 added the automorphism-group fingerprint (gf) and the NoSymmetry
// option bit (ns): v1 records predate the symmetry quotient and carry
// Runs counts and cert-eligibility judgements from the unquotiented
// checker, so they are retired wholesale rather than reinterpreted.
const KeyEncodingVersion = 2

// String returns the key's canonical byte encoding:
//
//	v2;fp=<hex fingerprint>;gf=<hex group fingerprint>;in=<InputDomain>;
//	mh=<MaxHorizon>;mr=<MaxRuns>;dv=<DefaultValue>;cc=<CertChainLen>;
//	ls=<LatencySlack>;ns=<0|1>;ce=<0|1>
//
// (one line, no spaces). The encoding is injective and canonical: two keys
// are equal iff their encodings are byte-equal, and ParseKey accepts
// exactly the strings String produces. Disk stores content-address records
// by this encoding; treat it as a stable, versioned format.
func (k Key) String() string {
	ns, ce := 0, 0
	if k.Options.NoSymmetry {
		ns = 1
	}
	if k.CertEligible {
		ce = 1
	}
	return fmt.Sprintf("v%d;fp=%s;gf=%s;in=%d;mh=%d;mr=%d;dv=%d;cc=%d;ls=%d;ns=%d;ce=%d",
		KeyEncodingVersion, k.Fingerprint, k.GroupFingerprint,
		k.Options.InputDomain, k.Options.MaxHorizon, k.Options.MaxRuns,
		k.Options.DefaultValue, k.Options.CertChainLen, k.Options.LatencySlack, ns, ce)
}

// ParseKey parses the canonical encoding produced by Key.String. It is
// strict: any deviation from the canonical form — unknown version, field
// order, spacing, non-canonical integers ("01", "+1"), a fingerprint that
// is not lowercase hex — is an error, so parse-then-reencode is always the
// identity and encoded keys are safe content addresses.
//
//topocon:export
func ParseKey(s string) (Key, error) {
	parts := strings.Split(s, ";")
	if len(parts) != 11 {
		return Key{}, fmt.Errorf("sweep: key %q: want 11 ';'-separated fields, have %d", s, len(parts))
	}
	if parts[0] != fmt.Sprintf("v%d", KeyEncodingVersion) {
		return Key{}, fmt.Errorf("sweep: key %q: unsupported version %q (want v%d)", s, parts[0], KeyEncodingVersion)
	}
	fp, err := keyField(parts[1], "fp")
	if err != nil {
		return Key{}, fmt.Errorf("sweep: key %q: %w", s, err)
	}
	if !isHex(fp) {
		return Key{}, fmt.Errorf("sweep: key %q: fingerprint is not lowercase hex", s)
	}
	gf, err := keyField(parts[2], "gf")
	if err != nil {
		return Key{}, fmt.Errorf("sweep: key %q: %w", s, err)
	}
	if !isHex(gf) {
		return Key{}, fmt.Errorf("sweep: key %q: group fingerprint is not lowercase hex", s)
	}
	var k Key
	k.Fingerprint = fp
	k.GroupFingerprint = gf
	ints := []struct {
		tag string
		dst *int
	}{
		{"in", &k.Options.InputDomain},
		{"mh", &k.Options.MaxHorizon},
		{"mr", &k.Options.MaxRuns},
		{"dv", &k.Options.DefaultValue},
		{"cc", &k.Options.CertChainLen},
		{"ls", &k.Options.LatencySlack},
	}
	for i, f := range ints {
		v, err := keyField(parts[3+i], f.tag)
		if err != nil {
			return Key{}, fmt.Errorf("sweep: key %q: %w", s, err)
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			return Key{}, fmt.Errorf("sweep: key %q: field %s: %w", s, f.tag, err)
		}
		*f.dst = n
	}
	ns, err := keyField(parts[9], "ns")
	if err != nil {
		return Key{}, fmt.Errorf("sweep: key %q: %w", s, err)
	}
	switch ns {
	case "0":
		k.Options.NoSymmetry = false
	case "1":
		k.Options.NoSymmetry = true
	default:
		return Key{}, fmt.Errorf("sweep: key %q: field ns must be 0 or 1", s)
	}
	ce, err := keyField(parts[10], "ce")
	if err != nil {
		return Key{}, fmt.Errorf("sweep: key %q: %w", s, err)
	}
	switch ce {
	case "0":
		k.CertEligible = false
	case "1":
		k.CertEligible = true
	default:
		return Key{}, fmt.Errorf("sweep: key %q: field ce must be 0 or 1", s)
	}
	// Canonicality: the only accepted spelling of a key is its own
	// re-encoding (rejects "+1", "01", "-0", ...).
	if enc := k.String(); enc != s {
		return Key{}, fmt.Errorf("sweep: key %q is not canonical (canonical form %q)", s, enc)
	}
	return k, nil
}

// keyField strips the "tag=" prefix of one encoded field.
func keyField(part, tag string) (string, error) {
	v, ok := strings.CutPrefix(part, tag+"=")
	if !ok {
		return "", fmt.Errorf("field %q: want prefix %q", part, tag+"=")
	}
	return v, nil
}

func isHex(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
