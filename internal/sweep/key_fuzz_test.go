package sweep

import (
	"strings"
	"testing"

	"topocon/internal/check"
	"topocon/internal/ma"
)

// FuzzKeyRoundTrip fuzzes the canonical key codec from both directions:
// arbitrary strings must either be rejected or round-trip exactly
// (Parse∘String = id and String∘Parse = id), and keys assembled from
// fuzzed field values with a well-formed fingerprint must always
// round-trip. This is the contract disk stores rely on to content-address
// records by encoded keys.
func FuzzKeyRoundTrip(f *testing.F) {
	seed, err := KeyFor(ma.LossyLink3(), check.Options{MaxHorizon: 4})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String(), 2, 7, 0, 0, 5, 2, false, true)
	f.Add("v2;fp=ab;gf=cd;in=1;mh=1;mr=1;dv=0;cc=-1;ls=0;ns=0;ce=0", 1, 1, 1, 0, -1, 0, false, false)
	f.Add("v1;fp=ab;in=1;mh=1;mr=1;dv=0;cc=-1;ls=0;ce=0", 1, 1, 1, 0, -1, 0, true, false)
	f.Add("v2;fp=;gf=;in=;mh=;mr=;dv=;cc=;ls=;ns=;ce=", 0, 0, 0, 0, 0, 0, false, false)
	f.Add("not a key at all", -5, 1<<30, 42, -1, 3, 9, true, true)

	f.Fuzz(func(t *testing.T, s string, in, mh, mr, dv, cc, ls int, ns, ce bool) {
		// Direction 1: hostile string input. Parsing must never panic, and
		// anything accepted must be exactly canonical.
		if k, err := ParseKey(s); err == nil {
			if k.String() != s {
				t.Fatalf("accepted non-canonical encoding %q (canonical %q)", s, k.String())
			}
			k2, err := ParseKey(k.String())
			if err != nil || k2 != k {
				t.Fatalf("re-parse of %q drifted: %+v vs %+v (err %v)", s, k2, k, err)
			}
		}

		// Direction 2: a structurally valid key from fuzzed fields (the
		// fingerprint sanitized to the codec's hex alphabet) must encode,
		// parse and compare as the identity.
		fp := strings.Map(func(r rune) rune {
			if (r >= '0' && r <= '9') || (r >= 'a' && r <= 'f') {
				return r
			}
			return 'a'
		}, s)
		if fp == "" {
			fp = "0"
		}
		k := Key{
			Fingerprint:      fp,
			GroupFingerprint: fp,
			Options: check.Options{
				InputDomain: in, MaxHorizon: mh, MaxRuns: mr,
				DefaultValue: dv, CertChainLen: cc, LatencySlack: ls,
				NoSymmetry: ns,
			},
			CertEligible: ce,
		}
		back, err := ParseKey(k.String())
		if err != nil {
			t.Fatalf("ParseKey(%q) of a well-formed key: %v", k.String(), err)
		}
		if back != k {
			t.Fatalf("round trip drifted:\n in: %+v\nout: %+v", k, back)
		}
	})
}
