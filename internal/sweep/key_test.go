package sweep

import (
	"strings"
	"testing"

	"topocon/internal/check"
	"topocon/internal/ma"
)

// TestKeyEncodingRoundTrip: every key the engine actually produces (KeyFor
// over the seed families at several option sets) round-trips through the
// canonical encoding.
func TestKeyEncodingRoundTrip(t *testing.T) {
	advs := []ma.Adversary{ma.LossyLink2(), ma.LossyLink3(), ma.Unrestricted(2)}
	optss := []check.Options{
		{},
		{MaxHorizon: 4},
		{MaxHorizon: 6, InputDomain: 3, CertChainLen: -1, LatencySlack: 1},
	}
	for _, adv := range advs {
		for _, opts := range optss {
			key, err := KeyFor(adv, opts)
			if err != nil {
				t.Fatal(err)
			}
			enc := key.String()
			if !strings.HasPrefix(enc, "v2;fp=") {
				t.Fatalf("encoding %q lacks the version prefix", enc)
			}
			back, err := ParseKey(enc)
			if err != nil {
				t.Fatalf("ParseKey(%q): %v", enc, err)
			}
			if back != key {
				t.Fatalf("round trip drifted:\n in: %+v\nout: %+v", key, back)
			}
			if back.String() != enc {
				t.Fatalf("re-encoding drifted: %q vs %q", back.String(), enc)
			}
		}
	}
}

// TestKeyEncodingInjective: distinct keys have distinct encodings.
func TestKeyEncodingInjective(t *testing.T) {
	a, err := KeyFor(ma.LossyLink3(), check.Options{MaxHorizon: 4})
	if err != nil {
		t.Fatal(err)
	}
	b := a
	b.Options.MaxHorizon++
	c := a
	c.CertEligible = !c.CertEligible
	if a.String() == b.String() || a.String() == c.String() || b.String() == c.String() {
		t.Fatalf("encodings collide: %q %q %q", a, b, c)
	}
}

// TestParseKeyRejects: non-canonical or malformed encodings are errors, so
// encoded keys are safe content addresses.
func TestParseKeyRejects(t *testing.T) {
	valid, err := KeyFor(ma.LossyLink2(), check.Options{MaxHorizon: 3})
	if err != nil {
		t.Fatal(err)
	}
	enc := valid.String()
	bad := []string{
		"",
		"v2",
		"v1;" + strings.TrimPrefix(enc, "v2;"),   // retired version
		"v3;" + strings.TrimPrefix(enc, "v2;"),   // wrong version
		strings.Replace(enc, ";in=", ";in=+", 1), // "+2" is not canonical
		strings.Replace(enc, ";mh=3", ";mh=03", 1),             // leading zero
		strings.Replace(enc, ";ce=", ";ce=2;x=", 1),            // bad bool + extra field
		strings.Replace(enc, ";ns=0", ";ns=2", 1),              // bad symmetry bool
		strings.Replace(enc, "fp=", "fp=XYZ", 1),               // non-hex fingerprint
		strings.Replace(enc, ";gf=", ";gf=XYZ", 1),             // non-hex group fingerprint
		strings.Replace(enc, ";in=", ";id=", 1),                // wrong tag
		enc + ";extra=1",                                       // trailing field
		strings.ToUpper(enc[:6]) + enc[6:],                     // uppercase hex
		strings.Replace(enc, ";fp=", ";fp= ", 1),               // space
		strings.Replace(enc, ";ls=", ";ls=1"+"\n", 1) + "junk", // newline
	}
	for _, s := range bad {
		if _, err := ParseKey(s); err == nil {
			t.Errorf("ParseKey(%q) accepted a malformed key", s)
		}
	}
	if _, err := ParseKey(enc); err != nil {
		t.Fatalf("ParseKey rejected its own canonical form: %v", err)
	}
}
