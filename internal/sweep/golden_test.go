package sweep

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"topocon/internal/scenario"
)

var update = flag.Bool("update", false, "rewrite golden sweep reports")

// TestSweepReportGolden pins the full JSON report schema and content for a
// deterministic sequential sweep: any drift in the report shape, the cell
// enumeration order, the cache attribution or the verdicts shows up as a
// reviewable golden-file diff. Timing fields are normalized to zero before
// comparison. Regenerate with: go test ./internal/sweep -run Golden -update
func TestSweepReportGolden(t *testing.T) {
	tplPath := filepath.Join("testdata", "lossbound-grid.json")
	goldenPath := filepath.Join("testdata", "lossbound-grid.golden.json")
	tpl, err := scenario.LoadTemplate(tplPath)
	if err != nil {
		t.Fatal(err)
	}
	// Workers: 1 — sequential grid-order execution makes the miss/hit
	// attribution (first cell of a key misses, later ones hit) exact.
	report, err := Run(context.Background(), tpl, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	report.Normalize()
	got, err := report.JSON()
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	if *update {
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenPath)
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("sweep report drifted from %s (run with -update after reviewing):\ngot:\n%s\nwant:\n%s",
			goldenPath, got, want)
	}
}
