package scenario

import (
	"fmt"
	"sort"
	"sync"
)

// registryDocs are the built-in scenario documents, one per seed adversary
// family, written in the same JSON format as on-disk scenario files — the
// registry dogfoods the parser.
var registryDocs = []string{
	`{
	  "name": "lossy2",
	  "description": "reduced lossy link {<-,->} of [8]: solvable in one round",
	  "n": 2,
	  "graphs": {"L": "2->1", "R": "1->2"},
	  "adversary": {"op": "oblivious", "name": "lossy-link{<-,->}", "graphs": ["L", "R"]},
	  "check": {"maxHorizon": 5},
	  "expect": "solvable"
	}`,
	`{
	  "name": "lossy3",
	  "description": "classic lossy link {<-,<->,->} of [21]: impossible",
	  "n": 2,
	  "graphs": {"L": "2->1", "R": "1->2", "B": "1<->2"},
	  "adversary": {"op": "oblivious", "name": "lossy-link{<-,<->,->}", "graphs": ["L", "R", "B"]},
	  "check": {"maxHorizon": 5},
	  "expect": "impossible"
	}`,
	`{
	  "name": "unrestricted2",
	  "description": "every graph on two processes, every round",
	  "n": 2,
	  "adversary": {"op": "unrestricted"},
	  "check": {"maxHorizon": 4},
	  "expect": "impossible"
	}`,
	`{
	  "name": "lossbound-3-1",
	  "description": "n=3, at most one message lost per round ([22]: below the isolation threshold)",
	  "n": 3,
	  "adversary": {"op": "loss-bounded", "f": 1},
	  "check": {"maxHorizon": 3},
	  "expect": "solvable"
	}`,
	`{
	  "name": "stable-w2",
	  "description": "eventually-stable root component, chaos {<-,<->}, stable {->}, window 2 ([23])",
	  "n": 2,
	  "graphs": {"L": "2->1", "R": "1->2", "B": "1<->2"},
	  "adversary": {"op": "eventually-stable", "chaos": ["L", "B"], "stable": ["R"], "window": 2},
	  "check": {"maxHorizon": 5},
	  "expect": "solvable"
	}`,
	`{
	  "name": "deadline-stable-w1-d3",
	  "description": "deadline compactification of the eventually-stable family (window 1, deadline 3)",
	  "n": 2,
	  "graphs": {"L": "2->1", "R": "1->2", "B": "1<->2"},
	  "adversary": {"op": "deadline-stable", "chaos": ["L", "B"], "stable": ["R"], "window": 1, "deadline": 3},
	  "check": {"maxHorizon": 7},
	  "expect": "solvable"
	}`,
	`{
	  "name": "committed-d2",
	  "description": "Fevat-Godard committed suffix: free lossy link, committed {<-,->} from round 2",
	  "n": 2,
	  "graphs": {"L": "2->1", "R": "1->2", "B": "1<->2"},
	  "adversary": {"op": "committed-suffix", "free": ["L", "R", "B"], "commit": ["L", "R"], "deadline": 2},
	  "check": {"maxHorizon": 7},
	  "expect": "solvable"
	}`,
	`{
	  "name": "lasso-pair",
	  "description": "the explicit finite adversary {<-^w, ->^w} (Cor. 5.6 territory)",
	  "n": 2,
	  "graphs": {"L": "2->1", "R": "1->2"},
	  "adversary": {"op": "lasso-set", "words": [{"cycle": ["L"]}, {"cycle": ["R"]}]},
	  "check": {"maxHorizon": 5},
	  "expect": "solvable"
	}`,
	`{
	  "name": "exclusion-fair",
	  "description": "lossy link minus the fair word <->^w (Sec. 6.3 / [9])",
	  "n": 2,
	  "graphs": {"L": "2->1", "R": "1->2", "B": "1<->2"},
	  "adversary": {
	    "op": "exclusion",
	    "arg": {"op": "oblivious", "graphs": ["L", "R", "B"]},
	    "words": [{"cycle": ["B"]}]
	  },
	  "check": {"maxHorizon": 5}
	}`,
}

var registryOnce = sync.OnceValues(func() ([]*Scenario, error) {
	out := make([]*Scenario, 0, len(registryDocs))
	for _, doc := range registryDocs {
		s, err := Parse([]byte(doc))
		if err != nil {
			return nil, fmt.Errorf("scenario: built-in registry: %w", err)
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
})

// Registry returns the built-in scenarios, one per seed adversary family,
// sorted by name. The returned scenarios are shared — treat them as
// read-only. The error is non-nil only if a built-in document is broken,
// which the package's tests rule out.
func Registry() ([]*Scenario, error) {
	scenarios, err := registryOnce()
	if err != nil {
		return nil, err
	}
	return append([]*Scenario(nil), scenarios...), nil
}

// Lookup returns the built-in scenario with the given name.
func Lookup(name string) (*Scenario, bool) {
	scenarios, err := registryOnce()
	if err != nil {
		return nil, false
	}
	for _, s := range scenarios {
		if s.Name == name {
			return s, true
		}
	}
	return nil, false
}
