// Package scenario defines the declarative JSON scenario format: a named
// workload consisting of a message adversary — written as a combinator
// expression over the ma package's algebra — plus checker options and an
// optional expected verdict.
//
// A scenario document looks like:
//
//	{
//	  "name": "chaos-then-stable",
//	  "description": "two rounds of anything, then the reduced lossy link",
//	  "n": 2,
//	  "graphs": {"L": "2->1", "R": "1->2"},
//	  "adversary": {
//	    "op": "concat",
//	    "first": {"op": "unrestricted"},
//	    "rounds": 2,
//	    "then": {"op": "oblivious", "graphs": ["L", "R"]}
//	  },
//	  "check": {"maxHorizon": 5},
//	  "expect": "solvable"
//	}
//
// Graph operands are resolved against the named "graphs" table first and
// otherwise parsed as edge lists in the usual "1->2, 2<->3" syntax, so
// one-off graphs need no table entry. The expression grammar (operand
// fields per op) is documented on Expr; the full combinator semantics
// table lives in DESIGN.md.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"topocon/internal/check"
	"topocon/internal/graph"
	"topocon/internal/ma"
)

// Spec is the raw JSON document of a scenario.
type Spec struct {
	// Name identifies the scenario (registry key, CLI display).
	Name string `json:"name"`
	// Description is a one-line human-readable summary.
	Description string `json:"description,omitempty"`
	// N is the number of processes (1..graph.MaxNodes).
	N int `json:"n"`
	// Graphs names reusable round graphs, values in edge-list syntax.
	Graphs map[string]string `json:"graphs,omitempty"`
	// Adversary is the combinator expression tree.
	Adversary *Expr `json:"adversary"`
	// Check carries the checker options (zero values select defaults).
	Check *CheckSpec `json:"check,omitempty"`
	// Expect is the optional expected verdict: "solvable", "impossible"
	// or "unknown".
	Expect string `json:"expect,omitempty"`
}

// CheckSpec mirrors check.Options in JSON form.
type CheckSpec struct {
	InputDomain  int `json:"inputDomain,omitempty"`
	MaxHorizon   int `json:"maxHorizon,omitempty"`
	MaxRuns      int `json:"maxRuns,omitempty"`
	DefaultValue int `json:"defaultValue,omitempty"`
	CertChainLen int `json:"certChainLen,omitempty"`
	LatencySlack int `json:"latencySlack,omitempty"`
}

// Expr is one node of the combinator expression tree. Op selects the
// combinator; the other fields are its operands:
//
//	op                  operands
//	"oblivious"         graphs (≥1 refs)
//	"unrestricted"      — (all graphs on n nodes; n ≤ 4)
//	"loss-bounded"      f (≥0 lost messages per round; n ≤ 4)
//	"eventually-stable" chaos, stable (refs), window
//	"deadline-stable"   chaos, stable, window, deadline
//	"committed-suffix"  free, commit (refs), deadline
//	"lasso-set"         words (≥1)
//	"exclusion"         arg (base), words (≥1)
//	"union"             args (≥1)
//	"intersect"         args (exactly 2)
//	"concat"            first, rounds, then
//	"filter"            arg, pred (name), degree (min-out-degree only)
//	"window-stable"     arg, window
//
// Graph references ("refs") are names from the spec's graphs table or
// inline edge lists.
type Expr struct {
	Op   string `json:"op"`
	Name string `json:"name,omitempty"`

	Args  []*Expr `json:"args,omitempty"`
	First *Expr   `json:"first,omitempty"`
	Then  *Expr   `json:"then,omitempty"`
	Arg   *Expr   `json:"arg,omitempty"`

	Graphs []string `json:"graphs,omitempty"`
	Chaos  []string `json:"chaos,omitempty"`
	Stable []string `json:"stable,omitempty"`
	Free   []string `json:"free,omitempty"`
	Commit []string `json:"commit,omitempty"`

	Words []WordSpec `json:"words,omitempty"`

	Pred     string `json:"pred,omitempty"`
	Degree   int    `json:"degree,omitempty"`
	Rounds   int    `json:"rounds,omitempty"`
	Window   int    `json:"window,omitempty"`
	Deadline int    `json:"deadline,omitempty"`
	F        int    `json:"f,omitempty"`
}

// WordSpec is an ultimately-periodic graph word u·v^ω in reference form.
type WordSpec struct {
	Prefix []string `json:"prefix,omitempty"`
	Cycle  []string `json:"cycle"`
}

// Scenario is a parsed and built scenario: the adversary is constructed
// and ready for an Analyzer session.
type Scenario struct {
	// Name and Description are copied from the spec.
	Name        string
	Description string
	// Adversary is the built combinator expression.
	Adversary ma.Adversary
	// Options are the checker options of the spec (zero values intact;
	// the Analyzer applies its defaults).
	Options check.Options
	// Expect is the expected verdict, or 0 when the spec does not pin one.
	Expect check.Verdict
	// Spec is the raw document the scenario was built from.
	Spec Spec
}

// Fingerprint returns the canonical behavioural hash of the scenario's
// adversary at the given exploration depth (see ma.Fingerprint).
func (s *Scenario) Fingerprint(depth int) string {
	return ma.Fingerprint(s.Adversary, depth)
}

// maxEnumeratedNodes caps the ops that enumerate all graphs on n nodes
// (2^(n(n-1)) of them): beyond 4 nodes the set no longer fits a workload.
const maxEnumeratedNodes = 4

// maxSpecRounds caps every round-valued field of a spec (concat rounds,
// stability windows, deadlines). Analysis horizons are single digits; the
// cap only rejects hostile documents that would otherwise inflate
// combinator state spaces (the restriction combinators' construction-time
// pruning explores them) far past any analysable size.
const maxSpecRounds = 10000

// Parse decodes, validates and builds a scenario document. Unknown fields
// are rejected, graph references are resolved against the named table or
// parsed as edge lists, and every combinator constructor's own validation
// applies (node-count agreement, non-empty restrictions, ...).
func Parse(data []byte) (*Scenario, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var spec Spec
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("scenario: trailing data after document")
	}
	return Build(spec)
}

// Load reads and parses a scenario file.
//
//topocon:export
func Load(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	s, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// Build constructs the scenario from an already-decoded spec.
func Build(spec Spec) (*Scenario, error) {
	if spec.Name == "" {
		return nil, fmt.Errorf("scenario: missing name")
	}
	if spec.N < 1 || spec.N > graph.MaxNodes {
		return nil, fmt.Errorf("scenario %q: n=%d out of range [1,%d]", spec.Name, spec.N, graph.MaxNodes)
	}
	if spec.Adversary == nil {
		return nil, fmt.Errorf("scenario %q: missing adversary expression", spec.Name)
	}
	expect, err := parseExpect(spec.Expect)
	if err != nil {
		return nil, fmt.Errorf("scenario %q: %w", spec.Name, err)
	}
	b := &builder{spec: &spec, named: make(map[string]graph.Graph, len(spec.Graphs))}
	for name, src := range spec.Graphs {
		g, err := graph.Parse(spec.N, src)
		if err != nil {
			return nil, fmt.Errorf("scenario %q: graph %q: %w", spec.Name, name, err)
		}
		b.named[name] = g
	}
	adv, err := b.build(spec.Adversary)
	if err != nil {
		return nil, fmt.Errorf("scenario %q: %w", spec.Name, err)
	}
	s := &Scenario{
		Name:        spec.Name,
		Description: spec.Description,
		Adversary:   adv,
		Expect:      expect,
		Spec:        spec,
	}
	if c := spec.Check; c != nil {
		s.Options = check.Options{
			InputDomain:  c.InputDomain,
			MaxHorizon:   c.MaxHorizon,
			MaxRuns:      c.MaxRuns,
			DefaultValue: c.DefaultValue,
			CertChainLen: c.CertChainLen,
			LatencySlack: c.LatencySlack,
		}
	}
	return s, nil
}

func parseExpect(s string) (check.Verdict, error) {
	switch s {
	case "":
		return 0, nil
	case "solvable":
		return check.VerdictSolvable, nil
	case "impossible":
		return check.VerdictImpossible, nil
	case "unknown":
		return check.VerdictUnknown, nil
	default:
		return 0, fmt.Errorf("unknown expected verdict %q", s)
	}
}

type builder struct {
	spec  *Spec
	named map[string]graph.Graph
}

// graph resolves one graph reference: a named table entry or an inline
// edge list.
func (b *builder) graph(ref string) (graph.Graph, error) {
	if g, ok := b.named[ref]; ok {
		return g, nil
	}
	g, err := graph.Parse(b.spec.N, ref)
	if err != nil {
		return graph.Graph{}, fmt.Errorf("graph ref %q: %w", ref, err)
	}
	return g, nil
}

func (b *builder) graphs(refs []string) ([]graph.Graph, error) {
	out := make([]graph.Graph, len(refs))
	for i, ref := range refs {
		g, err := b.graph(ref)
		if err != nil {
			return nil, err
		}
		out[i] = g
	}
	return out, nil
}

func (b *builder) word(w WordSpec) (ma.GraphWord, error) {
	prefix, err := b.graphs(w.Prefix)
	if err != nil {
		return ma.GraphWord{}, err
	}
	cycle, err := b.graphs(w.Cycle)
	if err != nil {
		return ma.GraphWord{}, err
	}
	return ma.NewGraphWord(prefix, cycle)
}

func (b *builder) words(specs []WordSpec) ([]ma.GraphWord, error) {
	out := make([]ma.GraphWord, len(specs))
	for i, w := range specs {
		word, err := b.word(w)
		if err != nil {
			return nil, err
		}
		out[i] = word
	}
	return out, nil
}

// pred resolves a named graph predicate for the filter op.
func (b *builder) pred(e *Expr) (ma.GraphPred, error) {
	switch e.Pred {
	case "strongly-connected":
		return ma.PredStronglyConnected(), nil
	case "min-out-degree":
		if e.Degree < 0 {
			return ma.GraphPred{}, fmt.Errorf("filter: negative degree %d", e.Degree)
		}
		return ma.PredMinOutDegree(e.Degree), nil
	case "rooted":
		return ma.PredRooted(), nil
	case "star":
		return ma.PredStar(), nil
	case "nonsplit":
		return ma.PredNonsplit(), nil
	case "":
		return ma.GraphPred{}, fmt.Errorf("filter: missing pred")
	default:
		return ma.GraphPred{}, fmt.Errorf("filter: unknown pred %q", e.Pred)
	}
}

// namelessOps are the expression ops whose ma constructor takes no name:
// a spec naming one of them would be silently ignored, so it is rejected.
var namelessOps = map[string]bool{
	"unrestricted":  true,
	"loss-bounded":  true,
	"exclusion":     true,
	"window-stable": true,
}

func (b *builder) build(e *Expr) (ma.Adversary, error) {
	if e == nil {
		return nil, fmt.Errorf("missing expression node")
	}
	if e.Name != "" && namelessOps[e.Op] {
		return nil, fmt.Errorf("%s: op does not accept a name (got %q)", e.Op, e.Name)
	}
	for _, rounds := range []int{e.Rounds, e.Window, e.Deadline} {
		if rounds > maxSpecRounds {
			return nil, fmt.Errorf("%s: round-valued field %d exceeds the cap %d", e.Op, rounds, maxSpecRounds)
		}
	}
	switch e.Op {
	case "oblivious":
		set, err := b.graphs(e.Graphs)
		if err != nil {
			return nil, err
		}
		return ma.NewOblivious(e.Name, set)

	case "unrestricted":
		if b.spec.N > maxEnumeratedNodes {
			return nil, fmt.Errorf("unrestricted: n=%d exceeds the enumeration cap %d", b.spec.N, maxEnumeratedNodes)
		}
		return ma.Unrestricted(b.spec.N), nil

	case "loss-bounded":
		if b.spec.N > maxEnumeratedNodes {
			return nil, fmt.Errorf("loss-bounded: n=%d exceeds the enumeration cap %d", b.spec.N, maxEnumeratedNodes)
		}
		if e.F < 0 {
			return nil, fmt.Errorf("loss-bounded: negative f %d", e.F)
		}
		return ma.LossBounded(b.spec.N, e.F), nil

	case "eventually-stable":
		chaos, err := b.graphs(e.Chaos)
		if err != nil {
			return nil, err
		}
		stable, err := b.graphs(e.Stable)
		if err != nil {
			return nil, err
		}
		return ma.NewEventuallyStable(e.Name, chaos, stable, e.Window)

	case "deadline-stable":
		chaos, err := b.graphs(e.Chaos)
		if err != nil {
			return nil, err
		}
		stable, err := b.graphs(e.Stable)
		if err != nil {
			return nil, err
		}
		inner, err := ma.NewEventuallyStable(e.Name, chaos, stable, e.Window)
		if err != nil {
			return nil, err
		}
		return ma.NewDeadlineStable(inner, e.Deadline)

	case "committed-suffix":
		free, err := b.graphs(e.Free)
		if err != nil {
			return nil, err
		}
		commit, err := b.graphs(e.Commit)
		if err != nil {
			return nil, err
		}
		return ma.NewCommittedSuffix(e.Name, free, commit, e.Deadline)

	case "lasso-set":
		words, err := b.words(e.Words)
		if err != nil {
			return nil, err
		}
		return ma.NewLassoSet(e.Name, words)

	case "exclusion":
		base, err := b.build(e.Arg)
		if err != nil {
			return nil, err
		}
		words, err := b.words(e.Words)
		if err != nil {
			return nil, err
		}
		return ma.NewExclusion(base, words)

	case "union":
		members := make([]ma.Adversary, len(e.Args))
		for i, arg := range e.Args {
			m, err := b.build(arg)
			if err != nil {
				return nil, err
			}
			members[i] = m
		}
		return ma.NewUnion(e.Name, members...)

	case "intersect":
		if len(e.Args) != 2 {
			return nil, fmt.Errorf("intersect: need exactly 2 args, got %d", len(e.Args))
		}
		left, err := b.build(e.Args[0])
		if err != nil {
			return nil, err
		}
		right, err := b.build(e.Args[1])
		if err != nil {
			return nil, err
		}
		return ma.NewIntersect(e.Name, left, right)

	case "concat":
		first, err := b.build(e.First)
		if err != nil {
			return nil, err
		}
		then, err := b.build(e.Then)
		if err != nil {
			return nil, err
		}
		return ma.NewConcat(e.Name, first, e.Rounds, then)

	case "filter":
		base, err := b.build(e.Arg)
		if err != nil {
			return nil, err
		}
		pred, err := b.pred(e)
		if err != nil {
			return nil, err
		}
		return ma.NewFilter(base, e.Name, pred)

	case "window-stable":
		base, err := b.build(e.Arg)
		if err != nil {
			return nil, err
		}
		return ma.NewWindowStable(base, e.Window)

	case "":
		return nil, fmt.Errorf("expression node missing op")
	default:
		return nil, fmt.Errorf("unknown op %q", e.Op)
	}
}
