package scenario

import (
	"strings"
	"testing"

	"topocon/internal/check"
	"topocon/internal/ma"
)

func TestParseBuildsCombinators(t *testing.T) {
	doc := `{
	  "name": "demo",
	  "description": "intersection with a window obligation",
	  "n": 2,
	  "graphs": {"L": "2->1", "R": "1->2", "B": "1<->2"},
	  "adversary": {
	    "op": "intersect",
	    "args": [
	      {"op": "window-stable", "arg": {"op": "oblivious", "graphs": ["L", "R", "B"]}, "window": 2},
	      {"op": "eventually-stable", "chaos": ["L", "B", ""], "stable": ["R"], "window": 1}
	    ]
	  },
	  "check": {"maxHorizon": 4, "latencySlack": 1},
	  "expect": "unknown"
	}`
	s, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "demo" || s.Adversary.N() != 2 {
		t.Fatalf("bad scenario %+v", s)
	}
	if _, ok := s.Adversary.(*ma.Intersect); !ok {
		t.Fatalf("adversary is %T, want *ma.Intersect", s.Adversary)
	}
	if s.Options.MaxHorizon != 4 || s.Options.LatencySlack != 1 {
		t.Errorf("options = %+v", s.Options)
	}
	if s.Expect != check.VerdictUnknown {
		t.Errorf("expect = %v", s.Expect)
	}
	if err := ma.Validate(s.Adversary, 5); err != nil {
		t.Errorf("built adversary violates the contract: %v", err)
	}
	if s.Fingerprint(4) != ma.Fingerprint(s.Adversary, 4) {
		t.Error("Fingerprint must delegate to ma.Fingerprint")
	}
}

func TestParseInlineGraphRefs(t *testing.T) {
	doc := `{
	  "name": "inline",
	  "n": 3,
	  "adversary": {"op": "oblivious", "graphs": ["1->2, 2->3", "1<->2, 1<->3, 2<->3"]}
	}`
	s, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	ob, ok := s.Adversary.(*ma.Oblivious)
	if !ok || len(ob.Graphs()) != 2 {
		t.Fatalf("adversary = %v", s.Adversary)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{"bad json", `{`, "scenario"},
		{"unknown field", `{"name":"x","n":2,"bogus":1,"adversary":{"op":"unrestricted"}}`, "bogus"},
		{"trailing data", `{"name":"x","n":2,"adversary":{"op":"unrestricted"}} {}`, "trailing"},
		{"missing name", `{"n":2,"adversary":{"op":"unrestricted"}}`, "missing name"},
		{"bad n", `{"name":"x","n":0,"adversary":{"op":"unrestricted"}}`, "out of range"},
		{"missing adversary", `{"name":"x","n":2}`, "missing adversary"},
		{"bad expect", `{"name":"x","n":2,"adversary":{"op":"unrestricted"},"expect":"perhaps"}`, "unknown expected verdict"},
		{"unknown op", `{"name":"x","n":2,"adversary":{"op":"teleport"}}`, "unknown op"},
		{"missing op", `{"name":"x","n":2,"adversary":{}}`, "missing op"},
		{"bad graph ref", `{"name":"x","n":2,"adversary":{"op":"oblivious","graphs":["9->9"]}}`, "graph ref"},
		{"bad named graph", `{"name":"x","n":2,"graphs":{"G":"zap"},"adversary":{"op":"unrestricted"}}`, "graph \"G\""},
		{"intersect arity", `{"name":"x","n":2,"adversary":{"op":"intersect","args":[{"op":"unrestricted"}]}}`, "exactly 2"},
		{"unknown pred", `{"name":"x","n":2,"adversary":{"op":"filter","arg":{"op":"unrestricted"},"pred":"pretty"}}`, "unknown pred"},
		{"missing pred", `{"name":"x","n":2,"adversary":{"op":"filter","arg":{"op":"unrestricted"}}}`, "missing pred"},
		{"enumeration cap", `{"name":"x","n":6,"adversary":{"op":"unrestricted"}}`, "enumeration cap"},
		{"concat missing arm", `{"name":"x","n":2,"adversary":{"op":"concat","rounds":1,"then":{"op":"unrestricted"}}}`, "missing expression"},
		{"empty word cycle", `{"name":"x","n":2,"adversary":{"op":"lasso-set","words":[{"cycle":[]}]}}`, "non-empty cycle"},
		{"name on nameless op", `{"name":"x","n":2,"adversary":{"op":"window-stable","name":"my-adv","arg":{"op":"unrestricted"},"window":2}}`, "does not accept a name"},
		{"rounds cap", `{"name":"x","n":2,"adversary":{"op":"concat","first":{"op":"unrestricted"},"rounds":3000000,"then":{"op":"unrestricted"}}}`, "exceeds the cap"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse([]byte(c.doc))
			if err == nil {
				t.Fatalf("Parse succeeded, want error containing %q", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

// TestRegistrySeedFamilies: every built-in scenario parses, satisfies the
// adversary contract, and carries a usable option set; Lookup finds each.
func TestRegistrySeedFamilies(t *testing.T) {
	scenarios, err := Registry()
	if err != nil {
		t.Fatal(err)
	}
	if len(scenarios) < 8 {
		t.Fatalf("registry has %d scenarios, want >= 8", len(scenarios))
	}
	seen := map[string]bool{}
	for _, s := range scenarios {
		if seen[s.Name] {
			t.Errorf("duplicate registry name %q", s.Name)
		}
		seen[s.Name] = true
		if s.Description == "" {
			t.Errorf("%s: missing description", s.Name)
		}
		if err := ma.Validate(s.Adversary, 5); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
		got, ok := Lookup(s.Name)
		if !ok || got.Name != s.Name {
			t.Errorf("Lookup(%q) = %v, %v", s.Name, got, ok)
		}
	}
	if _, ok := Lookup("no-such-scenario"); ok {
		t.Error("Lookup of unknown name must fail")
	}
	// Registry returns a fresh slice each call.
	again, _ := Registry()
	again[0] = nil
	fresh, _ := Registry()
	if fresh[0] == nil {
		t.Error("Registry must not expose its backing slice")
	}
}

// TestRegistryVerdicts runs every built-in scenario with a pinned expected
// verdict through an Analyzer session and checks the outcome.
func TestRegistryVerdicts(t *testing.T) {
	if testing.Short() {
		t.Skip("analysis sweep in -short mode")
	}
	scenarios, err := Registry()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range scenarios {
		if s.Expect == 0 {
			continue
		}
		s := s
		t.Run(s.Name, func(t *testing.T) {
			res, err := check.Consensus(s.Adversary, s.Options)
			if err != nil {
				t.Fatal(err)
			}
			if res.Verdict != s.Expect {
				t.Errorf("verdict = %v, want %v", res.Verdict, s.Expect)
			}
		})
	}
}
