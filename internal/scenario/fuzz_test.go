package scenario

import (
	"testing"

	"topocon/internal/ma"
)

// FuzzParse: the scenario parser must never panic, and every successfully
// built adversary must satisfy the ma.Adversary contract to a shallow
// depth (mirroring internal/graph's FuzzParse for the edge-list syntax).
func FuzzParse(f *testing.F) {
	for _, doc := range registryDocs {
		f.Add([]byte(doc))
	}
	f.Add([]byte(`{"name":"x","n":2,"adversary":{"op":"concat","first":{"op":"unrestricted"},"rounds":1,"then":{"op":"oblivious","graphs":["1->2"]}}}`))
	f.Add([]byte(`{"name":"x","n":2,"adversary":{"op":"filter","arg":{"op":"unrestricted"},"pred":"nonsplit"}}`))
	f.Add([]byte(`{"name":"x","n":2,"adversary":{"op":"window-stable","arg":{"op":"unrestricted"},"window":2}}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`garbage`))
	f.Add([]byte(`{"name":"x","n":99,"adversary":{"op":"unrestricted"}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(data)
		if err != nil {
			return
		}
		if s.Adversary == nil {
			t.Fatal("successful parse with nil adversary")
		}
		if err := ma.Validate(s.Adversary, 2); err != nil {
			t.Fatalf("built adversary violates the contract: %v", err)
		}
	})
}
