package scenario

import (
	"encoding/json"
	"testing"

	"topocon/internal/ma"
)

// FuzzParse: the scenario parser must never panic, and every successfully
// built adversary must satisfy the ma.Adversary contract to a shallow
// depth (mirroring internal/graph's FuzzParse for the edge-list syntax).
func FuzzParse(f *testing.F) {
	for _, doc := range registryDocs {
		f.Add([]byte(doc))
	}
	f.Add([]byte(`{"name":"x","n":2,"adversary":{"op":"concat","first":{"op":"unrestricted"},"rounds":1,"then":{"op":"oblivious","graphs":["1->2"]}}}`))
	f.Add([]byte(`{"name":"x","n":2,"adversary":{"op":"filter","arg":{"op":"unrestricted"},"pred":"nonsplit"}}`))
	f.Add([]byte(`{"name":"x","n":2,"adversary":{"op":"window-stable","arg":{"op":"unrestricted"},"window":2}}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`garbage`))
	f.Add([]byte(`{"name":"x","n":99,"adversary":{"op":"unrestricted"}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(data)
		if err != nil {
			return
		}
		if s.Adversary == nil {
			t.Fatal("successful parse with nil adversary")
		}
		if err := ma.Validate(s.Adversary, 2); err != nil {
			t.Fatalf("built adversary violates the contract: %v", err)
		}
	})
}

// FuzzTemplateExpand: template parsing and grid expansion must never panic;
// hostile params blocks (unbound refs, duplicates, empty ranges, oversized
// grids) must be rejected with errors; and when expansion succeeds, every
// concrete cell must round-trip through the strict scenario parser with its
// behavioural fingerprint intact.
func FuzzTemplateExpand(f *testing.F) {
	f.Add([]byte(lossboundTemplateDoc))
	f.Add([]byte(`{"name":"x","params":{"w":"2..3"},"n":2,"graphs":{"L":"2->1","R":"1->2"},"adversary":{"op":"window-stable","arg":{"op":"oblivious","graphs":["L","R"]},"window":"${w}"},"check":{"maxHorizon":3}}`))
	f.Add([]byte(`{"name":"x","params":{"c":[1,2,3]},"n":3,"graphs":{"S":"${c}->1, ${c}->2, ${c}->3"},"adversary":{"op":"oblivious","graphs":["S"]}}`))
	f.Add([]byte(`{"name":"x","params":{"k":"5..3"},"n":2,"adversary":{"op":"unrestricted"}}`))
	f.Add([]byte(`{"name":"x","params":{"k":[1,1]},"n":2,"adversary":{"op":"unrestricted"}}`))
	f.Add([]byte(`{"name":"x","params":{},"n":2,"adversary":{"op":"unrestricted"}}`))
	f.Add([]byte(`{"params":"zap"}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		tpl, err := ParseTemplate(data)
		if err != nil {
			return
		}
		if tpl.CellCount() < 1 || tpl.CellCount() > maxGridCells {
			t.Fatalf("accepted grid of %d cells", tpl.CellCount())
		}
		cells, err := tpl.Expand()
		if err != nil {
			return // a non-first cell may be individually invalid
		}
		if len(cells) != tpl.CellCount() {
			t.Fatalf("expanded %d cells, CellCount says %d", len(cells), tpl.CellCount())
		}
		for _, cell := range cells {
			if cell.Scenario == nil || cell.Scenario.Adversary == nil {
				t.Fatal("expanded cell with nil scenario")
			}
			raw, err := json.Marshal(cell.Scenario.Spec)
			if err != nil {
				t.Fatalf("cell %s: marshal: %v", cell.Scenario.Name, err)
			}
			again, err := Parse(raw)
			if err != nil {
				t.Fatalf("cell %s does not round-trip through Parse: %v", cell.Scenario.Name, err)
			}
			if again.Fingerprint(2) != cell.Scenario.Fingerprint(2) {
				t.Fatalf("cell %s: fingerprint changed across round-trip", cell.Scenario.Name)
			}
		}
	})
}
