// Template support: a template is a scenario document carrying an extra
// top-level "params" block that declares integer-valued parameters, each
// with a finite value set. The rest of the document may reference the
// parameters as ${name} placeholders — inside graph definitions, expression
// fields (graph refs as well as round-valued integers such as "rounds",
// "window" or "n"), and check options. Expansion substitutes every binding
// combination into the body and parses the result with the ordinary strict
// scenario parser, producing the template's concrete scenario grid.
//
// A template document looks like:
//
//	{
//	  "name": "lossbound-saturation",
//	  "params": {"f": "0..4", "horizon": [3, 4]},
//	  "n": 2,
//	  "adversary": {"op": "loss-bounded", "f": "${f}"},
//	  "check": {"maxHorizon": "${horizon}"}
//	}
//
// A placeholder that is the entire JSON string ("f": "${f}") substitutes as
// a bare integer, so integer-typed spec fields can be parameterized; a
// placeholder embedded in a longer string ("S": "1->${c}") substitutes its
// decimal text. Cells are named name[p1=v1,p2=v2] with parameters in
// name order, and are enumerated in odometer order over the same ordering
// (last parameter varies fastest).
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Expansion caps: a template describes work for the sweep engine, so a
// hostile or typo'd document must not be able to request an unbounded grid.
const (
	// maxTemplateParams bounds the number of declared parameters.
	maxTemplateParams = 6
	// maxParamValues bounds one parameter's value-set size (range width or
	// list length).
	maxParamValues = 64
	// maxGridCells bounds the full cross-product size.
	maxGridCells = 2048
	// maxParamMagnitude bounds parameter values; far beyond any field a
	// scenario spec accepts, but small enough that decimal substitution
	// cannot blow up document sizes.
	maxParamMagnitude = 1_000_000_000
)

// paramNameRE is the parameter-name grammar, shared by declarations and
// ${...} references.
var paramNameRE = regexp.MustCompile(`^[a-zA-Z][a-zA-Z0-9_]*$`)

// Param is one declared template parameter with its expanded value set, in
// declaration form order (ranges ascending, lists as written).
type Param struct {
	Name   string `json:"name"`
	Values []int  `json:"values"`
}

// Binding is one parameter's value in a concrete grid cell.
type Binding struct {
	Param string `json:"param"`
	Value int    `json:"value"`
}

// Cell is one concrete scenario of an expanded template grid.
type Cell struct {
	// Bindings hold the cell's parameter values, in the template's
	// canonical (name-sorted) parameter order.
	Bindings []Binding
	// Scenario is the built concrete scenario; its name is the template
	// name suffixed with the bindings, e.g. "lossbound[f=2,horizon=3]".
	Scenario *Scenario
}

// Template is a parsed parameterized scenario template.
type Template struct {
	// Name and Description are copied from the document.
	Name        string
	Description string
	// Params are the declared parameters, sorted by name — the canonical
	// enumeration order of the grid (last parameter varies fastest).
	Params []Param

	// body is the decoded document tree without the params block; cells
	// substitute into deep copies of it.
	body map[string]any
}

// IsTemplate reports whether the document declares a params block — i.e.
// whether it must be parsed with ParseTemplate rather than Parse. It does
// not validate the document.
func IsTemplate(data []byte) bool {
	var probe struct {
		Params json.RawMessage `json:"params"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return false
	}
	return probe.Params != nil
}

// ParseTemplate decodes and validates a template document: the params block
// must declare at least one parameter (use Parse for concrete scenarios),
// every declaration must be a non-empty duplicate-free integer range or
// list within the expansion caps, every ${...} reference in the body must
// resolve to a declared parameter, and every declared parameter must be
// referenced. The first grid cell is built eagerly so a structurally broken
// body fails at parse time, not at expansion time.
//
//topocon:export
func ParseTemplate(data []byte) (*Template, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	var doc map[string]any
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("template: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("template: trailing data after document")
	}
	rawParams, ok := doc["params"]
	if !ok {
		return nil, fmt.Errorf("template: missing params block (concrete scenarios go through Parse)")
	}
	delete(doc, "params")
	params, err := parseParams(data, rawParams)
	if err != nil {
		return nil, fmt.Errorf("template: %w", err)
	}
	name, _ := doc["name"].(string)
	if name == "" {
		return nil, fmt.Errorf("template: missing name")
	}
	desc, _ := doc["description"].(string)
	t := &Template{Name: name, Description: desc, Params: params, body: doc}
	if cells := t.CellCount(); cells > maxGridCells {
		return nil, fmt.Errorf("template %q: grid of %d cells exceeds the cap %d", name, cells, maxGridCells)
	}
	if err := t.checkReferences(); err != nil {
		return nil, fmt.Errorf("template %q: %w", name, err)
	}
	// Eagerly build the first cell: placeholder plumbing aside, the body
	// must be a well-formed scenario document.
	if _, err := t.cell(t.firstBinding()); err != nil {
		return nil, err
	}
	return t, nil
}

// LoadTemplate reads and parses a template file.
func LoadTemplate(path string) (*Template, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("template: %w", err)
	}
	t, err := ParseTemplate(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}

// CellCount returns the size of the template's concrete scenario grid.
func (t *Template) CellCount() int {
	cells := 1
	for _, p := range t.Params {
		cells *= len(p.Values)
	}
	return cells
}

// Expand builds every concrete scenario of the grid, in canonical odometer
// order over the name-sorted parameters (last parameter varies fastest).
// Every cell is parsed by the strict scenario parser; a binding that
// produces an invalid scenario (e.g. a process count driven out of range)
// fails the whole expansion with the offending cell named in the error.
func (t *Template) Expand() ([]Cell, error) {
	out := make([]Cell, 0, t.CellCount())
	idx := make([]int, len(t.Params))
	for {
		cell, err := t.cell(idx)
		if err != nil {
			return nil, err
		}
		out = append(out, cell)
		// Advance the odometer, last parameter fastest.
		i := len(idx) - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(t.Params[i].Values) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			return out, nil
		}
	}
}

// firstBinding is the all-zero odometer position.
func (t *Template) firstBinding() []int { return make([]int, len(t.Params)) }

// cell builds the concrete scenario at one odometer position.
func (t *Template) cell(idx []int) (Cell, error) {
	bind := make(map[string]int, len(t.Params))
	bindings := make([]Binding, len(t.Params))
	suffix := make([]string, len(t.Params))
	for i, p := range t.Params {
		v := p.Values[idx[i]]
		bind[p.Name] = v
		bindings[i] = Binding{Param: p.Name, Value: v}
		suffix[i] = fmt.Sprintf("%s=%d", p.Name, v)
	}
	cellName := fmt.Sprintf("%s[%s]", t.Name, strings.Join(suffix, ","))
	body, err := substitute(t.body, bind, nil)
	if err != nil {
		return Cell{}, fmt.Errorf("template cell %s: %w", cellName, err)
	}
	tree := body.(map[string]any)
	tree["name"] = cellName
	data, err := json.Marshal(tree)
	if err != nil {
		return Cell{}, fmt.Errorf("template cell %s: %w", cellName, err)
	}
	s, err := Parse(data)
	if err != nil {
		return Cell{}, fmt.Errorf("template cell %s: %w", cellName, err)
	}
	return Cell{Bindings: bindings, Scenario: s}, nil
}

// checkReferences substitutes a probe binding purely to validate the
// placeholder structure: every reference bound, no placeholder in object
// keys, and every declared parameter used somewhere in the body.
func (t *Template) checkReferences() error {
	bind := make(map[string]int, len(t.Params))
	for _, p := range t.Params {
		bind[p.Name] = p.Values[0]
	}
	used := make(map[string]bool, len(t.Params))
	if _, err := substitute(t.body, bind, used); err != nil {
		return err
	}
	for _, p := range t.Params {
		if !used[p.Name] {
			return fmt.Errorf("param %q is declared but never referenced", p.Name)
		}
	}
	return nil
}

// parseParams decodes and validates the params block. The raw document is
// re-scanned token-wise to reject duplicate parameter declarations, which
// map decoding would silently collapse.
func parseParams(doc []byte, raw any) ([]Param, error) {
	decls, ok := raw.(map[string]any)
	if !ok {
		return nil, fmt.Errorf("params must be an object of name: range|list declarations")
	}
	if len(decls) == 0 {
		return nil, fmt.Errorf("params block declares no parameters")
	}
	if len(decls) > maxTemplateParams {
		return nil, fmt.Errorf("%d params exceed the cap %d", len(decls), maxTemplateParams)
	}
	if err := checkDuplicateParamKeys(doc); err != nil {
		return nil, err
	}
	out := make([]Param, 0, len(decls))
	for name, decl := range decls {
		if !paramNameRE.MatchString(name) {
			return nil, fmt.Errorf("invalid param name %q", name)
		}
		values, err := paramValues(decl)
		if err != nil {
			return nil, fmt.Errorf("param %q: %w", name, err)
		}
		out = append(out, Param{Name: name, Values: values})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// paramValues expands one declaration: a "lo..hi" range string, a JSON list
// of integers, or a single integer.
func paramValues(decl any) ([]int, error) {
	switch d := decl.(type) {
	case string:
		lo, hi, err := parseRange(d)
		if err != nil {
			return nil, err
		}
		if hi-lo+1 > maxParamValues {
			return nil, fmt.Errorf("range %s spans %d values, cap %d", d, hi-lo+1, maxParamValues)
		}
		values := make([]int, 0, hi-lo+1)
		for v := lo; v <= hi; v++ {
			values = append(values, v)
		}
		return values, nil
	case []any:
		if len(d) == 0 {
			return nil, fmt.Errorf("empty value list")
		}
		if len(d) > maxParamValues {
			return nil, fmt.Errorf("%d values exceed the cap %d", len(d), maxParamValues)
		}
		values := make([]int, len(d))
		seen := make(map[int]bool, len(d))
		for i, raw := range d {
			v, err := paramInt(raw)
			if err != nil {
				return nil, err
			}
			if seen[v] {
				return nil, fmt.Errorf("duplicate value %d", v)
			}
			seen[v] = true
			values[i] = v
		}
		return values, nil
	case json.Number:
		v, err := paramInt(d)
		if err != nil {
			return nil, err
		}
		return []int{v}, nil
	default:
		return nil, fmt.Errorf("declaration must be a \"lo..hi\" range, an integer list, or an integer")
	}
}

// parseRange parses "lo..hi" with lo ≤ hi.
func parseRange(s string) (lo, hi int, err error) {
	left, right, found := strings.Cut(s, "..")
	if !found {
		return 0, 0, fmt.Errorf("range %q is not of the form lo..hi", s)
	}
	if lo, err = rangeBound(left); err != nil {
		return 0, 0, fmt.Errorf("range %q: %w", s, err)
	}
	if hi, err = rangeBound(right); err != nil {
		return 0, 0, fmt.Errorf("range %q: %w", s, err)
	}
	if lo > hi {
		return 0, 0, fmt.Errorf("empty range %q (lo > hi)", s)
	}
	return lo, hi, nil
}

func rangeBound(s string) (int, error) {
	v, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil {
		return 0, fmt.Errorf("bad bound %q", s)
	}
	if v < -maxParamMagnitude || v > maxParamMagnitude {
		return 0, fmt.Errorf("bound %d out of range ±%d", v, maxParamMagnitude)
	}
	return v, nil
}

// paramInt narrows a decoded JSON value to an integer parameter value.
func paramInt(raw any) (int, error) {
	num, ok := raw.(json.Number)
	if !ok {
		return 0, fmt.Errorf("value %v is not an integer", raw)
	}
	v, err := strconv.Atoi(num.String())
	if err != nil {
		return 0, fmt.Errorf("value %v is not an integer", raw)
	}
	if v < -maxParamMagnitude || v > maxParamMagnitude {
		return 0, fmt.Errorf("value %d out of range ±%d", v, maxParamMagnitude)
	}
	return v, nil
}

// checkDuplicateParamKeys token-scans the document for params blocks:
// decoding through a map silently keeps only the last duplicate
// declaration (and only the last duplicate top-level block), which would
// make the grid depend on document order invisibly — so both a duplicated
// top-level "params" key and a duplicated name inside any params object
// are rejected.
func checkDuplicateParamKeys(doc []byte) error {
	dec := json.NewDecoder(bytes.NewReader(doc))
	if _, err := dec.Token(); err != nil { // opening {
		return err
	}
	blocks := 0
	for dec.More() {
		keyTok, err := dec.Token()
		if err != nil {
			return err
		}
		key, _ := keyTok.(string)
		if key != "params" {
			// Skip the value wholesale.
			var skip json.RawMessage
			if err := dec.Decode(&skip); err != nil {
				return err
			}
			continue
		}
		blocks++
		if blocks > 1 {
			return fmt.Errorf("duplicate params block")
		}
		var raw json.RawMessage
		if err := dec.Decode(&raw); err != nil {
			return err
		}
		if err := scanParamsObject(raw); err != nil {
			return err
		}
	}
	return nil
}

// scanParamsObject rejects duplicate declaration names inside one params
// object (non-objects are left to parseParams' shape error).
func scanParamsObject(raw []byte) error {
	dec := json.NewDecoder(bytes.NewReader(raw))
	open, err := dec.Token()
	if err != nil {
		return err
	}
	if open != json.Delim('{') {
		return nil
	}
	seen := map[string]bool{}
	for dec.More() {
		nameTok, err := dec.Token()
		if err != nil {
			return err
		}
		name, _ := nameTok.(string)
		if seen[name] {
			return fmt.Errorf("duplicate param %q", name)
		}
		seen[name] = true
		var skip json.RawMessage
		if err := dec.Decode(&skip); err != nil {
			return err
		}
	}
	return nil
}

// substitute deep-copies a decoded JSON tree, replacing ${name} references
// from the binding. A string that is exactly one placeholder becomes the
// bound integer (json.Number, so integer-typed spec fields accept it); a
// placeholder inside a longer string becomes its decimal text. used, when
// non-nil, collects the referenced parameter names.
func substitute(v any, bind map[string]int, used map[string]bool) (any, error) {
	switch node := v.(type) {
	case map[string]any:
		out := make(map[string]any, len(node))
		for k, child := range node {
			if strings.Contains(k, "${") {
				return nil, fmt.Errorf("placeholder in object key %q", k)
			}
			sub, err := substitute(child, bind, used)
			if err != nil {
				return nil, err
			}
			out[k] = sub
		}
		return out, nil
	case []any:
		out := make([]any, len(node))
		for i, child := range node {
			sub, err := substitute(child, bind, used)
			if err != nil {
				return nil, err
			}
			out[i] = sub
		}
		return out, nil
	case string:
		return substituteString(node, bind, used)
	default:
		return v, nil
	}
}

// substituteString resolves the placeholders of one string value.
func substituteString(s string, bind map[string]int, used map[string]bool) (any, error) {
	if !strings.Contains(s, "${") {
		return s, nil
	}
	var sb strings.Builder
	rest := s
	whole := true // does the string consist of exactly one placeholder?
	var only *int
	for {
		i := strings.Index(rest, "${")
		if i < 0 {
			sb.WriteString(rest)
			break
		}
		sb.WriteString(rest[:i])
		end := strings.Index(rest[i:], "}")
		if end < 0 {
			return nil, fmt.Errorf("unterminated placeholder in %q", s)
		}
		name := rest[i+2 : i+end]
		if !paramNameRE.MatchString(name) {
			return nil, fmt.Errorf("invalid placeholder ${%s} in %q", name, s)
		}
		v, ok := bind[name]
		if !ok {
			return nil, fmt.Errorf("unbound param ${%s} in %q", name, s)
		}
		if used != nil {
			used[name] = true
		}
		if i == 0 && i+end+1 == len(rest) && sb.Len() == 0 {
			only = &v
		} else {
			whole = false
		}
		sb.WriteString(strconv.Itoa(v))
		rest = rest[i+end+1:]
	}
	if whole && only != nil {
		return json.Number(strconv.Itoa(*only)), nil
	}
	return sb.String(), nil
}
