package scenario

import (
	"encoding/json"
	"strings"
	"testing"

	"topocon/internal/ma"
)

const lossboundTemplateDoc = `{
  "name": "lossbound-grid",
  "description": "loss budget times horizon",
  "params": {"f": "0..2", "horizon": [3, 4]},
  "n": 2,
  "adversary": {"op": "loss-bounded", "f": "${f}"},
  "check": {"maxHorizon": "${horizon}"}
}`

func TestTemplateExpandGrid(t *testing.T) {
	tpl, err := ParseTemplate([]byte(lossboundTemplateDoc))
	if err != nil {
		t.Fatal(err)
	}
	if tpl.Name != "lossbound-grid" || tpl.Description == "" {
		t.Fatalf("header = %q / %q", tpl.Name, tpl.Description)
	}
	// Params come back sorted by name: f before horizon.
	if len(tpl.Params) != 2 || tpl.Params[0].Name != "f" || tpl.Params[1].Name != "horizon" {
		t.Fatalf("params = %+v", tpl.Params)
	}
	if got := tpl.Params[0].Values; len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Fatalf("range f = %v", got)
	}
	if tpl.CellCount() != 6 {
		t.Fatalf("CellCount = %d, want 6", tpl.CellCount())
	}
	cells, err := tpl.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 6 {
		t.Fatalf("expanded %d cells, want 6", len(cells))
	}
	// Odometer order: last param (horizon) varies fastest.
	wantNames := []string{
		"lossbound-grid[f=0,horizon=3]", "lossbound-grid[f=0,horizon=4]",
		"lossbound-grid[f=1,horizon=3]", "lossbound-grid[f=1,horizon=4]",
		"lossbound-grid[f=2,horizon=3]", "lossbound-grid[f=2,horizon=4]",
	}
	for i, cell := range cells {
		if cell.Scenario.Name != wantNames[i] {
			t.Errorf("cell %d name = %q, want %q", i, cell.Scenario.Name, wantNames[i])
		}
		if err := ma.Validate(cell.Scenario.Adversary, 3); err != nil {
			t.Errorf("cell %d: %v", i, err)
		}
	}
	// Substitution into an integer expression field and a check option.
	if cells[5].Scenario.Spec.Adversary.F != 2 {
		t.Errorf("cell 5 f = %d, want 2", cells[5].Scenario.Spec.Adversary.F)
	}
	if cells[5].Scenario.Options.MaxHorizon != 4 {
		t.Errorf("cell 5 maxHorizon = %d, want 4", cells[5].Scenario.Options.MaxHorizon)
	}
	if got := cells[5].Bindings; got[0].Param != "f" || got[0].Value != 2 || got[1].Param != "horizon" || got[1].Value != 4 {
		t.Errorf("cell 5 bindings = %v", got)
	}
	// Saturation: f=2 on n=2 already admits every graph, so the f=2 cells
	// are behaviourally isomorphic to... themselves only here; but f=2 and
	// a hypothetical f=3 would coincide. Check instead that f is monotone
	// in the admitted choice count.
	c0 := cells[0].Scenario.Adversary
	c4 := cells[4].Scenario.Adversary
	if len(c0.Choices(c0.Start())) >= len(c4.Choices(c4.Start())) {
		t.Errorf("loss budget not monotone: f=0 admits %d, f=2 admits %d",
			len(c0.Choices(c0.Start())), len(c4.Choices(c4.Start())))
	}
}

// TestTemplateGraphSubstitution: placeholders inside graph definitions and
// expression graph refs substitute as decimal text.
func TestTemplateGraphSubstitution(t *testing.T) {
	doc := `{
	  "name": "star-center",
	  "params": {"c": "1..3"},
	  "n": 3,
	  "graphs": {"S": "${c}->1, ${c}->2, ${c}->3"},
	  "adversary": {"op": "oblivious", "graphs": ["S"]},
	  "check": {"maxHorizon": 3}
	}`
	tpl, err := ParseTemplate([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	cells, err := tpl.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 3 {
		t.Fatalf("expanded %d cells, want 3", len(cells))
	}
	// Each center yields a different labeled star, so fingerprints differ.
	seen := map[string]string{}
	for _, cell := range cells {
		fp := cell.Scenario.Fingerprint(3)
		if prev, dup := seen[fp]; dup {
			t.Errorf("cells %s and %s share a fingerprint", prev, cell.Scenario.Name)
		}
		seen[fp] = cell.Scenario.Name
	}
	if got := cells[1].Scenario.Spec.Graphs["S"]; got != "2->1, 2->2, 2->3" {
		t.Errorf("substituted graph def = %q", got)
	}
}

func TestTemplateRoundTripThroughParse(t *testing.T) {
	tpl, err := ParseTemplate([]byte(lossboundTemplateDoc))
	if err != nil {
		t.Fatal(err)
	}
	cells, err := tpl.Expand()
	if err != nil {
		t.Fatal(err)
	}
	for _, cell := range cells {
		data, err := json.Marshal(cell.Scenario.Spec)
		if err != nil {
			t.Fatal(err)
		}
		again, err := Parse(data)
		if err != nil {
			t.Fatalf("cell %s does not round-trip: %v", cell.Scenario.Name, err)
		}
		if again.Fingerprint(4) != cell.Scenario.Fingerprint(4) {
			t.Errorf("cell %s: fingerprint changed across round-trip", cell.Scenario.Name)
		}
	}
}

func TestTemplateErrors(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{"no params", `{"name":"x","n":2,"adversary":{"op":"unrestricted"}}`, "missing params"},
		{"empty params", `{"name":"x","params":{},"n":2,"adversary":{"op":"unrestricted"}}`, "no parameters"},
		{"missing name", `{"params":{"k":[1,2]},"n":2,"adversary":{"op":"concat","first":{"op":"unrestricted"},"rounds":"${k}","then":{"op":"unrestricted"}}}`, "missing name"},
		{"bad param name", `{"name":"x","params":{"9k":[1,2]},"n":2,"adversary":{"op":"unrestricted"}}`, "invalid param name"},
		{"empty range", `{"name":"x","params":{"k":"5..3"},"n":2,"adversary":{"op":"unrestricted"}}`, "empty range"},
		{"malformed range", `{"name":"x","params":{"k":"3-5"},"n":2,"adversary":{"op":"unrestricted"}}`, "not of the form"},
		{"empty list", `{"name":"x","params":{"k":[]},"n":2,"adversary":{"op":"unrestricted"}}`, "empty value list"},
		{"duplicate list value", `{"name":"x","params":{"k":[2,2]},"n":2,"adversary":{"op":"unrestricted"}}`, "duplicate value"},
		{"non-integer value", `{"name":"x","params":{"k":[1.5]},"n":2,"adversary":{"op":"unrestricted"}}`, "not an integer"},
		{"duplicate param", `{"name":"x","params":{"k":[1],"k":[2]},"n":2,"adversary":{"op":"concat","first":{"op":"unrestricted"},"rounds":"${k}","then":{"op":"unrestricted"}}}`, "duplicate param"},
		{"duplicate params block", `{"name":"x","params":{"k":[1]},"params":{"j":[1,2]},"n":2,"adversary":{"op":"concat","first":{"op":"unrestricted"},"rounds":"${j}","then":{"op":"unrestricted"}}}`, "duplicate params block"},
		{"dup inside later params block", `{"name":"x","n":2,"params":{"k":[1],"k":[2]},"adversary":{"op":"concat","first":{"op":"unrestricted"},"rounds":"${k}","then":{"op":"unrestricted"}}}`, "duplicate param"},
		{"unbound ref", `{"name":"x","params":{"k":[1,2]},"n":2,"adversary":{"op":"concat","first":{"op":"unrestricted"},"rounds":"${j}","then":{"op":"unrestricted"}}}`, "unbound param"},
		{"unused param", `{"name":"x","params":{"k":[1,2]},"n":2,"adversary":{"op":"unrestricted"}}`, "never referenced"},
		{"unterminated", `{"name":"x","params":{"k":[1,2]},"n":2,"adversary":{"op":"concat","first":{"op":"unrestricted"},"rounds":"${k","then":{"op":"unrestricted"}}}`, "unterminated placeholder"},
		{"placeholder in key", `{"name":"x","params":{"k":[1,2]},"n":2,"graphs":{"G${k}":"1->2"},"adversary":{"op":"concat","first":{"op":"unrestricted"},"rounds":"${k}","then":{"op":"unrestricted"}}}`, "placeholder in object key"},
		{"range too wide", `{"name":"x","params":{"k":"0..1000"},"n":2,"adversary":{"op":"concat","first":{"op":"unrestricted"},"rounds":"${k}","then":{"op":"unrestricted"}}}`, "cap"},
		{"broken body", `{"name":"x","params":{"k":[1,2]},"n":0,"adversary":{"op":"concat","first":{"op":"unrestricted"},"rounds":"${k}","then":{"op":"unrestricted"}}}`, "out of range"},
		{"trailing data", `{"name":"x","params":{"k":[1]},"n":2,"adversary":{"op":"unrestricted"}} {}`, "trailing data"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseTemplate([]byte(c.doc))
			if err == nil {
				t.Fatalf("ParseTemplate succeeded, want error containing %q", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

// TestTemplateExpandCellError: a binding that drives the spec out of its
// own validity range fails expansion with the cell named.
func TestTemplateExpandCellError(t *testing.T) {
	doc := `{
	  "name": "badcell",
	  "params": {"k": "1..2"},
	  "n": "${k}",
	  "adversary": {"op": "loss-bounded", "f": 1},
	  "check": {"maxHorizon": 2}
	}`
	// First cell (n=1) is fine; ParseTemplate validates only that one.
	tpl, err := ParseTemplate([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	cells, err := tpl.Expand()
	if err != nil {
		t.Fatalf("n=1..2 should expand, got %v", err)
	}
	if len(cells) != 2 {
		t.Fatalf("expanded %d cells", len(cells))
	}
	// A grid whose non-first cell is invalid fails at Expand: n=5 exceeds
	// the loss-bounded enumeration cap, but the first cell (n=1) is fine.
	doc2 := strings.Replace(doc, `"1..2"`, `"1..5"`, 1)
	tpl2, err := ParseTemplate([]byte(doc2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tpl2.Expand(); err == nil || !strings.Contains(err.Error(), "badcell[k=") {
		t.Fatalf("Expand error = %v, want cell-named error", err)
	}
}

func TestIsTemplate(t *testing.T) {
	if !IsTemplate([]byte(lossboundTemplateDoc)) {
		t.Error("template doc not recognized")
	}
	if IsTemplate([]byte(`{"name":"x","n":2,"adversary":{"op":"unrestricted"}}`)) {
		t.Error("concrete scenario misrecognized as template")
	}
	if IsTemplate([]byte(`not json`)) {
		t.Error("garbage misrecognized as template")
	}
}
