// Package fsx holds the one sanctioned implementation of the repo's
// durable-write idiom: every byte that lands on a final content-addressed
// path — verdict records, frontier pages, checkpoint manifests, persisted
// job documents — goes to a temporary sibling in the same directory first,
// is synced and closed, and only then renamed into place. A crash at any
// point leaves either the previous file or the new one, plus at worst a
// stale `*.tmp` sibling that the owning package's startup scan quarantines.
//
// The idiom used to be hand-rolled in internal/{store,pager,ckpt,svc};
// those copies had drifted (none synced, one swallowed the rename error).
// The atomicwrite analyzer in internal/lint now enforces that these
// packages write through AtomicWrite and nothing else.
package fsx

import (
	"fmt"
	"os"
	"path/filepath"
)

// TmpExt is the suffix every in-flight temporary file carries. Startup
// scans (internal/store, internal/svc) treat any leftover `*.tmp` file as
// a crashed write: never a valid record, safe to quarantine.
const TmpExt = ".tmp"

// AtomicWrite writes data to path atomically: it creates a uniquely-named
// temporary sibling `<base>.*.tmp` in path's directory, writes and syncs
// the data, closes the file, sets perm, and renames it over path. On any
// failure the temporary file is removed (best-effort) and no partial write
// is ever visible at path.
//
// The temporary file lives in the same directory as the target, so the
// rename is a same-filesystem atomic replace, and a crash can only leave a
// `*.tmp` sibling — which directory scans recognize by TmpExt.
func AtomicWrite(path string, data []byte, perm os.FileMode) error {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	f, err := os.CreateTemp(dir, base+".*"+TmpExt)
	if err != nil {
		return fmt.Errorf("atomic write %s: %w", path, err)
	}
	tmp := f.Name()
	fail := func(op string, err error) error {
		f.Close() // no-op if already closed
		//topocon:allow quarantine -- the failed write's own tmp sibling: never a visible record, nothing to preserve
		os.Remove(tmp)
		return fmt.Errorf("atomic write %s: %s: %w", path, op, err)
	}
	if _, err := f.Write(data); err != nil {
		return fail("write", err)
	}
	// Sync before rename: the rename must never be durable before the data
	// it commits (a crash between the two would atomically install an empty
	// or truncated file, defeating the whole idiom).
	if err := f.Sync(); err != nil {
		return fail("sync", err)
	}
	if err := f.Close(); err != nil {
		return fail("close", err)
	}
	if err := os.Chmod(tmp, perm); err != nil {
		return fail("chmod", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fail("rename", err)
	}
	return nil
}
