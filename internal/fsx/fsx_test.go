package fsx

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestAtomicWriteRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "rec.dat")
	if err := AtomicWrite(path, []byte("hello"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Fatalf("read back %q", got)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Mode().Perm() != 0o644 {
		t.Fatalf("perm = %v, want 0644", st.Mode().Perm())
	}
	// Overwrite replaces atomically.
	if err := AtomicWrite(path, []byte("world"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(path)
	if string(got) != "world" {
		t.Fatalf("after overwrite: %q", got)
	}
	// No temp droppings on the success path.
	assertNoTmp(t, dir)
}

func TestAtomicWriteFailureLeavesNoTmp(t *testing.T) {
	dir := t.TempDir()
	// Renaming over a directory fails on every platform, forcing the
	// cleanup path after the data was already written and synced.
	target := filepath.Join(dir, "taken")
	if err := os.Mkdir(target, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := AtomicWrite(target, []byte("x"), 0o644); err == nil {
		t.Fatal("expected rename failure writing over a directory")
	}
	assertNoTmp(t, dir)
}

func TestAtomicWriteMissingDir(t *testing.T) {
	if err := AtomicWrite(filepath.Join(t.TempDir(), "no", "such", "dir", "f"), nil, 0o644); err == nil {
		t.Fatal("expected error for missing parent directory")
	}
}

func assertNoTmp(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), TmpExt) {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}
}
