package topo

import (
	"context"
	"math/bits"

	"topocon/internal/graph"
	"topocon/internal/ma"
	"topocon/internal/ptg"
)

// Symmetry quotient (DESIGN.md §13). When the adversary's graph language
// has a nontrivial automorphism group G (ma.Automorphisms), every run
// prefix has up to |G| relabeled twins carrying the same information up
// to process renaming. The quotiented space interns exactly one
// representative per G-orbit:
//
//   - the horizon-0 base keeps one input vector per orbit (the
//     numerically smallest), with stab[i] = the bitmask of group
//     elements fixing it;
//   - extendOne keeps child rep·g only when g is the numerically
//     smallest graph of its Stab(parent)-orbit, and the child inherits
//     stab[c] = {τ ∈ stab[parent] : τ(g) = g}. By induction this keeps
//     exactly one representative per full-space orbit, and the orbit of
//     item i has |G| / popcount(stab[i]) full-space members — the weight
//     FullLen and the verdict accounting report.
//
// Decomposition cannot run on representative rows alone: two orbit
// members of one rep may lie in different full-space components, and
// cross-orbit view sharing (rep a's twin sharing a view with rep b) must
// still merge. DecomposeCtx/Refine therefore work on pseudo-items — the
// pairs (i,k) for every rep i and group element k, indexed i·|G|+k —
// whose view rows are the rep rows relabeled by element k. The pseudo
// expansion is exactly the full space with stabilizer-induced duplicates,
// and duplicates are harmless to a union-find partition: a duplicate
// pseudo-item shares every view with its twin, so they always land in the
// same component, and component summaries fold them idempotently.
//
// Relabeled rows are never stored per item. A chain-level memo
// (symState.memo[k][id] = id's view relabeled by element k) is filled
// once per round by a parallel pass over the freshly interned column —
// each distinct view relabels once per element, not once per item — and
// serves every later round of the chain, because interned IDs and the
// memo only ever grow.

// symState is the chain-level symmetry state, shared by every Space of
// one frontier chain (extensions, restores, ancestors).
type symState struct {
	group *ma.Group
	m     int // group order, ≥ 2
	// memo[k][id] is the ViewID of view id relabeled by group element k,
	// or -1 when not yet computed. memo[0] is nil: element 0 is the
	// identity and is special-cased everywhere.
	memo [][]ptg.ViewID
}

func newSymState(g *ma.Group) *symState {
	return &symState{group: g, m: g.Order(), memo: make([][]ptg.ViewID, g.Order())}
}

// grow extends every non-identity memo table to the given interner size,
// filling new entries with the -1 sentinel.
func (sy *symState) grow(size int) {
	for k := 1; k < sy.m; k++ {
		t := sy.memo[k]
		for len(t) < size {
			t = append(t, -1)
		}
		sy.memo[k] = t
	}
}

// relabeled returns the memoized relabeling of id under element k.
// Element 0 is the identity. The entry must have been filled by a round
// relabel pass; an unset entry is a chain-invariant violation.
func (sy *symState) relabeled(id ptg.ViewID, k int) ptg.ViewID {
	if k == 0 {
		return id
	}
	return sy.memo[k][id]
}

// SymOrder returns the order of the chain's symmetry group (1 when the
// space is not quotiented).
func (s *Space) SymOrder() int {
	if s.sym == nil {
		return 1
	}
	return s.sym.m
}

// SymGroup returns the automorphism group the chain is quotiented by, or
// nil when the space is not quotiented.
func (s *Space) SymGroup() *ma.Group {
	if s.sym == nil {
		return nil
	}
	return s.sym.group
}

// RelabeledID returns the ViewID of view id relabeled by group element k
// (an id that appears in any round column of this space's chain). With no
// quotient only k = 0 is valid.
func (s *Space) RelabeledID(id ptg.ViewID, k int) ptg.ViewID {
	if k == 0 || s.sym == nil {
		return id
	}
	return s.sym.memo[k][id]
}

// OrbitSize returns the number of full-space runs item i represents:
// |G| / |Stab(i)|, or 1 when the space is not quotiented.
func (s *Space) OrbitSize(i int) int {
	if s.sym == nil {
		return 1
	}
	return s.sym.m / bits.OnesCount64(s.stab[i])
}

// FullLen returns the number of full-space runs the space represents —
// Len() when not quotiented, the sum of orbit sizes otherwise. Budget
// caps, RunsExplored reporting and the BuildCtx cross-check against
// ma.CountPrefixes all use full-space numbers, so quotiented and plain
// sessions account identically.
func (s *Space) FullLen() int {
	if s.sym == nil {
		return s.fr.count
	}
	total := 0
	for _, st := range s.stab {
		total += s.sym.m / bits.OnesCount64(st)
	}
	return total
}

// Quotiented reports whether the space interns one representative per
// automorphism orbit.
func (s *Space) Quotiented() bool { return s.sym != nil }

// inputOrbitRep decides the base-level quotient for one input vector w:
// keep reports whether w is the numerically smallest vector of its
// G-orbit (the relabeling of w by σ assigns w[p] to process σ(p)), and
// stab is the bitmask of elements fixing w. Vectors that tie with an
// image under some element are fixed by it, so exactly one vector per
// orbit is kept.
func inputOrbitRep(w []int, g *ma.Group) (stab uint64, keep bool) {
	stab = 1 // the identity
	for k := 1; k < g.Order(); k++ {
		inv := g.Inv(k)
		cmp := 0
		for p := range w {
			// Image of w under element k at position p.
			ip := w[inv[p]]
			if ip != w[p] {
				if ip < w[p] {
					cmp = -1
				} else {
					cmp = 1
				}
				break
			}
		}
		if cmp < 0 {
			return 0, false
		}
		if cmp == 0 {
			stab |= 1 << uint(k)
		}
	}
	return stab, true
}

// graphOrbitStab decides the extension-level quotient for one round
// graph: given the parent's stabilizer mask, it returns 0 when some
// stabilizer element maps g to a numerically smaller graph (g is not the
// orbit representative and the child is dropped), and otherwise the
// child's stabilizer mask {τ ∈ parentStab : τ(g) = g}.
//
//topocon:allocfree
func graphOrbitStab(g graph.Graph, grp *ma.Group, parentStab uint64) uint64 {
	stab := uint64(1)
	for rest := parentStab &^ 1; rest != 0; rest &= rest - 1 {
		k := bits.TrailingZeros64(rest)
		perm, inv := grp.Elem(k), grp.Inv(k)
		cmp := 0
		for q := 0; q < g.N(); q++ {
			img := graph.PermuteMask(g.In(inv[q]), perm)
			if have := g.In(q); img != have {
				if img < have {
					cmp = -1
				} else {
					cmp = 1
				}
				break
			}
		}
		if cmp < 0 {
			return 0
		}
		if cmp == 0 {
			stab |= 1 << uint(k)
		}
	}
	return stab
}

// relabelBase fills the memo for the horizon-0 leaf views: the leaf of
// process p with input x relabels to the leaf of σ(p) with input x.
func (s *Space) relabelBase() {
	sy := s.sym
	sy.grow(s.Interner.Size())
	n := s.fr.n
	for k := 1; k < sy.m; k++ {
		perm := sy.group.Elem(k)
		memo := sy.memo[k]
		for i, w := range s.fr.inputs {
			for p := 0; p < n; p++ {
				memo[s.fr.ids[i*n+p]] = s.Interner.Leaf(perm[p], w[p])
			}
		}
		sy.memo[k] = memo
	}
}

// relabelRound fills the memo for every view interned into this round's
// column: for each group element k, the relabeled view of (i,p) is the
// node of process σ(p) whose children are the parents' relabeled views
// (from the previous round's memo entries) re-slotted by σ. The pass is
// parallelized across group elements — each worker owns one memo table —
// and runs while both this round's and the parent round's columns are
// resident (extendOne calls it before spilling the parent).
//
// Interning the relabeled twins means the interner ends up holding the
// same view set a full-space session would — the quotient shrinks the
// item columns (the dominant cost), not the view arena.
func (s *Space) relabelRound(ctx context.Context) error {
	sy := s.sym
	sy.grow(s.Interner.Size())
	fr := s.fr
	n := fr.n
	prev := fr.prev
	interner := s.Interner
	return forEachChunk(ctx, sy.m-1, s.parallelism, func(lo, hi int) error {
		qs := make([]int, 0, n)
		children := make([]ptg.ViewID, 0, n)
		slots := make([]ptg.ViewID, n)
		for kk := lo; kk < hi; kk++ {
			k := kk + 1
			perm := sy.group.Elem(k)
			memo := sy.memo[k]
			for i := 0; i < fr.count; i++ {
				g := fr.gs[i]
				pids := prev.idRow(int(fr.parentOf[i]))
				for p := 0; p < n; p++ {
					id := fr.ids[i*n+p]
					if memo[id] >= 0 {
						continue
					}
					var mask uint64
					for mm := g.In(p); mm != 0; mm &= mm - 1 {
						q := bits.TrailingZeros64(mm)
						sq := perm[q]
						slots[sq] = memo[pids[q]]
						mask |= 1 << uint(sq)
					}
					qs = qs[:0]
					children = children[:0]
					for ; mask != 0; mask &= mask - 1 {
						q := bits.TrailingZeros64(mask)
						qs = append(qs, q)
						children = append(children, slots[q])
					}
					memo[id] = interner.Node(perm[p], qs, children)
				}
			}
		}
		return nil
	})
}

// replayStab recomputes the stabilizer column of a restored round from
// the recorded parent links and round graphs — the same recurrence
// extendOne applies, so a restored chain carries byte-identical orbit
// accounting. stab/sym are derived state and are never serialized.
func replayStab(parent *Space, f *frontier) []uint64 {
	stab := make([]uint64, f.count)
	for c := 0; c < f.count; c++ {
		stab[c] = graphOrbitStab(f.gs[c], parent.sym.group, parent.stab[int(f.parentOf[c])])
	}
	return stab
}

// pseudoLen returns the pseudo-item count a decomposition over the space
// works with: Len()·|G| under a quotient, Len() otherwise.
func (s *Space) pseudoLen() int {
	if s.sym == nil {
		return s.fr.count
	}
	return s.fr.count * s.sym.m
}

// pseudoHeardByAll is HeardByAll for pseudo-item (i,k): the heard masks
// of a relabeled run are the relabeled heard masks, so the all-processes
// fold commutes with the relabeling.
func (s *Space) pseudoHeardByAll(i, k int) uint64 {
	h := s.HeardByAll(i)
	if k == 0 {
		return h
	}
	return graph.PermuteMask(h, s.sym.group.Elem(k))
}

// PseudoInput is Inputs(i)[p] for pseudo-item (i,k): relabeling assigns
// rep input w[q] to process σ(q), so process p of the twin holds
// w[σ⁻¹(p)].
func (s *Space) PseudoInput(i, k, p int) int {
	if k == 0 {
		return s.Inputs(i)[p]
	}
	return s.Inputs(i)[s.sym.group.Inv(k)[p]]
}

// PseudoViews materializes the Views adapter of pseudo-item (i,k): the
// representative's rows with every id pushed through the relabel memo and
// every position permuted — process σ(p) of the twin holds the relabeled
// view of the rep's process p, and its heard mask is the rep's mask with
// the bits renamed. This is a cold path (pair scans, witness expansion);
// per-call allocation mirrors ViewsOf.
func (s *Space) PseudoViews(i, k int) *ptg.Views {
	if k == 0 || s.sym == nil {
		return s.ViewsOf(i)
	}
	perm := s.sym.group.Elem(k)
	inv := s.sym.group.Inv(k)
	memo := s.sym.memo[k]
	n := s.fr.n
	ids := make([][]ptg.ViewID, s.Horizon+1)
	heard := make([][]uint64, s.Horizon+1)
	f, idx := s.fr, i
	for {
		f.fault()
		src, srcHeard := f.idRow(idx), f.heardRow(idx)
		row := make([]ptg.ViewID, n)
		hrow := make([]uint64, n)
		for p := 0; p < n; p++ {
			row[p] = memo[src[inv[p]]]
			hrow[p] = graph.PermuteMask(srcHeard[inv[p]], perm)
		}
		ids[f.horizon] = row
		heard[f.horizon] = hrow
		if f.prev == nil {
			break
		}
		idx = int(f.parentOf[idx])
		f = f.prev
	}
	return ptg.ViewsFromRows(s.Interner, ids, heard)
}

// PseudoRun materializes the run prefix of pseudo-item (i,k): the
// representative's run relabeled by group element k.
func (s *Space) PseudoRun(i, k int) ptg.Run {
	r := s.RunOf(i)
	if k == 0 || s.sym == nil {
		return r
	}
	return r.Relabel(s.sym.group.Elem(k))
}
