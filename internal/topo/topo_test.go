package topo

import (
	"testing"

	"topocon/internal/combi"
	"topocon/internal/graph"
	"topocon/internal/ma"
	"topocon/internal/ptg"
)

func build(t *testing.T, adv ma.Adversary, domain, horizon int) *Space {
	t.Helper()
	s, err := Build(adv, domain, horizon, 0)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return s
}

func TestBuildSpaceSize(t *testing.T) {
	s := build(t, ma.LossyLink3(), 2, 2)
	// 2^2 input vectors × 3^2 prefixes.
	if s.Len() != 36 {
		t.Fatalf("Len = %d, want 36", s.Len())
	}
	for i := 0; i < s.Len(); i++ {
		it := s.Item(i)
		if it.Run.Rounds() != 2 || it.Views.Rounds() != 2 {
			t.Errorf("item %d has wrong horizon", i)
		}
		if !it.Done {
			t.Errorf("oblivious run %v not Done", it.Run)
		}
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(ma.LossyLink3(), 0, 1, 0); err == nil {
		t.Error("domain 0: want error")
	}
	if _, err := Build(ma.LossyLink3(), 2, -1, 0); err == nil {
		t.Error("negative horizon: want error")
	}
	if _, err := Build(ma.LossyLink3(), 2, 5, 10); err == nil {
		t.Error("cap exceeded: want error")
	}
}

func TestFindAndValentItems(t *testing.T) {
	s := build(t, ma.LossyLink2(), 2, 1)
	r := ptg.NewRun([]int{0, 1}).Extend(graph.Right)
	if i := s.Find(r); i < 0 || s.RunOf(i).Key() != r.Key() {
		t.Errorf("Find failed for %v", r)
	}
	if i := s.Find(ptg.NewRun([]int{0, 1}).Extend(graph.Both)); i >= 0 {
		t.Error("Find returned an inadmissible run")
	}
	zeros := s.ValentItems(0)
	// (0,0) × {<-,->} = 2 valent runs.
	if len(zeros) != 2 {
		t.Errorf("ValentItems(0) = %v, want 2 items", zeros)
	}
}

// TestLossyLink2SeparatesAtRound1 reproduces the paper's Section 6.1 remark
// on [8]: under {<-,->} all configurations after round 1 are univalent — at
// horizon 1 no component mixes valences, and the expected 4 components
// appear.
func TestLossyLink2SeparatesAtRound1(t *testing.T) {
	s := build(t, ma.LossyLink2(), 2, 1)
	d := Decompose(s)
	if mixed := d.MixedComponents(); len(mixed) != 0 {
		t.Fatalf("mixed components at horizon 1: %v", mixed)
	}
	if len(d.Comps) != 4 {
		t.Errorf("got %d components, want 4", len(d.Comps))
	}
	if !d.ValentComponentsBroadcastable() {
		t.Error("valent components must be broadcastable for {<-,->}")
	}
}

// TestLossyLink3MixedAtEveryHorizon reproduces the Santoro-Widmayer
// impossibility: under {<-,<->,->} the 0-valent and 1-valent runs stay in
// one connected component at every horizon (the forever-bivalent chain).
func TestLossyLink3MixedAtEveryHorizon(t *testing.T) {
	for horizon := 1; horizon <= 4; horizon++ {
		s := build(t, ma.LossyLink3(), 2, horizon)
		d := Decompose(s)
		if mixed := d.MixedComponents(); len(mixed) == 0 {
			t.Errorf("horizon %d: no mixed component, expected the bivalent chain", horizon)
		}
		if d.ValentComponentsBroadcastable() {
			t.Errorf("horizon %d: broadcastability must fail", horizon)
		}
	}
}

// TestBroadcastersHaveUniformInputs is Theorem 5.9 at finite resolution: a
// broadcaster of a connected component has the same input in every member.
func TestBroadcastersHaveUniformInputs(t *testing.T) {
	// Sweep all oblivious adversaries over non-empty subsets of the 4
	// two-node graphs.
	combi.Subsets(int(graph.CountAll(2)), func(mask uint64) bool {
		adv := ma.ObliviousFromMask(2, mask)
		s := build(t, adv, 2, 3)
		d := Decompose(s)
		for ci := range d.Comps {
			c := &d.Comps[ci]
			if c.Broadcasters&^c.UniformInputs != 0 {
				t.Errorf("adversary %s: component %d has broadcaster with non-uniform input",
					adv.Name(), ci)
			}
		}
		return true
	})
}

// TestComponentsRefine: growing the horizon refines the decomposition —
// runs separated at horizon t stay separated at t+1 (projecting runs of
// t+1 onto their t-prefix).
func TestComponentsRefine(t *testing.T) {
	adv := ma.LossyLink3()
	s3 := build(t, adv, 2, 3)
	s4 := build(t, adv, 2, 4)
	d3 := Decompose(s3)
	d4 := Decompose(s4)
	for i := 0; i < s4.Len(); i++ {
		for j := i + 1; j < s4.Len(); j++ {
			if d4.CompOf[i] != d4.CompOf[j] {
				continue
			}
			// Same component at horizon 4 ⇒ same at horizon 3.
			ri := truncate(s4.RunOf(i), 3)
			rj := truncate(s4.RunOf(j), 3)
			pi, pj := s3.Find(ri), s3.Find(rj)
			if pi < 0 || pj < 0 {
				t.Fatalf("missing truncated runs %v, %v", ri, rj)
			}
			if d3.CompOf[pi] != d3.CompOf[pj] {
				t.Fatalf("refinement violated: %v ~ %v at t=4 but not t=3",
					s4.RunOf(i), s4.RunOf(j))
			}
		}
	}
}

func truncate(r ptg.Run, rounds int) ptg.Run {
	out := ptg.NewRun(r.Inputs)
	for t := 1; t <= rounds; t++ {
		out = out.Extend(r.Graph(t))
	}
	return out
}

// TestCompactComponentGap is E6 (Fig. 4): for the solvable compact
// adversary {<-,->}, the distance between differently-valent regions stays
// 2^-1 at every horizon — decision sets are uniformly separated.
func TestCompactComponentGap(t *testing.T) {
	for horizon := 1; horizon <= 4; horizon++ {
		s := build(t, ma.LossyLink2(), 2, horizon)
		d := Decompose(s)
		level, ok := d.CrossValenceLevel()
		if !ok {
			t.Fatalf("horizon %d: no cross-valence pairs", horizon)
		}
		if level != 1 {
			t.Errorf("horizon %d: cross-valence level = %d, want 1 (gap 2^-1)", horizon, level)
		}
	}
}

// TestNonCompactPendingMixture: for the eventually-stable adversary the
// full prefix space keeps a mixed component at every horizon (the
// not-yet-stable runs), even though consensus is solvable — the signature
// of non-compactness that forecloses the ε-approximation route
// (Section 6.3).
func TestNonCompactPendingMixture(t *testing.T) {
	adv := ma.MustEventuallyStable("",
		[]graph.Graph{graph.Left, graph.Right}, []graph.Graph{graph.Both}, 1)
	for horizon := 1; horizon <= 3; horizon++ {
		s := build(t, adv, 2, horizon)
		d := Decompose(s)
		if mixed := d.MixedComponents(); len(mixed) == 0 {
			t.Errorf("horizon %d: expected a mixed (pending) component", horizon)
		}
	}
}

// TestDecomposeSingletonHorizonZero: at horizon 0 views are the inputs, so
// components group runs by shared input coordinates.
func TestDecomposeSingletonHorizonZero(t *testing.T) {
	s := build(t, ma.LossyLink2(), 2, 0)
	d := Decompose(s)
	// 4 input vectors; (0,0)~(0,1)~(1,1)~(1,0) all connected through
	// shared coordinates: a single component.
	if len(d.Comps) != 1 {
		t.Errorf("got %d components at horizon 0, want 1", len(d.Comps))
	}
	if !d.Comps[0].Mixed() {
		t.Error("horizon-0 component must be mixed")
	}
}

// TestBroadcastableDiameter is Theorem 5.9: a broadcastable connected
// component has diameter at most 1/2 (agreement level ≥ 1) — the
// broadcaster's input is common to all members, so no member pair can be
// at distance 1.
func TestBroadcastableDiameter(t *testing.T) {
	combi.Subsets(int(graph.CountAll(2)), func(mask uint64) bool {
		adv := ma.ObliviousFromMask(2, mask)
		s := build(t, adv, 2, 3)
		d := Decompose(s)
		for ci := range d.Comps {
			c := &d.Comps[ci]
			if c.Broadcasters&c.UniformInputs == 0 {
				continue
			}
			level, ok := d.DiameterLevel(ci)
			if !ok {
				continue
			}
			if level < 1 {
				t.Errorf("adversary %s: broadcastable component %d has diameter 2^-%d > 1/2",
					adv.Name(), ci, level)
			}
		}
		return true
	})
}

// TestDecomposeLargerDomain: the machinery is domain-agnostic; with three
// input values the {<-,->} adversary still separates at horizon 1 with one
// component per (deciding process, value).
func TestDecomposeLargerDomain(t *testing.T) {
	s := build(t, ma.LossyLink2(), 3, 1)
	if s.Len() != 9*2 {
		t.Fatalf("space size %d, want 18", s.Len())
	}
	d := Decompose(s)
	if mixed := d.MixedComponents(); len(mixed) != 0 {
		t.Fatalf("mixed components with domain 3: %v", mixed)
	}
	// 2 graphs × 3 values of the deciding coordinate.
	if len(d.Comps) != 6 {
		t.Errorf("got %d components, want 6", len(d.Comps))
	}
}

// TestSeparationMonotoneQuick: once a horizon separates (no mixed
// component), all larger horizons do as well — the monotonicity that makes
// finite separation witnesses exact.
func TestSeparationMonotoneQuick(t *testing.T) {
	for mask := uint64(1); mask < 16; mask++ {
		adv := ma.ObliviousFromMask(2, mask)
		separated := false
		for horizon := 1; horizon <= 4; horizon++ {
			s := build(t, adv, 2, horizon)
			d := Decompose(s)
			now := len(d.MixedComponents()) == 0
			if separated && !now {
				t.Fatalf("adversary %s: separation lost at horizon %d", adv.Name(), horizon)
			}
			if now {
				separated = true
			}
		}
	}
}
