package topo

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"

	"topocon/internal/graph"
	"topocon/internal/ma"
	"topocon/internal/pager"
	"topocon/internal/ptg"
)

// This file holds the out-of-core side of the frontier chain: spilling cold
// rounds' column arrays through internal/pager, faulting them back in on
// chain walks, and snapshotting/restoring whole chains for checkpointed
// Analyzer sessions (internal/ckpt). See DESIGN.md §9.
//
// The design exploits that frontiers are immutable once built: a round is
// encoded and persisted the moment it stops being the head (extendOne), so
// eviction is just dropping the in-memory columns — there is no write-back,
// and a fault is a checksum-verified re-read. The horizon-0 base is never
// spilled (it carries the input vectors every Inputs lookup needs), and the
// head round is never registered for eviction (the hot loops read its
// columns without faulting).

// roundPageID names the page of the frontier at the given horizon; one
// pager serves one chain, so the horizon is the identity.
func roundPageID(horizon int) string { return fmt.Sprintf("round-%03d", horizon) }

// spill persists the frontier's columns and registers them with the pager,
// which may now evict them (dropping the in-memory copy) whenever the hot
// set exceeds its budget. Idempotent; the base frontier is never spilled.
func (f *frontier) spill(pg *pager.Pager) error {
	if f.horizon == 0 || f.pg != nil {
		return nil
	}
	id := roundPageID(f.horizon)
	if err := pg.Put(id, f.encodeColumns(), f.evict); err != nil {
		return err
	}
	f.pg = pg
	f.pageID = id
	return nil
}

// evict drops the in-memory columns; the next access faults them back in.
// Invoked by the pager (outside its lock) when the page falls out of the
// hot set.
func (f *frontier) evict() {
	f.ids, f.heard, f.gs, f.parentOf, f.rootOf = nil, nil, nil, nil, nil
}

// fault makes the frontier's columns resident, re-reading the page from
// disk if it was evicted. The no-pager and resident fast paths are two
// compares. Chain walks under a pager are driven from one goroutine (the
// Analyzer session loop); fault is not safe for concurrent cold access.
func (f *frontier) fault() {
	if err := f.ensure(); err != nil {
		// The chain-walking accessors (HeardByAllAt, ViewsOf, RunOf, …) have
		// no error returns; a page that was validated at spill/restore time
		// and is now unreadable is an environment failure, not a recoverable
		// condition. The restore path uses ensure directly and errors cleanly.
		panic(err)
	}
}

// ensure is fault with an error return, for paths that can report it.
func (f *frontier) ensure() error {
	if f.pg == nil || f.ids != nil {
		return nil
	}
	payload, err := f.pg.Fault(f.pageID, f.evict)
	if err != nil {
		return err
	}
	return f.decodeColumns(payload)
}

// encodeColumns serializes the round's columns: header (horizon, n, count),
// ids, heard, a deduplicated round-graph dictionary plus per-item indices
// (one round's graphs come from a small Choices menu, so the dictionary
// keeps decoded rounds sharing graph backing arrays), parentOf and rootOf.
// All integers are varint-coded; framing and checksums are the pager's job.
func (f *frontier) encodeColumns() []byte {
	n, count := f.n, f.count
	buf := make([]byte, 0, 16+count*(2*n+3)*2)
	buf = binary.AppendUvarint(buf, uint64(f.horizon))
	buf = binary.AppendUvarint(buf, uint64(n))
	buf = binary.AppendUvarint(buf, uint64(count))
	for _, id := range f.ids {
		buf = binary.AppendUvarint(buf, uint64(id))
	}
	for _, h := range f.heard {
		buf = binary.AppendUvarint(buf, h)
	}
	dict := make([]graph.Graph, 0, 16)
	dictIdx := make(map[string]int, 16)
	gidx := make([]int, count)
	for i, g := range f.gs {
		key := g.Key()
		di, ok := dictIdx[key]
		if !ok {
			di = len(dict)
			dictIdx[key] = di
			dict = append(dict, g)
		}
		gidx[i] = di
	}
	buf = binary.AppendUvarint(buf, uint64(len(dict)))
	for _, g := range dict {
		for q := 0; q < n; q++ {
			buf = binary.AppendUvarint(buf, g.In(q))
		}
	}
	for _, di := range gidx {
		buf = binary.AppendUvarint(buf, uint64(di))
	}
	for _, p := range f.parentOf {
		buf = binary.AppendUvarint(buf, uint64(p))
	}
	for _, r := range f.rootOf {
		buf = binary.AppendUvarint(buf, uint64(r))
	}
	return buf
}

// pageDecoder reads back-to-back uvarints with strict bounds.
type pageDecoder struct {
	data []byte
	err  error
}

func (d *pageDecoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, k := binary.Uvarint(d.data)
	if k <= 0 {
		d.err = errors.New("topo: truncated frontier page")
		return 0
	}
	d.data = d.data[k:]
	return v
}

// decodeColumns rebuilds the columns from an encodeColumns payload,
// validating the header against the frontier's immutable identity (which
// survives eviction) and every index against its column's range.
func (f *frontier) decodeColumns(payload []byte) error {
	d := &pageDecoder{data: payload}
	h, n, count := int(d.uvarint()), int(d.uvarint()), int(d.uvarint())
	if d.err == nil && (h != f.horizon || n != f.n || count != f.count) {
		return fmt.Errorf("topo: frontier page header (h=%d n=%d count=%d) does not match round (h=%d n=%d count=%d)",
			h, n, count, f.horizon, f.n, f.count)
	}
	ids := make([]ptg.ViewID, count*n)
	for i := range ids {
		ids[i] = ptg.ViewID(d.uvarint())
	}
	heard := make([]uint64, count*n)
	for i := range heard {
		heard[i] = d.uvarint()
	}
	dictLen := int(d.uvarint())
	if d.err != nil {
		return d.err
	}
	if dictLen < 0 || dictLen > count {
		return fmt.Errorf("topo: frontier page graph dictionary of %d entries for %d items", dictLen, count)
	}
	dict := make([]graph.Graph, dictLen)
	masks := make([]uint64, n)
	for i := range dict {
		for q := 0; q < n; q++ {
			masks[q] = d.uvarint()
		}
		if d.err != nil {
			return d.err
		}
		g, err := graph.FromInMasks(n, masks)
		if err != nil {
			return fmt.Errorf("topo: frontier page graph %d: %w", i, err)
		}
		dict[i] = g
	}
	gs := make([]graph.Graph, count)
	for i := range gs {
		di := d.uvarint()
		if d.err == nil && di >= uint64(dictLen) {
			return fmt.Errorf("topo: frontier page graph index %d out of %d", di, dictLen)
		}
		gs[i] = dict[di]
	}
	parentOf := make([]int32, count)
	prevCount := 0
	if f.prev != nil {
		prevCount = f.prev.count
	}
	for i := range parentOf {
		p := d.uvarint()
		if d.err == nil && p >= uint64(prevCount) {
			return fmt.Errorf("topo: frontier page parent index %d out of %d", p, prevCount)
		}
		parentOf[i] = int32(p)
	}
	rootOf := make([]int32, count)
	baseCount := f.base.count
	for i := range rootOf {
		r := d.uvarint()
		if d.err == nil && r >= uint64(baseCount) {
			return fmt.Errorf("topo: frontier page root index %d out of %d", r, baseCount)
		}
		rootOf[i] = int32(r)
	}
	if d.err != nil {
		return d.err
	}
	if len(d.data) != 0 {
		return fmt.Errorf("topo: frontier page has %d trailing bytes", len(d.data))
	}
	f.ids, f.heard, f.gs, f.parentOf, f.rootOf = ids, heard, gs, parentOf, rootOf
	return nil
}

// Pager returns the pager attached at build time, or nil.
func (s *Space) Pager() *pager.Pager { return s.pager }

// ChainRound references one persisted round of a frontier chain.
type ChainRound struct {
	Horizon int    `json:"horizon"`
	Count   int    `json:"count"`
	PageID  string `json:"pageID"`
	// Bytes is the encoded payload size, recorded so a resume can adopt the
	// page by reference without reading it.
	Bytes int64 `json:"bytes"`
}

// SnapshotChain persists every round of the space's frontier chain that is
// not yet on disk (under the Analyzer flow that is only the head — every
// older round was spilled when it stopped being the head) and returns the
// page references for horizons 1..Horizon, ascending. The head stays
// resident and unregistered; already-spilled rounds are referenced without
// touching their residency.
func (s *Space) SnapshotChain() ([]ChainRound, error) {
	if s.pager == nil {
		return nil, errors.New("topo: SnapshotChain requires a pager (Config.Pager)")
	}
	rounds := make([]ChainRound, s.Horizon)
	for f := s.fr; f != nil && f.horizon > 0; f = f.prev {
		cr := ChainRound{Horizon: f.horizon, Count: f.count}
		if f.pg != nil {
			cr.PageID = f.pageID
			size, ok := s.pager.SizeOf(f.pageID)
			if !ok {
				return nil, fmt.Errorf("topo: SnapshotChain: round %d page %q not registered", f.horizon, f.pageID)
			}
			cr.Bytes = size
		} else {
			if err := f.ensure(); err != nil {
				return nil, err
			}
			payload := f.encodeColumns()
			cr.PageID = roundPageID(f.horizon)
			cr.Bytes = int64(len(payload))
			if err := s.pager.Persist(cr.PageID, payload); err != nil {
				return nil, err
			}
		}
		rounds[f.horizon-1] = cr
	}
	return rounds, nil
}

// ChainSpec describes a persisted frontier chain to restore.
type ChainSpec struct {
	Adversary   ma.Adversary
	InputDomain int
	MaxRuns     int // ≤ 0 selects DefaultMaxRuns
	Parallelism int
	// Interner must be the imported interner of the checkpointed session:
	// restore re-derives nothing, so the page's ViewIDs are only meaningful
	// against the arena they were interned into.
	Interner *ptg.Interner
	// Pager owns the page directory the rounds reference.
	Pager *pager.Pager
	// Rounds are the persisted rounds, horizons 1..H ascending (from
	// SnapshotChain).
	Rounds []ChainRound
	// Symmetry must be the automorphism group the checkpointed session was
	// quotiented by (nil for a full-space session). The group, stabilizer
	// column and relabel memo are derived state — never serialized, the
	// page format is symmetry-agnostic — so restore recomputes them by the
	// same recurrence the original extension applied. Restoring a
	// quotiented chain without its group (or vice versa) mis-shapes every
	// page's item count and fails the count validation.
	Symmetry *ma.Group
}

// RestoreChain rebuilds the frontier chain of a checkpointed session and
// returns the space at the deepest horizon, ready to Extend further.
//
// The automaton states are not serialized (ma.State is opaque by design);
// they are recomputed by deterministic replay: round by round, every page
// is read and checksum-verified exactly once, the adversary is stepped
// along the recorded round graphs, and the round is then registered with
// the pager and evicted again — so restore memory stays at ~two rounds
// plus one state column regardless of depth, and a corrupt page surfaces
// here as a clean error, never as a wrong resume.
//
//topocon:allow ctxflow -- pre-context bootstrap path behind ckpt.Load/RestoreAnalyzer; work is bounded by the already-checkpointed chain, with no external waits to cancel
func RestoreChain(spec ChainSpec) (*Space, error) {
	if spec.Adversary == nil || spec.Interner == nil || spec.Pager == nil {
		return nil, errors.New("topo: RestoreChain: adversary, interner and pager are required")
	}
	maxRuns := spec.MaxRuns
	if maxRuns <= 0 {
		maxRuns = DefaultMaxRuns
	}
	adv := spec.Adversary
	n := adv.N()
	s := buildBaseSym(adv, spec.InputDomain, spec.Interner, maxRuns, spec.Parallelism, spec.Symmetry)
	s.pager = spec.Pager
	internedViews := ptg.ViewID(spec.Interner.Size())
	for ri, cr := range spec.Rounds {
		if cr.Horizon != ri+1 {
			return nil, fmt.Errorf("topo: RestoreChain: round %d has horizon %d, want %d", ri, cr.Horizon, ri+1)
		}
		if cr.Count <= 0 || cr.Count > maxRuns {
			return nil, fmt.Errorf("topo: RestoreChain: round %d count %d out of range", cr.Horizon, cr.Count)
		}
		payload, err := spec.Pager.ReadPage(cr.PageID)
		if err != nil {
			return nil, err
		}
		f := &frontier{
			horizon: cr.Horizon,
			n:       n,
			count:   cr.Count,
			prev:    s.fr,
			base:    s.fr.base,
		}
		if err := f.decodeColumns(payload); err != nil {
			return nil, fmt.Errorf("topo: RestoreChain: round %d: %w", cr.Horizon, err)
		}
		for _, id := range f.ids {
			if id < 0 || id >= internedViews {
				return nil, fmt.Errorf("topo: RestoreChain: round %d references view %d beyond interner size %d",
					cr.Horizon, id, internedViews)
			}
		}
		states := make([]ma.State, cr.Count)
		doneAt := make([]int32, cr.Count)
		valence := make([]int32, cr.Count)
		for c := 0; c < cr.Count; c++ {
			pi := f.parentOf[c]
			state := adv.Step(s.states[pi], f.gs[c])
			da := s.doneAt[pi]
			if da < 0 && adv.Done(state) {
				da = int32(cr.Horizon)
			}
			states[c] = state
			doneAt[c] = da
			valence[c] = s.valence[pi]
		}
		next := &Space{
			Adversary:   adv,
			InputDomain: spec.InputDomain,
			Horizon:     cr.Horizon,
			Interner:    spec.Interner,
			fr:          f,
			states:      states,
			doneAt:      doneAt,
			valence:     valence,
			maxRuns:     maxRuns,
			parallelism: spec.Parallelism,
			pager:       spec.Pager,
			sym:         s.sym,
		}
		if s.sym != nil {
			// Replay the stabilizer recurrence and refill the round's slice
			// of the chain relabel memo (derived state, never serialized).
			// The relabel pass reads the parent round's id column, which was
			// evicted at the end of its own iteration — fault it back for
			// the pass; it re-evicts whenever the pager needs the room.
			next.stab = replayStab(s, f)
			if err := f.prev.ensure(); err != nil {
				return nil, err
			}
			if err := next.relabelRound(context.Background()); err != nil {
				return nil, err
			}
		}
		if cr.Horizon < len(spec.Rounds) {
			// Interior round: register it cold (the page was just validated)
			// and drop the columns; walks fault them back on demand. The
			// deepest round stays resident as the new head.
			if err := spec.Pager.Adopt(cr.PageID, cr.Bytes, f.evict); err != nil {
				return nil, err
			}
			f.pg = spec.Pager
			f.pageID = cr.PageID
			f.evict()
		}
		s = next
	}
	return s, nil
}

// AncestorAt materializes the space at an earlier horizon t of the chain,
// faulting spilled rounds as needed and replaying the automaton states from
// the base (states are per-space, not per-frontier, so an evicted horizon
// has none). It is the rehydration path behind check.Analyzer.SpaceAt for
// evicted horizons; a cold reporting/debugging operation, O(chain) page
// reads and steps.
func (s *Space) AncestorAt(t int) (*Space, error) {
	if t == s.Horizon {
		return s, nil
	}
	if t < 0 || t > s.Horizon {
		return nil, fmt.Errorf("topo: AncestorAt(%d) outside chain of horizon %d", t, s.Horizon)
	}
	target := s.fr
	for target.horizon > t {
		target = target.prev
	}
	// Collect the path base..target, then replay forward.
	path := make([]*frontier, 0, t+1)
	for f := target; f != nil; f = f.prev {
		path = append(path, f)
	}
	base := path[len(path)-1]
	states := make([]ma.State, base.count)
	doneAt := make([]int32, base.count)
	valence := make([]int32, base.count)
	var stab []uint64
	start := s.Adversary.Start()
	da0 := int32(-1)
	if s.Adversary.Done(start) {
		da0 = 0
	}
	for i, w := range base.inputs {
		states[i] = start
		doneAt[i] = da0
		valence[i] = valenceOf(w)
	}
	if s.sym != nil {
		// The stabilizer column is per-space derived state, replayed forward
		// alongside the automaton states; the chain relabel memo is shared
		// and already covers every round ≤ s.Horizon.
		stab = make([]uint64, base.count)
		for i, w := range base.inputs {
			st, _ := inputOrbitRep(w, s.sym.group)
			stab[i] = st
		}
	}
	for ri := len(path) - 2; ri >= 0; ri-- {
		f := path[ri]
		if err := f.ensure(); err != nil {
			return nil, err
		}
		nextStates := make([]ma.State, f.count)
		nextDoneAt := make([]int32, f.count)
		nextValence := make([]int32, f.count)
		var nextStab []uint64
		if s.sym != nil {
			nextStab = make([]uint64, f.count)
		}
		for c := 0; c < f.count; c++ {
			pi := f.parentOf[c]
			state := s.Adversary.Step(states[pi], f.gs[c])
			da := doneAt[pi]
			if da < 0 && s.Adversary.Done(state) {
				da = int32(f.horizon)
			}
			nextStates[c] = state
			nextDoneAt[c] = da
			nextValence[c] = valence[pi]
			if nextStab != nil {
				nextStab[c] = graphOrbitStab(f.gs[c], s.sym.group, stab[pi])
			}
		}
		states, doneAt, valence, stab = nextStates, nextDoneAt, nextValence, nextStab
	}
	return &Space{
		Adversary:   s.Adversary,
		InputDomain: s.InputDomain,
		Horizon:     t,
		Interner:    s.Interner,
		fr:          target,
		states:      states,
		doneAt:      doneAt,
		valence:     valence,
		maxRuns:     s.maxRuns,
		parallelism: s.parallelism,
		pager:       s.pager,
		sym:         s.sym,
		stab:        stab,
	}, nil
}

// CompSnapshot is the serializable summary of one Component; Members are
// not stored — they are rebuilt from CompOf (whose ascending sweep restores
// the ordered-by-smallest-member layout).
type CompSnapshot struct {
	Valences      []int  `json:"valences,omitempty"`
	Broadcasters  uint64 `json:"broadcasters,string"`
	UniformInputs uint64 `json:"uniformInputs,string"`
}

// DecompSnapshot is the serializable form of a Decomposition, relative to a
// space restored separately.
type DecompSnapshot struct {
	Horizon int            `json:"horizon"`
	CompOf  []int          `json:"compOf"`
	Comps   []CompSnapshot `json:"comps"`
	// Mult is the pseudo-item multiplier of a quotiented decomposition
	// (components.go); 0 or 1 for a plain one.
	Mult int `json:"mult,omitempty"`
}

// SnapshotDecomposition captures a decomposition for a checkpoint.
func SnapshotDecomposition(d *Decomposition) *DecompSnapshot {
	snap := &DecompSnapshot{
		Horizon: d.Space.Horizon,
		CompOf:  append([]int(nil), d.CompOf...),
		Comps:   make([]CompSnapshot, len(d.Comps)),
		Mult:    d.Mult,
	}
	for ci := range d.Comps {
		c := &d.Comps[ci]
		snap.Comps[ci] = CompSnapshot{
			Valences:      append([]int(nil), c.Valences...),
			Broadcasters:  c.Broadcasters,
			UniformInputs: c.UniformInputs,
		}
	}
	return snap
}

// RestoreDecomposition rebuilds a Decomposition over a restored space,
// validating the snapshot's shape strictly: the partition must label every
// item, reference every component, and keep components ordered by smallest
// member (the invariant Refine's seeding relies on).
func RestoreDecomposition(s *Space, snap *DecompSnapshot) (*Decomposition, error) {
	if snap.Horizon != s.Horizon {
		return nil, fmt.Errorf("topo: RestoreDecomposition: snapshot at horizon %d, space at %d", snap.Horizon, s.Horizon)
	}
	m := s.SymOrder()
	snapMult := snap.Mult
	if snapMult <= 1 {
		snapMult = 1
	}
	if snapMult != m {
		return nil, fmt.Errorf("topo: RestoreDecomposition: snapshot multiplier %d, space symmetry order %d", snapMult, m)
	}
	if len(snap.CompOf) != s.Len()*m {
		return nil, fmt.Errorf("topo: RestoreDecomposition: %d labels for %d items", len(snap.CompOf), s.Len()*m)
	}
	d := &Decomposition{
		Space:  s,
		CompOf: append([]int(nil), snap.CompOf...),
		Comps:  make([]Component, len(snap.Comps)),
		Mult:   m,
	}
	sizes := make([]int, len(snap.Comps))
	nextNew := 0
	for i, ci := range d.CompOf {
		if ci < 0 || ci >= len(snap.Comps) {
			return nil, fmt.Errorf("topo: RestoreDecomposition: item %d labeled %d of %d components", i, ci, len(snap.Comps))
		}
		if ci > nextNew {
			return nil, fmt.Errorf("topo: RestoreDecomposition: components not ordered by smallest member (item %d labeled %d before %d appeared)", i, ci, nextNew)
		}
		if ci == nextNew {
			nextNew++
		}
		sizes[ci]++
	}
	if nextNew != len(snap.Comps) {
		return nil, fmt.Errorf("topo: RestoreDecomposition: %d of %d components have no members", len(snap.Comps)-nextNew, len(snap.Comps))
	}
	arena := make([]int, len(d.CompOf))
	for ci := range d.Comps {
		d.Comps[ci] = Component{
			Members:       arena[:0:sizes[ci]],
			Valences:      append([]int(nil), snap.Comps[ci].Valences...),
			Broadcasters:  snap.Comps[ci].Broadcasters,
			UniformInputs: snap.Comps[ci].UniformInputs,
		}
		arena = arena[sizes[ci]:]
	}
	for i, ci := range d.CompOf {
		d.Comps[ci].Members = append(d.Comps[ci].Members, i)
	}
	return d, nil
}
