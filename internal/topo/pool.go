package topo

import (
	"context"
	"sync"
)

// minChunk is the smallest per-worker slice worth the goroutine overhead;
// below workers*minChunk elements the pool degenerates to a sequential loop.
const minChunk = 64

// forEachChunk partitions [0, n) into contiguous chunks and applies fn to
// each, using up to `workers` goroutines. fn must be safe to call
// concurrently on disjoint ranges. The first error wins; cancellation of
// ctx stops the remaining chunks and returns ctx.Err().
func forEachChunk(ctx context.Context, n, workers int, fn func(lo, hi int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers <= 1 || n < 2*minChunk {
		return forEachChunkSeq(ctx, n, fn)
	}
	chunk := (n + workers - 1) / workers
	if chunk < minChunk {
		chunk = minChunk
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	setErr := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			if ctx.Err() != nil {
				setErr(ctx.Err())
				return
			}
			if err := fn(lo, hi); err != nil {
				setErr(err)
			}
		}(lo, hi)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// forEachChunkSeq is the sequential fallback, still chunked so that the
// context is polled between batches rather than per element.
func forEachChunkSeq(ctx context.Context, n int, fn func(lo, hi int) error) error {
	for lo := 0; lo < n; lo += minChunk {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		hi := lo + minChunk
		if hi > n {
			hi = n
		}
		if err := fn(lo, hi); err != nil {
			return err
		}
	}
	return ctx.Err()
}
