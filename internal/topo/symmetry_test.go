package topo

import (
	"context"
	"testing"

	"topocon/internal/ma"
	"topocon/internal/pager"
	"topocon/internal/ptg"
)

// TestQuotientMatchesFull is the soundness property of the symmetry
// quotient (DESIGN.md §13): for every seed adversary family, expanding the
// quotiented space's pseudo-items through the group reproduces the full
// space exactly — run set, per-run views, heard masks, inputs, valences,
// done times, orbit accounting, and the component decomposition as a
// partition of full-space runs with identical summaries. Families whose
// automorphism group is trivial (the eventually-stable pair) take the
// m = 1 path and pin the quotient as a strict no-op.
func TestQuotientMatchesFull(t *testing.T) {
	ctx := context.Background()
	for _, adv := range seedAdversaries(t) {
		grp := ma.Automorphisms(adv)
		maxT := 4
		if adv.N() > 2 {
			maxT = 3
		}
		full, err := Build(adv, 2, 1, 0)
		if err != nil {
			t.Fatalf("%s: Build: %v", adv.Name(), err)
		}
		q, err := BuildCtx(ctx, adv, 2, 1, Config{Symmetry: grp})
		if err != nil {
			t.Fatalf("%s: quotient Build: %v", adv.Name(), err)
		}
		if grp.Trivial() != !q.Quotiented() {
			t.Fatalf("%s: group trivial=%v but Quotiented=%v", adv.Name(), grp.Trivial(), q.Quotiented())
		}
		assertQuotientExpandsToFull(t, adv.Name(), full, q)
		for horizon := 2; horizon <= maxT; horizon++ {
			full, err = full.Extend(ctx, horizon)
			if err != nil {
				t.Fatalf("%s: Extend: %v", adv.Name(), err)
			}
			q, err = q.Extend(ctx, horizon)
			if err != nil {
				t.Fatalf("%s: quotient Extend: %v", adv.Name(), err)
			}
			assertQuotientExpandsToFull(t, adv.Name(), full, q)
		}
	}
}

// TestQuotientTrivialGroupIsNoOp pins the m = 1 path: an explicitly
// trivial group must produce a space indistinguishable from a plain build
// (no sym state, no pseudo expansion, Mult 1 decompositions).
func TestQuotientTrivialGroupIsNoOp(t *testing.T) {
	ctx := context.Background()
	adv := ma.LossyLink2()
	plain, err := Build(adv, 2, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	q, err := BuildCtx(ctx, adv, 2, 3, Config{Symmetry: ma.TrivialGroup(adv.N())})
	if err != nil {
		t.Fatal(err)
	}
	if q.Quotiented() {
		t.Fatal("trivial group produced a quotiented space")
	}
	assertSpacesEqual(t, adv.Name(), plain, q)
	dq := Decompose(q)
	if dq.mult() != 1 {
		t.Fatalf("trivial-group decomposition has mult %d", dq.mult())
	}
	assertDecompositionsEqual(t, adv.Name(), Decompose(plain), dq)
}

// TestQuotientShrinksSpace pins the point of the exercise: for the
// symmetric lossy-link family the quotient interns strictly fewer items
// while representing the same number of full-space runs.
func TestQuotientShrinksSpace(t *testing.T) {
	adv := ma.LossyLink2()
	grp := ma.Automorphisms(adv)
	if grp.Trivial() {
		t.Fatal("lossy-link-2 automorphism group is trivial; expected the swap")
	}
	full, err := Build(adv, 2, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	q, err := BuildCtx(context.Background(), adv, 2, 4, Config{Symmetry: grp})
	if err != nil {
		t.Fatal(err)
	}
	if q.Len() >= full.Len() {
		t.Fatalf("quotient interned %d items, full space %d — no reduction", q.Len(), full.Len())
	}
	if q.FullLen() != full.Len() {
		t.Fatalf("quotient FullLen %d, full space %d", q.FullLen(), full.Len())
	}
}

// TestQuotientRefineMatchesDecompose is TestRefineMatchesDecompose over
// quotiented spaces: incremental pseudo-item refinement must equal the
// from-scratch pseudo decomposition at every horizon.
func TestQuotientRefineMatchesDecompose(t *testing.T) {
	ctx := context.Background()
	for _, adv := range seedAdversaries(t) {
		grp := ma.Automorphisms(adv)
		if grp.Trivial() {
			continue
		}
		maxT := 4
		if adv.N() > 2 {
			maxT = 3
		}
		q, err := BuildCtx(ctx, adv, 2, 1, Config{Symmetry: grp})
		if err != nil {
			t.Fatal(err)
		}
		d, err := DecomposeCtx(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		for horizon := 2; horizon <= maxT; horizon++ {
			next, err := q.Extend(ctx, horizon)
			if err != nil {
				t.Fatal(err)
			}
			refined, err := d.Refine(ctx, next)
			if err != nil {
				t.Fatalf("%s: Refine to %d: %v", adv.Name(), horizon, err)
			}
			scratch, err := DecomposeCtx(ctx, next)
			if err != nil {
				t.Fatal(err)
			}
			assertDecompositionsEqual(t, adv.Name(), scratch, refined)
			q, d = next, refined
		}
	}
}

// TestQuotientSnapshotRestore pins the checkpoint path under a quotient:
// the page format carries no symmetry state, so a restore handed the same
// group must replay the stabilizer column and relabel memo to byte
// equality — checked by comparing stab, FullLen, a further extension, and
// the pseudo decomposition (which exercises every memo entry). AncestorAt
// must likewise rehydrate earlier horizons with orbit accounting intact.
func TestQuotientSnapshotRestore(t *testing.T) {
	ctx := context.Background()
	for _, adv := range seedAdversaries(t) {
		grp := ma.Automorphisms(adv)
		if grp.Trivial() {
			continue
		}
		horizon := 4
		if adv.N() > 2 {
			horizon = 3
		}
		dir := t.TempDir()
		pg, err := pager.New(pager.Config{Dir: dir, HotBytes: 256})
		if err != nil {
			t.Fatal(err)
		}
		in := ptg.NewInterner()
		s, err := BuildCtx(ctx, adv, 2, horizon, Config{Pager: pg, Interner: in, Symmetry: grp})
		if err != nil {
			t.Fatalf("%s: Build: %v", adv.Name(), err)
		}
		rounds := mustSnapshotChain(t, s)
		in2, err := ptg.ImportInterner(in.Export())
		if err != nil {
			t.Fatal(err)
		}
		pg2, err := pager.New(pager.Config{Dir: dir, HotBytes: 256})
		if err != nil {
			t.Fatal(err)
		}
		restored, err := RestoreChain(ChainSpec{
			Adversary:   adv,
			InputDomain: 2,
			Interner:    in2,
			Pager:       pg2,
			Rounds:      rounds,
			Symmetry:    grp,
		})
		if err != nil {
			t.Fatalf("%s: RestoreChain: %v", adv.Name(), err)
		}
		assertSpacesEqual(t, adv.Name(), s, restored)
		if !restored.Quotiented() || restored.FullLen() != s.FullLen() {
			t.Fatalf("%s: restored FullLen %d (quotiented=%v), want %d",
				adv.Name(), restored.FullLen(), restored.Quotiented(), s.FullLen())
		}
		for i := range s.stab {
			if s.stab[i] != restored.stab[i] {
				t.Fatalf("%s: stab[%d] %b vs restored %b", adv.Name(), i, s.stab[i], restored.stab[i])
			}
		}
		dWant, err := DecomposeCtx(ctx, s)
		if err != nil {
			t.Fatal(err)
		}
		dGot, err := DecomposeCtx(ctx, restored)
		if err != nil {
			t.Fatal(err)
		}
		assertDecompositionsEqual(t, adv.Name(), dWant, dGot)
		sNext, err := s.Extend(ctx, horizon+1)
		if err != nil {
			t.Fatal(err)
		}
		rNext, err := restored.Extend(ctx, horizon+1)
		if err != nil {
			t.Fatalf("%s: Extend restored: %v", adv.Name(), err)
		}
		assertSpacesEqual(t, adv.Name()+" extended", sNext, rNext)
		if sNext.FullLen() != rNext.FullLen() {
			t.Fatalf("%s: extended FullLen %d vs %d", adv.Name(), sNext.FullLen(), rNext.FullLen())
		}
		anc, err := sNext.AncestorAt(horizon - 1)
		if err != nil {
			t.Fatalf("%s: AncestorAt: %v", adv.Name(), err)
		}
		if !anc.Quotiented() || len(anc.stab) != anc.Len() {
			t.Fatalf("%s: ancestor lost quotient state", adv.Name())
		}
		dAnc, err := DecomposeCtx(ctx, anc)
		if err != nil {
			t.Fatal(err)
		}
		snap := SnapshotDecomposition(dAnc)
		if snap.Mult != anc.SymOrder() {
			t.Fatalf("%s: snapshot mult %d, want %d", adv.Name(), snap.Mult, anc.SymOrder())
		}
		dBack, err := RestoreDecomposition(anc, snap)
		if err != nil {
			t.Fatalf("%s: RestoreDecomposition: %v", adv.Name(), err)
		}
		assertDecompositionsEqual(t, adv.Name()+" ancestor", dAnc, dBack)
	}
}

// assertQuotientExpandsToFull expands every pseudo-item of q through the
// group and checks the expansion against the full space item by item, then
// checks that the pseudo decomposition induces exactly the full space's
// partition and summaries.
func assertQuotientExpandsToFull(t *testing.T, name string, full, q *Space) {
	t.Helper()
	m := q.SymOrder()
	if q.FullLen() != full.Len() {
		t.Fatalf("%s h=%d: FullLen %d vs full space %d items", name, q.Horizon, q.FullLen(), full.Len())
	}
	fullIdx := make(map[string]int, full.Len())
	for i := 0; i < full.Len(); i++ {
		fullIdx[full.RunOf(i).Key()] = i
	}
	n := q.N()
	toFull := make([]int, q.pseudoLen())
	covered := make([]bool, full.Len())
	for i := 0; i < q.Len(); i++ {
		orbit := make(map[int]bool, m)
		for k := 0; k < m; k++ {
			r := q.PseudoRun(i, k)
			fi, ok := fullIdx[r.Key()]
			if !ok {
				t.Fatalf("%s h=%d: pseudo (%d,%d) expands to run %v not in the full space", name, q.Horizon, i, k, r)
			}
			toFull[i*m+k] = fi
			covered[fi] = true
			orbit[fi] = true
			// Views of the pseudo-item must equal the independent per-run
			// computation on the expanded run.
			pv := q.PseudoViews(i, k)
			ref := ptg.ComputeViews(q.Interner, r)
			for tt := 0; tt <= q.Horizon; tt++ {
				for p := 0; p < n; p++ {
					if pv.ID(tt, p) != ref.ID(tt, p) || pv.Heard(tt, p) != ref.Heard(tt, p) {
						t.Fatalf("%s h=%d: pseudo (%d,%d) view (%d,%b) at (t=%d,p=%d) differs from ComputeViews (%d,%b)",
							name, q.Horizon, i, k, pv.ID(tt, p), pv.Heard(tt, p), tt, p, ref.ID(tt, p), ref.Heard(tt, p))
					}
				}
			}
			if got, want := q.pseudoHeardByAll(i, k), full.HeardByAll(fi); got != want {
				t.Fatalf("%s h=%d: pseudo (%d,%d) heardByAll %b vs full %b", name, q.Horizon, i, k, got, want)
			}
			for p := 0; p < n; p++ {
				if got, want := q.PseudoInput(i, k, p), full.Inputs(fi)[p]; got != want {
					t.Fatalf("%s h=%d: pseudo (%d,%d) input[%d] %d vs full %d", name, q.Horizon, i, k, p, got, want)
				}
			}
			if q.Valence(i) != full.Valence(fi) {
				t.Fatalf("%s h=%d: pseudo (%d,%d) valence %d vs full %d", name, q.Horizon, i, k, q.Valence(i), full.Valence(fi))
			}
			if q.doneAt[i] != full.doneAt[fi] {
				t.Fatalf("%s h=%d: pseudo (%d,%d) doneAt %d vs full %d", name, q.Horizon, i, k, q.doneAt[i], full.doneAt[fi])
			}
		}
		if q.OrbitSize(i) != len(orbit) {
			t.Fatalf("%s h=%d: item %d OrbitSize %d but %d distinct full runs", name, q.Horizon, i, q.OrbitSize(i), len(orbit))
		}
	}
	for fi, ok := range covered {
		if !ok {
			t.Fatalf("%s h=%d: full run %d not covered by any pseudo-item", name, q.Horizon, fi)
		}
	}
	// Decomposition: the pseudo partition pushed onto full items must be
	// well-defined (all pseudo twins of one full run agree) and equal the
	// full partition, with identical component summaries.
	df := Decompose(full)
	dq := Decompose(q)
	if dq.mult() != m {
		t.Fatalf("%s h=%d: decomposition mult %d, group order %d", name, q.Horizon, dq.mult(), m)
	}
	induced := make([]int, full.Len())
	for i := range induced {
		induced[i] = -1
	}
	for pi, fi := range toFull {
		c := dq.CompOf[pi]
		if induced[fi] == -1 {
			induced[fi] = c
		} else if induced[fi] != c {
			t.Fatalf("%s h=%d: full run %d lands in quotient components %d and %d", name, q.Horizon, fi, induced[fi], c)
		}
	}
	wantCanon := canonPartition(df.CompOf)
	gotCanon := canonPartition(induced)
	for i := range wantCanon {
		if wantCanon[i] != gotCanon[i] {
			t.Fatalf("%s h=%d: induced partition differs from full at item %d (full comp %d-class, quotient %d-class)",
				name, q.Horizon, i, wantCanon[i], gotCanon[i])
		}
	}
	for ci := range df.Comps {
		fc := &df.Comps[ci]
		qc := &dq.Comps[induced[fc.Members[0]]]
		if !sameInts(fc.Valences, qc.Valences) || fc.Broadcasters != qc.Broadcasters || fc.UniformInputs != qc.UniformInputs {
			t.Fatalf("%s h=%d: component summaries differ: full %+v vs quotient %+v", name, q.Horizon, fc, qc)
		}
	}
}

// canonPartition relabels component ids by first occurrence, so two
// partitions over the same index set compare slice-equal iff they are the
// same partition.
func canonPartition(labels []int) []int {
	out := make([]int, len(labels))
	remap := make(map[int]int, len(labels))
	for i, l := range labels {
		c, ok := remap[l]
		if !ok {
			c = len(remap)
			remap[l] = c
		}
		out[i] = c
	}
	return out
}
