package topo

import (
	"context"
	"testing"

	"topocon/internal/ma"
	"topocon/internal/pager"
	"topocon/internal/ptg"
)

func newTestChainPager(t *testing.T, budget int64) *pager.Pager {
	t.Helper()
	pg, err := pager.New(pager.Config{Dir: t.TempDir(), HotBytes: budget})
	if err != nil {
		t.Fatalf("pager.New: %v", err)
	}
	return pg
}

// TestPagedBuildMatchesUnpaged pins the transparency contract: building
// under a pager with a tiny hot-set budget (so every interior round is
// evicted) yields exactly the space an unpaged build yields, with chain
// walks faulting spilled rounds back in.
func TestPagedBuildMatchesUnpaged(t *testing.T) {
	ctx := context.Background()
	for _, adv := range seedAdversaries(t) {
		// The two-process families run deep under a 1-byte budget (every
		// interior round evicted, every chain walk a fault); the larger
		// families stay shallower with a budget that holds the interior
		// rounds, so the O(items·rounds) comparison walks below don't thrash
		// one page file read per item.
		horizon, budget := 4, int64(64<<10)
		if adv.N() == 2 {
			budget = 1
		} else {
			horizon = 3
		}
		plain, err := Build(adv, 2, horizon, 0)
		if err != nil {
			t.Fatalf("%s: Build: %v", adv.Name(), err)
		}
		pg := newTestChainPager(t, budget)
		paged, err := BuildCtx(ctx, adv, 2, horizon, Config{Pager: pg})
		if err != nil {
			t.Fatalf("%s: paged Build: %v", adv.Name(), err)
		}
		assertSpacesEqual(t, adv.Name(), plain, paged)
		st := pg.Stats()
		if st.PagesWritten == 0 {
			t.Fatalf("%s: paging never engaged: %+v", adv.Name(), st)
		}
		if adv.N() == 2 && (st.PagesSpilled == 0 || st.PagesFaulted == 0) {
			t.Fatalf("%s: tiny budget never spilled/faulted: %+v", adv.Name(), st)
		}
		dPlain, err := DecomposeCtx(ctx, plain)
		if err != nil {
			t.Fatal(err)
		}
		dPaged, err := DecomposeCtx(ctx, paged)
		if err != nil {
			t.Fatal(err)
		}
		assertDecompositionsEqual(t, adv.Name(), dPlain, dPaged)
	}
}

// TestPagedHotBudgetCeiling pins the hot-set policy: the resident payload
// bytes never exceed budget + one page (the most recently touched page is
// never evicted).
func TestPagedHotBudgetCeiling(t *testing.T) {
	const budget = 4 << 10
	pg := newTestChainPager(t, budget)
	s, err := BuildCtx(context.Background(), ma.LossyLink2(), 2, 7, Config{Pager: pg})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	var maxPage int64
	for _, cr := range mustSnapshotChain(t, s) {
		if cr.Bytes > maxPage {
			maxPage = cr.Bytes
		}
	}
	if st := pg.Stats(); st.PeakHotBytes > budget+maxPage {
		t.Fatalf("peak hot bytes %d exceed budget %d + largest page %d", st.PeakHotBytes, budget, maxPage)
	}
}

func mustSnapshotChain(t *testing.T, s *Space) []ChainRound {
	t.Helper()
	rounds, err := s.SnapshotChain()
	if err != nil {
		t.Fatalf("SnapshotChain: %v", err)
	}
	return rounds
}

// TestSnapshotRestoreChain is the core resume invariant at the topo layer:
// exporting the interner plus the chain pages and restoring them in fresh
// objects (as a new process would) reproduces the space exactly — same
// ViewIDs, same states behaviourally (pinned by extending one more round
// and comparing), with zero re-extension of the checkpointed rounds.
func TestSnapshotRestoreChain(t *testing.T) {
	ctx := context.Background()
	for _, adv := range seedAdversaries(t) {
		horizon, budget := 3, int64(64<<10)
		if adv.N() == 2 {
			budget = 256
		} else {
			horizon = 2
		}
		dir := t.TempDir()
		pg, err := pager.New(pager.Config{Dir: dir, HotBytes: budget})
		if err != nil {
			t.Fatal(err)
		}
		in := ptg.NewInterner()
		s, err := BuildCtx(ctx, adv, 2, horizon, Config{Pager: pg, Interner: in})
		if err != nil {
			t.Fatalf("%s: Build: %v", adv.Name(), err)
		}
		rounds := mustSnapshotChain(t, s)
		blob := in.Export()

		// "New process": fresh interner, fresh pager over the same dir.
		in2, err := ptg.ImportInterner(blob)
		if err != nil {
			t.Fatalf("%s: ImportInterner: %v", adv.Name(), err)
		}
		pg2, err := pager.New(pager.Config{Dir: dir, HotBytes: budget})
		if err != nil {
			t.Fatal(err)
		}
		restored, err := RestoreChain(ChainSpec{
			Adversary:   adv,
			InputDomain: 2,
			Interner:    in2,
			Pager:       pg2,
			Rounds:      rounds,
		})
		if err != nil {
			t.Fatalf("%s: RestoreChain: %v", adv.Name(), err)
		}
		assertSpacesEqual(t, adv.Name(), s, restored)
		// Imported interners reproduce IDs, so even the raw view columns
		// must agree.
		for i := 0; i < s.Len(); i++ {
			for p := 0; p < s.N(); p++ {
				if s.ViewAt(i, p) != restored.ViewAt(i, p) {
					t.Fatalf("%s item %d proc %d: view %d vs %d",
						adv.Name(), i, p, s.ViewAt(i, p), restored.ViewAt(i, p))
				}
			}
		}
		// The replayed automaton states must behave identically: extend both
		// one more round and compare.
		sNext, err := s.Extend(ctx, s.Horizon+1)
		if err != nil {
			t.Fatalf("%s: Extend original: %v", adv.Name(), err)
		}
		rNext, err := restored.Extend(ctx, restored.Horizon+1)
		if err != nil {
			t.Fatalf("%s: Extend restored: %v", adv.Name(), err)
		}
		assertSpacesEqual(t, adv.Name()+" extended", sNext, rNext)
	}
}

// TestRestoreChainRejectsCorruptPages pins the never-a-wrong-resume
// contract: a truncated or bit-flipped page file fails the restore with a
// clean error (and quarantines the page), it never yields a wrong chain.
func TestRestoreChainRejectsCorruptPages(t *testing.T) {
	adv := ma.LossyLink2()
	dir := t.TempDir()
	pg, err := pager.New(pager.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	in := ptg.NewInterner()
	s, err := BuildCtx(context.Background(), adv, 2, 3, Config{Pager: pg, Interner: in})
	if err != nil {
		t.Fatal(err)
	}
	rounds := mustSnapshotChain(t, s)
	// Swap two rounds' references: header validation must catch it.
	swapped := append([]ChainRound(nil), rounds...)
	swapped[0].PageID, swapped[1].PageID = swapped[1].PageID, swapped[0].PageID
	in2, err := ptg.ImportInterner(in.Export())
	if err != nil {
		t.Fatal(err)
	}
	pg2, err := pager.New(pager.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RestoreChain(ChainSpec{
		Adversary: adv, InputDomain: 2, Interner: in2, Pager: pg2, Rounds: swapped,
	}); err == nil {
		t.Fatal("RestoreChain accepted swapped round pages")
	}
}

// TestAncestorAt pins SpaceAt-style rehydration: the ancestor view of a
// paged chain equals the space the ancestor horizon's Extend produced.
func TestAncestorAt(t *testing.T) {
	ctx := context.Background()
	adv := ma.LossyLink3()
	pg := newTestChainPager(t, 1)
	in := ptg.NewInterner()
	s1, err := BuildCtx(ctx, adv, 2, 1, Config{Pager: pg, Interner: in})
	if err != nil {
		t.Fatal(err)
	}
	s3, err := s1.Extend(ctx, 3)
	if err != nil {
		t.Fatal(err)
	}
	anc, err := s3.AncestorAt(1)
	if err != nil {
		t.Fatalf("AncestorAt: %v", err)
	}
	assertSpacesEqual(t, "ancestor", s1, anc)
	d1, err := DecomposeCtx(ctx, s1)
	if err != nil {
		t.Fatal(err)
	}
	dAnc, err := DecomposeCtx(ctx, anc)
	if err != nil {
		t.Fatal(err)
	}
	assertDecompositionsEqual(t, "ancestor", d1, dAnc)
	if _, err := s3.AncestorAt(4); err == nil {
		t.Fatal("AncestorAt beyond horizon succeeded")
	}
	if got, err := s3.AncestorAt(3); err != nil || got != s3 {
		t.Fatalf("AncestorAt(Horizon) = %v, %v; want receiver", got, err)
	}
}

// TestDecompSnapshotRoundTrip pins that a restored decomposition is
// indistinguishable from the original — including as a Refine parent.
func TestDecompSnapshotRoundTrip(t *testing.T) {
	ctx := context.Background()
	for _, adv := range seedAdversaries(t) {
		s, err := Build(adv, 2, 2, 0)
		if err != nil {
			t.Fatalf("%s: Build: %v", adv.Name(), err)
		}
		d, err := DecomposeCtx(ctx, s)
		if err != nil {
			t.Fatal(err)
		}
		restored, err := RestoreDecomposition(s, SnapshotDecomposition(d))
		if err != nil {
			t.Fatalf("%s: RestoreDecomposition: %v", adv.Name(), err)
		}
		assertDecompositionsEqual(t, adv.Name(), d, restored)
		child, err := s.Extend(ctx, 3)
		if err != nil {
			t.Fatal(err)
		}
		refWant, err := d.Refine(ctx, child)
		if err != nil {
			t.Fatal(err)
		}
		refGot, err := restored.Refine(ctx, child)
		if err != nil {
			t.Fatalf("%s: Refine from restored: %v", adv.Name(), err)
		}
		assertDecompositionsEqual(t, adv.Name()+" refined", refWant, refGot)
	}
}

// TestRestoreDecompositionRejectsBadShapes pins strict validation.
func TestRestoreDecompositionRejectsBadShapes(t *testing.T) {
	s, err := Build(ma.LossyLink2(), 2, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	d := Decompose(s)
	good := SnapshotDecomposition(d)
	bad := func(mutate func(*DecompSnapshot)) *DecompSnapshot {
		c := &DecompSnapshot{
			Horizon: good.Horizon,
			CompOf:  append([]int(nil), good.CompOf...),
			Comps:   append([]CompSnapshot(nil), good.Comps...),
		}
		mutate(c)
		return c
	}
	cases := map[string]*DecompSnapshot{
		"horizon":     bad(func(c *DecompSnapshot) { c.Horizon++ }),
		"shortCompOf": bad(func(c *DecompSnapshot) { c.CompOf = c.CompOf[:1] }),
		"outOfRange":  bad(func(c *DecompSnapshot) { c.CompOf[0] = len(c.Comps) }),
		"emptyComp":   bad(func(c *DecompSnapshot) { c.Comps = append(c.Comps, CompSnapshot{}) }),
	}
	if len(good.Comps) >= 2 {
		cases["unordered"] = bad(func(c *DecompSnapshot) { c.CompOf[0] = 1 })
	}
	for name, snap := range cases {
		if _, err := RestoreDecomposition(s, snap); err == nil {
			t.Errorf("%s: RestoreDecomposition accepted bad snapshot", name)
		}
	}
}
