package topo

import (
	"context"
	"fmt"
	"math"
	"math/bits"
	"sync"

	"topocon/internal/graph"
	"topocon/internal/ptg"
	"topocon/internal/uf"
)

// refineScratch is the reusable dense bucket table of Refine, indexed by
// interned ViewID. Entries are validated by epoch instead of being cleared:
// the epoch counter is monotone across uses (one epoch per parent
// component), so stale entries from earlier refinements never match. The
// tables only ever grow (with geometric headroom, so a session whose
// interner grows every horizon still amortizes), and pooling keeps them
// alive across Refine calls instead of feeding the garbage collector two
// table-sized allocations per horizon.
type refineScratch struct {
	stamp   []int32 // epoch of the entry's last write
	firstOf []int32 // bucket representative (child item index)
	epoch   int32
}

var refineScratchPool = sync.Pool{New: func() any { return new(refineScratch) }}

// acquire readies the tables for size view IDs and epochs more epochs,
// re-zeroing only on int32 epoch wraparound (once per ~2 billion
// components).
func (sc *refineScratch) acquire(size int, epochs int32) {
	if cap(sc.stamp) < size {
		// No copy: stale entries are unreadable by design (their epochs
		// are below every future epoch), so fresh zeroed tables are
		// equivalent and cheaper.
		sc.stamp = make([]int32, size, size+size/4+64)
		sc.firstOf = make([]int32, size, size+size/4+64)
	} else {
		sc.stamp = sc.stamp[:size]
		sc.firstOf = sc.firstOf[:size]
	}
	if sc.epoch > math.MaxInt32-epochs-1 {
		for i := range sc.stamp {
			sc.stamp[i] = 0
		}
		sc.epoch = 0
	}
}

// Refine computes the decomposition of child — a space produced by a
// one-round Extend of the decomposed space — incrementally from the parent
// partition, instead of re-bucketing the whole space from scratch.
//
// Soundness rests on the refinement property (package ptg, Definition 6.2):
// views only ever refine as the horizon grows, so ε-approximation
// components only ever split. Concretely, two child runs sharing a time-t
// view share the interned node's children, which include (self-loops are
// mandatory) their parents' time-(t-1) views — so related children always
// descend from one parent component. Refine therefore
//
//   - seeds the child union-find from the parent partition: view buckets
//     are built per parent component, never globally, so splits are
//     detected locally and the bucket table needs no global hash map —
//     interned ViewIDs are dense, so a pooled epoch-stamped array serves
//     every component;
//   - materializes components without the map-based uf.Groups: set roots
//     are item indices, so a dense root table plus a two-sweep arena fill
//     yields the groups in the same ascending-smallest-member order, the
//     CompOf labels, each group's parent component and the split counts in
//     O(items);
//   - reuses the parent component's summaries where the component did not
//     split: Valences and UniformInputs are horizon-independent and carry
//     over verbatim, and Broadcasters only ever grow (heard-sets are
//     monotone), so only not-yet-broadcasters are rescanned, with an early
//     exit once none can still join.
//
// The result is identical — partition, component order, CompOf, Valences,
// Broadcasters, UniformInputs — to DecomposeCtx(ctx, child), which remains
// the from-scratch reference (asserted by TestRefineMatchesDecompose over
// every seed adversary family and the scenarios/ corpus).
//
// The receiver and child are not modified; on cancellation Refine returns
// ctx.Err() and can simply be called again. When the child's parallelism
// is > 1, the scan is spread over the worker pool by parent component,
// mirroring the chunked scan of DecomposeCtx (in-range unions are recorded
// as edges and applied by a sequential merge; no merge across chunks is
// needed because related children never cross parent components).
//
// Refine errors if child was not produced by a one-round Extend of the
// decomposed space (from-scratch builds carry no parent linkage).
//
//topocon:allocfree
func (d *Decomposition) Refine(ctx context.Context, child *Space) (*Decomposition, error) {
	parent := d.Space
	if child == nil || child.parentOffsets == nil ||
		child.fr.prev != parent.fr ||
		child.Horizon != parent.Horizon+1 ||
		len(child.parentOffsets) != parent.Len()+1 ||
		child.parentOffsets[parent.Len()] != child.Len() ||
		child.Interner != parent.Interner ||
		child.sym != parent.sym ||
		d.mult() != parent.SymOrder() {
		return nil, fmt.Errorf("topo: Refine: child is not a one-round extension of the decomposed horizon-%d space", parent.Horizon)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Under a symmetry quotient the refinement runs over pseudo-items
	// (components.go): the pseudo parent of child pseudo-item (c,k) is
	// (parentOf(c), k) with the same group element, and the relabel memo —
	// which covers every round of the chain — turns rep rows into pseudo
	// rows on the fly. With m = 1 every pseudo index collapses to the item
	// index and the memo lookups vanish.
	m := child.SymOrder()
	nItems := child.Len()
	nPseudo := child.pseudoLen()
	u := uf.New(nPseudo)
	n := child.N()
	child.fr.fault()
	ids := child.fr.ids
	offsets := child.parentOffsets
	// All child views were interned during the extension (the round relabel
	// pass interns every pseudo twin too), so their IDs are below the
	// interner size read here.
	tableSize := child.Interner.Size()
	if child.parallelism <= 1 {
		sc := refineScratchPool.Get().(*refineScratch)
		sc.acquire(tableSize, int32(len(d.Comps)))
		stamp, firstOf := sc.stamp, sc.firstOf
		scanned := 0
		for ci := range d.Comps {
			sc.epoch++
			epoch := sc.epoch
			for _, ppi := range d.Comps[ci].Members {
				if scanned%cancelCheckInterval == 0 && ctx.Err() != nil {
					refineScratchPool.Put(sc)
					return nil, ctx.Err()
				}
				pp, k := ppi/m, ppi%m
				var memo []ptg.ViewID
				if k != 0 {
					memo = child.sym.memo[k]
				}
				for i := offsets[pp]; i < offsets[pp+1]; i++ {
					scanned++
					pci := i*m + k
					for _, id := range ids[i*n : (i+1)*n] {
						if memo != nil {
							id = memo[id]
						}
						if stamp[id] == epoch {
							u.Union(int(firstOf[id]), pci)
						} else {
							stamp[id] = epoch
							firstOf[id] = int32(pci)
						}
					}
				}
			}
		}
		refineScratchPool.Put(sc)
	} else {
		// Chunks are whole parent components, so no bucket representative
		// ever needs merging across chunks; workers only record their
		// in-chunk unions as edges for the sequential merge (the union-find
		// is not concurrency-safe, and the closure is order-independent).
		var (
			edgeLists [][][2]int
			edgesMu   sync.Mutex
		)
		err := forEachChunk(ctx, len(d.Comps), child.parallelism, func(lo, hi int) error {
			sc := refineScratchPool.Get().(*refineScratch)
			sc.acquire(tableSize, int32(hi-lo))
			stamp, firstOf := sc.stamp, sc.firstOf
			var edges [][2]int
			for ci := lo; ci < hi; ci++ {
				if ctx.Err() != nil {
					refineScratchPool.Put(sc)
					return ctx.Err()
				}
				sc.epoch++
				epoch := sc.epoch
				for _, ppi := range d.Comps[ci].Members {
					pp, k := ppi/m, ppi%m
					var memo []ptg.ViewID
					if k != 0 {
						memo = child.sym.memo[k]
					}
					for i := offsets[pp]; i < offsets[pp+1]; i++ {
						pci := i*m + k
						for _, id := range ids[i*n : (i+1)*n] {
							if memo != nil {
								id = memo[id]
							}
							if stamp[id] == epoch {
								if int(firstOf[id]) != pci {
									edges = append(edges, [2]int{int(firstOf[id]), pci})
								}
							} else {
								stamp[id] = epoch
								firstOf[id] = int32(pci)
							}
						}
					}
				}
			}
			refineScratchPool.Put(sc)
			edgesMu.Lock()
			edgeLists = append(edgeLists, edges)
			edgesMu.Unlock()
			return nil
		})
		if err != nil {
			return nil, err
		}
		for _, edges := range edgeLists {
			for _, e := range edges {
				u.Union(e[0], e[1])
			}
		}
	}
	// Materialize the child components without the general map-based
	// uf.Groups: roots are item indices, so a dense root → group table and
	// an ascending sweep produce the group count, sizes, CompOf labels,
	// each group's parent component (the first member's parent decides —
	// all members share one) and the per-parent-component split counts;
	// a second sweep fills the members into one arena.
	res := &Decomposition{
		Space:  child,
		CompOf: make([]int, nPseudo),
		Mult:   m,
	}
	rootGroup := make([]int32, nPseudo) // group id + 1 of each set root
	sizes := make([]int32, 0, len(d.Comps)*2)
	groupParent := make([]int32, 0, len(d.Comps)*2)
	splits := make([]int32, len(d.Comps))
	pp := 0
	pci := 0
	for i := 0; i < nItems; i++ {
		for i >= offsets[pp+1] {
			pp++
		}
		for k := 0; k < m; k++ {
			r := u.Find(pci)
			g := rootGroup[r]
			if g == 0 {
				g = int32(len(sizes) + 1)
				rootGroup[r] = g
				pc := d.CompOf[pp*m+k]
				sizes = append(sizes, 0)
				groupParent = append(groupParent, int32(pc))
				splits[pc]++
			}
			sizes[g-1]++
			res.CompOf[pci] = int(g - 1)
			pci++
		}
	}
	res.Comps = make([]Component, len(sizes))
	arena := make([]int, nPseudo)
	for gi, size := range sizes {
		res.Comps[gi].Members, arena = arena[:0:size], arena[size:]
	}
	for i := 0; i < nPseudo; i++ {
		gi := res.CompOf[i]
		res.Comps[gi].Members = append(res.Comps[gi].Members, i)
	}
	// Summaries, seeded from the parent component's. Both summary masks are
	// monotone under refinement — heard-sets only grow, and input uniformity
	// over a subset of a component's runs only widens — so whether or not
	// the component split, only the processes that were not yet
	// broadcasters / uniform in the parent need rescanning, and an unsplit
	// component keeps its Valences and UniformInputs verbatim. Valences of
	// split components are rescanned (a subset can lose values); input
	// domains beyond the 64-bit valence mask take the from-scratch
	// summarize, which owns the spill path.
	full := graph.AllNodes(n)
	if err := forEachChunk(ctx, len(res.Comps), child.parallelism, func(lo, hi int) error {
		for gi := lo; gi < hi; gi++ {
			members := res.Comps[gi].Members
			pc := &d.Comps[groupParent[gi]]
			if splits[groupParent[gi]] == 1 {
				res.Comps[gi] = refreshSummary(child, pc, members)
				continue
			}
			if child.InputDomain > 64 {
				res.Comps[gi] = summarize(child, members)
				continue
			}
			var vmask uint64
			bcCand := full &^ pc.Broadcasters
			uiCand := full &^ pc.UniformInputs
			if m == 1 {
				first := child.Inputs(members[0])
				for _, i := range members {
					if v := child.Valence(i); v >= 0 {
						vmask |= 1 << uint(v)
					}
					if bcCand != 0 {
						bcCand &= child.HeardByAll(i)
					}
					if uiCand != 0 {
						in := child.Inputs(i)
						for mm := uiCand; mm != 0; mm &= mm - 1 {
							p := bits.TrailingZeros64(mm)
							if in[p] != first[p] {
								uiCand &^= 1 << uint(p)
							}
						}
					}
				}
			} else {
				// Pseudo members: valence is relabel-invariant, heard masks
				// and input positions permute (components.go, summarizePseudo).
				grp := child.sym.group
				f0, fk := members[0]/m, members[0]%m
				firstIn, firstInv := child.Inputs(f0), grp.Inv(fk)
				for _, pmi := range members {
					i, k := pmi/m, pmi%m
					if v := child.Valence(i); v >= 0 {
						vmask |= 1 << uint(v)
					}
					if bcCand != 0 {
						bcCand &= child.pseudoHeardByAll(i, k)
					}
					if uiCand != 0 {
						in, inv := child.Inputs(i), grp.Inv(k)
						for mm := uiCand; mm != 0; mm &= mm - 1 {
							p := bits.TrailingZeros64(mm)
							if in[inv[p]] != firstIn[firstInv[p]] {
								uiCand &^= 1 << uint(p)
							}
						}
					}
				}
			}
			res.Comps[gi].Valences = valenceList(vmask, nil)
			res.Comps[gi].Broadcasters = pc.Broadcasters | bcCand
			res.Comps[gi].UniformInputs = pc.UniformInputs | uiCand
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return res, nil
}

// refreshSummary carries a parent component's summary one horizon deeper
// for a component that did not split: its members are exactly the children
// of the parent component's members, so the input-derived summaries
// (Valences, UniformInputs) are unchanged, and Broadcasters — monotone
// under refinement, since heard-sets only grow — needs a rescan only for
// the processes that were not broadcasters yet.
func refreshSummary(s *Space, parent *Component, members []int) Component {
	c := Component{
		Members:       members,
		Valences:      append([]int(nil), parent.Valences...),
		UniformInputs: parent.UniformInputs,
	}
	m := s.SymOrder()
	candidates := graph.AllNodes(s.N()) &^ parent.Broadcasters
	for _, i := range members {
		if candidates == 0 {
			break
		}
		if m == 1 {
			candidates &= s.HeardByAll(i)
		} else {
			candidates &= s.pseudoHeardByAll(i/m, i%m)
		}
	}
	c.Broadcasters = parent.Broadcasters | candidates
	return c
}
