package topo

import (
	"context"
	"testing"

	"topocon/internal/ma"
)

// TestExtendAllocsPerChild is the allocation-regression pin on the columnar
// frontier expansion: extending a space must cost a bounded number of
// allocations per call — the child columns, the choice layout and the
// per-chunk scratch — and nothing per extended item. The pre-columnar
// layout allocated a Views clone, two row slices and a Run copy per child
// (≈ 12 allocations each); a reintroduction of any per-child allocation
// trips the budget immediately at 128 children.
func TestExtendAllocsPerChild(t *testing.T) {
	ctx := context.Background()
	s, err := Build(ma.LossyLink2(), 2, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	children := 2 * s.Len() // LossyLink2 branches twice per item
	// Warm up so every child view of the measured rounds is already
	// interned: re-interning is allocation-free, which isolates extendOne's
	// own allocations from the (amortized, first-sight-only) interner
	// growth.
	if _, err := s.extendOne(ctx); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(20, func() {
		next, err := s.extendOne(ctx)
		if err != nil {
			t.Fatalf("extendOne: %v", err)
		}
		if next.Len() != children {
			t.Fatalf("extendOne: %d children, want %d", next.Len(), children)
		}
	})
	// Budget: the fixed per-call allocations (8 column slices, choices +
	// offsets layout, Space + frontier headers, pool scratch) plus strictly
	// less than one quarter allocation per child — i.e. per-child cost must
	// be zero, with headroom only in the fixed part.
	const fixedBudget = 24
	if ceiling := fixedBudget + float64(children)/4; avg > ceiling {
		t.Errorf("extendOne allocations = %.1f for %d children, budget %.1f (per-child cost must stay 0)",
			avg, children, ceiling)
	}
}

// TestDecomposeAllocsBounded pins the columnar bucket scan: decomposing a
// warmed space allocates only the union-find, the component arenas and the
// pooled scratch — nothing per item·process despite the |S|·n view reads.
func TestDecomposeAllocsBounded(t *testing.T) {
	ctx := context.Background()
	s, err := Build(ma.LossyLink2(), 2, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := DecomposeCtx(ctx, s) // warm the scratch pool
	if err != nil {
		t.Fatal(err)
	}
	reads := s.Len() * s.N()
	avg := testing.AllocsPerRun(20, func() {
		d, err := DecomposeCtx(ctx, s)
		if err != nil {
			t.Fatalf("DecomposeCtx: %v", err)
		}
		if len(d.Comps) == 0 {
			t.Fatal("DecomposeCtx: no components")
		}
	})
	// The result is O(items + components) slices (union-find, group
	// membership, per-component summary lists); the bucket scan itself must
	// add nothing per view read.
	ceiling := 32 + float64(s.Len())/8 + 4*float64(len(warm.Comps)) + float64(reads)/64
	if avg > ceiling {
		t.Errorf("DecomposeCtx allocations = %.1f for %d view reads and %d components, budget %.1f",
			avg, reads, len(warm.Comps), ceiling)
	}
}
