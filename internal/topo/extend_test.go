package topo

import (
	"context"
	"sync"
	"testing"

	"topocon/internal/graph"
	"topocon/internal/ma"
	"topocon/internal/ptg"
)

// seedAdversaries returns one adversary per family shipped with the seed:
// the two lossy links, a loss-bounded Santoro-Widmayer instance, the
// non-compact eventually-stable family and its deadline compactification.
func seedAdversaries(t *testing.T) []ma.Adversary {
	t.Helper()
	stable := ma.MustEventuallyStable("stable-w1",
		[]graph.Graph{graph.Left, graph.Both}, []graph.Graph{graph.Right}, 1)
	return []ma.Adversary{
		ma.LossyLink2(),
		ma.LossyLink3(),
		ma.LossBounded(3, 1),
		stable,
		ma.MustDeadlineStable(stable, 2),
	}
}

// TestExtendMatchesBuild is the incremental-extension invariant: for every
// seed adversary, Build(adv, d, t) and Build(adv, d, 1).Extend(ctx, t)
// yield identical item sequences (runs, obligations, valences, heard-sets)
// and identical Decompose results at every horizon.
func TestExtendMatchesBuild(t *testing.T) {
	ctx := context.Background()
	for _, adv := range seedAdversaries(t) {
		maxT := 4
		if adv.N() > 2 {
			maxT = 3 // the n=3 space grows too fast for a unit test
		}
		inc, err := Build(adv, 2, 1, 0)
		if err != nil {
			t.Fatalf("%s: Build horizon 1: %v", adv.Name(), err)
		}
		for horizon := 2; horizon <= maxT; horizon++ {
			inc, err = inc.Extend(ctx, horizon)
			if err != nil {
				t.Fatalf("%s: Extend to %d: %v", adv.Name(), horizon, err)
			}
			scratch, err := Build(adv, 2, horizon, 0)
			if err != nil {
				t.Fatalf("%s: Build horizon %d: %v", adv.Name(), horizon, err)
			}
			assertSpacesEqual(t, adv.Name(), scratch, inc)
			assertViewsMatchComputed(t, adv.Name(), scratch)
			assertDecompositionsEqual(t, adv.Name(), Decompose(scratch), Decompose(inc))
		}
	}
}

// TestExtendParallelMatchesSequential asserts that the worker-pool frontier
// expansion and decomposition produce the same space and partition as the
// sequential path.
func TestExtendParallelMatchesSequential(t *testing.T) {
	ctx := context.Background()
	for _, adv := range seedAdversaries(t) {
		seq, err := Build(adv, 2, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		par, err := BuildCtx(ctx, adv, 2, 1, Config{Parallelism: 4})
		if err != nil {
			t.Fatal(err)
		}
		horizon := 4
		if adv.N() > 2 {
			horizon = 3
		}
		seq, err = seq.Extend(ctx, horizon)
		if err != nil {
			t.Fatal(err)
		}
		par, err = par.Extend(ctx, horizon)
		if err != nil {
			t.Fatal(err)
		}
		assertSpacesEqual(t, adv.Name(), seq, par)
		dseq := Decompose(seq)
		dpar, err := DecomposeCtx(ctx, par)
		if err != nil {
			t.Fatal(err)
		}
		assertDecompositionsEqual(t, adv.Name(), dseq, dpar)
	}
}

// TestExtendParallelUnionAdversary exercises concurrent Choices/Step/Done
// on a memoizing adversary (Union interns state vectors in a cache): under
// -race this pins the Adversary concurrency contract the worker pool
// relies on.
func TestExtendParallelUnionAdversary(t *testing.T) {
	free := []graph.Graph{graph.Left, graph.Right, graph.Both}
	commit := []graph.Graph{graph.Left, graph.Right}
	adv := ma.MustUnion("",
		ma.MustCommittedSuffix("", free, commit, 2),
		ma.MustCommittedSuffix("", free, commit, 3))
	ctx := context.Background()
	par, err := BuildCtx(ctx, adv, 2, 1, Config{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	par, err = par.Extend(ctx, 5) // >128 items per round, engages the pool
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Build(adv, 2, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	assertSpacesEqual(t, adv.Name(), seq, par)
}

// TestFindConcurrent pins the lazily-built run index against concurrent
// first use.
func TestFindConcurrent(t *testing.T) {
	s, err := Build(ma.LossyLink3(), 2, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < s.Len(); i++ {
				if got := s.Find(s.RunOf(i)); got != i {
					t.Errorf("Find(items[%d].Run) = %d", i, got)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestExtendCancellation asserts that a cancelled context aborts Extend and
// DecomposeCtx with ctx.Err() instead of returning a partial space.
func TestExtendCancellation(t *testing.T) {
	s, err := Build(ma.LossyLink3(), 2, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Extend(ctx, 4); err != context.Canceled {
		t.Errorf("Extend with cancelled context: err = %v, want context.Canceled", err)
	}
	if _, err := DecomposeCtx(ctx, s); err != context.Canceled {
		t.Errorf("DecomposeCtx with cancelled context: err = %v, want context.Canceled", err)
	}
	if _, err := BuildCtx(ctx, ma.LossyLink3(), 2, 3, Config{}); err != context.Canceled {
		t.Errorf("BuildCtx with cancelled context: err = %v, want context.Canceled", err)
	}
}

// TestExtendRespectsMaxRuns asserts the inherited size cap fires during
// extension exactly as it does during a from-scratch build.
func TestExtendRespectsMaxRuns(t *testing.T) {
	s, err := BuildCtx(context.Background(), ma.LossyLink3(), 2, 1, Config{MaxRuns: 40})
	if err != nil {
		t.Fatal(err)
	}
	// Horizon 2 has 4·3² = 36 ≤ 40 runs, horizon 3 has 108 > 40.
	s, err = s.Extend(context.Background(), 2)
	if err != nil {
		t.Fatalf("horizon 2 within cap: %v", err)
	}
	if _, err := s.Extend(context.Background(), 3); err == nil {
		t.Error("horizon 3 beyond cap: want error, got nil")
	}
}

func assertSpacesEqual(t *testing.T, name string, want, got *Space) {
	t.Helper()
	if want.Horizon != got.Horizon {
		t.Fatalf("%s: horizon %d vs %d", name, want.Horizon, got.Horizon)
	}
	if want.Len() != got.Len() {
		t.Fatalf("%s horizon %d: %d items vs %d", name, want.Horizon, want.Len(), got.Len())
	}
	for i := 0; i < want.Len(); i++ {
		w, g := want.Item(i), got.Item(i)
		if w.Run.Key() != g.Run.Key() {
			t.Fatalf("%s horizon %d item %d: run %v vs %v", name, want.Horizon, i, w.Run, g.Run)
		}
		if w.Done != g.Done || w.DoneAt != g.DoneAt || w.Valence != g.Valence {
			t.Fatalf("%s horizon %d item %d: (done=%v doneAt=%d valence=%d) vs (done=%v doneAt=%d valence=%d)",
				name, want.Horizon, i, w.Done, w.DoneAt, w.Valence, g.Done, g.DoneAt, g.Valence)
		}
		// View IDs live in different interners; heard-sets are
		// interner-independent and pin the cone contents per (time, proc).
		for tt := 0; tt <= want.Horizon; tt++ {
			for p := 0; p < want.N(); p++ {
				if w.Views.Heard(tt, p) != g.Views.Heard(tt, p) {
					t.Fatalf("%s horizon %d item %d: heard(%d,%d) %b vs %b",
						name, want.Horizon, i, tt, p, w.Views.Heard(tt, p), g.Views.Heard(tt, p))
				}
			}
		}
	}
}

// assertViewsMatchComputed pins the columnar frontier against the
// independent per-run view computation: ptg.ComputeViews re-derives every
// row through Views.Extend from the materialized run alone, sharing the
// space's interner so IDs are directly comparable. Since BuildCtx
// constructs spaces through the same extendOne as Extend, this is the
// reference that keeps a frontier-expansion bug (wrong heard fold, wrong
// child encoding) from cancelling out of the Build-vs-Extend comparison.
func assertViewsMatchComputed(t *testing.T, name string, s *Space) {
	t.Helper()
	for i := 0; i < s.Len(); i++ {
		ref := ptg.ComputeViews(s.Interner, s.RunOf(i))
		got := s.ViewsOf(i)
		for tt := 0; tt <= s.Horizon; tt++ {
			for p := 0; p < s.N(); p++ {
				if got.ID(tt, p) != ref.ID(tt, p) || got.Heard(tt, p) != ref.Heard(tt, p) {
					t.Fatalf("%s horizon %d item %d: columnar view (%d, %b) at (t=%d, p=%d) differs from ComputeViews reference (%d, %b)",
						name, s.Horizon, i, got.ID(tt, p), got.Heard(tt, p), tt, p, ref.ID(tt, p), ref.Heard(tt, p))
				}
			}
		}
	}
}

func assertDecompositionsEqual(t *testing.T, name string, want, got *Decomposition) {
	t.Helper()
	if len(want.Comps) != len(got.Comps) {
		t.Fatalf("%s horizon %d: %d components vs %d",
			name, want.Space.Horizon, len(want.Comps), len(got.Comps))
	}
	for i := range want.CompOf {
		if want.CompOf[i] != got.CompOf[i] {
			t.Fatalf("%s horizon %d item %d: component %d vs %d",
				name, want.Space.Horizon, i, want.CompOf[i], got.CompOf[i])
		}
	}
	for ci := range want.Comps {
		w, g := &want.Comps[ci], &got.Comps[ci]
		if !sameInts(w.Members, g.Members) || !sameInts(w.Valences, g.Valences) ||
			w.Broadcasters != g.Broadcasters || w.UniformInputs != g.UniformInputs {
			t.Fatalf("%s horizon %d component %d differs: %+v vs %+v",
				name, want.Space.Horizon, ci, w, g)
		}
	}
}
