package topo

import (
	"context"
	"testing"

	"topocon/internal/ma"
)

// TestRefineMatchesDecompose is the incremental-decomposition invariant:
// for every seed adversary family, refining the horizon-t partition into
// the one-round extension equals the from-scratch DecomposeCtx of the
// child — same partition, CompOf, component order, valences, broadcasters
// and uniform inputs — on both the sequential and the worker-pool path.
func TestRefineMatchesDecompose(t *testing.T) {
	ctx := context.Background()
	for _, parallelism := range []int{1, 4} {
		for _, adv := range seedAdversaries(t) {
			maxT := 4
			if adv.N() > 2 {
				maxT = 3
			}
			s, err := BuildCtx(ctx, adv, 2, 1, Config{Parallelism: parallelism})
			if err != nil {
				t.Fatalf("%s: Build horizon 1: %v", adv.Name(), err)
			}
			d, err := DecomposeCtx(ctx, s)
			if err != nil {
				t.Fatal(err)
			}
			for horizon := 2; horizon <= maxT; horizon++ {
				child, err := s.Extend(ctx, horizon)
				if err != nil {
					t.Fatalf("%s: Extend to %d: %v", adv.Name(), horizon, err)
				}
				refined, err := d.Refine(ctx, child)
				if err != nil {
					t.Fatalf("%s: Refine to %d (parallelism %d): %v", adv.Name(), horizon, parallelism, err)
				}
				scratch, err := DecomposeCtx(ctx, child)
				if err != nil {
					t.Fatal(err)
				}
				assertDecompositionsEqual(t, adv.Name(), scratch, refined)
				s, d = child, refined
			}
		}
	}
}

// TestRefineRejectsForeignChild pins the parent-linkage contract: Refine
// refuses spaces that were not produced by a one-round Extend of the
// decomposed space.
func TestRefineRejectsForeignChild(t *testing.T) {
	ctx := context.Background()
	s, err := Build(ma.LossyLink3(), 2, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	d := Decompose(s)
	// A from-scratch build at the next horizon carries no parent linkage.
	scratch, err := Build(ma.LossyLink3(), 2, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Refine(ctx, scratch); err == nil {
		t.Error("Refine accepted a from-scratch child")
	}
	// A two-round extension skips the decomposed horizon.
	deep, err := s.Extend(ctx, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Refine(ctx, deep); err == nil {
		t.Error("Refine accepted a two-round extension")
	}
}

// TestRefineCancellation asserts a cancelled context aborts Refine with
// ctx.Err() — leaving the parent decomposition and the child space intact —
// and that the aborted refinement is resumable: calling Refine again with a
// fresh context yields the exact from-scratch decomposition.
func TestRefineCancellation(t *testing.T) {
	for _, parallelism := range []int{1, 4} {
		s, err := BuildCtx(context.Background(), ma.LossyLink3(), 2, 2, Config{Parallelism: parallelism})
		if err != nil {
			t.Fatal(err)
		}
		d, err := DecomposeCtx(context.Background(), s)
		if err != nil {
			t.Fatal(err)
		}
		child, err := s.Extend(context.Background(), 3)
		if err != nil {
			t.Fatal(err)
		}
		cancelled, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := d.Refine(cancelled, child); err != context.Canceled {
			t.Errorf("parallelism %d: Refine with cancelled context: err = %v, want context.Canceled", parallelism, err)
		}
		// Resume: the inputs are untouched, so a retry must agree with the
		// from-scratch reference.
		refined, err := d.Refine(context.Background(), child)
		if err != nil {
			t.Fatalf("parallelism %d: resumed Refine: %v", parallelism, err)
		}
		assertDecompositionsEqual(t, "lossy3-resume", Decompose(child), refined)
	}
}
