package topo

import (
	"context"
	"fmt"
	"math/bits"
	"sort"
	"sync"

	"topocon/internal/graph"
	"topocon/internal/ptg"
	"topocon/internal/uf"
)

// Component is one connected component of the horizon-t prefix space in the
// minimum topology — equivalently, the ε-approximation PS^ε (ε = 2^-t,
// Definition 6.2) of each of its members.
type Component struct {
	// Members are item indices into the space, ascending.
	Members []int
	// Valences lists the distinct values v for which the component
	// contains a v-valent run, ascending.
	Valences []int
	// Broadcasters is the bitmask of processes p such that in every member
	// run, every process has heard p by the horizon (Definition 5.8 at
	// finite resolution).
	Broadcasters uint64
	// UniformInputs is the bitmask of processes p whose input x_p is the
	// same across all members. Theorem 5.9 predicts
	// Broadcasters ⊆ UniformInputs for connected components.
	UniformInputs uint64
}

// Mixed reports whether the component contains valent runs of at least two
// different values — the obstruction of Corollary 5.6.
func (c *Component) Mixed() bool { return len(c.Valences) >= 2 }

// Decomposition is the component structure of a space.
//
// Over a symmetry-quotiented space (Space.Quotiented) the decomposition
// works on pseudo-items — pair (i,k) of representative item i and group
// element k, indexed i·Mult+k — so that it reproduces the FULL space's
// component structure exactly (two orbit members of one representative
// may lie in different full-space components; decomposing representative
// rows alone would be unsound). CompOf and Members then hold pseudo-item
// indices; divide by Mult for the representative item.
type Decomposition struct {
	Space *Space
	// CompOf maps each (pseudo-)item index to its component index.
	CompOf []int
	// Comps are the components, ordered by smallest member.
	Comps []Component
	// Mult is the pseudo-item multiplier: the symmetry group's order for
	// decompositions of quotiented spaces, and 0 or 1 otherwise.
	Mult int
}

// mult returns the pseudo-item multiplier, treating the zero value (set
// by pre-quotient constructors) as 1.
func (d *Decomposition) mult() int {
	if d.Mult <= 1 {
		return 1
	}
	return d.Mult
}

// itemViews materializes the Views adapter of a member index: the item's
// own views for plain decompositions, the relabeled pseudo-item views
// under a quotient.
func (d *Decomposition) itemViews(pi int) *ptg.Views {
	m := d.mult()
	if m == 1 {
		return d.Space.ViewsOf(pi)
	}
	return d.Space.PseudoViews(pi/m, pi%m)
}

// Decompose computes the connected components of the space at its horizon:
// two runs are related iff some process has the same time-t view in both,
// and components are the transitive closure classes. This is exactly the
// iterated ball-union construction of Definition 6.2 restricted to the
// horizon, because view equality at the horizon implies view equality at
// all earlier times (refinement property, package ptg).
func Decompose(s *Space) *Decomposition {
	//topocon:allow ctxflow -- documented pre-context convenience shim; cancellable callers use DecomposeCtx
	d, err := DecomposeCtx(context.Background(), s)
	if err != nil {
		// Unreachable: the background context never cancels and the
		// decomposition has no other failure mode.
		panic(err)
	}
	return d
}

// DecomposeCtx is Decompose under a context: it returns ctx.Err() on
// cancellation, and spreads the view-bucket scan and the per-component
// summaries over the space's worker pool when its parallelism is > 1. The
// scan reads the horizon's ViewID column directly — no per-item view
// objects are touched. The resulting partition is identical to the
// sequential one: workers scan disjoint item ranges into local bucket
// tables (recording in-range unions as edges, since the union-find is not
// concurrency-safe), and a sequential merge closes the relation across
// ranges — the transitive closure does not depend on the order unions are
// applied.
//
//topocon:export
func DecomposeCtx(ctx context.Context, s *Space) (*Decomposition, error) {
	// Under a symmetry quotient the union-find runs over pseudo-items
	// (i,k) = rep × group element, indexed i·m+k, whose view rows are the
	// rep rows pushed through the chain relabel memo. With m = 1 the
	// pseudo index IS the item index and the memo lookups vanish.
	m := s.SymOrder()
	pcount := s.pseudoLen()
	u := uf.New(pcount)
	// Bucket runs by hash-consed view ID; every bucket is a clique in the
	// indistinguishability relation, so unioning each member to the
	// bucket's first suffices. View IDs encode the owning process, so a
	// single bucket table over all processes is sound.
	n := s.N()
	s.fr.fault()
	ids := s.fr.ids
	count := s.Len()
	if s.parallelism <= 1 {
		// Sequential fast path: interned IDs are dense, so a pooled
		// epoch-stamped array (shared with Refine) replaces the hash map.
		sc := refineScratchPool.Get().(*refineScratch)
		sc.acquire(s.Interner.Size(), 1)
		sc.epoch++
		epoch := sc.epoch
		stamp, firstOf := sc.stamp, sc.firstOf
		pi := 0
		for i := 0; i < count; i++ {
			if i%cancelCheckInterval == 0 && ctx.Err() != nil {
				refineScratchPool.Put(sc)
				return nil, ctx.Err()
			}
			row := ids[i*n : (i+1)*n]
			for k := 0; k < m; k++ {
				var memo []ptg.ViewID
				if k != 0 {
					memo = s.sym.memo[k]
				}
				for _, id := range row {
					if memo != nil {
						id = memo[id]
					}
					if stamp[id] == epoch {
						u.Union(int(firstOf[id]), pi)
					} else {
						stamp[id] = epoch
						firstOf[id] = int32(pi)
					}
				}
				pi++
			}
		}
		refineScratchPool.Put(sc)
	} else {
		type scan struct {
			reps  map[ptg.ViewID]int // view id -> first in-range pseudo-item
			edges [][2]int           // in-range (first, later) pairs sharing a view
		}
		var (
			scans   []scan
			scansMu sync.Mutex
		)
		err := forEachChunk(ctx, pcount, s.parallelism, func(lo, hi int) error {
			sc := scan{reps: make(map[ptg.ViewID]int, (hi-lo)*n)}
			for pi := lo; pi < hi; pi++ {
				i, k := pi/m, pi%m
				var memo []ptg.ViewID
				if k != 0 {
					memo = s.sym.memo[k]
				}
				for _, id := range ids[i*n : (i+1)*n] {
					if memo != nil {
						id = memo[id]
					}
					if first, ok := sc.reps[id]; ok {
						if first != pi {
							sc.edges = append(sc.edges, [2]int{first, pi})
						}
					} else {
						sc.reps[id] = pi
					}
				}
			}
			scansMu.Lock()
			scans = append(scans, sc)
			scansMu.Unlock()
			return nil
		})
		if err != nil {
			return nil, err
		}
		global := make(map[ptg.ViewID]int, pcount*n)
		for _, sc := range scans {
			for _, e := range sc.edges {
				u.Union(e[0], e[1])
			}
			for id, rep := range sc.reps {
				if g, ok := global[id]; ok {
					u.Union(g, rep)
				} else {
					global[id] = rep
				}
			}
		}
	}
	groups := u.Groups()
	d := &Decomposition{
		Space:  s,
		CompOf: make([]int, pcount),
		Comps:  make([]Component, len(groups)),
		Mult:   m,
	}
	for ci, members := range groups {
		for _, i := range members {
			d.CompOf[i] = ci
		}
	}
	if err := forEachChunk(ctx, len(groups), s.parallelism, func(lo, hi int) error {
		for ci := lo; ci < hi; ci++ {
			d.Comps[ci] = summarize(s, groups[ci])
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return d, nil
}

// summarize folds a component's summary masks straight off the columns:
// HeardByAll is a row fold over the heard column, inputs come through the
// O(1) root-ancestor lookup.
func summarize(s *Space, members []int) Component {
	if s.sym != nil {
		return summarizePseudo(s, members)
	}
	n := s.N()
	full := graph.AllNodes(n)
	c := Component{
		Members:       members,
		Broadcasters:  full,
		UniformInputs: full,
	}
	// Valences are input values, so the domain is tiny; a bitmask replaces
	// the per-component set allocation. Values ≥ 64 (domains that large
	// never fit a prefix-space enumeration anyway) spill into a slice.
	var vmask uint64
	var vbig []int
	first := s.Inputs(members[0])
	for _, i := range members {
		if v := s.Valence(i); v >= 0 {
			if v < 64 {
				vmask |= 1 << uint(v)
			} else {
				vbig = append(vbig, v)
			}
		}
		// A process p stays a broadcaster only if everyone heard it by the
		// horizon in this run.
		c.Broadcasters &= s.HeardByAll(i)
		in := s.Inputs(i)
		for p := 0; p < n; p++ {
			if in[p] != first[p] {
				c.UniformInputs &^= 1 << uint(p)
			}
		}
	}
	c.Valences = valenceList(vmask, vbig)
	return c
}

// summarizePseudo is summarize over pseudo-item members (i·m+k) of a
// quotiented space. Valence is relabel-invariant (a run is v-valent iff
// its inputs are uniformly v, and relabeling permutes positions without
// changing the multiset); heard masks and input vectors permute, so the
// folds go through pseudoHeardByAll and the inverse-permuted rep inputs.
func summarizePseudo(s *Space, members []int) Component {
	n := s.N()
	m := s.sym.m
	g := s.sym.group
	full := graph.AllNodes(n)
	c := Component{
		Members:       members,
		Broadcasters:  full,
		UniformInputs: full,
	}
	var vmask uint64
	var vbig []int
	fi, fk := members[0]/m, members[0]%m
	firstIn, firstInv := s.Inputs(fi), g.Inv(fk)
	for _, pi := range members {
		i, k := pi/m, pi%m
		if v := s.Valence(i); v >= 0 {
			if v < 64 {
				vmask |= 1 << uint(v)
			} else {
				vbig = append(vbig, v)
			}
		}
		c.Broadcasters &= s.pseudoHeardByAll(i, k)
		in, inv := s.Inputs(i), g.Inv(k)
		for p := 0; p < n; p++ {
			if in[inv[p]] != firstIn[firstInv[p]] {
				c.UniformInputs &^= 1 << uint(p)
			}
		}
	}
	c.Valences = valenceList(vmask, vbig)
	return c
}

// valenceList expands the valence bitmask (plus the rare ≥ 64 spill) into
// the ascending value list of a Component.
func valenceList(vmask uint64, vbig []int) []int {
	if vmask == 0 && len(vbig) == 0 {
		return nil
	}
	out := make([]int, 0, bits.OnesCount64(vmask)+len(vbig))
	for m := vmask; m != 0; m &= m - 1 {
		out = append(out, bits.TrailingZeros64(m))
	}
	if len(vbig) > 0 {
		sort.Ints(vbig)
		for _, v := range vbig {
			if len(out) == 0 || out[len(out)-1] != v {
				out = append(out, v)
			}
		}
	}
	return out
}

// MixedComponents returns the indices of components containing valent runs
// of two or more values.
func (d *Decomposition) MixedComponents() []int {
	var out []int
	for ci := range d.Comps {
		if d.Comps[ci].Mixed() {
			out = append(out, ci)
		}
	}
	return out
}

// ValentComponentsBroadcastable reports whether every component containing
// at least one valent run has a broadcaster whose input is uniform across
// the component — the finite-resolution form of the Theorem 5.11 / 6.6
// criterion.
func (d *Decomposition) ValentComponentsBroadcastable() bool {
	for ci := range d.Comps {
		c := &d.Comps[ci]
		if len(c.Valences) == 0 {
			continue
		}
		if c.Broadcasters&c.UniformInputs == 0 {
			return false
		}
	}
	return true
}

// CrossValenceLevel returns the largest agreement level L over pairs of
// runs lying in differently-valent regions (one in a component with
// valence v, one with valence w ≠ v), i.e. the minimum distance between the
// decision-relevant regions is 2^-L. It returns 0 if there are no such
// pairs (then the second return is false).
//
// The O(|S|²) pair scan is pre-filtered and parallelized: each component's
// valence set is canonicalized to a small signature id, items in
// valence-free components are dropped up front, a pair whose components
// share a signature is skipped on an integer compare — before any view is
// touched — and the surviving pairs are spread over the space's worker
// pool, with each item's Views adapter materialized exactly once.
//
// For compact solvable adversaries this level stays bounded as the horizon
// grows (Fig. 4: decision sets have positive distance); for non-compact
// adversaries it grows without bound (Fig. 5: distance-0 limits).
//
//topocon:allow ctxflow -- pre-context API over a bounded CPU-only scan; the worker pool's context parameter is vacuous here (no cancellation point, no error path)
func (d *Decomposition) CrossValenceLevel() (int, bool) {
	s := d.Space
	sig := make([]int32, len(d.Comps))
	sigIDs := make(map[string]int32)
	for ci := range d.Comps {
		vs := d.Comps[ci].Valences
		if len(vs) == 0 {
			sig[ci] = -1
			continue
		}
		key := fmt.Sprint(vs)
		id, ok := sigIDs[key]
		if !ok {
			id = int32(len(sigIDs))
			sigIDs[key] = id
		}
		sig[ci] = id
	}
	if len(sigIDs) < 2 {
		// All valent components carry the same valence set: no pair can
		// differ, and no view needs materializing.
		return 0, false
	}
	var items []int
	for i := 0; i < len(d.CompOf); i++ {
		if sig[d.CompOf[i]] >= 0 {
			items = append(items, i)
		}
	}
	views := make([]*ptg.Views, len(items))
	for k, i := range items {
		views[k] = d.itemViews(i)
	}
	best := -1
	var mu sync.Mutex
	// The background context never cancels and the workers never error, so
	// the pool's error return is vacuous here.
	_ = forEachChunk(context.Background(), len(items), s.parallelism, func(lo, hi int) error {
		local := -1
		for a := lo; a < hi; a++ {
			ca := d.CompOf[items[a]]
			sa := sig[ca]
			for b := a + 1; b < len(items); b++ {
				cb := d.CompOf[items[b]]
				if cb == ca || sig[cb] == sa {
					continue
				}
				if l := ptg.MinAgreeLevel(views[a], views[b]); l > local {
					local = l
				}
			}
		}
		mu.Lock()
		if local > best {
			best = local
		}
		mu.Unlock()
		return nil
	})
	if best < 0 {
		return 0, false
	}
	return best, true
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// DiameterLevel returns the diameter of component ci in exponent form:
// the smallest agreement level over member pairs, so the diameter
// (Definition 5.7) is 2^-level. The second return is false for singleton
// components (diameter 0, no pairs).
//
// Theorem 5.9 predicts level ≥ 1 (diameter ≤ 1/2) for any connected
// broadcastable set.
func (d *Decomposition) DiameterLevel(ci int) (int, bool) {
	members := d.Comps[ci].Members
	if len(members) < 2 {
		return 0, false
	}
	views := make([]*ptg.Views, len(members))
	for a, i := range members {
		views[a] = d.itemViews(i)
	}
	worst := -1
	for a := 0; a < len(members); a++ {
		for b := a + 1; b < len(members); b++ {
			l := ptg.MinAgreeLevel(views[a], views[b])
			if worst < 0 || l < worst {
				worst = l
			}
		}
	}
	return worst, true
}
