package topo

import (
	"topocon/internal/graph"
	"topocon/internal/ptg"
	"topocon/internal/uf"
)

// Component is one connected component of the horizon-t prefix space in the
// minimum topology — equivalently, the ε-approximation PS^ε (ε = 2^-t,
// Definition 6.2) of each of its members.
type Component struct {
	// Members are item indices into the space, ascending.
	Members []int
	// Valences lists the distinct values v for which the component
	// contains a v-valent run, ascending.
	Valences []int
	// Broadcasters is the bitmask of processes p such that in every member
	// run, every process has heard p by the horizon (Definition 5.8 at
	// finite resolution).
	Broadcasters uint64
	// UniformInputs is the bitmask of processes p whose input x_p is the
	// same across all members. Theorem 5.9 predicts
	// Broadcasters ⊆ UniformInputs for connected components.
	UniformInputs uint64
}

// Mixed reports whether the component contains valent runs of at least two
// different values — the obstruction of Corollary 5.6.
func (c *Component) Mixed() bool { return len(c.Valences) >= 2 }

// Decomposition is the component structure of a space.
type Decomposition struct {
	Space *Space
	// CompOf maps each item index to its component index.
	CompOf []int
	// Comps are the components, ordered by smallest member.
	Comps []Component
}

// Decompose computes the connected components of the space at its horizon:
// two runs are related iff some process has the same time-t view in both,
// and components are the transitive closure classes. This is exactly the
// iterated ball-union construction of Definition 6.2 restricted to the
// horizon, because view equality at the horizon implies view equality at
// all earlier times (refinement property, package ptg).
func Decompose(s *Space) *Decomposition {
	u := uf.New(len(s.Items))
	// Bucket runs by hash-consed view ID; every bucket is a clique in the
	// indistinguishability relation, so unioning consecutive members
	// suffices. View IDs encode the owning process, so a single bucket
	// table over all processes is sound.
	buckets := make(map[ptg.ViewID]int, len(s.Items)*s.N())
	t := s.Horizon
	for i := range s.Items {
		views := s.Items[i].Views
		for p := 0; p < s.N(); p++ {
			id := views.ID(t, p)
			if first, ok := buckets[id]; ok {
				u.Union(first, i)
			} else {
				buckets[id] = i
			}
		}
	}
	groups := u.Groups()
	d := &Decomposition{
		Space:  s,
		CompOf: make([]int, len(s.Items)),
		Comps:  make([]Component, len(groups)),
	}
	for ci, members := range groups {
		for _, i := range members {
			d.CompOf[i] = ci
		}
		d.Comps[ci] = summarize(s, members)
	}
	return d
}

func summarize(s *Space, members []int) Component {
	n := s.N()
	t := s.Horizon
	full := graph.AllNodes(n)
	c := Component{
		Members:       members,
		Broadcasters:  full,
		UniformInputs: full,
	}
	valences := make(map[int]bool, 2)
	first := s.Items[members[0]].Run.Inputs
	for _, i := range members {
		item := &s.Items[i]
		if item.Valence >= 0 {
			valences[item.Valence] = true
		}
		// A process p stays a broadcaster only if everyone heard it by t
		// in this run.
		c.Broadcasters &= item.Views.HeardByAll(t)
		for p := 0; p < n; p++ {
			if item.Run.Inputs[p] != first[p] {
				c.UniformInputs &^= 1 << uint(p)
			}
		}
	}
	for v := range valences {
		c.Valences = append(c.Valences, v)
	}
	sortInts(c.Valences)
	return c
}

// MixedComponents returns the indices of components containing valent runs
// of two or more values.
func (d *Decomposition) MixedComponents() []int {
	var out []int
	for ci := range d.Comps {
		if d.Comps[ci].Mixed() {
			out = append(out, ci)
		}
	}
	return out
}

// ValentComponentsBroadcastable reports whether every component containing
// at least one valent run has a broadcaster whose input is uniform across
// the component — the finite-resolution form of the Theorem 5.11 / 6.6
// criterion.
func (d *Decomposition) ValentComponentsBroadcastable() bool {
	for ci := range d.Comps {
		c := &d.Comps[ci]
		if len(c.Valences) == 0 {
			continue
		}
		if c.Broadcasters&c.UniformInputs == 0 {
			return false
		}
	}
	return true
}

// CrossValenceLevel returns the largest agreement level L over pairs of
// runs lying in differently-valent regions (one in a component with
// valence v, one with valence w ≠ v), i.e. the minimum distance between the
// decision-relevant regions is 2^-L. It returns 0 if there are no such
// pairs (then the second return is false).
//
// For compact solvable adversaries this level stays bounded as the horizon
// grows (Fig. 4: decision sets have positive distance); for non-compact
// adversaries it grows without bound (Fig. 5: distance-0 limits).
func (d *Decomposition) CrossValenceLevel() (int, bool) {
	s := d.Space
	// Label each item with the valence set of its component; compare
	// items whose component valences differ.
	best := -1
	for i := range s.Items {
		ci := d.CompOf[i]
		if len(d.Comps[ci].Valences) == 0 {
			continue
		}
		for j := i + 1; j < len(s.Items); j++ {
			cj := d.CompOf[j]
			if len(d.Comps[cj].Valences) == 0 || ci == cj {
				continue
			}
			if sameInts(d.Comps[ci].Valences, d.Comps[cj].Valences) {
				continue
			}
			l := ptg.MinAgreeLevel(s.Items[i].Views, s.Items[j].Views)
			if l > best {
				best = l
			}
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// DiameterLevel returns the diameter of component ci in exponent form:
// the smallest agreement level over member pairs, so the diameter
// (Definition 5.7) is 2^-level. The second return is false for singleton
// components (diameter 0, no pairs).
//
// Theorem 5.9 predicts level ≥ 1 (diameter ≤ 1/2) for any connected
// broadcastable set.
func (d *Decomposition) DiameterLevel(ci int) (int, bool) {
	members := d.Comps[ci].Members
	if len(members) < 2 {
		return 0, false
	}
	s := d.Space
	worst := -1
	for a := 0; a < len(members); a++ {
		va := s.Items[members[a]].Views
		for b := a + 1; b < len(members); b++ {
			l := ptg.MinAgreeLevel(va, s.Items[members[b]].Views)
			if worst < 0 || l < worst {
				worst = l
			}
		}
	}
	return worst, true
}
