package topo

import (
	"context"
	"fmt"
	"math/bits"

	"topocon/internal/graph"
	"topocon/internal/ma"
	"topocon/internal/ptg"
)

// Extend returns the prefix space at the given (strictly larger) horizon by
// extending this space's runs round by round, instead of re-enumerating the
// exponential space from the root. Each round reuses
//
//   - the horizon-t frontier: a child only computes its one new view row,
//     written straight into the child space's dense columns; all earlier
//     rounds are reached through the frontier chain, shared, never copied;
//   - the adversary automaton states: children step the parent's stored
//     state, so prefix admissibility is never re-derived;
//   - the shared Interner, keeping views comparable across all horizons.
//
// The receiver is not modified and stays valid, so iterative-deepening
// callers can retain every horizon they visited. The child space inherits
// the receiver's size cap and parallelism (frontier expansion is spread
// over a worker pool when parallelism > 1).
//
// Extend produces items in exactly the order BuildCtx would: children of
// one parent appear in Choices order, parents in their own item order —
// which is the depth-first prefix enumeration order at the deeper horizon.
// The incremental-extension invariant (asserted by TestExtendMatchesBuild)
// is that Build(adv, d, t) and Build(adv, d, 0).Extend(ctx, t) agree item
// by item on runs, automaton states, obligations and view structure.
func (s *Space) Extend(ctx context.Context, horizon int) (*Space, error) {
	if horizon <= s.Horizon {
		return nil, fmt.Errorf("topo: Extend to horizon %d from %d (must grow)", horizon, s.Horizon)
	}
	cur := s
	for cur.Horizon < horizon {
		next, err := cur.extendOne(ctx)
		if err != nil {
			return nil, err
		}
		cur = next
	}
	return cur, nil
}

// extendOne builds the horizon+1 space from s. The per-child cost is the
// core of the checker's wall clock: one interned view row, one automaton
// step, and column writes — no Views clone, no Run copy, no per-child
// allocation (pinned by TestExtendAllocsPerChild).
//
//topocon:allocfree
func (s *Space) extendOne(ctx context.Context) (*Space, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	adv := s.Adversary
	s.fr.fault() // a resumed head is resident, but rehydrated ancestors may not be
	nParents := s.Len()
	// Lay out child slots with a prefix sum over per-parent branching, so
	// workers write disjoint, deterministic ranges. The per-parent choice
	// slices are kept for the worker loop below: Choices is part of the
	// adversary contract, not guaranteed to be cheap — allocating
	// implementations (product automata, filters) would otherwise pay for
	// every parent twice.
	//
	// Under a symmetry quotient (s.sym != nil) the same pass also decides,
	// per raw child slot, whether the round graph is its orbit's
	// representative under the parent's stabilizer: keptStab[rawOff[i]+j]
	// is 0 for dropped twins and the child's stabilizer mask for kept
	// ones, and offsets count kept children only. The cap check stays in
	// full-space runs (orbit-weighted), so quotiented and plain sessions
	// hit MaxRuns budgets identically.
	choices := make([][]graph.Graph, nParents)
	offsets := make([]int, nParents+1)
	var (
		rawOff    []int
		keptStab  []uint64
		fullTotal int
	)
	if s.sym != nil {
		rawOff = make([]int, nParents+1)
		keptStab = make([]uint64, 0, nParents*2)
	}
	for i := 0; i < nParents; i++ {
		choices[i] = adv.Choices(s.states[i])
		if s.sym == nil {
			offsets[i+1] = offsets[i] + len(choices[i])
			continue
		}
		rawOff[i+1] = rawOff[i] + len(choices[i])
		kept := 0
		si := s.stab[i]
		for _, g := range choices[i] {
			st := graphOrbitStab(g, s.sym.group, si)
			keptStab = append(keptStab, st)
			if st != 0 {
				kept++
			}
		}
		offsets[i+1] = offsets[i] + kept
		fullTotal += s.OrbitSize(i) * len(choices[i])
	}
	total := offsets[nParents]
	if s.sym == nil {
		fullTotal = total
	}
	if fullTotal > s.maxRuns {
		return nil, fmt.Errorf("topo: space has %d runs, exceeding cap %d", fullTotal, s.maxRuns)
	}
	n := s.fr.n
	nf := &frontier{
		horizon:  s.Horizon + 1,
		n:        n,
		count:    total,
		ids:      make([]ptg.ViewID, total*n),
		heard:    make([]uint64, total*n),
		gs:       make([]graph.Graph, total),
		parentOf: make([]int32, total),
		rootOf:   make([]int32, total),
		prev:     s.fr,
		base:     s.fr.base,
	}
	next := &Space{
		Adversary:     adv,
		InputDomain:   s.InputDomain,
		Horizon:       s.Horizon + 1,
		Interner:      s.Interner,
		fr:            nf,
		states:        make([]ma.State, total),
		doneAt:        make([]int32, total),
		valence:       make([]int32, total),
		parentOffsets: offsets,
		maxRuns:       s.maxRuns,
		parallelism:   s.parallelism,
		pager:         s.pager,
		sym:           s.sym,
	}
	if s.sym != nil {
		next.stab = make([]uint64, total)
	}
	interner := s.Interner
	err := forEachChunk(ctx, nParents, s.parallelism, func(lo, hi int) error {
		// Per-worker scratch for the in-neighbour pair lists; reused across
		// every child of the chunk, so the per-child allocation count is 0.
		qs := make([]int, 0, n)
		children := make([]ptg.ViewID, 0, n)
		for i := lo; i < hi; i++ {
			prevIDs := s.fr.idRow(i)
			prevHeard := s.fr.heardRow(i)
			pState := s.states[i]
			pDoneAt := s.doneAt[i]
			pValence := s.valence[i]
			pRoot := s.fr.rootOf[i]
			c := offsets[i] - 1
			for j, g := range choices[i] {
				var cStab uint64
				if s.sym != nil {
					cStab = keptStab[rawOff[i]+j]
					if cStab == 0 {
						continue // a relabeled twin of an earlier sibling
					}
				}
				c++
				dstIDs := nf.ids[c*n : (c+1)*n]
				dstHeard := nf.heard[c*n : (c+1)*n]
				for p := 0; p < n; p++ {
					qs = qs[:0]
					children = children[:0]
					var h uint64
					for m := g.In(p); m != 0; m &= m - 1 {
						q := bits.TrailingZeros64(m)
						qs = append(qs, q)
						children = append(children, prevIDs[q])
						h |= prevHeard[q]
					}
					dstIDs[p] = interner.Node(p, qs, children)
					dstHeard[p] = h
				}
				state := adv.Step(pState, g)
				doneAt := pDoneAt
				if doneAt < 0 && adv.Done(state) {
					doneAt = int32(next.Horizon)
				}
				nf.gs[c] = g
				nf.parentOf[c] = int32(i)
				nf.rootOf[c] = pRoot
				next.states[c] = state
				next.doneAt[c] = doneAt
				next.valence[c] = pValence
				if s.sym != nil {
					next.stab[c] = cStab
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if s.sym != nil {
		// Fill the relabel memo for the fresh round while both its column
		// and the parent's are guaranteed resident (the parent spills just
		// below). Decomposition and decision-map compilation read the
		// pseudo-item rows through this memo.
		if err := next.relabelRound(ctx); err != nil {
			return nil, err
		}
	}
	if s.pager != nil {
		// The receiver's round just stopped being the head: persist it and
		// hand its columns to the pager, which evicts them once the hot set
		// outgrows the budget. Chain walks fault them back transparently.
		if err := s.fr.spill(s.pager); err != nil {
			return nil, err
		}
	}
	return next, nil
}

// SetParallelism sets the worker count used by Extend and DecomposeCtx on
// this space and its descendants; w ≤ 1 selects sequential operation.
func (s *Space) SetParallelism(w int) { s.parallelism = w }

// Parallelism returns the configured worker count.
func (s *Space) Parallelism() int { return s.parallelism }
