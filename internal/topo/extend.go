package topo

import (
	"context"
	"fmt"

	"topocon/internal/graph"
)

// Extend returns the prefix space at the given (strictly larger) horizon by
// extending this space's runs round by round, instead of re-enumerating the
// exponential space from the root. Each round reuses
//
//   - the horizon-t items: a child run clones its parent's hash-consed
//     views (O(1) per computed row) and computes only the one new row;
//   - the adversary automaton states: children step the parent's stored
//     state, so prefix admissibility is never re-derived;
//   - the shared Interner, keeping views comparable across all horizons.
//
// The receiver is not modified and stays valid, so iterative-deepening
// callers can retain every horizon they visited. The child space inherits
// the receiver's size cap and parallelism (frontier expansion is spread
// over a worker pool when parallelism > 1).
//
// Extend produces items in exactly the order BuildCtx would: children of
// one parent appear in Choices order, parents in their own item order —
// which is the depth-first prefix enumeration order at the deeper horizon.
// The incremental-extension invariant (asserted by TestExtendMatchesBuild)
// is that Build(adv, d, t) and Build(adv, d, 0).Extend(ctx, t) agree item
// by item on runs, automaton states, obligations and view structure.
func (s *Space) Extend(ctx context.Context, horizon int) (*Space, error) {
	if horizon <= s.Horizon {
		return nil, fmt.Errorf("topo: Extend to horizon %d from %d (must grow)", horizon, s.Horizon)
	}
	cur := s
	for cur.Horizon < horizon {
		next, err := cur.extendOne(ctx)
		if err != nil {
			return nil, err
		}
		cur = next
	}
	return cur, nil
}

// extendOne builds the horizon+1 space from s.
func (s *Space) extendOne(ctx context.Context) (*Space, error) {
	adv := s.Adversary
	// Lay out child slots with a prefix sum over per-parent branching, so
	// workers write disjoint, deterministic ranges. The per-parent choice
	// slices are kept for the worker loop below: Choices is part of the
	// adversary contract, not guaranteed to be cheap — allocating
	// implementations (product automata, filters) would otherwise pay for
	// every parent twice.
	choices := make([][]graph.Graph, len(s.Items))
	offsets := make([]int, len(s.Items)+1)
	for i := range s.Items {
		choices[i] = adv.Choices(s.Items[i].State)
		offsets[i+1] = offsets[i] + len(choices[i])
	}
	total := offsets[len(s.Items)]
	if total > s.maxRuns {
		return nil, fmt.Errorf("topo: space has %d runs, exceeding cap %d", total, s.maxRuns)
	}
	next := &Space{
		Adversary:     adv,
		InputDomain:   s.InputDomain,
		Horizon:       s.Horizon + 1,
		Items:         make([]Item, total),
		Interner:      s.Interner,
		parentOffsets: offsets,
		maxRuns:       s.maxRuns,
		parallelism:   s.parallelism,
	}
	err := forEachChunk(ctx, len(s.Items), s.parallelism, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			parent := &s.Items[i]
			for j, g := range choices[i] {
				views := parent.Views.Clone()
				views.Extend(g)
				state := adv.Step(parent.State, g)
				doneAt := parent.DoneAt
				if doneAt < 0 && adv.Done(state) {
					doneAt = next.Horizon
				}
				next.Items[offsets[i]+j] = Item{
					Run:     parent.Run.Extend(g),
					Views:   views,
					State:   state,
					Done:    doneAt >= 0,
					DoneAt:  doneAt,
					Valence: parent.Valence,
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return next, nil
}

// SetParallelism sets the worker count used by Extend and DecomposeCtx on
// this space and its descendants; w ≤ 1 selects sequential operation.
func (s *Space) SetParallelism(w int) { s.parallelism = w }

// Parallelism returns the configured worker count.
func (s *Space) Parallelism() int { return s.parallelism }
