// Package topo implements the paper's topological machinery at finite
// resolution: the space PS of admissible process-time-graph sequences
// restricted to horizon-t prefixes, the minimum topology's
// indistinguishability relation, the ε-approximations of Definition 6.2
// (connected components via union-find over shared views), broadcastability
// (Definition 5.8), and cross-component distances.
//
// The correspondence to the paper (see DESIGN.md §2 for proofs):
//
//	d_min(a,b) < 2^-t  ⇔  some process's views agree at all times 0..t
//	                   ⇔  some process's hash-consed time-t ViewIDs coincide
//
// so the transitive closure of "shares a time-t view with" computes exactly
// the 2^-t-approximation PS^ε of Definition 6.2, and its classes are the
// connected components of the horizon-t prefix space.
//
// # Memory layout
//
// A Space is columnar (structure of arrays): the newest round lives in
// dense per-space columns — ids and heard of length Len()·n, plus state,
// doneAt, valence, round-graph and parent-link columns of length Len() —
// and earlier rounds are reached through the chain of frontiers the space
// was extended from. There is no per-item object: a run's Views, Run and
// Item are thin adapters materialized on demand (O(Horizon) slice headers,
// zero copying), while the hot loops — frontier expansion, decomposition
// bucket scans, summary folds — read the columns directly. See DESIGN.md §5.
package topo

import (
	"context"
	"fmt"
	"sync"

	"topocon/internal/combi"
	"topocon/internal/graph"
	"topocon/internal/ma"
	"topocon/internal/pager"
	"topocon/internal/ptg"
)

// frontier is the dense columnar storage of one round of one prefix-space
// chain: row i of ids/heard (the n-element segment at i·n) is the newest
// view row of item i, and parentOf/gs link the item to the previous round's
// frontier. Frontiers are immutable once built and shared between a space
// and its extensions, so earlier rounds are never copied — the chain is the
// columnar replacement of the per-item cloned row headers the pre-columnar
// layout carried.
type frontier struct {
	horizon int
	n       int
	count   int
	// ids[i*n+p] is the ViewID of process p in item i at this horizon;
	// heard[i*n+p] its heard-bitmask.
	ids   []ptg.ViewID
	heard []uint64
	// gs[i] is the round-horizon graph of item i; nil at horizon 0.
	gs []graph.Graph
	// parentOf[i] is the item index of i's parent in prev; nil at horizon 0.
	parentOf []int32
	// rootOf[i] is the index of i's horizon-0 ancestor — the input-vector
	// index, giving O(1) access to the run's inputs at any depth.
	rootOf []int32
	// inputs[r] is input vector r; set only on the horizon-0 frontier.
	inputs [][]int
	prev   *frontier
	// base is the horizon-0 frontier of the chain (itself at horizon 0),
	// cached so input lookups need no chain walk.
	base *frontier

	// Out-of-core state (see paging.go): once spilled, pg/pageID locate the
	// persisted copy of the columns, and ids == nil marks them evicted. The
	// identity fields above (horizon, n, count, prev, base) always stay
	// resident. nil pg means the round is not paged.
	pg     *pager.Pager
	pageID string
}

// idRow returns the ViewID row of item i (aliases the column; read-only).
func (f *frontier) idRow(i int) []ptg.ViewID { return f.ids[i*f.n : (i+1)*f.n] }

// heardRow returns the heard-bitmask row of item i (aliases the column).
func (f *frontier) heardRow(i int) []uint64 { return f.heard[i*f.n : (i+1)*f.n] }

// Item is one admissible run prefix of a Space, materialized by Space.Item
// for callers that want the pre-columnar object view. The hot paths never
// build Items; use the columnar accessors (ViewAt, HeardAt, State, DoneAt,
// Valence, Inputs) when only single fields are needed.
type Item struct {
	// Run is the input assignment plus graph prefix.
	Run ptg.Run
	// Views holds the hash-consed views of all processes at all times.
	Views *ptg.Views
	// State is the adversary automaton state after the prefix.
	State ma.State
	// Done records whether the adversary's liveness obligations are
	// discharged on this prefix.
	Done bool
	// DoneAt is the earliest round at which the obligations were
	// discharged, or -1 while they are pending.
	DoneAt int
	// Valence is the common input value if the run is valent, else -1.
	Valence int
}

// Space is the horizon-t slice of PS: every admissible run prefix for every
// input assignment over the input domain {0, ..., InputDomain-1}. Storage
// is columnar; see the package comment.
type Space struct {
	Adversary   ma.Adversary
	InputDomain int
	Horizon     int
	Interner    *ptg.Interner

	// fr is the newest-round frontier; earlier rounds via fr.prev.
	fr *frontier
	// Per-item columns of the newest round, indexed by item.
	states  []ma.State
	doneAt  []int32
	valence []int32

	indexOnce sync.Once
	index     map[string]int // run key -> item index, built lazily by Find

	// parentOffsets links a space produced by extendOne to its parent:
	// the children of parent item i occupy [parentOffsets[i],
	// parentOffsets[i+1]). It is nil on spaces built from scratch and is
	// what Decomposition.Refine seeds the child partition from.
	parentOffsets []int

	maxRuns     int // size cap inherited by Extend
	parallelism int // worker count inherited by Extend / DecomposeCtx

	// pager, when non-nil, spills rounds that stop being the head to disk
	// and bounds the resident set; see paging.go.
	pager *pager.Pager

	// sym, when non-nil, marks the chain as quotiented by the adversary's
	// automorphism group: items are orbit representatives, stab[i] is the
	// bitmask of group elements fixing item i, and the chain-level relabel
	// memo backs pseudo-item decomposition. See symmetry.go / DESIGN.md §13.
	sym  *symState
	stab []uint64
}

// DefaultMaxRuns bounds the size of constructed spaces; Build returns an
// error beyond it so that callers fail fast instead of thrashing.
const DefaultMaxRuns = 4_000_000

// Config collects the optional knobs of BuildCtx. The zero value selects
// the defaults: DefaultMaxRuns, a fresh interner, sequential construction.
type Config struct {
	// MaxRuns caps the space size; ≤ 0 selects DefaultMaxRuns.
	MaxRuns int
	// Parallelism is the worker count used by Extend and DecomposeCtx on
	// spaces derived from this build; ≤ 1 means sequential.
	Parallelism int
	// Interner shares hash-consed views with other spaces or a compiled
	// decision map; nil allocates a fresh one.
	Interner *ptg.Interner
	// Pager, when non-nil, makes the frontier chain out-of-core: every
	// round that stops being the head is persisted to the pager's page
	// directory and its columns become evictable under the pager's hot-set
	// budget; chain-walking accessors fault pages back in transparently.
	// Required for SnapshotChain / checkpointing.
	Pager *pager.Pager
	// Symmetry, when non-nil and nontrivial, quotients the chain by the
	// given automorphism group of the adversary's graph language (from
	// ma.Automorphisms): only one representative run per orbit is interned,
	// with orbit sizes tracked so FullLen and the verdict accounting still
	// report full-space numbers. Passing a group that is NOT a subgroup of
	// the adversary's true automorphism group is unsound.
	Symmetry *ma.Group
}

// Build enumerates the horizon-t prefix space of the adversary with the
// given input domain size (≥ 2 values for consensus to be non-trivial).
// maxRuns ≤ 0 selects DefaultMaxRuns.
func Build(adv ma.Adversary, inputDomain, horizon, maxRuns int) (*Space, error) {
	//topocon:allow ctxflow -- documented pre-context convenience shim; cancellable callers use BuildCtx
	return BuildCtx(context.Background(), adv, inputDomain, horizon, Config{MaxRuns: maxRuns})
}

// BuildWithInterner is Build with a caller-supplied view interner, so that
// views of different spaces (or of a compiled decision map) are comparable.
// A nil interner allocates a fresh one.
func BuildWithInterner(adv ma.Adversary, inputDomain, horizon, maxRuns int, interner *ptg.Interner) (*Space, error) {
	//topocon:allow ctxflow -- documented pre-context convenience shim; cancellable callers use BuildCtx
	return BuildCtx(context.Background(), adv, inputDomain, horizon,
		Config{MaxRuns: maxRuns, Interner: interner})
}

// BuildCtx enumerates the horizon-t prefix space under a context: the
// enumeration stops at cancellation and returns ctx.Err(). For iterative
// deepening build the horizon-0 space once and grow it with Extend, which
// reuses the horizon-t items instead of re-enumerating from the root.
//
// The space is built round by round into the columnar frontier chain —
// exactly the expansion Extend performs, which produces items in the
// depth-first prefix-enumeration order (children of one parent in Choices
// order, parents in item order). The final item count is cross-checked
// against the automaton's independent ma.CountPrefixes; a from-scratch
// build carries no Refine parent linkage (see Decomposition.Refine).
//
//topocon:export
func BuildCtx(ctx context.Context, adv ma.Adversary, inputDomain, horizon int, cfg Config) (*Space, error) {
	if inputDomain < 1 {
		return nil, fmt.Errorf("topo: input domain size %d < 1", inputDomain)
	}
	if horizon < 0 {
		return nil, fmt.Errorf("topo: negative horizon %d", horizon)
	}
	maxRuns := cfg.MaxRuns
	if maxRuns <= 0 {
		maxRuns = DefaultMaxRuns
	}
	n := adv.N()
	inputVectors := combi.CountWords(inputDomain, n)
	prefixes := ma.CountPrefixes(adv, horizon)
	total := inputVectors * prefixes
	if total > maxRuns {
		return nil, fmt.Errorf("topo: space has %d runs, exceeding cap %d", total, maxRuns)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	interner := cfg.Interner
	if interner == nil {
		interner = ptg.NewInterner()
	}
	s := buildBaseSym(adv, inputDomain, interner, maxRuns, cfg.Parallelism, cfg.Symmetry)
	s.pager = cfg.Pager
	for s.Horizon < horizon {
		next, err := s.extendOne(ctx)
		if err != nil {
			return nil, err
		}
		s = next
	}
	// The automaton's independent CountPrefixes counts the full space, so
	// quotiented builds cross-check their orbit accounting too.
	if s.FullLen() != total {
		return nil, fmt.Errorf("topo: built %d runs at horizon %d, automaton counts %d",
			s.FullLen(), horizon, total)
	}
	// From-scratch builds expose no parent linkage: Refine requires a space
	// produced by a one-round Extend of the decomposed space.
	s.parentOffsets = nil
	return s, nil
}

// buildBase constructs the horizon-0 space: one item per input vector, leaf
// views, the adversary's start state.
func buildBase(adv ma.Adversary, inputDomain int, interner *ptg.Interner, maxRuns, parallelism int) *Space {
	return buildBaseSym(adv, inputDomain, interner, maxRuns, parallelism, nil)
}

// buildBaseSym is buildBase with an optional symmetry quotient: with a
// nontrivial group, only the numerically smallest input vector of each
// G-orbit becomes an item, stabilizer masks are recorded, and the leaf
// relabel memo is seeded.
func buildBaseSym(adv ma.Adversary, inputDomain int, interner *ptg.Interner, maxRuns, parallelism int, group *ma.Group) *Space {
	n := adv.N()
	var sym *symState
	if group != nil && !group.Trivial() {
		sym = newSymState(group)
	}
	var inputs [][]int
	var stab []uint64
	combi.Words(inputDomain, n, func(w []int) bool {
		if sym != nil {
			st, keep := inputOrbitRep(w, group)
			if !keep {
				return true
			}
			stab = append(stab, st)
		}
		inputs = append(inputs, append([]int(nil), w...))
		return true
	})
	count := len(inputs)
	fr := &frontier{
		horizon: 0,
		n:       n,
		count:   count,
		ids:     make([]ptg.ViewID, count*n),
		heard:   make([]uint64, count*n),
		rootOf:  make([]int32, count),
		inputs:  inputs,
	}
	fr.base = fr
	s := &Space{
		Adversary:   adv,
		InputDomain: inputDomain,
		Horizon:     0,
		Interner:    interner,
		fr:          fr,
		states:      make([]ma.State, count),
		doneAt:      make([]int32, count),
		valence:     make([]int32, count),
		maxRuns:     maxRuns,
		parallelism: parallelism,
		sym:         sym,
		stab:        stab,
	}
	start := adv.Start()
	doneAt := int32(-1)
	if adv.Done(start) {
		doneAt = 0
	}
	for i, w := range inputs {
		for p := 0; p < n; p++ {
			fr.ids[i*n+p] = interner.Leaf(p, w[p])
			fr.heard[i*n+p] = 1 << uint(p)
		}
		fr.rootOf[i] = int32(i)
		s.states[i] = start
		s.doneAt[i] = doneAt
		s.valence[i] = valenceOf(w)
	}
	if sym != nil {
		s.relabelBase()
	}
	return s
}

// valenceOf returns the common input value of a valent vector, else -1.
func valenceOf(inputs []int) int32 {
	if len(inputs) == 0 {
		return -1
	}
	v := inputs[0]
	for _, x := range inputs[1:] {
		if x != v {
			return -1
		}
	}
	return int32(v)
}

// cancelCheckInterval is how many items may be processed between context
// polls during scans; small enough for sub-millisecond cancellation
// latency, large enough to keep the poll off the profile.
const cancelCheckInterval = 256

// Len returns the number of runs in the space.
func (s *Space) Len() int { return s.fr.count }

// N returns the process count.
func (s *Space) N() int { return s.Adversary.N() }

// ViewAt returns the ViewID of process p in item i at the space's horizon —
// a direct column read (plus a two-compare residency check; a space
// rehydrated from spilled pages may have had its round evicted again).
func (s *Space) ViewAt(i, p int) ptg.ViewID {
	s.fr.fault()
	return s.fr.ids[i*s.fr.n+p]
}

// HeardAt returns the heard-bitmask of process p in item i at the horizon.
func (s *Space) HeardAt(i, p int) uint64 {
	s.fr.fault()
	return s.fr.heard[i*s.fr.n+p]
}

// HeardByAll returns the bitmask of processes heard by every process in
// item i at the space's horizon — a fold over one column row.
func (s *Space) HeardByAll(i int) uint64 {
	s.fr.fault()
	acc := graph.AllNodes(s.fr.n)
	for _, h := range s.fr.heardRow(i) {
		acc &= h
	}
	return acc
}

// HeardByAllAt is HeardByAll at an earlier round t ≤ Horizon: it walks the
// frontier chain up to item i's round-t ancestor and folds that heard row
// in place — no Views adapter, no allocation. Callers that only need the
// horizon row should use HeardByAll (a direct column read).
func (s *Space) HeardByAllAt(i, t int) uint64 {
	f, idx := s.fr, i
	for f.horizon > t {
		f.fault()
		idx = int(f.parentOf[idx])
		f = f.prev
	}
	f.fault()
	acc := graph.AllNodes(f.n)
	for _, h := range f.heardRow(idx) {
		acc &= h
	}
	return acc
}

// State returns the adversary automaton state of item i.
func (s *Space) State(i int) ma.State { return s.states[i] }

// Done reports whether item i's liveness obligations are discharged.
func (s *Space) Done(i int) bool { return s.doneAt[i] >= 0 }

// DoneAt returns the earliest round at which item i's obligations were
// discharged, or -1 while pending.
func (s *Space) DoneAt(i int) int { return int(s.doneAt[i]) }

// Valence returns the common input value of item i if it is valent, else -1.
func (s *Space) Valence(i int) int { return int(s.valence[i]) }

// Inputs returns the input vector of item i — an O(1) lookup through the
// root-ancestor column and the chain's cached horizon-0 frontier. The
// returned slice is shared; callers must not mutate it.
func (s *Space) Inputs(i int) []int {
	s.fr.fault()
	return s.fr.base.inputs[s.fr.rootOf[i]]
}

// ViewsOf materializes the hash-consed views of item i at all times
// 0..Horizon as a ptg.Views adapter whose rows alias the frontier columns:
// O(Horizon) slice headers, no copying. The adapter supports the full read
// API (ID, Heard, HeardByAll, BroadcastTime, AgreeLevel…) and can even be
// extended — new rows are appended without touching the shared columns.
func (s *Space) ViewsOf(i int) *ptg.Views {
	ids := make([][]ptg.ViewID, s.Horizon+1)
	heard := make([][]uint64, s.Horizon+1)
	f, idx := s.fr, i
	for {
		f.fault()
		ids[f.horizon] = f.idRow(idx)
		heard[f.horizon] = f.heardRow(idx)
		if f.prev == nil {
			break
		}
		idx = int(f.parentOf[idx])
		f = f.prev
	}
	return ptg.ViewsFromRows(s.Interner, ids, heard)
}

// RunOf materializes the run prefix of item i: inputs via the root column,
// graphs by walking the frontier chain.
func (s *Space) RunOf(i int) ptg.Run {
	graphs := make([]graph.Graph, s.Horizon)
	f, idx := s.fr, i
	for f.prev != nil {
		f.fault()
		graphs[f.horizon-1] = f.gs[idx]
		idx = int(f.parentOf[idx])
		f = f.prev
	}
	return ptg.Run{Inputs: s.Inputs(i), Graphs: graphs}
}

// Item materializes item i in the pre-columnar object form. O(Horizon);
// intended for cold paths (reporting, rule evaluation, tests) — hot loops
// read the columns via the field accessors instead.
func (s *Space) Item(i int) Item {
	return Item{
		Run:     s.RunOf(i),
		Views:   s.ViewsOf(i),
		State:   s.states[i],
		Done:    s.doneAt[i] >= 0,
		DoneAt:  int(s.doneAt[i]),
		Valence: int(s.valence[i]),
	}
}

// Find returns the index of the item with the given run, or -1. The lookup
// index is built on first use (concurrent Finds are safe), keeping space
// construction and extension — the checker's hot path, which never calls
// Find — free of run-key serialization.
func (s *Space) Find(r ptg.Run) int {
	s.indexOnce.Do(func() {
		index := make(map[string]int, s.Len())
		for i := 0; i < s.Len(); i++ {
			index[s.RunOf(i).Key()] = i
		}
		s.index = index
	})
	if i, ok := s.index[r.Key()]; ok {
		return i
	}
	return -1
}

// ValentItems returns the indices of the v-valent runs (the z_v of the
// paper).
func (s *Space) ValentItems(v int) []int {
	var out []int
	for i, val := range s.valence {
		if int(val) == v {
			out = append(out, i)
		}
	}
	return out
}
