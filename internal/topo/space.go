// Package topo implements the paper's topological machinery at finite
// resolution: the space PS of admissible process-time-graph sequences
// restricted to horizon-t prefixes, the minimum topology's
// indistinguishability relation, the ε-approximations of Definition 6.2
// (connected components via union-find over shared views), broadcastability
// (Definition 5.8), and cross-component distances.
//
// The correspondence to the paper (see DESIGN.md §2 for proofs):
//
//	d_min(a,b) < 2^-t  ⇔  some process's views agree at all times 0..t
//	                   ⇔  some process's hash-consed time-t ViewIDs coincide
//
// so the transitive closure of "shares a time-t view with" computes exactly
// the 2^-t-approximation PS^ε of Definition 6.2, and its classes are the
// connected components of the horizon-t prefix space.
package topo

import (
	"context"
	"fmt"
	"sync"

	"topocon/internal/combi"
	"topocon/internal/ma"
	"topocon/internal/ptg"
)

// Item is one admissible run prefix in a Space.
type Item struct {
	// Run is the input assignment plus graph prefix.
	Run ptg.Run
	// Views holds the hash-consed views of all processes at all times.
	Views *ptg.Views
	// State is the adversary automaton state after the prefix.
	State ma.State
	// Done records whether the adversary's liveness obligations are
	// discharged on this prefix.
	Done bool
	// DoneAt is the earliest round at which the obligations were
	// discharged, or -1 while they are pending.
	DoneAt int
	// Valence is the common input value if the run is valent, else -1.
	Valence int
}

// Space is the horizon-t slice of PS: every admissible run prefix for every
// input assignment over the input domain {0, ..., InputDomain-1}.
type Space struct {
	Adversary   ma.Adversary
	InputDomain int
	Horizon     int
	Items       []Item
	Interner    *ptg.Interner

	indexOnce sync.Once
	index     map[string]int // run key -> item index, built lazily by Find

	// parentOffsets links a space produced by extendOne to its parent:
	// the children of parent item i occupy [parentOffsets[i],
	// parentOffsets[i+1]). It is nil on spaces built from scratch and is
	// what Decomposition.Refine seeds the child partition from.
	parentOffsets []int

	maxRuns     int // size cap inherited by Extend
	parallelism int // worker count inherited by Extend / DecomposeCtx
}

// DefaultMaxRuns bounds the size of constructed spaces; Build returns an
// error beyond it so that callers fail fast instead of thrashing.
const DefaultMaxRuns = 4_000_000

// Config collects the optional knobs of BuildCtx. The zero value selects
// the defaults: DefaultMaxRuns, a fresh interner, sequential construction.
type Config struct {
	// MaxRuns caps the space size; ≤ 0 selects DefaultMaxRuns.
	MaxRuns int
	// Parallelism is the worker count used by Extend and DecomposeCtx on
	// spaces derived from this build; ≤ 1 means sequential.
	Parallelism int
	// Interner shares hash-consed views with other spaces or a compiled
	// decision map; nil allocates a fresh one.
	Interner *ptg.Interner
}

// Build enumerates the horizon-t prefix space of the adversary with the
// given input domain size (≥ 2 values for consensus to be non-trivial).
// maxRuns ≤ 0 selects DefaultMaxRuns.
func Build(adv ma.Adversary, inputDomain, horizon, maxRuns int) (*Space, error) {
	return BuildCtx(context.Background(), adv, inputDomain, horizon, Config{MaxRuns: maxRuns})
}

// BuildWithInterner is Build with a caller-supplied view interner, so that
// views of different spaces (or of a compiled decision map) are comparable.
// A nil interner allocates a fresh one.
func BuildWithInterner(adv ma.Adversary, inputDomain, horizon, maxRuns int, interner *ptg.Interner) (*Space, error) {
	return BuildCtx(context.Background(), adv, inputDomain, horizon,
		Config{MaxRuns: maxRuns, Interner: interner})
}

// BuildCtx enumerates the horizon-t prefix space under a context: the
// enumeration stops at cancellation and returns ctx.Err(). For iterative
// deepening build the horizon-0 space once and grow it with Extend, which
// reuses the horizon-t items instead of re-enumerating from the root.
func BuildCtx(ctx context.Context, adv ma.Adversary, inputDomain, horizon int, cfg Config) (*Space, error) {
	if inputDomain < 1 {
		return nil, fmt.Errorf("topo: input domain size %d < 1", inputDomain)
	}
	if horizon < 0 {
		return nil, fmt.Errorf("topo: negative horizon %d", horizon)
	}
	maxRuns := cfg.MaxRuns
	if maxRuns <= 0 {
		maxRuns = DefaultMaxRuns
	}
	n := adv.N()
	inputVectors := combi.CountWords(inputDomain, n)
	prefixes := ma.CountPrefixes(adv, horizon)
	total := inputVectors * prefixes
	if total > maxRuns {
		return nil, fmt.Errorf("topo: space has %d runs, exceeding cap %d", total, maxRuns)
	}
	interner := cfg.Interner
	if interner == nil {
		interner = ptg.NewInterner()
	}
	s := &Space{
		Adversary:   adv,
		InputDomain: inputDomain,
		Horizon:     horizon,
		Items:       make([]Item, 0, total),
		Interner:    interner,
		maxRuns:     maxRuns,
		parallelism: cfg.Parallelism,
	}
	var cancelled bool
	combi.Words(inputDomain, n, func(inputs []int) bool {
		run := ptg.NewRun(inputs)
		valence := -1
		if v, ok := run.IsValent(); ok {
			valence = v
		}
		ma.EnumeratePrefixes(adv, horizon, func(p ma.Prefix) bool {
			// Poll cancellation inside the prefix walk too: a single input
			// vector can carry an exponential enumeration.
			if len(s.Items)%cancelCheckInterval == 0 && ctx.Err() != nil {
				cancelled = true
				return false
			}
			r := run
			for _, g := range p.Graphs {
				r = r.Extend(g)
			}
			s.Items = append(s.Items, Item{
				Run:     r,
				Views:   ptg.ComputeViews(s.Interner, r),
				State:   p.State,
				Done:    p.Done,
				DoneAt:  p.DoneAt,
				Valence: valence,
			})
			return true
		})
		return !cancelled
	})
	if cancelled {
		return nil, ctx.Err()
	}
	return s, nil
}

// cancelCheckInterval is how many items may be appended between context
// polls during enumeration; small enough for sub-millisecond cancellation
// latency, large enough to keep the poll off the profile.
const cancelCheckInterval = 256

// Len returns the number of runs in the space.
func (s *Space) Len() int { return len(s.Items) }

// N returns the process count.
func (s *Space) N() int { return s.Adversary.N() }

// Find returns the index of the item with the given run, or -1. The lookup
// index is built on first use (concurrent Finds are safe), keeping space
// construction and extension — the checker's hot path, which never calls
// Find — free of run-key serialization.
func (s *Space) Find(r ptg.Run) int {
	s.indexOnce.Do(func() {
		index := make(map[string]int, len(s.Items))
		for i := range s.Items {
			index[s.Items[i].Run.Key()] = i
		}
		s.index = index
	})
	if i, ok := s.index[r.Key()]; ok {
		return i
	}
	return -1
}

// ValentItems returns the indices of the v-valent runs (the z_v of the
// paper).
func (s *Space) ValentItems(v int) []int {
	var out []int
	for i := range s.Items {
		if s.Items[i].Valence == v {
			out = append(out, i)
		}
	}
	return out
}
