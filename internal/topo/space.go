// Package topo implements the paper's topological machinery at finite
// resolution: the space PS of admissible process-time-graph sequences
// restricted to horizon-t prefixes, the minimum topology's
// indistinguishability relation, the ε-approximations of Definition 6.2
// (connected components via union-find over shared views), broadcastability
// (Definition 5.8), and cross-component distances.
//
// The correspondence to the paper (see DESIGN.md §2 for proofs):
//
//	d_min(a,b) < 2^-t  ⇔  some process's views agree at all times 0..t
//	                   ⇔  some process's hash-consed time-t ViewIDs coincide
//
// so the transitive closure of "shares a time-t view with" computes exactly
// the 2^-t-approximation PS^ε of Definition 6.2, and its classes are the
// connected components of the horizon-t prefix space.
package topo

import (
	"fmt"

	"topocon/internal/combi"
	"topocon/internal/ma"
	"topocon/internal/ptg"
)

// Item is one admissible run prefix in a Space.
type Item struct {
	// Run is the input assignment plus graph prefix.
	Run ptg.Run
	// Views holds the hash-consed views of all processes at all times.
	Views *ptg.Views
	// State is the adversary automaton state after the prefix.
	State ma.State
	// Done records whether the adversary's liveness obligations are
	// discharged on this prefix.
	Done bool
	// DoneAt is the earliest round at which the obligations were
	// discharged, or -1 while they are pending.
	DoneAt int
	// Valence is the common input value if the run is valent, else -1.
	Valence int
}

// Space is the horizon-t slice of PS: every admissible run prefix for every
// input assignment over the input domain {0, ..., InputDomain-1}.
type Space struct {
	Adversary   ma.Adversary
	InputDomain int
	Horizon     int
	Items       []Item
	Interner    *ptg.Interner

	index map[string]int // run key -> item index
}

// DefaultMaxRuns bounds the size of constructed spaces; Build returns an
// error beyond it so that callers fail fast instead of thrashing.
const DefaultMaxRuns = 4_000_000

// Build enumerates the horizon-t prefix space of the adversary with the
// given input domain size (≥ 2 values for consensus to be non-trivial).
// maxRuns ≤ 0 selects DefaultMaxRuns.
func Build(adv ma.Adversary, inputDomain, horizon, maxRuns int) (*Space, error) {
	return BuildWithInterner(adv, inputDomain, horizon, maxRuns, nil)
}

// BuildWithInterner is Build with a caller-supplied view interner, so that
// views of different spaces (or of a compiled decision map) are comparable.
// A nil interner allocates a fresh one.
func BuildWithInterner(adv ma.Adversary, inputDomain, horizon, maxRuns int, interner *ptg.Interner) (*Space, error) {
	if inputDomain < 1 {
		return nil, fmt.Errorf("topo: input domain size %d < 1", inputDomain)
	}
	if horizon < 0 {
		return nil, fmt.Errorf("topo: negative horizon %d", horizon)
	}
	if maxRuns <= 0 {
		maxRuns = DefaultMaxRuns
	}
	n := adv.N()
	inputVectors := combi.CountWords(inputDomain, n)
	prefixes := ma.CountPrefixes(adv, horizon)
	total := inputVectors * prefixes
	if total > maxRuns {
		return nil, fmt.Errorf("topo: space has %d runs, exceeding cap %d", total, maxRuns)
	}
	if interner == nil {
		interner = ptg.NewInterner()
	}
	s := &Space{
		Adversary:   adv,
		InputDomain: inputDomain,
		Horizon:     horizon,
		Items:       make([]Item, 0, total),
		Interner:    interner,
		index:       make(map[string]int, total),
	}
	combi.Words(inputDomain, n, func(inputs []int) bool {
		run := ptg.NewRun(inputs)
		valence := -1
		if v, ok := run.IsValent(); ok {
			valence = v
		}
		ma.EnumeratePrefixes(adv, horizon, func(p ma.Prefix) bool {
			r := run
			for _, g := range p.Graphs {
				r = r.Extend(g)
			}
			item := Item{
				Run:     r,
				Views:   ptg.ComputeViews(s.Interner, r),
				State:   p.State,
				Done:    p.Done,
				DoneAt:  p.DoneAt,
				Valence: valence,
			}
			s.index[r.Key()] = len(s.Items)
			s.Items = append(s.Items, item)
			return true
		})
		return true
	})
	return s, nil
}

// Len returns the number of runs in the space.
func (s *Space) Len() int { return len(s.Items) }

// N returns the process count.
func (s *Space) N() int { return s.Adversary.N() }

// Find returns the index of the item with the given run, or -1.
func (s *Space) Find(r ptg.Run) int {
	if i, ok := s.index[r.Key()]; ok {
		return i
	}
	return -1
}

// ValentItems returns the indices of the v-valent runs (the z_v of the
// paper).
func (s *Space) ValentItems(v int) []int {
	var out []int
	for i := range s.Items {
		if s.Items[i].Valence == v {
			out = append(out, i)
		}
	}
	return out
}
