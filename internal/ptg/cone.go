package ptg

import (
	"fmt"
	"sort"
	"strings"
)

// TimeNode is a node (Proc, Time) of a process-time graph. At Time 0 the
// node additionally carries the input value (see Cone.Input).
type TimeNode struct {
	Proc, Time int
}

// Cone is the explicit causal cone (view) of a process at a time: the
// sub-DAG of the process-time graph induced by all nodes having a path to
// the apex. It exists as an independently-computed reference for the
// hash-consed ViewIDs (the two are cross-checked by tests) and for
// rendering.
type Cone struct {
	// Apex is the node (p, t) whose causal past this cone is.
	Apex TimeNode
	// Nodes maps each cone node to true.
	Nodes map[TimeNode]bool
	// Edges maps each cone node to its in-neighbours within the cone.
	Edges map[TimeNode][]TimeNode
	// Input[p] is x_p for each process p whose initial node is in the cone.
	Input map[int]int
}

// ConeOf computes the explicit causal cone of (p, t) in the process-time
// graph of run r. It walks backwards from the apex; because graphs carry
// self-loops, the cone contains (p, s) for every s ≤ t.
func ConeOf(r Run, p, t int) *Cone {
	c := &Cone{
		Apex:  TimeNode{Proc: p, Time: t},
		Nodes: make(map[TimeNode]bool),
		Edges: make(map[TimeNode][]TimeNode),
		Input: make(map[int]int),
	}
	var visit func(node TimeNode)
	visit = func(node TimeNode) {
		if c.Nodes[node] {
			return
		}
		c.Nodes[node] = true
		if node.Time == 0 {
			c.Input[node.Proc] = r.Inputs[node.Proc]
			return
		}
		g := r.Graph(node.Time)
		in := g.In(node.Proc)
		preds := make([]TimeNode, 0, r.N())
		for q := 0; q < r.N(); q++ {
			if in&(1<<uint(q)) != 0 {
				pred := TimeNode{Proc: q, Time: node.Time - 1}
				preds = append(preds, pred)
				visit(pred)
			}
		}
		c.Edges[node] = preds
	}
	visit(c.Apex)
	return c
}

// Encode returns a canonical string determined exactly by the cone
// contents (apex, node set, edge set, inputs). Two cones are equal as
// process-time sub-DAGs iff their encodings are equal.
func (c *Cone) Encode() string {
	nodes := make([]TimeNode, 0, len(c.Nodes))
	for node := range c.Nodes {
		nodes = append(nodes, node)
	}
	sortNodes(nodes)
	var sb strings.Builder
	fmt.Fprintf(&sb, "apex=%d@%d;", c.Apex.Proc, c.Apex.Time)
	for _, node := range nodes {
		if node.Time == 0 {
			fmt.Fprintf(&sb, "n%d@0=%d;", node.Proc, c.Input[node.Proc])
			continue
		}
		fmt.Fprintf(&sb, "n%d@%d<-", node.Proc, node.Time)
		preds := append([]TimeNode(nil), c.Edges[node]...)
		sortNodes(preds)
		for _, pr := range preds {
			fmt.Fprintf(&sb, "%d,", pr.Proc)
		}
		sb.WriteByte(';')
	}
	return sb.String()
}

// Size returns the number of nodes in the cone.
func (c *Cone) Size() int { return len(c.Nodes) }

// ContainsInitial reports whether the initial node of process q is in the
// cone — i.e. whether the cone's owner has heard q.
func (c *Cone) ContainsInitial(q int) bool {
	return c.Nodes[TimeNode{Proc: q, Time: 0}]
}

func sortNodes(nodes []TimeNode) {
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].Time != nodes[j].Time {
			return nodes[i].Time < nodes[j].Time
		}
		return nodes[i].Proc < nodes[j].Proc
	})
}
