package ptg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"topocon/internal/graph"
)

func TestInternerLeafConsistency(t *testing.T) {
	in := NewInterner()
	a := in.Leaf(0, 1)
	b := in.Leaf(0, 1)
	if a != b {
		t.Error("identical leaves interned to different IDs")
	}
	if in.Leaf(0, 2) == a {
		t.Error("different input values interned to the same ID")
	}
	if in.Leaf(1, 1) == a {
		t.Error("different processes interned to the same ID")
	}
	if in.Size() != 3 {
		t.Errorf("Size() = %d, want 3", in.Size())
	}
}

func TestInternerNodeConsistency(t *testing.T) {
	in := NewInterner()
	l0 := in.Leaf(0, 0)
	l1 := in.Leaf(1, 0)
	a := in.Node(0, []int{0, 1}, []ViewID{l0, l1})
	b := in.Node(0, []int{0, 1}, []ViewID{l0, l1})
	if a != b {
		t.Error("identical nodes interned to different IDs")
	}
	if c := in.Node(0, []int{0}, []ViewID{l0}); c == a {
		t.Error("different child sets interned to the same ID")
	}
	if c := in.Node(1, []int{0, 1}, []ViewID{l0, l1}); c == a {
		t.Error("different owners interned to the same ID")
	}
}

// runFromSeed builds a deterministic pseudo-random run for property tests.
func runFromSeed(rng *rand.Rand, n, rounds, inputDomain int) Run {
	inputs := make([]int, n)
	for p := range inputs {
		inputs[p] = rng.Intn(inputDomain)
	}
	r := NewRun(inputs)
	total := graph.CountAll(n)
	for t := 0; t < rounds; t++ {
		r = r.Extend(graph.ByIndex(n, uint64(rng.Int63())%total))
	}
	return r
}

// TestViewIDMatchesExplicitCone is the central soundness check: hash-consed
// ViewID equality must coincide with explicit causal-cone equality, across
// runs, processes and times.
func TestViewIDMatchesExplicitCone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n, rounds = 3, 3
		in := NewInterner()
		a := runFromSeed(rng, n, rounds, 2)
		b := runFromSeed(rng, n, rounds, 2)
		va := ComputeViews(in, a)
		vb := ComputeViews(in, b)
		for p := 0; p < n; p++ {
			for tt := 0; tt <= rounds; tt++ {
				idEq := va.ID(tt, p) == vb.ID(tt, p)
				coneEq := ConeOf(a, p, tt).Encode() == ConeOf(b, p, tt).Encode()
				if idEq != coneEq {
					t.Logf("mismatch at p=%d t=%d:\n a=%v\n b=%v", p, tt, a, b)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestViewRefinement: a view difference at time t persists at time t+1
// (this is what makes level-t indistinguishability relations refine).
func TestViewRefinement(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n, rounds = 3, 4
		in := NewInterner()
		va := ComputeViews(in, runFromSeed(rng, n, rounds, 2))
		vb := ComputeViews(in, runFromSeed(rng, n, rounds, 2))
		for p := 0; p < n; p++ {
			differed := false
			for tt := 0; tt <= rounds; tt++ {
				eq := va.ID(tt, p) == vb.ID(tt, p)
				if differed && eq {
					return false
				}
				if !eq {
					differed = true
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestHeardMatchesCone: the incremental heard-sets must agree with the
// initial nodes present in the explicit cone.
func TestHeardMatchesCone(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 40; iter++ {
		const n, rounds = 3, 3
		r := runFromSeed(rng, n, rounds, 2)
		v := ComputeViews(NewInterner(), r)
		for p := 0; p < n; p++ {
			for tt := 0; tt <= rounds; tt++ {
				cone := ConeOf(r, p, tt)
				for q := 0; q < n; q++ {
					wantHeard := cone.ContainsInitial(q)
					gotHeard := v.Heard(tt, p)&(1<<uint(q)) != 0
					if wantHeard != gotHeard {
						t.Fatalf("heard mismatch: run %v p=%d t=%d q=%d cone=%v incr=%v",
							r, p, tt, q, wantHeard, gotHeard)
					}
				}
			}
		}
	}
}

func TestBroadcastTime(t *testing.T) {
	const n = 4
	star := graph.Star(n, 1)
	r := NewRun([]int{0, 1, 0, 1}).Extend(star).Extend(star)
	v := ComputeViews(NewInterner(), r)
	if got := v.BroadcastTime(1); got != 1 {
		t.Errorf("star: BroadcastTime(center) = %d, want 1", got)
	}
	if got := v.BroadcastTime(0); got != -1 {
		t.Errorf("star: BroadcastTime(leaf) = %d, want -1", got)
	}

	chain := graph.Chain(n)
	r = NewRun([]int{0, 0, 0, 0})
	for i := 0; i < n-1; i++ {
		r = r.Extend(chain)
	}
	v = ComputeViews(NewInterner(), r)
	if got := v.BroadcastTime(0); got != n-1 {
		t.Errorf("chain: BroadcastTime(head) = %d, want %d", got, n-1)
	}

	empty := graph.New(n)
	r = NewRun([]int{0, 0, 0, 0}).Extend(empty).Extend(empty)
	v = ComputeViews(NewInterner(), r)
	for p := 0; p < n; p++ {
		if got := v.BroadcastTime(p); got != -1 {
			t.Errorf("empty: BroadcastTime(%d) = %d, want -1", p, got)
		}
	}
}

// TestBroadcastTimeMatchesLinearScan pins the binary-search BroadcastTime
// against the reference linear scan from t = 0: heard-set monotonicity makes
// the two equivalent, and this test keeps that equivalence enforced.
func TestBroadcastTimeMatchesLinearScan(t *testing.T) {
	linear := func(v *Views, p int) int {
		bit := uint64(1) << uint(p)
		for tt := 0; tt <= v.Rounds(); tt++ {
			all := true
			for q := 0; q < v.N(); q++ {
				if v.Heard(tt, q)&bit == 0 {
					all = false
					break
				}
			}
			if all {
				return tt
			}
		}
		return -1
	}
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 300; iter++ {
		n := 2 + rng.Intn(3)
		rounds := rng.Intn(7)
		v := ComputeViews(NewInterner(), runFromSeed(rng, n, rounds, 2))
		for p := 0; p < n; p++ {
			if got, want := v.BroadcastTime(p), linear(v, p); got != want {
				t.Fatalf("n=%d rounds=%d p=%d: BroadcastTime = %d, linear scan = %d",
					n, rounds, p, got, want)
			}
		}
	}
}

func TestHeardByAll(t *testing.T) {
	r := NewRun([]int{0, 1}).Extend(graph.Right) // 1 -> 2
	v := ComputeViews(NewInterner(), r)
	if got := v.HeardByAll(1); got != 0b01 {
		t.Errorf("HeardByAll(1) = %s, want {1}", graph.FormatNodeSet(got))
	}
	r2 := NewRun([]int{0, 1}).Extend(graph.Both)
	v2 := ComputeViews(NewInterner(), r2)
	if got := v2.HeardByAll(1); got != 0b11 {
		t.Errorf("HeardByAll(1) with <-> = %s, want {1,2}", graph.FormatNodeSet(got))
	}
}

// TestFig3Distances reproduces Figure 3 of the paper: a run pair with
// d_max = d_{3} = 1, d_{2} = 1/2, d_min = d_{1} = 1/4.
func TestFig3Distances(t *testing.T) {
	g1 := graph.MustParse(3, "3->2")
	g2 := graph.MustParse(3, "2->1")
	alpha := NewRun([]int{0, 0, 0}).Extend(g1).Extend(g2)
	beta := NewRun([]int{0, 0, 1}).Extend(g1).Extend(g2)
	in := NewInterner()
	va := ComputeViews(in, alpha)
	vb := ComputeViews(in, beta)

	if got := AgreeLevel(va, vb, 2); got != 0 {
		t.Errorf("process 3 first differs at %d, want 0 (d=1)", got)
	}
	if got := AgreeLevel(va, vb, 1); got != 1 {
		t.Errorf("process 2 first differs at %d, want 1 (d=1/2)", got)
	}
	if got := AgreeLevel(va, vb, 0); got != 2 {
		t.Errorf("process 1 first differs at %d, want 2 (d=1/4)", got)
	}
	if got := MaxAgreeLevel(va, vb); got != 0 {
		t.Errorf("MaxAgreeLevel = %d, want 0 (d_max=1)", got)
	}
	if got := MinAgreeLevel(va, vb); got != 2 {
		t.Errorf("MinAgreeLevel = %d, want 2 (d_min=1/4)", got)
	}
}

// TestUnseenDifference: a graph difference that never reaches a process
// leaves that process's views equal through the whole prefix.
func TestUnseenDifference(t *testing.T) {
	// Runs differ only in round 2: -> vs --. Process 1 never hears 2, so
	// its views agree forever within the prefix.
	a := NewRun([]int{0, 1}).Extend(graph.Right).Extend(graph.Right).Extend(graph.Right)
	b := NewRun([]int{0, 1}).Extend(graph.Right).Extend(graph.Neither).Extend(graph.Right)
	in := NewInterner()
	va := ComputeViews(in, a)
	vb := ComputeViews(in, b)
	if got := AgreeLevel(va, vb, 0); got != 4 {
		t.Errorf("process 1 AgreeLevel = %d, want 4 (agrees through prefix)", got)
	}
	if got := AgreeLevel(va, vb, 1); got != 2 {
		t.Errorf("process 2 AgreeLevel = %d, want 2", got)
	}
	if got := MinAgreeLevel(va, vb); got != 4 {
		t.Errorf("MinAgreeLevel = %d, want 4 (d_min < 2^-3)", got)
	}
}

// TestAgreeLevelPseudoMetricProperties checks symmetry and the triangle
// inequality of d_{p} = 2^-AgreeLevel (Theorem 4.3) plus monotonicity
// d_min ≤ d_{p} ≤ d_max on random run triples.
func TestAgreeLevelPseudoMetricProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n, rounds = 3, 3
		in := NewInterner()
		va := ComputeViews(in, runFromSeed(rng, n, rounds, 2))
		vb := ComputeViews(in, runFromSeed(rng, n, rounds, 2))
		vc := ComputeViews(in, runFromSeed(rng, n, rounds, 2))
		for p := 0; p < n; p++ {
			ab := AgreeLevel(va, vb, p)
			ba := AgreeLevel(vb, va, p)
			if ab != ba {
				return false
			}
			// Triangle inequality in exponent form:
			// first-diff(a,c) ≥ min(first-diff(a,b), first-diff(b,c)).
			ac := AgreeLevel(va, vc, p)
			bc := AgreeLevel(vb, vc, p)
			lo := ab
			if bc < lo {
				lo = bc
			}
			if ac < lo {
				return false
			}
			if AgreeLevel(va, vb, p) > MinAgreeLevel(va, vb) {
				return false
			}
			if AgreeLevel(va, vb, p) < MaxAgreeLevel(va, vb) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestExtendPanicsOnWrongSize(t *testing.T) {
	v := ComputeViews(NewInterner(), NewRun([]int{0, 1}))
	defer func() {
		if recover() == nil {
			t.Error("Extend with wrong graph size did not panic")
		}
	}()
	v.Extend(graph.New(3))
}
