package ptg

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Export serializes the interner's key arena in ID order: uvarint count,
// then for each ViewID 0..count-1 the uvarint-length-prefixed canonical key
// encoding. Because IDs are dense and assigned in insertion order,
// re-interning the exported keys in order into a fresh interner reproduces
// the identical ID assignment — the determinism checkpoint/resume rests on.
//
// Export is safe to call concurrently with interning; it captures the IDs
// assigned before the call (views interned concurrently may or may not be
// included, but the exported prefix is always self-consistent).
func (in *Interner) Export() []byte {
	count := in.next.Load()
	type exported struct {
		id  ViewID
		key []byte
	}
	all := make([]exported, 0, count)
	for si := range in.shards {
		sh := &in.shards[si]
		sh.mu.Lock()
		entries := sh.entries
		arena := sh.arena
		sh.mu.Unlock()
		// entries and arena are append-only: the captured headers cover an
		// immutable prefix even if interning continues concurrently.
		for ei := range entries {
			e := &entries[ei]
			if e.id < ViewID(count) {
				all = append(all, exported{id: e.id, key: arena[e.off : e.off+e.klen]})
			}
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].id < all[j].id })
	size := binary.MaxVarintLen64
	for _, e := range all {
		size += binary.MaxVarintLen32 + len(e.key)
	}
	buf := make([]byte, 0, size)
	buf = binary.AppendUvarint(buf, uint64(len(all)))
	for _, e := range all {
		buf = binary.AppendUvarint(buf, uint64(len(e.key)))
		buf = append(buf, e.key...)
	}
	return buf
}

// ImportInterner rebuilds an interner from an Export payload, verifying
// that re-interning reproduces the dense ID sequence exactly. Any framing
// violation or ID mismatch is an error; a partially-imported interner is
// never returned.
func ImportInterner(data []byte) (*Interner, error) {
	count, k := binary.Uvarint(data)
	if k <= 0 {
		return nil, fmt.Errorf("ptg: interner import: bad count")
	}
	if count > 1<<31-1 {
		return nil, fmt.Errorf("ptg: interner import: count %d out of range", count)
	}
	data = data[k:]
	in := NewInterner()
	for i := uint64(0); i < count; i++ {
		klen, k := binary.Uvarint(data)
		if k <= 0 || klen > uint64(len(data)-k) {
			return nil, fmt.Errorf("ptg: interner import: bad key length at id %d", i)
		}
		key := data[k : k+int(klen)]
		data = data[k+int(klen):]
		if len(key) == 0 {
			return nil, fmt.Errorf("ptg: interner import: empty key at id %d", i)
		}
		if id := in.intern(key); id != ViewID(i) {
			return nil, fmt.Errorf("ptg: interner import: key %d re-interned as id %d (duplicate key?)", i, id)
		}
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("ptg: interner import: %d trailing bytes", len(data))
	}
	return in, nil
}
