package ptg

import (
	"bytes"
	"encoding/binary"
	"sync"
	"sync/atomic"
)

// ViewID identifies a hash-consed causal cone. Two views (possibly from
// different runs) are equal as process-time sub-DAGs if and only if their
// ViewIDs from the same Interner are equal.
type ViewID int32

// Interner hash-conses causal cones. All runs that are to be compared must
// share one Interner; the prefix-space machinery in internal/topo owns one
// per space.
//
// The recursive encoding is collision-free by construction (it is a
// canonical serialization, not a hash): a leaf encodes (process, input
// value); an inner node encodes (process, sorted child (q, ViewID) pairs).
// By induction on round number, equal encodings imply equal cones: the
// unfolding of a cone determines the cone, because the in-neighbourhood of
// every cone node within the cone appears at each of its occurrences.
//
// An Interner is safe for concurrent use and engineered for the parallel
// frontier expansion in internal/topo, where every one of the |S|·n interns
// per extended round would otherwise serialize:
//
//   - the table is split into 64 shards selected by the top bits of the key
//     hash, so workers interning unrelated cones take disjoint locks;
//   - each shard is an open-addressing table whose keys live in one
//     append-only byte arena — interning allocates nothing per call (keys
//     are encoded into stack buffers, arena and table growth is amortized
//     geometric), unlike the previous string-keyed map that allocated a key
//     string per novel cone and a hash bucket per entry;
//   - IDs are drawn from one atomic counter, so they stay dense across
//     shards — the decomposition machinery indexes per-ViewID scratch
//     tables by Size().
//
// IDs are assigned in insertion order; concurrent runs may assign different
// IDs to the same cone — only equality within one Interner is meaningful.
type Interner struct {
	next   atomic.Int32
	shards [internShards]internShard
}

// internShards is the lock-striping factor. 64 shards keep the expected
// contention of even a 64-worker expansion below one waiter per lock; the
// per-shard footprint (one slice header triple + mutex) is negligible
// against the interned data itself.
const internShards = 64

// internShard is one stripe: an open-addressing hash table (1-based indices
// into entries, 0 = empty) over keys stored back-to-back in arena.
type internShard struct {
	mu      sync.Mutex
	table   []int32
	entries []internEntry
	arena   []byte
}

// internEntry locates one interned key in the shard arena. The full hash is
// memoized so table growth and probe comparisons never re-hash or touch the
// arena for non-colliding entries.
type internEntry struct {
	hash uint64
	off  uint32
	klen uint32
	id   ViewID
}

// internShardInitialSize is the initial open-addressing table size per
// shard; must be a power of two.
const internShardInitialSize = 64

// NewInterner returns an empty interner.
//
//topocon:export
func NewInterner() *Interner {
	return &Interner{}
}

// Size returns the number of distinct views interned so far. It is safe to
// call concurrently with interning; every ViewID observed before the call
// is strictly below the returned size (IDs are dense, in insertion order).
func (in *Interner) Size() int {
	return int(in.next.Load())
}

// Leaf interns the time-0 view of process p with input x.
//
//topocon:allocfree
func (in *Interner) Leaf(p, x int) ViewID {
	var buf [1 + 2*binary.MaxVarintLen64]byte
	buf[0] = 'L'
	k := 1
	k += binary.PutUvarint(buf[k:], uint64(p))
	k += binary.PutVarint(buf[k:], int64(x))
	return in.intern(buf[:k])
}

// nodeKeyStackSize bounds the stack-encoded node key: owner tag plus one
// uvarint pair per child. 24 children cover every realistic process count
// without heap fallback (the uvarint pairs of small ids are 2-4 bytes, so
// even n = 64 usually fits; the cap below is on the worst case).
const nodeKeyStackSize = 2 + binary.MaxVarintLen64 + 24*2*binary.MaxVarintLen64

// Node interns the time-t view of process p whose round-t in-neighbours
// (ascending process order) have the time-(t-1) views children. The caller
// must pass children aligned with the ascending order of the in-neighbour
// set; the neighbour identities are part of the encoding via their own
// leaf/node process labels plus position, so the pair list is (q, id).
//
//topocon:allocfree
func (in *Interner) Node(p int, qs []int, children []ViewID) ViewID {
	var stack [nodeKeyStackSize]byte
	buf := stack[:0]
	if need := 2 + binary.MaxVarintLen64 + len(children)*2*binary.MaxVarintLen64; need > nodeKeyStackSize {
		buf = make([]byte, 0, need)
	}
	var tmp [binary.MaxVarintLen64]byte
	buf = append(buf, 'N')
	k := binary.PutUvarint(tmp[:], uint64(p))
	buf = append(buf, tmp[:k]...)
	for i, id := range children {
		k = binary.PutUvarint(tmp[:], uint64(qs[i]))
		buf = append(buf, tmp[:k]...)
		k = binary.PutUvarint(tmp[:], uint64(id))
		buf = append(buf, tmp[:k]...)
	}
	return in.intern(buf)
}

// intern returns the ID of key, assigning the next dense ID on first sight.
// key is copied into the shard arena on insertion; the caller's buffer is
// never retained, so stack-encoded keys do not escape.
//
//topocon:allocfree
func (in *Interner) intern(key []byte) ViewID {
	h := hashKey(key)
	sh := &in.shards[h>>(64-6)] // top 6 bits pick one of the 64 shards
	sh.mu.Lock()
	if sh.table == nil {
		sh.table = make([]int32, internShardInitialSize)
	}
	mask := uint64(len(sh.table) - 1)
	i := h & mask
	for {
		slot := sh.table[i]
		if slot == 0 {
			break
		}
		e := &sh.entries[slot-1]
		if e.hash == h && int(e.klen) == len(key) &&
			bytes.Equal(sh.arena[e.off:e.off+e.klen], key) {
			id := e.id
			sh.mu.Unlock()
			return id
		}
		i = (i + 1) & mask
	}
	off := len(sh.arena)
	sh.arena = append(sh.arena, key...)
	id := ViewID(in.next.Add(1) - 1)
	sh.entries = append(sh.entries, internEntry{
		hash: h, off: uint32(off), klen: uint32(len(key)), id: id,
	})
	sh.table[i] = int32(len(sh.entries))
	if uint64(len(sh.entries))*4 >= (mask+1)*3 {
		sh.grow()
	}
	sh.mu.Unlock()
	return id
}

// grow doubles the shard's probe table, re-seating entries from their
// memoized hashes. Amortized over insertions this is O(1) per intern.
func (sh *internShard) grow() {
	next := make([]int32, 2*len(sh.table))
	mask := uint64(len(next) - 1)
	for ei := range sh.entries {
		i := sh.entries[ei].hash & mask
		for next[i] != 0 {
			i = (i + 1) & mask
		}
		next[i] = int32(ei + 1)
	}
	sh.table = next
}

// hashKey is FNV-1a over the canonical key encoding: cheap, dependency-free
// and good enough that shard selection (top bits) and probe position (low
// bits) stay decorrelated.
func hashKey(key []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}
