package ptg

import (
	"encoding/binary"
	"sync"
)

// ViewID identifies a hash-consed causal cone. Two views (possibly from
// different runs) are equal as process-time sub-DAGs if and only if their
// ViewIDs from the same Interner are equal.
type ViewID int32

// Interner hash-conses causal cones. All runs that are to be compared must
// share one Interner; the prefix-space machinery in internal/topo owns one
// per space.
//
// The recursive encoding is collision-free by construction (it is a
// canonical serialization, not a hash): a leaf encodes (process, input
// value); an inner node encodes (process, sorted child (q, ViewID) pairs).
// By induction on round number, equal encodings imply equal cones: the
// unfolding of a cone determines the cone, because the in-neighbourhood of
// every cone node within the cone appears at each of its occurrences.
// An Interner is safe for concurrent use: the parallel frontier expansion
// in internal/topo interns views from several workers at once. IDs are
// assigned in insertion order, so concurrent runs may assign different IDs
// to the same cone — only equality within one Interner is meaningful.
type Interner struct {
	mu    sync.Mutex
	table map[string]ViewID
	// stats
	leaves int
	nodes  int
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{table: make(map[string]ViewID, 1024)}
}

// Size returns the number of distinct views interned so far.
func (in *Interner) Size() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return len(in.table)
}

// Leaf interns the time-0 view of process p with input x.
func (in *Interner) Leaf(p, x int) ViewID {
	var buf [1 + 2*binary.MaxVarintLen64]byte
	buf[0] = 'L'
	k := 1
	k += binary.PutUvarint(buf[k:], uint64(p))
	k += binary.PutVarint(buf[k:], int64(x))
	return in.intern(string(buf[:k]))
}

// Node interns the time-t view of process p whose round-t in-neighbours
// (ascending process order) have the time-(t-1) views children. The caller
// must pass children aligned with the ascending order of the in-neighbour
// set; the neighbour identities are part of the encoding via their own
// leaf/node process labels plus position, so the pair list is (q, id).
func (in *Interner) Node(p int, qs []int, children []ViewID) ViewID {
	buf := make([]byte, 0, 2+len(children)*(2*binary.MaxVarintLen64))
	var tmp [binary.MaxVarintLen64]byte
	buf = append(buf, 'N')
	k := binary.PutUvarint(tmp[:], uint64(p))
	buf = append(buf, tmp[:k]...)
	for i, id := range children {
		k = binary.PutUvarint(tmp[:], uint64(qs[i]))
		buf = append(buf, tmp[:k]...)
		k = binary.PutUvarint(tmp[:], uint64(id))
		buf = append(buf, tmp[:k]...)
	}
	return in.intern(string(buf))
}

func (in *Interner) intern(key string) ViewID {
	in.mu.Lock()
	defer in.mu.Unlock()
	if id, ok := in.table[key]; ok {
		return id
	}
	id := ViewID(len(in.table))
	in.table[key] = id
	if key[0] == 'L' {
		in.leaves++
	} else {
		in.nodes++
	}
	return id
}
