package ptg

import (
	"strings"
	"testing"

	"topocon/internal/graph"
)

func TestRunBasics(t *testing.T) {
	r := NewRun([]int{0, 1})
	if r.N() != 2 || r.Rounds() != 0 {
		t.Fatalf("N=%d Rounds=%d, want 2/0", r.N(), r.Rounds())
	}
	r2 := r.Extend(graph.Right)
	if r.Rounds() != 0 {
		t.Error("Extend mutated the receiver")
	}
	if r2.Rounds() != 1 || !r2.Graph(1).Equal(graph.Right) {
		t.Errorf("extended run wrong: %v", r2)
	}
}

func TestRunExtendNoAliasing(t *testing.T) {
	r := NewRun([]int{0, 0}).Extend(graph.Right)
	a := r.Extend(graph.Left)
	b := r.Extend(graph.Both)
	if !a.Graph(2).Equal(graph.Left) || !b.Graph(2).Equal(graph.Both) {
		t.Error("sibling extensions alias the same backing array")
	}
}

func TestRunKeyDistinct(t *testing.T) {
	seen := map[string]Run{}
	runs := []Run{
		NewRun([]int{0, 0}),
		NewRun([]int{0, 1}),
		NewRun([]int{0, 0}).Extend(graph.Right),
		NewRun([]int{0, 0}).Extend(graph.Left),
		NewRun([]int{0, 0}).Extend(graph.Right).Extend(graph.Left),
	}
	for _, r := range runs {
		k := r.Key()
		if prev, dup := seen[k]; dup {
			t.Errorf("runs %v and %v share key %q", prev, r, k)
		}
		seen[k] = r
	}
}

func TestIsValent(t *testing.T) {
	if v, ok := NewRun([]int{1, 1, 1}).IsValent(); !ok || v != 1 {
		t.Errorf("IsValent = (%d,%v), want (1,true)", v, ok)
	}
	if _, ok := NewRun([]int{0, 1}).IsValent(); ok {
		t.Error("mixed inputs reported valent")
	}
	if _, ok := (Run{}).IsValent(); ok {
		t.Error("empty run reported valent")
	}
}

func TestRunString(t *testing.T) {
	r := NewRun([]int{0, 1}).Extend(graph.Right)
	s := r.String()
	if !strings.Contains(s, "x=(0,1)") || !strings.Contains(s, "[1->2]") {
		t.Errorf("String() = %q, missing expected pieces", s)
	}
}

func TestRenderHighlight(t *testing.T) {
	g1 := graph.MustParse(3, "1->2, 3->2")
	g2 := graph.MustParse(3, "2->3")
	r := NewRun([]int{1, 0, 1}).Extend(g1).Extend(g2)
	out := Render(r, 2, 0)
	for _, want := range []string{"(1,0,1)", "(2,0,0)", "(3,0,1)", "(1,2)", "t=2"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render output missing %q:\n%s", want, out)
		}
	}
	// Process 1's view must be highlighted at its own nodes.
	if !strings.Contains(out, "(1,0,1)*") {
		t.Errorf("Render did not highlight process 1's initial node:\n%s", out)
	}
	// Process 2's initial node is not in process 1's cone here (no path
	// from (2,0) to (1,2): edges go 1->2 and 3->2, then 2->3).
	if strings.Contains(out, "(2,0,0)*") {
		t.Errorf("Render wrongly highlighted (2,0):\n%s", out)
	}
}

func TestConeSizeAndEncode(t *testing.T) {
	r := NewRun([]int{0, 1}).Extend(graph.Both)
	c := ConeOf(r, 0, 1)
	// Cone of (1,1) after <->: nodes (1,1),(1,0),(2,0).
	if c.Size() != 3 {
		t.Errorf("cone size = %d, want 3", c.Size())
	}
	if !c.ContainsInitial(1) {
		t.Error("cone must contain (2,0) after <->")
	}
	enc := c.Encode()
	if !strings.Contains(enc, "apex=0@1") {
		t.Errorf("Encode() = %q missing apex", enc)
	}
	// Deterministic encoding.
	if enc != ConeOf(r, 0, 1).Encode() {
		t.Error("Encode is not deterministic")
	}
}

func TestRenderDOT(t *testing.T) {
	g1 := graph.MustParse(3, "1->2, 3->2")
	r := NewRun([]int{1, 0, 1}).Extend(g1)
	out := RenderDOT(r, 1, 1)
	for _, want := range []string{"digraph PT", "n0_0", "(2,0,0)", "n0_0 -> n1_1", "style=bold"} {
		if !strings.Contains(out, want) {
			t.Errorf("RenderDOT missing %q:\n%s", want, out)
		}
	}
	// No highlight: no bold styling.
	if strings.Contains(RenderDOT(r, 1, -1), "bold") {
		t.Error("unexpected highlight without a highlighted process")
	}
}
