package ptg

import "testing"

// TestInternerRepeatInternAllocationFree is the allocation-regression pin
// on the sharded interner's hot path: re-interning an already-known cone —
// the overwhelmingly common case inside a prefix-space expansion, where
// siblings share almost all views — must not allocate at all. The
// pre-sharded interner allocated the key string on every call.
func TestInternerRepeatInternAllocationFree(t *testing.T) {
	in := NewInterner()
	l0 := in.Leaf(0, 0)
	l1 := in.Leaf(1, 1)
	qs := []int{0, 1}
	children := []ViewID{l0, l1}
	node := in.Node(0, qs, children)
	if avg := testing.AllocsPerRun(200, func() {
		if in.Leaf(0, 0) != l0 || in.Node(0, qs, children) != node {
			t.Fatal("intern identity broken")
		}
	}); avg != 0 {
		t.Errorf("re-interning allocated %.2f times per call, want 0", avg)
	}
}

// TestInternerFreshInternAmortizedAllocs pins the amortized cost of
// first-sight interning: arena, entry and probe-table growth are geometric,
// so interning k fresh cones costs well under one allocation each on
// average. The pre-sharded interner paid ≥ 2 (key string + map bucket).
func TestInternerFreshInternAmortizedAllocs(t *testing.T) {
	in := NewInterner()
	x := 0
	const perRun = 512
	avg := testing.AllocsPerRun(8, func() {
		for i := 0; i < perRun; i++ {
			in.Leaf(x%97, x) // fresh (p, x) pair every call
			x++
		}
	})
	if perIntern := avg / perRun; perIntern > 0.5 {
		t.Errorf("fresh interning allocated %.3f times per intern, want ≤ 0.5 amortized", perIntern)
	}
}
