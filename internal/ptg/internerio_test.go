package ptg

import (
	"testing"
)

// buildSampleInterner interns a mix of leaves and nodes and returns the
// assigned IDs in insertion order.
func buildSampleInterner(t *testing.T) (*Interner, []ViewID) {
	t.Helper()
	in := NewInterner()
	var ids []ViewID
	for p := 0; p < 4; p++ {
		for x := 0; x < 3; x++ {
			ids = append(ids, in.Leaf(p, x))
		}
	}
	for p := 0; p < 4; p++ {
		ids = append(ids, in.Node(p, []int{0, p}, []ViewID{ids[0], ids[p*3]}))
		ids = append(ids, in.Node(p, []int{0, 1, 2, 3}, ids[:4]))
	}
	return in, ids
}

func TestExportImportRoundTrip(t *testing.T) {
	in, ids := buildSampleInterner(t)
	blob := in.Export()
	got, err := ImportInterner(blob)
	if err != nil {
		t.Fatalf("ImportInterner: %v", err)
	}
	if got.Size() != in.Size() {
		t.Fatalf("imported size %d, want %d", got.Size(), in.Size())
	}
	// Re-interning the same structures in the restored interner must
	// reproduce the identical IDs.
	var again []ViewID
	for p := 0; p < 4; p++ {
		for x := 0; x < 3; x++ {
			again = append(again, got.Leaf(p, x))
		}
	}
	for p := 0; p < 4; p++ {
		again = append(again, got.Node(p, []int{0, p}, []ViewID{again[0], again[p*3]}))
		again = append(again, got.Node(p, []int{0, 1, 2, 3}, again[:4]))
	}
	if got.Size() != in.Size() {
		t.Fatalf("re-interning known views grew the interner to %d (want %d)", got.Size(), in.Size())
	}
	for i := range ids {
		if again[i] != ids[i] {
			t.Fatalf("id %d: imported interner assigned %d, original %d", i, again[i], ids[i])
		}
	}
}

func TestImportRejectsCorruptBlobs(t *testing.T) {
	in, _ := buildSampleInterner(t)
	blob := in.Export()
	cases := map[string][]byte{
		"empty":     {},
		"truncated": blob[:len(blob)-3],
		"trailing":  append(append([]byte(nil), blob...), 0xFF),
	}
	// Duplicate a key by re-emitting the whole blob body twice under a
	// doubled count — re-interning must detect the non-dense ID.
	for name, data := range cases {
		if _, err := ImportInterner(data); err == nil {
			t.Errorf("%s: import succeeded", name)
		}
	}
}
