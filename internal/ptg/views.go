package ptg

import (
	"fmt"
	"sort"

	"topocon/internal/graph"
)

// Views holds the hash-consed views and heard-sets of one run prefix at all
// times 0..T. Obtain one via ComputeViews and grow it with Extend.
type Views struct {
	interner *Interner
	n        int
	// ids[t][p] is the ViewID of process p's view at time t.
	ids [][]ViewID
	// heard[t][p] is the bitmask of processes q whose initial node
	// (q,0,x_q) lies in p's time-t view — "p has heard q".
	heard [][]uint64
}

// ComputeViews computes the views of every process at every time 0..Rounds
// of the run.
//
//topocon:export
func ComputeViews(in *Interner, r Run) *Views {
	n := r.N()
	v := &Views{
		interner: in,
		n:        n,
		ids:      make([][]ViewID, 1, r.Rounds()+1),
		heard:    make([][]uint64, 1, r.Rounds()+1),
	}
	ids0 := make([]ViewID, n)
	heard0 := make([]uint64, n)
	for p := 0; p < n; p++ {
		ids0[p] = in.Leaf(p, r.Inputs[p])
		heard0[p] = 1 << uint(p)
	}
	v.ids[0] = ids0
	v.heard[0] = heard0
	for t := 1; t <= r.Rounds(); t++ {
		v.Extend(r.Graph(t))
	}
	return v
}

// ViewsFromRows assembles a Views from externally-owned per-time rows —
// the adapter the columnar prefix-space frontier in internal/topo hands out:
// each row aliases a segment of a dense per-round column, so materializing
// the Views of one run costs O(Rounds) slice headers and copies nothing.
// ids[t][p] must be the ViewID of process p at time t in the given
// interner, and heard its matching heard-bitmask row; rows must never be
// mutated afterwards (they may be shared with other runs). The result
// supports the full read API; Extend appends fresh rows and leaves the
// aliased ones untouched.
func ViewsFromRows(in *Interner, ids [][]ViewID, heard [][]uint64) *Views {
	if len(ids) == 0 || len(ids) != len(heard) {
		panic("ptg: ViewsFromRows needs matching non-empty id and heard rows")
	}
	return &Views{
		interner: in,
		n:        len(ids[0]),
		ids:      ids,
		heard:    heard,
	}
}

// N returns the number of processes.
func (v *Views) N() int { return v.n }

// Rounds returns the largest time T with computed views.
func (v *Views) Rounds() int { return len(v.ids) - 1 }

// ID returns the ViewID of process p's view at time t ≤ Rounds().
func (v *Views) ID(t, p int) ViewID { return v.ids[t][p] }

// Heard returns the bitmask of processes p has heard by time t.
func (v *Views) Heard(t, p int) uint64 { return v.heard[t][p] }

// Extend appends one round with communication graph g, computing the views
// at time Rounds()+1. It panics if g has the wrong node count (programming
// error).
func (v *Views) Extend(g graph.Graph) {
	if g.N() != v.n {
		panic(fmt.Sprintf("ptg: extending %d-process views with %d-node graph", v.n, g.N()))
	}
	prevIDs := v.ids[len(v.ids)-1]
	prevHeard := v.heard[len(v.heard)-1]
	ids := make([]ViewID, v.n)
	heard := make([]uint64, v.n)
	qs := make([]int, 0, v.n)
	children := make([]ViewID, 0, v.n)
	for p := 0; p < v.n; p++ {
		qs = qs[:0]
		children = children[:0]
		var h uint64
		in := g.In(p)
		for q := 0; q < v.n; q++ {
			if in&(1<<uint(q)) == 0 {
				continue
			}
			qs = append(qs, q)
			children = append(children, prevIDs[q])
			h |= prevHeard[q]
		}
		ids[p] = v.interner.Node(p, qs, children)
		heard[p] = h
	}
	v.ids = append(v.ids, ids)
	v.heard = append(v.heard, heard)
}

// BroadcastTime returns the earliest time t ≤ Rounds() by which every
// process has heard p, or -1 if no such time exists within the prefix.
// Heard-sets only grow, so "every process has heard p by t" is monotone in
// t and the first such t is found by binary search instead of a scan from
// t = 0 — O(n log Rounds) instead of O(n·Rounds) per call.
func (v *Views) BroadcastTime(p int) int {
	bit := uint64(1) << uint(p)
	t := sort.Search(v.Rounds()+1, func(t int) bool {
		for q := 0; q < v.n; q++ {
			if v.heard[t][q]&bit == 0 {
				return false
			}
		}
		return true
	})
	if t > v.Rounds() {
		return -1
	}
	return t
}

// HeardByAll returns the bitmask of processes p such that every process has
// heard p by time t.
func (v *Views) HeardByAll(t int) uint64 {
	acc := graph.AllNodes(v.n)
	for q := 0; q < v.n; q++ {
		acc &= v.heard[t][q]
	}
	return acc
}

// AgreeLevel returns the first time t at which process p's views in a and b
// differ, or limit+1 if they agree at all times 0..limit, where
// limit = min(a.Rounds(), b.Rounds()). Views refine over time (a difference
// at time t persists at all later times), so "first difference" fully
// determines the pseudo-metric d_{p} on the common prefix:
// d_{p}(a,b) = 2^-AgreeLevel.
//
// Both Views must come from the same Interner; the result is meaningless
// otherwise.
func AgreeLevel(a, b *Views, p int) int {
	limit := min(a.Rounds(), b.Rounds())
	// Monotonicity: agree at t implies agree at all s ≤ t. Scan backwards
	// would also work; a forward scan exits at the first difference.
	for t := 0; t <= limit; t++ {
		if a.ids[t][p] != b.ids[t][p] {
			return t
		}
	}
	return limit + 1
}

// MinAgreeLevel returns max_p AgreeLevel(a,b,p), the level L such that
// d_min(a,b) = 2^-L on the common prefix (Lemma 4.8: the minimum distance
// corresponds to the process that is last to distinguish the runs).
func MinAgreeLevel(a, b *Views) int {
	best := 0
	for p := 0; p < a.n; p++ {
		if l := AgreeLevel(a, b, p); l > best {
			best = l
		}
	}
	return best
}

// MaxAgreeLevel returns min_p AgreeLevel(a,b,p), which corresponds to the
// common-prefix metric d_max = d_[n] of equation (1) in the paper:
// d_max(a,b) = 2^-MaxAgreeLevel.
func MaxAgreeLevel(a, b *Views) int {
	best := AgreeLevel(a, b, 0)
	for p := 1; p < a.n; p++ {
		if l := AgreeLevel(a, b, p); l < best {
			best = l
		}
	}
	return best
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
