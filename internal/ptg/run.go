// Package ptg implements process-time graphs (Section 3 of the paper) and
// the local views that the process-view and minimum topologies are built
// from (Section 4).
//
// A run prefix is an input assignment x ∈ V^n plus a finite sequence of
// communication graphs G_1..G_t. The view of process p at time t is the
// causal cone of the node (p,t) in the process-time graph: the sub-DAG
// induced by all nodes with a path to (p,t). Because all graphs carry
// self-loops, the cone at time t contains the cones of (p,s) for every
// s ≤ t, which gives the refinement property the topology packages rely on:
// V_p(a^t) = V_p(b^t) implies V_p(a^s) = V_p(b^s) for all s ≤ t.
//
// Views are hash-consed: structurally equal cones are assigned the same
// small integer ID by an Interner, so view comparison — the primitive
// underlying d_P and d_min — is integer comparison.
package ptg

import (
	"fmt"
	"strings"

	"topocon/internal/graph"
)

// Run is a finite run prefix: an input assignment plus a graph sequence.
// Runs are value-like; Extend copies.
type Run struct {
	// Inputs[p] is the input value x_p of process p.
	Inputs []int
	// Graphs[t-1] is the round-t communication graph G_t.
	Graphs []graph.Graph
}

// NewRun returns a run with the given inputs and no rounds yet.
func NewRun(inputs []int) Run {
	return Run{Inputs: append([]int(nil), inputs...)}
}

// N returns the number of processes.
func (r Run) N() int { return len(r.Inputs) }

// Rounds returns the number of rounds t in the prefix.
func (r Run) Rounds() int { return len(r.Graphs) }

// Graph returns the round-t graph G_t (1-based round index).
func (r Run) Graph(t int) graph.Graph { return r.Graphs[t-1] }

// Extend returns a copy of r with one more round appended.
func (r Run) Extend(g graph.Graph) Run {
	graphs := make([]graph.Graph, len(r.Graphs)+1)
	copy(graphs, r.Graphs)
	graphs[len(r.Graphs)] = g
	return Run{Inputs: r.Inputs, Graphs: graphs}
}

// Relabel returns the run with every process renamed through perm: the
// input of process perm[p] in the result is r's input of p, and each
// round graph is relabeled accordingly (graph.Relabel). Relabeling a run
// by an automorphism of the adversary yields another admissible run — the
// relabeled twin the symmetry quotient (package topo) stands one
// representative in for.
func (r Run) Relabel(perm []int) Run {
	inputs := make([]int, len(r.Inputs))
	for p, x := range r.Inputs {
		inputs[perm[p]] = x
	}
	graphs := make([]graph.Graph, len(r.Graphs))
	for t, g := range r.Graphs {
		graphs[t] = g.Relabel(perm)
	}
	return Run{Inputs: inputs, Graphs: graphs}
}

// Key returns a canonical map key identifying the run prefix.
func (r Run) Key() string {
	var sb strings.Builder
	sb.Grow(2*len(r.Inputs) + 8*len(r.Graphs))
	for _, x := range r.Inputs {
		fmt.Fprintf(&sb, "%d,", x)
	}
	sb.WriteByte('|')
	for _, g := range r.Graphs {
		sb.WriteString(g.Key())
		sb.WriteByte(';')
	}
	return sb.String()
}

// String renders the run compactly, e.g. "x=(0,1) G=[1->2],[2->1]".
func (r Run) String() string {
	var sb strings.Builder
	sb.WriteString("x=(")
	for i, x := range r.Inputs {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%d", x)
	}
	sb.WriteString(") G=")
	for i, g := range r.Graphs {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(g.String())
	}
	return sb.String()
}

// IsValent reports whether all processes share the same input value, and
// returns that value. A run with such an input assignment is the paper's
// v-valent sequence z_v.
func (r Run) IsValent() (v int, ok bool) {
	if len(r.Inputs) == 0 {
		return 0, false
	}
	v = r.Inputs[0]
	for _, x := range r.Inputs[1:] {
		if x != v {
			return 0, false
		}
	}
	return v, true
}
