package ptg

import (
	"fmt"
	"strings"
)

// Render draws the process-time graph of run r up to time t as ASCII in the
// style of Figure 2 of the paper: one row per time step, initial nodes
// annotated with input values, and round edges listed per row. If highlight
// is a valid process index, the nodes and edges of that process's time-t
// view are marked with '*'.
func Render(r Run, t int, highlight int) string {
	var cone *Cone
	if highlight >= 0 && highlight < r.N() {
		cone = ConeOf(r, highlight, t)
	}
	inCone := func(p, s int) bool {
		return cone != nil && cone.Nodes[TimeNode{Proc: p, Time: s}]
	}
	var sb strings.Builder
	for s := 0; s <= t; s++ {
		fmt.Fprintf(&sb, "t=%d  ", s)
		for p := 0; p < r.N(); p++ {
			if p > 0 {
				sb.WriteString("   ")
			}
			mark := " "
			if inCone(p, s) {
				mark = "*"
			}
			if s == 0 {
				fmt.Fprintf(&sb, "(%d,0,%d)%s", p+1, r.Inputs[p], mark)
			} else {
				fmt.Fprintf(&sb, "(%d,%d)%s", p+1, s, mark)
			}
		}
		sb.WriteByte('\n')
		if s == t {
			break
		}
		g := r.Graph(s + 1)
		edges := make([]string, 0, r.N()*r.N())
		for p := 0; p < r.N(); p++ {
			for q := 0; q < r.N(); q++ {
				if !g.HasEdge(p, q) {
					continue
				}
				mark := ""
				if inCone(q, s+1) { // edge into a cone node is a cone edge
					mark = "*"
				}
				edges = append(edges, fmt.Sprintf("(%d,%d)->(%d,%d)%s", p+1, s, q+1, s+1, mark))
			}
		}
		fmt.Fprintf(&sb, "      %s\n", strings.Join(edges, " "))
	}
	return sb.String()
}

// RenderDOT emits the process-time graph of run r up to time t in Graphviz
// DOT format; if highlight is a valid process index, the nodes and edges of
// that process's time-t view are drawn bold.
func RenderDOT(r Run, t int, highlight int) string {
	var cone *Cone
	if highlight >= 0 && highlight < r.N() {
		cone = ConeOf(r, highlight, t)
	}
	inCone := func(p, s int) bool {
		return cone != nil && cone.Nodes[TimeNode{Proc: p, Time: s}]
	}
	var sb strings.Builder
	sb.WriteString("digraph PT {\n  rankdir=TB;\n  node [shape=circle];\n")
	for s := 0; s <= t; s++ {
		fmt.Fprintf(&sb, "  { rank=same;")
		for p := 0; p < r.N(); p++ {
			fmt.Fprintf(&sb, " n%d_%d;", p, s)
		}
		sb.WriteString(" }\n")
		for p := 0; p < r.N(); p++ {
			label := fmt.Sprintf("(%d,%d)", p+1, s)
			if s == 0 {
				label = fmt.Sprintf("(%d,0,%d)", p+1, r.Inputs[p])
			}
			style := ""
			if inCone(p, s) {
				style = ", style=bold, color=blue"
			}
			fmt.Fprintf(&sb, "  n%d_%d [label=\"%s\"%s];\n", p, s, label, style)
		}
	}
	for s := 1; s <= t; s++ {
		g := r.Graph(s)
		for p := 0; p < r.N(); p++ {
			for q := 0; q < r.N(); q++ {
				if !g.HasEdge(p, q) {
					continue
				}
				style := ""
				if inCone(q, s) {
					style = " [style=bold, color=blue]"
				}
				fmt.Fprintf(&sb, "  n%d_%d -> n%d_%d%s;\n", p, s-1, q, s, style)
			}
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}
