// Package lint is the repo's custom static-analysis suite: five analyzers
// that turn the invariants the runtime tests pin — durable atomic writes,
// quarantine-never-delete, context threading, allocation-free hot paths,
// facade/internal symbol sync — into compile-time checks. The suite runs
// three ways: standalone over package patterns (via go list, see load.go),
// as a `go vet -vettool=` backend speaking the vet unit protocol (see
// unit.go), and in-process from tests (fixtures and the repo meta-test).
//
// It is deliberately built on the standard library alone (go/ast,
// go/types, go/importer) rather than golang.org/x/tools/go/analysis, so
// the module keeps zero external dependencies; the Analyzer/Pass shapes
// mirror the x/tools API closely enough that a future migration is
// mechanical.
//
// Suppression is explicit and audited: a finding is silenced only by a
//
//	//topocon:allow <analyzer>[,<analyzer>...] -- <justification>
//
// directive with a non-empty justification, placed on the offending line,
// the line above it, or in the enclosing function's doc comment. A
// directive missing the justification is itself a diagnostic, and it does
// not suppress anything.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named check. Run inspects the pass's package and reports
// findings through pass.Reportf.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Diagnostic is one finding, resolved to a concrete position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Fset *token.FileSet
	Path string // import path
	Dir  string // directory on disk
	// Files are the non-test source files — what analyzers inspect.
	// AllFiles additionally includes in-package _test.go files when the
	// unit was compiled with them (the go vet ptest variant); they
	// participate in type checking and directive indexing only.
	Files    []*ast.File
	AllFiles []*ast.File
	Types    *types.Package
	Info     *types.Info
}

// Pass carries one (analyzer, package) run.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Path     string
	Dir      string
	Pkg      *types.Package
	Info     *types.Info

	allow *allowIndex
	out   *[]Diagnostic
}

// Reportf records a finding at pos unless an allow directive covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.allow.allowed(p.Analyzer.Name, position) {
		return
	}
	*p.out = append(*p.out, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run executes the analyzers over the package and returns the surviving
// diagnostics (allow-directive suppressions already applied), sorted by
// position. Malformed allow directives are reported under the pseudo
// analyzer "directive".
func Run(analyzers []*Analyzer, pkg *Package) []Diagnostic {
	var out []Diagnostic
	allow := buildAllowIndex(pkg.Fset, pkg.AllFiles)
	for _, bad := range allow.malformed {
		out = append(out, Diagnostic{
			Analyzer: "directive",
			Pos:      bad,
			Message:  "malformed //topocon:allow directive: need `//topocon:allow <analyzer>[,...] -- <justification>`",
		})
	}
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Path:     pkg.Path,
			Dir:      pkg.Dir,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			allow:    allow,
			out:      &out,
		}
		a.Run(pass)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// allowRe matches a well-formed directive: analyzers, then ` -- ` and a
// non-empty justification.
var allowRe = regexp.MustCompile(`^//topocon:allow\s+([A-Za-z0-9_]+(?:,[A-Za-z0-9_]+)*)\s+--\s*(\S.*)$`)

// allowIndex records, per file and line, which analyzers are suppressed.
type allowIndex struct {
	byFile    map[string]map[int]map[string]bool
	malformed []token.Position
}

func (ix *allowIndex) allowed(analyzer string, pos token.Position) bool {
	lines := ix.byFile[pos.Filename]
	if lines == nil {
		return false
	}
	set := lines[pos.Line]
	return set != nil && set[analyzer]
}

func (ix *allowIndex) mark(file string, line int, analyzers []string) {
	lines := ix.byFile[file]
	if lines == nil {
		lines = make(map[int]map[string]bool)
		ix.byFile[file] = lines
	}
	set := lines[line]
	if set == nil {
		set = make(map[string]bool)
		lines[line] = set
	}
	for _, a := range analyzers {
		set[a] = true
	}
}

// parseAllow returns the suppressed analyzer names for one comment line,
// or (nil, true) for a directive missing its justification.
func parseAllow(text string) (analyzers []string, malformed bool) {
	if !strings.HasPrefix(text, "//topocon:allow") {
		return nil, false
	}
	m := allowRe.FindStringSubmatch(text)
	if m == nil {
		return nil, true
	}
	return strings.Split(m[1], ","), false
}

// buildAllowIndex scans every comment for allow directives. A directive on
// line L suppresses findings on L and L+1 (same line or line above the
// offending code); a directive inside a function's doc comment suppresses
// across the whole function.
func buildAllowIndex(fset *token.FileSet, files []*ast.File) *allowIndex {
	ix := &allowIndex{byFile: make(map[string]map[int]map[string]bool)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, bad := parseAllow(c.Text)
				pos := fset.Position(c.Pos())
				if bad {
					ix.malformed = append(ix.malformed, pos)
					continue
				}
				if names != nil {
					ix.mark(pos.Filename, pos.Line, names)
					ix.mark(pos.Filename, pos.Line+1, names)
				}
			}
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Doc != nil {
				var names []string
				for _, c := range fd.Doc.List {
					if n, bad := parseAllow(c.Text); !bad {
						names = append(names, n...)
					}
				}
				if len(names) > 0 {
					from := fset.Position(fd.Pos())
					to := fset.Position(fd.End())
					for line := from.Line; line <= to.Line; line++ {
						ix.mark(from.Filename, line, names)
					}
				}
			}
		}
	}
	return ix
}

// isTestFile reports whether a file name is a _test.go file.
func isTestFile(name string) bool {
	return strings.HasSuffix(name, "_test.go")
}

// pathBase returns the last segment of an import path.
func pathBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// newInfo allocates the types.Info shape every loader uses.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
}
