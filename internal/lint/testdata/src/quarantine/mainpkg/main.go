// Fixture: command mains are exempt — a CLI deleting its own scratch
// output is not a record-hygiene question.
package main

import "os"

func main() {
	os.Remove("scratch.out")
	os.RemoveAll("scratch.d")
}
