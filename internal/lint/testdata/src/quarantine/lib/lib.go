// Fixture for the quarantine analyzer: deletion is legal only inside
// quarantine/retire helpers or under a justified allow directive.
package lib

import "os"

func cleanup(dir, path string) {
	os.Remove(path)   // want `os.Remove deletes data`
	os.RemoveAll(dir) // want `os.RemoveAll deletes data`
}

func quarantineRecord(path string) {
	os.Remove(path) // helper name declares intent: allowed
}

func retireDocument(path string) {
	os.Remove(path) // helper name declares intent: allowed
}

func justified(path string) {
	//topocon:allow quarantine -- fixture: the path is a duplicate, not a record
	os.Remove(path)
}

func missingJustification(path string) {
	//topocon:allow quarantine // want `malformed //topocon:allow directive`
	os.Remove(path) // want `os.Remove deletes data`
}
