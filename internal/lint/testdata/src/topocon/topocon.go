// Fixture facade: the facadesync analyzer runs only on the package with
// import path "topocon" and checks both directions of the facade contract.
package topocon

import "topocon/internal/eng"

// Engine re-exports the internal engine type.
type Engine = eng.Engine

// NewEngine re-exports the constructor.
var NewEngine = eng.New

// Orphan references nothing internal.
var Orphan = 42 // want `facade symbol Orphan does not reference any internal symbol`

//topocon:allow facadesync -- fixture: justified facade-local constant
const Version = "v1"
