// Fixture internal package for facadesync's direction B: tagged symbols
// must be re-exported by the facade.
package eng

// Engine is the fixture engine type.
//
//topocon:export
type Engine struct{}

// New builds an Engine.
//
//topocon:export
func New() *Engine { return &Engine{} }

// Forgotten is tagged for export but the facade does not re-export it.
//
//topocon:export
func Forgotten() {} // want `eng.Forgotten is tagged //topocon:export but the facade does not re-export it`
