// Fixture for the ctxflow analyzer: "sweep" is one of the loop-driving
// packages, so both checks apply here.
package sweep

import "context"

type daemon struct {
	root context.Context
}

func helper(ctx context.Context, n int) int { return n }

func manufacture() context.Context {
	return context.Background() // want `context.Background\(\) in library code severs`
}

func todo() context.Context {
	return context.TODO() // want `context.TODO\(\) in library code severs`
}

func sanctionedRoot() context.Context {
	//topocon:allow ctxflow -- fixture: justified context root
	return context.Background()
}

// Drive loops and feeds context-aware callees without accepting a context.
func Drive(items []int) int { // want `exported Drive drives a loop through context-aware callees`
	var ctx context.Context
	total := 0
	for _, it := range items {
		total += helper(ctx, it)
	}
	return total
}

// DriveCtx threads the caller's context: not flagged.
func DriveCtx(ctx context.Context, items []int) int {
	total := 0
	for _, it := range items {
		total += helper(ctx, it)
	}
	return total
}

// DaemonLoop passes a stored root context (field selector): the
// sanctioned daemon pattern, not flagged.
func (d *daemon) DaemonLoop(items []int) int {
	total := 0
	for _, it := range items {
		total += helper(d.root, it)
	}
	return total
}

// NoLoop calls a context-aware callee but does not loop: not a driver.
func NoLoop(it int) int {
	var ctx context.Context
	return helper(ctx, it)
}
