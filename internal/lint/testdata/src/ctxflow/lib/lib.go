// Fixture: "lib" is not a loop-driving package, so only the
// Background/TODO check applies — the exported driver is not flagged.
package lib

import "context"

func helper(ctx context.Context, n int) int { return n }

func Drive(items []int) int {
	var ctx context.Context
	total := 0
	for _, it := range items {
		total += helper(ctx, it)
	}
	return total
}

func manufacture() context.Context {
	return context.Background() // want `context.Background\(\) in library code severs`
}
