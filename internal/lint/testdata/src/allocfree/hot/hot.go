// Fixture for the allocfree analyzer: only loop bodies of annotated
// functions are constrained; setup allocations and value literals pass.
package hot

import "fmt"

type point struct{ x, y int }

func sink(args ...interface{}) {}

// Extend is an annotated hot path with one of each violation.
//
//topocon:allocfree
func Extend(dst []int, items []int) []int {
	scratch := make([]int, 0, len(items)) // setup alloc outside the loop: allowed
	for _, it := range items {
		scratch = append(scratch, it) // self-assign append: allowed
		buf := make([]int, it)        // want `make in a hot loop`
		sink(buf)
		dst = append(scratch, it) // want `append that is not a self-assignment`
		m := map[int]int{it: it}  // want `map literal in a hot loop`
		sink(m)
		s := []int{it} // want `slice literal in a hot loop`
		sink(s)
		p := &point{it, it} // want `&composite literal in a hot loop`
		sink(p)
		q := new(point) // want `new in a hot loop`
		sink(q)
		v := point{it, it} // value struct literal: allowed
		sink(v)
		arr := [2]int{it, it} // value array literal: allowed
		sink(arr)
		msg := fmt.Sprintf("%d", it)  // want `fmt.Sprintf in a hot loop allocates`
		b := []byte(msg)              // want `conversion in a hot loop`
		sink(string(b))               // want `conversion in a hot loop`
		f := func() int { return it } // want `func literal in a hot loop`
		sink(f())
		defer sink(it) // want `defer in a hot loop`
	}
	return dst
}

// NotAnnotated allocates freely: the analyzer only binds tagged functions.
func NotAnnotated(items []int) []int {
	var out []int
	for _, it := range items {
		out = append(out, make([]int, it)...)
	}
	return out
}

// NoLoops is annotated but loop-free; nothing to constrain.
//
//topocon:allocfree
func NoLoops(n int) []int {
	return make([]int, n)
}
