// Fixture: the final path-segment "store" marks this a durable package,
// so raw file creation must go through fsx.AtomicWrite.
package store

import "os"

func persist(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644) // want `direct os.WriteFile bypasses the temp\+sync\+rename idiom`
}

func openFinal(path string) (*os.File, error) {
	return os.Create(path) // want `direct os.Create on a final path`
}

func sanctioned(path string, data []byte) error {
	//topocon:allow atomicwrite -- fixture: justified raw write
	return os.WriteFile(path, data, 0o644)
}
