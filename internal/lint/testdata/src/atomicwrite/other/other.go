// Fixture: "other" is not a durable package, so raw writes are allowed.
package other

import "os"

func persist(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

func openFinal(path string) (*os.File, error) {
	return os.Create(path)
}
