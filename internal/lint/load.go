package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
)

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	Name       string
	Export     string
	GoFiles    []string
	CgoFiles   []string
	DepOnly    bool
}

// LoadPatterns resolves package patterns with `go list -export -deps`
// (run in dir) and type-checks every matched package from source, with all
// imports satisfied from the build cache's gc export data — no network, no
// source re-traversal of dependencies. This is the standalone and in-test
// entry point; `go vet` invocations go through RunUnit instead, which gets
// the same information from the vet.cfg file.
func LoadPatterns(dir string, patterns []string) ([]*Package, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,Name,Export,GoFiles,CgoFiles,DepOnly",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	exports := make(map[string]string)
	var targets []listPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := exportImporter(fset, func(path string) (string, bool) {
		file, ok := exports[path]
		return file, ok
	})
	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 || len(t.CgoFiles) > 0 {
			continue
		}
		pkg, err := typecheckFiles(fset, t.ImportPath, t.Dir, absFiles(t.Dir, t.GoFiles), imp, "")
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// ListExports returns the gc export-data files of the named packages and
// every dependency, keyed by import path — the resolver feed for
// exportImporter when the source being type-checked is not part of a
// module (analyzer fixtures).
func ListExports(dir string, pkgs []string) (map[string]string, error) {
	args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Export"}, pkgs...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", pkgs, err, stderr.Bytes())
	}
	exports := make(map[string]string)
	dec := json.NewDecoder(&stdout)
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

// LoadAndRun loads the patterns and runs the analyzers over every package.
func LoadAndRun(dir string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	pkgs, err := LoadPatterns(dir, patterns)
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		diags = append(diags, Run(analyzers, pkg)...)
	}
	return diags, nil
}

// exportImporter wraps the standard gc importer with a resolver mapping
// import paths to export-data files (from go list or a vet.cfg).
func exportImporter(fset *token.FileSet, resolve func(path string) (string, bool)) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := resolve(path)
		if !ok || file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
}

// typecheckFiles parses and type-checks one package unit. goFiles may
// include _test.go files (the vet ptest variant); they take part in type
// checking but are excluded from Package.Files, so analyzers never see
// them. goVersion, when non-empty, pins the language version ("go1.24").
func typecheckFiles(fset *token.FileSet, path, dir string, goFiles []string, imp types.Importer, goVersion string) (*Package, error) {
	var all, nonTest []*ast.File
	for _, gf := range goFiles {
		f, err := parser.ParseFile(fset, gf, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		all = append(all, f)
		if !isTestFile(gf) {
			nonTest = append(nonTest, f)
		}
	}
	conf := types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor("gc", runtime.GOARCH),
		GoVersion: goVersion,
	}
	info := newInfo()
	tpkg, err := conf.Check(path, fset, all, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	return &Package{
		Fset:     fset,
		Path:     path,
		Dir:      dir,
		Files:    nonTest,
		AllFiles: all,
		Types:    tpkg,
		Info:     info,
	}, nil
}

// absFiles joins relative file names onto the package directory.
func absFiles(dir string, names []string) []string {
	out := make([]string, len(names))
	for i, n := range names {
		if filepath.IsAbs(n) {
			out[i] = n
		} else {
			out[i] = filepath.Join(dir, n)
		}
	}
	return out
}
