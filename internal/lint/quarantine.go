package lint

import (
	"go/ast"
	"strings"
)

// Quarantine enforces the repo's data-hygiene invariant: corrupt or
// leftover data is renamed aside for inspection, never deleted. Deletion
// is legal only inside helpers whose name declares the intent ("quarantine"
// or "retire" — e.g. Store.quarantine, Service.retireJobDoc), or under an
// explicit //topocon:allow quarantine directive with a justification.
// Command mains are exempt: a CLI deleting its own scratch output is not a
// record-hygiene question.
var Quarantine = &Analyzer{
	Name: "quarantine",
	Doc:  "flag os.Remove/os.RemoveAll outside quarantine/retire helpers; bad data is renamed aside, never deleted",
	Run:  runQuarantine,
}

func runQuarantine(pass *Pass) {
	if pass.Pkg.Name() == "main" {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if name := strings.ToLower(fd.Name.Name); strings.Contains(name, "quarantine") || strings.Contains(name, "retire") {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				switch {
				case isPkgFunc(pass.Info, call, "os", "Remove"):
					pass.Reportf(call.Pos(), "os.Remove deletes data; quarantine it instead (rename aside) or justify with //topocon:allow quarantine")
				case isPkgFunc(pass.Info, call, "os", "RemoveAll"):
					pass.Reportf(call.Pos(), "os.RemoveAll deletes data; quarantine it instead (rename aside) or justify with //topocon:allow quarantine")
				}
				return true
			})
		}
	}
}
