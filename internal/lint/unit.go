package lint

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
)

// vetConfig mirrors the JSON file the go command hands a -vettool backend
// for each package unit (see cmd/go/internal/work's buildVetConfig). Only
// the fields this tool consumes are declared.
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string
	ModulePath   string
	GoVersion    string

	ImportMap   map[string]string
	PackageFile map[string]string
	Standard    map[string]bool

	PackageVetx map[string]string
	VetxOnly    bool
	VetxOutput  string

	SucceedOnTypecheckFailure bool
}

// RunUnit analyzes one `go vet` package unit described by the vet.cfg at
// cfgPath, printing diagnostics to stderr in the file:line:col form the
// go command expects. The exit code follows the vet convention: 0 clean,
// 1 operational failure, 2 findings.
func RunUnit(cfgPath string, analyzers []*Analyzer, stderr io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(stderr, "topoconvet: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "topoconvet: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// This suite carries no cross-package facts, so a unit that exists only
	// to produce facts for importers has nothing to do — and a test-only
	// unit (the pxtest variant, every file a _test.go) has nothing either.
	if cfg.VetxOnly || !hasNonTestFile(cfg.GoFiles) {
		writeVetx(cfg)
		return 0
	}

	fset := token.NewFileSet()
	imp := exportImporter(fset, func(path string) (string, bool) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		return file, ok
	})
	pkg, err := typecheckFiles(fset, cfg.ImportPath, cfg.Dir, absFiles(cfg.Dir, cfg.GoFiles), imp, cfg.GoVersion)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx(cfg)
			return 0
		}
		fmt.Fprintf(stderr, "topoconvet: %v\n", err)
		return 1
	}
	diags := Run(analyzers, pkg)
	if len(diags) > 0 {
		for _, d := range diags {
			fmt.Fprintf(stderr, "%s: %s\n", d.Pos, d.Message)
		}
		return 2
	}
	writeVetx(cfg)
	return 0
}

// writeVetx records the (empty) facts output so the go command can cache
// the clean result; failure to write only costs cache hits.
func writeVetx(cfg vetConfig) {
	if cfg.VetxOutput != "" {
		_ = os.WriteFile(cfg.VetxOutput, []byte("topoconvet\n"), 0o666)
	}
}

func hasNonTestFile(files []string) bool {
	for _, f := range files {
		if !isTestFile(f) {
			return true
		}
	}
	return false
}

// vetFlagDef is one entry in the `-flags` handshake: the go command probes
// a vettool for its flag set before constructing the command line.
type vetFlagDef struct {
	Name  string
	Bool  bool
	Usage string
}

// PrintFlags answers the `-flags` probe with one boolean enable flag per
// analyzer.
func PrintFlags(w io.Writer) error {
	var defs []vetFlagDef
	for _, a := range All() {
		defs = append(defs, vetFlagDef{Name: a.Name, Bool: true, Usage: a.Doc})
	}
	data, err := json.MarshalIndent(defs, "", "\t")
	if err != nil {
		return err
	}
	_, err = fmt.Fprintln(w, string(data))
	return err
}
