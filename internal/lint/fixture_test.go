package lint

// The fixture harness: analyzer test packages live GOPATH-style under
// testdata/src/<importpath>/ and annotate expected findings with
//
//	some.Call() // want `regexp` `another regexp`
//
// comments (Go string literals, matched against diagnostic messages on the
// same line). Fixture imports resolve within testdata/src first; anything
// else (os, context, fmt) comes from the build cache's export data.

import (
	"fmt"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
)

type fixtureLoader struct {
	fset    *token.FileSet
	srcRoot string
	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

var (
	loaderOnce sync.Once
	loaderVal  *fixtureLoader
	loaderErr  error
)

// sharedLoader builds one loader per test binary: the `go list -export`
// call that locates std export data is the expensive part, and it is
// identical for every fixture.
func sharedLoader(t *testing.T) *fixtureLoader {
	t.Helper()
	loaderOnce.Do(func() {
		srcRoot, err := filepath.Abs(filepath.Join("testdata", "src"))
		if err != nil {
			loaderErr = err
			return
		}
		ext, err := externalImports(srcRoot)
		if err != nil {
			loaderErr = err
			return
		}
		exports := map[string]string{}
		if len(ext) > 0 {
			exports, err = ListExports(".", ext)
			if err != nil {
				loaderErr = err
				return
			}
		}
		fset := token.NewFileSet()
		l := &fixtureLoader{
			fset:    fset,
			srcRoot: srcRoot,
			pkgs:    make(map[string]*Package),
			loading: make(map[string]bool),
		}
		l.std = exportImporter(fset, func(path string) (string, bool) {
			file, ok := exports[path]
			return file, ok
		})
		loaderVal = l
	})
	if loaderErr != nil {
		t.Fatalf("building fixture loader: %v", loaderErr)
	}
	return loaderVal
}

// externalImports collects every import of the fixture tree that does not
// itself resolve inside testdata/src.
func externalImports(srcRoot string) ([]string, error) {
	seen := make(map[string]bool)
	err := filepath.WalkDir(srcRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, perr := parser.ParseFile(token.NewFileSet(), path, nil, parser.ImportsOnly)
		if perr != nil {
			return fmt.Errorf("parsing fixture %s: %w", path, perr)
		}
		for _, imp := range f.Imports {
			p, _ := strconv.Unquote(imp.Path.Value)
			if st, serr := os.Stat(filepath.Join(srcRoot, filepath.FromSlash(p))); serr == nil && st.IsDir() {
				continue
			}
			seen[p] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out, nil
}

// Import implements types.Importer over the fixture tree + std.
func (l *fixtureLoader) Import(path string) (*types.Package, error) {
	if st, err := os.Stat(filepath.Join(l.srcRoot, filepath.FromSlash(path))); err == nil && st.IsDir() {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// load parses and type-checks one fixture package (cached).
func (l *fixtureLoader) load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("fixture import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)
	dir := filepath.Join(l.srcRoot, filepath.FromSlash(path))
	matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(matches) == 0 {
		return nil, fmt.Errorf("no fixture sources in %s", dir)
	}
	sort.Strings(matches)
	pkg, err := typecheckFiles(l.fset, path, dir, matches, l, "")
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// runFixture analyzes one fixture package and checks its diagnostics
// against the `// want` expectations of every file under its directory
// (recursively, so facadesync's internal-tree findings are covered too).
func runFixture(t *testing.T, path string, analyzers ...*Analyzer) {
	t.Helper()
	l := sharedLoader(t)
	pkg, err := l.load(path)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", path, err)
	}
	diags := Run(analyzers, pkg)
	wants, err := collectWants(filepath.Join(l.srcRoot, filepath.FromSlash(path)))
	if err != nil {
		t.Fatalf("collecting wants for %s: %v", path, err)
	}
	checkExpectations(t, diags, wants)
}

type wantKey struct {
	file string
	line int
}

type wantRx struct {
	re      *regexp.Regexp
	matched bool
}

// wantArgRe extracts the Go string literals following a `// want` marker.
var wantArgRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// collectWants parses every fixture file under dir and indexes its want
// expectations by (file, line).
func collectWants(dir string) (map[wantKey][]*wantRx, error) {
	wants := make(map[wantKey][]*wantRx)
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		fset := token.NewFileSet()
		f, perr := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if perr != nil {
			return perr
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				_, rest, ok := strings.Cut(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				key := wantKey{pos.Filename, pos.Line}
				for _, lit := range wantArgRe.FindAllString(rest, -1) {
					pattern, uerr := strconv.Unquote(lit)
					if uerr != nil {
						return fmt.Errorf("%s: bad want literal %s: %v", pos, lit, uerr)
					}
					re, rerr := regexp.Compile(pattern)
					if rerr != nil {
						return fmt.Errorf("%s: bad want regexp %q: %v", pos, pattern, rerr)
					}
					wants[key] = append(wants[key], &wantRx{re: re})
				}
			}
		}
		return nil
	})
	return wants, err
}

func checkExpectations(t *testing.T, diags []Diagnostic, wants map[wantKey][]*wantRx) {
	t.Helper()
	for _, d := range diags {
		key := wantKey{d.Pos.Filename, d.Pos.Line}
		matched := false
		for _, w := range wants[key] {
			if w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	var keys []wantKey
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.matched {
				t.Errorf("%s:%d: no diagnostic matched want %q", k.file, k.line, w.re)
			}
		}
	}
}
