package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// allocFreeTag marks a function whose loop bodies must not allocate.
const allocFreeTag = "//topocon:allocfree"

// AllocFree checks functions annotated //topocon:allocfree — the frontier
// extension and interner hot paths, where a single allocation per
// quiescent run multiplies by millions. Only loop bodies are constrained
// (setup allocations before the loop are exactly the pre-sizing the
// annotation protects); inside a loop it flags heap-allocating constructs:
// make/new, slice and map literals, &composite, non-self-assign append,
// string<->[]byte/[]rune conversions, fmt/log/errors calls, func
// literals, and defer. Value struct/array literals and self-assign append
// (buf = append(buf, x) into pre-sized scratch) are allowed.
var AllocFree = &Analyzer{
	Name: "allocfree",
	Doc:  "flag heap-allocating constructs in loop bodies of //topocon:allocfree functions",
	Run:  runAllocFree,
}

func runAllocFree(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasAllocFreeTag(fd) {
				continue
			}
			checkAllocFree(pass, fd)
		}
	}
}

func hasAllocFreeTag(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(c.Text) == allocFreeTag {
			return true
		}
	}
	return false
}

// span is a source interval; loop bodies become spans and a construct is
// "hot" when its position falls inside any of them (nested loops and func
// literals inside loops are covered for free).
type span struct{ from, to token.Pos }

func checkAllocFree(pass *Pass, fd *ast.FuncDecl) {
	var loops []span
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch l := n.(type) {
		case *ast.ForStmt:
			loops = append(loops, span{l.Body.Pos(), l.Body.End()})
		case *ast.RangeStmt:
			loops = append(loops, span{l.Body.Pos(), l.Body.End()})
		}
		return true
	})
	if len(loops) == 0 {
		return
	}
	inLoop := func(pos token.Pos) bool {
		for _, s := range loops {
			if s.from <= pos && pos < s.to {
				return true
			}
		}
		return false
	}

	// Self-assign appends (buf = append(buf, x)) reuse pre-sized capacity;
	// collect them first so the generic call check can skip them.
	selfAppend := map[*ast.CallExpr]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || !isBuiltin(pass.Info, call, "append") || len(call.Args) == 0 {
			return true
		}
		if types.ExprString(as.Lhs[0]) == types.ExprString(call.Args[0]) {
			selfAppend[call] = true
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil || !inLoop(n.Pos()) {
			return true
		}
		switch x := n.(type) {
		case *ast.DeferStmt:
			pass.Reportf(x.Pos(), "defer in a hot loop allocates a deferred frame per iteration")
		case *ast.FuncLit:
			pass.Reportf(x.Pos(), "func literal in a hot loop allocates a closure per iteration")
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, isLit := x.X.(*ast.CompositeLit); isLit {
					pass.Reportf(x.Pos(), "&composite literal in a hot loop escapes to the heap")
				}
			}
		case *ast.CompositeLit:
			switch pass.Info.TypeOf(x).Underlying().(type) {
			case *types.Slice:
				pass.Reportf(x.Pos(), "slice literal in a hot loop allocates")
			case *types.Map:
				pass.Reportf(x.Pos(), "map literal in a hot loop allocates")
			}
		case *ast.CallExpr:
			reportAllocCall(pass, x, selfAppend)
		}
		return true
	})
}

func reportAllocCall(pass *Pass, call *ast.CallExpr, selfAppend map[*ast.CallExpr]bool) {
	switch {
	case isBuiltin(pass.Info, call, "make"):
		pass.Reportf(call.Pos(), "make in a hot loop allocates; pre-size outside the loop")
	case isBuiltin(pass.Info, call, "new"):
		pass.Reportf(call.Pos(), "new in a hot loop allocates; pre-size outside the loop")
	case isBuiltin(pass.Info, call, "append"):
		if !selfAppend[call] {
			pass.Reportf(call.Pos(), "append that is not a self-assignment (x = append(x, ...)) may allocate per iteration")
		}
	case isAllocConversion(pass.Info, call):
		pass.Reportf(call.Pos(), "string<->[]byte/[]rune conversion in a hot loop copies and allocates")
	default:
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if obj := pass.Info.Uses[sel.Sel]; obj != nil && obj.Pkg() != nil {
				switch obj.Pkg().Path() {
				case "fmt", "log", "errors":
					pass.Reportf(call.Pos(), "%s.%s in a hot loop allocates (boxing its arguments)", obj.Pkg().Name(), obj.Name())
				}
			}
		}
	}
}

// isBuiltin reports whether call invokes the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isB := info.Uses[id].(*types.Builtin)
	return isB
}

// isAllocConversion reports conversions that copy memory: to string from a
// byte/rune slice or rune, and to []byte/[]rune from a string.
func isAllocConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return false
	}
	dst := tv.Type.Underlying()
	src := info.TypeOf(call.Args[0])
	if src == nil {
		return false
	}
	srcU := src.Underlying()
	if b, ok := dst.(*types.Basic); ok && b.Info()&types.IsString != 0 {
		if _, fromSlice := srcU.(*types.Slice); fromSlice {
			return true
		}
		if sb, ok := srcU.(*types.Basic); ok && sb.Info()&types.IsInteger != 0 {
			return true // string(rune) / string(byte-ish)
		}
		return false
	}
	if sl, ok := dst.(*types.Slice); ok {
		if eb, ok := sl.Elem().Underlying().(*types.Basic); ok {
			k := eb.Kind()
			if k == types.Byte || k == types.Uint8 || k == types.Rune || k == types.Int32 {
				if sb, ok := srcU.(*types.Basic); ok && sb.Info()&types.IsString != 0 {
					return true
				}
			}
		}
	}
	return false
}
