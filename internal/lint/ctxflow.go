package lint

import (
	"go/ast"
	"go/types"
)

// ctxPkgs names the packages whose exported entry points drive long
// (frontier/cell/job) loops and therefore must thread cancellation.
var ctxPkgs = map[string]bool{
	"topo":    true,
	"check":   true,
	"sweep":   true,
	"svc":     true,
	"ckpt":    true,
	"coord":   true,
	"retry":   true,
	"faultfs": true,
}

// CtxFlow enforces the context-threading invariant with two checks:
//
//  1. context.Background()/context.TODO() in library (non-main) code
//     severs the caller's cancellation chain — a cell that should die with
//     its job keeps burning a session slot. Legal only at genuine roots
//     (daemon construction, documented compatibility shims), under an
//     allow directive.
//
//  2. In the loop-driving packages, an exported function that contains a
//     loop and calls context-aware callees without itself accepting a
//     context.Context is an uncancellable driver. Passing a stored root
//     context (a field selector like s.rootCtx) is the sanctioned daemon
//     pattern and is not flagged.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "flag severed context chains: Background/TODO in library code, exported loop drivers without a context parameter",
	Run:  runCtxFlow,
}

func runCtxFlow(pass *Pass) {
	if pass.Pkg.Name() == "main" {
		return
	}
	for _, f := range pass.Files {
		// Check 1: manufactured contexts anywhere in library code.
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isPkgFunc(pass.Info, call, "context", "Background") {
				pass.Reportf(call.Pos(), "context.Background() in library code severs the caller's cancellation chain; accept a context.Context instead")
			} else if isPkgFunc(pass.Info, call, "context", "TODO") {
				pass.Reportf(call.Pos(), "context.TODO() in library code severs the caller's cancellation chain; accept a context.Context instead")
			}
			return true
		})
		if !ctxPkgs[pathBase(pass.Path)] {
			continue
		}
		// Check 2: exported loop drivers without a context parameter.
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			if funcAcceptsCtx(pass.Info, fd) {
				continue
			}
			if !containsLoop(fd.Body) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if !calleeTakesCtx(pass.Info, call) || len(call.Args) == 0 {
					return true
				}
				// A stored root context (s.rootCtx) is the daemon pattern.
				if _, isSel := call.Args[0].(*ast.SelectorExpr); isSel {
					return true
				}
				pass.Reportf(fd.Name.Pos(), "exported %s drives a loop through context-aware callees but does not accept a context.Context", fd.Name.Name)
				return false // one report per function is enough
			})
		}
	}
}

// funcAcceptsCtx reports whether any parameter of fd is a context.Context.
func funcAcceptsCtx(info *types.Info, fd *ast.FuncDecl) bool {
	obj, ok := info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	params := obj.Type().(*types.Signature).Params()
	for i := 0; i < params.Len(); i++ {
		if isContextType(params.At(i).Type()) {
			return true
		}
	}
	return false
}

// calleeTakesCtx reports whether call's callee takes a context.Context as
// its first parameter.
func calleeTakesCtx(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	if !ok || tv.IsType() {
		return false
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok || sig.Params().Len() == 0 {
		return false
	}
	return isContextType(sig.Params().At(0).Type())
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// containsLoop reports whether the block contains any for/range statement.
func containsLoop(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			found = true
		}
		return !found
	})
	return found
}
