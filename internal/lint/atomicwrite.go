package lint

import (
	"go/ast"
	"go/types"
)

// durablePkgs names the packages whose on-disk artifacts must only ever be
// written through fsx.AtomicWrite (temp sibling + sync + rename). Matching
// is by final import-path segment so fixtures exercise the same code path
// as the real tree.
var durablePkgs = map[string]bool{
	"store": true,
	"pager": true,
	"ckpt":  true,
	"svc":   true,
	"coord": true,
}

// AtomicWrite flags direct file-creation calls in the durable packages.
// Anything written there is a record a restarted process will trust, so a
// non-atomic write is a torn-record bug waiting for a crash. The sanctioned
// implementation lives in internal/fsx, which is exempt by name.
var AtomicWrite = &Analyzer{
	Name: "atomicwrite",
	Doc:  "flag direct os.WriteFile/os.Create in durable packages; write through fsx.AtomicWrite",
	Run:  runAtomicWrite,
}

func runAtomicWrite(pass *Pass) {
	if !durablePkgs[pathBase(pass.Path)] || pass.Pkg.Name() == "main" {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch {
			case isPkgFunc(pass.Info, call, "os", "WriteFile"), isPkgFunc(pass.Info, call, "io/ioutil", "WriteFile"):
				pass.Reportf(call.Pos(), "direct os.WriteFile bypasses the temp+sync+rename idiom; use fsx.AtomicWrite")
			case isPkgFunc(pass.Info, call, "os", "Create"):
				pass.Reportf(call.Pos(), "direct os.Create on a final path bypasses the temp+sync+rename idiom; use fsx.AtomicWrite")
			}
			return true
		})
	}
}

// isPkgFunc reports whether call invokes <pkgPath>.<name> (a package-level
// function, resolved through the type info so aliases and renamed imports
// are seen through).
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	if _, isFunc := obj.(*types.Func); !isFunc {
		return false
	}
	return obj.Pkg().Path() == pkgPath && obj.Name() == name
}
