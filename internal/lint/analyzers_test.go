package lint

import (
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"testing"
)

func TestAtomicWriteFixture(t *testing.T) {
	runFixture(t, "atomicwrite/store", AtomicWrite)
}

func TestAtomicWriteIgnoresNonDurablePackages(t *testing.T) {
	runFixture(t, "atomicwrite/other", AtomicWrite)
}

func TestQuarantineFixture(t *testing.T) {
	runFixture(t, "quarantine/lib", Quarantine)
}

func TestQuarantineIgnoresMainPackages(t *testing.T) {
	runFixture(t, "quarantine/mainpkg", Quarantine)
}

func TestCtxFlowFixture(t *testing.T) {
	runFixture(t, "ctxflow/sweep", CtxFlow)
}

func TestCtxFlowDriverCheckOnlyInLoopPackages(t *testing.T) {
	runFixture(t, "ctxflow/lib", CtxFlow)
}

func TestAllocFreeFixture(t *testing.T) {
	runFixture(t, "allocfree/hot", AllocFree)
}

func TestFacadeSyncFixture(t *testing.T) {
	runFixture(t, "topocon", FacadeSync)
}

func TestParseAllow(t *testing.T) {
	cases := []struct {
		text      string
		names     []string
		malformed bool
	}{
		{"// a normal comment", nil, false},
		{"//topocon:export", nil, false},
		{"//topocon:allow quarantine -- reason given", []string{"quarantine"}, false},
		{"//topocon:allow ctxflow,allocfree -- two at once", []string{"ctxflow", "allocfree"}, false},
		{"//topocon:allow quarantine", nil, true},
		{"//topocon:allow quarantine -- ", nil, true},
		{"//topocon:allow -- missing names", nil, true},
	}
	for _, c := range cases {
		names, malformed := parseAllow(c.text)
		if malformed != c.malformed || !reflect.DeepEqual(names, c.names) {
			t.Errorf("parseAllow(%q) = %v, %v; want %v, %v", c.text, names, malformed, c.names, c.malformed)
		}
	}
}

func TestAllReturnsFiveAnalyzers(t *testing.T) {
	all := All()
	if len(all) != 5 {
		t.Fatalf("All() returned %d analyzers, want 5", len(all))
	}
	for _, a := range all {
		if got := ByName(a.Name); got != a {
			t.Errorf("ByName(%q) did not round-trip", a.Name)
		}
	}
	if ByName("nope") != nil {
		t.Error("ByName of an unknown name should return nil")
	}
}

// TestRepoIsClean is the meta-test: the repository itself must carry zero
// findings. Every sanctioned exception is expected to hold a justified
// //topocon:allow directive instead of weakening an analyzer.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	diags, err := LoadAndRun("../..", []string{"./..."}, All())
	if err != nil {
		t.Fatalf("running the suite over the repo: %v", err)
	}
	for _, d := range diags {
		t.Errorf("repo finding: %s", d)
	}
}

// TestVetToolProtocol builds the real binary and runs it the way the go
// command does, end to end.
func TestVetToolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the vettool binary and vets the module")
	}
	tool := filepath.Join(t.TempDir(), "topoconvet")
	build := exec.Command("go", "build", "-o", tool, "topocon/cmd/topoconvet")
	build.Dir = "../.."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building topoconvet: %v\n%s", err, out)
	}
	vet := exec.Command("go", "vet", "-vettool="+tool, "./...")
	vet.Dir = "../.."
	vet.Env = append(os.Environ(), "GOFLAGS=")
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool should pass on the clean repo: %v\n%s", err, out)
	}
}
