package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

// exportTag marks an internal symbol that must be reachable through the
// facade package.
const exportTag = "//topocon:export"

// FacadeSync keeps the root facade package and the internal tree honest
// with each other, in both directions:
//
//   - every exported symbol the facade declares must resolve to at least
//     one live internal symbol (a facade alias whose target was renamed
//     away would otherwise only surface as a downstream build break);
//   - every internal symbol tagged //topocon:export must be referenced
//     from the facade (the tag records "this is public API surface" at
//     the definition site, where refactors happen).
//
// The analyzer only runs on the module root package ("topocon"); the
// internal tree is re-parsed from disk so the check sees the whole
// repository even though the facade unit compiles alone.
var FacadeSync = &Analyzer{
	Name: "facadesync",
	Doc:  "keep the facade package and //topocon:export-tagged internal symbols in sync",
	Run:  runFacadeSync,
}

func runFacadeSync(pass *Pass) {
	if pass.Path != "topocon" {
		return
	}
	internalPrefix := pass.Path + "/internal/"

	// Every object the facade pulls out of the internal tree, keyed
	// "pkgpath.Name" — direction B's evidence, collected once.
	used := make(map[string]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if obj := pass.Info.Uses[id]; obj != nil && obj.Pkg() != nil && strings.HasPrefix(obj.Pkg().Path(), internalPrefix) {
				used[obj.Pkg().Path()+"."+obj.Name()] = true
			}
			return true
		})
	}

	// Direction A: exported facade decls must reference internal symbols.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Name.IsExported() && d.Recv == nil && !refsInternal(pass, d, internalPrefix) {
					pass.Reportf(d.Name.Pos(), "facade symbol %s does not reference any internal symbol; the facade only re-exports", d.Name.Name)
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() && !refsInternal(pass, s, internalPrefix) {
							pass.Reportf(s.Name.Pos(), "facade symbol %s does not reference any internal symbol; the facade only re-exports", s.Name.Name)
						}
					case *ast.ValueSpec:
						exported := false
						for _, name := range s.Names {
							if name.IsExported() {
								exported = true
							}
						}
						if exported && !refsInternal(pass, s, internalPrefix) {
							pass.Reportf(s.Names[0].Pos(), "facade symbol %s does not reference any internal symbol; the facade only re-exports", s.Names[0].Name)
						}
					}
				}
			}
		}
	}

	// Direction B: tagged internal symbols must appear in the facade.
	for _, tagged := range collectExportTags(pass) {
		if !used[tagged.pkgPath+"."+tagged.name] {
			pass.Reportf(tagged.pos, "%s.%s is tagged %s but the facade does not re-export it", pathBase(tagged.pkgPath), tagged.name, exportTag)
		}
	}
}

// refsInternal reports whether any identifier under n resolves to a
// symbol in the internal tree.
func refsInternal(pass *Pass, n ast.Node, internalPrefix string) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		id, ok := m.(*ast.Ident)
		if !ok {
			return !found
		}
		if obj := pass.Info.Uses[id]; obj != nil && obj.Pkg() != nil && strings.HasPrefix(obj.Pkg().Path(), internalPrefix) {
			found = true
		}
		return !found
	})
	return found
}

type taggedSymbol struct {
	pkgPath string
	name    string
	pos     token.Pos
}

// collectExportTags parses the internal tree from disk (non-test files
// only) and returns every symbol whose doc comment carries the export tag.
// Positions are registered in pass.Fset so reports resolve normally.
func collectExportTags(pass *Pass) []taggedSymbol {
	var out []taggedSymbol
	root := filepath.Join(pass.Dir, "internal")
	filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return nil
		}
		if d.IsDir() {
			if d.Name() == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || isTestFile(path) {
			return nil
		}
		f, perr := parser.ParseFile(pass.Fset, path, nil, parser.ParseComments)
		if perr != nil {
			return nil // a broken file fails the build elsewhere
		}
		rel, rerr := filepath.Rel(pass.Dir, filepath.Dir(path))
		if rerr != nil {
			return nil
		}
		pkgPath := pass.Path + "/" + filepath.ToSlash(rel)
		for _, decl := range f.Decls {
			switch dcl := decl.(type) {
			case *ast.FuncDecl:
				if dcl.Recv == nil && hasExportTag(dcl.Doc) {
					out = append(out, taggedSymbol{pkgPath, dcl.Name.Name, dcl.Name.Pos()})
				}
			case *ast.GenDecl:
				declTagged := hasExportTag(dcl.Doc)
				for _, spec := range dcl.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if declTagged || hasExportTag(s.Doc) {
							out = append(out, taggedSymbol{pkgPath, s.Name.Name, s.Name.Pos()})
						}
					case *ast.ValueSpec:
						if declTagged || hasExportTag(s.Doc) {
							for _, name := range s.Names {
								out = append(out, taggedSymbol{pkgPath, name.Name, name.Pos()})
							}
						}
					}
				}
			}
		}
		return nil
	})
	return out
}

func hasExportTag(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == exportTag {
			return true
		}
	}
	return false
}
