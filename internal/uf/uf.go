// Package uf provides a union-find (disjoint-set) structure with path
// compression and union by rank. It is the engine behind the
// ε-approximation components of Definition 6.2: runs sharing a process view
// are unioned, and the resulting sets are the connected components of the
// prefix space in the minimum topology.
package uf

// UF is a disjoint-set forest over elements 0..n-1.
type UF struct {
	parent []int32
	rank   []int8
	sets   int
}

// New returns a forest of n singleton sets.
func New(n int) *UF {
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	return &UF{
		parent: parent,
		rank:   make([]int8, n),
		sets:   n,
	}
}

// Len returns the number of elements.
func (u *UF) Len() int { return len(u.parent) }

// Sets returns the current number of disjoint sets.
func (u *UF) Sets() int { return u.sets }

// Find returns the canonical representative of x's set.
func (u *UF) Find(x int) int {
	root := x
	for int(u.parent[root]) != root {
		root = int(u.parent[root])
	}
	for int(u.parent[x]) != root {
		x, u.parent[x] = int(u.parent[x]), int32(root)
	}
	return root
}

// Union merges the sets of x and y and reports whether they were distinct.
func (u *UF) Union(x, y int) bool {
	rx, ry := u.Find(x), u.Find(y)
	if rx == ry {
		return false
	}
	if u.rank[rx] < u.rank[ry] {
		rx, ry = ry, rx
	}
	u.parent[ry] = int32(rx)
	if u.rank[rx] == u.rank[ry] {
		u.rank[rx]++
	}
	u.sets--
	return true
}

// Same reports whether x and y are in the same set.
func (u *UF) Same(x, y int) bool { return u.Find(x) == u.Find(y) }

// Groups returns the sets as slices of members, each sorted ascending, in
// ascending order of their smallest member. It is O(n) plus sorting already
// implied by the single ascending sweep.
func (u *UF) Groups() [][]int {
	index := make(map[int]int, u.sets)
	groups := make([][]int, 0, u.sets)
	for x := 0; x < len(u.parent); x++ {
		r := u.Find(x)
		gi, ok := index[r]
		if !ok {
			gi = len(groups)
			index[r] = gi
			groups = append(groups, nil)
		}
		groups[gi] = append(groups[gi], x)
	}
	return groups
}
