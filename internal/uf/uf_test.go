package uf

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSingletons(t *testing.T) {
	u := New(5)
	if u.Len() != 5 || u.Sets() != 5 {
		t.Fatalf("Len=%d Sets=%d, want 5/5", u.Len(), u.Sets())
	}
	for i := 0; i < 5; i++ {
		if u.Find(i) != i {
			t.Errorf("Find(%d) = %d, want %d", i, u.Find(i), i)
		}
	}
}

func TestUnionBasics(t *testing.T) {
	u := New(4)
	if !u.Union(0, 1) {
		t.Error("first union must report a merge")
	}
	if u.Union(1, 0) {
		t.Error("repeated union must report no merge")
	}
	if !u.Same(0, 1) || u.Same(0, 2) {
		t.Error("Same is wrong after one union")
	}
	if u.Sets() != 3 {
		t.Errorf("Sets() = %d, want 3", u.Sets())
	}
	u.Union(2, 3)
	u.Union(0, 3)
	if u.Sets() != 1 {
		t.Errorf("Sets() = %d, want 1", u.Sets())
	}
	if !u.Same(1, 2) {
		t.Error("transitivity failed")
	}
}

func TestGroups(t *testing.T) {
	u := New(6)
	u.Union(0, 2)
	u.Union(2, 4)
	u.Union(1, 5)
	groups := u.Groups()
	want := [][]int{{0, 2, 4}, {1, 5}, {3}}
	if len(groups) != len(want) {
		t.Fatalf("Groups() = %v, want %v", groups, want)
	}
	for i := range want {
		if len(groups[i]) != len(want[i]) {
			t.Fatalf("group %d = %v, want %v", i, groups[i], want[i])
		}
		for j := range want[i] {
			if groups[i][j] != want[i][j] {
				t.Fatalf("group %d = %v, want %v", i, groups[i], want[i])
			}
		}
	}
}

// TestEquivalenceQuick checks against a brute-force equivalence closure.
func TestEquivalenceQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		u := New(n)
		adj := make([][]bool, n)
		for i := range adj {
			adj[i] = make([]bool, n)
			adj[i][i] = true
		}
		for k := 0; k < n; k++ {
			x, y := rng.Intn(n), rng.Intn(n)
			u.Union(x, y)
			adj[x][y], adj[y][x] = true, true
		}
		// Warshall closure.
		for k := 0; k < n; k++ {
			for i := 0; i < n; i++ {
				if !adj[i][k] {
					continue
				}
				for j := 0; j < n; j++ {
					if adj[k][j] {
						adj[i][j] = true
					}
				}
			}
		}
		count := 0
		for i := 0; i < n; i++ {
			isMin := true
			for j := 0; j < i; j++ {
				if adj[i][j] {
					isMin = false
				}
				if adj[i][j] != u.Same(i, j) {
					return false
				}
			}
			if isMin {
				count++
			}
		}
		return count == u.Sets()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
