package topocon_test

import (
	"context"
	"path/filepath"
	"testing"

	"topocon"
)

// TestRefineMatchesDecompose extends the incremental-decomposition
// invariant suite (internal/topo runs it over the seed families) to the
// full scenarios/ corpus — concrete specs and every sweep-template grid
// cell: for every workload, refining the horizon-t partition into the
// one-round extension must equal the from-scratch decomposition at t+1 —
// same partition, valences, broadcasters and uniform inputs — on both the
// sequential and the worker-pool path, at every horizon of the spec's own
// analysis budget.
func TestRefineMatchesDecompose(t *testing.T) {
	type workload struct {
		name string
		sc   *topocon.Scenario
	}
	files, templates := corpusFiles(t)
	if len(files) < 8 {
		t.Fatalf("scenario corpus has %d concrete specs, want >= 8", len(files))
	}
	var workloads []workload
	for _, file := range files {
		sc, err := topocon.LoadScenario(file)
		if err != nil {
			t.Fatal(err)
		}
		workloads = append(workloads, workload{name: filepath.Base(file), sc: sc})
	}
	for _, file := range templates {
		tpl, err := topocon.LoadTemplate(file)
		if err != nil {
			t.Fatal(err)
		}
		cells, err := tpl.Expand()
		if err != nil {
			t.Fatal(err)
		}
		for _, cell := range cells {
			workloads = append(workloads, workload{name: cell.Scenario.Name, sc: cell.Scenario})
		}
	}
	ctx := context.Background()
	for _, w := range workloads {
		w := w
		t.Run(w.name, func(t *testing.T) {
			sc := w.sc
			domain := sc.Options.InputDomain
			if domain == 0 {
				domain = 2
			}
			maxHorizon := sc.Options.MaxHorizon
			if maxHorizon == 0 {
				maxHorizon = 5
			}
			for _, parallelism := range []int{1, 4} {
				s, err := topocon.BuildSpaceCtx(ctx, sc.Adversary, domain, 1,
					topocon.SpaceConfig{MaxRuns: sc.Options.MaxRuns, Parallelism: parallelism})
				if err != nil {
					t.Fatal(err)
				}
				d, err := topocon.DecomposeCtx(ctx, s)
				if err != nil {
					t.Fatal(err)
				}
				for horizon := 2; horizon <= maxHorizon; horizon++ {
					child, err := s.Extend(ctx, horizon)
					if err != nil {
						t.Fatalf("Extend to %d: %v", horizon, err)
					}
					refined, err := d.Refine(ctx, child)
					if err != nil {
						t.Fatalf("Refine to %d (parallelism %d): %v", horizon, parallelism, err)
					}
					scratch, err := topocon.DecomposeCtx(ctx, child)
					if err != nil {
						t.Fatal(err)
					}
					assertSameDecomposition(t, horizon, parallelism, scratch, refined)
					s, d = child, refined
				}
			}
		})
	}
}

func assertSameDecomposition(t *testing.T, horizon, parallelism int, want, got *topocon.Decomposition) {
	t.Helper()
	if len(want.Comps) != len(got.Comps) {
		t.Fatalf("horizon %d parallelism %d: %d components, refine found %d",
			horizon, parallelism, len(want.Comps), len(got.Comps))
	}
	for i := range want.CompOf {
		if want.CompOf[i] != got.CompOf[i] {
			t.Fatalf("horizon %d parallelism %d item %d: component %d vs %d",
				horizon, parallelism, i, want.CompOf[i], got.CompOf[i])
		}
	}
	for ci := range want.Comps {
		w, g := &want.Comps[ci], &got.Comps[ci]
		if !equalInts(w.Members, g.Members) || !equalInts(w.Valences, g.Valences) ||
			w.Broadcasters != g.Broadcasters || w.UniformInputs != g.UniformInputs {
			t.Fatalf("horizon %d parallelism %d component %d differs:\nscratch %+v\nrefined %+v",
				horizon, parallelism, ci, w, g)
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
