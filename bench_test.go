package topocon_test

// One benchmark per experiment of EXPERIMENTS.md (E1–E10) plus ablation
// benches for the design choices called out in DESIGN.md. The benchmarks
// measure the cost of regenerating each figure/claim; correctness is
// asserted so a regression cannot silently pass as a fast benchmark.

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"topocon"
	"topocon/internal/ma"
	"topocon/internal/topo"
)

// BenchmarkE1_PTGraphViews builds the Figure-2 process-time graph and
// extracts a view.
func BenchmarkE1_PTGraphViews(b *testing.B) {
	g1 := topocon.MustParseGraph(3, "1->2, 3->2")
	g2 := topocon.MustParseGraph(3, "2->1, 2->3")
	run := topocon.NewRun([]int{1, 0, 1}).Extend(g1).Extend(g2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cone := topocon.ConeOf(run, 0, 2)
		if cone.Size() != 6 {
			b.Fatalf("cone size %d", cone.Size())
		}
	}
}

// BenchmarkE2_Distances computes the Figure-3 distances.
func BenchmarkE2_Distances(b *testing.B) {
	g1 := topocon.MustParseGraph(3, "3->2")
	g2 := topocon.MustParseGraph(3, "2->1")
	alpha := topocon.NewRun([]int{0, 0, 0}).Extend(g1).Extend(g2)
	beta := topocon.NewRun([]int{0, 0, 1}).Extend(g1).Extend(g2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		in := topocon.NewInterner()
		va := topocon.ComputeViews(in, alpha)
		vb := topocon.ComputeViews(in, beta)
		if topocon.MinAgreeLevel(va, vb) != 2 {
			b.Fatal("wrong d_min")
		}
	}
}

// BenchmarkE3_LossyLink3 regenerates the impossibility verdict with its
// pump certificate.
func BenchmarkE3_LossyLink3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := topocon.CheckConsensus(topocon.LossyLink3(), topocon.CheckOptions{MaxHorizon: 4})
		if err != nil || res.Verdict != topocon.VerdictImpossible {
			b.Fatalf("verdict %v err %v", res.Verdict, err)
		}
	}
}

// BenchmarkE4_LossyLink2 regenerates the one-round solvability witness.
func BenchmarkE4_LossyLink2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := topocon.CheckConsensus(topocon.LossyLink2(), topocon.CheckOptions{})
		if err != nil || res.SeparationHorizon != 1 {
			b.Fatalf("separation %d err %v", res.SeparationHorizon, err)
		}
	}
}

// BenchmarkE5_ObliviousSweep checks all 15 n=2 oblivious adversaries.
func BenchmarkE5_ObliviousSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		solvable := 0
		for mask := uint64(1); mask < 16; mask++ {
			adv := ma.ObliviousFromMask(2, mask)
			res, err := topocon.CheckConsensus(adv, topocon.CheckOptions{MaxHorizon: 5})
			if err != nil {
				b.Fatal(err)
			}
			if res.Verdict == topocon.VerdictSolvable {
				solvable++
			}
		}
		if solvable != 6 {
			b.Fatalf("solvable count %d, want 6", solvable)
		}
	}
}

// BenchmarkE6_ComponentGap measures the fixed-algorithm decision-set gap
// at horizon 5.
func BenchmarkE6_ComponentGap(b *testing.B) {
	res, err := topocon.CheckConsensus(topocon.LossyLink2(), topocon.CheckOptions{})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		s, err := topocon.BuildSpaceWithInterner(topocon.LossyLink2(), 2, 5, 0, res.Map.Interner())
		if err != nil {
			b.Fatal(err)
		}
		level, ok, err := topocon.CrossDecisionLevel(res.Map, s)
		if err != nil || !ok || level != 1 {
			b.Fatalf("gap level %d ok=%v err=%v", level, ok, err)
		}
	}
}

// BenchmarkE7_FairExclusion runs the committed-suffix family plus the
// exact lasso convergence to the fair limit.
func BenchmarkE7_FairExclusion(b *testing.B) {
	free := []topocon.Graph{topocon.LeftGraph, topocon.RightGraph, topocon.BothGraph}
	commit := []topocon.Graph{topocon.LeftGraph, topocon.RightGraph}
	fair, _ := topocon.NewLassoRun([]int{0, 1}, topocon.RepeatWord(topocon.BothGraph))
	for i := 0; i < b.N; i++ {
		for _, deadline := range []int{1, 2, 3} {
			adv := mustCommitted(b, free, commit, deadline)
			res, err := topocon.CheckConsensus(adv, topocon.CheckOptions{MaxHorizon: 5})
			if err != nil || res.SeparationHorizon != deadline {
				b.Fatalf("deadline %d: separation %d err %v", deadline, res.SeparationHorizon, err)
			}
		}
		prefix := []topocon.Graph{topocon.BothGraph, topocon.BothGraph, topocon.BothGraph}
		w, _ := topocon.NewGraphWord(prefix, []topocon.Graph{topocon.RightGraph})
		ak, _ := topocon.NewLassoRun([]int{0, 1}, w)
		if topocon.LassoMinAgreeLevel(ak, fair) != 5 {
			b.Fatal("wrong convergence level")
		}
	}
}

// BenchmarkE8_VSSC sweeps the eventually-stable window and deadline
// families.
func BenchmarkE8_VSSC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, window := range []int{1, 2} {
			adv := mustStable(b,
				[]topocon.Graph{topocon.LeftGraph, topocon.BothGraph},
				[]topocon.Graph{topocon.RightGraph}, window)
			res, err := topocon.CheckConsensus(adv, topocon.CheckOptions{MaxHorizon: 5})
			if err != nil || res.Verdict != topocon.VerdictSolvable {
				b.Fatalf("window %d: %v err %v", window, res.Verdict, err)
			}
		}
	}
}

// BenchmarkE9_Universal drives the universal algorithm through the
// message-passing simulator exhaustively.
func BenchmarkE9_Universal(b *testing.B) {
	res, err := topocon.CheckConsensus(topocon.LossyLink2(), topocon.CheckOptions{})
	if err != nil {
		b.Fatal(err)
	}
	factory := topocon.NewFullInfo(res.Rule)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		violations := 0
		topocon.ExhaustiveSim(topocon.LossyLink2(), factory, 2, 4,
			func(tr *topocon.Trace, _ ma.Prefix) bool {
				violations += len(topocon.CheckProperties(tr, true))
				return true
			})
		if violations != 0 {
			b.Fatalf("%d violations", violations)
		}
	}
}

// BenchmarkE10_LassoExact applies the exact Corollary 5.6 checker.
func BenchmarkE10_LassoExact(b *testing.B) {
	words := []topocon.GraphWord{
		topocon.RepeatWord(topocon.LeftGraph),
		topocon.RepeatWord(topocon.RightGraph),
		topocon.RepeatWord(topocon.NeitherGraph),
	}
	for i := 0; i < b.N; i++ {
		a, err := topocon.AnalyzeFinite(words, 2)
		if err != nil || a.Solvable {
			b.Fatalf("solvable=%v err=%v", a.Solvable, err)
		}
	}
}

// BenchmarkAblationInternedViews contrasts the hash-consed view comparison
// (the design choice of internal/ptg) against explicit cone encoding.
func BenchmarkAblationInternedViews(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	runs := randomRuns(rng, 64, 3, 4)
	b.Run("interned", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			in := topocon.NewInterner()
			equal := 0
			views := make([]*topocon.Views, len(runs))
			for j, r := range runs {
				views[j] = topocon.ComputeViews(in, r)
			}
			for j := range runs {
				for k := j + 1; k < len(runs); k++ {
					if views[j].ID(4, 0) == views[k].ID(4, 0) {
						equal++
					}
				}
			}
			sinkInt = equal
		}
	})
	b.Run("explicit-cones", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			equal := 0
			encs := make([]string, len(runs))
			for j, r := range runs {
				encs[j] = topocon.ConeOf(r, 0, 4).Encode()
			}
			for j := range runs {
				for k := j + 1; k < len(runs); k++ {
					if encs[j] == encs[k] {
						equal++
					}
				}
			}
			sinkInt = equal
		}
	})
}

// BenchmarkAblationComponents contrasts union-find component computation
// against a BFS over the indistinguishability relation.
func BenchmarkAblationComponents(b *testing.B) {
	s, err := topocon.BuildSpace(topocon.LossyLink3(), 2, 5, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("union-find", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			d := topocon.Decompose(s)
			sinkInt = len(d.Comps)
		}
	})
	b.Run("bfs", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sinkInt = bfsComponents(s)
		}
	})
}

// BenchmarkAblationSpaceBuild measures prefix-space construction cost per
// horizon (the dominating factor of every checker run).
func BenchmarkAblationSpaceBuild(b *testing.B) {
	for _, horizon := range []int{3, 5, 7} {
		b.Run(map[int]string{3: "horizon3", 5: "horizon5", 7: "horizon7"}[horizon],
			func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					s, err := topocon.BuildSpace(topocon.LossyLink3(), 2, horizon, 0)
					if err != nil {
						b.Fatal(err)
					}
					sinkInt = s.Len()
				}
			})
	}
}

// benchMaxHorizon is the horizon depth of the incremental-vs-scratch pair
// below; both walk every horizon 1..benchMaxHorizon of LossyLink2 and
// decompose each, so the only difference is how the next space is obtained.
const benchMaxHorizon = 7

// BenchmarkBuildFromScratch is the pre-session checker loop: every horizon
// builds its prefix space independently — with a fresh interner, so every
// view of every horizon is re-interned from nothing — and decomposes it
// from scratch.
func BenchmarkBuildFromScratch(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for horizon := 1; horizon <= benchMaxHorizon; horizon++ {
			s, err := topocon.BuildSpace(topocon.LossyLink2(), 2, horizon, 0)
			if err != nil {
				b.Fatal(err)
			}
			d := topocon.Decompose(s)
			sinkInt = len(d.Comps)
		}
	}
}

// BenchmarkAnalyzerIncremental is the session path: one Analyzer extends
// the columnar frontier round by round — computing a single new view row
// per run straight into the child space's dense columns — and refines each
// horizon's decomposition from the previous partition. Track the ratio to
// BenchmarkBuildFromScratch in the perf trajectory (BENCH_PR4.json records
// it per PR); the columnar-layout acceptance floor against the PR 3
// array-of-structs baseline (1.16 ms/op, 12908 allocs/op ≈ 12.7 per
// extended item on this workload) is 2× wall and 4× allocs per item.
func BenchmarkAnalyzerIncremental(b *testing.B) {
	b.ReportAllocs()
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		an, err := topocon.NewAnalyzer(topocon.LossyLink2(), topocon.WithMaxHorizon(benchMaxHorizon))
		if err != nil {
			b.Fatal(err)
		}
		for {
			rep, err := an.Step(ctx)
			if errors.Is(err, topocon.ErrHorizonExhausted) {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
			sinkInt = rep.Components
		}
		if an.Horizon() != benchMaxHorizon {
			b.Fatalf("stopped at horizon %d", an.Horizon())
		}
	}
}

// BenchmarkExtendColumnar isolates the frontier-expansion cost of the
// columnar layout: a fresh horizon-1 space (fresh interner) is extended to
// benchMaxHorizon with no decomposition, so ns/op and allocs/op measure
// extendOne alone — the loop the structure-of-arrays rework targets. The
// extended-item count per iteration is Σ_{t=2..7} 4·2^t = 1008, putting the
// per-item allocation cost in direct view.
func BenchmarkExtendColumnar(b *testing.B) {
	b.ReportAllocs()
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		s, err := topocon.BuildSpace(topocon.LossyLink2(), 2, 1, 0)
		if err != nil {
			b.Fatal(err)
		}
		if s, err = s.Extend(ctx, benchMaxHorizon); err != nil {
			b.Fatal(err)
		}
		if s.Len() != 4*1<<benchMaxHorizon {
			b.Fatalf("space size %d", s.Len())
		}
		sinkInt = s.Len()
	}
}

// BenchmarkExtendPaged measures the BenchmarkAnalyzerIncremental horizon
// walk with the frontier paged under a small hot-set budget (2 KiB — a
// fraction of the all-hot horizon-7 frontier, which the symmetry quotient
// halves on LossyLink2's order-2 group): cold rounds spill to page files
// and fault back on demand, so the delta against the incremental bench is
// the page-IO overhead of out-of-core extension. Each iteration gets a
// fresh page directory so spills are never served by files a previous
// iteration wrote.
func BenchmarkExtendPaged(b *testing.B) {
	b.ReportAllocs()
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		pg, err := topocon.NewPager(topocon.PagerConfig{
			Dir:      b.TempDir(), // fresh per iteration: spills must write, not skip
			HotBytes: 2 << 10,
		})
		if err != nil {
			b.Fatal(err)
		}
		an, err := topocon.NewAnalyzer(topocon.LossyLink2(),
			topocon.WithMaxHorizon(benchMaxHorizon), topocon.WithPager(pg))
		if err != nil {
			b.Fatal(err)
		}
		for {
			rep, err := an.Step(ctx)
			if errors.Is(err, topocon.ErrHorizonExhausted) {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
			sinkInt = rep.Components
		}
		if an.Horizon() != benchMaxHorizon {
			b.Fatalf("stopped at horizon %d", an.Horizon())
		}
		st := pg.Stats()
		if st.PagesSpilled == 0 {
			b.Fatal("budget never forced a spill; the bench is not measuring paging")
		}
	}
}

// BenchmarkRefineVsDecompose isolates the per-horizon decomposition cost
// of a session walking LossyLink2 horizons 1..benchMaxHorizon: "decompose"
// re-buckets every horizon from scratch (topocon.DecomposeCtx, the
// reference), "refine" seeds each horizon's partition from the previous
// one (topocon.Decomposition.Refine). The spaces are extended once outside
// the timer, so the pair differs only in how the partition is obtained.
// Track the ratio in the perf trajectory; the acceptance floor is 2×.
func BenchmarkRefineVsDecompose(b *testing.B) {
	ctx := context.Background()
	spaces := make([]*topocon.Space, benchMaxHorizon+1)
	s, err := topocon.BuildSpace(topocon.LossyLink2(), 2, 1, 0)
	if err != nil {
		b.Fatal(err)
	}
	spaces[1] = s
	for t := 2; t <= benchMaxHorizon; t++ {
		if s, err = s.Extend(ctx, t); err != nil {
			b.Fatal(err)
		}
		spaces[t] = s
	}
	wantComps := make([]int, benchMaxHorizon+1)
	for t := 1; t <= benchMaxHorizon; t++ {
		wantComps[t] = len(topocon.Decompose(spaces[t]).Comps)
	}
	b.Run("decompose", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for t := 1; t <= benchMaxHorizon; t++ {
				d, err := topocon.DecomposeCtx(ctx, spaces[t])
				if err != nil || len(d.Comps) != wantComps[t] {
					b.Fatalf("horizon %d: %d components, err %v", t, len(d.Comps), err)
				}
			}
		}
	})
	b.Run("refine", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			d, err := topocon.DecomposeCtx(ctx, spaces[1])
			if err != nil {
				b.Fatal(err)
			}
			for t := 2; t <= benchMaxHorizon; t++ {
				if d, err = d.Refine(ctx, spaces[t]); err != nil || len(d.Comps) != wantComps[t] {
					b.Fatalf("horizon %d: %d components, err %v", t, len(d.Comps), err)
				}
			}
		}
	})
}

// BenchmarkExtendQuotient measures the symmetry quotient (DESIGN.md §13)
// on the lossy-star-4 workload: n=4, the center may drop one spoke per
// round, so the leaf processes are interchangeable and ma.Automorphisms
// finds the order-6 S₃ group. The quotient sub-benchmark builds the
// horizon-7 space with one interned representative per orbit; full builds
// the unquotiented space. Both report their interned item count as the
// items/op metric — the quotient's acceptance floor is a ≥3× reduction at
// identical full-space accounting (FullLen), asserted here so a broken
// canonicalizer cannot pass as a fast benchmark. Verdict equality across
// the two modes is pinned separately by check.TestQuotientMatchesFullSpace
// and the CI differential step.
func BenchmarkExtendQuotient(b *testing.B) {
	const starHorizon = 7
	specs := []string{
		"2->1, 3->1, 4->1, 1->2, 1->3, 1->4",
		"2->1, 3->1, 4->1, 1->3, 1->4",
		"2->1, 3->1, 4->1, 1->2, 1->4",
		"2->1, 3->1, 4->1, 1->2, 1->3",
	}
	set := make([]topocon.Graph, len(specs))
	for i, spec := range specs {
		g, err := topocon.ParseGraph(4, spec)
		if err != nil {
			b.Fatal(err)
		}
		set[i] = g
	}
	star, err := topocon.NewOblivious("lossy-star-4", set)
	if err != nil {
		b.Fatal(err)
	}
	group := topocon.Automorphisms(star)
	if group.Order() != 6 {
		b.Fatalf("lossy-star-4 group order %d, want 6 (S₃ on the leaves)", group.Order())
	}
	ctx := context.Background()
	modes := []struct {
		name string
		sym  *topocon.Group
	}{
		{"quotient", group},
		{"full", nil},
	}
	for _, mode := range modes {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			var items int
			for i := 0; i < b.N; i++ {
				s, err := topo.BuildCtx(ctx, star, 2, starHorizon, topo.Config{Symmetry: mode.sym})
				if err != nil {
					b.Fatal(err)
				}
				if s.FullLen() != 16*16384 {
					b.Fatalf("full-space accounting %d, want %d", s.FullLen(), 16*16384)
				}
				if mode.sym != nil && s.FullLen() < 3*s.Len() {
					b.Fatalf("quotient interned %d of %d items — reduction under the 3× floor", s.Len(), s.FullLen())
				}
				items = s.Len()
			}
			b.ReportMetric(float64(items), "items")
			sinkInt = items
		})
	}
}

var sinkInt int

func mustCommitted(b *testing.B, free, commit []topocon.Graph, deadline int) topocon.Adversary {
	b.Helper()
	adv, err := topocon.NewCommittedSuffix("", free, commit, deadline)
	if err != nil {
		b.Fatal(err)
	}
	return adv
}

func mustStable(b *testing.B, chaos, stable []topocon.Graph, window int) topocon.Adversary {
	b.Helper()
	adv, err := topocon.NewEventuallyStable("", chaos, stable, window)
	if err != nil {
		b.Fatal(err)
	}
	return adv
}

func randomRuns(rng *rand.Rand, count, n, rounds int) []topocon.Run {
	var all []topocon.Graph
	topocon.EnumerateGraphs(n, func(g topocon.Graph) bool {
		all = append(all, g)
		return true
	})
	runs := make([]topocon.Run, count)
	for i := range runs {
		inputs := make([]int, n)
		for p := range inputs {
			inputs[p] = rng.Intn(2)
		}
		r := topocon.NewRun(inputs)
		for t := 0; t < rounds; t++ {
			r = r.Extend(all[rng.Intn(len(all))])
		}
		runs[i] = r
	}
	return runs
}

// bfsComponents is the ablation baseline: explicit pairwise relation BFS.
func bfsComponents(s *topo.Space) int {
	n := s.Len()
	visited := make([]bool, n)
	related := func(i, j int) bool {
		for p := 0; p < s.N(); p++ {
			if s.ViewAt(i, p) == s.ViewAt(j, p) {
				return true
			}
		}
		return false
	}
	comps := 0
	for i := 0; i < n; i++ {
		if visited[i] {
			continue
		}
		comps++
		queue := []int{i}
		visited[i] = true
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for j := 0; j < n; j++ {
				if !visited[j] && related(cur, j) {
					visited[j] = true
					queue = append(queue, j)
				}
			}
		}
	}
	return comps
}
