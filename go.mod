module topocon

go 1.24
